# Empty dependencies file for simrt_test.
# This may be replaced when dependencies are built.
