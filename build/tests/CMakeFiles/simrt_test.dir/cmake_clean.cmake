file(REMOVE_RECURSE
  "CMakeFiles/simrt_test.dir/simrt_test.cpp.o"
  "CMakeFiles/simrt_test.dir/simrt_test.cpp.o.d"
  "simrt_test"
  "simrt_test.pdb"
  "simrt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simrt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
