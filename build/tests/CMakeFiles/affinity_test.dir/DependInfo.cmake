
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/affinity_test.cpp" "tests/CMakeFiles/affinity_test.dir/affinity_test.cpp.o" "gcc" "tests/CMakeFiles/affinity_test.dir/affinity_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/affinity/CMakeFiles/ns_affinity.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/ns_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ns_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
