file(REMOVE_RECURSE
  "CMakeFiles/membind_test.dir/membind_test.cpp.o"
  "CMakeFiles/membind_test.dir/membind_test.cpp.o.d"
  "membind_test"
  "membind_test.pdb"
  "membind_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membind_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
