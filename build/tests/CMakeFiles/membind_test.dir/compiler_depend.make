# Empty compiler generated dependencies file for membind_test.
# This may be replaced when dependencies are built.
