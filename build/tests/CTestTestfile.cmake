# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/affinity_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/msg_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/simhw_test[1]_include.cmake")
include("/root/repo/build/tests/simrt_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/membind_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/generator_property_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
