
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/codec.cpp" "src/codec/CMakeFiles/ns_codec.dir/codec.cpp.o" "gcc" "src/codec/CMakeFiles/ns_codec.dir/codec.cpp.o.d"
  "/root/repo/src/codec/delta_rle.cpp" "src/codec/CMakeFiles/ns_codec.dir/delta_rle.cpp.o" "gcc" "src/codec/CMakeFiles/ns_codec.dir/delta_rle.cpp.o.d"
  "/root/repo/src/codec/frame.cpp" "src/codec/CMakeFiles/ns_codec.dir/frame.cpp.o" "gcc" "src/codec/CMakeFiles/ns_codec.dir/frame.cpp.o.d"
  "/root/repo/src/codec/lz4.cpp" "src/codec/CMakeFiles/ns_codec.dir/lz4.cpp.o" "gcc" "src/codec/CMakeFiles/ns_codec.dir/lz4.cpp.o.d"
  "/root/repo/src/codec/xxhash.cpp" "src/codec/CMakeFiles/ns_codec.dir/xxhash.cpp.o" "gcc" "src/codec/CMakeFiles/ns_codec.dir/xxhash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
