file(REMOVE_RECURSE
  "libns_codec.a"
)
