file(REMOVE_RECURSE
  "CMakeFiles/ns_codec.dir/codec.cpp.o"
  "CMakeFiles/ns_codec.dir/codec.cpp.o.d"
  "CMakeFiles/ns_codec.dir/delta_rle.cpp.o"
  "CMakeFiles/ns_codec.dir/delta_rle.cpp.o.d"
  "CMakeFiles/ns_codec.dir/frame.cpp.o"
  "CMakeFiles/ns_codec.dir/frame.cpp.o.d"
  "CMakeFiles/ns_codec.dir/lz4.cpp.o"
  "CMakeFiles/ns_codec.dir/lz4.cpp.o.d"
  "CMakeFiles/ns_codec.dir/xxhash.cpp.o"
  "CMakeFiles/ns_codec.dir/xxhash.cpp.o.d"
  "libns_codec.a"
  "libns_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
