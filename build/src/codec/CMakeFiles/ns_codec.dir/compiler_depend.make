# Empty compiler generated dependencies file for ns_codec.
# This may be replaced when dependencies are built.
