# Empty dependencies file for ns_concurrency.
# This may be replaced when dependencies are built.
