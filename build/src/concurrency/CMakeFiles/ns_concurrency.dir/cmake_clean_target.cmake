file(REMOVE_RECURSE
  "libns_concurrency.a"
)
