file(REMOVE_RECURSE
  "CMakeFiles/ns_concurrency.dir/thread_pool.cpp.o"
  "CMakeFiles/ns_concurrency.dir/thread_pool.cpp.o.d"
  "libns_concurrency.a"
  "libns_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
