# Empty dependencies file for ns_simrt.
# This may be replaced when dependencies are built.
