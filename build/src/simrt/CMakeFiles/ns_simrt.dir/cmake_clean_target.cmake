file(REMOVE_RECURSE
  "libns_simrt.a"
)
