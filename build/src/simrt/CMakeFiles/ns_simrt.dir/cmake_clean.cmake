file(REMOVE_RECURSE
  "CMakeFiles/ns_simrt.dir/driver.cpp.o"
  "CMakeFiles/ns_simrt.dir/driver.cpp.o.d"
  "CMakeFiles/ns_simrt.dir/pipeline.cpp.o"
  "CMakeFiles/ns_simrt.dir/pipeline.cpp.o.d"
  "libns_simrt.a"
  "libns_simrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_simrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
