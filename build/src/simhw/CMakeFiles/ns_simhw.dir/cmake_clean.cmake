file(REMOVE_RECURSE
  "CMakeFiles/ns_simhw.dir/machine.cpp.o"
  "CMakeFiles/ns_simhw.dir/machine.cpp.o.d"
  "CMakeFiles/ns_simhw.dir/network.cpp.o"
  "CMakeFiles/ns_simhw.dir/network.cpp.o.d"
  "CMakeFiles/ns_simhw.dir/scheduler.cpp.o"
  "CMakeFiles/ns_simhw.dir/scheduler.cpp.o.d"
  "libns_simhw.a"
  "libns_simhw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_simhw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
