file(REMOVE_RECURSE
  "libns_simhw.a"
)
