
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simhw/machine.cpp" "src/simhw/CMakeFiles/ns_simhw.dir/machine.cpp.o" "gcc" "src/simhw/CMakeFiles/ns_simhw.dir/machine.cpp.o.d"
  "/root/repo/src/simhw/network.cpp" "src/simhw/CMakeFiles/ns_simhw.dir/network.cpp.o" "gcc" "src/simhw/CMakeFiles/ns_simhw.dir/network.cpp.o.d"
  "/root/repo/src/simhw/scheduler.cpp" "src/simhw/CMakeFiles/ns_simhw.dir/scheduler.cpp.o" "gcc" "src/simhw/CMakeFiles/ns_simhw.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ns_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ns_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
