# Empty dependencies file for ns_simhw.
# This may be replaced when dependencies are built.
