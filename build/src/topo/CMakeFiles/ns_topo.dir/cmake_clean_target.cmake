file(REMOVE_RECURSE
  "libns_topo.a"
)
