file(REMOVE_RECURSE
  "CMakeFiles/ns_topo.dir/cpuset.cpp.o"
  "CMakeFiles/ns_topo.dir/cpuset.cpp.o.d"
  "CMakeFiles/ns_topo.dir/discover.cpp.o"
  "CMakeFiles/ns_topo.dir/discover.cpp.o.d"
  "CMakeFiles/ns_topo.dir/topology.cpp.o"
  "CMakeFiles/ns_topo.dir/topology.cpp.o.d"
  "libns_topo.a"
  "libns_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
