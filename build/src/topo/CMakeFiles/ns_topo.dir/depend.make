# Empty dependencies file for ns_topo.
# This may be replaced when dependencies are built.
