file(REMOVE_RECURSE
  "CMakeFiles/ns_msg.dir/inproc.cpp.o"
  "CMakeFiles/ns_msg.dir/inproc.cpp.o.d"
  "CMakeFiles/ns_msg.dir/message.cpp.o"
  "CMakeFiles/ns_msg.dir/message.cpp.o.d"
  "CMakeFiles/ns_msg.dir/socket.cpp.o"
  "CMakeFiles/ns_msg.dir/socket.cpp.o.d"
  "CMakeFiles/ns_msg.dir/tcp.cpp.o"
  "CMakeFiles/ns_msg.dir/tcp.cpp.o.d"
  "CMakeFiles/ns_msg.dir/transport.cpp.o"
  "CMakeFiles/ns_msg.dir/transport.cpp.o.d"
  "libns_msg.a"
  "libns_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
