# Empty dependencies file for ns_msg.
# This may be replaced when dependencies are built.
