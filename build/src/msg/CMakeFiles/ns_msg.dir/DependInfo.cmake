
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msg/inproc.cpp" "src/msg/CMakeFiles/ns_msg.dir/inproc.cpp.o" "gcc" "src/msg/CMakeFiles/ns_msg.dir/inproc.cpp.o.d"
  "/root/repo/src/msg/message.cpp" "src/msg/CMakeFiles/ns_msg.dir/message.cpp.o" "gcc" "src/msg/CMakeFiles/ns_msg.dir/message.cpp.o.d"
  "/root/repo/src/msg/socket.cpp" "src/msg/CMakeFiles/ns_msg.dir/socket.cpp.o" "gcc" "src/msg/CMakeFiles/ns_msg.dir/socket.cpp.o.d"
  "/root/repo/src/msg/tcp.cpp" "src/msg/CMakeFiles/ns_msg.dir/tcp.cpp.o" "gcc" "src/msg/CMakeFiles/ns_msg.dir/tcp.cpp.o.d"
  "/root/repo/src/msg/transport.cpp" "src/msg/CMakeFiles/ns_msg.dir/transport.cpp.o" "gcc" "src/msg/CMakeFiles/ns_msg.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/ns_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
