file(REMOVE_RECURSE
  "libns_msg.a"
)
