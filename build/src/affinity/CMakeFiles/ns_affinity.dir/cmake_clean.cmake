file(REMOVE_RECURSE
  "CMakeFiles/ns_affinity.dir/affinity.cpp.o"
  "CMakeFiles/ns_affinity.dir/affinity.cpp.o.d"
  "CMakeFiles/ns_affinity.dir/binding.cpp.o"
  "CMakeFiles/ns_affinity.dir/binding.cpp.o.d"
  "CMakeFiles/ns_affinity.dir/membind.cpp.o"
  "CMakeFiles/ns_affinity.dir/membind.cpp.o.d"
  "libns_affinity.a"
  "libns_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
