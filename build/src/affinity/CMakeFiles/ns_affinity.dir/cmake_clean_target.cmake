file(REMOVE_RECURSE
  "libns_affinity.a"
)
