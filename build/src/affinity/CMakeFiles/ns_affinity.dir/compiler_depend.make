# Empty compiler generated dependencies file for ns_affinity.
# This may be replaced when dependencies are built.
