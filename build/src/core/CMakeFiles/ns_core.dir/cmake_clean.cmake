file(REMOVE_RECURSE
  "CMakeFiles/ns_core.dir/advisor.cpp.o"
  "CMakeFiles/ns_core.dir/advisor.cpp.o.d"
  "CMakeFiles/ns_core.dir/config.cpp.o"
  "CMakeFiles/ns_core.dir/config.cpp.o.d"
  "CMakeFiles/ns_core.dir/config_generator.cpp.o"
  "CMakeFiles/ns_core.dir/config_generator.cpp.o.d"
  "CMakeFiles/ns_core.dir/pipeline.cpp.o"
  "CMakeFiles/ns_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/ns_core.dir/placement.cpp.o"
  "CMakeFiles/ns_core.dir/placement.cpp.o.d"
  "libns_core.a"
  "libns_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
