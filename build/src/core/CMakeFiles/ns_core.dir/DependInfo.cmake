
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/ns_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/ns_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/ns_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/ns_core.dir/config.cpp.o.d"
  "/root/repo/src/core/config_generator.cpp" "src/core/CMakeFiles/ns_core.dir/config_generator.cpp.o" "gcc" "src/core/CMakeFiles/ns_core.dir/config_generator.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/ns_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/ns_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/ns_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/ns_core.dir/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ns_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/affinity/CMakeFiles/ns_affinity.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/ns_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/ns_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ns_data.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/ns_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ns_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
