
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/chunk.cpp" "src/data/CMakeFiles/ns_data.dir/chunk.cpp.o" "gcc" "src/data/CMakeFiles/ns_data.dir/chunk.cpp.o.d"
  "/root/repo/src/data/sdf.cpp" "src/data/CMakeFiles/ns_data.dir/sdf.cpp.o" "gcc" "src/data/CMakeFiles/ns_data.dir/sdf.cpp.o.d"
  "/root/repo/src/data/tomo.cpp" "src/data/CMakeFiles/ns_data.dir/tomo.cpp.o" "gcc" "src/data/CMakeFiles/ns_data.dir/tomo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/ns_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
