file(REMOVE_RECURSE
  "libns_data.a"
)
