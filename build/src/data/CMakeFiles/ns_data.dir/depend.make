# Empty dependencies file for ns_data.
# This may be replaced when dependencies are built.
