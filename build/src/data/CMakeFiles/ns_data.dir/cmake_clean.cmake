file(REMOVE_RECURSE
  "CMakeFiles/ns_data.dir/chunk.cpp.o"
  "CMakeFiles/ns_data.dir/chunk.cpp.o.d"
  "CMakeFiles/ns_data.dir/sdf.cpp.o"
  "CMakeFiles/ns_data.dir/sdf.cpp.o.d"
  "CMakeFiles/ns_data.dir/tomo.cpp.o"
  "CMakeFiles/ns_data.dir/tomo.cpp.o.d"
  "libns_data.a"
  "libns_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
