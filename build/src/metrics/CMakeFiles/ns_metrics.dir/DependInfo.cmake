
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/core_usage.cpp" "src/metrics/CMakeFiles/ns_metrics.dir/core_usage.cpp.o" "gcc" "src/metrics/CMakeFiles/ns_metrics.dir/core_usage.cpp.o.d"
  "/root/repo/src/metrics/remote_access.cpp" "src/metrics/CMakeFiles/ns_metrics.dir/remote_access.cpp.o" "gcc" "src/metrics/CMakeFiles/ns_metrics.dir/remote_access.cpp.o.d"
  "/root/repo/src/metrics/table.cpp" "src/metrics/CMakeFiles/ns_metrics.dir/table.cpp.o" "gcc" "src/metrics/CMakeFiles/ns_metrics.dir/table.cpp.o.d"
  "/root/repo/src/metrics/throughput.cpp" "src/metrics/CMakeFiles/ns_metrics.dir/throughput.cpp.o" "gcc" "src/metrics/CMakeFiles/ns_metrics.dir/throughput.cpp.o.d"
  "/root/repo/src/metrics/timeline.cpp" "src/metrics/CMakeFiles/ns_metrics.dir/timeline.cpp.o" "gcc" "src/metrics/CMakeFiles/ns_metrics.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
