file(REMOVE_RECURSE
  "libns_metrics.a"
)
