file(REMOVE_RECURSE
  "CMakeFiles/ns_metrics.dir/core_usage.cpp.o"
  "CMakeFiles/ns_metrics.dir/core_usage.cpp.o.d"
  "CMakeFiles/ns_metrics.dir/remote_access.cpp.o"
  "CMakeFiles/ns_metrics.dir/remote_access.cpp.o.d"
  "CMakeFiles/ns_metrics.dir/table.cpp.o"
  "CMakeFiles/ns_metrics.dir/table.cpp.o.d"
  "CMakeFiles/ns_metrics.dir/throughput.cpp.o"
  "CMakeFiles/ns_metrics.dir/throughput.cpp.o.d"
  "CMakeFiles/ns_metrics.dir/timeline.cpp.o"
  "CMakeFiles/ns_metrics.dir/timeline.cpp.o.d"
  "libns_metrics.a"
  "libns_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
