# Empty dependencies file for ns_metrics.
# This may be replaced when dependencies are built.
