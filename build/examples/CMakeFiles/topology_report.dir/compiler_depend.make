# Empty compiler generated dependencies file for topology_report.
# This may be replaced when dependencies are built.
