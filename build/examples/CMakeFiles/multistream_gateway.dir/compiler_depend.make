# Empty compiler generated dependencies file for multistream_gateway.
# This may be replaced when dependencies are built.
