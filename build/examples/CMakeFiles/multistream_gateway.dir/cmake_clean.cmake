file(REMOVE_RECURSE
  "CMakeFiles/multistream_gateway.dir/multistream_gateway.cpp.o"
  "CMakeFiles/multistream_gateway.dir/multistream_gateway.cpp.o.d"
  "multistream_gateway"
  "multistream_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multistream_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
