file(REMOVE_RECURSE
  "CMakeFiles/tomo_stream.dir/tomo_stream.cpp.o"
  "CMakeFiles/tomo_stream.dir/tomo_stream.cpp.o.d"
  "tomo_stream"
  "tomo_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomo_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
