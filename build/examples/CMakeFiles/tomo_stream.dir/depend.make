# Empty dependencies file for tomo_stream.
# This may be replaced when dependencies are built.
