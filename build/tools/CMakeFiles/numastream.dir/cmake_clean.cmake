file(REMOVE_RECURSE
  "CMakeFiles/numastream.dir/numastream_cli.cpp.o"
  "CMakeFiles/numastream.dir/numastream_cli.cpp.o.d"
  "numastream"
  "numastream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numastream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
