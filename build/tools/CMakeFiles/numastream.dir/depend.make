# Empty dependencies file for numastream.
# This may be replaced when dependencies are built.
