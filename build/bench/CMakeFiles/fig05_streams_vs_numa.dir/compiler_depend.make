# Empty compiler generated dependencies file for fig05_streams_vs_numa.
# This may be replaced when dependencies are built.
