file(REMOVE_RECURSE
  "CMakeFiles/ablation_numa_penalty.dir/ablation_numa_penalty.cpp.o"
  "CMakeFiles/ablation_numa_penalty.dir/ablation_numa_penalty.cpp.o.d"
  "ablation_numa_penalty"
  "ablation_numa_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_numa_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
