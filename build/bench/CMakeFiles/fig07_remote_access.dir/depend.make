# Empty dependencies file for fig07_remote_access.
# This may be replaced when dependencies are built.
