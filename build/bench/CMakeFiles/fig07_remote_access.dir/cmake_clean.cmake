file(REMOVE_RECURSE
  "CMakeFiles/fig07_remote_access.dir/fig07_remote_access.cpp.o"
  "CMakeFiles/fig07_remote_access.dir/fig07_remote_access.cpp.o.d"
  "fig07_remote_access"
  "fig07_remote_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_remote_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
