file(REMOVE_RECURSE
  "CMakeFiles/ablation_multinic.dir/ablation_multinic.cpp.o"
  "CMakeFiles/ablation_multinic.dir/ablation_multinic.cpp.o.d"
  "ablation_multinic"
  "ablation_multinic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multinic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
