# Empty compiler generated dependencies file for ablation_multinic.
# This may be replaced when dependencies are built.
