file(REMOVE_RECURSE
  "CMakeFiles/fig06_core_usage.dir/fig06_core_usage.cpp.o"
  "CMakeFiles/fig06_core_usage.dir/fig06_core_usage.cpp.o.d"
  "fig06_core_usage"
  "fig06_core_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_core_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
