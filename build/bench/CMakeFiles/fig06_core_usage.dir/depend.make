# Empty dependencies file for fig06_core_usage.
# This may be replaced when dependencies are built.
