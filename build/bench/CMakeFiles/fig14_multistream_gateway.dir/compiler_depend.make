# Empty compiler generated dependencies file for fig14_multistream_gateway.
# This may be replaced when dependencies are built.
