file(REMOVE_RECURSE
  "CMakeFiles/fig14_multistream_gateway.dir/fig14_multistream_gateway.cpp.o"
  "CMakeFiles/fig14_multistream_gateway.dir/fig14_multistream_gateway.cpp.o.d"
  "fig14_multistream_gateway"
  "fig14_multistream_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_multistream_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
