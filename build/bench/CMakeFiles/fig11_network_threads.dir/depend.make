# Empty dependencies file for fig11_network_threads.
# This may be replaced when dependencies are built.
