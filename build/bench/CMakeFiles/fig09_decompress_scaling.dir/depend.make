# Empty dependencies file for fig09_decompress_scaling.
# This may be replaced when dependencies are built.
