# Empty dependencies file for ablation_compression_ratio.
# This may be replaced when dependencies are built.
