file(REMOVE_RECURSE
  "CMakeFiles/ablation_compression_ratio.dir/ablation_compression_ratio.cpp.o"
  "CMakeFiles/ablation_compression_ratio.dir/ablation_compression_ratio.cpp.o.d"
  "ablation_compression_ratio"
  "ablation_compression_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compression_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
