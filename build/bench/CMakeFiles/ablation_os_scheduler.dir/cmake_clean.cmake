file(REMOVE_RECURSE
  "CMakeFiles/ablation_os_scheduler.dir/ablation_os_scheduler.cpp.o"
  "CMakeFiles/ablation_os_scheduler.dir/ablation_os_scheduler.cpp.o.d"
  "ablation_os_scheduler"
  "ablation_os_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_os_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
