# Empty dependencies file for ablation_os_scheduler.
# This may be replaced when dependencies are built.
