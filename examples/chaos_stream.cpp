// Chaos streaming demo: the full TCP pipeline run through the
// fault-injection transport with recovery enabled.
//
//   $ chaos_stream [chunks] [seed]
//
// What it does:
//   1. binds a TCP loopback listener and wraps both sides in fault
//      injectors (msg/faulty.h): dials and accepted connections randomly
//      disconnect, tear writes mid-message and flip payload bits,
//   2. runs StreamSender/StreamReceiver with `recovery reconnect=on`, so
//      senders re-dial and re-send, receivers resync and recycle
//      connections, and a watchdog bounds any hang,
//   3. prints the delivery stats plus the fault/recovery ledger
//      (metrics/fault_counters.h) — every injected fault is matched by a
//      recovery action or an accounted drop, never a silent loss.
//
// Same seed, same chaos: re-running with one seed replays the identical
// fault sequence, which is how the fault-tolerance tests stay deterministic.
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/pipeline.h"
#include "metrics/fault_counters.h"
#include "msg/faulty.h"
#include "msg/tcp.h"
#include "topo/discover.h"

using namespace numastream;

int main(int argc, char** argv) {
  const std::uint64_t chunks = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 48;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2026;

  auto topo = discover_topology();
  if (!topo.ok()) {
    std::fprintf(stderr, "topology discovery failed: %s\n",
                 topo.status().to_string().c_str());
    return 1;
  }

  TomoConfig tomo;
  tomo.rows = 256;
  tomo.cols = 675;

  RecoveryConfig recovery;
  recovery.reconnect = true;
  recovery.retry.max_attempts = 8;
  recovery.retry.initial_backoff_us = 200;
  recovery.retry.max_backoff_us = 20000;
  recovery.watchdog_ms = 5000;

  NodeConfig sender_config;
  sender_config.node_name = topo.value().hostname();
  sender_config.role = NodeRole::kSender;
  sender_config.codec_name = "lz4";
  sender_config.chunk_bytes = tomo.chunk_bytes();
  sender_config.recovery = recovery;
  sender_config.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = 2},
      TaskGroupConfig{.type = TaskType::kSend, .count = 2},
  };

  NodeConfig receiver_config;
  receiver_config.node_name = topo.value().hostname();
  receiver_config.role = NodeRole::kReceiver;
  receiver_config.codec_name = "lz4";
  receiver_config.chunk_bytes = tomo.chunk_bytes();
  receiver_config.recovery = recovery;
  receiver_config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 2},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 2},
  };

  auto listener = TcpListener::bind("127.0.0.1", 0);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind failed: %s\n", listener.status().to_string().c_str());
    return 1;
  }
  const std::uint16_t port = listener.value()->port();

  // The chaos: disconnects and torn writes are losslessly recovered (the
  // sender re-sends the failed frame); bit flips are silent on the wire and
  // surface as checksum failures the receiver counts and resyncs past. One
  // injector per side keeps per-connection fault sequences reproducible.
  FaultPlan plan;
  plan.seed = seed;
  plan.disconnect_per_write = 0.08;
  plan.torn_write_per_write = 0.08;
  plan.short_write_per_write = 0.05;
  plan.stall_per_write = 0.05;
  plan.stall_micros = 200;
  plan.fault_free_prefix_bytes = 4096;
  plan.max_faults = 48;

  FaultCounters counters;
  FaultInjector dial_injector(plan, &counters);
  FaultPlan accept_plan = plan;
  accept_plan.seed = seed ^ 0xACCE97;
  FaultInjector accept_injector(accept_plan, &counters);
  FaultyListener chaos_listener(*listener.value(), accept_injector);
  DialFn dial = faulty_dialer(
      [port] { return tcp_connect("127.0.0.1", port); }, dial_injector);

  std::printf("streaming %llu chunks of %s over 127.0.0.1:%u with seed %llu chaos ...\n\n",
              static_cast<unsigned long long>(chunks),
              format_bytes(tomo.chunk_bytes()).c_str(), port,
              static_cast<unsigned long long>(seed));

  TomoChunkSource source(tomo, /*stream_id=*/0, chunks);
  CountingSink sink;

  bool sender_ok = false;
  SenderStats sender_stats;
  std::thread sender_thread([&] {
    StreamSender sender(topo.value(), sender_config);
    auto stats = sender.run(source, dial, nullptr, &counters);
    if (stats.ok()) {
      sender_stats = stats.value();
      sender_ok = true;
    } else {
      std::fprintf(stderr, "sender failed: %s\n", stats.status().to_string().c_str());
    }
  });

  StreamReceiver receiver(topo.value(), receiver_config);
  auto receiver_stats = receiver.run(chaos_listener, sink, nullptr, &counters);
  sender_thread.join();

  if (!receiver_stats.ok() || !sender_ok) {
    if (!receiver_stats.ok()) {
      std::fprintf(stderr, "receiver failed: %s\n",
                   receiver_stats.status().to_string().c_str());
    }
    return 1;
  }

  const ReceiverStats& rx = receiver_stats.value();
  std::printf("sender  : %llu chunks, %s raw -> %s wire (ratio %.2f)\n",
              static_cast<unsigned long long>(sender_stats.chunks),
              format_bytes(sender_stats.raw_bytes).c_str(),
              format_bytes(sender_stats.wire_bytes).c_str(),
              sender_stats.compression_ratio());
  std::printf("receiver: %llu chunks delivered, %llu corrupt frames seen\n\n",
              static_cast<unsigned long long>(rx.chunks),
              static_cast<unsigned long long>(rx.corrupt_frames));

  std::printf("fault / recovery ledger:\n%s\n",
              fault_table(counters.snapshot(), /*nonzero_only=*/true)
                  .render()
                  .c_str());

  if (sink.chunks() != chunks) {
    std::fprintf(stderr, "delivery mismatch: expected %llu chunks, got %llu\n",
                 static_cast<unsigned long long>(chunks),
                 static_cast<unsigned long long>(sink.chunks()));
    return 1;
  }
  std::printf("all %llu chunks delivered through the chaos.\n",
              static_cast<unsigned long long>(chunks));
  return 0;
}
