// Multi-stream gateway planning example: the paper's Fig. 13/14 deployment,
// planned by the runtime configuration generator and evaluated on the
// simulated testbed.
//
//   $ multistream_gateway [streams]
//
// Shows the full planning workflow a facility operator would use:
//   1. describe the gateway and sender machines,
//   2. ask the ConfigGenerator for a NUMA-aware plan (and the OS baseline),
//   3. inspect the generated per-node configuration files,
//   4. evaluate both plans on the simulated hardware and compare.
#include <cstdio>
#include <cstdlib>

#include "core/config_generator.h"
#include "simrt/driver.h"

using namespace numastream;
using namespace numastream::simrt;

int main(int argc, char** argv) {
  const int streams = argc > 1 ? std::atoi(argv[1]) : 4;

  const MachineTopology gateway = lynxdtn_topology();
  std::vector<MachineTopology> senders;
  for (int i = 0; i < streams; ++i) {
    senders.push_back(i % 2 == 0
                          ? updraft_topology("updraft" + std::to_string(i / 2 + 1))
                          : polaris_topology("polaris" + std::to_string(i / 2 + 1)));
  }

  std::printf("gateway:\n%s\n", gateway.describe().c_str());

  ConfigGenerator generator(gateway, senders);
  WorkloadSpec spec;
  spec.num_streams = streams;

  auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n", plan.status().to_string().c_str());
    return 1;
  }
  std::printf("---- generator rationale ----\n%s\n", plan.value().rationale.c_str());
  std::printf("---- receiver configuration (%s) ----\n%s\n",
              plan.value().receiver.node_name.c_str(),
              plan.value().receiver.serialize().c_str());
  std::printf("---- first sender configuration (%s) ----\n%s\n",
              plan.value().senders[0].node_name.c_str(),
              plan.value().senders[0].serialize().c_str());

  auto os_plan = generator.generate(spec, PlacementStrategy::kOsManaged);
  if (!os_plan.ok()) {
    return 1;
  }

  ExperimentOptions options;
  options.link.bandwidth_gbps = 200;
  options.source_gbps = 100;
  options.chunks_per_stream = 300;

  auto runtime = run_plan(senders, gateway, plan.value(), options);
  auto os = run_plan(senders, gateway, os_plan.value(), options);
  if (!runtime.ok() || !os.ok()) {
    std::fprintf(stderr, "simulation failed\n");
    return 1;
  }

  std::printf("---- simulated outcome (%d streams) ----\n", streams);
  std::printf("  NUMA-aware runtime: %7.2f Gbps network, %7.2f Gbps end-to-end\n",
              runtime.value().network_gbps, runtime.value().e2e_gbps);
  std::printf("  OS placement      : %7.2f Gbps network, %7.2f Gbps end-to-end\n",
              os.value().network_gbps, os.value().e2e_gbps);
  std::printf("  improvement       : %.2fx\n",
              runtime.value().e2e_gbps / os.value().e2e_gbps);
  for (std::size_t i = 0; i < runtime.value().streams.size(); ++i) {
    std::printf("  stream-%zu: runtime %6.1f Gbps e2e | OS %6.1f Gbps e2e\n", i + 1,
                runtime.value().streams[i].e2e_gbps, os.value().streams[i].e2e_gbps);
  }
  return 0;
}
