// Anti-entropy repair walkthrough (DESIGN.md §14): seeded bit-rot lands on
// a standby's replica journal, the background scrubber quarantines the
// damaged range, and one digest round against the clean primary repairs it
// — all before any failover could have replayed the rot as delivery holes.
//
//   1. A primary journal and its replica hold the same 64 records.
//   2. Seeded rot flips bits in the replica; byte-identity breaks silently.
//   3. The replica's JournalScrubber finds the corrupt records on its
//      budgeted cadence and quarantines their ranges (sticky counters,
//      never sticky DATA_LOSS — the journal keeps serving).
//   4. The replica runs an AntiEntropyScrubber round against the primary's
//      ScrubServer: digests diverge, the rotted ranges pull clean bytes,
//      and the quarantine lifts.
//   5. The journals are byte-identical again; the scrub ledger shows the
//      whole arc.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j --target antientropy_repair
//   ./build/examples/antientropy_repair
#include <cstdio>

#include "cluster/antientropy.h"
#include "core/journal.h"
#include "core/scrub.h"
#include "metrics/scrub_counters.h"

using namespace numastream;

namespace {

constexpr std::uint64_t kSession = 41;
constexpr std::uint64_t kRecords = 64;
constexpr std::uint64_t kRotSeed = 2026;

Bytes make_journal_image() {
  Bytes image;
  for (std::uint64_t sequence = 1; sequence <= kRecords; ++sequence) {
    JournalRecord record;
    record.type = JournalRecordType::kSent;
    record.stream_id = 7;
    record.sequence = sequence;
    record.offset = (sequence - 1) * 4096;
    record.body_hash = static_cast<std::uint32_t>(sequence * 2654435761u);
    record.body_size = 4096;
    const Bytes encoded = encode_journal_record(record);
    image.insert(image.end(), encoded.begin(), encoded.end());
  }
  return image;
}

}  // namespace

int main() {
  std::printf("== anti-entropy repair walkthrough ==\n\n");

  // 1. Primary and replica start byte-identical.
  const Bytes image = make_journal_image();
  MemoryJournalMedia primary;
  MemoryJournalMedia replica;
  for (auto* media : {&primary, &replica}) {
    if (!media->append(ByteSpan(image.data(), image.size())).is_ok() ||
        !media->flush().is_ok()) {
      std::printf("journal setup failed\n");
      return 1;
    }
  }
  std::printf("primary and replica each hold %llu records (%zu bytes)\n",
              static_cast<unsigned long long>(kRecords), image.size());

  // 2. Seeded rot: flip three bits somewhere in the replica's middle third.
  const int flipped = replica.rot(kRotSeed, image.size() / 3, image.size() / 3,
                                  /*flips=*/3);
  std::printf("rot(seed=%llu) flipped %d bit(s) in the replica — silently\n\n",
              static_cast<unsigned long long>(kRotSeed), flipped);

  // 3. The replica's local scrubber finds the damage on its cadence.
  ScrubConfig config;
  config.cadence_ms = 100;
  config.range_records = 8;
  config.budget_records = 32;     // two ticks to cover 64 records
  config.repair_concurrency = 8;  // repair every divergent range in one round
  ScrubCounters counters;
  JournalScrubber scrubber(replica, config, &counters);
  while (counters.scrub_passes.load() == 0) {
    if (!scrubber.tick().is_ok()) {
      std::printf("scrub tick failed\n");
      return 1;
    }
  }
  std::printf("after one scrub pass:\n%s\n",
              scrub_table(counters.snapshot(), /*nonzero_only=*/true)
                  .render()
                  .c_str());
  if (scrubber.quarantined_ranges().empty()) {
    std::printf("expected quarantined ranges\n");
    return 1;
  }

  // 4. One anti-entropy round against the primary: digests diverge on the
  //    quarantined ranges, clean bytes pull across, quarantine lifts.
  cluster::ScrubServer server(primary, kSession, config.range_records);
  cluster::InprocScrubLink link(server);
  cluster::AntiEntropyScrubber antientropy(replica, link, kSession, config,
                                           /*epoch=*/1, &counters, &scrubber);
  const Status round = antientropy.run_round();
  if (!round.is_ok()) {
    std::printf("anti-entropy round failed: %s\n",
                round.to_string().c_str());
    return 1;
  }
  std::printf("after one anti-entropy round:\n%s\n",
              scrub_table(counters.snapshot(), /*nonzero_only=*/true)
                  .render()
                  .c_str());

  // 5. Byte-identity is restored and nothing is quarantined.
  auto repaired = replica.read_all();
  if (!repaired.ok() || repaired.value() != image) {
    std::printf("FAILED: replica still diverges from the primary\n");
    return 1;
  }
  if (!scrubber.quarantined_ranges().empty()) {
    std::printf("FAILED: quarantine did not lift after the repair\n");
    return 1;
  }
  std::printf(
      "replica is byte-identical to the primary again; quarantine lifted\n"
      "— the failover this rot was waiting for will replay an intact "
      "journal\n");
  return 0;
}
