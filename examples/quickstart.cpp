// Quickstart: stream synthetic detector data through the full runtime on
// this machine, over real TCP loopback, with real LZ4 compression.
//
//   $ quickstart [chunks]
//
// What it does:
//   1. discovers this host's topology (NUMA-aware if the host has NUMA;
//      gracefully single-domain otherwise),
//   2. builds a sender config (compression + send threads) and a receiver
//      config (receive + decompression threads),
//   3. runs StreamSender and StreamReceiver concurrently over 127.0.0.1,
//   4. prints delivery stats: chunks, bytes, compression ratio, rates.
//
// This is the real pipeline — the same classes a deployment would run on a
// gateway node — not the simulator the figure benches use.
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/pipeline.h"
#include "msg/tcp.h"
#include "topo/discover.h"

using namespace numastream;

int main(int argc, char** argv) {
  const std::uint64_t chunks = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;

  auto topo = discover_topology();
  if (!topo.ok()) {
    std::fprintf(stderr, "topology discovery failed: %s\n",
                 topo.status().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", topo.value().describe().c_str());

  // Small projections keep the quickstart quick; a real deployment would use
  // the full 2048x2700 projection (TomoConfig defaults).
  TomoConfig tomo;
  tomo.rows = 256;
  tomo.cols = 675;

  NodeConfig sender_config;
  sender_config.node_name = topo.value().hostname();
  sender_config.role = NodeRole::kSender;
  sender_config.codec_name = "lz4";
  sender_config.chunk_bytes = tomo.chunk_bytes();
  sender_config.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = 2},
      TaskGroupConfig{.type = TaskType::kSend, .count = 2},
  };

  NodeConfig receiver_config;
  receiver_config.node_name = topo.value().hostname();
  receiver_config.role = NodeRole::kReceiver;
  receiver_config.codec_name = "lz4";
  receiver_config.chunk_bytes = tomo.chunk_bytes();
  receiver_config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 2},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 2},
  };
  std::printf("sender config:\n%s\nreceiver config:\n%s\n",
              sender_config.serialize().c_str(),
              receiver_config.serialize().c_str());

  auto listener = TcpListener::bind("127.0.0.1", 0);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind failed: %s\n", listener.status().to_string().c_str());
    return 1;
  }
  const std::uint16_t port = listener.value()->port();
  std::printf("streaming %llu chunks of %s over 127.0.0.1:%u ...\n\n",
              static_cast<unsigned long long>(chunks),
              format_bytes(tomo.chunk_bytes()).c_str(), port);

  TomoChunkSource source(tomo, /*stream_id=*/0, chunks);
  CountingSink sink;

  SenderStats sender_stats;
  bool sender_ok = false;
  std::thread sender_thread([&] {
    StreamSender sender(topo.value(), sender_config);
    auto stats = sender.run(source, [&] { return tcp_connect("127.0.0.1", port); });
    if (stats.ok()) {
      sender_stats = stats.value();
      sender_ok = true;
    } else {
      std::fprintf(stderr, "sender failed: %s\n", stats.status().to_string().c_str());
    }
  });

  StreamReceiver receiver(topo.value(), receiver_config);
  auto receiver_stats = receiver.run(*listener.value(), sink);
  sender_thread.join();

  if (!receiver_stats.ok() || !sender_ok) {
    if (!receiver_stats.ok()) {
      std::fprintf(stderr, "receiver failed: %s\n",
                   receiver_stats.status().to_string().c_str());
    }
    return 1;
  }

  const ReceiverStats& rx = receiver_stats.value();
  std::printf("sender  : %llu chunks, %s raw -> %s wire (ratio %.2f), %s\n",
              static_cast<unsigned long long>(sender_stats.chunks),
              format_bytes(sender_stats.raw_bytes).c_str(),
              format_bytes(sender_stats.wire_bytes).c_str(),
              sender_stats.compression_ratio(),
              format_gbps(sender_stats.raw_rate()).c_str());
  std::printf("receiver: %llu chunks, %s delivered, %llu corrupt frames, %s\n",
              static_cast<unsigned long long>(rx.chunks),
              format_bytes(rx.raw_bytes).c_str(),
              static_cast<unsigned long long>(rx.corrupt_frames),
              format_gbps(rx.raw_rate()).c_str());
  if (sink.chunks() != chunks) {
    std::fprintf(stderr, "delivery mismatch: expected %llu chunks, got %llu\n",
                 static_cast<unsigned long long>(chunks),
                 static_cast<unsigned long long>(sink.chunks()));
    return 1;
  }
  std::printf("\nall %llu chunks delivered intact.\n",
              static_cast<unsigned long long>(chunks));
  return 0;
}
