// Gateway-federation demo: two gateways on TCP loopback, replicated session
// journals, and a whole-gateway failover with exactly-once intact
// (DESIGN.md §12).
//
//   $ federated_gateway [chunks]
//
// What it does:
//   1. shards the stream over a two-gateway consistent-hash ring and opens
//      a replication link between them on 127.0.0.1: the serving gateway's
//      delivery ledger writes through ReplicatedJournalMedia, so every
//      committed chunk is durable on the buddy *before* it is acked
//      (cluster/replication.h),
//   2. kills the serving gateway once ~40% of the stream has committed —
//      process state AND its local ledger die together, the machine-death
//      case a single-gateway journal cannot survive; only the buddy's
//      replica file remains,
//   3. runs the takeover: the buddy's coordinator re-resolves the stream
//      through the ring, promotes its standby session (fencing the dead
//      primary's epoch), recovers the replica ledger, and serves the
//      stream's RESUME handshake itself,
//   4. demonstrates the split-brain fence: a straggler append from the dead
//      gateway's replicator is refused with DATA_LOSS,
//   5. verifies exactly-once delivery across the two gateways and prints
//      the federation and resume ledgers.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <unistd.h>

#include "cluster/failover.h"
#include "cluster/replication.h"
#include "cluster/ring.h"
#include "core/journal.h"
#include "core/pipeline.h"
#include "metrics/fault_counters.h"
#include "metrics/federation_counters.h"
#include "metrics/resume_counters.h"
#include "msg/faulty.h"
#include "msg/tcp.h"
#include "topo/discover.h"

using namespace numastream;

namespace {

constexpr std::uint64_t kSession = 7;
constexpr std::uint32_t kStream = 1;

NodeConfig make_config(const std::string& host, NodeRole role,
                       std::uint64_t chunk_bytes, std::uint32_t gateway = 0) {
  NodeConfig config;
  config.node_name = host;
  config.role = role;
  config.codec_name = "lz4";
  config.chunk_bytes = chunk_bytes;
  config.recovery.reconnect = true;
  config.recovery.retry.max_attempts = 10000;
  config.recovery.retry.initial_backoff_us = 500;
  config.recovery.retry.max_backoff_us = 20000;
  config.resume.session = kSession;
  config.resume.ack_interval = 8;
  config.overload.credit_window = 8;
  if (role == NodeRole::kSender) {
    config.tasks = {
        TaskGroupConfig{.type = TaskType::kCompress, .count = 2},
        TaskGroupConfig{.type = TaskType::kSend, .count = 1},
    };
  } else {
    // Gateways carry the `cluster` directive: a two-gateway ring where
    // `gateway` is this node's slot.
    config.cluster.gateways = 2;
    config.cluster.self = gateway;
    config.tasks = {
        TaskGroupConfig{.type = TaskType::kReceive, .count = 1},
        TaskGroupConfig{.type = TaskType::kDecompress, .count = 1},
    };
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t chunks = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 96;

  auto topo = discover_topology();
  if (!topo.ok()) {
    std::fprintf(stderr, "topology discovery failed: %s\n",
                 topo.status().to_string().c_str());
    return 1;
  }

  TomoConfig tomo;
  tomo.rows = 256;
  tomo.cols = 675;
  const std::string host = topo.value().hostname();

  // The ring decides which gateway serves the stream and which one holds
  // its replica — deterministically, from the cluster config alone.
  const cluster::GatewayRing ring(2, 16);
  const std::uint32_t victim = ring.primary(kStream);
  const std::uint32_t buddy = ring.buddy(kStream);

  // The buddy's replica ledger lives in a real file on "its" disk: the only
  // copy of the stream's delivery history that survives the kill below.
  char replica_path[] = "/tmp/federated_gateway_replica_XXXXXX";
  const int replica_fd = mkstemp(replica_path);
  if (replica_fd < 0) {
    std::fprintf(stderr, "mkstemp failed\n");
    return 1;
  }
  close(replica_fd);

  ResumeCounters counters;
  FederationCounters fed;
  FaultCounters faults;
  MemoryJournalMedia sender_media;  // the sender's process never dies here
  // The serving gateway's local ledger: memory, because the whole "machine"
  // dies — unlike resumable_stream, nothing local is allowed to survive.
  MemoryJournalMedia victim_media;

  // Replication link: the buddy serves REPL frames on a loopback port, the
  // serving gateway ships every journal flush through it synchronously.
  FileJournalMedia replica(replica_path);
  cluster::StandbySession standby(replica, kSession, &fed);
  auto repl_listener = TcpListener::bind("127.0.0.1", 0);
  if (!repl_listener.ok()) {
    std::fprintf(stderr, "replication bind failed\n");
    return 1;
  }
  const std::uint16_t repl_port = repl_listener.value()->port();
  Status serve_status = Status::ok();
  std::thread repl_thread([&] {
    auto stream = repl_listener.value()->accept();
    if (!stream.ok()) {
      serve_status = stream.status();
      return;
    }
    serve_status = cluster::serve_standby(*stream.value(), standby);
  });
  auto repl_stream = tcp_connect("127.0.0.1", repl_port);
  if (!repl_stream.ok()) {
    std::fprintf(stderr, "replication connect failed\n");
    return 1;
  }
  auto transport = std::make_unique<cluster::StreamReplicationTransport>(
      std::move(repl_stream).value());
  cluster::PrimaryReplicator replicator(*transport, kSession, /*epoch=*/1,
                                        &fed);
  if (!replicator.hello().is_ok()) {
    std::fprintf(stderr, "replication hello failed\n");
    return 1;
  }
  cluster::ReplicatedJournalMedia victim_journal_media(victim_media,
                                                       replicator);

  // Data path: one listener per gateway; the sender re-resolves on redial.
  auto victim_listener = TcpListener::bind("127.0.0.1", 0);
  auto buddy_listener = TcpListener::bind("127.0.0.1", 0);
  if (!victim_listener.ok() || !buddy_listener.ok()) {
    std::fprintf(stderr, "bind failed\n");
    return 1;
  }
  const std::uint16_t victim_port = victim_listener.value()->port();
  const std::uint16_t buddy_port = buddy_listener.value()->port();
  std::atomic<int> phase{1};

  FaultPlan plan;  // no stochastic faults; the gateway kill is the only event
  FaultInjector injector(plan, &faults);
  const DialFn dial = faulty_dialer(
      [&]() -> Result<std::unique_ptr<ByteStream>> {
        switch (phase.load(std::memory_order_acquire)) {
          case 1:
            return tcp_connect("127.0.0.1", victim_port);
          case 2:
            return tcp_connect("127.0.0.1", buddy_port);
          default:
            return unavailable_error("gateway is down");
        }
      },
      injector);

  std::printf("ring: stream %u -> gateway %u (buddy %u); replication on"
              " 127.0.0.1:%u, replica %s\n",
              kStream, victim, buddy, repl_port, replica_path);
  std::printf("streaming %llu chunks of %s via gateway %u"
              " (127.0.0.1:%u) ...\n\n",
              static_cast<unsigned long long>(chunks),
              format_bytes(tomo.chunk_bytes()).c_str(), victim, victim_port);

  TomoChunkSource source(tomo, kStream, chunks);
  CountingSink victim_sink;
  CountingSink buddy_sink;

  SenderJournal sender_journal(sender_media, kSession, &counters);
  if (!sender_journal.recover().is_ok()) {
    std::fprintf(stderr, "sender journal recovery failed\n");
    return 1;
  }
  bool sender_ok = false;
  std::thread sender_thread([&] {
    StreamSender sender(topo.value(),
                        make_config(host, NodeRole::kSender, tomo.chunk_bytes()));
    auto stats = sender.run(source, dial, nullptr, &faults, {}, {}, {},
                            ResumeHooks{.sender_journal = &sender_journal,
                                        .counters = &counters});
    sender_ok = stats.ok();
    if (!stats.ok()) {
      std::fprintf(stderr, "sender failed: %s\n",
                   stats.status().to_string().c_str());
    }
  });

  // The serving gateway: its ledger writes through the replicating tee, so
  // nothing is acked before the buddy holds it durably.
  std::thread victim_thread([&] {
    ReceiverJournal journal(victim_journal_media, kSession, &counters);
    if (!journal.recover().is_ok()) {
      std::fprintf(stderr, "gateway %u ledger recovery failed\n", victim);
      return;
    }
    NodeConfig config =
        make_config(host, NodeRole::kReceiver, tomo.chunk_bytes(), victim);
    config.recovery.watchdog_ms = 500;
    StreamReceiver receiver(topo.value(), std::move(config));
    auto stats = receiver.run(*victim_listener.value(), victim_sink, nullptr,
                              &faults, {}, {}, {},
                              ResumeHooks{.receiver_journal = &journal,
                                          .counters = &counters});
    (void)stats;  // a watchdog trip is this gateway's expected death
  });

  // Kill the gateway once ~40% of the stream has committed.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (victim_sink.chunks() < (2 * chunks) / 5 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  phase.store(0, std::memory_order_release);
  injector.trigger_crash(/*restart_delay_micros=*/200000);
  counters.crashes_observed.fetch_add(1, std::memory_order_relaxed);
  victim_media.crash();  // machine death: local ledger gone with the box
  std::printf("gateway %u killed after %llu delivered chunks; its local"
              " ledger died with it — only the buddy's replica survives\n",
              victim, static_cast<unsigned long long>(victim_sink.chunks()));
  victim_thread.join();

  // Takeover on the buddy: re-resolve through the ring, fence the epoch.
  cluster::FailoverCoordinator coordinator(ring, buddy, &fed);
  const std::vector<std::uint32_t> adopted =
      coordinator.plan_takeover(victim, {kStream});
  const std::uint64_t epoch = standby.promote();
  std::printf("gateway %u takes over: %zu stream(s) re-resolved, epoch"
              " fenced at %llu\n",
              buddy, adopted.size(), static_cast<unsigned long long>(epoch));

  // Split-brain guard: a straggler append from the dead gateway's
  // replicator must bounce off the fence, not fork history.
  JournalRecord straggler;
  straggler.type = JournalRecordType::kDelivered;
  straggler.stream_id = kStream;
  straggler.sequence = chunks + 1;
  const Bytes raw = encode_journal_record(straggler);
  const Status fenced = replicator.ship(ByteSpan(raw.data(), raw.size()));
  if (fenced.is_ok()) {
    std::fprintf(stderr, "fence failure: a stale append was accepted\n");
    return 1;
  }
  std::printf("stale append refused: %s\n\n", fenced.to_string().c_str());

  // The buddy recovers the stream's ledger from the replica — a fresh read
  // of the file, exactly what a real takeover does — and resumes service.
  FileJournalMedia replica2(replica_path);
  ReceiverJournal buddy_journal(replica2, kSession, &counters);
  if (!buddy_journal.recover().is_ok()) {
    std::fprintf(stderr, "replica recovery failed\n");
    return 1;
  }
  std::printf("gateway %u recovered the replica; negotiating:\n", buddy);
  for (const auto& [stream, watermark] : buddy_journal.watermarks()) {
    std::printf("  RESUME point: stream %u, watermark %llu"
                " (everything below is committed)\n",
                stream, static_cast<unsigned long long>(watermark));
  }
  std::printf("\n");

  bool buddy_ok = false;
  std::thread buddy_thread([&] {
    StreamReceiver receiver(
        topo.value(),
        make_config(host, NodeRole::kReceiver, tomo.chunk_bytes(), buddy));
    auto stats = receiver.run(*buddy_listener.value(), buddy_sink, nullptr,
                              &faults, {}, {}, {},
                              ResumeHooks{.receiver_journal = &buddy_journal,
                                          .counters = &counters});
    buddy_ok = stats.ok();
    if (!stats.ok()) {
      std::fprintf(stderr, "gateway %u failed: %s\n", buddy,
                   stats.status().to_string().c_str());
    }
  });
  phase.store(2, std::memory_order_release);

  sender_thread.join();
  buddy_thread.join();
  transport.reset();  // close the replication link: the standby loop exits
  repl_thread.join();
  std::remove(replica_path);
  if (!sender_ok || !buddy_ok) {
    return 1;
  }
  if (!serve_status.is_ok()) {
    std::fprintf(stderr, "standby service loop failed: %s\n",
                 serve_status.to_string().c_str());
    return 1;
  }

  const std::uint64_t total = victim_sink.chunks() + buddy_sink.chunks();
  std::printf("delivered: %llu on gateway %u + %llu on gateway %u ="
              " %llu of %llu\n\n",
              static_cast<unsigned long long>(victim_sink.chunks()), victim,
              static_cast<unsigned long long>(buddy_sink.chunks()), buddy,
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(chunks));

  std::printf("federation ledger:\n%s\n",
              federation_table(fed.snapshot(), /*nonzero_only=*/true)
                  .render()
                  .c_str());
  std::printf("resume ledger:\n%s\n",
              resume_table(counters.snapshot(), /*nonzero_only=*/true)
                  .render()
                  .c_str());

  if (total != chunks) {
    std::fprintf(stderr,
                 "delivery mismatch: expected %llu chunks exactly once, got %llu\n",
                 static_cast<unsigned long long>(chunks),
                 static_cast<unsigned long long>(total));
    return 1;
  }
  std::printf("all %llu chunks delivered exactly once across the gateway"
              " failover.\n",
              static_cast<unsigned long long>(chunks));
  return 0;
}
