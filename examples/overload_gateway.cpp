// Overload-protection demo: a gateway whose consumer runs at ~10% of the
// sender's rate, kept alive by the overload directive.
//
//   $ overload_gateway [chunks] [budget_kib]
//
// What it does:
//   1. runs the real TCP-loopback pipeline against a deliberately slow sink
//      (the "full parallel file system" every gateway eventually meets),
//   2. protects the process with every overload mechanism at once: a
//      memory-budget ledger capping in-flight bytes, credit-based flow
//      control pinning the wire backlog, and drop-newest load shedding
//      between queue watermarks (core/config.h `overload` directive),
//   3. after a while, requests a *graceful drain* (core/drain.h): ingest
//      stops, in-flight frames flush under a deadline, and the run ends
//      clean instead of being killed mid-flight,
//   4. prints the overload ledger (metrics/overload_counters.h) and the
//      budget's per-stream accounting — every produced chunk is either
//      delivered or visible in exactly one counter.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/budget.h"
#include "core/drain.h"
#include "core/pipeline.h"
#include "metrics/overload_counters.h"
#include "msg/tcp.h"
#include "topo/discover.h"

using namespace numastream;

namespace {

/// A consumer that cannot keep up: sleeps per delivered chunk.
class ThrottledSink final : public ChunkSink {
 public:
  void deliver(Chunk chunk) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    chunks_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(chunk.payload.size(), std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t chunks() const noexcept { return chunks_.load(); }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_.load(); }

 private:
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t chunks = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400;
  const std::uint64_t budget_kib =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 256;

  auto topo = discover_topology();
  if (!topo.ok()) {
    std::fprintf(stderr, "topology discovery failed: %s\n",
                 topo.status().to_string().c_str());
    return 1;
  }

  TomoConfig tomo;
  tomo.rows = 64;
  tomo.cols = 270;  // ~138 KiB raw chunks: small enough to stress admission

  OverloadConfig overload;
  overload.budget_bytes = budget_kib * 1024;
  overload.credit_window = 4;
  overload.shed_policy = ShedPolicy::kDropNewest;
  overload.high_watermark = 6;
  overload.low_watermark = 2;
  overload.drain_deadline_ms = 10000;

  NodeConfig sender_config;
  sender_config.node_name = topo.value().hostname();
  sender_config.role = NodeRole::kSender;
  sender_config.codec_name = "lz4";
  sender_config.chunk_bytes = tomo.chunk_bytes();
  sender_config.overload = overload;
  sender_config.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = 2},
      TaskGroupConfig{.type = TaskType::kSend, .count = 2},
  };

  NodeConfig receiver_config = sender_config;
  receiver_config.role = NodeRole::kReceiver;
  receiver_config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 2},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 2},
  };

  auto listener = TcpListener::bind("127.0.0.1", 0);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind failed: %s\n",
                 listener.status().to_string().c_str());
    return 1;
  }
  const std::uint16_t port = listener.value()->port();

  std::printf("overload gateway on 127.0.0.1:%u — %llu chunks against a "
              "10ms/chunk sink, %llu KiB budget\n",
              port, static_cast<unsigned long long>(chunks),
              static_cast<unsigned long long>(budget_kib));

  TomoChunkSource source(tomo, /*stream_id=*/1, chunks);
  ThrottledSink sink;
  MemoryBudget ledger(overload.budget_bytes);
  OverloadCounters sender_counters;
  OverloadCounters receiver_counters;
  DrainController drain;

  // Operator action: after 300ms of overload, wind the stream down
  // gracefully instead of letting it run (or killing it).
  std::thread operator_thread([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    std::printf("\n-- operator requests graceful drain --\n");
    drain.request();
  });

  Result<SenderStats> sender_stats = Result<SenderStats>(SenderStats{});
  std::thread sender_thread([&] {
    StreamSender sender(topo.value(), sender_config);
    sender_stats = sender.run(
        source, [&] { return tcp_connect("127.0.0.1", port); }, nullptr, nullptr,
        OverloadHooks{.budget = &ledger,
                      .counters = &sender_counters,
                      .drain = &drain});
  });

  StreamReceiver receiver(topo.value(), receiver_config);
  auto receiver_stats =
      receiver.run(*listener.value(), sink, nullptr, nullptr,
                   OverloadHooks{.counters = &receiver_counters});
  sender_thread.join();
  operator_thread.join();

  if (!sender_stats.ok() || !receiver_stats.ok()) {
    std::fprintf(stderr, "pipeline failed: sender=%s receiver=%s\n",
                 sender_stats.status().to_string().c_str(),
                 receiver_stats.status().to_string().c_str());
    return 1;
  }

  const auto sent = sender_counters.snapshot();
  const auto received = receiver_counters.snapshot();
  std::printf("\ndelivered %llu chunks (%.1f MiB) of %llu produced\n",
              static_cast<unsigned long long>(sink.chunks()),
              static_cast<double>(sink.bytes()) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(sink.chunks() + sent.total_shed()));
  std::printf("budget peak %llu / %llu bytes (never exceeded), %llu bytes "
              "still charged after teardown\n",
              static_cast<unsigned long long>(ledger.peak()),
              static_cast<unsigned long long>(ledger.cap()),
              static_cast<unsigned long long>(ledger.used()));

  std::printf("\nsender overload ledger:\n%s\n",
              overload_table(sent, /*nonzero_only=*/true).render().c_str());
  std::printf("receiver overload ledger:\n%s\n",
              overload_table(received, /*nonzero_only=*/true).render().c_str());
  return 0;
}
