// Topology report: what the runtime knows about THIS machine, and what its
// configuration generator would do with it.
//
//   $ topology_report
//
// On a real NUMA gateway this prints the socket/NIC layout and a ready-to-use
// receiver configuration; on a laptop/CI box it demonstrates the graceful
// single-domain fallback.
#include <cstdio>

#include "core/config_generator.h"
#include "topo/discover.h"

using namespace numastream;

int main() {
  auto topo = discover_topology();
  if (!topo.ok()) {
    std::fprintf(stderr, "topology discovery failed: %s\n",
                 topo.status().to_string().c_str());
    return 1;
  }
  std::printf("discovered topology:\n%s\n", topo.value().describe().c_str());

  const auto nic = topo.value().preferred_nic();
  if (nic.has_value()) {
    std::printf("preferred streaming NIC: %s (%.0f Gbps) on NUMA domain %d\n\n",
                nic->name.c_str(), nic->line_rate_gbps, nic->numa_domain);
  } else {
    std::printf("no NIC with a known NUMA attachment was found; the runtime "
                "would fall back to OS placement on this host.\n\n");
  }

  // Plan a single-stream ingest with this host as the receiver and a
  // paper-style sender on the other end.
  ConfigGenerator generator(topo.value(), {updraft_topology("sender")});
  WorkloadSpec spec;
  spec.num_streams = 1;
  auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  if (!plan.ok()) {
    std::printf("NUMA-aware planning unavailable on this host: %s\n",
                plan.status().message().c_str());
    std::printf("(expected on hosts without NUMA/NIC information)\n");
    return 0;
  }
  std::printf("generator rationale:\n%s\n", plan.value().rationale.c_str());
  std::printf("receiver configuration for this host:\n%s",
              plan.value().receiver.serialize().c_str());
  return 0;
}
