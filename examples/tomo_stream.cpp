// Tomography streaming example: the paper's end-to-end workflow on one host.
//
//   $ tomo_stream [projections]
//
// 1. Synthesizes a tomographic dataset (the 16 GB dataset of §3.2, scaled
//    down) and writes it to an .sdf container — the role HDF5 plays in the
//    paper's sender.
// 2. Streams the dataset file over TCP loopback through the compression
//    pipeline, like a beamline pushing projections to a gateway.
// 3. On the receive side, every delivered projection is verified bit-for-bit
//    against an independently regenerated reference.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <thread>

#include "core/pipeline.h"
#include "data/sdf.h"
#include "msg/tcp.h"
#include "topo/discover.h"

using namespace numastream;

namespace {

/// Streams chunks out of an SdfReader (thread-safe).
class SdfChunkSource final : public ChunkSource {
 public:
  explicit SdfChunkSource(SdfReader reader) : reader_(std::move(reader)) {}

  std::optional<Chunk> next() override {
    const std::lock_guard<std::mutex> lock(mu_);
    if (next_index_ >= reader_.header().chunk_count) {
      return std::nullopt;
    }
    auto payload = reader_.read_chunk(next_index_);
    if (!payload.ok()) {
      std::fprintf(stderr, "dataset read failed: %s\n",
                   payload.status().to_string().c_str());
      return std::nullopt;
    }
    Chunk chunk;
    chunk.stream_id = 0;
    chunk.sequence = next_index_++;
    chunk.payload = std::move(payload).value();
    return chunk;
  }

 private:
  std::mutex mu_;
  SdfReader reader_;
  std::uint64_t next_index_ = 0;
};

/// Verifies each delivered projection against the generator.
class VerifyingSink final : public ChunkSink {
 public:
  explicit VerifyingSink(const TomoConfig& config) : generator_(config) {}

  void deliver(Chunk chunk) override {
    const Bytes expected = generator_.projection(chunk.sequence);
    if (chunk.payload == expected) {
      verified_.fetch_add(1, std::memory_order_relaxed);
    } else {
      mismatched_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::uint64_t verified() const { return verified_.load(); }
  [[nodiscard]] std::uint64_t mismatched() const { return mismatched_.load(); }

 private:
  TomoGenerator generator_;
  std::atomic<std::uint64_t> verified_{0};
  std::atomic<std::uint64_t> mismatched_{0};
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t projections =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12;

  auto topo = discover_topology();
  if (!topo.ok()) {
    std::fprintf(stderr, "topology discovery failed: %s\n",
                 topo.status().to_string().c_str());
    return 1;
  }

  TomoConfig tomo;  // scaled-down projection keeps the example fast
  tomo.rows = 512;
  tomo.cols = 675;

  // ---- 1. synthesize the dataset file ----
  const std::string path =
      (std::filesystem::temp_directory_path() / "numastream_tomo.sdf").string();
  {
    const TomoGenerator generator(tomo);
    auto writer = SdfWriter::create(path, SdfHeader{.chunk_bytes = tomo.chunk_bytes(),
                                                    .rows = tomo.rows,
                                                    .cols = tomo.cols,
                                                    .element_size = 2});
    if (!writer.ok()) {
      std::fprintf(stderr, "cannot create dataset: %s\n",
                   writer.status().to_string().c_str());
      return 1;
    }
    for (std::uint64_t i = 0; i < projections; ++i) {
      if (!writer.value().append(generator.projection(i)).is_ok()) {
        std::fprintf(stderr, "dataset write failed\n");
        return 1;
      }
    }
    if (!writer.value().close().is_ok()) {
      return 1;
    }
  }
  std::printf("dataset: %llu projections of %s in %s\n",
              static_cast<unsigned long long>(projections),
              format_bytes(tomo.chunk_bytes()).c_str(), path.c_str());

  // ---- 2. stream it ----
  auto reader = SdfReader::open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "cannot open dataset: %s\n",
                 reader.status().to_string().c_str());
    return 1;
  }
  SdfChunkSource source(std::move(reader).value());
  VerifyingSink sink(tomo);

  NodeConfig sender_config;
  sender_config.node_name = "beamline";
  sender_config.role = NodeRole::kSender;
  sender_config.codec_name = "lz4";
  sender_config.chunk_bytes = tomo.chunk_bytes();
  sender_config.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = 2},
      TaskGroupConfig{.type = TaskType::kSend, .count = 1},
  };
  NodeConfig receiver_config;
  receiver_config.node_name = "gateway";
  receiver_config.role = NodeRole::kReceiver;
  receiver_config.codec_name = "lz4";
  receiver_config.chunk_bytes = tomo.chunk_bytes();
  receiver_config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 1},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 2},
  };

  auto listener = TcpListener::bind("127.0.0.1", 0);
  if (!listener.ok()) {
    return 1;
  }
  const std::uint16_t port = listener.value()->port();

  SenderStats sender_stats;
  std::thread sender_thread([&] {
    StreamSender sender(topo.value(), sender_config);
    auto stats = sender.run(source, [&] { return tcp_connect("127.0.0.1", port); });
    if (stats.ok()) {
      sender_stats = stats.value();
    } else {
      std::fprintf(stderr, "sender failed: %s\n", stats.status().to_string().c_str());
    }
  });
  StreamReceiver receiver(topo.value(), receiver_config);
  auto receiver_stats = receiver.run(*listener.value(), sink);
  sender_thread.join();
  std::filesystem::remove(path);

  if (!receiver_stats.ok()) {
    std::fprintf(stderr, "receiver failed: %s\n",
                 receiver_stats.status().to_string().c_str());
    return 1;
  }

  // ---- 3. report verification ----
  std::printf("streamed %s raw as %s on the wire (LZ4 ratio %.2f) at %s\n",
              format_bytes(sender_stats.raw_bytes).c_str(),
              format_bytes(sender_stats.wire_bytes).c_str(),
              sender_stats.compression_ratio(),
              format_gbps(sender_stats.raw_rate()).c_str());
  std::printf("verified %llu/%llu projections bit-for-bit, %llu mismatched\n",
              static_cast<unsigned long long>(sink.verified()),
              static_cast<unsigned long long>(projections),
              static_cast<unsigned long long>(sink.mismatched()));
  return sink.verified() == projections && sink.mismatched() == 0 ? 0 : 1;
}
