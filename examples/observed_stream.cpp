// Observability demo: the real TCP-loopback pipeline with the `observe`
// directive turned all the way up.
//
//   $ observed_stream [chunks] [trace_dir]
//
// What it does:
//   1. streams synthetic tomography chunks through the real pipeline with
//      chunk-lifecycle tracing, per-stage latency histograms, and the
//      unified MetricsRegistry enabled (core/config.h `observe` directive),
//   2. samples the registry on a background SnapshotSampler while the run
//      is live — queue depths, budget occupancy, and the fault ledger all
//      land in one time series,
//   3. after the run, prints per-stage latency percentiles (p50/p99/p999)
//      and the last registry snapshot, and writes the chunk-lifecycle spans
//      as both JSONL and Chrome-trace JSON (load the latter in
//      chrome://tracing or https://ui.perfetto.dev).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "core/pipeline.h"
#include "metrics/fault_counters.h"
#include "metrics/table.h"
#include "msg/tcp.h"
#include "obs/histogram.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "topo/discover.h"

using namespace numastream;

namespace {

bool write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  out << body;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t chunks = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  const std::string trace_dir = argc > 2 ? argv[2] : ".";

  auto topo = discover_topology();
  if (!topo.ok()) {
    std::fprintf(stderr, "topology discovery failed: %s\n",
                 topo.status().to_string().c_str());
    return 1;
  }

  TomoConfig tomo;
  tomo.rows = 128;
  tomo.cols = 270;

  NodeConfig sender_config;
  sender_config.node_name = topo.value().hostname();
  sender_config.role = NodeRole::kSender;
  sender_config.codec_name = "lz4";
  sender_config.chunk_bytes = tomo.chunk_bytes();
  sender_config.observe.trace = true;
  sender_config.observe.ring_capacity = 4096;
  sender_config.observe.latency = true;
  sender_config.observe.sample_ms = 50;
  sender_config.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = 2},
      TaskGroupConfig{.type = TaskType::kSend, .count = 2},
  };

  NodeConfig receiver_config = sender_config;
  receiver_config.role = NodeRole::kReceiver;
  receiver_config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 2},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 2},
  };

  // The directive serializes with the config, so a run's observability
  // settings travel with its placement.
  std::printf("sender config:\n%s\n", sender_config.serialize().c_str());

  auto listener = TcpListener::bind("127.0.0.1", 0);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind failed: %s\n",
                 listener.status().to_string().c_str());
    return 1;
  }
  const std::uint16_t port = listener.value()->port();

  // One tracer per node: the sender's worker ids are compress then send,
  // the receiver's receive then decompress, both starting at 0 — separate
  // ring sets keep them from colliding.
  obs::Tracer sender_tracer(4, sender_config.observe.ring_capacity);
  obs::Tracer receiver_tracer(4, receiver_config.observe.ring_capacity);
  obs::StageLatencies latencies(
      static_cast<int>(topo.value().domain_count()));
  obs::MetricsRegistry registry;

  FaultCounters faults;
  if (auto status = registry.register_fault_counters("fault", faults);
      !status.is_ok()) {
    std::fprintf(stderr, "registry: %s\n", status.to_string().c_str());
    return 1;
  }

  obs::SnapshotSampler sampler(&registry, sender_config.observe.sample_ms);
  sampler.start();

  TomoChunkSource source(tomo, /*stream_id=*/1, chunks);
  CountingSink sink;

  Result<SenderStats> sender_stats = Result<SenderStats>(SenderStats{});
  std::thread sender_thread([&] {
    StreamSender sender(topo.value(), sender_config);
    sender_stats = sender.run(
        source, [&] { return tcp_connect("127.0.0.1", port); }, nullptr,
        &faults, {}, {},
        ObsHooks{.tracer = &sender_tracer,
                 .latencies = &latencies,
                 .registry = &registry});
  });

  StreamReceiver receiver(topo.value(), receiver_config);
  auto receiver_stats = receiver.run(
      *listener.value(), sink, nullptr, &faults, {}, {},
      ObsHooks{.tracer = &receiver_tracer,
               .latencies = &latencies,
               .registry = &registry});
  sender_thread.join();
  sampler.stop();

  if (!sender_stats.ok() || !receiver_stats.ok()) {
    std::fprintf(stderr, "pipeline failed: sender=%s receiver=%s\n",
                 sender_stats.status().to_string().c_str(),
                 receiver_stats.status().to_string().c_str());
    return 1;
  }

  std::printf("delivered %llu chunks at %.2f Gbps raw\n\n",
              static_cast<unsigned long long>(sink.chunks()),
              receiver_stats.value().raw_rate() * 8.0 / 1e9);

  std::printf("per-stage latency:\n%s\n", latencies.table().render().c_str());
  std::printf("last registry snapshot (%zu samples over the run):\n%s\n",
              sampler.series().snapshots().size(),
              sampler.series().latest_table().render().c_str());

  auto sender_spans = sender_tracer.drain_sorted();
  auto receiver_spans = receiver_tracer.drain_sorted();
  const std::string jsonl_path = trace_dir + "/observed_stream.jsonl";
  const std::string chrome_path = trace_dir + "/observed_stream.trace.json";
  std::vector<obs::Span> all_spans = sender_spans;
  all_spans.insert(all_spans.end(), receiver_spans.begin(), receiver_spans.end());
  if (!write_file(jsonl_path, obs::spans_to_jsonl(all_spans)) ||
      !write_file(chrome_path, obs::spans_to_chrome_json(all_spans))) {
    std::fprintf(stderr, "could not write traces under %s\n", trace_dir.c_str());
    return 1;
  }
  std::printf("wrote %zu spans (%llu dropped) to %s and %s\n",
              all_spans.size(),
              static_cast<unsigned long long>(sender_tracer.dropped_spans() +
                                              receiver_tracer.dropped_spans()),
              jsonl_path.c_str(), chrome_path.c_str());
  return 0;
}
