// Crash-resumption demo: a TCP loopback stream whose receiver is killed
// mid-transfer and restarted over its durable delivery ledger (DESIGN.md
// §11).
//
//   $ resumable_stream [chunks]
//
// What it does:
//   1. runs StreamSender/StreamReceiver over 127.0.0.1 with the `resume`
//      directive on: the sender write-ahead-journals every chunk before the
//      wire, the receiver journals every sink delivery to a real fsync'd
//      file (core/journal.h) and answers each (re)connect with a RESUME
//      frame carrying its committed watermarks,
//   2. kills the receiver once ~40% of the stream has committed — its
//      process state (queued chunks, connections) is gone; only the
//      journal file survives,
//   3. restarts a second receiver incarnation over the recovered ledger,
//      prints the resume points it negotiates, and lets the sender's
//      retained-window replay close the gap,
//   4. verifies exactly-once delivery across both incarnations and prints
//      the resume ledger (metrics/resume_counters.h): re-work is bounded
//      by the unacked window, never the committed prefix.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <unistd.h>

#include "core/journal.h"
#include "core/pipeline.h"
#include "metrics/fault_counters.h"
#include "metrics/resume_counters.h"
#include "msg/faulty.h"
#include "msg/tcp.h"
#include "topo/discover.h"

using namespace numastream;

namespace {

constexpr std::uint64_t kSession = 7;

NodeConfig make_config(const std::string& host, NodeRole role,
                       std::uint64_t chunk_bytes) {
  NodeConfig config;
  config.node_name = host;
  config.role = role;
  config.codec_name = "lz4";
  config.chunk_bytes = chunk_bytes;
  config.recovery.reconnect = true;
  config.recovery.retry.max_attempts = 10000;
  config.recovery.retry.initial_backoff_us = 500;
  config.recovery.retry.max_backoff_us = 20000;
  config.resume.session = kSession;
  config.resume.ack_interval = 8;
  config.overload.credit_window = 8;
  if (role == NodeRole::kSender) {
    config.tasks = {
        TaskGroupConfig{.type = TaskType::kCompress, .count = 2},
        TaskGroupConfig{.type = TaskType::kSend, .count = 1},
    };
  } else {
    config.tasks = {
        TaskGroupConfig{.type = TaskType::kReceive, .count = 1},
        TaskGroupConfig{.type = TaskType::kDecompress, .count = 1},
    };
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t chunks = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 96;

  auto topo = discover_topology();
  if (!topo.ok()) {
    std::fprintf(stderr, "topology discovery failed: %s\n",
                 topo.status().to_string().c_str());
    return 1;
  }

  TomoConfig tomo;
  tomo.rows = 256;
  tomo.cols = 675;
  const std::string host = topo.value().hostname();

  // The receiver's delivery ledger lives in a real file: the only state
  // that survives the kill below.
  char ledger_path[] = "/tmp/resumable_stream_ledger_XXXXXX";
  const int ledger_fd = mkstemp(ledger_path);
  if (ledger_fd < 0) {
    std::fprintf(stderr, "mkstemp failed\n");
    return 1;
  }
  close(ledger_fd);

  ResumeCounters counters;
  FaultCounters faults;
  MemoryJournalMedia sender_media;  // the sender's process never dies here

  // Phase 1: receiver #1 listens. Phase 0: blackout. Phase 2: receiver #2.
  auto listener1 = TcpListener::bind("127.0.0.1", 0);
  auto listener2 = TcpListener::bind("127.0.0.1", 0);
  if (!listener1.ok() || !listener2.ok()) {
    std::fprintf(stderr, "bind failed\n");
    return 1;
  }
  const std::uint16_t port1 = listener1.value()->port();
  const std::uint16_t port2 = listener2.value()->port();
  std::atomic<int> phase{1};

  // trigger_crash() cuts the sender's established connections and refuses
  // dials for the blackout — the wire-level shape of a peer process dying.
  FaultPlan plan;  // no stochastic faults; the kill is the only event
  FaultInjector injector(plan, &faults);
  const DialFn dial = faulty_dialer(
      [&]() -> Result<std::unique_ptr<ByteStream>> {
        switch (phase.load(std::memory_order_acquire)) {
          case 1:
            return tcp_connect("127.0.0.1", port1);
          case 2:
            return tcp_connect("127.0.0.1", port2);
          default:
            return unavailable_error("receiver is down");
        }
      },
      injector);

  std::printf("streaming %llu chunks of %s over 127.0.0.1:%u, session %llu,"
              " ledger %s ...\n\n",
              static_cast<unsigned long long>(chunks),
              format_bytes(tomo.chunk_bytes()).c_str(), port1,
              static_cast<unsigned long long>(kSession), ledger_path);

  TomoChunkSource source(tomo, /*stream_id=*/1, chunks);
  CountingSink sink1;
  CountingSink sink2;

  SenderJournal sender_journal(sender_media, kSession, &counters);
  if (!sender_journal.recover().is_ok()) {
    std::fprintf(stderr, "sender journal recovery failed\n");
    return 1;
  }
  bool sender_ok = false;
  std::thread sender_thread([&] {
    StreamSender sender(topo.value(),
                        make_config(host, NodeRole::kSender, tomo.chunk_bytes()));
    auto stats = sender.run(source, dial, nullptr, &faults, {}, {}, {},
                            ResumeHooks{.sender_journal = &sender_journal,
                                        .counters = &counters});
    sender_ok = stats.ok();
    if (!stats.ok()) {
      std::fprintf(stderr, "sender failed: %s\n",
                   stats.status().to_string().c_str());
    }
  });

  // Receiver incarnation #1: a short watchdog converts the post-kill
  // silence into a clean thread exit — the demo's stand-in for `kill -9`.
  std::thread receiver1_thread([&] {
    FileJournalMedia media(ledger_path);
    ReceiverJournal journal(media, kSession, &counters);
    if (!journal.recover().is_ok()) {
      std::fprintf(stderr, "receiver #1 ledger recovery failed\n");
      return;
    }
    NodeConfig config = make_config(host, NodeRole::kReceiver, tomo.chunk_bytes());
    config.recovery.watchdog_ms = 500;
    StreamReceiver receiver(topo.value(), std::move(config));
    auto stats = receiver.run(*listener1.value(), sink1, nullptr, &faults,
                              {}, {}, {},
                              ResumeHooks{.receiver_journal = &journal,
                                          .counters = &counters});
    (void)stats;  // a watchdog trip is this incarnation's expected death
  });

  // Kill the receiver once ~40% of the stream has committed.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (sink1.chunks() < (2 * chunks) / 5 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  phase.store(0, std::memory_order_release);
  injector.trigger_crash(/*restart_delay_micros=*/200000);
  counters.crashes_observed.fetch_add(1, std::memory_order_relaxed);
  std::printf("receiver killed after %llu delivered chunks; ledger file is"
              " all that survives\n",
              static_cast<unsigned long long>(sink1.chunks()));
  receiver1_thread.join();

  // Receiver incarnation #2: recover the ledger and print the resume
  // points its RESUME handshake will carry back to the sender.
  FileJournalMedia media2(ledger_path);
  ReceiverJournal journal2(media2, kSession, &counters);
  if (!journal2.recover().is_ok()) {
    std::fprintf(stderr, "receiver #2 ledger recovery failed\n");
    return 1;
  }
  std::printf("receiver restarted over the recovered ledger; negotiating:\n");
  for (const auto& [stream, watermark] : journal2.watermarks()) {
    std::printf("  RESUME point: stream %u, watermark %llu"
                " (everything below is committed)\n",
                stream, static_cast<unsigned long long>(watermark));
  }
  std::printf("\n");

  bool receiver2_ok = false;
  std::thread receiver2_thread([&] {
    StreamReceiver receiver(
        topo.value(), make_config(host, NodeRole::kReceiver, tomo.chunk_bytes()));
    auto stats = receiver.run(*listener2.value(), sink2, nullptr, &faults,
                              {}, {}, {},
                              ResumeHooks{.receiver_journal = &journal2,
                                          .counters = &counters});
    receiver2_ok = stats.ok();
    if (!stats.ok()) {
      std::fprintf(stderr, "receiver #2 failed: %s\n",
                   stats.status().to_string().c_str());
    }
  });
  phase.store(2, std::memory_order_release);

  sender_thread.join();
  receiver2_thread.join();
  std::remove(ledger_path);
  if (!sender_ok || !receiver2_ok) {
    return 1;
  }

  const std::uint64_t total = sink1.chunks() + sink2.chunks();
  std::printf("delivered: %llu before the kill + %llu after = %llu of %llu\n\n",
              static_cast<unsigned long long>(sink1.chunks()),
              static_cast<unsigned long long>(sink2.chunks()),
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(chunks));

  std::printf("resume ledger:\n%s\n",
              resume_table(counters.snapshot(), /*nonzero_only=*/true)
                  .render()
                  .c_str());

  if (total != chunks) {
    std::fprintf(stderr,
                 "delivery mismatch: expected %llu chunks exactly once, got %llu\n",
                 static_cast<unsigned long long>(chunks),
                 static_cast<unsigned long long>(total));
    return 1;
  }
  std::printf("all %llu chunks delivered exactly once across the restart.\n",
              static_cast<unsigned long long>(chunks));
  return 0;
}
