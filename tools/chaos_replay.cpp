// chaos_replay: run the chaos explorer, or deterministically re-run a
// repro bundle it produced (DESIGN.md §16).
//
//   chaos_replay explore --seed N [--episodes N] [--events N] [--streams N]
//                        [--plant-fencing-bug] [--out FILE]
//       Runs N random-walk episodes. Exit 0: clean sweep. Exit 1: a
//       violation was found; the shrunk repro bundle is written to FILE
//       (or stdout) and its summary to stderr. Exit 2: usage error.
//
//   chaos_replay replay FILE
//       Parses a bundle and re-runs it. Exit 0: the bundle's violation was
//       reproduced exactly (same probe, stream, sequence). Exit 1: the run
//       did not reproduce it. Exit 2: unreadable or malformed bundle.
//
// The explore run prints "episodes=<n> seed=<n>" on success so CI job
// summaries can echo the coverage actually achieved.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "check/explorer.h"

namespace {

using numastream::check::ChaosExplorer;
using numastream::check::ChaosExplorerOptions;
using numastream::check::ChaosExplorerReport;
using numastream::check::ReproBundle;

int usage() {
  std::cerr
      << "usage:\n"
      << "  chaos_replay explore --seed N [--episodes N] [--events N]\n"
      << "                       [--streams N] [--plant-fencing-bug]"
      << " [--out FILE]\n"
      << "  chaos_replay replay FILE\n";
  return 2;
}

int run_explore(int argc, char** argv) {
  ChaosExplorerOptions options;
  std::string out_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](std::uint64_t& target) -> bool {
      if (i + 1 >= argc) {
        return false;
      }
      try {
        target = std::stoull(argv[++i]);
      } catch (const std::exception&) {
        return false;
      }
      return true;
    };
    std::uint64_t value = 0;
    if (arg == "--seed" && next_value(value)) {
      options.seed = value;
    } else if (arg == "--episodes" && next_value(value)) {
      options.episodes = static_cast<std::uint32_t>(value);
    } else if (arg == "--events" && next_value(value)) {
      options.events = static_cast<std::uint32_t>(value);
    } else if (arg == "--streams" && next_value(value)) {
      options.streams = static_cast<std::uint32_t>(value);
    } else if (arg == "--plant-fencing-bug") {
      options.plant_fencing_bug = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "chaos_replay: bad argument '" << arg << "'\n";
      return usage();
    }
  }
  if (options.seed == 0 || options.episodes == 0 || options.events == 0) {
    std::cerr << "chaos_replay: --seed, --episodes and --events must be"
              << " nonzero\n";
    return usage();
  }

  ChaosExplorer explorer(options);
  const ChaosExplorerReport report = explorer.explore();
  std::cout << "episodes=" << report.episodes_run << " seed=" << options.seed
            << (report.found ? " result=violation" : " result=clean")
            << "\n";
  if (!report.found) {
    return 0;
  }
  std::cerr << "chaos_replay: episode " << report.bundle.episode
            << " violated " << report.bundle.violation.to_string()
            << "; shrunk " << report.raw_events << " -> "
            << report.bundle.schedule.size() << " event(s)\n";
  const std::string text = serialize_bundle(report.bundle);
  if (out_path.empty()) {
    std::cout << text;
  } else {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out || !(out << text)) {
      std::cerr << "chaos_replay: cannot write bundle to '" << out_path
                << "'\n";
      return 2;
    }
    std::cerr << "chaos_replay: bundle written to " << out_path << "\n";
  }
  return 1;
}

int run_replay(int argc, char** argv) {
  if (argc != 3) {
    return usage();
  }
  std::ifstream in(argv[2], std::ios::binary);
  if (!in) {
    std::cerr << "chaos_replay: cannot read '" << argv[2] << "'\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto bundle = numastream::check::parse_bundle(text.str());
  if (!bundle.ok()) {
    std::cerr << "chaos_replay: " << bundle.status().message() << "\n";
    return 2;
  }
  const numastream::Status replayed = ChaosExplorer::replay(bundle.value());
  if (replayed.is_ok()) {
    std::cout << "reproduced " << bundle.value().violation.to_string()
              << " with " << bundle.value().schedule.size() << " event(s)\n";
    return 0;
  }
  std::cerr << "chaos_replay: " << replayed.message() << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  if (std::strcmp(argv[1], "explore") == 0) {
    return run_explore(argc, argv);
  }
  if (std::strcmp(argv[1], "replay") == 0) {
    return run_replay(argc, argv);
  }
  return usage();
}
