// numastream — the command-line front end of the library.
//
//   numastream topology
//       Describe this host's NUMA/NIC layout as the runtime sees it.
//
//   numastream plan [--streams N] [--codec NAME] [--strategy numa|os]
//                   [--receiver lynxdtn|polaris|self] [--out DIR]
//       Run the configuration generator for a gateway deployment; print the
//       rationale and per-node configuration files (optionally writing them
//       to DIR as <node>.conf, ready to ship to each host).
//
//   numastream simulate [--streams N] [--strategy numa|os] [--link GBPS]
//                       [--source GBPS] [--chunks N]
//       Evaluate a generated plan on the simulated testbed and print the
//       per-stream and cumulative throughputs.
//
//   numastream codec [--codec NAME] [--mib N]
//       Round-trip a synthetic tomographic buffer through a codec on this
//       machine and report real compression ratio and speeds.
//
// Every command uses only the public library API; this binary is the thin
// operational wrapper a facility would script against.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "codec/codec.h"
#include "core/config_generator.h"
#include "data/tomo.h"
#include "simrt/driver.h"
#include "topo/discover.h"

using namespace numastream;

namespace {

/// Minimal --key value / --flag parser: everything after the command.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", key.c_str());
        ok_ = false;
        return;
      }
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  [[nodiscard]] bool ok() const { return ok_; }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] long get_long(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }

  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int usage() {
  std::fprintf(stderr,
               "usage: numastream <command> [options]\n"
               "  topology                         describe this host\n"
               "  plan     [--streams N] [--codec NAME] [--strategy numa|os]\n"
               "           [--receiver lynxdtn|polaris|self|dualgw] [--all-nics]\n"
               "           [--out DIR]\n"
               "  simulate [--streams N] [--strategy numa|os] [--link GBPS]\n"
               "           [--source GBPS] [--chunks N]\n"
               "  codec    [--codec NAME] [--mib N]\n");
  return 2;
}

Result<MachineTopology> receiver_topology(const std::string& name) {
  if (name == "lynxdtn") {
    return lynxdtn_topology();
  }
  if (name == "polaris") {
    return polaris_topology("gateway");
  }
  if (name == "self") {
    return discover_topology();
  }
  if (name == "dualgw") {
    return dual_nic_gateway_topology();
  }
  return invalid_argument_error("unknown receiver '" + name +
                                "' (use lynxdtn, polaris, dualgw or self)");
}

std::vector<MachineTopology> default_senders(int streams) {
  std::vector<MachineTopology> senders;
  for (int i = 0; i < streams; ++i) {
    senders.push_back(i % 2 == 0
                          ? updraft_topology("updraft" + std::to_string(i / 2 + 1))
                          : polaris_topology("polaris" + std::to_string(i / 2 + 1)));
  }
  return senders;
}

Result<StreamingPlan> make_plan(const Args& args, const MachineTopology& receiver,
                                const std::vector<MachineTopology>& senders) {
  WorkloadSpec spec;
  spec.num_streams = static_cast<int>(args.get_long("streams", 4));
  spec.codec = args.get("codec", "lz4");
  spec.use_all_nics = !args.get("all-nics", "absent").compare("") ||
                      args.get("all-nics", "absent") == "true";
  const std::string strategy = args.get("strategy", "numa");
  if (strategy != "numa" && strategy != "os") {
    return invalid_argument_error("unknown strategy '" + strategy + "'");
  }
  ConfigGenerator generator(receiver, senders);
  return generator.generate(spec, strategy == "numa"
                                      ? PlacementStrategy::kNumaAware
                                      : PlacementStrategy::kOsManaged);
}

int cmd_topology() {
  auto topo = discover_topology();
  if (!topo.ok()) {
    std::fprintf(stderr, "discovery failed: %s\n", topo.status().to_string().c_str());
    return 1;
  }
  std::printf("%s", topo.value().describe().c_str());
  const auto nic = topo.value().preferred_nic();
  if (nic.has_value()) {
    std::printf("preferred streaming NIC: %s on NUMA %d\n", nic->name.c_str(),
                nic->numa_domain);
  } else {
    std::printf("no NIC with a known NUMA attachment; NUMA-aware receive "
                "placement is unavailable here\n");
  }
  return 0;
}

int cmd_plan(const Args& args) {
  auto receiver = receiver_topology(args.get("receiver", "lynxdtn"));
  if (!receiver.ok()) {
    std::fprintf(stderr, "%s\n", receiver.status().to_string().c_str());
    return 1;
  }
  const int streams = static_cast<int>(args.get_long("streams", 4));
  auto plan = make_plan(args, receiver.value(), default_senders(streams));
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n", plan.status().to_string().c_str());
    return 1;
  }
  std::printf("---- rationale ----\n%s\n", plan.value().rationale.c_str());

  const std::string out_dir = args.get("out", "");
  const auto emit = [&](const NodeConfig& config) -> bool {
    if (out_dir.empty()) {
      std::printf("---- %s ----\n%s\n", config.node_name.c_str(),
                  config.serialize().c_str());
      return true;
    }
    std::filesystem::create_directories(out_dir);
    const std::string path = out_dir + "/" + config.node_name + ".conf";
    std::ofstream file(path);
    file << config.serialize();
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  };
  if (!emit(plan.value().receiver)) {
    return 1;
  }
  for (const auto& sender : plan.value().senders) {
    if (!emit(sender)) {
      return 1;
    }
  }
  return 0;
}

int cmd_simulate(const Args& args) {
  auto receiver = receiver_topology(args.get("receiver", "lynxdtn"));
  if (!receiver.ok()) {
    std::fprintf(stderr, "%s\n", receiver.status().to_string().c_str());
    return 1;
  }
  const int streams = static_cast<int>(args.get_long("streams", 4));
  const std::vector<MachineTopology> senders = default_senders(streams);
  auto plan = make_plan(args, receiver.value(), senders);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n", plan.status().to_string().c_str());
    return 1;
  }

  simrt::ExperimentOptions options;
  options.link.bandwidth_gbps = args.get_double("link", 200.0);
  options.source_gbps = args.get_double("source", 100.0);
  options.chunks_per_stream =
      static_cast<std::uint64_t>(args.get_long("chunks", 300));

  auto result = simrt::run_plan(senders, receiver.value(), plan.value(), options);
  if (!result.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  std::printf("cumulative: %.2f Gbps network, %.2f Gbps end-to-end "
              "(%.3f s simulated)\n",
              result.value().network_gbps, result.value().e2e_gbps,
              result.value().elapsed_seconds);
  for (std::size_t i = 0; i < result.value().streams.size(); ++i) {
    const auto& stream = result.value().streams[i];
    std::printf("  stream-%zu: %.1f Gbps network, %.1f Gbps end-to-end\n", i + 1,
                stream.network_gbps, stream.e2e_gbps);
  }
  return 0;
}

int cmd_codec(const Args& args) {
  const std::string name = args.get("codec", "lz4");
  const Codec* codec = codec_by_name(name);
  if (codec == nullptr) {
    std::fprintf(stderr, "unknown codec '%s' (have:", name.c_str());
    for (const Codec* c : all_codecs()) {
      std::fprintf(stderr, " %s", std::string(c->name()).c_str());
    }
    std::fprintf(stderr, ")\n");
    return 1;
  }
  const long mib = args.get_long("mib", 8);

  // Enough synthetic projections to cover the requested volume.
  TomoConfig tomo;
  tomo.rows = 512;
  tomo.cols = 1350;
  const TomoGenerator generator(tomo);
  Bytes input;
  for (std::uint64_t i = 0; input.size() < static_cast<std::size_t>(mib) * kMiB; ++i) {
    const Bytes projection = generator.projection(i);
    input.insert(input.end(), projection.begin(), projection.end());
  }

  Bytes compressed(codec->max_compressed_size(input.size()));
  const auto t0 = std::chrono::steady_clock::now();
  auto written = codec->compress(input, compressed);
  const auto t1 = std::chrono::steady_clock::now();
  if (!written.ok()) {
    std::fprintf(stderr, "compress failed: %s\n",
                 written.status().to_string().c_str());
    return 1;
  }
  compressed.resize(written.value());

  Bytes output(input.size());
  const auto t2 = std::chrono::steady_clock::now();
  auto produced = codec->decompress(compressed, output);
  const auto t3 = std::chrono::steady_clock::now();
  if (!produced.ok() || output != input) {
    std::fprintf(stderr, "decompress failed or round trip mismatch\n");
    return 1;
  }

  const double compress_s = std::chrono::duration<double>(t1 - t0).count();
  const double decompress_s = std::chrono::duration<double>(t3 - t2).count();
  std::printf("codec %s on %s of synthetic tomographic data:\n", name.c_str(),
              format_bytes(input.size()).c_str());
  std::printf("  ratio      : %.3f:1 (%s on the wire)\n",
              static_cast<double>(input.size()) / compressed.size(),
              format_bytes(compressed.size()).c_str());
  std::printf("  compress   : %.1f MB/s\n",
              static_cast<double>(input.size()) / compress_s / 1e6);
  std::printf("  decompress : %.1f MB/s\n",
              static_cast<double>(input.size()) / decompress_s / 1e6);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  if (!args.ok()) {
    return usage();
  }
  if (command == "topology") {
    return cmd_topology();
  }
  if (command == "plan") {
    return cmd_plan(args);
  }
  if (command == "simulate") {
    return cmd_simulate(args);
  }
  if (command == "codec") {
    return cmd_codec(args);
  }
  return usage();
}
