#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer and runs
# the suites that exercise the transport, fault-injection and recovery paths.
# A clean exit means the chaos tests (torn writes, reconnect storms, watchdog
# cancellation) are free of memory errors and UB, not just functionally green.
#
#   $ scripts/check_sanitize.sh [extra ctest args...]
#
# Uses a separate build-sanitize/ tree so the regular build/ stays fast.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-sanitize -G Ninja \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNUMASTREAM_SANITIZE="address;undefined"
cmake --build build-sanitize

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

ctest --test-dir build-sanitize --output-on-failure \
  -R '^(MessageTest|MessageDecoderTest|InprocTest|InprocListenerTest|TcpTest|PushPullTest|DecoderResyncTest|FrameResyncTest|ConfigTest|ConfigFileTest|ConfigGeneratorTest|PipelineTest|TcpPipelineTest|PlacementTest|RecoveryConfigTest|BackoffTest|RetryPolicyTest|WithRetryTest|FaultPlanTest|FaultyStreamTest|FaultyListenerTest|FaultCountersTest|ChaosPipelineTest|DegradationTest|WatchdogTest|StreamRegistryTest|DeterminismTest|GatewayTest|MemoryBudgetTest|OverloadCountersTest|CreditFrameTest|OverloadConfigTest|RecoveryConfigBoundaryTest|OverloadPipelineTest|ChaosOverloadTest|HealthConfigTest|HealthMonitorTest|MigrationCoordinatorTest|HealthMaskTest|ReplanTest|HealthCountersTest|DegradationScheduleTest|DegradationInjectorTest|MigrationPipelineTest|WatchdogDrainTest|SimRecoveryTest|ChaosDegradationTest|LatencyHistogramTest|StageLatenciesTest|SpanRingTest|TracerTest|TraceExportTest|MetricsRegistryTest|SnapshotSeriesTest|SnapshotSamplerTest|ObserveConfigTest|PipelineObservabilityTest|TraceDeterminismTest|ThroughputMeterTest|RateTimelineTest|CsvEscapeTest|TextTableTest|JournalRecordTest|MemoryJournalMediaTest|SenderJournalTest|ReceiverJournalTest|ResumeFrameTest|ResumeConfigTest|ResumePipelineTest|ChaosResumeTest|SimResumeTest|MessageFuzzTest|RingTest|ReplFrameTest|ClusterConfigTest|ReplicationTest|EpochFenceTest|JournalMediaFaultTest|PeerFailureDetectorTest|FailoverCoordinatorTest|GatewayFailoverTest|SimFederationTest|HandoffFrameTest|RebalanceConfigTest|GrayFailureDetectorTest|RebalanceControllerTest|HandoffProtocolTest|ChaosHandoffTest|SimRebalanceTest|ScrubFrameTest|ScrubConfigTest|JournalScrubberTest|RangeDigestTest|AntiEntropyTest|JournalDirsyncTest|ScrubFaultInjectionTest|SimScrubTest|MpscRingTest|FanInQueueTest|CancelSignalTest|StageChannelTest|ChunkPoolTest|FastPathConfigTest|ControlFrameBoundaryTest|ScatterGatherTest|FastpathPipelineTest|ChaosConfigTest|ConfigDuplicateDirectiveTest|ChaosNetTest|InvariantMonitorTest|ProbeSinkTest|ChaosScheduleTest|ChaosHarnessTest|AsymmetricPartitionTest|ChaosExplorerTest|ChaosCountersTest)' \
  "$@"

echo
echo "sanitizer check passed (ASan + UBSan)"
