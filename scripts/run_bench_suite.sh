#!/usr/bin/env bash
# Runs the figure-12 end-to-end bench plus every ablation bench and collects
# their machine-readable BENCH_<name>.json artifacts into one directory.
#
#   scripts/run_bench_suite.sh [build-dir] [out-dir]
#
# Each bench self-checks its shape assertions and exits non-zero on any red
# check, so this script doubles as a correctness gate; the JSON artifacts are
# the perf-trajectory record that CI diffs warn-only between runs
# (scripts/bench_diff.py).
set -euo pipefail

build_dir=${1:-build}
out_dir=${2:-bench-json}

benches=(
  micro_queue
  fig12_end_to_end
  ablation_adaptive
  ablation_chunk_size
  ablation_compression_ratio
  ablation_crash_resume
  ablation_degradation
  ablation_gateway_failover
  ablation_gateway_rebalance
  ablation_multinic
  ablation_numa_penalty
  ablation_os_scheduler
  ablation_overload
  ablation_oversubscription
)

mkdir -p "$out_dir"
for bench in "${benches[@]}"; do
  echo "=== $bench ==="
  NUMASTREAM_BENCH_JSON_DIR=$out_dir "$build_dir/bench/$bench"
done

missing=0
for bench in "${benches[@]}"; do
  if [[ ! -f "$out_dir/BENCH_$bench.json" ]]; then
    echo "missing artifact: $out_dir/BENCH_$bench.json" >&2
    missing=1
  fi
done
exit $missing
