#!/usr/bin/env bash
# Runs the figure-12 end-to-end bench plus every ablation bench and collects
# their machine-readable BENCH_<name>.json artifacts into one directory.
#
#   scripts/run_bench_suite.sh [build-dir] [out-dir]
#
# Each bench self-checks its shape assertions and exits non-zero on any red
# check, so this script doubles as a correctness gate; the JSON artifacts are
# the perf-trajectory record that CI diffs warn-only between runs
# (scripts/bench_diff.py).
#
# A failing bench does NOT stop the suite: every bench runs, failures are
# collected, and the script exits non-zero at the end if anything failed or
# left no artifact — so one red bench can't hide the state of the others.
set -uo pipefail

build_dir=${1:-build}
out_dir=${2:-bench-json}

benches=(
  micro_queue
  fig12_end_to_end
  ablation_adaptive
  ablation_chunk_size
  ablation_compression_ratio
  ablation_crash_resume
  ablation_degradation
  ablation_gateway_failover
  ablation_gateway_rebalance
  ablation_multinic
  ablation_numa_penalty
  ablation_os_scheduler
  ablation_overload
  ablation_oversubscription
  ablation_scrub
)

mkdir -p "$out_dir"
failed=()
for bench in "${benches[@]}"; do
  echo "=== $bench ==="
  if ! NUMASTREAM_BENCH_JSON_DIR=$out_dir "$build_dir/bench/$bench"; then
    echo "FAILED: $bench" >&2
    failed+=("$bench")
  fi
done

missing=()
for bench in "${benches[@]}"; do
  if [[ ! -f "$out_dir/BENCH_$bench.json" ]]; then
    echo "missing artifact: $out_dir/BENCH_$bench.json" >&2
    missing+=("$bench")
  fi
done

if ((${#failed[@]} > 0 || ${#missing[@]} > 0)); then
  echo "bench suite: ${#failed[@]} failed (${failed[*]:-}), ${#missing[@]}" \
       "missing artifacts (${missing[*]:-})" >&2
  exit 1
fi
echo "bench suite: all ${#benches[@]} benches green"
