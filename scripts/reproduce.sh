#!/usr/bin/env bash
# One-shot reproduction: build, test, regenerate every figure/table, and
# leave the transcripts in test_output.txt / bench_output.txt at the repo
# root (the files EXPERIMENTS.md's numbers come from).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  if [[ -x "$b" && -f "$b" ]]; then
    echo "===== $(basename "$b") =====" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
  fi
done

echo
echo "reproduction complete: see test_output.txt and bench_output.txt"
