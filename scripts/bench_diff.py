#!/usr/bin/env python3
"""Warn-only diff of two directories of BENCH_<name>.json bench artifacts.

    scripts/bench_diff.py <previous-dir> <current-dir> [--threshold PCT]

Compares every numeric field of every BENCH_*.json present in either
directory and prints a per-metric delta table. Metrics that moved by more
than the threshold (default 10%) are flagged WARN; a bench that vanished is
flagged GONE (a warning), while a bench that is new with no baseline is
flagged NEW and is purely informational. The exit code is always 0: the
bench numbers
come from a calibrated simulator whose absolute values shift whenever the
model is deliberately retuned, so this is a trajectory record for humans,
not a merge gate.
"""

import argparse
import json
import pathlib
import sys


def flatten(obj, prefix=""):
    """Yield (dotted-key, value) for every numeric leaf of a JSON object."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            yield from flatten(value, f"{prefix}{key}." if prefix else f"{key}.")
    elif isinstance(obj, bool):
        yield prefix.rstrip("."), float(obj)
    elif isinstance(obj, (int, float)):
        yield prefix.rstrip("."), float(obj)


def load(directory):
    artifacts = {}
    for path in sorted(pathlib.Path(directory).glob("BENCH_*.json")):
        try:
            artifacts[path.stem] = dict(flatten(json.loads(path.read_text())))
        except (OSError, json.JSONDecodeError) as err:
            print(f"WARN {path}: unreadable ({err})")
    return artifacts


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="warn when a metric moves more than PCT percent")
    args = parser.parse_args()

    if not pathlib.Path(args.previous).is_dir():
        print(f"no previous artifacts at {args.previous}; nothing to diff "
              "(first run on this branch)")
        return 0
    prev = load(args.previous)
    curr = load(args.current)

    warnings = 0
    for bench in sorted(set(prev) | set(curr)):
        if bench not in prev:
            # A bench added in this change has no baseline to regress against:
            # informational, never a warning.
            print(f"NEW  {bench} (no baseline; informational only)")
            continue
        if bench not in curr:
            print(f"GONE {bench}")
            warnings += 1
            continue
        for metric in sorted(set(prev[bench]) | set(curr[bench])):
            # elapsed_seconds is wall time of the run machine: too noisy to
            # compare across CI hosts.
            if metric in ("elapsed_seconds",):
                continue
            before = prev[bench].get(metric)
            after = curr[bench].get(metric)
            if before is None or after is None:
                print(f"WARN {bench}.{metric}: "
                      f"{'added' if before is None else 'removed'}")
                warnings += 1
                continue
            if before == after:
                continue
            pct = 100.0 * (after - before) / abs(before) if before else float("inf")
            line = f"{bench}.{metric}: {before:g} -> {after:g} ({pct:+.1f}%)"
            if abs(pct) > args.threshold:
                print(f"WARN {line}")
                warnings += 1
            else:
                print(f"     {line}")

    print(f"\n{warnings} warning(s); warn-only, exiting 0")
    return 0


if __name__ == "__main__":
    sys.exit(main())
