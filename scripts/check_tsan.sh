#!/usr/bin/env bash
# Builds the tree with ThreadSanitizer and runs the concurrency-heavy suites:
# the bounded queue (blocking, cancel, eviction, MPMC stress), the memory
# budget ledger (shared by sender and receiver threads), the overload
# pipelines where credit grants, shedding and drain deadlines all race real
# worker threads, and the observability layer (span rings written by worker
# threads while the registry's sampler thread reads gauges), plus the
# crash-resumption pipelines where journal appends and watermark reads race
# send/receive workers across endpoint restarts, and the federation layer
# where the replication tee, the standby's apply/promote race and a live
# gateway takeover all share the journal with pipeline workers, and the
# anti-entropy layer where a background scrubber re-reads the journal while
# appenders extend it and a promotion fences a mid-round repair. A clean
# exit means the credit/budget/drain/observe machinery is free of data
# races, not just functionally green.
#
#   $ scripts/check_tsan.sh [extra ctest args...]
#
# Uses a separate build-tsan/ tree so the regular build/ stays fast.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-tsan -G Ninja \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNUMASTREAM_SANITIZE="thread"
cmake --build build-tsan

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

ctest --test-dir build-tsan --output-on-failure \
  -R '^(BoundedQueueTest|BoundedQueueMpmc|SpscRingTest|MemoryBudgetTest|OverloadCountersTest|OverloadPipelineTest|ChaosOverloadTest|PipelineTest|TcpPipelineTest|ChaosPipelineTest|WatchdogTest|MigrationCoordinatorTest|MigrationPipelineTest|WatchdogDrainTest|SpanRingTest|TracerTest|StageLatenciesTest|MetricsRegistryTest|SnapshotSamplerTest|PipelineObservabilityTest|ThroughputMeterTest|ResumePipelineTest|ChaosResumeTest|ReplicationTest|EpochFenceTest|GatewayFailoverTest|HandoffProtocolTest|ChaosHandoffTest|AntiEntropyTest|ScrubConcurrencyTest|MpscRingTest|FanInQueueTest|CancelSignalTest|StageChannelTest|ChunkPoolTest|FastpathPipelineTest|ChaosNetTest|ChaosHarnessTest|AsymmetricPartitionTest|ChaosExplorerTest)' \
  "$@"

echo
echo "sanitizer check passed (TSan)"
