#include <gtest/gtest.h>

#include <memory>

#include "core/config_generator.h"
#include "simrt/driver.h"
#include "simrt/pipeline.h"

namespace numastream::simrt {
namespace {

/// Builds a single-stream pipeline on lynxdtn-like hardware for direct tests.
struct Rig {
  sim::Simulation sim;
  MachineTopology lynx_topo = lynxdtn_topology();
  MachineTopology updraft_topo = updraft_topology();
  std::unique_ptr<SimHost> lynx;
  std::unique_ptr<SimHost> updraft;
  std::unique_ptr<SimLink> link;
  Calibration calib;

  explicit Rig(double link_gbps = 100) {
    lynx = std::make_unique<SimHost>(sim, lynx_topo, HostParams{});
    updraft = std::make_unique<SimHost>(sim, updraft_topo, HostParams{});
    link = std::make_unique<SimLink>(sim, "path",
                                     LinkParams{.bandwidth_gbps = link_gbps});
  }

  StreamPipeline::Spec base_spec(std::uint64_t chunks) {
    StreamPipeline::Spec spec;
    spec.chunks = chunks;
    spec.sender_host = updraft.get();
    spec.receiver_host = lynx.get();
    spec.link = link.get();
    spec.sender_nic = updraft->nic_resource("mlx5_stream").value();
    spec.receiver_nic = lynx->nic_resource("mlx5_stream").value();
    spec.receiver_nic_domain = 1;
    return spec;
  }
};

double gbps(double bytes, double seconds) {
  return bytes_per_sec_to_gbps(bytes / seconds);
}

TEST(StreamPipelineTest, NetworkOnlySingleThreadMatchesCalibration) {
  Rig rig;
  auto spec = rig.base_spec(200);
  spec.compress = false;
  spec.send_workers = {{.core = 16}};
  spec.receive_workers = {{.core = 16}};  // NIC domain: local packets
  StreamPipeline pipeline(rig.sim, rig.calib, spec);
  pipeline.launch();
  rig.sim.run();
  // One receive core at 4 GB/s = 32 Gbps is the bottleneck.
  EXPECT_NEAR(gbps(pipeline.wire_bytes_received(), pipeline.finished_at()), 32.0, 1.0);
  EXPECT_EQ(pipeline.chunks_delivered(), 200U);
}

TEST(StreamPipelineTest, RemoteReceiverLosesFifteenPercent) {
  auto run = [](int recv_core) {
    Rig rig;
    auto spec = rig.base_spec(200);
    spec.compress = false;
    spec.send_workers = {{.core = 16}};
    spec.receive_workers = {{.core = recv_core}};
    StreamPipeline pipeline(rig.sim, rig.calib, spec);
    pipeline.launch();
    rig.sim.run();
    return gbps(pipeline.wire_bytes_received(), pipeline.finished_at());
  };
  const double local = run(16);   // domain 1 = NIC domain
  const double remote = run(0);   // domain 0: cross-socket packet reads
  EXPECT_NEAR(remote / local, 1.0 / 1.176, 0.01);  // the paper's ~15%
}

TEST(StreamPipelineTest, CompressedStreamHalvesWireBytes) {
  Rig rig;
  auto spec = rig.base_spec(60);
  spec.compress_workers = StreamPipeline::pinned_workers({0, 1, 2, 3});
  spec.send_workers = {{.core = 16}, {.core = 17}};
  spec.receive_workers = {{.core = 16}, {.core = 17}};
  spec.decompress_workers = StreamPipeline::pinned_workers({0, 1});
  StreamPipeline pipeline(rig.sim, rig.calib, spec);
  pipeline.launch();
  rig.sim.run();
  EXPECT_EQ(pipeline.chunks_delivered(), 60U);
  EXPECT_NEAR(pipeline.raw_bytes_delivered() / pipeline.wire_bytes_received(),
              rig.calib.compression_ratio, 1e-9);
}

TEST(StreamPipelineTest, CompressionThreadScalingIsLinearBelowCores) {
  auto run = [](int comp_threads) {
    Rig rig(200);
    auto spec = rig.base_spec(150);
    std::vector<int> cores;
    for (int i = 0; i < comp_threads; ++i) {
      cores.push_back(i);  // all domain 0, <= 16 threads
    }
    spec.compress_workers = StreamPipeline::pinned_workers(cores);
    spec.send_workers = {{.core = 16}, {.core = 17}, {.core = 18}, {.core = 19}};
    spec.receive_workers = {{.core = 16}, {.core = 17}, {.core = 18}, {.core = 19}};
    spec.decompress_workers =
        StreamPipeline::pinned_workers({0, 1, 2, 3, 4, 5, 6, 7});
    StreamPipeline pipeline(rig.sim, rig.calib, spec);
    pipeline.launch();
    rig.sim.run();
    return gbps(pipeline.raw_bytes_delivered(), pipeline.finished_at());
  };
  const double four = run(4);
  const double eight = run(8);
  EXPECT_NEAR(eight / four, 2.0, 0.1);  // Observation 2: linear scaling
}

TEST(StreamPipelineTest, OversubscribedCompressionStopsScaling) {
  // 32 threads on the 16 cores of one domain must not beat 16 threads.
  auto run = [](int comp_threads) {
    Rig rig(200);
    auto spec = rig.base_spec(150);
    std::vector<int> cores;
    for (int i = 0; i < comp_threads; ++i) {
      cores.push_back(i % 16);
    }
    spec.compress_workers = StreamPipeline::pinned_workers(cores);
    spec.send_workers = {{.core = 16}, {.core = 17}, {.core = 18}, {.core = 19}};
    spec.receive_workers = {{.core = 16}, {.core = 17}, {.core = 18}, {.core = 19}};
    spec.decompress_workers =
        StreamPipeline::pinned_workers({0, 1, 2, 3, 4, 5, 6, 7});
    StreamPipeline pipeline(rig.sim, rig.calib, spec);
    pipeline.launch();
    rig.sim.run();
    return gbps(pipeline.raw_bytes_delivered(), pipeline.finished_at());
  };
  EXPECT_LT(run(32), run(16) * 1.001);  // Observation 2: decline past cores
}

TEST(StreamPipelineTest, SourceRateCapBindsThePipeline) {
  Rig rig;
  auto spec = rig.base_spec(100);
  spec.compress = false;
  spec.send_workers = {{.core = 16}, {.core = 17}};
  spec.receive_workers = {{.core = 16}, {.core = 17}};
  spec.source_bytes_per_sec = gbps_to_bytes_per_sec(10.0);
  StreamPipeline pipeline(rig.sim, rig.calib, spec);
  pipeline.launch();
  rig.sim.run();
  EXPECT_NEAR(gbps(pipeline.wire_bytes_received(), pipeline.finished_at()), 10.0, 0.5);
}

TEST(StreamPipelineTest, PerConnectionCapBinds) {
  Rig rig;
  auto spec = rig.base_spec(100);
  spec.compress = false;
  spec.send_workers = {{.core = 16}};
  spec.receive_workers = {{.core = 16}};
  spec.per_connection_cap = gbps_to_bytes_per_sec(8.0);
  StreamPipeline pipeline(rig.sim, rig.calib, spec);
  pipeline.launch();
  rig.sim.run();
  EXPECT_NEAR(gbps(pipeline.wire_bytes_received(), pipeline.finished_at()), 8.0, 0.5);
}

TEST(StreamPipelineTest, DeterministicAcrossRuns) {
  auto run = [] {
    Rig rig;
    auto spec = rig.base_spec(50);
    spec.compress_workers = StreamPipeline::pinned_workers({0, 1});
    spec.send_workers = {{.core = 16}};
    spec.receive_workers = {{.core = 17}};
    spec.decompress_workers = StreamPipeline::pinned_workers({2});
    StreamPipeline pipeline(rig.sim, rig.calib, spec);
    pipeline.launch();
    rig.sim.run();
    return pipeline.finished_at();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

// ----------------------------------------------------- overload protection

// Shared shape for the overload tests: a receiver whose decompress stage
// runs at ~10% of the senders' pace, so upstream pressure is guaranteed.
StreamPipeline::Spec throttled_spec(Rig& rig, std::uint64_t chunks) {
  rig.calib.decompress_bytes_per_sec /= 10.0;
  auto spec = rig.base_spec(chunks);
  spec.compress_workers = StreamPipeline::pinned_workers({0, 1, 2, 3});
  spec.send_workers = {{.core = 16}, {.core = 17}};
  spec.receive_workers = {{.core = 16}, {.core = 17}};
  spec.decompress_workers = StreamPipeline::pinned_workers({0});
  return spec;
}

TEST(StreamPipelineTest, CreditWindowStallsSenderBehindSlowReceiver) {
  Rig rig;
  auto spec = throttled_spec(rig, 40);
  spec.credit_window_chunks = 2;
  StreamPipeline pipeline(rig.sim, rig.calib, spec);
  pipeline.launch();
  rig.sim.run();
  // Flow control is lossless: everything still arrives, the sender just waits.
  EXPECT_EQ(pipeline.chunks_delivered(), 40U);
  EXPECT_GT(pipeline.credit_stalls(), 0U);
  EXPECT_EQ(pipeline.shed_chunks(), 0U);
}

TEST(StreamPipelineTest, MemoryBudgetCapsPeakInFlightBytes) {
  Rig rig;
  auto spec = throttled_spec(rig, 40);
  const double wire_chunk = rig.calib.chunk_bytes / rig.calib.compression_ratio;
  spec.memory_budget_bytes = 3 * wire_chunk;
  StreamPipeline pipeline(rig.sim, rig.calib, spec);
  pipeline.launch();
  rig.sim.run();
  EXPECT_EQ(pipeline.chunks_delivered(), 40U);
  EXPECT_GT(pipeline.budget_stalls(), 0U);
  // The acceptance invariant: the high-water mark never exceeds the cap.
  EXPECT_GT(pipeline.peak_bytes_in_flight(), 0.0);
  EXPECT_LE(pipeline.peak_bytes_in_flight(), spec.memory_budget_bytes);
}

TEST(StreamPipelineTest, ShedWatermarksDropButConserveAccounting) {
  Rig rig;
  auto spec = throttled_spec(rig, 60);
  spec.shed_high_watermark = 4;
  spec.shed_low_watermark = 1;
  StreamPipeline pipeline(rig.sim, rig.calib, spec);
  pipeline.launch();
  rig.sim.run();
  EXPECT_GT(pipeline.shed_chunks(), 0U);
  // Every chunk is either delivered or counted shed — never silently gone.
  EXPECT_EQ(pipeline.chunks_delivered() + pipeline.shed_chunks(), 60U);
}

TEST(StreamPipelineTest, OverloadCountersAreDeterministic) {
  struct Counters {
    std::uint64_t delivered, shed, credit, budget, peak;
    bool operator==(const Counters&) const = default;
  };
  auto run = [] {
    Rig rig;
    auto spec = throttled_spec(rig, 50);
    spec.credit_window_chunks = 2;
    spec.memory_budget_bytes =
        4 * rig.calib.chunk_bytes / rig.calib.compression_ratio;
    spec.shed_high_watermark = 5;
    spec.shed_low_watermark = 2;
    StreamPipeline pipeline(rig.sim, rig.calib, spec);
    pipeline.launch();
    rig.sim.run();
    return Counters{pipeline.chunks_delivered(), pipeline.shed_chunks(),
                    pipeline.credit_stalls(), pipeline.budget_stalls(),
                    static_cast<std::uint64_t>(pipeline.peak_bytes_in_flight())};
  };
  EXPECT_TRUE(run() == run());
}

TEST(DriverTest, OverloadOptionsFlowThroughToStreamResults) {
  const MachineTopology lynx = lynxdtn_topology();
  const std::vector<MachineTopology> senders = {updraft_topology()};
  ConfigGenerator generator(lynx, senders);
  WorkloadSpec workload;
  workload.num_streams = 1;
  workload.compression_threads = 16;
  workload.transfer_threads = 2;
  workload.decompression_threads = 2;
  auto plan = generator.generate(workload, PlacementStrategy::kNumaAware);
  ASSERT_TRUE(plan.ok());

  ExperimentOptions options;
  options.chunks_per_stream = 40;
  options.calib.decompress_bytes_per_sec /= 20.0;
  options.credit_window_chunks = 2;
  auto result = run_plan(senders, lynx, plan.value(), options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  ASSERT_EQ(result.value().streams.size(), 1U);
  EXPECT_GT(result.value().streams[0].credit_stalls, 0U);
  EXPECT_GT(result.value().observation.overload.credit_stalls, 0U);
}

// ---------------------------------------------------------------- driver

ExperimentOptions fast_options() {
  ExperimentOptions options;
  options.chunks_per_stream = 60;
  options.link.bandwidth_gbps = 200;
  return options;
}

TEST(DriverTest, PaperScenarioRuntimeBeatsOs) {
  const MachineTopology lynx = lynxdtn_topology();
  const std::vector<MachineTopology> senders = {
      updraft_topology("updraft1"), updraft_topology("updraft2"),
      polaris_topology("polaris1"), polaris_topology("polaris2")};
  ConfigGenerator generator(lynx, senders);
  WorkloadSpec spec;
  spec.num_streams = 4;
  spec.compression_threads = 32;
  spec.transfer_threads = 4;
  spec.decompression_threads = 4;

  ExperimentOptions options = fast_options();
  options.source_gbps = 100;

  auto runtime_plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  auto os_plan = generator.generate(spec, PlacementStrategy::kOsManaged);
  ASSERT_TRUE(runtime_plan.ok());
  ASSERT_TRUE(os_plan.ok());

  auto runtime = run_plan(senders, lynx, runtime_plan.value(), options);
  auto os = run_plan(senders, lynx, os_plan.value(), options);
  ASSERT_TRUE(runtime.ok()) << runtime.status().to_string();
  ASSERT_TRUE(os.ok()) << os.status().to_string();

  // The paper's headline: ~1.48x. Accept anything solidly above 1.2x here
  // (the exact factor is asserted by the fig14 bench with full chunk counts).
  EXPECT_GT(runtime.value().e2e_gbps, os.value().e2e_gbps * 1.2);
  // End-to-end = 2x network (the 2:1 codec identity of Fig. 14).
  EXPECT_NEAR(runtime.value().e2e_gbps / runtime.value().network_gbps, 2.0, 1e-6);
  EXPECT_EQ(runtime.value().streams.size(), 4U);
  for (const auto& stream : runtime.value().streams) {
    EXPECT_EQ(stream.chunks, options.chunks_per_stream);
  }
}

TEST(DriverTest, ReceiverUsageShowsNicDomainActivity) {
  const MachineTopology lynx = lynxdtn_topology();
  const std::vector<MachineTopology> senders = {updraft_topology()};
  ConfigGenerator generator(lynx, senders);
  WorkloadSpec spec;
  spec.num_streams = 1;
  auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  ASSERT_TRUE(plan.ok());
  auto result = run_plan(senders, lynx, plan.value(), fast_options());
  ASSERT_TRUE(result.ok());
  // Receive threads were pinned to domain 1 (cores 16+): some activity there.
  double domain1 = 0;
  for (int core = 16; core < 32; ++core) {
    domain1 += result.value().receiver_core_utilization[static_cast<std::size_t>(core)];
  }
  EXPECT_GT(domain1, 0.1);
}

TEST(DriverTest, RemoteAccessAppearsWhenReceiversOnWrongSocket) {
  const MachineTopology lynx = lynxdtn_topology();
  const std::vector<MachineTopology> senders = {updraft_topology()};
  NodeConfig sender;
  sender.node_name = "updraft1";
  sender.role = NodeRole::kSender;
  sender.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress,
                      .count = 8,
                      .bindings = {NumaBinding{.execution_domain = 0,
                                               .memory_domain = 0}}},
      TaskGroupConfig{.type = TaskType::kSend,
                      .count = 2,
                      .bindings = {NumaBinding{.execution_domain = 1,
                                               .memory_domain = 1}}},
  };
  NodeConfig receiver;
  receiver.node_name = "lynxdtn";
  receiver.role = NodeRole::kReceiver;
  receiver.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive,
                      .count = 2,
                      .bindings = {NumaBinding{.execution_domain = 0,  // wrong socket
                                               .memory_domain = 0}}},
      TaskGroupConfig{.type = TaskType::kDecompress,
                      .count = 4,
                      .bindings = {NumaBinding{.execution_domain = 0,
                                               .memory_domain = 0}}},
  };
  auto result = run_experiment(senders, {sender}, lynx, receiver, fast_options());
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  // Fig. 7's signature: remote access concentrated on the receiving cores.
  double remote_total = 0;
  for (const double v : result.value().receiver_remote_normalized) {
    remote_total += v;
  }
  EXPECT_GT(remote_total, 0.5);
}

TEST(DriverTest, AsymmetricSendReceiveRejected) {
  const MachineTopology lynx = lynxdtn_topology();
  NodeConfig sender;
  sender.node_name = "s";
  sender.role = NodeRole::kSender;
  sender.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = 2},
      TaskGroupConfig{.type = TaskType::kSend, .count = 3},
  };
  NodeConfig receiver;
  receiver.node_name = "r";
  receiver.role = NodeRole::kReceiver;
  receiver.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 2},  // != 3 senders
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 2},
  };
  auto result = run_experiment({updraft_topology()}, {sender}, lynx, receiver,
                               fast_options());
  EXPECT_FALSE(result.ok());
}

TEST(DriverTest, MismatchedTopologyCountRejected) {
  NodeConfig config;
  config.node_name = "x";
  auto result = run_experiment({}, {}, lynxdtn_topology(), config, fast_options());
  EXPECT_FALSE(result.ok());
}

TEST(DriverTest, DeterministicWithFixedSeeds) {
  const MachineTopology lynx = lynxdtn_topology();
  const std::vector<MachineTopology> senders = {updraft_topology()};
  ConfigGenerator generator(lynx, senders);
  WorkloadSpec spec;
  spec.num_streams = 1;
  auto plan = generator.generate(spec, PlacementStrategy::kOsManaged);
  ASSERT_TRUE(plan.ok());
  auto a = run_plan(senders, lynx, plan.value(), fast_options());
  auto b = run_plan(senders, lynx, plan.value(), fast_options());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().e2e_gbps, b.value().e2e_gbps);
}

TEST(DriverTest, OsSeedChangesOsPlacementOutcome) {
  const MachineTopology lynx = lynxdtn_topology();
  const std::vector<MachineTopology> senders = {updraft_topology()};
  ConfigGenerator generator(lynx, senders);
  WorkloadSpec spec;
  spec.num_streams = 1;
  auto plan = generator.generate(spec, PlacementStrategy::kOsManaged);
  ASSERT_TRUE(plan.ok());
  ExperimentOptions options = fast_options();
  auto a = run_plan(senders, lynx, plan.value(), options);
  options.os_seed = 99;
  auto b = run_plan(senders, lynx, plan.value(), options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().e2e_gbps, b.value().e2e_gbps);
}

}  // namespace
}  // namespace numastream::simrt

namespace numastream::simrt {
namespace {

TEST(DriverTest, TimelinesShowRampAndPlateau) {
  const MachineTopology lynx = lynxdtn_topology();
  const std::vector<MachineTopology> senders = {updraft_topology()};
  ConfigGenerator generator(lynx, senders);
  WorkloadSpec spec;
  spec.num_streams = 1;
  auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  ASSERT_TRUE(plan.ok());

  ExperimentOptions options;
  options.chunks_per_stream = 200;
  options.link.bandwidth_gbps = 200;
  options.timeline_bucket_seconds = 0.01;
  auto result = run_plan(senders, lynx, plan.value(), options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().stream_timelines.size(), 1U);

  const RateTimeline& timeline = result.value().stream_timelines[0];
  EXPECT_GT(timeline.bucket_count(), 3U);
  // The plateau rate seen by the timeline matches the reported average.
  EXPECT_NEAR(bytes_per_sec_to_gbps(timeline.mean_active_rate()),
              result.value().streams[0].e2e_gbps, result.value().streams[0].e2e_gbps * 0.2);
  // Total bytes across buckets equal the delivered volume.
  double total = 0;
  for (const double rate : timeline.rates()) {
    total += rate * timeline.bucket_seconds();
  }
  EXPECT_NEAR(total,
              static_cast<double>(options.chunks_per_stream) * kProjectionChunkBytes,
              1.0);
}

TEST(DriverTest, TimelinesOffByDefault) {
  const MachineTopology lynx = lynxdtn_topology();
  const std::vector<MachineTopology> senders = {updraft_topology()};
  ConfigGenerator generator(lynx, senders);
  WorkloadSpec spec;
  spec.num_streams = 1;
  auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  ASSERT_TRUE(plan.ok());
  ExperimentOptions options;
  options.chunks_per_stream = 30;
  auto result = run_plan(senders, lynx, plan.value(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().stream_timelines.empty());
}

}  // namespace
}  // namespace numastream::simrt
