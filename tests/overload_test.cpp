// Overload-protection tests: the memory-budget ledger, credit-based flow
// control on the wire, load shedding and slow-consumer eviction in the real
// pipeline, the graceful-drain protocol, the overload directive in the
// config grammar, and chaos x overload interplay (seeded transport faults
// while the credit window and shed policies are active).
//
// Determinism policy: the simulated runtime asserts exact counter equality
// (see simrt_test.cpp); the real threaded pipeline here asserts the
// timing-independent invariants — peak in-flight bytes never exceed the cap,
// and every chunk is delivered or accounted in exactly one counter.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "codec/xxhash.h"
#include "common/rng.h"
#include "core/budget.h"
#include "core/drain.h"
#include "core/pipeline.h"
#include "metrics/overload_counters.h"
#include "msg/faulty.h"
#include "msg/inproc.h"
#include "msg/socket.h"
#include "topo/discover.h"

namespace numastream {
namespace {

MachineTopology host_topology() {
  auto topo = discover_topology();
  NS_CHECK(topo.ok(), "overload tests need a discoverable host");
  return std::move(topo).value();
}

/// Chaos suites read NUMASTREAM_CHAOS_SEED so the nightly job can randomize
/// them; unset (the tier-1 default) they stay fully deterministic.
std::uint64_t chaos_seed(std::uint64_t fallback) {
  const char* env = std::getenv("NUMASTREAM_CHAOS_SEED");
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  return std::strtoull(env, nullptr, 10);
}

Bytes pattern_payload(std::uint64_t sequence, std::size_t size) {
  Bytes payload(size);
  Rng rng(sequence * 0x9E3779B97F4A7C15ULL + 1);
  for (auto& b : payload) {
    b = static_cast<std::uint8_t>(rng.next_u64());
  }
  return payload;
}

/// Serves `count` deterministic chunks (contents depend only on sequence).
class PatternSource final : public ChunkSource {
 public:
  PatternSource(std::uint32_t stream_id, std::uint64_t count, std::size_t size)
      : stream_id_(stream_id), count_(count), size_(size) {}

  std::optional<Chunk> next() override {
    const std::uint64_t index = issued_.fetch_add(1, std::memory_order_relaxed);
    if (index >= count_) {
      return std::nullopt;
    }
    Chunk chunk;
    chunk.stream_id = stream_id_;
    chunk.sequence = index;
    chunk.payload = pattern_payload(index, size_);
    return chunk;
  }

 private:
  std::uint32_t stream_id_;
  std::uint64_t count_;
  std::size_t size_;
  std::atomic<std::uint64_t> issued_{0};
};

/// Sleeps per delivery — the throttled consumer every overload scenario
/// needs. Roughly 10x slower than the sender produces in these tests.
class SlowSink final : public ChunkSink {
 public:
  explicit SlowSink(std::chrono::milliseconds delay) : delay_(delay) {}

  void deliver(Chunk chunk) override {
    std::this_thread::sleep_for(delay_);
    chunks_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(chunk.payload.size(), std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t chunks() const noexcept { return chunks_.load(); }

 private:
  std::chrono::milliseconds delay_;
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

/// Records a content hash per (stream, sequence) and counts re-deliveries.
class VerifySink final : public ChunkSink {
 public:
  void deliver(Chunk chunk) override {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto [it, fresh] = hashes_.emplace(
        std::make_pair(chunk.stream_id, chunk.sequence), xxhash32(chunk.payload));
    (void)it;
    if (!fresh) {
      ++duplicates_;
    }
  }

  [[nodiscard]] std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t>
  hashes() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return hashes_;
  }

  [[nodiscard]] std::uint64_t duplicates() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return duplicates_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t> hashes_;
  std::uint64_t duplicates_ = 0;
};

NodeConfig sender_config(int compress, int send) {
  NodeConfig config;
  config.node_name = "otest-sender";
  config.role = NodeRole::kSender;
  config.chunk_bytes = 2048;
  config.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = compress},
      TaskGroupConfig{.type = TaskType::kSend, .count = send},
  };
  return config;
}

NodeConfig receiver_config(int receive, int decompress) {
  NodeConfig config;
  config.node_name = "otest-receiver";
  config.role = NodeRole::kReceiver;
  config.chunk_bytes = 2048;
  config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = receive},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = decompress},
  };
  return config;
}

// ------------------------------------------------------------ MemoryBudget

TEST(MemoryBudgetTest, TryAcquireChargesAndRejectsOverCap) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.try_acquire(1, 600).is_ok());
  EXPECT_EQ(budget.used(), 600U);
  EXPECT_EQ(budget.stream_bytes(1), 600U);
  EXPECT_EQ(budget.try_acquire(2, 500).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.used(), 600U);  // the rejected charge left no trace
  EXPECT_TRUE(budget.try_acquire(2, 400).is_ok());
  EXPECT_EQ(budget.used(), 1000U);
  budget.release(1, 600);
  EXPECT_EQ(budget.used(), 400U);
  EXPECT_EQ(budget.stream_bytes(1), 0U);
  EXPECT_EQ(budget.peak(), 1000U);  // high-water mark persists
  EXPECT_LE(budget.peak(), budget.cap());
}

TEST(MemoryBudgetTest, ChargeLargerThanCapIsInvalidNotDeadlock) {
  MemoryBudget budget(100);
  EXPECT_EQ(budget.try_acquire(1, 101).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(budget.acquire(1, 101).code(), StatusCode::kInvalidArgument);
}

TEST(MemoryBudgetTest, PerStreamAccountingIsSortedAndElided) {
  MemoryBudget budget(1000);
  ASSERT_TRUE(budget.try_acquire(7, 100).is_ok());
  ASSERT_TRUE(budget.try_acquire(3, 200).is_ok());
  ASSERT_TRUE(budget.try_acquire(5, 300).is_ok());
  budget.release(5, 300);  // back to zero: elided from the report
  const auto usage = budget.per_stream();
  ASSERT_EQ(usage.size(), 2U);
  EXPECT_EQ(usage[0], (MemoryBudget::StreamUsage{3, 200}));
  EXPECT_EQ(usage[1], (MemoryBudget::StreamUsage{7, 100}));
}

TEST(MemoryBudgetTest, AcquireBlocksUntilReleaseAndCountsStall) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.try_acquire(1, 100).is_ok());
  std::atomic<std::uint64_t> stalled{0};
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    ASSERT_TRUE(budget.acquire(2, 50, nullptr, &stalled).is_ok());
    admitted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());
  budget.release(1, 100);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(stalled.load(), 1U);
  EXPECT_EQ(budget.used(), 50U);
}

TEST(MemoryBudgetTest, AcquireAbortsOnCancel) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.try_acquire(1, 100).is_ok());
  std::atomic<bool> cancel{false};
  std::thread waiter([&] {
    EXPECT_EQ(budget.acquire(2, 50, &cancel).code(), StatusCode::kUnavailable);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel = true;
  waiter.join();
  EXPECT_EQ(budget.used(), 100U);  // the aborted acquire charged nothing
}

// -------------------------------------------------------- overload counters

TEST(OverloadCountersTest, SnapshotTotalsAndPeak) {
  OverloadCounters counters;
  counters.shed_newest = 3;
  counters.shed_oldest = 2;
  counters.priority_evictions = 1;
  counters.record_peak(500);
  counters.record_peak(300);  // monotonic gauge: lower values don't regress it
  const auto snapshot = counters.snapshot();
  EXPECT_EQ(snapshot.total_shed(), 6U);
  EXPECT_EQ(snapshot.peak_bytes_in_flight, 500U);
  EXPECT_NE(snapshot.to_string(), OverloadCountersSnapshot{}.to_string());
  EXPECT_EQ(OverloadCountersSnapshot{}.to_string(), "clean");
}

TEST(OverloadCountersTest, TableElidesZeroRowsWhenAsked) {
  OverloadCounters counters;
  counters.credit_stalls = 4;
  const auto full = overload_table(counters.snapshot(), false).render();
  const auto terse = overload_table(counters.snapshot(), true).render();
  EXPECT_LT(terse.size(), full.size());
  EXPECT_NE(terse.find("credit_stalls"), std::string::npos);
  EXPECT_EQ(terse.find("shed_newest"), std::string::npos);
}

// ------------------------------------------------------------ credit frames

TEST(CreditFrameTest, EncodeDecodeRoundTrip) {
  const Message grant = Message::credit_grant(17);
  MessageDecoder decoder;
  const Bytes wire = encode_message(grant);
  decoder.feed(ByteSpan(wire.data(), wire.size()));
  auto decoded = decoder.next();
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_TRUE(decoded.value().credit);
  EXPECT_FALSE(decoded.value().end_of_stream);
  EXPECT_EQ(decoded.value().sequence, 17U);
  EXPECT_TRUE(decoded.value().body.empty());
}

TEST(CreditFrameTest, CreditFrameWithBodyIsCorruption) {
  Message bogus = Message::credit_grant(4);
  bogus.body = Bytes(16, 0xAB);  // control frames are body-less by contract
  MessageDecoder decoder;
  const Bytes wire = encode_message(bogus);
  decoder.feed(ByteSpan(wire.data(), wire.size()));
  EXPECT_EQ(decoder.next().status().code(), StatusCode::kDataLoss);
}

TEST(CreditFrameTest, SocketRoundTripOverInproc) {
  InprocListener listener;
  auto client = listener.connect();
  ASSERT_TRUE(client.ok());
  auto server = listener.accept();
  ASSERT_TRUE(server.ok());

  PushSocket push(std::move(client).value());
  PullSocket pull(std::move(server).value());
  ASSERT_TRUE(pull.send_credit(8).is_ok());
  ASSERT_TRUE(pull.send_credit(3).is_ok());
  auto first = push.recv_credit();
  auto second = push.recv_credit();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), 8U);
  EXPECT_EQ(second.value(), 3U);
}

TEST(CreditFrameTest, DataMessageOnReverseChannelIsDataLoss) {
  InprocListener listener;
  auto client = listener.connect();
  ASSERT_TRUE(client.ok());
  auto server = listener.accept();
  ASSERT_TRUE(server.ok());

  PushSocket push(std::move(client).value());
  Message data;
  data.stream_id = 1;
  data.body = Bytes(64, 0x11);
  ASSERT_TRUE(server.value()->write_all(encode_message(data)).is_ok());
  EXPECT_EQ(push.recv_credit().status().code(), StatusCode::kDataLoss);
}

// --------------------------------------------------------- config directive

TEST(OverloadConfigTest, SerializeParseRoundTrip) {
  NodeConfig config = sender_config(2, 2);
  config.overload.budget_bytes = 1 << 20;
  config.overload.credit_window = 4;
  config.overload.shed_policy = ShedPolicy::kPriorityEvict;
  config.overload.high_watermark = 6;
  config.overload.low_watermark = 2;
  config.overload.drain_deadline_ms = 1500;
  config.overload.slow_stream_floor = 3;
  config.overload.slow_grace_ms = 250;
  config.overload.default_priority = 1;
  config.overload.priorities = {{.stream_id = 7, .priority = 9},
                                {.stream_id = 2, .priority = -1}};

  auto parsed = NodeConfig::parse(config.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().overload, config.overload);
  EXPECT_EQ(parsed.value().serialize(), config.serialize());
}

TEST(OverloadConfigTest, AbsentDirectiveStaysAbsentAndDisabled) {
  NodeConfig config = sender_config(1, 1);
  EXPECT_FALSE(config.overload.enabled());
  const std::string text = config.serialize();
  EXPECT_EQ(text.find("overload"), std::string::npos);
  EXPECT_EQ(text.find("priority"), std::string::npos);
  auto parsed = NodeConfig::parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().overload.is_default());
}

TEST(OverloadConfigTest, PriorityLookupFallsBackToDefault) {
  OverloadConfig overload;
  overload.default_priority = 5;
  overload.priorities = {{.stream_id = 1, .priority = 9}};
  EXPECT_EQ(overload.priority_of(1), 9);
  EXPECT_EQ(overload.priority_of(42), 5);
}

TEST(OverloadConfigTest, ShedPolicyNamesRoundTrip) {
  for (const ShedPolicy policy :
       {ShedPolicy::kBlock, ShedPolicy::kDropNewest, ShedPolicy::kDropOldest,
        ShedPolicy::kPriorityEvict}) {
    auto parsed = shed_policy_from_string(to_string(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), policy);
  }
  EXPECT_FALSE(shed_policy_from_string("yolo").ok());
}

TEST(OverloadConfigTest, MalformedDirectivesFailWithDescriptiveErrors) {
  const auto expect_parse_error = [](const std::string& line,
                                     const std::string& needle) {
    const std::string text = "node n\nrole sender\ntask compress count=1\n"
                             "task send count=1\n" + line + "\n";
    auto parsed = NodeConfig::parse(text);
    ASSERT_FALSE(parsed.ok()) << "accepted: " << line;
    EXPECT_NE(parsed.status().message().find(needle), std::string::npos)
        << "error for '" << line << "' was: " << parsed.status().to_string();
  };
  expect_parse_error("overload shed=sideways", "shed");
  expect_parse_error("overload budget_bytes=banana", "budget_bytes");
  expect_parse_error("overload frobnicate=1", "frobnicate");
  expect_parse_error("priority stream=3", "value");
  expect_parse_error("priority value=3", "stream");
}

TEST(OverloadConfigTest, ValidateRejectsInconsistentKnobs) {
  const MachineTopology topo = host_topology();
  const auto expect_invalid = [&](auto mutate) {
    NodeConfig config = sender_config(1, 1);
    mutate(config);
    EXPECT_FALSE(config.validate(topo).is_ok());
  };
  // A window of 1 deadlocks: the replenishment grant (window/2) would be 0.
  expect_invalid([](NodeConfig& c) { c.overload.credit_window = 1; });
  expect_invalid([](NodeConfig& c) {
    c.overload.high_watermark = c.queue_capacity + 1;
  });
  expect_invalid([](NodeConfig& c) {
    c.overload.high_watermark = 2;
    c.overload.low_watermark = 3;
  });
  // A non-blocking shed policy without a watermark would never engage.
  expect_invalid([](NodeConfig& c) {
    c.overload.shed_policy = ShedPolicy::kDropNewest;
  });
  expect_invalid([](NodeConfig& c) { c.overload.slow_stream_floor = 5; });
  // A budget smaller than one chunk could never admit anything.
  expect_invalid([](NodeConfig& c) { c.overload.budget_bytes = 100; });
  expect_invalid([](NodeConfig& c) {
    c.overload.priorities = {{.stream_id = 1, .priority = 1},
                             {.stream_id = 1, .priority = 2}};
  });
}

TEST(OverloadConfigTest, ValidateAcceptsBoundaryValues) {
  const MachineTopology topo = host_topology();
  NodeConfig config = sender_config(1, 1);
  config.overload.credit_window = 2;  // smallest legal window
  config.overload.shed_policy = ShedPolicy::kDropOldest;
  config.overload.high_watermark = config.queue_capacity;  // inclusive bound
  config.overload.low_watermark = config.queue_capacity;
  config.overload.budget_bytes = config.chunk_bytes;  // exactly one chunk
  EXPECT_TRUE(config.validate(topo).is_ok()) << config.validate(topo).to_string();
}

// RecoveryConfig boundary values ride along: the smallest legal retry policy
// and a degrade watermark exactly at capacity must round-trip and validate.
TEST(RecoveryConfigBoundaryTest, MinimalKnobsRoundTripAndValidate) {
  const MachineTopology topo = host_topology();
  NodeConfig config = sender_config(1, 1);
  config.recovery.retry.max_attempts = 1;  // "try once" is legal
  config.recovery.retry.jitter = 0.0;
  config.recovery.retry.max_backoff_us = config.recovery.retry.initial_backoff_us;
  config.recovery.degrade_watermark = config.queue_capacity;
  config.recovery.max_consecutive_corrupt = 1;
  EXPECT_TRUE(config.validate(topo).is_ok()) << config.validate(topo).to_string();
  auto parsed = NodeConfig::parse(config.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().recovery, config.recovery);
}

// ------------------------------------------------- end to end: overloaded

struct OverloadRunResult {
  Result<SenderStats> sender_stats = Result<SenderStats>(SenderStats{});
  Result<ReceiverStats> receiver_stats = Result<ReceiverStats>(ReceiverStats{});
  OverloadCountersSnapshot sender;
  OverloadCountersSnapshot receiver;
};

/// Runs sender -> inproc -> receiver with the given configs, hooks supplied
/// per side. `drain`, when non-null, is attached to the sender's ingest.
OverloadRunResult run_overload_pipeline(const MachineTopology& topo,
                                        NodeConfig sender_cfg,
                                        NodeConfig receiver_cfg,
                                        ChunkSource& source, ChunkSink& sink,
                                        MemoryBudget* sender_budget = nullptr,
                                        DrainController* drain = nullptr) {
  InprocListener listener;
  OverloadCounters sender_counters;
  OverloadCounters receiver_counters;
  OverloadRunResult run;

  std::thread sender_thread([&] {
    StreamSender sender(topo, std::move(sender_cfg));
    run.sender_stats = sender.run(
        source, [&] { return listener.connect(); }, nullptr, nullptr,
        OverloadHooks{.budget = sender_budget,
                      .counters = &sender_counters,
                      .drain = drain});
  });
  StreamReceiver receiver(topo, std::move(receiver_cfg));
  run.receiver_stats =
      receiver.run(listener, sink, nullptr, nullptr,
                   OverloadHooks{.counters = &receiver_counters});
  sender_thread.join();
  run.sender = sender_counters.snapshot();
  run.receiver = receiver_counters.snapshot();
  return run;
}

// The acceptance scenario: receiver throttled to ~10% of the sender's rate,
// credit + budget + shedding all on. Peak resident bytes must respect the
// cap, drops must be visible in the counters, and every chunk must be either
// delivered or accounted shed.
TEST(OverloadPipelineTest, ThrottledReceiverRespectsBudgetAndSheds) {
  const MachineTopology topo = host_topology();
  const std::uint64_t kChunks = 60;
  const std::uint64_t kBudget = 64 * 1024;

  NodeConfig sender_cfg = sender_config(2, 1);
  sender_cfg.queue_capacity = 4;
  sender_cfg.overload.budget_bytes = kBudget;
  sender_cfg.overload.credit_window = 4;
  sender_cfg.overload.shed_policy = ShedPolicy::kDropNewest;
  sender_cfg.overload.high_watermark = 3;
  sender_cfg.overload.low_watermark = 1;
  NodeConfig receiver_cfg = receiver_config(1, 1);
  receiver_cfg.overload.budget_bytes = kBudget;
  receiver_cfg.overload.credit_window = 4;

  PatternSource source(1, kChunks, 2048);
  SlowSink sink(std::chrono::milliseconds(10));
  MemoryBudget ledger(kBudget);
  const OverloadRunResult run = run_overload_pipeline(
      topo, sender_cfg, receiver_cfg, source, sink, &ledger);

  ASSERT_TRUE(run.sender_stats.ok()) << run.sender_stats.status().to_string();
  ASSERT_TRUE(run.receiver_stats.ok()) << run.receiver_stats.status().to_string();

  // The throttled receiver forced the protections to engage.
  EXPECT_GT(run.sender.total_shed(), 0U) << run.sender.to_string();
  EXPECT_GT(run.receiver.credit_grants, 0U);

  // Peak resident bytes respected the cap on both sides, and the shared
  // sender ledger drained back to zero (charge/release conservation).
  EXPECT_GT(run.sender.peak_bytes_in_flight, 0U);
  EXPECT_LE(run.sender.peak_bytes_in_flight, kBudget);
  EXPECT_GT(run.receiver.peak_bytes_in_flight, 0U);
  EXPECT_LE(run.receiver.peak_bytes_in_flight, kBudget);
  EXPECT_EQ(ledger.peak(), run.sender.peak_bytes_in_flight);
  EXPECT_EQ(ledger.used(), 0U);

  // Accountability: delivered + shed == produced, nothing silently gone.
  EXPECT_EQ(sink.chunks() + run.sender.total_shed(), kChunks);
  EXPECT_EQ(run.receiver.evicted_chunks, 0U);
}

// Same scenario with the blocking policy: nothing may be shed — the budget
// and credit window throttle the source instead, losslessly.
TEST(OverloadPipelineTest, BlockPolicyIsLosslessUnderPressure) {
  const MachineTopology topo = host_topology();
  const std::uint64_t kChunks = 30;

  NodeConfig sender_cfg = sender_config(2, 1);
  sender_cfg.overload.budget_bytes = 16 * 1024;  // ~7 frames of headroom
  sender_cfg.overload.credit_window = 2;
  NodeConfig receiver_cfg = receiver_config(1, 1);
  receiver_cfg.overload.credit_window = 2;

  PatternSource source(1, kChunks, 2048);
  SlowSink sink(std::chrono::milliseconds(5));
  const OverloadRunResult run =
      run_overload_pipeline(topo, sender_cfg, receiver_cfg, source, sink);

  ASSERT_TRUE(run.sender_stats.ok()) << run.sender_stats.status().to_string();
  ASSERT_TRUE(run.receiver_stats.ok()) << run.receiver_stats.status().to_string();
  EXPECT_EQ(sink.chunks(), kChunks);
  EXPECT_EQ(run.sender.total_shed(), 0U);
  EXPECT_GT(run.sender.credit_stalls + run.sender.budget_stalls, 0U)
      << run.sender.to_string();
  EXPECT_LE(run.sender.peak_bytes_in_flight, 16U * 1024U);
}

// --------------------------------------------------------- graceful drain

TEST(OverloadPipelineTest, DrainRequestStopsIngestCleanly) {
  const MachineTopology topo = host_topology();
  const std::uint64_t kChunks = 200;

  NodeConfig sender_cfg = sender_config(1, 1);
  sender_cfg.overload.drain_deadline_ms = 10000;  // generous: drain completes
  // Credit keeps ingest paced by the slow sink — without it the whole
  // dataset would buffer into the transport before the drain request lands.
  sender_cfg.overload.credit_window = 2;
  NodeConfig receiver_cfg = receiver_config(1, 1);
  receiver_cfg.overload.credit_window = 2;

  PatternSource source(1, kChunks, 2048);
  SlowSink sink(std::chrono::milliseconds(5));
  DrainController drain;
  std::thread trigger([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    drain.request();
  });
  const OverloadRunResult run = run_overload_pipeline(
      topo, sender_cfg, receiver_cfg, source, sink, nullptr, &drain);
  trigger.join();

  // The drain was graceful: both sides ended OK, in-flight frames flushed,
  // no deadline forcing — but ingest stopped well short of the dataset.
  ASSERT_TRUE(run.sender_stats.ok()) << run.sender_stats.status().to_string();
  ASSERT_TRUE(run.receiver_stats.ok()) << run.receiver_stats.status().to_string();
  EXPECT_EQ(run.sender.drain_requests, 1U);
  EXPECT_EQ(run.sender.drain_timeouts, 0U);
  EXPECT_GT(sink.chunks(), 0U);
  EXPECT_LT(sink.chunks(), kChunks);
  EXPECT_EQ(sink.chunks(), run.sender_stats.value().chunks);
}

TEST(OverloadPipelineTest, DrainDeadlineForcesTimeoutOnStuckFlush) {
  const MachineTopology topo = host_topology();
  const std::uint64_t kChunks = 10;

  NodeConfig sender_cfg = sender_config(1, 1);
  NodeConfig receiver_cfg = receiver_config(1, 1);
  // The receiver's flush can't finish in time: ~60ms per queued frame
  // against a 100ms budget for the whole drain.
  receiver_cfg.overload.drain_deadline_ms = 100;

  PatternSource source(1, kChunks, 2048);
  SlowSink sink(std::chrono::milliseconds(60));
  const OverloadRunResult run =
      run_overload_pipeline(topo, sender_cfg, receiver_cfg, source, sink);

  ASSERT_TRUE(run.sender_stats.ok()) << run.sender_stats.status().to_string();
  ASSERT_FALSE(run.receiver_stats.ok());
  EXPECT_EQ(run.receiver_stats.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(run.receiver.drain_timeouts, 1U);
  EXPECT_LT(sink.chunks(), kChunks);  // the forced drop was real
}

TEST(OverloadPipelineTest, DrainWithinDeadlineEndsClean) {
  const MachineTopology topo = host_topology();
  const std::uint64_t kChunks = 20;

  NodeConfig sender_cfg = sender_config(1, 1);
  sender_cfg.overload.drain_deadline_ms = 10000;
  NodeConfig receiver_cfg = receiver_config(1, 1);
  receiver_cfg.overload.drain_deadline_ms = 10000;

  PatternSource source(1, kChunks, 2048);
  CountingSink sink;
  const OverloadRunResult run =
      run_overload_pipeline(topo, sender_cfg, receiver_cfg, source, sink);

  ASSERT_TRUE(run.sender_stats.ok()) << run.sender_stats.status().to_string();
  ASSERT_TRUE(run.receiver_stats.ok()) << run.receiver_stats.status().to_string();
  EXPECT_EQ(sink.chunks(), kChunks);
  EXPECT_EQ(run.sender.drain_timeouts, 0U);
  EXPECT_EQ(run.receiver.drain_timeouts, 0U);
}

// -------------------------------------------------- slow-consumer eviction

TEST(OverloadPipelineTest, SlowStreamIsEvictedNotAllowedToStarveTheRest) {
  const MachineTopology topo = host_topology();
  const std::uint64_t kChunks = 40;

  NodeConfig sender_cfg = sender_config(1, 1);
  NodeConfig receiver_cfg = receiver_config(1, 1);
  // An impossible floor: nothing delivers 1000 chunks per 50ms window here,
  // so the monitor must evict the stream on its first sample with backlog.
  receiver_cfg.overload.slow_stream_floor = 1000;
  receiver_cfg.overload.slow_grace_ms = 50;

  PatternSource source(1, kChunks, 2048);
  SlowSink sink(std::chrono::milliseconds(20));
  const OverloadRunResult run =
      run_overload_pipeline(topo, sender_cfg, receiver_cfg, source, sink);

  ASSERT_TRUE(run.sender_stats.ok()) << run.sender_stats.status().to_string();
  ASSERT_TRUE(run.receiver_stats.ok()) << run.receiver_stats.status().to_string();
  EXPECT_EQ(run.receiver.slow_streams_evicted, 1U);
  EXPECT_GT(run.receiver.evicted_chunks, 0U);
  EXPECT_LT(sink.chunks(), kChunks);
  // Accountability survives eviction: delivered + evicted == received.
  EXPECT_EQ(sink.chunks() + run.receiver.evicted_chunks, kChunks);
}

// ------------------------------------------------------- chaos x overload

struct ChaosOverloadRun {
  FaultCountersSnapshot faults;
  OverloadCountersSnapshot sender;
  OverloadCountersSnapshot receiver;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t> delivered;
  std::uint64_t duplicates = 0;
};

/// Chaos on the sender's data direction (disconnects + torn writes) while
/// credit flow control, the memory budget and a shed policy are live. The
/// accept side is left clean so the reverse (credit) channel stays intact —
/// data-direction faults already force redials, which reset and re-grant the
/// credit window.
ChaosOverloadRun run_chaos_overload(const MachineTopology& topo,
                                    const FaultPlan& plan,
                                    NodeConfig sender_cfg,
                                    NodeConfig receiver_cfg,
                                    std::uint64_t chunk_count) {
  FaultCounters fault_counters;
  FaultInjector dial_injector(plan, &fault_counters);
  InprocListener listener;
  const auto dial = faulty_dialer([&] { return listener.connect(); },
                                  dial_injector);

  PatternSource source(1, chunk_count, 2048);
  VerifySink sink;
  OverloadCounters sender_counters;
  OverloadCounters receiver_counters;

  Result<SenderStats> sender_stats = Result<SenderStats>(SenderStats{});
  std::thread sender_thread([&] {
    StreamSender sender(topo, std::move(sender_cfg));
    sender_stats = sender.run(source, dial, nullptr, &fault_counters,
                              OverloadHooks{.counters = &sender_counters});
  });
  StreamReceiver receiver(topo, std::move(receiver_cfg));
  auto receiver_stats =
      receiver.run(listener, sink, nullptr, &fault_counters,
                   OverloadHooks{.counters = &receiver_counters});
  sender_thread.join();
  EXPECT_TRUE(sender_stats.ok()) << sender_stats.status().to_string();
  EXPECT_TRUE(receiver_stats.ok()) << receiver_stats.status().to_string();

  ChaosOverloadRun run;
  run.faults = fault_counters.snapshot();
  run.sender = sender_counters.snapshot();
  run.receiver = receiver_counters.snapshot();
  run.delivered = sink.hashes();
  run.duplicates = sink.duplicates();
  return run;
}

// Lossless overload (block policy + credit + budget) under chaos: every
// chunk must survive disconnects and torn writes bit-exact, exactly once,
// and the same seed must reproduce the identical fault counters.
TEST(ChaosOverloadTest, CreditAndBudgetSurviveChaosDeterministically) {
  const MachineTopology topo = host_topology();
  FaultPlan plan;
  plan.seed = chaos_seed(20260806);
  plan.disconnect_per_write = 0.05;
  plan.torn_write_per_write = 0.05;
  plan.fault_free_prefix_bytes = 2048;
  plan.max_faults = 8;

  const std::uint64_t kChunks = 30;
  const auto run_once = [&] {
    NodeConfig sender_cfg = sender_config(1, 1);
    sender_cfg.recovery.reconnect = true;
    sender_cfg.recovery.retry.max_attempts = 8;
    sender_cfg.recovery.retry.initial_backoff_us = 100;
    sender_cfg.recovery.retry.max_backoff_us = 5000;
    sender_cfg.overload.credit_window = 4;
    sender_cfg.overload.budget_bytes = 64 * 1024;
    NodeConfig receiver_cfg = receiver_config(1, 1);
    receiver_cfg.recovery.reconnect = true;
    receiver_cfg.overload.credit_window = 4;
    return run_chaos_overload(topo, plan, sender_cfg, receiver_cfg, kChunks);
  };

  const ChaosOverloadRun first = run_once();

  // Chaos actually happened and the overload machinery was live through it.
  EXPECT_GT(first.faults.injected_disconnects + first.faults.injected_torn_writes,
            0U);
  EXPECT_GT(first.faults.reconnects, 0U);
  EXPECT_GT(first.receiver.credit_grants, 0U);

  // Lossless: every chunk delivered exactly once, bit-exact.
  EXPECT_EQ(first.duplicates, 0U);
  ASSERT_EQ(first.delivered.size(), kChunks);
  for (std::uint64_t seq = 0; seq < kChunks; ++seq) {
    const auto it = first.delivered.find({1, seq});
    ASSERT_NE(it, first.delivered.end()) << "chunk " << seq << " lost";
    EXPECT_EQ(it->second, xxhash32(pattern_payload(seq, 2048)))
        << "chunk " << seq << " corrupted";
  }

  // Same seed, same faults, same outcome.
  const ChaosOverloadRun second = run_once();
  EXPECT_EQ(first.faults, second.faults)
      << "first:\n" << first.faults.to_string()
      << "second:\n" << second.faults.to_string();
  EXPECT_EQ(first.delivered, second.delivered);
}

// Shedding under chaos: the shed policy and the fault recovery must not
// corrupt each other's accounting — whatever was not shed arrives exactly
// once and bit-exact, with no duplicates from retransmission.
TEST(ChaosOverloadTest, SheddingAndRecoveryKeepExactlyOnceDelivery) {
  const MachineTopology topo = host_topology();
  FaultPlan plan;
  plan.seed = chaos_seed(99);
  plan.disconnect_per_write = 0.04;
  plan.torn_write_per_write = 0.04;
  plan.fault_free_prefix_bytes = 2048;
  plan.max_faults = 10;

  NodeConfig sender_cfg = sender_config(2, 1);
  sender_cfg.queue_capacity = 4;
  sender_cfg.recovery.reconnect = true;
  sender_cfg.recovery.retry.max_attempts = 8;
  sender_cfg.recovery.retry.initial_backoff_us = 100;
  sender_cfg.recovery.retry.max_backoff_us = 5000;
  sender_cfg.overload.credit_window = 2;
  sender_cfg.overload.shed_policy = ShedPolicy::kDropNewest;
  sender_cfg.overload.high_watermark = 3;
  sender_cfg.overload.low_watermark = 1;
  NodeConfig receiver_cfg = receiver_config(1, 1);
  receiver_cfg.recovery.reconnect = true;
  receiver_cfg.overload.credit_window = 2;

  const std::uint64_t kChunks = 60;
  const ChaosOverloadRun run =
      run_chaos_overload(topo, plan, sender_cfg, receiver_cfg, kChunks);

  EXPECT_EQ(run.duplicates, 0U);
  // Conservation across both subsystems: a chunk was delivered or shed —
  // transport faults alone never lose one (failed sends are re-sent).
  EXPECT_EQ(run.delivered.size() + run.sender.total_shed(), kChunks);
  for (const auto& [key, hash] : run.delivered) {
    EXPECT_EQ(hash, xxhash32(pattern_payload(key.second, 2048)))
        << "chunk " << key.second << " corrupted";
  }
}

}  // namespace
}  // namespace numastream
