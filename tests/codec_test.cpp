#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "codec/codec.h"
#include "codec/delta_rle.h"
#include "codec/frame.h"
#include "codec/lz4.h"
#include "codec/xxhash.h"
#include "common/rng.h"

namespace numastream {
namespace {

Bytes from_string(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

// ---------------------------------------------------------------- xxhash

// Reference vectors from the xxHash specification / reference implementation.
TEST(XxHashTest, Known32BitVectors) {
  EXPECT_EQ(xxhash32({}, 0), 0x02CC5D05U);
  const Bytes abc = from_string("abc");
  EXPECT_EQ(xxhash32(abc, 0), 0x32D153FFU);
}

TEST(XxHashTest, Known64BitVectors) {
  EXPECT_EQ(xxhash64({}, 0), 0xEF46DB3751D8E999ULL);
  const Bytes abc = from_string("abc");
  EXPECT_EQ(xxhash64(abc, 0), 0x44BC2CF5AD770999ULL);
}

TEST(XxHashTest, SeedChangesDigest) {
  const Bytes data = from_string("numastream");
  EXPECT_NE(xxhash32(data, 0), xxhash32(data, 1));
  EXPECT_NE(xxhash64(data, 0), xxhash64(data, 1));
}

TEST(XxHashTest, SingleBitFlipsDigest) {
  Bytes data(1024);
  Rng rng(1);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.next_u64());
  }
  const std::uint32_t h32 = xxhash32(data);
  const std::uint64_t h64 = xxhash64(data);
  data[512] ^= 1;
  EXPECT_NE(xxhash32(data), h32);
  EXPECT_NE(xxhash64(data), h64);
}

// Property: the streaming hasher matches the one-shot hash for any split of
// the input into updates.
class XxHashStreaming : public ::testing::TestWithParam<std::size_t> {};

TEST_P(XxHashStreaming, MatchesOneShotForAnyChunking) {
  const std::size_t total = GetParam();
  Bytes data(total);
  Rng rng(total + 17);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.next_u64());
  }
  const std::uint32_t expected = xxhash32(data, 42);

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{16},
                                  std::size_t{17}, std::size_t{1000}}) {
    XxHash32 hasher(42);
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t n = std::min(chunk, data.size() - pos);
      hasher.update(ByteSpan(data.data() + pos, n));
      pos += n;
    }
    EXPECT_EQ(hasher.digest(), expected) << "total=" << total << " chunk=" << chunk;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, XxHashStreaming,
                         ::testing::Values(0, 1, 4, 15, 16, 17, 31, 32, 33, 255, 4096,
                                           100001));

// ---------------------------------------------------------------- lz4

// Deterministic corpus generators covering the compressibility spectrum.
Bytes make_corpus(std::size_t size, int entropy_class, std::uint64_t seed) {
  Bytes data(size);
  Rng rng(seed);
  switch (entropy_class) {
    case 0:  // all zero
      break;
    case 1:  // short repeating pattern (high compressibility, overlap matches)
      for (std::size_t i = 0; i < size; ++i) {
        data[i] = static_cast<std::uint8_t>("abcabc"[i % 6]);
      }
      break;
    case 2:  // long repeating pattern
      for (std::size_t i = 0; i < size; ++i) {
        data[i] = static_cast<std::uint8_t>(i % 251);
      }
      break;
    case 3:  // text-like: random words from a small dictionary
    {
      static const char* kWords[] = {"stream", "numa", "chunk", "socket",
                                     "throughput", "gateway", "detector", "x-ray"};
      std::size_t pos = 0;
      while (pos < size) {
        const char* word = kWords[rng.next_below(8)];
        const std::size_t len = std::min(std::strlen(word), size - pos);
        std::memcpy(data.data() + pos, word, len);
        pos += len;
        if (pos < size) {
          data[pos++] = ' ';
        }
      }
      break;
    }
    case 4:  // mixed: compressible runs with random islands
      for (std::size_t i = 0; i < size; ++i) {
        data[i] = (i / 64) % 3 == 0 ? static_cast<std::uint8_t>(rng.next_u64())
                                    : static_cast<std::uint8_t>(i / 64);
      }
      break;
    default:  // incompressible random
      for (auto& b : data) {
        b = static_cast<std::uint8_t>(rng.next_u64());
      }
      break;
  }
  return data;
}

class Lz4RoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, std::uint64_t>> {};

TEST_P(Lz4RoundTrip, CompressDecompressIdentity) {
  const auto [size, entropy, seed] = GetParam();
  const Bytes original = make_corpus(size, entropy, seed);
  const Bytes compressed = lz4_compress(original);
  EXPECT_LE(compressed.size(), lz4_compress_bound(original.size()));
  auto decoded = lz4_decompress(compressed, original.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value(), original);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, Lz4RoundTrip,
    ::testing::Combine(::testing::Values(0, 1, 4, 11, 12, 13, 64, 65, 1000, 65536,
                                         65537, 1 << 20),
                       ::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(1, 99)));

TEST(Lz4Test, CompressesRepetitiveDataWell) {
  const Bytes original = make_corpus(1 << 20, 0, 0);  // zeros
  const Bytes compressed = lz4_compress(original);
  EXPECT_LT(compressed.size(), original.size() / 100);
}

TEST(Lz4Test, HandlesIncompressibleDataWithinBound) {
  const Bytes original = make_corpus(1 << 18, 5, 3);
  const Bytes compressed = lz4_compress(original);
  EXPECT_LE(compressed.size(), lz4_compress_bound(original.size()));
  EXPECT_GE(compressed.size(), original.size());  // random data cannot shrink
}

TEST(Lz4Test, MatchAtMaxOffsetBoundary) {
  // Two copies of a block separated by exactly 65535 filler bytes: the match
  // offset is representable. Then separated by 65536: it is not, and the
  // compressor must fall back to literals — round trip must hold either way.
  for (const std::size_t gap : {std::size_t{65535 - 32}, std::size_t{65536}}) {
    Bytes data;
    const Bytes block = make_corpus(32, 3, 7);
    data.insert(data.end(), block.begin(), block.end());
    Rng rng(11);
    for (std::size_t i = 0; i < gap; ++i) {
      data.push_back(static_cast<std::uint8_t>(rng.next_u64()));
    }
    data.insert(data.end(), block.begin(), block.end());
    const Bytes compressed = lz4_compress(data);
    auto decoded = lz4_decompress(compressed, data.size());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), data);
  }
}

TEST(Lz4Test, DestinationTooSmallIsResourceExhausted) {
  const Bytes original = make_corpus(4096, 5, 1);
  Bytes tiny(16);
  auto written = lz4_compress_block(original, tiny);
  EXPECT_FALSE(written.ok());
  EXPECT_EQ(written.status().code(), StatusCode::kResourceExhausted);
}

TEST(Lz4Test, DecodeRejectsTruncatedStream) {
  const Bytes original = make_corpus(4096, 1, 1);
  Bytes compressed = lz4_compress(original);
  for (const std::size_t cut : {compressed.size() / 2, compressed.size() - 1}) {
    Bytes truncated(compressed.begin(),
                    compressed.begin() + static_cast<std::ptrdiff_t>(cut));
    Bytes out(original.size());
    auto produced = lz4_decompress_block(truncated, out);
    // Either an explicit error, or (for a cut that lands on a sequence
    // boundary) a short decode — never a crash or overrun.
    if (produced.ok()) {
      EXPECT_LT(produced.value(), original.size());
    } else {
      EXPECT_EQ(produced.status().code(), StatusCode::kDataLoss);
    }
  }
}

TEST(Lz4Test, DecodeRejectsZeroOffset) {
  // token: 1 literal, then a match with offset 0 (illegal).
  const Bytes bad = {0x10, 'A', 0x00, 0x00};
  Bytes out(64);
  auto produced = lz4_decompress_block(bad, out);
  ASSERT_FALSE(produced.ok());
  EXPECT_EQ(produced.status().code(), StatusCode::kDataLoss);
}

TEST(Lz4Test, DecodeRejectsOffsetBeforeOutputStart) {
  // 1 literal then a match reaching 2 bytes back: only 1 byte exists.
  const Bytes bad = {0x10, 'A', 0x02, 0x00};
  Bytes out(64);
  auto produced = lz4_decompress_block(bad, out);
  ASSERT_FALSE(produced.ok());
  EXPECT_EQ(produced.status().code(), StatusCode::kDataLoss);
}

TEST(Lz4Test, DecodeRejectsOutputOverflow) {
  const Bytes original = make_corpus(4096, 0, 0);
  const Bytes compressed = lz4_compress(original);
  Bytes out(original.size() - 1);  // one byte too small
  auto produced = lz4_decompress_block(compressed, out);
  ASSERT_FALSE(produced.ok());
  EXPECT_EQ(produced.status().code(), StatusCode::kDataLoss);
}

TEST(Lz4Test, DecodeHandcraftedSequence) {
  // "aaaaaaaaaaaaaaaa" (16 a's) encoded by hand:
  //   token 0x1B: 1 literal ('a'), match len 11+4=15? -> use: literal 'a',
  //   offset 1, matchlen token 11 -> 11+4 = 15 copies. 1 + 15 = 16 bytes.
  const Bytes handmade = {0x1B, 'a', 0x01, 0x00};
  Bytes out(16);
  auto produced = lz4_decompress_block(handmade, out);
  ASSERT_TRUE(produced.ok()) << produced.status().to_string();
  EXPECT_EQ(produced.value(), 16U);
  EXPECT_EQ(out, Bytes(16, 'a'));
}

TEST(Lz4Test, FuzzDecodeNeverCrashes) {
  // Random garbage through the decoder: any result is fine, UB is not.
  Rng rng(2024);
  for (int iter = 0; iter < 500; ++iter) {
    Bytes garbage(rng.next_below(512));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
    Bytes out(1024);
    (void)lz4_decompress_block(garbage, out);
  }
  SUCCEED();
}

TEST(Lz4Test, MutatedValidStreamNeverCrashes) {
  const Bytes original = make_corpus(8192, 4, 5);
  const Bytes compressed = lz4_compress(original);
  Rng rng(77);
  for (int iter = 0; iter < 500; ++iter) {
    Bytes mutated = compressed;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    Bytes out(original.size());
    (void)lz4_decompress_block(mutated, out);  // must not crash or overrun
  }
  SUCCEED();
}

// ---------------------------------------------------------------- delta_rle

Bytes make_u16_field(std::size_t n_samples, int kind, std::uint64_t seed) {
  Bytes data(n_samples * 2);
  Rng rng(seed);
  std::uint16_t value = 1000;
  for (std::size_t i = 0; i < n_samples; ++i) {
    switch (kind) {
      case 0:  // constant
        break;
      case 1:  // slow ramp (small deltas)
        value = static_cast<std::uint16_t>(value + 1);
        break;
      case 2:  // smooth-ish random walk
        value = static_cast<std::uint16_t>(value + rng.next_in_range(-5, 5));
        break;
      default:  // white noise
        value = static_cast<std::uint16_t>(rng.next_u64());
        break;
    }
    store_le16(data.data() + 2 * i, value);
  }
  return data;
}

class DeltaRleRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, bool>> {};

TEST_P(DeltaRleRoundTrip, Identity) {
  const auto [n_samples, kind, odd] = GetParam();
  Bytes original = make_u16_field(n_samples, kind, n_samples + kind);
  if (odd) {
    original.push_back(0x5A);
  }
  Bytes compressed(delta_rle_compress_bound(original.size()));
  auto written = delta_rle_compress(original, compressed);
  ASSERT_TRUE(written.ok()) << written.status().to_string();
  compressed.resize(written.value());

  Bytes decoded(original.size());
  auto produced = delta_rle_decompress(compressed, decoded);
  ASSERT_TRUE(produced.ok()) << produced.status().to_string();
  EXPECT_EQ(decoded, original);
}

INSTANTIATE_TEST_SUITE_P(Corpus, DeltaRleRoundTrip,
                         ::testing::Combine(::testing::Values(0, 1, 2, 7, 100, 10000),
                                            ::testing::Values(0, 1, 2, 3),
                                            ::testing::Bool()));

TEST(DeltaRleTest, ConstantFieldCompressesExtremelyWell) {
  const Bytes original = make_u16_field(100000, 0, 1);
  Bytes compressed(delta_rle_compress_bound(original.size()));
  auto written = delta_rle_compress(original, compressed);
  ASSERT_TRUE(written.ok());
  EXPECT_LT(written.value(), original.size() / 50);
}

TEST(DeltaRleTest, SmoothWalkApproachesOneBytePerSample) {
  // Deltas in [-5, 5] zigzag into single varint bytes: the encoded size is
  // ~1 byte per 2-byte sample plus RLE literal-token overhead (1 per 127).
  const Bytes original = make_u16_field(100000, 2, 1);
  Bytes compressed(delta_rle_compress_bound(original.size()));
  auto written = delta_rle_compress(original, compressed);
  ASSERT_TRUE(written.ok());
  EXPECT_LT(written.value(), original.size() * 52 / 100);
}

TEST(DeltaRleTest, FuzzDecodeNeverCrashes) {
  Rng rng(31);
  for (int iter = 0; iter < 500; ++iter) {
    Bytes garbage(rng.next_below(256));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
    Bytes out(500);
    (void)delta_rle_decompress(garbage, out);
  }
  SUCCEED();
}

// ---------------------------------------------------------------- registry

TEST(CodecRegistryTest, LookupById) {
  ASSERT_NE(codec_by_id(CodecId::kNull), nullptr);
  ASSERT_NE(codec_by_id(CodecId::kLz4), nullptr);
  ASSERT_NE(codec_by_id(CodecId::kDeltaRle), nullptr);
  ASSERT_NE(codec_by_id(CodecId::kLz4Hc), nullptr);
  EXPECT_EQ(codec_by_id(static_cast<CodecId>(200)), nullptr);
}

TEST(CodecRegistryTest, LookupByName) {
  EXPECT_EQ(codec_by_name("lz4")->id(), CodecId::kLz4);
  EXPECT_EQ(codec_by_name("null")->id(), CodecId::kNull);
  EXPECT_EQ(codec_by_name("delta_rle")->id(), CodecId::kDeltaRle);
  EXPECT_EQ(codec_by_name("lz4hc")->id(), CodecId::kLz4Hc);
  EXPECT_EQ(codec_by_name("zstd"), nullptr);
}

TEST(CodecRegistryTest, IdsAndNamesAreConsistent) {
  for (const Codec* codec : all_codecs()) {
    EXPECT_EQ(codec_by_id(codec->id()), codec);
    EXPECT_EQ(codec_by_name(codec->name()), codec);
  }
}

// Property: every registered codec round-trips every corpus class.
class AllCodecsRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t, int>> {};

TEST_P(AllCodecsRoundTrip, Identity) {
  const auto [name, size, entropy] = GetParam();
  const Codec* codec = codec_by_name(name);
  ASSERT_NE(codec, nullptr);
  const Bytes original = make_corpus(size, entropy, size * 31 + entropy);

  Bytes compressed(codec->max_compressed_size(original.size()));
  auto written = codec->compress(original, compressed);
  ASSERT_TRUE(written.ok()) << written.status().to_string();
  compressed.resize(written.value());

  Bytes decoded(original.size());
  auto produced = codec->decompress(compressed, decoded);
  ASSERT_TRUE(produced.ok()) << produced.status().to_string();
  EXPECT_EQ(produced.value(), original.size());
  EXPECT_EQ(decoded, original);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllCodecsRoundTrip,
    ::testing::Combine(::testing::Values("null", "lz4", "delta_rle", "lz4hc"),
                       ::testing::Values(0, 1, 100, 4096, 100000),
                       ::testing::Values(0, 2, 4, 5)));

// ---------------------------------------------------------------- lz4hc

class Lz4HcRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, std::uint64_t>> {};

TEST_P(Lz4HcRoundTrip, CompressDecompressIdentity) {
  const auto [size, entropy, seed] = GetParam();
  const Bytes original = make_corpus(size, entropy, seed);
  const Bytes compressed = lz4hc_compress(original);
  EXPECT_LE(compressed.size(), lz4_compress_bound(original.size()));
  auto decoded = lz4_decompress(compressed, original.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value(), original);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, Lz4HcRoundTrip,
    ::testing::Combine(::testing::Values(0, 1, 12, 13, 1000, 65537, 1 << 19),
                       ::testing::Values(0, 1, 2, 3, 4, 5), ::testing::Values(7)));

TEST(Lz4HcTest, NeverWorseRatioThanFastModeOnCompressibleData) {
  for (const int entropy : {1, 2, 3, 4}) {
    const Bytes original = make_corpus(1 << 18, entropy, entropy + 11);
    const Bytes fast = lz4_compress(original);
    const Bytes hc = lz4hc_compress(original);
    EXPECT_LE(hc.size(), fast.size()) << "entropy class " << entropy;
  }
}

TEST(Lz4HcTest, DeeperChainsNeverHurtRatio) {
  const Bytes original = make_corpus(1 << 18, 3, 5);
  const Bytes shallow = lz4hc_compress(original, /*max_chain=*/2);
  const Bytes deep = lz4hc_compress(original, /*max_chain=*/256);
  EXPECT_LE(deep.size(), shallow.size());
}

TEST(Lz4HcTest, OutputDecodesWithTheSharedDecoder) {
  // HC output is spec-format: the fast decoder consumes it with no flags.
  const Bytes original = make_corpus(100000, 4, 9);
  Bytes out(original.size());
  auto produced = lz4_decompress_block(lz4hc_compress(original), out);
  ASSERT_TRUE(produced.ok());
  EXPECT_EQ(produced.value(), original.size());
  EXPECT_EQ(out, original);
}

TEST(Lz4HcTest, DestinationTooSmallIsResourceExhausted) {
  const Bytes original = make_corpus(4096, 5, 1);
  Bytes tiny(16);
  auto written = lz4hc_compress_block(original, tiny);
  ASSERT_FALSE(written.ok());
  EXPECT_EQ(written.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------- frame

TEST(FrameTest, RoundTripLz4) {
  const Bytes raw = make_corpus(100000, 1, 1);
  const Bytes frame = encode_frame(*codec_by_id(CodecId::kLz4), raw);
  EXPECT_LT(frame.size(), raw.size());  // compressible input actually shrank
  auto decoded = decode_frame_content(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value(), raw);
}

TEST(FrameTest, IncompressibleFallsBackToNullCodec) {
  const Bytes raw = make_corpus(4096, 5, 1);
  const Bytes frame = encode_frame(*codec_by_id(CodecId::kLz4), raw);
  auto view = decode_frame(frame);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value().codec, CodecId::kNull);
  EXPECT_EQ(frame.size(), kFrameHeaderSize + raw.size());
  auto decoded = decode_frame_content(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), raw);
}

TEST(FrameTest, EmptyContent) {
  const Bytes frame = encode_frame(*codec_by_id(CodecId::kLz4), {});
  auto decoded = decode_frame_content(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(FrameTest, HeaderFieldsAreCorrect) {
  const Bytes raw = make_corpus(5000, 1, 2);
  const Bytes frame = encode_frame(*codec_by_id(CodecId::kLz4), raw);
  auto view = decode_frame(frame);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value().codec, CodecId::kLz4);
  EXPECT_EQ(view.value().raw_size, raw.size());
  EXPECT_EQ(view.value().content_hash, xxhash32(raw));
  EXPECT_EQ(view.value().payload.size(), frame.size() - kFrameHeaderSize);
}

TEST(FrameTest, BadMagicRejected) {
  Bytes frame = encode_frame(*codec_by_id(CodecId::kNull), make_corpus(64, 1, 1));
  frame[0] ^= 0xFF;
  EXPECT_EQ(decode_frame(frame).status().code(), StatusCode::kDataLoss);
}

TEST(FrameTest, PayloadCorruptionDetected) {
  Bytes frame = encode_frame(*codec_by_id(CodecId::kLz4), make_corpus(8192, 1, 1));
  frame[kFrameHeaderSize + 5] ^= 0x40;
  EXPECT_EQ(decode_frame(frame).status().code(), StatusCode::kDataLoss);
}

TEST(FrameTest, TruncationDetected) {
  const Bytes frame = encode_frame(*codec_by_id(CodecId::kLz4), make_corpus(8192, 1, 1));
  for (const std::size_t cut : {std::size_t{0}, std::size_t{10}, kFrameHeaderSize,
                                frame.size() - 1}) {
    Bytes truncated(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_EQ(decode_frame(truncated).status().code(), StatusCode::kDataLoss)
        << "cut=" << cut;
  }
}

TEST(FrameTest, UnknownCodecRejected) {
  Bytes frame = encode_frame(*codec_by_id(CodecId::kNull), make_corpus(64, 1, 1));
  frame[4] = 99;  // codec id byte
  EXPECT_EQ(decode_frame(frame).status().code(), StatusCode::kDataLoss);
}

TEST(FrameTest, FuzzDecodeNeverCrashes) {
  Rng rng(555);
  for (int iter = 0; iter < 1000; ++iter) {
    Bytes garbage(rng.next_below(200));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
    (void)decode_frame_content(garbage);
  }
  SUCCEED();
}

}  // namespace
}  // namespace numastream
