// Integration tests: whole-system paths that cross module boundaries —
// the real threaded pipeline over real TCP sockets, configuration files
// parsed from text and executed, hostile peers, and corrupt frames.
#include <gtest/gtest.h>

#include <thread>

#include "codec/frame.h"
#include "core/pipeline.h"
#include "msg/socket.h"
#include "msg/tcp.h"
#include "topo/discover.h"

namespace numastream {
namespace {

MachineTopology host_topology() {
  auto topo = discover_topology();
  NS_CHECK(topo.ok(), "integration tests need a discoverable host");
  return std::move(topo).value();
}

TomoConfig small_tomo() {
  TomoConfig config;
  config.rows = 64;
  config.cols = 100;
  config.num_spheres = 4;
  return config;
}

// ------------------------------------------------------------ TCP pipeline

TEST(TcpPipelineTest, FullPipelineOverRealSockets) {
  const MachineTopology topo = host_topology();
  const TomoConfig tomo = small_tomo();

  NodeConfig sender_config;
  sender_config.node_name = "itest-sender";
  sender_config.role = NodeRole::kSender;
  sender_config.chunk_bytes = tomo.chunk_bytes();
  sender_config.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = 3},
      TaskGroupConfig{.type = TaskType::kSend, .count = 4},
  };
  NodeConfig receiver_config;
  receiver_config.node_name = "itest-receiver";
  receiver_config.role = NodeRole::kReceiver;
  receiver_config.chunk_bytes = tomo.chunk_bytes();
  receiver_config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 4},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 2},
  };

  auto listener = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value()->port();

  const std::uint64_t kChunks = 25;
  TomoChunkSource source(tomo, 1, kChunks);
  CountingSink sink;

  SenderStats sender_stats;
  std::thread sender_thread([&] {
    StreamSender sender(topo, sender_config);
    auto stats = sender.run(source, [&] { return tcp_connect("127.0.0.1", port); });
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    sender_stats = stats.value();
  });

  StreamReceiver receiver(topo, receiver_config);
  auto stats = receiver.run(*listener.value(), sink);
  sender_thread.join();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();

  EXPECT_EQ(sink.chunks(), kChunks);
  EXPECT_EQ(stats.value().raw_bytes, kChunks * tomo.chunk_bytes());
  EXPECT_EQ(stats.value().corrupt_frames, 0U);
  EXPECT_EQ(stats.value().wire_bytes, sender_stats.wire_bytes);
  EXPECT_LT(sender_stats.wire_bytes, sender_stats.raw_bytes);  // LZ4 helped
}

// The receiver is wire-format compatible with any sender that speaks the
// message + frame formats, not just StreamSender: drive it by hand.
TEST(TcpPipelineTest, HandRolledSenderInteroperates) {
  const MachineTopology topo = host_topology();
  NodeConfig receiver_config;
  receiver_config.node_name = "itest";
  receiver_config.role = NodeRole::kReceiver;
  receiver_config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 1},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 1},
  };

  auto listener = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value()->port();

  const Bytes payload(50000, 0x42);
  std::thread sender_thread([&] {
    auto stream = tcp_connect("127.0.0.1", port);
    ASSERT_TRUE(stream.ok());
    PushSocket push(std::move(stream).value());
    Message message;
    message.stream_id = 9;
    message.sequence = 0;
    message.body = encode_frame(*codec_by_id(CodecId::kLz4), payload);
    ASSERT_TRUE(push.send(message).is_ok());
    ASSERT_TRUE(push.finish(9).is_ok());
  });

  CountingSink sink;
  StreamReceiver receiver(topo, receiver_config);
  auto stats = receiver.run(*listener.value(), sink);
  sender_thread.join();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(sink.chunks(), 1U);
  EXPECT_EQ(sink.bytes(), payload.size());
}

// A corrupt frame inside a valid message must be counted and dropped while
// the stream continues (network checksums pass; the frame itself is bad —
// e.g. a sender-side memory error).
TEST(TcpPipelineTest, CorruptFrameIsDroppedNotFatal) {
  const MachineTopology topo = host_topology();
  NodeConfig receiver_config;
  receiver_config.node_name = "itest";
  receiver_config.role = NodeRole::kReceiver;
  receiver_config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 1},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 1},
  };

  auto listener = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value()->port();

  const Bytes payload(20000, 0x33);
  std::thread sender_thread([&] {
    auto stream = tcp_connect("127.0.0.1", port);
    ASSERT_TRUE(stream.ok());
    PushSocket push(std::move(stream).value());

    Message good;
    good.sequence = 0;
    good.body = encode_frame(*codec_by_id(CodecId::kLz4), payload);

    Message bad = good;
    bad.sequence = 1;
    bad.body[kFrameHeaderSize + 3] ^= 0xFF;  // corrupt the frame payload

    Message good2 = good;
    good2.sequence = 2;

    ASSERT_TRUE(push.send(good).is_ok());
    ASSERT_TRUE(push.send(bad).is_ok());
    ASSERT_TRUE(push.send(good2).is_ok());
    ASSERT_TRUE(push.finish(0).is_ok());
  });

  CountingSink sink;
  StreamReceiver receiver(topo, receiver_config);
  auto stats = receiver.run(*listener.value(), sink);
  sender_thread.join();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(stats.value().corrupt_frames, 1U);
  EXPECT_EQ(sink.chunks(), 2U);  // the two good frames arrived
}

// A peer that sends garbage bytes (not even the message framing) must fail
// the receiver cleanly with DATA_LOSS, never hang or crash.
TEST(TcpPipelineTest, GarbagePeerFailsCleanly) {
  const MachineTopology topo = host_topology();
  NodeConfig receiver_config;
  receiver_config.node_name = "itest";
  receiver_config.role = NodeRole::kReceiver;
  receiver_config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 1},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 1},
  };

  auto listener = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value()->port();

  std::thread peer([&] {
    auto stream = tcp_connect("127.0.0.1", port);
    ASSERT_TRUE(stream.ok());
    const Bytes garbage(4096, 0xEE);
    (void)stream.value()->write_all(garbage);
    stream.value()->shutdown_write();
    // Drain until the receiver hangs up so the write cannot race the close.
    Bytes sink_buffer(256);
    while (true) {
      auto n = stream.value()->read_some(sink_buffer);
      if (!n.ok() || n.value() == 0) {
        break;
      }
    }
  });

  CountingSink sink;
  StreamReceiver receiver(topo, receiver_config);
  auto stats = receiver.run(*listener.value(), sink);
  peer.join();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDataLoss);
}

// ------------------------------------------------------- config-file-driven

TEST(ConfigFileTest, PipelineRunsFromParsedText) {
  const MachineTopology topo = host_topology();
  const TomoConfig tomo = small_tomo();

  const std::string sender_text =
      "node beamline\n"
      "role sender\n"
      "codec delta_rle\n"
      "chunk_bytes " + std::to_string(tomo.chunk_bytes()) + "\n"
      "task compress count=2 exec=os mem=os\n"
      "task send count=2 exec=os mem=os\n";
  const std::string receiver_text =
      "node gateway\n"
      "role receiver\n"
      "codec delta_rle\n"
      "chunk_bytes " + std::to_string(tomo.chunk_bytes()) + "\n"
      "task receive count=2 exec=os mem=os\n"
      "task decompress count=2 exec=os mem=os\n";

  auto sender_config = NodeConfig::parse(sender_text);
  auto receiver_config = NodeConfig::parse(receiver_text);
  ASSERT_TRUE(sender_config.ok()) << sender_config.status().to_string();
  ASSERT_TRUE(receiver_config.ok()) << receiver_config.status().to_string();

  auto listener = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value()->port();

  TomoChunkSource source(tomo, 0, 10);
  CountingSink sink;
  std::thread sender_thread([&] {
    StreamSender sender(topo, sender_config.value());
    auto stats = sender.run(source, [&] { return tcp_connect("127.0.0.1", port); });
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  });
  StreamReceiver receiver(topo, receiver_config.value());
  auto stats = receiver.run(*listener.value(), sink);
  sender_thread.join();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(sink.chunks(), 10U);
  EXPECT_EQ(stats.value().corrupt_frames, 0U);
}

// ------------------------------------------------------------- determinism

// The same dataset streamed twice produces byte-identical wire traffic
// (framing, codec and data generation are all deterministic).
TEST(DeterminismTest, WireBytesAreReproducible) {
  const MachineTopology topo = host_topology();
  const TomoConfig tomo = small_tomo();

  const auto run_once = [&]() -> std::uint64_t {
    NodeConfig sender_config;
    sender_config.node_name = "d";
    sender_config.role = NodeRole::kSender;
    sender_config.tasks = {
        TaskGroupConfig{.type = TaskType::kCompress, .count = 1},
        TaskGroupConfig{.type = TaskType::kSend, .count = 1},
    };
    NodeConfig receiver_config;
    receiver_config.node_name = "d";
    receiver_config.role = NodeRole::kReceiver;
    receiver_config.tasks = {
        TaskGroupConfig{.type = TaskType::kReceive, .count = 1},
        TaskGroupConfig{.type = TaskType::kDecompress, .count = 1},
    };
    auto listener = TcpListener::bind("127.0.0.1", 0);
    NS_CHECK(listener.ok(), "bind failed");
    const std::uint16_t port = listener.value()->port();
    TomoChunkSource source(tomo, 0, 6);
    CountingSink sink;
    std::uint64_t wire = 0;
    std::thread sender_thread([&] {
      StreamSender sender(topo, sender_config);
      auto stats = sender.run(source, [&] { return tcp_connect("127.0.0.1", port); });
      NS_CHECK(stats.ok(), "sender failed");
      wire = stats.value().wire_bytes;
    });
    StreamReceiver receiver(topo, receiver_config);
    auto stats = receiver.run(*listener.value(), sink);
    sender_thread.join();
    NS_CHECK(stats.ok(), "receiver failed");
    return wire;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace numastream

namespace numastream {
namespace {

// Two senders, one receiver, a DemuxSink keeping their streams apart — the
// real-runtime shape of the paper's multi-stream gateway (Fig. 13).
TEST(GatewayTest, DemuxSinkSeparatesTwoRealStreams) {
  const MachineTopology topo = host_topology();
  const TomoConfig tomo = small_tomo();

  NodeConfig receiver_config;
  receiver_config.node_name = "gateway";
  receiver_config.role = NodeRole::kReceiver;
  receiver_config.chunk_bytes = tomo.chunk_bytes();
  receiver_config.tasks = {
      // One receive thread per sender connection.
      TaskGroupConfig{.type = TaskType::kReceive, .count = 2},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 2},
  };

  auto listener = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value()->port();

  NodeConfig sender_config;
  sender_config.node_name = "beamline";
  sender_config.role = NodeRole::kSender;
  sender_config.chunk_bytes = tomo.chunk_bytes();
  sender_config.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = 1},
      TaskGroupConfig{.type = TaskType::kSend, .count = 1},
  };

  const std::uint64_t kChunksA = 7;
  const std::uint64_t kChunksB = 5;
  TomoChunkSource source_a(tomo, /*stream_id=*/1, kChunksA);
  TomoChunkSource source_b(tomo, /*stream_id=*/2, kChunksB);

  std::thread sender_a([&] {
    StreamSender sender(topo, sender_config);
    auto stats = sender.run(source_a, [&] { return tcp_connect("127.0.0.1", port); });
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  });
  std::thread sender_b([&] {
    StreamSender sender(topo, sender_config);
    auto stats = sender.run(source_b, [&] { return tcp_connect("127.0.0.1", port); });
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  });

  CountingSink sink_a;
  CountingSink sink_b;
  DemuxSink demux;
  demux.route(1, &sink_a);
  demux.route(2, &sink_b);

  StreamReceiver receiver(topo, receiver_config);
  auto stats = receiver.run(*listener.value(), demux);
  sender_a.join();
  sender_b.join();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();

  EXPECT_EQ(sink_a.chunks(), kChunksA);
  EXPECT_EQ(sink_b.chunks(), kChunksB);
  EXPECT_EQ(demux.dropped(), 0U);
}

TEST(GatewayTest, DemuxFallbackAndDropAccounting) {
  CountingSink fallback;
  DemuxSink demux;
  Chunk chunk;
  chunk.stream_id = 42;
  chunk.payload = Bytes(10, 1);
  demux.deliver(chunk);            // no route, no fallback -> dropped
  EXPECT_EQ(demux.dropped(), 1U);
  demux.set_fallback(&fallback);
  demux.deliver(chunk);            // no route -> fallback
  EXPECT_EQ(fallback.chunks(), 1U);
  EXPECT_EQ(demux.dropped(), 1U);
}

}  // namespace
}  // namespace numastream
