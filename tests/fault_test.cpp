// Fault-tolerance tests: the retry/backoff engine, the fault-injection
// transport decorators, decoder/frame resynchronization, and the hardened
// pipeline end to end — chaos over inproc with reconnect, degradation under
// backlog, and the watchdog converting hangs into clean timed-out errors.
//
// Everything here is deterministic: every fault comes from a seeded
// FaultPlan, so a failing run replays bit-identically under a debugger.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "codec/frame.h"
#include "codec/xxhash.h"
#include "common/retry.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "core/watchdog.h"
#include "metrics/fault_counters.h"
#include "msg/faulty.h"
#include "msg/inproc.h"
#include "msg/socket.h"
#include "topo/discover.h"

namespace numastream {
namespace {

MachineTopology host_topology() {
  auto topo = discover_topology();
  NS_CHECK(topo.ok(), "fault tests need a discoverable host");
  return std::move(topo).value();
}

/// Chaos suites read NUMASTREAM_CHAOS_SEED so the nightly job can randomize
/// them; unset (the tier-1 default) they stay fully deterministic.
std::uint64_t chaos_seed(std::uint64_t fallback) {
  const char* env = std::getenv("NUMASTREAM_CHAOS_SEED");
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  return std::strtoull(env, nullptr, 10);
}

Bytes pattern_payload(std::uint64_t sequence, std::size_t size) {
  Bytes payload(size);
  Rng rng(sequence * 0x9E3779B97F4A7C15ULL + 1);
  for (auto& b : payload) {
    b = static_cast<std::uint8_t>(rng.next_u64());
  }
  return payload;
}

/// Serves `count` deterministic chunks whose contents depend only on the
/// sequence number, so any receiver can verify payloads independently.
class PatternSource final : public ChunkSource {
 public:
  PatternSource(std::uint32_t stream_id, std::uint64_t count, std::size_t size)
      : stream_id_(stream_id), count_(count), size_(size) {}

  std::optional<Chunk> next() override {
    const std::uint64_t index = issued_.fetch_add(1, std::memory_order_relaxed);
    if (index >= count_) {
      return std::nullopt;
    }
    Chunk chunk;
    chunk.stream_id = stream_id_;
    chunk.sequence = index;
    chunk.payload = pattern_payload(index, size_);
    return chunk;
  }

 private:
  std::uint32_t stream_id_;
  std::uint64_t count_;
  std::size_t size_;
  std::atomic<std::uint64_t> issued_{0};
};

/// Records a content hash per (stream, sequence) and counts re-deliveries.
class VerifySink final : public ChunkSink {
 public:
  void deliver(Chunk chunk) override {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto [it, fresh] = hashes_.emplace(
        std::make_pair(chunk.stream_id, chunk.sequence), xxhash32(chunk.payload));
    (void)it;
    if (!fresh) {
      ++duplicates_;
    }
  }

  [[nodiscard]] std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t>
  hashes() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return hashes_;
  }

  [[nodiscard]] std::uint64_t duplicates() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return duplicates_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t> hashes_;
  std::uint64_t duplicates_ = 0;
};

NodeConfig sender_config(int compress, int send) {
  NodeConfig config;
  config.node_name = "ftest-sender";
  config.role = NodeRole::kSender;
  config.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = compress},
      TaskGroupConfig{.type = TaskType::kSend, .count = send},
  };
  return config;
}

NodeConfig receiver_config(int receive, int decompress) {
  NodeConfig config;
  config.node_name = "ftest-receiver";
  config.role = NodeRole::kReceiver;
  config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = receive},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = decompress},
  };
  return config;
}

RetryPolicy fast_retry() {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_us = 100;
  policy.max_backoff_us = 5000;
  return policy;
}

// ------------------------------------------------------------ retry/backoff

TEST(BackoffTest, ScheduleGrowsCapsAndExhausts) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_us = 100;
  policy.max_backoff_us = 1000;
  policy.multiplier = 10.0;
  policy.jitter = 0.0;
  Backoff backoff(policy, 1);
  EXPECT_EQ(backoff.next_delay(), std::chrono::microseconds(100));
  EXPECT_EQ(backoff.next_delay(), std::chrono::microseconds(1000));  // capped
  EXPECT_EQ(backoff.next_delay(), std::chrono::microseconds(1000));
  EXPECT_FALSE(backoff.next_delay().has_value());  // 4 attempts = 3 retries
  EXPECT_EQ(backoff.retries(), 3);
  backoff.reset();
  EXPECT_EQ(backoff.next_delay(), std::chrono::microseconds(100));
}

TEST(BackoffTest, JitterOnlyShortensTheWait) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_us = 1000;
  policy.max_backoff_us = 1000;
  policy.multiplier = 1.0;
  policy.jitter = 0.5;
  Backoff backoff(policy, 7);
  for (int i = 0; i < 50; ++i) {
    const auto delay = backoff.next_delay();
    ASSERT_TRUE(delay.has_value());
    EXPECT_LE(delay->count(), 1000);
    EXPECT_GE(delay->count(), 500);  // jitter fraction 0.5
  }
}

TEST(BackoffTest, SameSeedSameSchedule) {
  const RetryPolicy policy;  // defaults include jitter
  Backoff a(policy, 99);
  Backoff b(policy, 99);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a.next_delay(), b.next_delay());
  }
}

TEST(BackoffTest, ElapsedBudgetStopsTheScheduleEarly) {
  RetryPolicy policy;
  policy.max_attempts = 100;  // attempts would allow far more
  policy.initial_backoff_us = 1000;
  policy.max_backoff_us = 1000;
  policy.multiplier = 1.0;
  policy.jitter = 0.0;
  policy.max_elapsed_us = 3500;
  Backoff backoff(policy, 1);
  EXPECT_EQ(backoff.next_delay(), std::chrono::microseconds(1000));
  EXPECT_EQ(backoff.next_delay(), std::chrono::microseconds(1000));
  EXPECT_EQ(backoff.next_delay(), std::chrono::microseconds(1000));
  // The final delay is clipped to the budget remainder, never past it.
  EXPECT_EQ(backoff.next_delay(), std::chrono::microseconds(500));
  EXPECT_FALSE(backoff.next_delay().has_value());  // budget spent
  EXPECT_EQ(backoff.elapsed_us(), 3500U);
  EXPECT_EQ(backoff.retries(), 4);
  backoff.reset();  // the budget resets with the schedule
  EXPECT_EQ(backoff.elapsed_us(), 0U);
  EXPECT_TRUE(backoff.next_delay().has_value());
}

TEST(BackoffTest, ElapsedBudgetIsDeterministicUnderJitter) {
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff_us = 500;
  policy.max_backoff_us = 4000;
  policy.jitter = 0.5;
  policy.max_elapsed_us = 20000;
  Backoff a(policy, 77);
  Backoff b(policy, 77);
  std::uint64_t handed_out = 0;
  while (true) {
    const auto da = a.next_delay();
    const auto db = b.next_delay();
    EXPECT_EQ(da, db);  // seeded jitter: bit-identical retry timelines
    if (!da.has_value()) {
      break;
    }
    handed_out += static_cast<std::uint64_t>(da->count());
    EXPECT_LE(a.elapsed_us(), policy.max_elapsed_us);
  }
  // The budget is counted from the delays themselves, not a wall clock.
  EXPECT_EQ(a.elapsed_us(), handed_out);
  EXPECT_LE(handed_out, policy.max_elapsed_us);
}

TEST(BackoffTest, ZeroBudgetMeansAttemptsOnly) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_us = 100;
  policy.jitter = 0.0;
  Backoff backoff(policy, 1);  // max_elapsed_us stays 0: no time cap
  EXPECT_TRUE(backoff.next_delay().has_value());
  EXPECT_TRUE(backoff.next_delay().has_value());
  EXPECT_FALSE(backoff.next_delay().has_value());  // attempts, not time
  EXPECT_EQ(backoff.elapsed_us(), 300U);
}

TEST(RetryPolicyTest, ValidateRejectsBadValues) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.validate().is_ok());
  policy.max_attempts = 0;
  EXPECT_FALSE(policy.validate().is_ok());
  policy = RetryPolicy{};
  policy.multiplier = 0.5;
  EXPECT_FALSE(policy.validate().is_ok());
  policy = RetryPolicy{};
  policy.jitter = 1.5;
  EXPECT_FALSE(policy.validate().is_ok());
  policy = RetryPolicy{};
  policy.max_backoff_us = policy.initial_backoff_us - 1;
  EXPECT_FALSE(policy.validate().is_ok());
}

TEST(WithRetryTest, SucceedsAfterTransientFailures) {
  RetryPolicy policy = fast_retry();
  int calls = 0;
  std::atomic<std::uint64_t> retries{0};
  auto result = with_retry(
      policy, 1,
      [&]() -> Result<int> {
        if (++calls < 3) {
          return unavailable_error("flap");
        }
        return 7;
      },
      &retries);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries.load(), 2U);
}

TEST(WithRetryTest, NonRetryableFailsImmediately) {
  int calls = 0;
  auto result = with_retry(fast_retry(), 1, [&]() -> Result<int> {
    ++calls;
    return data_loss_error("corrupt");
  });
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1);
}

TEST(WithRetryTest, ExhaustsAttempts) {
  RetryPolicy policy = fast_retry();
  policy.max_attempts = 3;
  int calls = 0;
  auto result = with_retry(policy, 1, [&]() -> Result<int> {
    ++calls;
    return unavailable_error("down");
  });
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
}

TEST(WithRetryTest, GivesUpWhenTimeBudgetSpent) {
  RetryPolicy policy;
  policy.max_attempts = 10000;  // attempts alone would retry for ages
  policy.initial_backoff_us = 500;
  policy.max_backoff_us = 500;
  policy.multiplier = 1.0;
  policy.jitter = 0.0;
  policy.max_elapsed_us = 2000;  // 4 delays of 500us, then stop
  int calls = 0;
  auto result = with_retry(policy, 1, [&]() -> Result<int> {
    ++calls;
    return unavailable_error("dead peer");
  });
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 5);  // initial attempt + the 4 the budget affords
}

TEST(WithRetryTest, CancelStopsRetrying) {
  std::atomic<bool> cancel{true};
  int calls = 0;
  auto result = with_retry(
      fast_retry(), 1,
      [&]() -> Result<int> {
        ++calls;
        return unavailable_error("down");
      },
      nullptr, &cancel);
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 1);
}

// ------------------------------------------------------------ fault plan

TEST(FaultPlanTest, ValidateRejectsBadProbabilities) {
  FaultPlan plan;
  EXPECT_TRUE(plan.validate().is_ok());
  plan.bitflip_per_write = 1.5;
  EXPECT_FALSE(plan.validate().is_ok());
  plan = FaultPlan{};
  plan.disconnect_per_write = 0.6;
  plan.torn_write_per_write = 0.6;  // sum > 1
  EXPECT_FALSE(plan.validate().is_ok());
}

TEST(FaultPlanTest, ThrottleNeedsARateAndCountsTowardTheBudget) {
  FaultPlan plan;
  plan.throttle_per_write = 0.5;  // probability set but no byte rate
  EXPECT_FALSE(plan.validate().is_ok());
  plan.throttle_bytes_per_sec = 1'000'000;
  EXPECT_TRUE(plan.validate().is_ok());
  plan.disconnect_per_write = 0.6;  // sum with throttle > 1
  EXPECT_FALSE(plan.validate().is_ok());
}

// ------------------------------------------------------------ faulty stream

TEST(FaultyStreamTest, SameSeedReplaysIdenticalFaults) {
  const auto run_once = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.disconnect_per_write = 0.05;
    plan.bitflip_per_write = 0.15;
    FaultCounters counters;
    FaultInjector injector(plan, &counters);
    InprocPair pair = make_inproc_pair();
    auto stream = injector.wrap(std::move(pair.first));

    std::vector<StatusCode> codes;
    for (int i = 0; i < 40; ++i) {
      codes.push_back(stream->write_all(pattern_payload(i, 64)).code());
    }
    stream->shutdown_write();
    Bytes seen;
    Bytes buf(256);
    while (true) {
      auto n = pair.second->read_some(buf);
      if (!n.ok() || n.value() == 0) {
        break;
      }
      seen.insert(seen.end(), buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(n.value()));
    }
    return std::make_tuple(codes, seen, counters.snapshot());
  };
  const auto first = run_once(42);
  const auto second = run_once(42);
  EXPECT_EQ(std::get<0>(first), std::get<0>(second));
  EXPECT_EQ(std::get<1>(first), std::get<1>(second));
  EXPECT_EQ(std::get<2>(first), std::get<2>(second));
  // The plan above must actually misbehave, or the test proves nothing.
  const FaultCountersSnapshot& counters = std::get<2>(first);
  EXPECT_GT(counters.injected_disconnects + counters.injected_bitflips, 0U);
}

TEST(FaultyStreamTest, DisconnectIsStickyAndPeerSeesEof) {
  FaultPlan plan;
  plan.disconnect_per_write = 1.0;
  FaultCounters counters;
  FaultInjector injector(plan, &counters);
  InprocPair pair = make_inproc_pair();
  auto stream = injector.wrap(std::move(pair.first));
  EXPECT_EQ(stream->write_all(Bytes(10, 1)).code(), StatusCode::kUnavailable);
  EXPECT_EQ(stream->write_all(Bytes(10, 2)).code(), StatusCode::kUnavailable);
  Bytes buf(16);
  auto n = pair.second->read_some(buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0U);  // nothing delivered, clean EOF
  EXPECT_EQ(counters.snapshot().injected_disconnects, 1U);  // sticky, not re-rolled
}

TEST(FaultyStreamTest, BitFlipCorruptsExactlyOneBit) {
  FaultPlan plan;
  plan.bitflip_per_write = 1.0;
  FaultInjector injector(plan, nullptr);
  InprocPair pair = make_inproc_pair();
  auto stream = injector.wrap(std::move(pair.first));
  const Bytes original = pattern_payload(3, 100);
  ASSERT_TRUE(stream->write_all(original).is_ok());
  Bytes delivered(original.size());
  ASSERT_TRUE(read_exact(*pair.second, delivered).is_ok());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    flipped_bits += __builtin_popcount(original[i] ^ delivered[i]);
  }
  EXPECT_EQ(flipped_bits, 1);
}

TEST(FaultyStreamTest, FaultFreePrefixProtectsEarlyBytes) {
  FaultPlan plan;
  plan.disconnect_per_write = 1.0;
  plan.fault_free_prefix_bytes = 1000;
  FaultInjector injector(plan, nullptr);
  InprocPair pair = make_inproc_pair();
  auto stream = injector.wrap(std::move(pair.first));
  EXPECT_TRUE(stream->write_all(Bytes(500, 1)).is_ok());
  EXPECT_TRUE(stream->write_all(Bytes(499, 2)).is_ok());   // still under 1000
  EXPECT_TRUE(stream->write_all(Bytes(200, 3)).is_ok());   // crosses at start
  EXPECT_EQ(stream->write_all(Bytes(1, 4)).code(), StatusCode::kUnavailable);
}

TEST(FaultyStreamTest, MaxFaultsBoundsTheChaos) {
  FaultPlan plan;
  plan.bitflip_per_write = 1.0;
  plan.max_faults = 2;
  FaultCounters counters;
  FaultInjector injector(plan, &counters);
  InprocPair pair = make_inproc_pair();
  auto stream = injector.wrap(std::move(pair.first));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(stream->write_all(Bytes(8, 0)).is_ok());
  }
  EXPECT_EQ(counters.snapshot().injected_bitflips, 2U);
}

TEST(FaultyStreamTest, ThrottleDripsEveryByteIntactAtTheConfiguredRate) {
  FaultPlan plan;
  plan.seed = 7;
  plan.throttle_per_write = 1.0;
  plan.throttle_bytes_per_sec = 1'000'000;  // ~1 us of stall per byte
  FaultCounters counters;
  FaultInjector injector(plan, &counters);
  InprocPair pair = make_inproc_pair();
  auto stream = injector.wrap(std::move(pair.first));

  const Bytes sent = pattern_payload(1, 8192);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(stream->write_all(sent).is_ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  stream->shutdown_write();

  Bytes seen;
  Bytes buf(4096);
  while (true) {
    auto n = pair.second->read_some(buf);
    if (!n.ok() || n.value() == 0) {
      break;
    }
    seen.insert(seen.end(), buf.begin(),
                buf.begin() + static_cast<std::ptrdiff_t>(n.value()));
  }
  // Slow, never lossy or corrupt: the drip delivers every byte in order.
  EXPECT_EQ(seen, sent);
  EXPECT_EQ(counters.snapshot().injected_throttles, 1U);
  // 8 KiB at 1 MB/s is ~8 ms of stalls; sleep_for never returns early.
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            5);
}

TEST(FaultyStreamTest, ThrottleStallBudgetCapsTheDelay) {
  FaultPlan plan;
  plan.seed = 7;
  plan.throttle_per_write = 1.0;
  plan.throttle_bytes_per_sec = 1;   // would be ~17 minutes uncapped...
  plan.throttle_max_micros = 2'000;  // ...but the write-wide budget caps it
  FaultCounters counters;
  FaultInjector injector(plan, &counters);
  InprocPair pair = make_inproc_pair();
  auto stream = injector.wrap(std::move(pair.first));

  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(stream->write_all(pattern_payload(2, 1024)).is_ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            500);
  EXPECT_EQ(counters.snapshot().injected_throttles, 1U);
}

TEST(FaultyListenerTest, AcceptFailureIsTransient) {
  FaultPlan plan;
  plan.accept_failure = 1.0;
  plan.max_faults = 1;
  FaultCounters counters;
  FaultInjector injector(plan, &counters);
  InprocListener inner;
  FaultyListener listener(inner, injector);
  auto client = inner.connect();
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(listener.accept().status().code(), StatusCode::kUnavailable);
  auto accepted = listener.accept();  // budget exhausted: goes through
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(counters.snapshot().injected_accept_failures, 1U);
}

// ------------------------------------------------------------ decoder resync

TEST(DecoderResyncTest, RelocksAfterCorruptMagic) {
  Message first;
  first.sequence = 1;
  first.body = pattern_payload(1, 200);
  Message second;
  second.sequence = 2;
  second.body = pattern_payload(2, 100);

  Bytes wire = encode_message(first);
  wire[0] ^= 0xFF;  // destroy the first message's magic
  const Bytes good = encode_message(second);
  wire.insert(wire.end(), good.begin(), good.end());

  MessageDecoder decoder(MessageDecoder::OnCorruption::kResync);
  decoder.feed(wire);
  auto message = decoder.next();
  ASSERT_TRUE(message.ok()) << message.status().to_string();
  EXPECT_EQ(message.value().sequence, 2U);
  EXPECT_EQ(message.value().body, second.body);
  EXPECT_EQ(decoder.resyncs(), 1U);
  EXPECT_GT(decoder.skipped_bytes(), 0U);
  EXPECT_EQ(decoder.next().status().code(), StatusCode::kUnavailable);
}

TEST(DecoderResyncTest, SkipsMessageWithCorruptBody) {
  Message first;
  first.sequence = 1;
  first.body = pattern_payload(1, 300);
  Message second;
  second.sequence = 2;
  second.body = pattern_payload(2, 50);

  Bytes wire = encode_message(first);
  wire[kMessageHeaderSize + 10] ^= 0x01;  // body checksum will fail
  const Bytes good = encode_message(second);
  wire.insert(wire.end(), good.begin(), good.end());

  MessageDecoder decoder(MessageDecoder::OnCorruption::kResync);
  decoder.feed(wire);
  auto message = decoder.next();
  ASSERT_TRUE(message.ok()) << message.status().to_string();
  EXPECT_EQ(message.value().sequence, 2U);
  EXPECT_GE(decoder.resyncs(), 1U);
}

// ------------------------------------------------------------ frame resync

TEST(FrameResyncTest, GarbagePrefixRecovered) {
  const Bytes payload = pattern_payload(9, 5000);
  const Bytes frame = encode_frame(*codec_by_id(CodecId::kLz4), payload);
  Bytes wire = pattern_payload(1, 37);  // garbage prefix, no frame magic
  wire.insert(wire.end(), frame.begin(), frame.end());

  EXPECT_FALSE(decode_frame_content(wire).ok());
  bool resynced = false;
  auto content = decode_frame_content_resync(wire, &resynced);
  ASSERT_TRUE(content.ok()) << content.status().to_string();
  EXPECT_EQ(content.value(), payload);
  EXPECT_TRUE(resynced);
}

TEST(FrameResyncTest, CleanFrameDoesNotSetResyncFlag) {
  const Bytes payload = pattern_payload(4, 1000);
  const Bytes frame = encode_frame(*codec_by_id(CodecId::kNull), payload);
  bool resynced = false;
  auto content = decode_frame_content_resync(frame, &resynced);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), payload);
  EXPECT_FALSE(resynced);
}

TEST(FrameResyncTest, HopelessGarbageStillFails) {
  const Bytes garbage = pattern_payload(8, 4096);
  bool resynced = false;
  EXPECT_FALSE(decode_frame_content_resync(garbage, &resynced).ok());
  EXPECT_FALSE(resynced);
}

// ------------------------------------------------------------ fault counters

TEST(FaultCountersTest, SnapshotAndTable) {
  FaultCounters counters;
  counters.reconnects.store(3);
  counters.corrupt_frames.store(1);
  const FaultCountersSnapshot snapshot = counters.snapshot();
  EXPECT_EQ(snapshot.reconnects, 3U);
  EXPECT_EQ(snapshot, counters.snapshot());
  const std::string text = snapshot.to_string();
  EXPECT_NE(text.find("reconnects"), std::string::npos);
  const TextTable table = fault_table(snapshot, /*nonzero_only=*/true);
  EXPECT_EQ(table.row_count(), 2U);  // only the two nonzero counters
}

// ------------------------------------------------------------ recovery config

TEST(RecoveryConfigTest, DefaultConfigSerializesWithoutRecoveryLine) {
  NodeConfig config = sender_config(1, 1);
  EXPECT_EQ(config.serialize().find("recovery"), std::string::npos);
}

TEST(RecoveryConfigTest, SerializeParseRoundTrip) {
  NodeConfig config = sender_config(2, 2);
  config.recovery.reconnect = true;
  config.recovery.retry.max_attempts = 3;
  config.recovery.retry.initial_backoff_us = 500;
  config.recovery.retry.max_backoff_us = 9000;
  config.recovery.retry.multiplier = 1.5;
  config.recovery.retry.jitter = 0.25;
  config.recovery.retry.max_elapsed_us = 750000;
  config.recovery.max_consecutive_corrupt = 4;
  config.recovery.degrade_watermark = 6;
  config.recovery.watchdog_ms = 1500;

  auto parsed = NodeConfig::parse(config.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().recovery, config.recovery);
  EXPECT_EQ(parsed.value().serialize(), config.serialize());
}

TEST(RecoveryConfigTest, ValidateRejectsBadKnobs) {
  const MachineTopology topo = host_topology();
  NodeConfig config = sender_config(1, 1);
  config.recovery.degrade_watermark = config.queue_capacity + 1;
  EXPECT_FALSE(config.validate(topo).is_ok());
  config = sender_config(1, 1);
  config.recovery.max_consecutive_corrupt = 0;
  EXPECT_FALSE(config.validate(topo).is_ok());
  config = sender_config(1, 1);
  config.recovery.retry.max_attempts = 0;
  EXPECT_FALSE(config.validate(topo).is_ok());
}

// --------------------------------------------------------------- end to end

struct ChaosRun {
  FaultCountersSnapshot counters;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t> delivered;
  std::uint64_t duplicates = 0;
};

ChaosRun run_chaos_pipeline(const MachineTopology& topo, const FaultPlan& plan,
                            NodeConfig sender_cfg, NodeConfig receiver_cfg,
                            std::uint64_t chunk_count, std::size_t chunk_size) {
  FaultCounters counters;
  // One injector per side (see faulty.h): the dial side's connection indices
  // are then assigned in dial order alone, keeping per-connection fault
  // sequences reproducible even though dials race accepts across threads.
  FaultInjector dial_injector(plan, &counters);
  FaultPlan accept_plan = plan;
  accept_plan.seed = plan.seed ^ 0xACCE97;
  FaultInjector accept_injector(accept_plan, &counters);
  InprocListener inner_listener;
  FaultyListener listener(inner_listener, accept_injector);
  const DialFn dial =
      faulty_dialer([&] { return inner_listener.connect(); }, dial_injector);

  PatternSource source(/*stream_id=*/1, chunk_count, chunk_size);
  VerifySink sink;

  std::thread sender_thread([&] {
    StreamSender sender(topo, std::move(sender_cfg));
    auto stats = sender.run(source, dial, nullptr, &counters);
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  });
  StreamReceiver receiver(topo, std::move(receiver_cfg));
  auto stats = receiver.run(listener, sink, nullptr, &counters);
  sender_thread.join();
  EXPECT_TRUE(stats.ok()) << stats.status().to_string();

  ChaosRun run;
  run.counters = counters.snapshot();
  run.delivered = sink.hashes();
  run.duplicates = sink.duplicates();
  return run;
}

// Disconnects and torn writes (truncated, bit-corrupted prefixes) against a
// reconnecting pipeline: every chunk must arrive exactly once, bit-exact.
// Torn writes corrupt delivered bytes, so this also exercises the receiver's
// resync path; because the sender re-sends the reported-failed message, no
// chunk is ever silently lost.
TEST(ChaosPipelineTest, AllChunksDeliveredThroughDisconnectsAndTornWrites) {
  const MachineTopology topo = host_topology();
  FaultPlan plan;
  plan.seed = chaos_seed(2026);
  plan.disconnect_per_write = 0.04;
  plan.torn_write_per_write = 0.04;
  plan.fault_free_prefix_bytes = 4096;  // every connection makes progress
  plan.max_faults = 40;

  NodeConfig sender_cfg = sender_config(1, 2);
  sender_cfg.recovery.reconnect = true;
  sender_cfg.recovery.retry = fast_retry();
  NodeConfig receiver_cfg = receiver_config(2, 2);
  receiver_cfg.recovery.reconnect = true;

  const std::uint64_t kChunks = 60;
  const std::size_t kChunkSize = 4096;
  const ChaosRun run =
      run_chaos_pipeline(topo, plan, sender_cfg, receiver_cfg, kChunks, kChunkSize);

  // Chaos actually happened, and the pipeline healed from it.
  EXPECT_GT(run.counters.injected_disconnects + run.counters.injected_torn_writes,
            0U);
  EXPECT_GT(run.counters.reconnects, 0U);

  // Every chunk arrived exactly once with intact content.
  EXPECT_EQ(run.duplicates, 0U);
  ASSERT_EQ(run.delivered.size(), kChunks);
  for (std::uint64_t seq = 0; seq < kChunks; ++seq) {
    const auto it = run.delivered.find({1, seq});
    ASSERT_NE(it, run.delivered.end()) << "chunk " << seq << " lost";
    EXPECT_EQ(it->second, xxhash32(pattern_payload(seq, kChunkSize)))
        << "chunk " << seq << " corrupted";
  }
}

// Silent single-bit flips pass the transport (the write "succeeds") and are
// caught only by the NSM1/NSF1 checksums: the hardened receiver drops the
// corrupted messages, counts them, and keeps the stream alive. Delivered
// chunks are always bit-exact; at most one chunk per injected flip is lost.
TEST(ChaosPipelineTest, SilentBitFlipsAreCountedNotFatal) {
  const MachineTopology topo = host_topology();
  FaultPlan plan;
  plan.seed = chaos_seed(11);
  plan.bitflip_per_write = 0.2;
  plan.max_faults = 2;
  plan.fault_free_prefix_bytes = 512;  // never flip a connection's first frames

  NodeConfig sender_cfg = sender_config(1, 1);
  sender_cfg.recovery.reconnect = true;
  sender_cfg.recovery.retry = fast_retry();
  NodeConfig receiver_cfg = receiver_config(1, 1);
  receiver_cfg.recovery.reconnect = true;

  const std::uint64_t kChunks = 50;
  const std::size_t kChunkSize = 2048;
  const ChaosRun run =
      run_chaos_pipeline(topo, plan, sender_cfg, receiver_cfg, kChunks, kChunkSize);

  EXPECT_GE(run.counters.injected_bitflips, 1U);
  EXPECT_LE(run.counters.injected_bitflips, 2U);
  EXPECT_EQ(run.duplicates, 0U);
  // No silent loss: every missing chunk is accounted for by a counted
  // corruption (decoder resync or dropped frame).
  const std::uint64_t lost = kChunks - run.delivered.size();
  EXPECT_LE(lost, run.counters.injected_bitflips);
  EXPECT_LE(lost, run.counters.message_resyncs + run.counters.dropped_frames);
  // Whatever did arrive (under its claimed identity) is bit-exact.
  for (const auto& [key, hash] : run.delivered) {
    if (key.first == 1 && key.second < kChunks) {
      EXPECT_EQ(hash, xxhash32(pattern_payload(key.second, kChunkSize)));
    }
  }
}

// Satellite: same FaultPlan seed => identical fault counters, run to run.
// Single-threaded stages keep the connection establishment order (and so the
// per-connection fault sequences) deterministic.
TEST(ChaosPipelineTest, SameSeedProducesIdenticalCounters) {
  const MachineTopology topo = host_topology();
  FaultPlan plan;
  plan.seed = chaos_seed(31337);
  plan.disconnect_per_write = 0.05;
  plan.torn_write_per_write = 0.05;
  plan.fault_free_prefix_bytes = 2048;
  plan.max_faults = 10;

  const auto run_once = [&] {
    NodeConfig sender_cfg = sender_config(1, 1);
    sender_cfg.recovery.reconnect = true;
    sender_cfg.recovery.retry = fast_retry();
    NodeConfig receiver_cfg = receiver_config(1, 1);
    receiver_cfg.recovery.reconnect = true;
    return run_chaos_pipeline(topo, plan, sender_cfg, receiver_cfg, 40, 2048);
  };
  const ChaosRun first = run_once();
  const ChaosRun second = run_once();
  EXPECT_EQ(first.counters, second.counters) << "first:\n"
                                             << first.counters.to_string()
                                             << "second:\n"
                                             << second.counters.to_string();
  EXPECT_EQ(first.delivered, second.delivered);
  EXPECT_GT(first.counters.injected_disconnects +
                first.counters.injected_torn_writes,
            0U);
}

// ------------------------------------------------------------- degradation

// A stalled send stage backs the compress->send queue up past the watermark;
// compress workers must switch to the passthrough codec (shipping bigger but
// cheaper frames) and every chunk must still arrive intact.
TEST(DegradationTest, BacklogSwitchesToPassthroughCodec) {
  const MachineTopology topo = host_topology();
  FaultPlan plan;
  plan.seed = 5;
  plan.stall_per_write = 1.0;
  plan.stall_micros = 2000;

  NodeConfig sender_cfg = sender_config(2, 1);
  sender_cfg.queue_capacity = 4;
  sender_cfg.recovery.degrade_watermark = 4;
  NodeConfig receiver_cfg = receiver_config(1, 1);

  const std::uint64_t kChunks = 40;
  const std::size_t kChunkSize = 8192;
  const ChaosRun run =
      run_chaos_pipeline(topo, plan, sender_cfg, receiver_cfg, kChunks, kChunkSize);

  EXPECT_GT(run.counters.injected_stalls, 0U);
  EXPECT_GT(run.counters.degraded_chunks, 0U);
  EXPECT_LT(run.counters.degraded_chunks, kChunks);  // hysteresis recovered
  EXPECT_EQ(run.delivered.size(), kChunks);
  EXPECT_EQ(run.duplicates, 0U);
}

// --------------------------------------------------------------- watchdog

TEST(WatchdogTest, ReceiverTripsOnSilentPeer) {
  const MachineTopology topo = host_topology();
  NodeConfig config = receiver_config(1, 1);
  config.recovery.watchdog_ms = 200;

  InprocListener listener;
  auto client = listener.connect();  // connects, then never sends a byte
  ASSERT_TRUE(client.ok());

  FaultCounters counters;
  CountingSink sink;
  StreamReceiver receiver(topo, config);
  auto stats = receiver.run(listener, sink, nullptr, &counters);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(stats.status().message().find("watchdog"), std::string::npos);
  EXPECT_EQ(counters.snapshot().watchdog_trips, 1U);
}

TEST(WatchdogTest, SenderTripsWhenPeerNeverReads) {
  const MachineTopology topo = host_topology();
  NodeConfig config = sender_config(1, 1);
  config.recovery.watchdog_ms = 200;

  InprocListener listener(/*buffer_capacity=*/1024);  // tiny peer window
  auto accepted = Result<std::unique_ptr<ByteStream>>(internal_error("unset"));
  std::thread acceptor([&] { accepted = listener.accept(); });

  FaultCounters counters;
  PatternSource source(1, 10, 8192);  // 8 KiB chunks will jam a 1 KiB window
  StreamSender sender(topo, config);
  auto stats =
      sender.run(source, [&] { return listener.connect(); }, nullptr, &counters);
  acceptor.join();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(counters.snapshot().watchdog_trips, 1U);
}

TEST(WatchdogTest, HealthyPipelineNeverTrips) {
  const MachineTopology topo = host_topology();
  FaultPlan plan;  // no faults at all

  NodeConfig sender_cfg = sender_config(1, 1);
  sender_cfg.recovery.watchdog_ms = 5000;
  NodeConfig receiver_cfg = receiver_config(1, 1);
  receiver_cfg.recovery.watchdog_ms = 5000;

  const ChaosRun run =
      run_chaos_pipeline(topo, plan, sender_cfg, receiver_cfg, 10, 1024);
  EXPECT_EQ(run.counters.watchdog_trips, 0U);
  EXPECT_EQ(run.delivered.size(), 10U);
}

TEST(StreamRegistryTest, CancelAllLatchesAndCancelsLateAdds) {
  InprocPair pair = make_inproc_pair();
  StreamRegistry registry;
  registry.add(pair.first.get());
  EXPECT_FALSE(registry.cancelled());
  registry.cancel_all();
  EXPECT_TRUE(registry.cancelled());
  Bytes buf(4);
  EXPECT_FALSE(pair.first->read_some(buf).ok());  // canceled stream
  // A stream registered after the trip is canceled immediately.
  InprocPair late = make_inproc_pair();
  registry.add(late.first.get());
  EXPECT_FALSE(late.first->read_some(buf).ok());
  registry.remove(pair.first.get());
  registry.remove(late.first.get());
}

}  // namespace
}  // namespace numastream
