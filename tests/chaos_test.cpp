// Chaos subsystem tests (DESIGN.md §16): the deterministic network-chaos
// mesh, the protocol invariant catalog, the two-gateway chaos harness, and
// the random-walk explorer with shrinking repro bundles.
//
// The acceptance spine lives here: 200 randomized episodes must pass every
// probe on the real protocol stack, and the deliberately planted fencing
// bug must be found, shrunk to a handful of events, and replayed
// bit-identically from its serialized bundle.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/explorer.h"
#include "check/harness.h"
#include "check/invariant.h"
#include "check/schedule.h"
#include "cluster/failover.h"
#include "core/config.h"
#include "core/journal.h"
#include "metrics/chaos_counters.h"
#include "msg/chaosnet.h"
#include "msg/message.h"
#include "topo/topology.h"

namespace numastream {
namespace {

using check::ChaosEvent;
using check::ChaosEventKind;
using check::ChaosExplorer;
using check::ChaosExplorerOptions;
using check::ChaosHarness;
using check::ChaosHarnessOptions;
using check::ChaosSchedule;
using check::InvariantMonitor;
using check::InvariantProbe;
using check::InvariantViolation;
using check::ReproBundle;

// ---------------------------------------------------------------- config

constexpr const char* kBaseConfig =
    "node x\n"
    "role receiver\n"
    "codec lz4\n"
    "task receive count=1 exec=0 mem=0\n"
    "task decompress count=1 exec=0 mem=0\n";

NodeConfig parse_or_die(const std::string& text) {
  auto parsed = NodeConfig::parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().to_string();
  return parsed.value_or(NodeConfig{});
}

TEST(ChaosConfigTest, DefaultOffAndAbsentFromTheWire) {
  const NodeConfig config = parse_or_die(kBaseConfig);
  EXPECT_TRUE(config.chaos.is_default());
  EXPECT_FALSE(config.chaos.enabled());
  // Byte-identity: a config that never mentioned chaos serializes without
  // a chaos directive at all.
  EXPECT_EQ(config.serialize().find("chaos"), std::string::npos);
}

TEST(ChaosConfigTest, RoundTripIsAFixedPoint) {
  const NodeConfig config = parse_or_die(
      std::string(kBaseConfig) +
      "chaos seed=42 episodes=500 events=9 probes=off\n");
  EXPECT_TRUE(config.chaos.enabled());
  EXPECT_EQ(config.chaos.seed, 42U);
  EXPECT_EQ(config.chaos.episodes, 500U);
  EXPECT_EQ(config.chaos.events, 9U);
  EXPECT_FALSE(config.chaos.probes);
  const std::string text = config.serialize();
  EXPECT_NE(text.find("chaos seed=42 episodes=500 events=9 probes=off"),
            std::string::npos);
  EXPECT_EQ(parse_or_die(text).serialize(), text);
}

TEST(ChaosConfigTest, PartialDirectiveKeepsDefaults) {
  const NodeConfig config =
      parse_or_die(std::string(kBaseConfig) + "chaos seed=7\n");
  EXPECT_EQ(config.chaos.seed, 7U);
  EXPECT_EQ(config.chaos.episodes, 200U);
  EXPECT_EQ(config.chaos.events, 12U);
  EXPECT_TRUE(config.chaos.probes);
}

TEST(ChaosConfigTest, DuplicateDirectiveRejected) {
  const auto status = NodeConfig::parse(std::string(kBaseConfig) +
                                        "chaos seed=1\nchaos seed=2\n")
                          .status();
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("duplicate"), std::string::npos);
}

TEST(ChaosConfigTest, ValidationBoundaries) {
  const MachineTopology topo = lynxdtn_topology();
  NodeConfig config = parse_or_die(kBaseConfig);
  ASSERT_TRUE(config.validate(topo).is_ok());

  config.chaos = ChaosConfig{};
  config.chaos.seed = 1;
  EXPECT_TRUE(config.validate(topo).is_ok());

  config.chaos.episodes = 0;
  EXPECT_FALSE(config.validate(topo).is_ok());

  config.chaos = ChaosConfig{};
  config.chaos.seed = 1;
  config.chaos.events = 0;
  EXPECT_FALSE(config.validate(topo).is_ok());

  // seed=0 with any other knob moved: chaos claims to be configured but
  // cannot derive decisions.
  config.chaos = ChaosConfig{};
  config.chaos.episodes = 10;
  EXPECT_FALSE(config.validate(topo).is_ok());

  EXPECT_FALSE(
      NodeConfig::parse(std::string(kBaseConfig) + "chaos probes=maybe\n")
          .ok());
  EXPECT_FALSE(
      NodeConfig::parse(std::string(kBaseConfig) + "chaos seed=banana\n")
          .ok());
}

TEST(ConfigDuplicateDirectiveTest, EverySingletonDirectiveIsChecked) {
  const struct {
    const char* name;
    const char* extra;
  } kCases[] = {
      // kBaseConfig already carries one of each, so a single extra line is
      // the duplicate.
      {"node", "node y\n"},
      {"role", "role sender\n"},
      {"codec", "codec zstd\n"},
  };
  for (const auto& test_case : kCases) {
    const auto status =
        NodeConfig::parse(std::string(kBaseConfig) + test_case.extra).status();
    ASSERT_FALSE(status.is_ok()) << test_case.name;
    EXPECT_NE(status.message().find("duplicate"), std::string::npos)
        << test_case.name << ": " << status.message();
    EXPECT_NE(status.message().find(test_case.name), std::string::npos)
        << status.message();
  }
  // chunk_bytes/queue_capacity are not in kBaseConfig; explicit pairs.
  EXPECT_FALSE(NodeConfig::parse(std::string(kBaseConfig) +
                                 "chunk_bytes 64\nchunk_bytes 64\n")
                   .ok());
  EXPECT_FALSE(NodeConfig::parse(std::string(kBaseConfig) +
                                 "queue_capacity 4\nqueue_capacity 4\n")
                   .ok());
}

// --------------------------------------------------------------- chaosnet

Message data_message(std::uint64_t sequence) {
  Message message;
  message.stream_id = 3;
  message.sequence = sequence;
  message.body = Bytes{std::uint8_t(sequence & 0xFF), 0xAB, 0xCD};
  return message;
}

class CaptureStream final : public ByteStream {
 public:
  Status write_all(ByteSpan data) override {
    writes.emplace_back(data.begin(), data.end());
    return Status::ok();
  }
  Result<std::size_t> read_some(MutableByteSpan) override {
    return unavailable_error("capture: nothing to read");
  }
  void shutdown_write() override { ++shutdowns; }

  std::vector<Bytes> writes;
  int shutdowns = 0;
};

TEST(ChaosNetTest, DirectedCutsAndHealing) {
  ChaosNetMesh mesh(3, /*seed=*/9);
  EXPECT_FALSE(mesh.cut(0, 1));

  mesh.partition_one_way(0, 1);
  EXPECT_TRUE(mesh.cut(0, 1));
  EXPECT_FALSE(mesh.cut(1, 0));  // asymmetry: the reverse path still flows

  mesh.partition(1, 2);
  EXPECT_TRUE(mesh.cut(1, 2));
  EXPECT_TRUE(mesh.cut(2, 1));

  mesh.heal(0, 1);
  EXPECT_FALSE(mesh.cut(0, 1));
  mesh.heal_all();
  EXPECT_FALSE(mesh.cut(1, 2));
  EXPECT_FALSE(mesh.cut(2, 1));
}

TEST(ChaosNetTest, RollsAreDeterministicAndPerLink) {
  ChaosLinkPlan plan;
  plan.duplicate_chance = 0.5;
  plan.reorder_chance = 0.25;
  ChaosNetMesh a(2, 1234, plan);
  ChaosNetMesh b(2, 1234, plan);
  for (int i = 0; i < 64; ++i) {
    const ChaosFrameFate fa = a.roll(0, 1);
    const ChaosFrameFate fb = b.roll(0, 1);
    EXPECT_EQ(fa.duplicated, fb.duplicated) << i;
    EXPECT_EQ(fa.reordered, fb.reordered) << i;
  }
  // Traffic on one link must not perturb another link's decision stream:
  // b rolled 64 frames on 0->1 already, yet its 1->0 stream matches a
  // fresh mesh's 1->0 stream.
  ChaosNetMesh c(2, 1234, plan);
  for (int i = 0; i < 16; ++i) {
    const ChaosFrameFate fb = b.roll(1, 0);
    const ChaosFrameFate fc = c.roll(1, 0);
    EXPECT_EQ(fb.duplicated, fc.duplicated) << i;
    EXPECT_EQ(fb.reordered, fc.reordered) << i;
  }
}

TEST(ChaosNetTest, DelaySpendsVirtualTimeNotWallTime) {
  ChaosLinkPlan plan;
  plan.delay_chance = 1.0;
  plan.delay_micros = 250;
  ChaosCounters counters;
  ChaosNetMesh mesh(2, 5, plan, nullptr, &counters);
  const ChaosFrameFate fate = mesh.roll(0, 1);
  EXPECT_TRUE(fate.delayed);
  EXPECT_GE(mesh.clock().now_micros(), 250U);
  EXPECT_EQ(counters.frames_delayed.load(), 1U);
  EXPECT_EQ(counters.virtual_micros.load(), mesh.clock().now_micros());
}

TEST(ChaosNetTest, StreamReassemblesSplitFramesAndDuplicates) {
  ChaosLinkPlan plan;
  plan.duplicate_chance = 1.0;
  ChaosNetMesh mesh(2, 77, plan);
  auto capture = std::make_unique<CaptureStream>();
  CaptureStream* inner = capture.get();
  ChaosByteStream stream(std::move(capture), mesh, 0, 1);

  const Bytes frame = encode_message(data_message(1));
  // Deliver the frame in two partial writes: the stream must buffer until
  // the frame completes, then emit it whole — twice (duplicate_chance=1).
  ASSERT_TRUE(stream.write_all(ByteSpan(frame.data(), 10)).is_ok());
  EXPECT_TRUE(inner->writes.empty());
  ASSERT_TRUE(
      stream.write_all(ByteSpan(frame.data() + 10, frame.size() - 10))
          .is_ok());
  ASSERT_EQ(inner->writes.size(), 2U);
  EXPECT_EQ(inner->writes[0], frame);
  EXPECT_EQ(inner->writes[1], frame);
}

TEST(ChaosNetTest, ReorderSwapsAdjacentFrames) {
  ChaosLinkPlan plan;
  plan.reorder_chance = 1.0;
  ChaosNetMesh mesh(2, 77, plan);
  auto capture = std::make_unique<CaptureStream>();
  CaptureStream* inner = capture.get();
  ChaosByteStream stream(std::move(capture), mesh, 0, 1);

  const Bytes first = encode_message(data_message(1));
  const Bytes second = encode_message(data_message(2));
  ASSERT_TRUE(stream.write_all(first).is_ok());
  EXPECT_TRUE(inner->writes.empty());  // parked for the swap
  ASSERT_TRUE(stream.write_all(second).is_ok());
  ASSERT_EQ(inner->writes.size(), 2U);
  EXPECT_EQ(inner->writes[0], second);
  EXPECT_EQ(inner->writes[1], first);
}

TEST(ChaosNetTest, ShutdownFlushesHeldFrame) {
  ChaosLinkPlan plan;
  plan.reorder_chance = 1.0;
  ChaosNetMesh mesh(2, 77, plan);
  auto capture = std::make_unique<CaptureStream>();
  CaptureStream* inner = capture.get();
  ChaosByteStream stream(std::move(capture), mesh, 0, 1);

  const Bytes frame = encode_message(data_message(9));
  ASSERT_TRUE(stream.write_all(frame).is_ok());
  EXPECT_TRUE(inner->writes.empty());
  stream.shutdown_write();
  ASSERT_EQ(inner->writes.size(), 1U);
  EXPECT_EQ(inner->writes[0], frame);
  EXPECT_EQ(inner->shutdowns, 1);
}

TEST(ChaosNetTest, PartitionedLinkRefusesWrites) {
  ChaosCounters counters;
  ChaosNetMesh mesh(2, 1, {}, nullptr, &counters);
  auto capture = std::make_unique<CaptureStream>();
  CaptureStream* inner = capture.get();
  ChaosByteStream stream(std::move(capture), mesh, 0, 1);

  mesh.partition_one_way(0, 1);
  const Bytes frame = encode_message(data_message(1));
  const Status status = stream.write_all(frame);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(inner->writes.empty());
  EXPECT_EQ(counters.frames_dropped.load(), 1U);

  mesh.heal_all();
  EXPECT_TRUE(stream.write_all(frame).is_ok());
  ASSERT_EQ(inner->writes.size(), 1U);
}

TEST(ChaosNetTest, NonNsm1BytesPassThroughUnframed) {
  ChaosLinkPlan plan;
  plan.duplicate_chance = 1.0;  // must NOT duplicate unframed bytes
  ChaosNetMesh mesh(2, 1, plan);
  auto capture = std::make_unique<CaptureStream>();
  CaptureStream* inner = capture.get();
  ChaosByteStream stream(std::move(capture), mesh, 0, 1);

  Bytes garbage(64, std::uint8_t{0x5A});
  ASSERT_TRUE(stream.write_all(garbage).is_ok());
  ASSERT_EQ(inner->writes.size(), 1U);
  EXPECT_EQ(inner->writes[0], garbage);
}

TEST(ChaosNetTest, PlanValidation) {
  ChaosLinkPlan plan;
  EXPECT_TRUE(plan.validate().is_ok());
  plan.delay_chance = 1.5;
  EXPECT_FALSE(plan.validate().is_ok());
  plan.delay_chance = 0.5;
  plan.delay_micros = 0;  // delay with no duration is meaningless
  EXPECT_FALSE(plan.validate().is_ok());
  plan.delay_micros = 10;
  EXPECT_TRUE(plan.validate().is_ok());
}

// -------------------------------------------------------------- invariant

Bytes journal_with_deliveries(std::uint32_t stream_id,
                              std::uint64_t sequences) {
  Bytes journal;
  for (std::uint64_t sequence = 0; sequence < sequences; ++sequence) {
    JournalRecord record;
    record.type = JournalRecordType::kDelivered;
    record.stream_id = stream_id;
    record.sequence = sequence;
    record.offset = sequence;
    const Bytes encoded = encode_journal_record(record);
    journal.insert(journal.end(), encoded.begin(), encoded.end());
  }
  return journal;
}

TEST(InvariantMonitorTest, CleanRunStaysClean) {
  InvariantMonitor monitor;
  monitor.on_epoch(7, 1);
  monitor.on_delivery(0, 1, 0, 0);
  monitor.on_delivery(0, 1, 0, 1);
  monitor.on_epoch(7, 2);
  monitor.on_drain(0, 0);
  EXPECT_TRUE(monitor.clean());
  EXPECT_EQ(monitor.deliveries(), 2U);
  EXPECT_EQ(monitor.acked_frontier(0), 2U);
}

TEST(InvariantMonitorTest, DuplicateDeliveryTripsExactlyOnce) {
  ChaosCounters counters;
  InvariantMonitor monitor(&counters);
  monitor.on_delivery(0, 1, 5, 0);
  monitor.on_delivery(1, 2, 5, 0);  // different gateway, same (stream, seq)
  ASSERT_FALSE(monitor.clean());
  EXPECT_EQ(monitor.violations()[0].probe, InvariantProbe::kExactlyOnce);
  EXPECT_EQ(monitor.violations()[0].stream_id, 5U);
  EXPECT_EQ(counters.violations_found.load(), 1U);
}

TEST(InvariantMonitorTest, TwoPrimariesAtOneEpochCaught) {
  InvariantMonitor monitor;
  monitor.on_delivery(0, 4, 1, 0);
  monitor.on_delivery(1, 4, 1, 1);  // distinct seq, same epoch, other gateway
  ASSERT_FALSE(monitor.clean());
  EXPECT_EQ(monitor.violations()[0].probe, InvariantProbe::kSinglePrimary);
}

TEST(InvariantMonitorTest, EpochRollbackCaught) {
  InvariantMonitor monitor;
  monitor.on_epoch(7, 3);
  monitor.on_epoch(7, 4);
  EXPECT_TRUE(monitor.clean());
  monitor.on_epoch(7, 2);
  ASSERT_FALSE(monitor.clean());
  EXPECT_EQ(monitor.violations()[0].probe, InvariantProbe::kEpochMonotone);
}

TEST(InvariantMonitorTest, PromoteRequiresSuperset) {
  InvariantMonitor monitor;
  for (std::uint64_t sequence = 0; sequence < 3; ++sequence) {
    monitor.on_delivery(0, 1, 2, sequence);
  }
  // A standby journal holding all three acked records: clean.
  monitor.on_promote(journal_with_deliveries(2, 3));
  EXPECT_TRUE(monitor.clean());
  // One holding only the first: the promote would lose acked data.
  monitor.on_promote(journal_with_deliveries(2, 1));
  ASSERT_FALSE(monitor.clean());
  EXPECT_EQ(monitor.violations()[0].probe, InvariantProbe::kStandbySuperset);
  EXPECT_EQ(monitor.violations()[0].sequence, 1U);  // first missing seq
}

TEST(InvariantMonitorTest, WatermarkBelowFrontierIsAHole) {
  InvariantMonitor monitor;
  for (std::uint64_t sequence = 0; sequence < 5; ++sequence) {
    monitor.on_delivery(0, 1, 9, sequence);
  }
  monitor.on_failover_watermark(9, 5);  // exactly the frontier: clean
  EXPECT_TRUE(monitor.clean());
  monitor.on_failover_watermark(9, 3);
  ASSERT_FALSE(monitor.clean());
  EXPECT_EQ(monitor.violations()[0].probe, InvariantProbe::kNoHoles);
}

TEST(InvariantMonitorTest, UnsettledLedgersCaughtAtDrain) {
  InvariantMonitor monitor;
  monitor.on_drain(4096, 0);
  monitor.on_drain(0, -2);
  const auto violations = monitor.violations();
  ASSERT_EQ(violations.size(), 2U);
  EXPECT_EQ(violations[0].probe, InvariantProbe::kLedgerSettle);
  EXPECT_EQ(violations[1].probe, InvariantProbe::kLedgerSettle);
}

TEST(InvariantMonitorTest, ProbeNamesRoundTrip) {
  for (const InvariantProbe probe :
       {InvariantProbe::kExactlyOnce, InvariantProbe::kEpochMonotone,
        InvariantProbe::kSinglePrimary, InvariantProbe::kStandbySuperset,
        InvariantProbe::kLedgerSettle, InvariantProbe::kNoHoles}) {
    auto parsed = check::invariant_probe_from_string(check::to_string(probe));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), probe);
  }
  EXPECT_FALSE(check::invariant_probe_from_string("telepathy").ok());
}

class CollectSink final : public ChunkSink {
 public:
  void deliver(Chunk chunk) override { chunks.push_back(std::move(chunk)); }
  std::vector<Chunk> chunks;
};

TEST(ProbeSinkTest, ReportsAndForwards) {
  InvariantMonitor monitor;
  CollectSink inner;
  check::ProbeSink sink(inner, monitor, /*gateway=*/0, /*epoch=*/1);

  Chunk chunk;
  chunk.stream_id = 4;
  chunk.sequence = 0;
  chunk.payload = Bytes{1, 2, 3};
  sink.deliver(chunk);
  EXPECT_TRUE(monitor.clean());
  ASSERT_EQ(inner.chunks.size(), 1U);
  EXPECT_EQ(inner.chunks[0].payload, (Bytes{1, 2, 3}));

  sink.deliver(chunk);  // same (stream, seq) again
  EXPECT_FALSE(monitor.clean());
  EXPECT_EQ(inner.chunks.size(), 2U);  // forwarded regardless: passive probe
}

// ---------------------------------------------------------------- schedule

TEST(ChaosScheduleTest, SerializationRoundTrips) {
  Rng rng(99);
  const ChaosSchedule schedule = check::random_schedule(rng, 32, 3);
  ASSERT_EQ(schedule.size(), 32U);
  const std::string text = check::serialize_schedule(schedule);
  auto parsed = check::parse_schedule(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().size(), schedule.size());
  EXPECT_EQ(check::serialize_schedule(parsed.value()), text);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(parsed.value()[i], schedule[i]) << i;
  }
}

TEST(ChaosScheduleTest, MalformedLinesRejected) {
  EXPECT_FALSE(check::parse_schedule("event teleport a=0 b=0 n=0\n").ok());
  EXPECT_FALSE(check::parse_schedule("event deliver a=0 b=0\n").ok());
  EXPECT_FALSE(check::parse_schedule("deliver a=0 b=0 n=1\n").ok());
  EXPECT_FALSE(check::parse_schedule("event deliver a=zap b=0 n=1\n").ok());
  EXPECT_TRUE(check::parse_schedule("").ok());
}

// ----------------------------------------------------------------- harness

ChaosEvent deliver_event(std::uint32_t stream_id, std::uint64_t count) {
  ChaosEvent event;
  event.kind = ChaosEventKind::kDeliver;
  event.a = stream_id;
  event.n = count;
  return event;
}

ChaosEvent plain_event(ChaosEventKind kind, std::uint32_t a = 0,
                       std::uint32_t b = 0, std::uint64_t n = 0) {
  ChaosEvent event;
  event.kind = kind;
  event.a = a;
  event.b = b;
  event.n = n;
  return event;
}

TEST(ChaosHarnessTest, OptionsRoundTrip) {
  ChaosHarnessOptions options;
  options.seed = 123456789;
  options.streams = 3;
  options.plant_fencing_bug = true;
  const std::string line = check::serialize_options(options);
  auto parsed = check::parse_options(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value(), options);
  EXPECT_EQ(check::serialize_options(parsed.value()), line);

  EXPECT_FALSE(check::parse_options("options seed=1").ok());  // missing keys
  EXPECT_FALSE(check::parse_options("optoins seed=1 streams=1 "
                                    "plant_fencing_bug=off")
                   .ok());
}

TEST(ChaosHarnessTest, CleanDeliveryCommits) {
  InvariantMonitor monitor;
  ChaosHarness harness({}, monitor);
  harness.run({deliver_event(0, 3), deliver_event(1, 2),
               plain_event(ChaosEventKind::kDrain)});
  EXPECT_TRUE(monitor.clean()) << monitor.violations()[0].to_string();
  EXPECT_EQ(harness.committed(0), 3U);
  EXPECT_EQ(harness.committed(1), 2U);
  EXPECT_EQ(harness.acting_owner(), 0);
}

TEST(ChaosHarnessTest, FailoverPromotesStandbyAndFencesTheOldOwner) {
  InvariantMonitor monitor;
  ChaosHarness harness({}, monitor);
  harness.run({deliver_event(0, 2), plain_event(ChaosEventKind::kFailover),
               deliver_event(0, 2)});
  EXPECT_TRUE(monitor.clean()) << monitor.violations()[0].to_string();
  EXPECT_EQ(harness.committed(0), 4U);
  EXPECT_EQ(harness.acting_owner(), 1);
  EXPECT_TRUE(harness.fenced(0));  // learned its fate on the first re-ship
  EXPECT_FALSE(harness.believes_owner(0));
}

TEST(ChaosHarnessTest, PlantedFencingBugSplitBrains) {
  ChaosHarnessOptions options;
  options.plant_fencing_bug = true;
  InvariantMonitor monitor;
  ChaosHarness harness(options, monitor);
  // The 2-event kill shot: promote the standby, then deliver — the stale
  // primary ignores its fence verdict and both sides commit sequence 0.
  harness.run({plain_event(ChaosEventKind::kFailover), deliver_event(0, 1)});
  ASSERT_FALSE(monitor.clean());
  EXPECT_EQ(monitor.violations()[0].probe, InvariantProbe::kExactlyOnce);

  // The identical schedule on an unplanted harness is clean: the fence
  // holds and exactly one side commits.
  InvariantMonitor clean_monitor;
  ChaosHarness clean_harness({}, clean_monitor);
  clean_harness.run(
      {plain_event(ChaosEventKind::kFailover), deliver_event(0, 1)});
  EXPECT_TRUE(clean_monitor.clean());
}

TEST(ChaosHarnessTest, CrashRestartRecoversFromTheJournal) {
  InvariantMonitor monitor;
  ChaosHarness harness({}, monitor);
  harness.run({deliver_event(0, 3), plain_event(ChaosEventKind::kCrash, 0),
               plain_event(ChaosEventKind::kFailover),
               deliver_event(0, 2),  // blocked: buddy (g0) is dead
               plain_event(ChaosEventKind::kRestart, 0),
               deliver_event(0, 2)});
  EXPECT_TRUE(monitor.clean()) << monitor.violations()[0].to_string();
  EXPECT_EQ(harness.committed(0), 5U);
  EXPECT_EQ(harness.acting_owner(), 1);
}

TEST(ChaosHarnessTest, OneWayAckLossNeverViolatesSafety) {
  InvariantMonitor monitor;
  ChaosHarness harness({}, monitor);
  // Cut only the ack path (g1 -> g0): the standby keeps applying, the
  // primary keeps failing its flush — blocked, never wrong.
  harness.run({deliver_event(0, 2),
               plain_event(ChaosEventKind::kPartitionOneWay, 1, 0),
               deliver_event(0, 2)});
  EXPECT_EQ(harness.committed(0), 2U);  // nothing acked past the cut
  harness.run({plain_event(ChaosEventKind::kHeal),
               plain_event(ChaosEventKind::kFailover), deliver_event(0, 1)});
  EXPECT_TRUE(monitor.clean()) << monitor.violations()[0].to_string();
  EXPECT_EQ(harness.acting_owner(), 1);
}

TEST(ChaosHarnessTest, PlannedHandoffTransfersOwnership) {
  InvariantMonitor monitor;
  ChaosHarness harness({}, monitor);
  harness.run({deliver_event(0, 2), plain_event(ChaosEventKind::kHandoff, 0),
               deliver_event(0, 2)});
  EXPECT_TRUE(monitor.clean()) << monitor.violations()[0].to_string();
  EXPECT_EQ(harness.committed(0), 4U);
  EXPECT_EQ(harness.acting_owner(), 1);
  EXPECT_TRUE(harness.fenced(0));
}

TEST(ChaosHarnessTest, RotScrubAndFailoverCompose) {
  InvariantMonitor monitor;
  ChaosHarness harness({}, monitor);
  harness.run({deliver_event(0, 4), plain_event(ChaosEventKind::kRot, 0, 0, 2),
               plain_event(ChaosEventKind::kScrub),
               plain_event(ChaosEventKind::kFailover), deliver_event(0, 1),
               plain_event(ChaosEventKind::kDrain)});
  EXPECT_TRUE(monitor.clean()) << monitor.violations()[0].to_string();
  EXPECT_EQ(harness.committed(0), 5U);
}

TEST(ChaosHarnessTest, OverloadSettlesItsLedgers) {
  InvariantMonitor monitor;
  ChaosHarness harness({}, monitor);
  harness.run({plain_event(ChaosEventKind::kOverload, 0, 0, 4),
               plain_event(ChaosEventKind::kDrain)});
  EXPECT_TRUE(monitor.clean()) << monitor.violations()[0].to_string();
  EXPECT_EQ(harness.committed(0), 4U);
}

// Satellite 4: asymmetric replication partitions. A one-way cut must trip
// the failure detector on exactly one side, and the subsequent takeover
// must never leave two unfenced primaries committing.
TEST(AsymmetricPartitionTest, OneWayLossTripsExactlyOneDetector) {
  ClusterConfig config;
  config.gateways = 2;
  config.self = 0;
  ChaosNetMesh mesh(2, 42);
  cluster::PeerFailureDetector detector(config);
  // watch[g] = gateway g's view of its peer (1 - g).
  const int watch[2] = {detector.track("gateway-1"), detector.track("gateway-0")};
  for (int window = 0; window < 4; ++window) {
    detector.observe(watch[0], 1.0);
    detector.observe(watch[1], 1.0);
  }

  // Heartbeats flow 1 -> 0 but not 0 -> 1: gateway 1 hears silence from
  // its peer, gateway 0 hears a perfectly healthy one.
  mesh.partition_one_way(0, 1);
  for (int window = 0; window < config.miss_windows + 2; ++window) {
    detector.observe(watch[0], mesh.cut(1, 0) ? 0.0 : 1.0);
    detector.observe(watch[1], mesh.cut(0, 1) ? 0.0 : 1.0);
  }
  EXPECT_FALSE(detector.dead(watch[0]));  // g0 still hears g1
  EXPECT_TRUE(detector.dead(watch[1]));   // g1 lost g0: exactly one trips
}

TEST(AsymmetricPartitionTest, TakeoverAfterOneWayCutNeverSplitBrains) {
  InvariantMonitor monitor;
  ChaosHarness harness({}, monitor);

  (void)harness.apply(deliver_event(0, 2));
  EXPECT_EQ(harness.committed(0), 2U);

  // Cut the REPL request path (g0 -> g1): the old owner can no longer get
  // anything acked, so it blocks rather than committing.
  (void)harness.apply(plain_event(ChaosEventKind::kPartitionOneWay, 0, 1));
  (void)harness.apply(deliver_event(0, 1));
  EXPECT_EQ(harness.committed(0), 2U);

  // The standby takes over. NOW both gateways believe they own the
  // session — the classic split-brain *belief* — but neither can commit:
  // the stale side's requests die on the cut link, and the new primary's
  // acks die on the same link in the other role. One directed cut blocks
  // both round-trips while tripping only one detector, and blocked is
  // always safe.
  (void)harness.apply(plain_event(ChaosEventKind::kFailover));
  EXPECT_TRUE(harness.believes_owner(0));
  EXPECT_TRUE(harness.believes_owner(1));
  EXPECT_FALSE(harness.fenced(0));
  (void)harness.apply(deliver_event(0, 2));
  EXPECT_TRUE(monitor.clean()) << monitor.violations()[0].to_string();
  EXPECT_EQ(harness.committed(0), 2U);  // nobody committed across the cut

  // Heal and deliver again: the stale side's first exchange sees the
  // higher epoch and it is fenced — belief collapses to one primary, and
  // only then does the new primary's commit stream advance.
  (void)harness.apply(plain_event(ChaosEventKind::kHeal));
  (void)harness.apply(deliver_event(0, 1));
  EXPECT_TRUE(monitor.clean()) << monitor.violations()[0].to_string();
  EXPECT_TRUE(harness.fenced(0));
  EXPECT_FALSE(harness.believes_owner(0));
  EXPECT_FALSE(harness.fenced(1));
  EXPECT_EQ(harness.acting_owner(), 1);
  EXPECT_EQ(harness.committed(0), 3U);
  const int unfenced_primaries =
      (harness.believes_owner(0) && !harness.fenced(0) ? 1 : 0) +
      (harness.believes_owner(1) && !harness.fenced(1) ? 1 : 0);
  EXPECT_EQ(unfenced_primaries, 1);
}

// ---------------------------------------------------------------- explorer

TEST(ChaosExplorerTest, BundleSerializationIsBitIdentical) {
  ReproBundle bundle;
  bundle.seed = 987654321;
  bundle.episode = 17;
  bundle.options.seed = 1111;
  bundle.options.streams = 2;
  bundle.options.plant_fencing_bug = true;
  bundle.schedule = {plain_event(ChaosEventKind::kFailover),
                     deliver_event(0, 1)};
  bundle.violation.probe = InvariantProbe::kExactlyOnce;
  bundle.violation.stream_id = 0;
  bundle.violation.sequence = 0;

  const std::string text = check::serialize_bundle(bundle);
  auto parsed = check::parse_bundle(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().seed, bundle.seed);
  EXPECT_EQ(parsed.value().episode, bundle.episode);
  EXPECT_EQ(parsed.value().options, bundle.options);
  EXPECT_EQ(parsed.value().violation.probe, bundle.violation.probe);
  ASSERT_EQ(parsed.value().schedule.size(), 2U);
  EXPECT_EQ(check::serialize_bundle(parsed.value()), text);
}

TEST(ChaosExplorerTest, BundleParserRejectsDamage) {
  EXPECT_FALSE(check::parse_bundle("").ok());
  EXPECT_FALSE(check::parse_bundle("chaosbundle v2\n").ok());
  ReproBundle bundle;
  bundle.options.seed = 1;
  bundle.schedule = {deliver_event(0, 1)};
  std::string text = check::serialize_bundle(bundle);
  // Truncate the schedule while the count still claims one event.
  const auto last_event = text.rfind("event ");
  ASSERT_NE(last_event, std::string::npos);
  EXPECT_FALSE(check::parse_bundle(text.substr(0, last_event)).ok());
}

TEST(ChaosExplorerTest, TwoHundredRandomEpisodesPassEveryProbe) {
  ChaosExplorerOptions options;
  options.seed = 0xC0FFEE;
  options.episodes = 200;
  options.events = 12;
  ChaosCounters counters;
  ChaosExplorer explorer(options, &counters);
  const auto report = explorer.explore();
  EXPECT_FALSE(report.found) << check::serialize_bundle(report.bundle);
  EXPECT_EQ(report.episodes_run, 200U);
  EXPECT_EQ(counters.episodes_run.load(), 200U);
  EXPECT_EQ(counters.violations_found.load(), 0U);
  EXPECT_GT(counters.events_injected.load(), 0U);
}

TEST(ChaosExplorerTest, FindsThePlantedFencingBugAndShrinksIt) {
  ChaosExplorerOptions options;
  options.seed = 0xBAD5EED;
  options.episodes = 50;  // bounded budget from the acceptance criteria
  options.events = 12;
  options.plant_fencing_bug = true;
  ChaosCounters counters;
  ChaosExplorer explorer(options, &counters);
  const auto report = explorer.explore();
  ASSERT_TRUE(report.found);
  EXPECT_LE(report.bundle.schedule.size(), 6U)
      << check::serialize_bundle(report.bundle);
  EXPECT_GE(counters.schedules_shrunk.load(), 1U);
  EXPECT_GT(counters.shrink_steps.load(), 0U);

  // The bundle replays deterministically: same violation, twice.
  EXPECT_TRUE(ChaosExplorer::replay(report.bundle).is_ok());
  EXPECT_TRUE(ChaosExplorer::replay(report.bundle).is_ok());

  // And the whole exploration is deterministic: a second explorer with the
  // same options produces a bit-identical bundle.
  ChaosExplorer again(options);
  const auto second = again.explore();
  ASSERT_TRUE(second.found);
  EXPECT_EQ(check::serialize_bundle(second.bundle),
            check::serialize_bundle(report.bundle));

  // 1-minimality: removing ANY single event stops reproducing the probe.
  for (std::size_t skip = 0; skip < report.bundle.schedule.size(); ++skip) {
    ChaosSchedule reduced;
    for (std::size_t i = 0; i < report.bundle.schedule.size(); ++i) {
      if (i != skip) {
        reduced.push_back(report.bundle.schedule[i]);
      }
    }
    bool reproduced = false;
    for (const InvariantViolation& violation :
         ChaosExplorer::run_schedule(report.bundle.options, reduced)) {
      reproduced |= violation.probe == report.bundle.violation.probe;
    }
    EXPECT_FALSE(reproduced) << "event " << skip << " is removable";
  }
}

TEST(ChaosExplorerTest, ReplayRejectsABundleThatDoesNotReproduce) {
  ReproBundle bundle;
  bundle.options.seed = 5;
  bundle.schedule = {deliver_event(0, 1)};  // clean schedule, no bug
  bundle.violation.probe = InvariantProbe::kExactlyOnce;
  const Status replayed = ChaosExplorer::replay(bundle);
  ASSERT_FALSE(replayed.is_ok());
  EXPECT_EQ(replayed.code(), StatusCode::kDataLoss);
}

TEST(ChaosCountersTest, TableAndStringRender) {
  ChaosCounters counters;
  EXPECT_NE(counters.snapshot().to_string().find("clean"), std::string::npos);
  counters.episodes_run.fetch_add(3);
  counters.frames_dropped.fetch_add(2);
  const auto snapshot = counters.snapshot();
  EXPECT_EQ(snapshot.episodes_run, 3U);
  EXPECT_EQ(snapshot.frames_dropped, 2U);
  const std::string table =
      chaos_table(snapshot, /*nonzero_only=*/true).render();
  EXPECT_NE(table.find("episodes_run"), std::string::npos);
  EXPECT_EQ(table.find("frames_delayed"), std::string::npos);
}

}  // namespace
}  // namespace numastream
