// Self-healing placement tests (DESIGN.md §9): the health directive in the
// config grammar (including the duplicate-policy-directive rejection), the
// EWMA/hysteresis HealthMonitor state machine, replan against a resource
// health mask, live migration at chunk boundaries in the real threaded
// pipeline, the seeded degradation schedule + injector, the end-to-end
// simulated NIC-failure recovery, and the watchdog x drain-deadline
// exactly-once DEADLINE_EXCEEDED contract.
//
// Determinism policy mirrors overload_test.cpp: the simulated runtime
// asserts exact (bit-identical) counter equality across same-seed reruns;
// the real threaded pipeline asserts timing-independent invariants.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/advisor.h"
#include "core/config.h"
#include "core/config_generator.h"
#include "core/health.h"
#include "core/pipeline.h"
#include "core/placement.h"
#include "metrics/fault_counters.h"
#include "metrics/health_counters.h"
#include "metrics/overload_counters.h"
#include "msg/inproc.h"
#include "simhw/degradation.h"
#include "simhw/machine.h"
#include "simrt/driver.h"
#include "topo/discover.h"
#include "topo/topology.h"

namespace numastream {
namespace {

using simrt::DegradationInjector;
using simrt::DegradationSchedule;
using simrt::ExperimentOptions;
using simrt::ExperimentResult;
using simrt::run_plan;

MachineTopology host_topology() {
  auto topo = discover_topology();
  NS_CHECK(topo.ok(), "health tests need a discoverable host");
  return std::move(topo).value();
}

/// Chaos suites read NUMASTREAM_CHAOS_SEED so the nightly job can randomize
/// them; unset (the tier-1 default) they stay fully deterministic.
std::uint64_t chaos_seed(std::uint64_t fallback) {
  const char* env = std::getenv("NUMASTREAM_CHAOS_SEED");
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  return std::strtoull(env, nullptr, 10);
}

Bytes pattern_payload(std::uint64_t sequence, std::size_t size) {
  Bytes payload(size);
  Rng rng(sequence * 0x9E3779B97F4A7C15ULL + 1);
  for (auto& b : payload) {
    b = static_cast<std::uint8_t>(rng.next_u64());
  }
  return payload;
}

/// Serves `count` deterministic chunks (contents depend only on sequence).
class PatternSource final : public ChunkSource {
 public:
  PatternSource(std::uint32_t stream_id, std::uint64_t count, std::size_t size)
      : stream_id_(stream_id), count_(count), size_(size) {}

  std::optional<Chunk> next() override {
    const std::uint64_t index = issued_.fetch_add(1, std::memory_order_relaxed);
    if (index >= count_) {
      return std::nullopt;
    }
    Chunk chunk;
    chunk.stream_id = stream_id_;
    chunk.sequence = index;
    chunk.payload = pattern_payload(index, size_);
    return chunk;
  }

 private:
  std::uint32_t stream_id_;
  std::uint64_t count_;
  std::size_t size_;
  std::atomic<std::uint64_t> issued_{0};
};

/// Sleeps per delivery — slow enough to hold the pipeline open while a
/// migration request lands, or to stall a drain past its deadline.
class SlowSink final : public ChunkSink {
 public:
  explicit SlowSink(std::chrono::milliseconds delay) : delay_(delay) {}

  void deliver(Chunk chunk) override {
    std::this_thread::sleep_for(delay_);
    chunks_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(chunk.payload.size(), std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t chunks() const noexcept { return chunks_.load(); }

 private:
  std::chrono::milliseconds delay_;
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

NodeConfig sender_config(int compress, int send) {
  NodeConfig config;
  config.node_name = "htest-sender";
  config.role = NodeRole::kSender;
  config.chunk_bytes = 2048;
  config.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = compress},
      TaskGroupConfig{.type = TaskType::kSend, .count = send},
  };
  return config;
}

NodeConfig receiver_config(int receive, int decompress) {
  NodeConfig config;
  config.node_name = "htest-receiver";
  config.role = NodeRole::kReceiver;
  config.chunk_bytes = 2048;
  config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = receive},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = decompress},
  };
  return config;
}

/// A HealthConfig with every knob moved off its default — the round-trip
/// and duplicate-directive tests want a directive that actually serializes.
HealthConfig nondefault_health() {
  HealthConfig health;
  health.window_ms = 25;
  health.ewma_alpha = 0.5;
  health.degraded_ratio = 0.8;
  health.failed_ratio = 0.3;
  health.breach_windows = 2;
  health.recover_windows = 4;
  health.baseline_windows = 5;
  return health;
}

// ------------------------------------------------------- health directive

TEST(HealthConfigTest, DirectiveRoundTripsThroughSerialize) {
  NodeConfig config = sender_config(2, 1);
  config.health = nondefault_health();
  const std::string text = config.serialize();
  EXPECT_NE(text.find("health"), std::string::npos) << text;

  const auto parsed = NodeConfig::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().health, config.health);
  EXPECT_TRUE(parsed.value().health.enabled());
}

TEST(HealthConfigTest, DefaultConfigSerializesWithoutHealthDirective) {
  // Default-off safety: a config that never mentions health must serialize
  // byte-identically to the pre-health grammar — no "health" line at all.
  const NodeConfig config = sender_config(2, 1);
  EXPECT_FALSE(config.health.enabled());
  EXPECT_EQ(config.serialize().find("health"), std::string::npos);

  const auto parsed = NodeConfig::parse(config.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_TRUE(parsed.value().health.is_default());
}

TEST(HealthConfigTest, ValidateRejectsBadKnobs) {
  const MachineTopology topo = host_topology();

  NodeConfig config = sender_config(1, 1);
  config.health = nondefault_health();
  ASSERT_TRUE(config.validate(topo).is_ok());

  config.health.ewma_alpha = 1.5;  // EWMA factor must stay in (0, 1]
  EXPECT_FALSE(config.validate(topo).is_ok());

  config.health = nondefault_health();
  config.health.failed_ratio = config.health.degraded_ratio;  // must be <
  EXPECT_FALSE(config.validate(topo).is_ok());

  config.health = nondefault_health();
  config.health.breach_windows = 0;  // hysteresis needs >= 1 window
  EXPECT_FALSE(config.validate(topo).is_ok());

  config.health = nondefault_health();
  config.health.window_ms = 0;  // knobs moved but the subsystem is off
  EXPECT_FALSE(config.validate(topo).is_ok());
}

TEST(HealthConfigTest, DuplicatePolicyDirectivesAreParseErrors) {
  // Repeating any of the three policy directives is a parse error, not a
  // silent last-wins: serialize a config carrying all three, then append
  // each emitted policy line a second time and expect a clear failure.
  NodeConfig config = sender_config(2, 1);
  config.recovery.watchdog_ms = 500;
  config.overload.credit_window = 4;
  config.health = nondefault_health();
  const std::string text = config.serialize();

  for (const std::string keyword : {"recovery", "overload", "health"}) {
    std::string duplicated_line;
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) {
        end = text.size();
      }
      const std::string line = text.substr(start, end - start);
      if (line.rfind(keyword, 0) == 0) {
        duplicated_line = line;
        break;
      }
      start = end + 1;
    }
    ASSERT_FALSE(duplicated_line.empty()) << "no '" << keyword << "' line";

    const auto parsed = NodeConfig::parse(text + "\n" + duplicated_line + "\n");
    ASSERT_FALSE(parsed.ok()) << "duplicate '" << keyword << "' accepted";
    EXPECT_NE(parsed.status().message().find("duplicate"), std::string::npos)
        << parsed.status().to_string();
    EXPECT_NE(parsed.status().message().find(keyword), std::string::npos)
        << parsed.status().to_string();
  }
}

// -------------------------------------------------------- health monitor

HealthConfig monitor_config() {
  HealthConfig config;
  config.window_ms = 20;
  config.ewma_alpha = 0.5;
  config.degraded_ratio = 0.7;
  config.failed_ratio = 0.35;
  config.breach_windows = 2;
  config.recover_windows = 2;
  config.baseline_windows = 2;
  return config;
}

TEST(HealthMonitorTest, WarmupSeedsBaselineBeforeClassifying) {
  HealthMonitor monitor(monitor_config());
  const int nic = monitor.track("mlx5_0");
  EXPECT_EQ(monitor.name(nic), "mlx5_0");

  // The first baseline_windows observations only seed the baseline — even a
  // terrible value cannot demote during warmup.
  EXPECT_EQ(monitor.observe(nic, 100), HealthState::kHealthy);
  EXPECT_EQ(monitor.observe(nic, 100), HealthState::kHealthy);
  EXPECT_DOUBLE_EQ(monitor.baseline(nic), 100);
  EXPECT_EQ(monitor.observe(nic, 100), HealthState::kHealthy);
  EXPECT_EQ(monitor.unhealthy_windows(nic), 0U);
}

TEST(HealthMonitorTest, HysteresisDemotesAfterBreachStreakOnly) {
  HealthMonitor monitor(monitor_config());
  const int nic = monitor.track("mlx5_0");
  monitor.observe(nic, 100);
  monitor.observe(nic, 100);  // warmup done, baseline 100

  // One breach window (ratio 0.5 < 0.7) is a transient dip: still healthy.
  EXPECT_EQ(monitor.observe(nic, 50), HealthState::kHealthy);
  // A clean window resets the streak; the next lone breach stays healthy.
  EXPECT_EQ(monitor.observe(nic, 100), HealthState::kHealthy);
  EXPECT_EQ(monitor.observe(nic, 50), HealthState::kHealthy);
  // Two consecutive breaches cross breach_windows: degraded.
  EXPECT_EQ(monitor.observe(nic, 50), HealthState::kDegraded);
  EXPECT_EQ(monitor.state(nic), HealthState::kDegraded);
  // The baseline did not chase the degraded windows down.
  EXPECT_DOUBLE_EQ(monitor.baseline(nic), 100);
}

TEST(HealthMonitorTest, FailedRatioEscalatesAndRecoveryPromotes) {
  HealthMonitor monitor(monitor_config());
  const int nic = monitor.track("mlx5_0");
  monitor.observe(nic, 100);
  monitor.observe(nic, 100);

  // A streak that dips under failed_ratio classifies failed, not degraded.
  monitor.observe(nic, 10);  // ratio 0.1 < 0.35
  EXPECT_EQ(monitor.observe(nic, 10), HealthState::kFailed);
  EXPECT_EQ(monitor.unhealthy_windows(nic), 1U);

  // Recovery needs recover_windows consecutive clean windows.
  EXPECT_EQ(monitor.observe(nic, 100), HealthState::kFailed);
  EXPECT_EQ(monitor.observe(nic, 100), HealthState::kHealthy);
  EXPECT_EQ(monitor.state(nic), HealthState::kHealthy);
  // Windows spent not-healthy: the failed window plus the first clean one.
  EXPECT_EQ(monitor.unhealthy_windows(nic), 2U);
}

TEST(HealthMonitorTest, SameObservationSequenceYieldsSameStates) {
  const std::vector<double> values = {100, 100, 90, 40, 40, 5, 5,
                                      100, 100, 100, 60, 100};
  const auto run_once = [&values] {
    HealthMonitor monitor(monitor_config());
    const int id = monitor.track("nic");
    std::vector<HealthState> states;
    for (const double value : values) {
      states.push_back(monitor.observe(id, value));
    }
    return states;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(HealthMonitorTest, TracksResourcesIndependently) {
  HealthMonitor monitor(monitor_config());
  const int a = monitor.track("mlx5_a");
  const int b = monitor.track("mlx5_b");
  EXPECT_EQ(monitor.tracked_count(), 2U);
  for (int i = 0; i < 2; ++i) {
    monitor.observe(a, 100);
    monitor.observe(b, 200);
  }
  monitor.observe(a, 10);
  monitor.observe(a, 10);
  EXPECT_EQ(monitor.state(a), HealthState::kFailed);
  EXPECT_EQ(monitor.state(b), HealthState::kHealthy);
  EXPECT_DOUBLE_EQ(monitor.baseline(b), 200);
}

// -------------------------------------------- migration coordinator + mask

TEST(MigrationCoordinatorTest, PollSeesLatestRequestExactlyOnce) {
  MigrationCoordinator coord;
  std::uint64_t cursor = 0;
  EXPECT_FALSE(coord.poll(TaskType::kReceive, &cursor).has_value());

  coord.request(TaskType::kReceive,
                NumaBinding{.execution_domain = 1, .memory_domain = 1});
  coord.request(TaskType::kReceive,
                NumaBinding{.execution_domain = 2, .memory_domain = 2});
  const auto target = coord.poll(TaskType::kReceive, &cursor);
  ASSERT_TRUE(target.has_value());  // last-wins: the second request
  EXPECT_EQ(target->execution_domain, 2);
  EXPECT_FALSE(coord.poll(TaskType::kReceive, &cursor).has_value());

  // Other task types never see it.
  std::uint64_t other = 0;
  EXPECT_FALSE(coord.poll(TaskType::kDecompress, &other).has_value());
  EXPECT_EQ(coord.requests(), 2U);
}

TEST(MigrationCoordinatorTest, ConcurrentPollersAllObserveTheRequest) {
  MigrationCoordinator coord;
  constexpr int kPollers = 4;
  std::atomic<int> observed{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> pollers;
  pollers.reserve(kPollers);
  for (int i = 0; i < kPollers; ++i) {
    pollers.emplace_back([&] {
      std::uint64_t cursor = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (const auto target = coord.poll(TaskType::kSend, &cursor)) {
          EXPECT_EQ(target->execution_domain, 3);
          observed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  coord.request(TaskType::kSend,
                NumaBinding{.execution_domain = 3, .memory_domain = 3});
  while (observed.load(std::memory_order_relaxed) < kPollers) {
    std::this_thread::yield();
  }
  stop = true;
  for (auto& poller : pollers) {
    poller.join();
  }
  EXPECT_EQ(observed.load(), kPollers);
}

TEST(HealthMaskTest, MembershipQueries) {
  ResourceHealthMask mask;
  EXPECT_TRUE(mask.empty());
  EXPECT_TRUE(mask.domain_ok(0));
  EXPECT_TRUE(mask.nic_ok("mlx5_a"));

  mask.failed_domains = {1};
  mask.failed_nics = {"mlx5_a"};
  EXPECT_FALSE(mask.empty());
  EXPECT_TRUE(mask.domain_ok(0));
  EXPECT_FALSE(mask.domain_ok(1));
  EXPECT_FALSE(mask.nic_ok("mlx5_a"));
  EXPECT_TRUE(mask.nic_ok("mlx5_b"));
}

// ----------------------------------------------------------------- replan

TEST(ReplanTest, EmptyMaskReturnsConfigUnchanged) {
  const MachineTopology gateway = dual_nic_gateway_topology();
  ConfigGenerator generator(gateway, {updraft_topology()});
  WorkloadSpec spec;
  auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  ASSERT_TRUE(plan.ok());

  BottleneckAdvisor advisor;
  const auto replanned =
      advisor.replan(plan.value().receiver, gateway, ResourceHealthMask{});
  ASSERT_TRUE(replanned.ok());
  EXPECT_EQ(replanned.value().serialize(), plan.value().receiver.serialize());
}

TEST(ReplanTest, NicFailureMovesReceiveToSurvivorDomain) {
  const MachineTopology gateway = dual_nic_gateway_topology();
  ConfigGenerator generator(gateway, {updraft_topology()});
  WorkloadSpec spec;
  spec.transfer_threads = 2;
  auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  ASSERT_TRUE(plan.ok());

  // Fail mlx5_a (domain 0): the survivor is mlx5_b on domain 1, so every
  // receive binding must land on domain 1 and decompression must avoid it.
  ResourceHealthMask mask;
  mask.failed_nics = {"mlx5_a"};
  BottleneckAdvisor advisor;
  const auto replanned = advisor.replan(plan.value().receiver, gateway, mask);
  ASSERT_TRUE(replanned.ok()) << replanned.status().to_string();

  for (const TaskGroupConfig& group : replanned.value().tasks) {
    if (group.type == TaskType::kReceive) {
      ASSERT_FALSE(group.bindings.empty());
      for (const NumaBinding& binding : group.bindings) {
        EXPECT_EQ(binding.execution_domain, 1);
        EXPECT_EQ(binding.memory_domain, 1);
      }
    }
    if (group.type == TaskType::kDecompress) {
      for (const NumaBinding& binding : group.bindings) {
        EXPECT_NE(binding.execution_domain, 1);
      }
    }
  }
}

TEST(ReplanTest, NoSurvivingNicIsAnError) {
  const MachineTopology gateway = dual_nic_gateway_topology();
  ConfigGenerator generator(gateway, {updraft_topology()});
  auto plan = generator.generate(WorkloadSpec{}, PlacementStrategy::kNumaAware);
  ASSERT_TRUE(plan.ok());

  ResourceHealthMask mask;
  mask.failed_nics = {"mlx5_a", "mlx5_b"};
  BottleneckAdvisor advisor;
  const auto replanned = advisor.replan(plan.value().receiver, gateway, mask);
  ASSERT_FALSE(replanned.ok());
  EXPECT_NE(replanned.status().message().find("no usable NIC"),
            std::string::npos)
      << replanned.status().to_string();
}

TEST(ReplanTest, AllDomainsFailedIsAnError) {
  const MachineTopology gateway = dual_nic_gateway_topology();
  ConfigGenerator generator(gateway, {updraft_topology()});
  auto plan = generator.generate(WorkloadSpec{}, PlacementStrategy::kNumaAware);
  ASSERT_TRUE(plan.ok());

  ResourceHealthMask mask;
  mask.failed_domains = {0, 1};
  BottleneckAdvisor advisor;
  const auto replanned = advisor.replan(plan.value().receiver, gateway, mask);
  ASSERT_FALSE(replanned.ok());
  EXPECT_NE(replanned.status().message().find("failed"), std::string::npos);
}

TEST(ReplanTest, RebindExcludingPrefersHealthySurvivors) {
  const MachineTopology gateway = dual_nic_gateway_topology();
  ResourceHealthMask mask;
  mask.failed_domains = {0};
  const std::vector<NumaBinding> bound = rebind_excluding(
      gateway, {NumaBinding{.execution_domain = 0, .memory_domain = 0}}, mask);
  ASSERT_FALSE(bound.empty());
  for (const NumaBinding& binding : bound) {
    EXPECT_NE(binding.execution_domain, 0);
    EXPECT_NE(binding.memory_domain, 0);
  }
}

// -------------------------------------------------------- health counters

TEST(HealthCountersTest, SnapshotComparesAndPrints) {
  HealthCounters counters;
  EXPECT_EQ(counters.snapshot(), HealthCountersSnapshot{});
  EXPECT_EQ(counters.snapshot().to_string(), "clean");

  counters.failure_detections.fetch_add(1);
  counters.replans.fetch_add(1);
  counters.migrations.fetch_add(2);
  const HealthCountersSnapshot snapshot = counters.snapshot();
  EXPECT_NE(snapshot, HealthCountersSnapshot{});
  EXPECT_NE(snapshot.to_string().find("migrations"), std::string::npos);

  const std::string table = health_table(snapshot).render();
  EXPECT_NE(table.find("failure_detections"), std::string::npos);
  EXPECT_NE(table.find("2"), std::string::npos);
}

// --------------------------------------------------- degradation schedule

TEST(DegradationScheduleTest, EventsSortByTimeAndValidate) {
  DegradationSchedule schedule(1);
  schedule.restore_nic(0.4, "mlx5_a")
      .droop_nic(0.1, "mlx5_a", 0.5)
      .offline_core(0.2, 3)
      .online_core(0.3, 3);
  ASSERT_TRUE(schedule.validate().is_ok());

  const auto& events = schedule.events();
  ASSERT_EQ(events.size(), 4U);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at_seconds, events[i].at_seconds);
  }
  EXPECT_EQ(events.front().kind, simrt::DegradationKind::kNicDroop);
}

TEST(DegradationScheduleTest, ValidateRejectsMalformedEvents) {
  {
    DegradationSchedule schedule;
    schedule.droop_nic(-0.1, "mlx5_a", 0.5);  // negative time
    EXPECT_FALSE(schedule.validate().is_ok());
  }
  {
    DegradationSchedule schedule;
    schedule.droop_nic(0.1, "mlx5_a", 0.0);  // scale must be in (0, 1]
    EXPECT_FALSE(schedule.validate().is_ok());
  }
  {
    DegradationSchedule schedule;
    schedule.droop_nic(0.1, "", 0.5);  // NIC events need a name
    EXPECT_FALSE(schedule.validate().is_ok());
  }
  {
    DegradationSchedule schedule;
    schedule.offline_core(0.1, -1);  // core events need a target
    EXPECT_FALSE(schedule.validate().is_ok());
  }
}

TEST(DegradationScheduleTest, FlapTrainIsSeededAndReproducible) {
  const auto edge_times = [](std::uint64_t seed) {
    DegradationSchedule schedule(seed);
    schedule.flap_nic(0.2, 0.1, 4, "mlx5_a", 0.05);
    std::vector<double> times;
    for (const auto& event : schedule.events()) {
      times.push_back(event.at_seconds);
    }
    return times;
  };
  EXPECT_EQ(edge_times(42), edge_times(42));  // same seed, same flap train
  EXPECT_NE(edge_times(42), edge_times(43));  // seed actually matters
  EXPECT_EQ(edge_times(42).size(), 8U);       // 4 droop/restore pairs
}

TEST(DegradationInjectorTest, AppliesEveryScheduledEvent) {
  sim::Simulation sim;
  simrt::SimHost host(sim, dual_nic_gateway_topology(), simrt::HostParams{});
  DegradationSchedule schedule(3);
  schedule.droop_nic(0.1, "mlx5_a", 0.5).restore_nic(0.2, "mlx5_a");
  DegradationInjector injector(sim, host, schedule);
  injector.launch();
  sim.run();
  EXPECT_EQ(injector.events_applied(), 2U);
}

// ----------------------------------------- live migration (real pipeline)

struct MigrationRunResult {
  Result<SenderStats> sender_stats{SenderStats{}};
  Result<ReceiverStats> receiver_stats{ReceiverStats{}};
};

MigrationRunResult run_migration_pipeline(const MachineTopology& topo,
                                          NodeConfig sender_cfg,
                                          NodeConfig receiver_cfg,
                                          ChunkSource& source, ChunkSink& sink,
                                          HealthHooks sender_hooks,
                                          HealthHooks receiver_hooks) {
  InprocListener listener;
  MigrationRunResult run;
  std::thread sender_thread([&] {
    StreamSender sender(topo, std::move(sender_cfg));
    run.sender_stats =
        sender.run(source, [&] { return listener.connect(); }, nullptr,
                   nullptr, OverloadHooks{}, sender_hooks);
  });
  StreamReceiver receiver(topo, std::move(receiver_cfg));
  run.receiver_stats = receiver.run(listener, sink, nullptr, nullptr,
                                    OverloadHooks{}, receiver_hooks);
  sender_thread.join();
  return run;
}

TEST(MigrationPipelineTest, WorkersRepinAtChunkBoundariesWithoutLoss) {
  const MachineTopology topo = host_topology();
  const std::uint64_t kChunks = 40;

  NodeConfig sender_cfg = sender_config(1, 1);
  NodeConfig receiver_cfg = receiver_config(1, 1);
  sender_cfg.health = monitor_config();
  receiver_cfg.health = monitor_config();

  HealthCounters counters;
  MigrationCoordinator coordinator;
  // Requests issued before the run: each worker consumes its task type's
  // request at the first chunk boundary, so the count is deterministic —
  // one receive worker + one decompress worker.
  coordinator.request(TaskType::kReceive,
                      NumaBinding{.execution_domain = 0, .memory_domain = 0});
  coordinator.request(TaskType::kDecompress, NumaBinding{});

  PatternSource source(1, kChunks, 2048);
  CountingSink sink;
  const HealthHooks hooks{.counters = &counters, .migrations = &coordinator};
  const MigrationRunResult run = run_migration_pipeline(
      topo, sender_cfg, receiver_cfg, source, sink, hooks, hooks);

  ASSERT_TRUE(run.sender_stats.ok()) << run.sender_stats.status().to_string();
  ASSERT_TRUE(run.receiver_stats.ok())
      << run.receiver_stats.status().to_string();
  // Migration never drops or reorders work: every chunk still arrives.
  EXPECT_EQ(sink.chunks(), kChunks);
  EXPECT_EQ(run.receiver_stats.value().chunks, kChunks);
  EXPECT_EQ(counters.snapshot().migrations, 2U);
}

TEST(MigrationPipelineTest, MidRunRequestLandsWhileChunksFlow) {
  const MachineTopology topo = host_topology();
  const std::uint64_t kChunks = 60;

  NodeConfig sender_cfg = sender_config(1, 1);
  NodeConfig receiver_cfg = receiver_config(1, 1);
  receiver_cfg.health = monitor_config();

  HealthCounters counters;
  MigrationCoordinator coordinator;
  PatternSource source(1, kChunks, 2048);
  SlowSink sink(std::chrono::milliseconds(5));  // holds the run open

  std::thread requester([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    coordinator.request(TaskType::kReceive,
                        NumaBinding{.execution_domain = 0, .memory_domain = 0});
  });
  const HealthHooks hooks{.counters = &counters, .migrations = &coordinator};
  const MigrationRunResult run = run_migration_pipeline(
      topo, sender_cfg, receiver_cfg, source, sink, HealthHooks{}, hooks);
  requester.join();

  ASSERT_TRUE(run.sender_stats.ok()) << run.sender_stats.status().to_string();
  ASSERT_TRUE(run.receiver_stats.ok())
      << run.receiver_stats.status().to_string();
  EXPECT_EQ(sink.chunks(), kChunks);
  EXPECT_EQ(counters.snapshot().migrations, 1U);
}

TEST(MigrationPipelineTest, DisabledHealthIgnoresRequests) {
  // Default-off safety: hooks supplied but config.health absent — workers
  // must never consult the coordinator.
  const MachineTopology topo = host_topology();
  const std::uint64_t kChunks = 20;

  HealthCounters counters;
  MigrationCoordinator coordinator;
  coordinator.request(TaskType::kReceive,
                      NumaBinding{.execution_domain = 0, .memory_domain = 0});
  coordinator.request(TaskType::kDecompress, NumaBinding{});

  PatternSource source(1, kChunks, 2048);
  CountingSink sink;
  const HealthHooks hooks{.counters = &counters, .migrations = &coordinator};
  const MigrationRunResult run =
      run_migration_pipeline(topo, sender_config(1, 1), receiver_config(1, 1),
                             source, sink, hooks, hooks);

  ASSERT_TRUE(run.sender_stats.ok());
  ASSERT_TRUE(run.receiver_stats.ok());
  EXPECT_EQ(sink.chunks(), kChunks);
  EXPECT_EQ(counters.snapshot().migrations, 0U);
}

// -------------------------------------- watchdog x drain deadline (once)

struct DeadlineRunResult {
  Result<SenderStats> sender_stats{SenderStats{}};
  Result<ReceiverStats> receiver_stats{ReceiverStats{}};
  FaultCountersSnapshot receiver_faults;
  OverloadCountersSnapshot receiver_overload;
};

DeadlineRunResult run_deadline_pipeline(const MachineTopology& topo,
                                        NodeConfig sender_cfg,
                                        NodeConfig receiver_cfg,
                                        ChunkSource& source, ChunkSink& sink) {
  InprocListener listener;
  FaultCounters faults;
  OverloadCounters overload;
  DeadlineRunResult run;
  std::thread sender_thread([&] {
    StreamSender sender(topo, std::move(sender_cfg));
    run.sender_stats = sender.run(source, [&] { return listener.connect(); });
  });
  StreamReceiver receiver(topo, std::move(receiver_cfg));
  run.receiver_stats =
      receiver.run(listener, sink, nullptr, &faults,
                   OverloadHooks{.counters = &overload});
  sender_thread.join();
  run.receiver_faults = faults.snapshot();
  run.receiver_overload = overload.snapshot();
  return run;
}

TEST(WatchdogDrainTest, StuckFlushWithLiveWatchdogReportsDrainOnce) {
  // Both mechanisms armed; only the drain deadline expires (the watchdog is
  // fed by the sink's slow-but-steady progress). Exactly one
  // DEADLINE_EXCEEDED must surface, attributed to the drain.
  const MachineTopology topo = host_topology();
  const std::uint64_t kChunks = 10;

  NodeConfig receiver_cfg = receiver_config(1, 1);
  receiver_cfg.queue_capacity = 2;
  receiver_cfg.recovery.watchdog_ms = 5000;     // armed, never trips
  receiver_cfg.overload.drain_deadline_ms = 100;  // expires mid-flush

  PatternSource source(1, kChunks, 2048);
  SlowSink sink(std::chrono::milliseconds(60));
  const DeadlineRunResult run = run_deadline_pipeline(
      topo, sender_config(1, 1), receiver_cfg, source, sink);

  ASSERT_FALSE(run.receiver_stats.ok());
  EXPECT_EQ(run.receiver_stats.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(run.receiver_stats.status().message().find("drain"),
            std::string::npos)
      << run.receiver_stats.status().to_string();
  // Exactly one mechanism fired and was reported — not two.
  EXPECT_EQ(run.receiver_overload.drain_timeouts, 1U);
  EXPECT_EQ(run.receiver_faults.watchdog_trips, 0U);
}

TEST(WatchdogDrainTest, WatchdogAndDrainBothArmedTripsReportOnce) {
  // A consumer so slow that both deadlines can expire in the same run: the
  // watchdog (checked first in the pipeline epilogue) must own the status,
  // and the run must surface DEADLINE_EXCEEDED exactly once, never twice.
  const MachineTopology topo = host_topology();
  const std::uint64_t kChunks = 10;

  NodeConfig receiver_cfg = receiver_config(1, 1);
  receiver_cfg.queue_capacity = 2;
  receiver_cfg.recovery.watchdog_ms = 80;
  receiver_cfg.overload.drain_deadline_ms = 100;

  PatternSource source(1, kChunks, 2048);
  SlowSink sink(std::chrono::milliseconds(250));  // stalls both stages
  const DeadlineRunResult run = run_deadline_pipeline(
      topo, sender_config(1, 1), receiver_cfg, source, sink);

  ASSERT_FALSE(run.receiver_stats.ok());
  EXPECT_EQ(run.receiver_stats.status().code(), StatusCode::kDeadlineExceeded);

  // The status names exactly one mechanism; precedence gives it to the
  // watchdog when both raced to expire.
  const std::string message = run.receiver_stats.status().message();
  const bool names_watchdog = message.find("watchdog") != std::string::npos;
  const bool names_drain = message.find("drain") != std::string::npos;
  EXPECT_TRUE(names_watchdog != names_drain) << message;
  EXPECT_TRUE(names_watchdog) << message;
  EXPECT_EQ(run.receiver_faults.watchdog_trips, 1U);
}

// ------------------------------------------- simulated end-to-end healing

StreamingPlan failover_plan() {
  const MachineTopology gateway = dual_nic_gateway_topology();
  const std::vector<MachineTopology> senders = {updraft_topology("updraft1"),
                                                updraft_topology("updraft2")};
  ConfigGenerator generator(gateway, senders);
  WorkloadSpec spec;
  spec.num_streams = 2;
  spec.use_all_nics = true;  // one stream per NIC
  spec.compression_threads = 8;
  spec.transfer_threads = 2;
  spec.decompression_threads = 4;
  auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  NS_CHECK(plan.ok(), "failover plan generation failed");
  return std::move(plan).value();
}

Result<ExperimentResult> run_failover(const StreamingPlan& plan,
                                      const DegradationSchedule& schedule,
                                      bool heal,
                                      std::uint64_t chunks_per_stream) {
  const MachineTopology gateway = dual_nic_gateway_topology();
  const std::vector<MachineTopology> senders = {updraft_topology("updraft1"),
                                                updraft_topology("updraft2")};
  ExperimentOptions options;
  options.link.bandwidth_gbps = 400;
  options.source_gbps = 40;
  options.chunks_per_stream = chunks_per_stream;
  options.degradation = schedule;
  if (heal) {
    options.health.window_ms = 20;
    options.health.breach_windows = 2;
  }
  return run_plan(senders, gateway, plan, options);
}

TEST(SimRecoveryTest, NicFailureIsDetectedAndMigratedWithZeroLoss) {
  const StreamingPlan plan = failover_plan();
  ASSERT_EQ(plan.stream_receiver_nics.size(), 2U);
  ASSERT_NE(plan.stream_receiver_nics[0], plan.stream_receiver_nics[1]);

  const std::uint64_t kChunks = 150;
  DegradationSchedule schedule(7);
  schedule.droop_nic(0.1, plan.stream_receiver_nics[0], 0.02);
  const auto healed = run_failover(plan, schedule, true, kChunks);
  ASSERT_TRUE(healed.ok()) << healed.status().to_string();

  // Zero chunk loss: delivered + shed accounts for every produced chunk.
  std::uint64_t accounted = 0;
  for (const auto& stream : healed.value().streams) {
    accounted += stream.chunks + stream.shed_chunks;
  }
  EXPECT_EQ(accounted, 2 * kChunks);

  // The healing loop ran: detection, a re-plan, and one migration per
  // receive worker of the victim stream.
  const HealthCountersSnapshot& health = healed.value().health;
  EXPECT_GE(health.failure_detections, 1U) << health.to_string();
  EXPECT_GE(health.replans, 1U);
  EXPECT_GE(health.migrations, 2U);
  EXPECT_GT(health.time_in_degraded_ms, 0U);
}

TEST(SimRecoveryTest, SameSeedReproducesHealthCountersBitIdentically) {
  const StreamingPlan plan = failover_plan();
  DegradationSchedule schedule(7);
  schedule.droop_nic(0.1, plan.stream_receiver_nics[0], 0.02);

  const auto first = run_failover(plan, schedule, true, 120);
  const auto second = run_failover(plan, schedule, true, 120);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first.value().health, second.value().health);
  EXPECT_EQ(first.value().elapsed_seconds, second.value().elapsed_seconds);
  ASSERT_EQ(first.value().streams.size(), second.value().streams.size());
  for (std::size_t i = 0; i < first.value().streams.size(); ++i) {
    EXPECT_EQ(first.value().streams[i].chunks, second.value().streams[i].chunks);
  }
  // The scenario is not vacuous: something actually failed and healed.
  EXPECT_GE(first.value().health.failure_detections, 1U);
}

TEST(SimRecoveryTest, HealingOffLeavesHealthCountersClean) {
  const StreamingPlan plan = failover_plan();
  DegradationSchedule schedule(7);
  schedule.droop_nic(0.1, plan.stream_receiver_nics[0], 0.02);

  const auto degraded = run_failover(plan, schedule, false, 120);
  ASSERT_TRUE(degraded.ok()) << degraded.status().to_string();
  EXPECT_EQ(degraded.value().health, HealthCountersSnapshot{});
  std::uint64_t accounted = 0;
  for (const auto& stream : degraded.value().streams) {
    accounted += stream.chunks + stream.shed_chunks;
  }
  EXPECT_EQ(accounted, 2 * 120U);  // degradation slows chunks, never drops
}

// Chaos: the flap train's edge times come from NUMASTREAM_CHAOS_SEED (the
// nightly job randomizes it; unset, the default keeps tier-1 deterministic).
// Invariants must hold for every seed: zero chunk loss, and a same-seed
// rerun reproduces the counters bit-identically.
TEST(ChaosDegradationTest, FlappingNicNeverLosesChunksAnySeed) {
  const std::uint64_t seed = chaos_seed(911);
  SCOPED_TRACE("NUMASTREAM_CHAOS_SEED=" + std::to_string(seed));

  const StreamingPlan plan = failover_plan();
  const std::uint64_t kChunks = 120;
  DegradationSchedule schedule(seed);
  schedule.flap_nic(0.08, 0.08, 3, plan.stream_receiver_nics[0], 0.02);

  const auto first = run_failover(plan, schedule, true, kChunks);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  std::uint64_t accounted = 0;
  for (const auto& stream : first.value().streams) {
    accounted += stream.chunks + stream.shed_chunks;
  }
  EXPECT_EQ(accounted, 2 * kChunks);

  const auto second = run_failover(plan, schedule, true, kChunks);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().health, second.value().health);
  EXPECT_EQ(first.value().elapsed_seconds, second.value().elapsed_seconds);
}

}  // namespace
}  // namespace numastream
