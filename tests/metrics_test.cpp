#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

#include "metrics/core_usage.h"
#include "metrics/remote_access.h"
#include "metrics/table.h"
#include "metrics/throughput.h"
#include "metrics/timeline.h"

namespace numastream {
namespace {

TEST(ThroughputMeterTest, CountsBytesFromManyThreads) {
  ThroughputMeter meter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        meter.add_bytes(10);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(meter.total_bytes(), 40000U);
}

TEST(ThroughputMeterTest, RateIsBytesOverElapsed) {
  ThroughputMeter meter;
  meter.start();
  meter.add_bytes(1000000);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const double rate = meter.bytes_per_second();
  EXPECT_GT(rate, 0.0);
  EXPECT_LT(rate, 1000000.0 / 0.045);  // can't be faster than elapsed allows
}

// Regression: bytes recorded before start() (connection warm-up) used to be
// counted in the measurement window, inflating every reported rate. start()
// must snapshot a baseline that excludes them.
TEST(ThroughputMeterTest, StartExcludesBytesRecordedBeforeIt) {
  ThroughputMeter meter;
  meter.add_bytes(1'000'000'000);  // warm-up traffic before the clock starts
  meter.start();
  EXPECT_EQ(meter.window_bytes(), 0U);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // With an empty window the rate must be exactly 0 — the old code divided
  // the warm-up gigabyte by 20ms and reported ~400 Gbps here.
  EXPECT_DOUBLE_EQ(meter.bytes_per_second(), 0.0);
  meter.add_bytes(500);
  EXPECT_EQ(meter.window_bytes(), 500U);
  EXPECT_EQ(meter.total_bytes(), 1'000'000'500U);
}

TEST(ThroughputMeterTest, RestartResetsTheWindow) {
  ThroughputMeter meter;
  meter.start();
  meter.add_bytes(100);
  meter.start();  // second window
  EXPECT_EQ(meter.window_bytes(), 0U);
  meter.add_bytes(7);
  EXPECT_EQ(meter.window_bytes(), 7U);
}

TEST(SummaryStatsTest, Empty) {
  const SummaryStats stats = SummaryStats::from({});
  EXPECT_EQ(stats.count, 0U);
  EXPECT_DOUBLE_EQ(stats.mean, 0);
}

TEST(SummaryStatsTest, SingleValue) {
  const SummaryStats stats = SummaryStats::from({5.0});
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_DOUBLE_EQ(stats.min, 5.0);
  EXPECT_DOUBLE_EQ(stats.max, 5.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
}

TEST(SummaryStatsTest, KnownValues) {
  const SummaryStats stats = SummaryStats::from({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_DOUBLE_EQ(stats.min, 2.0);
  EXPECT_DOUBLE_EQ(stats.max, 9.0);
  // Sample stddev of this classic set is sqrt(32/7).
  EXPECT_NEAR(stats.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

// ---------------------------------------------------------------- usage

TEST(CoreUsageMatrixTest, UtilizationIsBusyOverElapsed) {
  CoreUsageMatrix usage(4);
  usage.add_busy_time(0, 5.0);
  usage.add_busy_time(1, 10.0);
  usage.set_elapsed(10.0);
  EXPECT_DOUBLE_EQ(usage.utilization(0), 0.5);
  EXPECT_DOUBLE_EQ(usage.utilization(1), 1.0);
  EXPECT_DOUBLE_EQ(usage.utilization(2), 0.0);
}

TEST(CoreUsageMatrixTest, OversubscriptionClampsToOne) {
  CoreUsageMatrix usage(1);
  usage.add_busy_time(0, 25.0);
  usage.set_elapsed(10.0);
  EXPECT_DOUBLE_EQ(usage.utilization(0), 1.0);
}

TEST(CoreUsageMatrixTest, ZeroElapsedReadsZero) {
  CoreUsageMatrix usage(2);
  usage.add_busy_time(0, 1.0);
  EXPECT_DOUBLE_EQ(usage.utilization(0), 0.0);
}

TEST(CoreUsageMatrixTest, RenderColumnShades) {
  CoreUsageMatrix usage(4);
  usage.add_busy_time(0, 0.0);
  usage.add_busy_time(1, 5.0);
  usage.add_busy_time(2, 10.0);
  usage.set_elapsed(10.0);
  const std::string column = usage.render_column();
  ASSERT_EQ(column.size(), 4U);
  EXPECT_EQ(column[0], ' ');   // idle
  EXPECT_EQ(column[1], '5');   // 50%
  EXPECT_EQ(column[2], '#');   // saturated
  EXPECT_EQ(column[3], ' ');
}

TEST(CoreUsageMatrixTest, CsvHasOneRowPerCore) {
  CoreUsageMatrix usage(3);
  usage.add_busy_time(1, 1.0);
  usage.set_elapsed(2.0);
  const std::string csv = usage.to_csv("cfg");
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("cfg,1,0.5000"), std::string::npos);
}

TEST(CoreUsageMatrixTest, HeatmapLaysOutColumns) {
  CoreUsageMatrix a(2);
  a.add_busy_time(0, 1.0);
  a.set_elapsed(1.0);
  CoreUsageMatrix b(2);
  b.add_busy_time(1, 1.0);
  b.set_elapsed(1.0);
  const std::string map = render_usage_heatmap({"cfgA", "cfgB"}, {a, b});
  EXPECT_NE(map.find("core  0"), std::string::npos);
  EXPECT_NE(map.find("cfgA"), std::string::npos);
  EXPECT_NE(map.find("cfgB"), std::string::npos);
  EXPECT_NE(map.find('#'), std::string::npos);
}

// ---------------------------------------------------------------- remote

TEST(RemoteAccessCounterTest, TracksLocalAndRemote) {
  RemoteAccessCounter counter(4);
  counter.add_local_bytes(0, 100);
  counter.add_remote_bytes(0, 300);
  counter.add_remote_bytes(1, 600);
  EXPECT_EQ(counter.local_bytes(0), 100U);
  EXPECT_EQ(counter.remote_bytes(0), 300U);
  EXPECT_DOUBLE_EQ(counter.remote_fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(counter.remote_fraction(3), 0.0);  // idle core
}

TEST(RemoteAccessCounterTest, NormalizedAgainstPeakCore) {
  RemoteAccessCounter counter(3);
  counter.add_remote_bytes(0, 500);
  counter.add_remote_bytes(2, 1000);
  const auto normalized = counter.normalized_remote();
  EXPECT_DOUBLE_EQ(normalized[0], 0.5);
  EXPECT_DOUBLE_EQ(normalized[1], 0.0);
  EXPECT_DOUBLE_EQ(normalized[2], 1.0);
}

TEST(RemoteAccessCounterTest, AllZeroWhenNoRemoteTraffic) {
  RemoteAccessCounter counter(2);
  counter.add_local_bytes(0, 100);
  const auto normalized = counter.normalized_remote();
  EXPECT_DOUBLE_EQ(normalized[0], 0.0);
  EXPECT_DOUBLE_EQ(normalized[1], 0.0);
}

TEST(RemoteAccessCounterTest, Csv) {
  RemoteAccessCounter counter(2);
  counter.add_local_bytes(0, 10);
  counter.add_remote_bytes(1, 20);
  const std::string csv = counter.to_csv("run");
  EXPECT_NE(csv.find("run,0,10,0,0.0000"), std::string::npos);
  EXPECT_NE(csv.find("run,1,0,20,1.0000"), std::string::npos);
}

// ---------------------------------------------------------------- table

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"config", "paper", "ours"});
  table.add_row({"A", "37.0", "36.5"});
  table.add_row({"G-N1", "97.0", "96.1"});
  const std::string text = table.render();
  EXPECT_NE(text.find("config"), std::string::npos);
  EXPECT_NE(text.find("G-N1"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(TextTableTest, NumericRowHelper) {
  TextTable table({"x", "a", "b"});
  table.add_row("row", {1.234, 5.0}, 1);
  EXPECT_NE(table.render().find("1.2"), std::string::npos);
  EXPECT_NE(table.render().find("5.0"), std::string::npos);
}

TEST(TextTableTest, Csv) {
  TextTable table({"h1", "h2"});
  table.add_row({"a", "b"});
  EXPECT_EQ(table.to_csv(), "h1,h2\na,b\n");
}

TEST(TextTableTest, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

// Regression: fmt_double used a fixed 32-byte buffer, truncating wide values;
// it now sizes the string from the snprintf return value.
TEST(TextTableTest, FmtDoubleNeverTruncatesWideValues) {
  const std::string wide = fmt_double(1e300, 6);
  EXPECT_GT(wide.size(), 300U);
  EXPECT_EQ(wide.find('e'), std::string::npos);  // %f, not scientific
  EXPECT_EQ(wide.substr(0, 2), "10");
  EXPECT_EQ(wide.substr(wide.size() - 7), ".000000");
}

TEST(CsvEscapeTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape(""), "");
}

// Regression: labels containing commas used to shift every downstream CSV
// column. The round-trip property pins the fix: parse_csv(to_csv()) must
// reproduce the cells exactly.
TEST(TextTableTest, CsvRoundTripsHostileCells) {
  TextTable table({"config", "note"});
  table.add_row({"2 NICs, pinned", "say \"hi\""});
  table.add_row({"plain", "multi\nline"});
  const auto rows = parse_csv(table.to_csv());
  ASSERT_EQ(rows.size(), 3U);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"config", "note"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"2 NICs, pinned", "say \"hi\""}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"plain", "multi\nline"}));
}

}  // namespace
}  // namespace numastream

namespace numastream {
namespace {

// ---------------------------------------------------------------- timeline

TEST(RateTimelineTest, BucketsAccumulateAndConvertToRates) {
  RateTimeline timeline(0.5);
  timeline.record(0.1, 100);
  timeline.record(0.4, 100);
  timeline.record(0.6, 300);
  const auto rates = timeline.rates();
  ASSERT_EQ(rates.size(), 2U);
  EXPECT_DOUBLE_EQ(rates[0], 400.0);  // 200 bytes / 0.5 s
  EXPECT_DOUBLE_EQ(rates[1], 600.0);
  EXPECT_DOUBLE_EQ(timeline.peak_rate(), 600.0);
}

TEST(RateTimelineTest, GapsAreZeroBuckets) {
  RateTimeline timeline(1.0);
  timeline.record(0.5, 10);
  timeline.record(3.5, 10);
  const auto rates = timeline.rates();
  ASSERT_EQ(rates.size(), 4U);
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
  EXPECT_DOUBLE_EQ(rates[2], 0.0);
}

TEST(RateTimelineTest, MeanActiveRateIgnoresIdleBuckets) {
  RateTimeline timeline(1.0);
  timeline.record(0.0, 100);
  timeline.record(5.0, 300);
  EXPECT_DOUBLE_EQ(timeline.mean_active_rate(), 200.0);
}

TEST(RateTimelineTest, EmptyTimeline) {
  RateTimeline timeline(1.0);
  EXPECT_EQ(timeline.bucket_count(), 0U);
  EXPECT_DOUBLE_EQ(timeline.peak_rate(), 0.0);
  EXPECT_DOUBLE_EQ(timeline.mean_active_rate(), 0.0);
  EXPECT_TRUE(timeline.sparkline().empty());
}

TEST(RateTimelineTest, SparklineScalesToPeak) {
  RateTimeline timeline(1.0);
  timeline.record(0.0, 800);   // peak -> '@'
  timeline.record(1.0, 100);   // 1/8 of peak -> lowest non-empty level
  timeline.record(3.0, 400);   // half of peak
  const std::string line = timeline.sparkline();
  ASSERT_EQ(line.size(), 4U);
  EXPECT_EQ(line[0], '@');
  EXPECT_EQ(line[2], ' ');  // empty bucket
  EXPECT_NE(line[1], ' ');
  EXPECT_LT(line[1], line[3]);  // ramp characters are ordered by intensity
}

TEST(RateTimelineTest, CsvHasOneRowPerBucket) {
  RateTimeline timeline(2.0);
  timeline.record(0.0, 10);
  timeline.record(2.5, 30);
  const std::string csv = timeline.to_csv("run");
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
  EXPECT_NE(csv.find("run,0,5.0"), std::string::npos);
  EXPECT_NE(csv.find("run,1,15.0"), std::string::npos);
}

TEST(RateTimelineTest, CsvEscapesHostileLabels) {
  RateTimeline timeline(1.0);
  timeline.record(0.0, 10);
  const auto rows = parse_csv(timeline.to_csv("2 NICs, pinned"));
  ASSERT_EQ(rows.size(), 1U);
  ASSERT_EQ(rows[0].size(), 3U);
  EXPECT_EQ(rows[0][0], "2 NICs, pinned");
  EXPECT_EQ(rows[0][1], "0");
}

// Regression: record() used to funnel hostile timestamps straight into a
// vector resize — a NaN or a 1e12 s sample could throw bad_alloc mid-run.
TEST(RateTimelineTest, RecordRejectsHostileTimestamps) {
  RateTimeline timeline(1.0);
  EXPECT_EQ(timeline.record(std::nan(""), 10).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(timeline.record(std::numeric_limits<double>::infinity(), 10).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(timeline.record(-1.0, 10).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(timeline.record(1e12, 10).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(timeline.bucket_count(), 0U);  // rejected samples leave no trace
}

TEST(RateTimelineTest, TinyNegativeTimesClampToZero) {
  RateTimeline timeline(1.0);
  // Float rounding of "now - start" can land a hair below zero; that is a
  // bucket-0 sample, not an error.
  EXPECT_TRUE(timeline.record(-1e-9, 42).is_ok());
  ASSERT_EQ(timeline.bucket_count(), 1U);
  EXPECT_DOUBLE_EQ(timeline.rates()[0], 42.0);
}

TEST(RateTimelineTest, AllZeroBucketsSparklineIsBlank) {
  RateTimeline timeline(1.0);
  EXPECT_TRUE(timeline.record(0.5, 0).is_ok());
  EXPECT_TRUE(timeline.record(2.5, 0).is_ok());
  const std::string line = timeline.sparkline();
  ASSERT_EQ(line.size(), 3U);
  EXPECT_EQ(line, "   ");  // zero peak must not divide by zero
}

}  // namespace
}  // namespace numastream
