// Gray-failure detection and planned live stream handoff (DESIGN.md §13):
// the two-channel PeerFailureDetector's degraded verdict, the rebalancing
// policy (hysteresis, cooldown, concurrency cap, degraded-drain priority),
// the three-phase PREPARE -> JOURNAL -> COMMIT handoff protocol with its
// epoch fence, mid-handoff chaos degrading cleanly to crash failover, the
// `rebalance` config directive, and the simulated cluster's bit-identical
// gray-drain fingerprint.
//
// Everything here is deterministic: flapping links, slow boxes and
// mid-handoff deaths are driven by the test (or a seeded schedule), so a
// failing run replays bit-identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/failover.h"
#include "cluster/rebalance.h"
#include "cluster/replication.h"
#include "cluster/ring.h"
#include "common/rng.h"
#include "core/config.h"
#include "core/config_generator.h"
#include "core/journal.h"
#include "metrics/federation_counters.h"
#include "msg/message.h"
#include "simrt/driver.h"
#include "topo/topology.h"

namespace numastream {
namespace {

using cluster::FailoverCoordinator;
using cluster::GatewayLoad;
using cluster::GatewayRing;
using cluster::HandoffSource;
using cluster::HandoffTarget;
using cluster::PeerFailureDetector;
using cluster::PeerHealth;
using cluster::RebalanceController;
using cluster::RebalanceDecision;
using cluster::StandbySession;

constexpr std::uint64_t kSession = 42;

ClusterConfig two_gateway_cluster() {
  ClusterConfig config;
  config.gateways = 2;
  config.self = 0;
  config.heartbeat_ms = 10;
  config.miss_windows = 2;
  return config;
}

RebalanceConfig enabled_rebalance() {
  RebalanceConfig config;
  config.window_ms = 10;
  config.imbalance_ratio = 1.5;
  config.hysteresis_windows = 2;
  config.cooldown_windows = 3;
  config.max_concurrent = 1;
  return config;
}

// ------------------------------------------------------- config directive

NodeConfig rebalancing_receiver_config() {
  NodeConfig config;
  config.node_name = "handoff-receiver";
  config.role = NodeRole::kReceiver;
  config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 1},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 1},
  };
  config.recovery.reconnect = true;
  config.resume.session = kSession;
  config.cluster.gateways = 2;
  config.cluster.self = 0;
  return config;
}

TEST(RebalanceConfigTest, AbsentDirectiveIsByteIdentical) {
  NodeConfig config = rebalancing_receiver_config();
  config.rebalance = RebalanceConfig{};
  const std::string text = config.serialize();
  EXPECT_EQ(text.find("rebalance"), std::string::npos)
      << "default rebalance config must not serialize a directive";
  auto parsed = NodeConfig::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_TRUE(parsed.value().rebalance.is_default());
  EXPECT_FALSE(parsed.value().rebalance.enabled());
  EXPECT_EQ(parsed.value().serialize(), text);
}

TEST(RebalanceConfigTest, SerializeParseRoundTrip) {
  NodeConfig config = rebalancing_receiver_config();
  config.rebalance.window_ms = 200;
  config.rebalance.imbalance_ratio = 2.0;
  config.rebalance.hysteresis_windows = 3;
  config.rebalance.cooldown_windows = 7;
  config.rebalance.max_concurrent = 2;
  config.rebalance.drain_degraded = false;
  const std::string text = config.serialize();
  EXPECT_NE(text.find("rebalance window_ms=200"), std::string::npos);
  auto parsed = NodeConfig::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().rebalance, config.rebalance);
  EXPECT_EQ(parsed.value().serialize(), text);
}

TEST(RebalanceConfigTest, DuplicateDirectiveIsAParseError) {
  NodeConfig config = rebalancing_receiver_config();
  config.rebalance.window_ms = 100;
  std::string text = config.serialize();
  text += "rebalance window_ms=50\n";
  auto parsed = NodeConfig::parse(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().to_string().find("duplicate 'rebalance'"),
            std::string::npos)
      << parsed.status().to_string();
}

TEST(RebalanceConfigTest, ValidationBoundaries) {
  auto topo = lynxdtn_topology();

  NodeConfig ok = rebalancing_receiver_config();
  ok.rebalance.window_ms = 100;
  EXPECT_TRUE(ok.validate(topo).is_ok()) << ok.validate(topo).to_string();

  // Any knob moved without a window is half-configured, not off.
  NodeConfig no_window = rebalancing_receiver_config();
  no_window.rebalance.imbalance_ratio = 2.0;
  EXPECT_FALSE(no_window.validate(topo).is_ok());

  NodeConfig bad_ratio = rebalancing_receiver_config();
  bad_ratio.rebalance.window_ms = 100;
  bad_ratio.rebalance.imbalance_ratio = 1.0;  // threshold at the mean
  EXPECT_FALSE(bad_ratio.validate(topo).is_ok());

  NodeConfig no_hysteresis = rebalancing_receiver_config();
  no_hysteresis.rebalance.window_ms = 100;
  no_hysteresis.rebalance.hysteresis_windows = 0;
  EXPECT_FALSE(no_hysteresis.validate(topo).is_ok());

  NodeConfig no_cooldown = rebalancing_receiver_config();
  no_cooldown.rebalance.window_ms = 100;
  no_cooldown.rebalance.cooldown_windows = 0;
  EXPECT_FALSE(no_cooldown.validate(topo).is_ok());

  NodeConfig no_slots = rebalancing_receiver_config();
  no_slots.rebalance.window_ms = 100;
  no_slots.rebalance.max_concurrent = 0;
  EXPECT_FALSE(no_slots.validate(topo).is_ok());

  // Rebalancing moves streams between gateways: it needs a cluster.
  NodeConfig no_cluster = rebalancing_receiver_config();
  no_cluster.cluster = ClusterConfig{};
  no_cluster.rebalance.window_ms = 100;
  EXPECT_FALSE(no_cluster.validate(topo).is_ok());
}

// --------------------------------------------------- gray-failure verdict

TEST(GrayFailureDetectorTest, SlowButAlivePeerIsDegradedNotDead) {
  FederationCounters fed;
  PeerFailureDetector detector(two_gateway_cluster(), &fed);
  const int peer = detector.track("gateway1");

  // Healthy windows seed both channels' baselines.
  for (int window = 0; window < 3; ++window) {
    EXPECT_EQ(detector.observe_window(peer, 1.0, 1.0), PeerHealth::kHealthy);
  }
  // The peer keeps answering every probe, 4x slower than nominal. Even
  // though 0.25 breaches the latency channel's *failed* ratio, liveness is
  // intact — the verdict is degraded, and crash failover must not fire.
  PeerHealth verdict = PeerHealth::kHealthy;
  for (int window = 0; window < 4; ++window) {
    verdict = detector.observe_window(peer, 1.0, 0.25);
    EXPECT_FALSE(detector.dead(peer));
  }
  EXPECT_EQ(verdict, PeerHealth::kDegraded);
  EXPECT_TRUE(detector.degraded(peer));
  EXPECT_EQ(fed.snapshot().degraded_peers_detected, 1U);
  EXPECT_EQ(fed.snapshot().peer_failures_detected, 0U);

  // Staying degraded is one episode, not one detection per window.
  detector.observe_window(peer, 1.0, 0.25);
  EXPECT_EQ(fed.snapshot().degraded_peers_detected, 1U);
}

TEST(GrayFailureDetectorTest, DegradedPeerRecoversWithHysteresis) {
  ClusterConfig config = two_gateway_cluster();
  PeerFailureDetector detector(config);
  const int peer = detector.track("gateway1");

  for (int window = 0; window < 3; ++window) {
    detector.observe_window(peer, 1.0, 1.0);
  }
  for (int window = 0; window < 3; ++window) {
    detector.observe_window(peer, 1.0, 0.5);
  }
  ASSERT_TRUE(detector.degraded(peer));

  // One clean window is not a recovery (hysteresis both ways).
  detector.observe_window(peer, 1.0, 1.0);
  EXPECT_TRUE(detector.degraded(peer));
  // miss_windows consecutive clean windows re-promote.
  detector.observe_window(peer, 1.0, 1.0);
  EXPECT_EQ(detector.health(peer), PeerHealth::kHealthy);
}

// The anti-flap regression: a link that oscillates between slow and nominal
// every few windows must settle into the degraded state — never escalate to
// a spurious dead-peer failover, and never trigger more than one rebalance
// per cooldown window.
TEST(GrayFailureDetectorTest, FlappingLinkSettlesDegradedNeverDead) {
  ClusterConfig cluster = two_gateway_cluster();
  RebalanceConfig policy = enabled_rebalance();
  policy.cooldown_windows = 5;

  FederationCounters fed;
  PeerFailureDetector detector(cluster, &fed);
  const int self_peer = detector.track("gateway0");
  const int peer = detector.track("gateway1");
  RebalanceController controller(policy, /*gateways=*/2, &fed);

  // Seed the baselines, then flap: a seeded schedule of slow bursts with
  // the occasional nominal window — never two consecutive clean windows, so
  // the latency channel can never fully recover.
  for (int window = 0; window < 3; ++window) {
    detector.observe_window(self_peer, 1.0, 1.0);
    detector.observe_window(peer, 1.0, 1.0);
  }
  Rng rng(0xF1A9);
  constexpr int kWindows = 60;
  int degraded_windows = 0;
  std::vector<int> trigger_windows;
  for (int window = 0; window < kWindows; ++window) {
    const bool slow = rng.next_u64() % 3 != 0;  // flap: ~2/3 slow windows
    detector.observe_window(self_peer, 1.0, 1.0);
    const PeerHealth verdict =
        detector.observe_window(peer, 1.0, slow ? 0.4 : 1.0);
    ASSERT_NE(verdict, PeerHealth::kDead)
        << "a flapping-but-alive link must never look dead (window "
        << window << ")";
    degraded_windows += verdict == PeerHealth::kDegraded ? 1 : 0;

    // Drive the rebalancer off the verdicts: the flapping peer always has
    // work queued, so every degraded window is a drain candidate.
    std::vector<GatewayLoad> loads(2);
    loads[1].queue_depth = 4;
    const std::vector<PeerHealth> health = {detector.health(self_peer),
                                            verdict};
    if (auto decision = controller.observe_window(loads, health)) {
      trigger_windows.push_back(window);
      controller.handoff_finished();
    }
  }

  // The flap settles into degraded, not healthy-dead oscillation.
  EXPECT_GT(degraded_windows, kWindows / 2);
  EXPECT_EQ(fed.snapshot().peer_failures_detected, 0U);
  // At most one trigger per cooldown window, enforced pairwise.
  for (std::size_t i = 1; i < trigger_windows.size(); ++i) {
    EXPECT_GE(trigger_windows[i] - trigger_windows[i - 1],
              policy.cooldown_windows)
        << "triggers " << i - 1 << " and " << i << " inside one cooldown";
  }
  EXPECT_LE(trigger_windows.size(),
            static_cast<std::size_t>(kWindows / policy.cooldown_windows) + 1);
}

// ------------------------------------------------------ controller policy

std::vector<GatewayLoad> skewed_loads(double hot, double cool, double third) {
  std::vector<GatewayLoad> loads(3);
  loads[0].gbps = hot;
  loads[1].gbps = cool;
  loads[2].gbps = third;
  return loads;
}

const std::vector<PeerHealth> kAllHealthy = {
    PeerHealth::kHealthy, PeerHealth::kHealthy, PeerHealth::kHealthy};

TEST(RebalanceControllerTest, HysteresisHoldsBackASingleSpike) {
  RebalanceController controller(enabled_rebalance(), 3);
  const auto hot = skewed_loads(9.0, 1.0, 2.0);  // mean 4, 9 > 1.5 * 4
  const auto calm = skewed_loads(3.0, 3.0, 3.0);

  // One spike, then calm: the streak resets, nothing moves.
  EXPECT_FALSE(controller.observe_window(hot, kAllHealthy).has_value());
  EXPECT_FALSE(controller.observe_window(calm, kAllHealthy).has_value());
  EXPECT_FALSE(controller.observe_window(hot, kAllHealthy).has_value());
  // The second *consecutive* breach engages, to the coolest gateway.
  const auto decision = controller.observe_window(hot, kAllHealthy);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->source, 0U);
  EXPECT_EQ(decision->target, 1U);
  EXPECT_FALSE(decision->degraded_drain);
}

TEST(RebalanceControllerTest, CooldownSpacesOutTriggers) {
  RebalanceConfig policy = enabled_rebalance();
  FederationCounters fed;
  RebalanceController controller(policy, 3, &fed);
  const auto hot = skewed_loads(9.0, 1.0, 2.0);

  std::vector<int> trigger_windows;
  for (int window = 0; window < 20; ++window) {
    if (controller.observe_window(hot, kAllHealthy)) {
      trigger_windows.push_back(window);
      controller.handoff_finished();
    }
  }
  ASSERT_GE(trigger_windows.size(), 2U);
  for (std::size_t i = 1; i < trigger_windows.size(); ++i) {
    EXPECT_GE(trigger_windows[i] - trigger_windows[i - 1],
              policy.cooldown_windows);
  }
  EXPECT_EQ(fed.snapshot().rebalance_triggers, trigger_windows.size());
}

TEST(RebalanceControllerTest, MaxConcurrentCapsInFlightHandoffs) {
  RebalanceController controller(enabled_rebalance(), 3);
  const auto hot = skewed_loads(9.0, 1.0, 2.0);

  std::optional<RebalanceDecision> first;
  int window = 0;
  while (!first && window < 10) {
    first = controller.observe_window(hot, kAllHealthy);
    ++window;
  }
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(controller.handoffs_in_flight(), 1);

  // The slot stays occupied: no second trigger, no matter how hot.
  for (int extra = 0; extra < 20; ++extra) {
    EXPECT_FALSE(controller.observe_window(hot, kAllHealthy).has_value());
  }
  // Freeing the slot re-enables the policy.
  controller.handoff_finished();
  std::optional<RebalanceDecision> second;
  for (int extra = 0; extra < 10 && !second; ++extra) {
    second = controller.observe_window(hot, kAllHealthy);
  }
  EXPECT_TRUE(second.has_value());
}

TEST(RebalanceControllerTest, DegradedSourceOutranksLoadSkew) {
  RebalanceController controller(enabled_rebalance(), 3);
  // Gateway 0 is by far the hottest, but gateway 2 is gray-failed with
  // streams still queued on it: the stronger signal wins.
  auto loads = skewed_loads(9.0, 1.0, 2.0);
  loads[2].queue_depth = 3;
  const std::vector<PeerHealth> health = {
      PeerHealth::kHealthy, PeerHealth::kHealthy, PeerHealth::kDegraded};

  std::optional<RebalanceDecision> decision;
  for (int window = 0; window < 5 && !decision; ++window) {
    decision = controller.observe_window(loads, health);
  }
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->source, 2U);
  EXPECT_TRUE(decision->degraded_drain);
  EXPECT_EQ(decision->target, 1U) << "coolest healthy gateway";
}

TEST(RebalanceControllerTest, DrainedDegradedPeerIsNotRetriggered) {
  RebalanceController controller(enabled_rebalance(), 3);
  // Gray-failed but already empty: nothing to move, and the load is
  // balanced — re-triggering would burn the cooldown for no work.
  auto loads = skewed_loads(3.0, 3.0, 3.0);
  const std::vector<PeerHealth> health = {
      PeerHealth::kHealthy, PeerHealth::kHealthy, PeerHealth::kDegraded};
  for (int window = 0; window < 10; ++window) {
    EXPECT_FALSE(controller.observe_window(loads, health).has_value());
  }
}

TEST(RebalanceControllerTest, DeadPeersAreNeitherSourceNorTarget) {
  RebalanceController controller(enabled_rebalance(), 3);
  // Gateway 2 is dead with a huge last-known load: crash failover's
  // problem, not the rebalancer's.
  auto loads = skewed_loads(4.0, 4.0, 100.0);
  const std::vector<PeerHealth> dead_third = {
      PeerHealth::kHealthy, PeerHealth::kHealthy, PeerHealth::kDead};
  for (int window = 0; window < 10; ++window) {
    EXPECT_FALSE(controller.observe_window(loads, dead_third).has_value());
  }

  // A hot source with no healthy peer to receive: nothing moves.
  RebalanceController cornered(enabled_rebalance(), 3);
  const auto hot = skewed_loads(9.0, 1.0, 2.0);
  const std::vector<PeerHealth> no_target = {
      PeerHealth::kHealthy, PeerHealth::kDead, PeerHealth::kDegraded};
  for (int window = 0; window < 10; ++window) {
    EXPECT_FALSE(cornered.observe_window(hot, no_target).has_value());
  }
}

// ------------------------------------------------------ handoff protocol

/// Routes the source's HANDOFF frames straight into a HandoffTarget — the
/// in-process stand-in for the gateway-to-gateway control link. Can be told
/// to kill the link after N exchanges (the target "dies" mid-handoff).
class HandoffLink final : public cluster::ReplicationTransport {
 public:
  explicit HandoffLink(HandoffTarget& target) : target_(target) {}

  void die_after(int exchanges) { die_after_ = exchanges; }

  Result<Message> exchange(const Message& frame) override {
    if (die_after_ >= 0 && exchanges_ >= die_after_) {
      ++exchanges_;
      return unavailable_error("handoff link: peer is gone");
    }
    ++exchanges_;
    return target_.handle(frame);
  }

 private:
  HandoffTarget& target_;
  int exchanges_ = 0;
  int die_after_ = -1;
};

TEST(HandoffProtocolTest, ThreePhaseHappyPathPromotesTheStandby) {
  MemoryJournalMedia replica;
  FederationCounters fed;
  StandbySession standby(replica, kSession, &fed);
  HandoffTarget target(standby, kSession, /*self=*/1, &fed);
  HandoffLink link(target);
  HandoffSource source(link, kSession, &fed);

  std::vector<std::string> order;
  std::uint64_t fenced_epoch = 0;
  HandoffSource::Hooks hooks;
  hooks.freeze_and_drain = [&] {
    order.push_back("freeze");
    return Status::ok();
  };
  hooks.flush_and_replicate = [&] {
    order.push_back("flush");
    return Status::ok();
  };
  hooks.fenced = [&](std::uint64_t epoch) {
    order.push_back("fenced");
    fenced_epoch = epoch;
  };

  const std::uint64_t old_epoch = standby.epoch();
  const Status done = source.run(/*stream_id=*/3, /*source=*/0, /*target=*/1,
                                 old_epoch, /*watermark=*/128, hooks);
  ASSERT_TRUE(done.is_ok()) << done.to_string();

  // The local work ran in protocol order, the commit promoted the standby,
  // and the fence handed the source the target's new epoch.
  EXPECT_EQ(order, (std::vector<std::string>{"freeze", "flush", "fenced"}));
  EXPECT_TRUE(target.committed());
  EXPECT_EQ(target.committed_watermark(), 128U);
  EXPECT_GT(standby.epoch(), old_epoch);
  EXPECT_EQ(fenced_epoch, standby.epoch());

  const FederationCountersSnapshot snapshot = fed.snapshot();
  EXPECT_EQ(snapshot.handoffs_planned, 1U);
  EXPECT_EQ(snapshot.handoffs_completed, 1U);
  EXPECT_EQ(snapshot.handoff_streams_moved, 1U);
  EXPECT_EQ(snapshot.handoffs_aborted, 0U);
}

TEST(HandoffProtocolTest, TargetRejectsProtocolViolations) {
  MemoryJournalMedia replica;
  StandbySession standby(replica, kSession);
  HandoffTarget target(standby, kSession, /*self=*/1);

  const std::uint64_t epoch_before = standby.epoch();
  HandoffInfo info;
  info.session_id = kSession;
  info.stream_id = 3;
  info.target_gateway = 1;

  // JOURNAL and COMMIT without the preceding phase are rejected.
  info.phase = HandoffPhase::kJournal;
  EXPECT_FALSE(target.handle(Message::handoff_frame(info)).ok());
  info.phase = HandoffPhase::kCommit;
  EXPECT_FALSE(target.handle(Message::handoff_frame(info)).ok());

  // Wrong session and wrong addressee are protocol violations too.
  info.phase = HandoffPhase::kPrepare;
  info.session_id = kSession + 1;
  EXPECT_FALSE(target.handle(Message::handoff_frame(info)).ok());
  info.session_id = kSession;
  info.target_gateway = 2;
  EXPECT_FALSE(target.handle(Message::handoff_frame(info)).ok());

  // Nothing of the above moved ownership.
  EXPECT_FALSE(target.committed());
  EXPECT_EQ(standby.epoch(), epoch_before);
}

TEST(HandoffProtocolTest, FreshPrepareSupersedesAStaleHandoff) {
  MemoryJournalMedia replica;
  StandbySession standby(replica, kSession);
  HandoffTarget target(standby, kSession, /*self=*/1);

  HandoffInfo stale;
  stale.session_id = kSession;
  stale.stream_id = 3;
  stale.target_gateway = 1;
  stale.phase = HandoffPhase::kPrepare;
  ASSERT_TRUE(target.handle(Message::handoff_frame(stale)).ok());

  // The source died and came back with a new handoff for another stream:
  // the fresh PREPARE wins, and the old stream's JOURNAL is now stale.
  HandoffInfo fresh = stale;
  fresh.stream_id = 5;
  fresh.watermark = 64;
  ASSERT_TRUE(target.handle(Message::handoff_frame(fresh)).ok());
  HandoffInfo stale_journal = stale;
  stale_journal.phase = HandoffPhase::kJournal;
  EXPECT_FALSE(target.handle(Message::handoff_frame(stale_journal)).ok());

  HandoffInfo fresh_journal = fresh;
  fresh_journal.phase = HandoffPhase::kJournal;
  ASSERT_TRUE(target.handle(Message::handoff_frame(fresh_journal)).ok());
  HandoffInfo commit = fresh;
  commit.phase = HandoffPhase::kCommit;
  ASSERT_TRUE(target.handle(Message::handoff_frame(commit)).ok());
  EXPECT_TRUE(target.committed());
  EXPECT_EQ(target.committed_watermark(), 64U);
}

// ------------------------------------------------------ mid-handoff chaos

// The composition the design promises: a target death after the journal
// shipped but before ownership transferred leaves the source the owner,
// and the cluster falls back to plain crash-failover rules — no window
// with two owners, none with zero.
TEST(ChaosHandoffTest, TargetDeathBeforeCommitFallsBackToCrashFailover) {
  MemoryJournalMedia replica;
  FederationCounters fed;
  StandbySession standby(replica, kSession, &fed);
  HandoffTarget target(standby, kSession, /*self=*/1, &fed);
  HandoffLink link(target);
  // PREPARE and JOURNAL exchange fine; the target dies before COMMIT.
  link.die_after(2);
  HandoffSource source(link, kSession, &fed);

  bool fenced = false;
  HandoffSource::Hooks hooks;
  hooks.fenced = [&](std::uint64_t) { fenced = true; };

  const std::uint64_t old_epoch = standby.epoch();
  const Status done = source.run(/*stream_id=*/3, /*source=*/0, /*target=*/1,
                                 old_epoch, /*watermark=*/128, hooks);
  ASSERT_FALSE(done.is_ok());

  // Ownership never moved: the source was not fenced, the standby was not
  // promoted, and the abort is on the ledger.
  EXPECT_FALSE(fenced);
  EXPECT_FALSE(target.committed());
  EXPECT_EQ(standby.epoch(), old_epoch);
  const FederationCountersSnapshot snapshot = fed.snapshot();
  EXPECT_EQ(snapshot.handoffs_planned, 1U);
  EXPECT_EQ(snapshot.handoffs_completed, 0U);
  EXPECT_GE(snapshot.handoffs_aborted, 1U);

  // The coordinator's view composes the same way: no handoff was noted, so
  // the stream resolves by the ring; the dead target then takes the normal
  // crash-failover path.
  const GatewayRing ring(2, 16);
  FailoverCoordinator on_source(ring, /*self=*/0, &fed);
  std::uint32_t stream = 0;
  while (ring.primary(stream) != 0) {
    ++stream;
  }
  auto where = on_source.resolve(stream);
  ASSERT_TRUE(where.ok());
  EXPECT_EQ(where.value(), 0U);
  const auto adopted = on_source.plan_takeover(/*victim=*/1, {stream});
  EXPECT_TRUE(adopted.empty()) << "the stream never left the source";
  auto still = on_source.resolve(stream);
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still.value(), 0U);
}

TEST(ChaosHandoffTest, CommitAckMustAdvanceTheEpochFence) {
  // A target that acks COMMIT without promoting (a broken or byzantine
  // standby) must not fence the source: echoing the old epoch is treated
  // as data loss and aborts the handoff.
  class EchoingLink final : public cluster::ReplicationTransport {
   public:
    Result<Message> exchange(const Message& frame) override {
      auto parsed = parse_handoff_body(
          ByteSpan(frame.body.data(), frame.body.size()));
      if (!parsed.ok()) {
        return parsed.status();
      }
      HandoffInfo ack = parsed.value();
      if (ack.phase == HandoffPhase::kAbort) {
        ++aborts_seen_;
      }
      ack.phase = HandoffPhase::kAck;  // note: epoch echoed, never advanced
      return Message::handoff_frame(ack, frame.sequence);
    }
    int aborts_seen_ = 0;
  };

  EchoingLink link;
  FederationCounters fed;
  HandoffSource source(link, kSession, &fed);
  bool fenced = false;
  HandoffSource::Hooks hooks;
  hooks.fenced = [&](std::uint64_t) { fenced = true; };
  const Status done = source.run(3, 0, 1, /*epoch=*/7, 128, hooks);
  ASSERT_FALSE(done.is_ok());
  EXPECT_EQ(done.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(fenced);
  EXPECT_EQ(link.aborts_seen_, 1);
  EXPECT_EQ(fed.snapshot().handoffs_aborted, 1U);
}

TEST(ChaosHandoffTest, ForgedHighEpochCannotStealTheFence) {
  // A source that forges an epoch above anything the standby will actually
  // grant must not walk away believing it was fenced: the COMMIT promotion
  // yields a genuine epoch below the forged claim, the advance check
  // rejects it as data loss, and the fenced hook never fires — a forged
  // number buys an abort, not an ownership transfer.
  MemoryJournalMedia replica;
  FederationCounters fed;
  StandbySession standby(replica, kSession, &fed);
  HandoffTarget target(standby, kSession, /*self=*/1, &fed);
  HandoffLink link(target);
  HandoffSource source(link, kSession, &fed);

  bool fenced = false;
  HandoffSource::Hooks hooks;
  hooks.fenced = [&](std::uint64_t) { fenced = true; };
  const Status done = source.run(/*stream_id=*/3, /*source=*/0, /*target=*/1,
                                 /*epoch=*/9001, /*watermark=*/64, hooks);
  ASSERT_FALSE(done.is_ok());
  EXPECT_EQ(done.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(fenced);
  EXPECT_LT(standby.epoch(), 9001U);
  // Source and target share the counters here, and each side counts the
  // abort it saw: the source's decision and the target's ABORT frame.
  EXPECT_EQ(fed.snapshot().handoffs_aborted, 2U);
}

// The coordinator's pin: a committed handoff overrides the ring while the
// new owner lives, and degrades to the ring answer the moment it dies.
TEST(ChaosHandoffTest, HandoffPinFallsBackToTheRingWhenTheOwnerDies) {
  const GatewayRing ring(2, 16);
  FederationCounters fed;
  FailoverCoordinator coordinator(ring, /*self=*/0, &fed);
  std::uint32_t stream = 0;
  while (ring.primary(stream) != 0) {
    ++stream;
  }

  const std::uint64_t epoch = coordinator.note_handoff(stream, /*target=*/1);
  EXPECT_EQ(epoch, 2U);
  auto moved = coordinator.resolve(stream);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), 1U);

  // The new owner dies: the pin is void, the ring answer (the original
  // primary) takes back over — exactly the crash-failover fallback.
  coordinator.mark_dead(1);
  auto back = coordinator.resolve(stream);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), 0U);
}

// ------------------------------------------------------------- simulation

using simrt::ExperimentOptions;
using simrt::ExperimentResult;
using simrt::run_plan;

Result<ExperimentResult> run_sim(const ExperimentOptions& options,
                                 int num_streams = 2) {
  const MachineTopology lynx = lynxdtn_topology();
  const std::vector<MachineTopology> senders(
      static_cast<std::size_t>(num_streams), updraft_topology());
  ConfigGenerator generator(lynx, senders);
  WorkloadSpec workload;
  workload.num_streams = num_streams;
  auto plan = generator.generate(workload, PlacementStrategy::kNumaAware);
  NS_CHECK(plan.ok(), "plan generation must succeed");
  return run_plan(senders, lynx, plan.value(), options);
}

ExperimentOptions clustered_options() {
  ExperimentOptions options;
  options.chunks_per_stream = 120;
  options.resume = true;
  options.cluster.gateways = 2;
  options.cluster.self = 0;
  options.cluster.miss_windows = 2;
  return options;
}

TEST(SimRebalanceTest, RebalanceRequiresACluster) {
  ExperimentOptions options;
  options.chunks_per_stream = 30;
  options.resume = true;
  options.rebalance.window_ms = 10;
  EXPECT_FALSE(run_sim(options).ok());
}

TEST(SimRebalanceTest, DegradeEventsAreValidated) {
  ExperimentOptions no_cluster;
  no_cluster.chunks_per_stream = 30;
  no_cluster.resume = true;
  no_cluster.gateway_degrades = {{.gateway = 0, .at_seconds = 0.001}};
  EXPECT_FALSE(run_sim(no_cluster).ok());

  ExperimentOptions bad_factor = clustered_options();
  bad_factor.gateway_degrades = {
      {.gateway = 0, .at_seconds = 0.001, .slow_factor = 1.5}};
  EXPECT_FALSE(run_sim(bad_factor).ok());

  ExperimentOptions bad_member = clustered_options();
  bad_member.gateway_degrades = {{.gateway = 5, .at_seconds = 0.001}};
  EXPECT_FALSE(run_sim(bad_member).ok());

  ExperimentOptions bad_span = clustered_options();
  bad_span.gateway_degrades = {
      {.gateway = 0, .at_seconds = 0.002, .until_seconds = 0.001}};
  EXPECT_FALSE(run_sim(bad_span).ok());
}

TEST(SimRebalanceTest, SeededGrayDrainIsBitIdenticalWithZeroReplay) {
  // Probe the failure-free clustered run for its span, then scale the
  // heartbeat so detection and rebalancing land well inside the transfer.
  ExperimentOptions options = clustered_options();
  auto probe = run_sim(options);
  ASSERT_TRUE(probe.ok()) << probe.status().to_string();
  const double elapsed = probe.value().elapsed_seconds;
  ASSERT_GT(elapsed, 0);
  options.cluster.heartbeat_ms = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(elapsed * 1000.0 / 60.0)));

  const GatewayRing ring(options.cluster.gateways, options.cluster.vnodes);
  const std::uint32_t victim = ring.primary(0);
  options.gateway_degrades = {
      {.gateway = victim, .at_seconds = elapsed / 3, .slow_factor = 0.25}};
  options.rebalance.window_ms = options.cluster.heartbeat_ms;
  options.rebalance.hysteresis_windows = 2;
  options.rebalance.cooldown_windows = 5;
  options.handoff_seconds = elapsed / 100;

  auto first = run_sim(options);
  auto second = run_sim(options);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  ASSERT_TRUE(second.ok()) << second.status().to_string();

  // The fingerprint: same seeded schedule, bit-identical ledgers.
  EXPECT_TRUE(first.value().federation == second.value().federation)
      << first.value().federation.to_string() << " vs "
      << second.value().federation.to_string();
  EXPECT_TRUE(first.value().resume == second.value().resume);
  EXPECT_EQ(first.value().stream_gateways, second.value().stream_gateways);

  // The gray failure was detected as degraded, never as a death, and the
  // drain was a planned handoff: zero replays, zero crash failovers.
  const FederationCountersSnapshot& fed = first.value().federation;
  EXPECT_GE(fed.degraded_peers_detected, 1U);
  EXPECT_EQ(fed.peer_failures_detected, 0U);
  EXPECT_EQ(fed.failovers, 0U);
  EXPECT_GE(fed.rebalance_triggers, 1U);
  EXPECT_EQ(fed.handoffs_planned, fed.handoffs_completed);
  EXPECT_GE(fed.handoffs_completed, 1U);
  EXPECT_EQ(fed.handoffs_aborted, 0U);
  EXPECT_GE(fed.epoch, 2U);
  EXPECT_EQ(first.value().resume.replayed_chunks, 0U);
  EXPECT_EQ(first.value().resume.rework_bytes, 0U);

  // Exactly-once delivery held across the move, and the degraded gateway
  // ended the run drained.
  for (const auto& stream : first.value().streams) {
    EXPECT_EQ(stream.chunks, options.chunks_per_stream);
  }
  std::uint64_t still_on_victim = 0;
  for (const std::uint32_t gateway : first.value().stream_gateways) {
    still_on_victim += gateway == victim ? 1 : 0;
  }
  std::uint64_t originally_on_victim = 0;
  for (std::uint32_t stream = 0; stream < 2; ++stream) {
    originally_on_victim += ring.primary(stream) == victim ? 1 : 0;
  }
  EXPECT_LT(still_on_victim, originally_on_victim);
}

TEST(SimRebalanceTest, NewOwnerCrashAfterHandoffFallsBackToCrashFailover) {
  // The full chaos composition on the simulated cluster: a gray failure
  // triggers a planned handoff, then the gateway that *adopted* the stream
  // dies — the pin is void, crash failover takes over, and exactly-once
  // holds across both mechanisms. The overload protections stay on so the
  // run also proves the budget/credit ledgers settle (a leaked token would
  // deadlock the pipeline, a negative one would overrun the budget).
  ExperimentOptions options = clustered_options();
  auto probe = run_sim(options);
  ASSERT_TRUE(probe.ok()) << probe.status().to_string();
  const double elapsed = probe.value().elapsed_seconds;
  options.cluster.heartbeat_ms = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(elapsed * 1000.0 / 60.0)));

  const GatewayRing ring(options.cluster.gateways, options.cluster.vnodes);
  const std::uint32_t victim = ring.primary(0);
  const std::uint32_t adopter = 1 - victim;  // two-gateway ring
  options.gateway_degrades = {
      {.gateway = victim, .at_seconds = elapsed / 4, .slow_factor = 0.25}};
  options.rebalance.window_ms = options.cluster.heartbeat_ms;
  options.rebalance.hysteresis_windows = 2;
  options.rebalance.cooldown_windows = 5;
  options.handoff_seconds = elapsed / 100;
  options.gateway_crashes = {{.gateway = adopter,
                              .at_seconds = 2 * elapsed / 3,
                              .failover_seconds = elapsed / 10}};
  options.credit_window_chunks = 6;
  options.queue_capacity = 8;

  auto first = run_sim(options);
  auto second = run_sim(options);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  ASSERT_TRUE(second.ok()) << second.status().to_string();
  EXPECT_TRUE(first.value().federation == second.value().federation)
      << first.value().federation.to_string() << " vs "
      << second.value().federation.to_string();
  EXPECT_TRUE(first.value().resume == second.value().resume);

  // Both mechanisms fired once each, in order: planned drain, then death.
  const FederationCountersSnapshot& fed = first.value().federation;
  EXPECT_GE(fed.handoffs_completed, 1U);
  EXPECT_EQ(fed.peer_failures_detected, 1U);
  EXPECT_EQ(fed.failovers, 1U);
  EXPECT_GE(fed.epoch, 3U);  // one bump per handoff + one for the death

  // Exactly-once across the union of handoff and failover: every chunk
  // delivered exactly once, the crash replays charged to the ledger.
  for (const auto& stream : first.value().streams) {
    EXPECT_EQ(stream.chunks, options.chunks_per_stream);
  }
  // Everything ends on the survivor — the degraded-but-alive gateway.
  for (const std::uint32_t gateway : first.value().stream_gateways) {
    EXPECT_EQ(gateway, victim);
  }
}

}  // namespace
}  // namespace numastream
