#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sim/allocator.h"
#include "sim/engine.h"
#include "sim/queue.h"

namespace numastream::sim {
namespace {

// ---------------------------------------------------------------- allocator

JobDemands job_on(int resource, double demand, double cap = 1e18) {
  return JobDemands{.demands = {Demand{resource, demand}}, .rate_cap = cap};
}

TEST(AllocatorTest, SingleJobTakesFullCapacity) {
  const auto rates = max_min_fair_rates({10.0}, {job_on(0, 1.0)});
  ASSERT_EQ(rates.size(), 1U);
  EXPECT_NEAR(rates[0], 10.0, 1e-9);
}

TEST(AllocatorTest, EqualJobsShareEqually) {
  const auto rates = max_min_fair_rates({12.0}, {job_on(0, 1.0), job_on(0, 1.0),
                                                 job_on(0, 1.0)});
  for (const double r : rates) {
    EXPECT_NEAR(r, 4.0, 1e-9);
  }
}

TEST(AllocatorTest, HeavierDemandGetsLowerShareOfResource) {
  // Job 1 needs 3 units/work: equal *rates* means job 1 uses 3x the resource.
  const auto rates = max_min_fair_rates({8.0}, {job_on(0, 1.0), job_on(0, 3.0)});
  EXPECT_NEAR(rates[0], 2.0, 1e-9);
  EXPECT_NEAR(rates[1], 2.0, 1e-9);
  // Feasibility: 2*1 + 2*3 = 8 = capacity.
}

TEST(AllocatorTest, UnconstrainedJobRisesToSecondBottleneck) {
  // Jobs 0,1 share resource 0 (cap 10); job 2 alone on resource 1 (cap 100).
  const auto rates = max_min_fair_rates(
      {10.0, 100.0}, {job_on(0, 1.0), job_on(0, 1.0), job_on(1, 1.0)});
  EXPECT_NEAR(rates[0], 5.0, 1e-9);
  EXPECT_NEAR(rates[1], 5.0, 1e-9);
  EXPECT_NEAR(rates[2], 100.0, 1e-9);
}

TEST(AllocatorTest, MultiResourceJobBoundByTightest) {
  // Job needs both resources; resource 1 is tighter (5/2 < 10/1).
  const auto rates = max_min_fair_rates(
      {10.0, 5.0}, {JobDemands{.demands = {Demand{0, 1.0}, Demand{1, 2.0}},
                               .rate_cap = 1e18}});
  EXPECT_NEAR(rates[0], 2.5, 1e-9);
}

TEST(AllocatorTest, FreedCapacityGoesToRemainingJobs) {
  // Job 0 capped at 1; jobs 1,2 then split the remaining 9 of resource 0.
  const auto rates = max_min_fair_rates(
      {10.0}, {job_on(0, 1.0, 1.0), job_on(0, 1.0), job_on(0, 1.0)});
  EXPECT_NEAR(rates[0], 1.0, 1e-9);
  EXPECT_NEAR(rates[1], 4.5, 1e-9);
  EXPECT_NEAR(rates[2], 4.5, 1e-9);
}

TEST(AllocatorTest, CascadedBottlenecks) {
  // r0 cap 4 shared by jobs 0,1; r1 cap 10 shared by jobs 1,2.
  // Round 1: level 2 saturates r0 -> freeze jobs 0,1.
  // Round 2: job 2 continues: r1 remaining 10-2 = 8 -> rate 8.
  const auto rates = max_min_fair_rates(
      {4.0, 10.0}, {job_on(0, 1.0),
                    JobDemands{.demands = {Demand{0, 1.0}, Demand{1, 1.0}},
                               .rate_cap = 1e18},
                    job_on(1, 1.0)});
  EXPECT_NEAR(rates[0], 2.0, 1e-9);
  EXPECT_NEAR(rates[1], 2.0, 1e-9);
  EXPECT_NEAR(rates[2], 8.0, 1e-9);
}

TEST(AllocatorTest, NoJobs) {
  EXPECT_TRUE(max_min_fair_rates({1.0}, {}).empty());
}

TEST(AllocatorTest, JobWithNoDemandsClampsToCap) {
  const auto rates = max_min_fair_rates({1.0}, {JobDemands{.demands = {},
                                                           .rate_cap = 7.0}});
  EXPECT_NEAR(rates[0], 7.0, 1e-9);
}

TEST(AllocatorTest, WeightsGiveProportionalRates) {
  // Two jobs share a resource; job 1 has 3x the weight -> 3x the rate.
  std::vector<JobDemands> jobs = {job_on(0, 1.0), job_on(0, 1.0)};
  jobs[1].weight = 3.0;
  const auto rates = max_min_fair_rates({8.0}, jobs);
  EXPECT_NEAR(rates[0], 2.0, 1e-9);
  EXPECT_NEAR(rates[1], 6.0, 1e-9);
}

TEST(AllocatorTest, WeightsModelEqualCpuTimeShares) {
  // A compute job (1 sec/unit) and a light protocol job (0.1 sec/unit)
  // co-located on one core. With weight = 1/demand each, the water level is
  // a time share: both get half the core -> compute 0.5 units/s, protocol
  // 5 units/s.
  std::vector<JobDemands> jobs = {job_on(0, 1.0), job_on(0, 0.1)};
  jobs[0].weight = 1.0;
  jobs[1].weight = 10.0;
  const auto rates = max_min_fair_rates({1.0}, jobs);
  EXPECT_NEAR(rates[0], 0.5, 1e-9);
  EXPECT_NEAR(rates[1], 5.0, 1e-9);
}

TEST(AllocatorTest, LightJobFrozenElsewhereReturnsItsTimeShare) {
  // Same co-location, but the light job is capped (wire-limited) far below
  // its time share: the compute job reclaims the leftover core time.
  std::vector<JobDemands> jobs = {job_on(0, 1.0), job_on(0, 0.1, /*cap=*/1.0)};
  jobs[0].weight = 1.0;
  jobs[1].weight = 10.0;
  const auto rates = max_min_fair_rates({1.0}, jobs);
  EXPECT_NEAR(rates[1], 1.0, 1e-9);   // capped
  EXPECT_NEAR(rates[0], 0.9, 1e-9);   // 1 - 0.1*1.0 of the core remains
}

// Property test: feasibility and max-min optimality on random instances.
class AllocatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorProperty, FeasibleAndParetoBlocked) {
  Rng rng(GetParam());
  const int n_resources = 1 + static_cast<int>(rng.next_below(5));
  const int n_jobs = 1 + static_cast<int>(rng.next_below(12));

  std::vector<double> capacities;
  for (int r = 0; r < n_resources; ++r) {
    capacities.push_back(1.0 + rng.next_double() * 99.0);
  }
  std::vector<JobDemands> jobs;
  for (int j = 0; j < n_jobs; ++j) {
    JobDemands job;
    const int touches = 1 + static_cast<int>(rng.next_below(
                                static_cast<std::uint64_t>(n_resources)));
    for (int k = 0; k < touches; ++k) {
      job.demands.push_back(Demand{static_cast<int>(rng.next_below(
                                       static_cast<std::uint64_t>(n_resources))),
                                   0.1 + rng.next_double() * 3.0});
    }
    if (rng.next_below(4) == 0) {
      job.rate_cap = rng.next_double() * 20.0 + 0.1;
    }
    if (rng.next_below(3) == 0) {
      job.weight = 0.2 + rng.next_double() * 5.0;
    }
    jobs.push_back(std::move(job));
  }

  const auto rates = max_min_fair_rates(capacities, jobs);
  ASSERT_EQ(rates.size(), jobs.size());

  // Feasibility: no resource oversubscribed.
  std::vector<double> used(capacities.size(), 0.0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_GE(rates[j], 0.0);
    EXPECT_LE(rates[j], jobs[j].rate_cap * (1 + 1e-9));
    for (const auto& d : jobs[j].demands) {
      used[static_cast<std::size_t>(d.resource)] += d.units_per_work * rates[j];
    }
  }
  for (std::size_t r = 0; r < capacities.size(); ++r) {
    EXPECT_LE(used[r], capacities[r] * (1 + 1e-6)) << "resource " << r;
  }

  // Blocked: every job is at its cap or touches a saturated resource.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (rates[j] >= jobs[j].rate_cap * (1 - 1e-9)) {
      continue;
    }
    bool touches_saturated = false;
    for (const auto& d : jobs[j].demands) {
      if (d.units_per_work > 1e-12 &&
          used[static_cast<std::size_t>(d.resource)] >=
              capacities[static_cast<std::size_t>(d.resource)] * (1 - 1e-6)) {
        touches_saturated = true;
        break;
      }
    }
    EXPECT_TRUE(touches_saturated) << "job " << j << " could still grow";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

// ---------------------------------------------------------------- engine

TEST(EngineTest, DelayAdvancesVirtualTime) {
  Simulation sim;
  double woke_at = -1;
  sim.spawn([](Simulation& s, double& woke) -> SimProc {
    co_await s.delay(2.5);
    woke = s.now();
  }(sim, woke_at));
  sim.run();
  EXPECT_DOUBLE_EQ(woke_at, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(EngineTest, SingleJobTakesWorkOverCapacity) {
  Simulation sim;
  const int cpu = sim.add_resource("cpu", 4.0);  // 4 work units per second
  double finished_at = -1;
  sim.spawn([](Simulation& s, int r, double& t) -> SimProc {
    JobSpec ns_spec{.work = 10.0, .demands = job_on(r, 1.0)};
    co_await s.job(std::move(ns_spec));
    t = s.now();
  }(sim, cpu, finished_at));
  sim.run();
  EXPECT_NEAR(finished_at, 2.5, 1e-9);
  EXPECT_NEAR(sim.consumed(cpu), 10.0, 1e-9);
}

TEST(EngineTest, TwoJobsShareACore) {
  Simulation sim;
  const int cpu = sim.add_resource("cpu", 1.0);
  std::vector<double> finish;
  auto worker = [](Simulation& s, int r, double work,
                   std::vector<double>& out) -> SimProc {
    JobSpec ns_spec{.work = work, .demands = job_on(r, 1.0)};
    co_await s.job(std::move(ns_spec));
    out.push_back(s.now());
  };
  sim.spawn(worker(sim, cpu, 1.0, finish));
  sim.spawn(worker(sim, cpu, 1.0, finish));
  sim.run();
  // Both progress at rate 0.5 -> both finish at t=2.
  ASSERT_EQ(finish.size(), 2U);
  EXPECT_NEAR(finish[0], 2.0, 1e-9);
  EXPECT_NEAR(finish[1], 2.0, 1e-9);
}

TEST(EngineTest, ShortJobFreesCapacityForLongJob) {
  Simulation sim;
  const int cpu = sim.add_resource("cpu", 1.0);
  std::vector<std::pair<int, double>> finish;
  auto worker = [](Simulation& s, int r, int id, double work,
                   std::vector<std::pair<int, double>>& out) -> SimProc {
    JobSpec ns_spec{.work = work, .demands = job_on(r, 1.0)};
    co_await s.job(std::move(ns_spec));
    out.emplace_back(id, s.now());
  };
  sim.spawn(worker(sim, cpu, 0, 1.0, finish));
  sim.spawn(worker(sim, cpu, 1, 2.0, finish));
  sim.run();
  // Shared until t=2 (each did 1 unit); job 0 done; job 1 has 1 left at full
  // rate -> t=3.
  ASSERT_EQ(finish.size(), 2U);
  EXPECT_EQ(finish[0].first, 0);
  EXPECT_NEAR(finish[0].second, 2.0, 1e-9);
  EXPECT_EQ(finish[1].first, 1);
  EXPECT_NEAR(finish[1].second, 3.0, 1e-9);
}

TEST(EngineTest, ContentionOverheadSlowsSharers) {
  Simulation sim;
  // 100% overhead per extra sharer: 2 jobs -> effective capacity 0.5.
  const int cpu = sim.add_resource("cpu", 1.0, /*contention_overhead=*/1.0);
  double finished_at = -1;
  auto worker = [](Simulation& s, int r, double& t) -> SimProc {
    JobSpec ns_spec{.work = 1.0, .demands = job_on(r, 1.0)};
    co_await s.job(std::move(ns_spec));
    t = s.now();
  };
  double ignored = -1;
  sim.spawn(worker(sim, cpu, finished_at));
  sim.spawn(worker(sim, cpu, ignored));
  sim.run();
  // Effective capacity 0.5 shared by 2 -> each at 0.25 -> 4 seconds.
  EXPECT_NEAR(finished_at, 4.0, 1e-9);
}

TEST(EngineTest, ZeroWorkJobCompletesInstantly) {
  Simulation sim;
  double finished_at = -1;
  sim.spawn([](Simulation& s, double& t) -> SimProc {
    JobSpec ns_spec{.work = 0.0};
    co_await s.job(std::move(ns_spec));
    t = s.now();
  }(sim, finished_at));
  sim.run();
  EXPECT_DOUBLE_EQ(finished_at, 0.0);
}

TEST(EngineTest, OnProgressReportsAllWork) {
  Simulation sim;
  const int cpu = sim.add_resource("cpu", 2.0);
  double reported = 0;
  sim.spawn([](Simulation& s, int r, double& total) -> SimProc {
    JobSpec spec{.work = 5.0, .demands = job_on(r, 1.0)};
    spec.on_progress = [&total](double done, double) { total += done; };
    co_await s.job(std::move(spec));
  }(sim, cpu, reported));
  sim.run();
  EXPECT_NEAR(reported, 5.0, 1e-9);
}

TEST(EngineTest, RunLimitStopsEarly) {
  Simulation sim;
  const int cpu = sim.add_resource("cpu", 1.0);
  bool finished = false;
  sim.spawn([](Simulation& s, int r, bool& done) -> SimProc {
    JobSpec ns_spec{.work = 100.0, .demands = job_on(r, 1.0)};
    co_await s.job(std::move(ns_spec));
    done = true;
  }(sim, cpu, finished));
  sim.run(/*limit=*/10.0);
  EXPECT_FALSE(finished);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  EXPECT_NEAR(sim.consumed(cpu), 10.0, 1e-9);  // partial progress counted
}

TEST(EngineTest, ManyJobsConservation) {
  // Random jobs on random resources: total consumption of each resource
  // equals the sum of demands * work of the jobs that used it.
  Simulation sim;
  Rng rng(7);
  std::vector<int> resources;
  for (int r = 0; r < 4; ++r) {
    resources.push_back(sim.add_resource("r" + std::to_string(r),
                                         1.0 + rng.next_double() * 10));
  }
  std::vector<double> expected(4, 0.0);
  for (int j = 0; j < 30; ++j) {
    const int r = static_cast<int>(rng.next_below(4));
    const double work = 0.5 + rng.next_double() * 5.0;
    const double demand = 0.2 + rng.next_double();
    expected[static_cast<std::size_t>(r)] += work * demand;
    sim.spawn([](Simulation& s, int res, double w, double d) -> SimProc {
      co_await s.delay(0.1 * d);  // stagger arrivals
      JobSpec ns_spec{.work = w, .demands = job_on(res, d)};
      co_await s.job(std::move(ns_spec));
    }(sim, resources[static_cast<std::size_t>(r)], work, demand));
  }
  sim.run();
  for (int r = 0; r < 4; ++r) {
    EXPECT_NEAR(sim.consumed(resources[static_cast<std::size_t>(r)]),
                expected[static_cast<std::size_t>(r)], 1e-6);
  }
}

// ---------------------------------------------------------------- queue

TEST(SimQueueTest, PipelineThroughputEqualsBottleneck) {
  // Producer does 1s of work per item; consumer 2s. 10 items through a
  // queue of depth 2: makespan ~ 1 + 10*2 = 21 (pipeline startup + consumer-
  // bound steady state).
  Simulation sim;
  const int pcpu = sim.add_resource("producer_cpu", 1.0);
  const int ccpu = sim.add_resource("consumer_cpu", 1.0);
  SimQueue<int> queue(sim, 2);
  int consumed_items = 0;

  sim.spawn([](Simulation& s, SimQueue<int>& q, int cpu) -> SimProc {
    for (int i = 0; i < 10; ++i) {
      JobSpec ns_spec{.work = 1.0, .demands = job_on(cpu, 1.0)};
      co_await s.job(std::move(ns_spec));
      co_await q.push(i);
    }
    q.close();
  }(sim, queue, pcpu));

  sim.spawn([](Simulation& s, SimQueue<int>& q, int cpu, int& count) -> SimProc {
    while (auto item = co_await q.pop()) {
      JobSpec ns_spec{.work = 2.0, .demands = job_on(cpu, 1.0)};
      co_await s.job(std::move(ns_spec));
      ++count;
    }
  }(sim, queue, ccpu, consumed_items));

  sim.run();
  EXPECT_EQ(consumed_items, 10);
  EXPECT_NEAR(sim.now(), 21.0, 1e-6);
}

TEST(SimQueueTest, FifoOrderPreserved) {
  Simulation sim;
  SimQueue<int> queue(sim, 4);
  std::vector<int> received;
  sim.spawn([](Simulation& s, SimQueue<int>& q) -> SimProc {
    for (int i = 0; i < 20; ++i) {
      co_await q.push(i);
      if (i % 3 == 0) {
        co_await s.delay(0.01);
      }
    }
    q.close();
  }(sim, queue));
  sim.spawn([](Simulation& s, SimQueue<int>& q, std::vector<int>& out) -> SimProc {
    while (auto item = co_await q.pop()) {
      out.push_back(*item);
      if (*item % 4 == 0) {
        co_await s.delay(0.02);
      }
    }
  }(sim, queue, received));
  sim.run();
  ASSERT_EQ(received.size(), 20U);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  }
}

TEST(SimQueueTest, CloseFailsWaitingPushers) {
  Simulation sim;
  SimQueue<int> queue(sim, 1);
  bool second_accepted = true;
  sim.spawn([](Simulation& s, SimQueue<int>& q, bool& accepted) -> SimProc {
    co_await q.push(1);                // fills the queue
    accepted = co_await q.push(2);     // blocks; failed by close
    (void)s;
  }(sim, queue, second_accepted));
  sim.spawn([](Simulation& s, SimQueue<int>& q) -> SimProc {
    co_await s.delay(1.0);
    q.close();
  }(sim, queue));
  sim.run();
  EXPECT_FALSE(second_accepted);
}

TEST(SimQueueTest, CloseWakesWaitingPopper) {
  Simulation sim;
  SimQueue<int> queue(sim, 1);
  bool got_end = false;
  sim.spawn([](Simulation&, SimQueue<int>& q, bool& end) -> SimProc {
    const auto item = co_await q.pop();
    end = !item.has_value();
  }(sim, queue, got_end));
  sim.spawn([](Simulation& s, SimQueue<int>& q) -> SimProc {
    co_await s.delay(0.5);
    q.close();
  }(sim, queue));
  sim.run();
  EXPECT_TRUE(got_end);
}

TEST(SimQueueTest, MultipleProducersConsumersDeliverExactlyOnce) {
  Simulation sim;
  SimQueue<int> queue(sim, 3);
  int produced = 0;
  int consumed_items = 0;
  int live_producers = 3;
  for (int p = 0; p < 3; ++p) {
    sim.spawn([](Simulation& s, SimQueue<int>& q, int id, int& count,
                 int& live) -> SimProc {
      for (int i = 0; i < 7; ++i) {
        co_await s.delay(0.01 * (id + 1));
        co_await q.push(id * 100 + i);
        ++count;
      }
      if (--live == 0) {
        q.close();
      }
    }(sim, queue, p, produced, live_producers));
  }
  for (int c = 0; c < 2; ++c) {
    sim.spawn([](Simulation& s, SimQueue<int>& q, int& count) -> SimProc {
      while (co_await q.pop()) {
        co_await s.delay(0.005);
        ++count;
      }
    }(sim, queue, consumed_items));
  }
  sim.run();
  EXPECT_EQ(produced, 21);
  EXPECT_EQ(consumed_items, 21);
}

TEST(SimQueueTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation sim;
    const int cpu = sim.add_resource("cpu", 3.0);
    SimQueue<int> queue(sim, 2);
    sim.spawn([](Simulation& s, SimQueue<int>& q, int r) -> SimProc {
      for (int i = 0; i < 50; ++i) {
        JobSpec ns_spec{.work = 0.7, .demands = job_on(r, 1.0)};
        co_await s.job(std::move(ns_spec));
        co_await q.push(i);
      }
      q.close();
    }(sim, queue, cpu));
    sim.spawn([](Simulation& s, SimQueue<int>& q, int r) -> SimProc {
      while (co_await q.pop()) {
        JobSpec ns_spec{.work = 1.1, .demands = job_on(r, 1.0)};
        co_await s.job(std::move(ns_spec));
      }
    }(sim, queue, cpu));
    sim.run();
    return sim.now();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace numastream::sim
