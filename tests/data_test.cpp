#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "codec/lz4.h"
#include "common/units.h"
#include "data/chunk.h"
#include "data/sdf.h"
#include "data/tomo.h"

namespace numastream {
namespace {

namespace fs = std::filesystem;

// Small geometry for fast tests; same generator code paths as the full
// 2048x2700 projection.
TomoConfig small_config() {
  TomoConfig config;
  config.rows = 256;
  config.cols = 300;
  config.num_spheres = 8;
  return config;
}

TEST(TomoTest, ProjectionHasConfiguredSize) {
  const TomoGenerator gen(small_config());
  EXPECT_EQ(gen.projection(0).size(), 256U * 300U * 2U);
}

TEST(TomoTest, DefaultChunkIsThePapersProjectionSize) {
  const TomoConfig config;
  EXPECT_EQ(config.chunk_bytes(), kProjectionChunkBytes);
}

TEST(TomoTest, DeterministicPerIndex) {
  const TomoGenerator a(small_config());
  const TomoGenerator b(small_config());
  EXPECT_EQ(a.projection(5), b.projection(5));
}

TEST(TomoTest, DifferentIndicesDiffer) {
  const TomoGenerator gen(small_config());
  EXPECT_NE(gen.projection(0), gen.projection(1));
}

TEST(TomoTest, DifferentSeedsDiffer) {
  TomoConfig c1 = small_config();
  TomoConfig c2 = small_config();
  c2.seed = 99;
  EXPECT_NE(TomoGenerator(c1).projection(0), TomoGenerator(c2).projection(0));
}

TEST(TomoTest, ChunkWrapsProjection) {
  const TomoGenerator gen(small_config());
  const Chunk chunk = gen.chunk(3, 7);
  EXPECT_EQ(chunk.stream_id, 3U);
  EXPECT_EQ(chunk.sequence, 7U);
  EXPECT_EQ(chunk.payload, gen.projection(7));
}

TEST(TomoTest, PixelsStayInDetectorRange) {
  const TomoGenerator gen(small_config());
  const Bytes proj = gen.projection(0);
  // uint16 by construction; verify values are plausible detector counts
  // (nonzero illumination over most of the field).
  std::size_t bright = 0;
  for (std::size_t i = 0; i < proj.size(); i += 2) {
    if (load_le16(proj.data() + i) > 10000) {
      ++bright;
    }
  }
  EXPECT_GT(bright, proj.size() / 2 / 2);  // more than half the pixels
}

// The calibration the whole reproduction leans on: the paper reports that
// LZ4 achieves about 2:1 on this data. Accept 1.7x..2.6x on the full-size
// projection so the property is meaningful but not brittle.
TEST(TomoTest, FullSizeProjectionCompressesNearTwoToOne) {
  TomoConfig config;  // full 2048x2700 projection, default knobs
  const TomoGenerator gen(config);
  const Bytes proj = gen.projection(1);
  ASSERT_EQ(proj.size(), kProjectionChunkBytes);
  const Bytes compressed = lz4_compress(proj);
  const double ratio =
      static_cast<double>(proj.size()) / static_cast<double>(compressed.size());
  EXPECT_GT(ratio, 1.7) << "compressed to " << compressed.size();
  EXPECT_LT(ratio, 2.6) << "compressed to " << compressed.size();
}

TEST(TomoTest, NoiseKnobControlsCompressibility) {
  TomoConfig clean = small_config();
  clean.noise_per_1024 = 0;
  TomoConfig noisy = small_config();
  noisy.noise_per_1024 = 512;
  const Bytes clean_proj = TomoGenerator(clean).projection(0);
  const Bytes noisy_proj = TomoGenerator(noisy).projection(0);
  EXPECT_LT(lz4_compress(clean_proj).size(), lz4_compress(noisy_proj).size());
}

TEST(ChunkTest, DebugString) {
  Chunk c;
  c.stream_id = 2;
  c.sequence = 10;
  c.payload = Bytes(1024, 0);
  const std::string text = c.debug_string();
  EXPECT_NE(text.find("stream=2"), std::string::npos);
  EXPECT_NE(text.find("seq=10"), std::string::npos);
}

// ---------------------------------------------------------------- sdf

class SdfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() /
             ("ns_sdf_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".sdf"))
                .string();
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }

  std::string path_;
};

TEST_F(SdfTest, WriteReadRoundTrip) {
  const TomoGenerator gen(small_config());
  SdfHeader header{.chunk_count = 0,
                   .chunk_bytes = gen.config().chunk_bytes(),
                   .rows = gen.config().rows,
                   .cols = gen.config().cols,
                   .element_size = 2};
  auto writer = SdfWriter::create(path_, header);
  ASSERT_TRUE(writer.ok()) << writer.status().to_string();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(writer.value().append(gen.projection(i)).is_ok());
  }
  ASSERT_TRUE(writer.value().close().is_ok());

  auto reader = SdfReader::open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status().to_string();
  EXPECT_EQ(reader.value().header().chunk_count, 5U);
  EXPECT_EQ(reader.value().header().rows, 256U);
  // Random access, out of order.
  for (const std::uint64_t i : {4ULL, 0ULL, 2ULL}) {
    auto chunk = reader.value().read_chunk(i);
    ASSERT_TRUE(chunk.ok());
    EXPECT_EQ(chunk.value(), gen.projection(i));
  }
}

TEST_F(SdfTest, RejectsWrongChunkSize) {
  auto writer = SdfWriter::create(path_, SdfHeader{.chunk_bytes = 100});
  ASSERT_TRUE(writer.ok());
  const Bytes wrong(99);
  EXPECT_EQ(writer.value().append(wrong).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(writer.value().close().is_ok());
}

TEST_F(SdfTest, ReadPastEndIsOutOfRange) {
  auto writer = SdfWriter::create(path_, SdfHeader{.chunk_bytes = 16});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value().append(Bytes(16, 1)).is_ok());
  ASSERT_TRUE(writer.value().close().is_ok());
  auto reader = SdfReader::open(path_);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().read_chunk(1).status().code(), StatusCode::kOutOfRange);
}

TEST_F(SdfTest, DetectsCorruptChunk) {
  auto writer = SdfWriter::create(path_, SdfHeader{.chunk_bytes = 64});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value().append(Bytes(64, 7)).is_ok());
  ASSERT_TRUE(writer.value().close().is_ok());

  // Flip a payload byte on disk.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(kSdfHeaderSize + 4 + 10));
    const char evil = 0x55;
    f.write(&evil, 1);
  }
  auto reader = SdfReader::open(path_);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().read_chunk(0).status().code(), StatusCode::kDataLoss);
}

TEST_F(SdfTest, RejectsNonSdfFile) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "this is not an sdf file, not even close";
  }
  EXPECT_FALSE(SdfReader::open(path_).ok());
}

TEST_F(SdfTest, RejectsZeroChunkSize) {
  EXPECT_EQ(SdfWriter::create(path_, SdfHeader{.chunk_bytes = 0}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace numastream
