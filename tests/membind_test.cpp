#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>

#include "affinity/membind.h"

namespace numastream {
namespace {

// Memory binding is kernel/container dependent: all tests must pass both on
// a real NUMA host (where mbind works) and in CI sandboxes (where it may
// not). The support probe decides which assertions apply.

TEST(MembindTest, SupportProbeIsStable) {
  const bool first = memory_binding_supported();
  const bool second = memory_binding_supported();
  EXPECT_EQ(first, second);
  std::printf("memory binding supported on this host: %s\n", first ? "yes" : "no");
}

TEST(MembindTest, BindRejectsSubPageRange) {
  // A range that cannot contain a whole page must be rejected regardless of
  // kernel support (it would re-policy neighbouring allocations).
  alignas(64) char tiny[64];
  const Status status = bind_memory_to_domain(tiny, sizeof(tiny), 0);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(MembindTest, BindRejectsBadDomain) {
  alignas(4096) static char buffer[2 * 4096];
  EXPECT_EQ(bind_memory_to_domain(buffer, sizeof(buffer), -1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(bind_memory_to_domain(buffer, sizeof(buffer), 9999).code(),
            StatusCode::kInvalidArgument);
}

TEST(MembindTest, InterleaveRejectsEmptyDomainList) {
  alignas(4096) static char buffer[2 * 4096];
  EXPECT_EQ(interleave_memory(buffer, sizeof(buffer), {}).code(),
            StatusCode::kInvalidArgument);
}

TEST(MembindTest, BindWorksWhenSupported) {
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  auto buffer = DomainBoundBuffer::allocate(4 * page, 0);
  ASSERT_TRUE(buffer.ok()) << buffer.status().to_string();
  if (memory_binding_supported()) {
    EXPECT_TRUE(buffer.value().bound());
  } else {
    EXPECT_FALSE(buffer.value().bound());
  }
  // Either way the memory is usable.
  std::memset(buffer.value().data(), 0x5A, buffer.value().size());
  EXPECT_EQ(buffer.value().data()[buffer.value().size() - 1], 0x5A);
}

TEST(DomainBoundBufferTest, SizeRoundsUpToPages) {
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  auto buffer = DomainBoundBuffer::allocate(100, -1);
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(buffer.value().size(), page);
  EXPECT_EQ(buffer.value().domain(), -1);
  EXPECT_FALSE(buffer.value().bound());  // no policy requested
}

TEST(DomainBoundBufferTest, ZeroSizeRejected) {
  EXPECT_FALSE(DomainBoundBuffer::allocate(0, 0).ok());
}

TEST(DomainBoundBufferTest, MoveTransfersOwnership) {
  auto buffer = DomainBoundBuffer::allocate(4096, -1);
  ASSERT_TRUE(buffer.ok());
  std::uint8_t* data = buffer.value().data();
  DomainBoundBuffer moved = std::move(buffer).value();
  EXPECT_EQ(moved.data(), data);
  std::memset(moved.data(), 1, moved.size());

  DomainBoundBuffer assigned = DomainBoundBuffer::allocate(4096, -1).value();
  assigned = std::move(moved);
  EXPECT_EQ(assigned.data(), data);
}

TEST(DomainBoundBufferTest, SpanCoversWholeBuffer) {
  auto buffer = DomainBoundBuffer::allocate(8192, -1);
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(buffer.value().span().size(), buffer.value().size());
  EXPECT_EQ(buffer.value().span().data(), buffer.value().data());
}

}  // namespace
}  // namespace numastream
