#include <gtest/gtest.h>

#include <atomic>

#include "affinity/affinity.h"
#include "affinity/binding.h"
#include "concurrency/thread_pool.h"
#include "topo/discover.h"
#include "topo/topology.h"

namespace numastream {
namespace {

TEST(AffinityTest, CurrentAffinityIsNonEmpty) {
  auto mask = current_thread_affinity();
  ASSERT_TRUE(mask.ok());
  EXPECT_FALSE(mask.value().empty());
}

TEST(AffinityTest, PinToOwnMaskSucceeds) {
  auto mask = current_thread_affinity();
  ASSERT_TRUE(mask.ok());
  auto applied = pin_current_thread(mask.value());
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), mask.value());
}

TEST(AffinityTest, PinToFirstOnlineCpu) {
  auto mask = current_thread_affinity();
  ASSERT_TRUE(mask.ok());
  const int cpu = mask.value().first();
  auto applied = pin_current_thread(CpuSet::single(cpu));
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value().count(), 1U);
  EXPECT_EQ(current_cpu(), cpu);
  // Restore for other tests in this process.
  ASSERT_TRUE(pin_current_thread(mask.value()).ok());
}

TEST(AffinityTest, PinToOfflineCpusFails) {
  // CPU ids far above anything this box has.
  EXPECT_FALSE(pin_current_thread(CpuSet::range(4000, 4003)).ok());
}

TEST(AffinityTest, PinToEmptySetIsInvalid) {
  const auto status = pin_current_thread(CpuSet()).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(AffinityTest, MixedOnlineOfflineIntersects) {
  auto mask = current_thread_affinity();
  ASSERT_TRUE(mask.ok());
  CpuSet request = mask.value();
  request.add(4000);  // definitely offline
  auto applied = pin_current_thread(request);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), mask.value());
}

// ---------------------------------------------------------------- binding

TEST(BindingTest, ToString) {
  EXPECT_EQ(NumaBinding{}.to_string(), "exec=OS mem=OS");
  EXPECT_EQ((NumaBinding{.execution_domain = 1, .memory_domain = 0}).to_string(),
            "exec=1 mem=0");
}

TEST(BindingTest, OsManagedAppliesNothingButRecords) {
  const MachineTopology topo = toy_topology();
  PlacementRecorder recorder;
  ASSERT_TRUE(apply_binding(topo, NumaBinding{}, "os-task", &recorder).is_ok());
  ASSERT_EQ(recorder.size(), 1U);
  const auto records = recorder.snapshot();
  EXPECT_EQ(records[0].task_name, "os-task");
  EXPECT_TRUE(records[0].applied_cpus.empty());
}

TEST(BindingTest, UnknownDomainFails) {
  const MachineTopology topo = toy_topology();
  PlacementRecorder recorder;
  const NumaBinding binding{.execution_domain = 9, .memory_domain = 9};
  EXPECT_FALSE(apply_binding(topo, binding, "bad", &recorder).is_ok());
  EXPECT_EQ(recorder.size(), 0U);
}

TEST(BindingTest, RealDomainPinsToIt) {
  // Use the discovered topology of the machine running the tests so the
  // requested CPUs actually exist.
  auto topo = discover_topology();
  ASSERT_TRUE(topo.ok());
  const int domain = topo.value().domains().front().id;
  PlacementRecorder recorder;
  const NumaBinding binding{.execution_domain = domain, .memory_domain = domain};
  auto saved = current_thread_affinity();
  ASSERT_TRUE(saved.ok());
  ASSERT_TRUE(apply_binding(topo.value(), binding, "real", &recorder).is_ok());
  ASSERT_EQ(recorder.size(), 1U);
  EXPECT_FALSE(recorder.snapshot()[0].applied_cpus.empty());
  ASSERT_TRUE(pin_current_thread(saved.value()).ok());
}

// ---------------------------------------------------------------- group

TEST(PinnedThreadGroupTest, RunsEveryWorkerWithItsIndex) {
  auto topo = discover_topology();
  ASSERT_TRUE(topo.ok());
  std::atomic<int> sum{0};
  std::atomic<int> count{0};
  {
    PinnedThreadGroup group(topo.value(), "worker", 4, {NumaBinding{}},
                            [&](const PinnedThreadGroup::WorkerContext& ctx) {
                              sum += ctx.worker_index;
                              count += 1;
                            });
    EXPECT_EQ(group.size(), 4U);
  }  // destructor joins
  EXPECT_EQ(count.load(), 4);
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3);
}

TEST(PinnedThreadGroupTest, BindingsAlternateAcrossWorkers) {
  auto topo = discover_topology();
  ASSERT_TRUE(topo.ok());
  PlacementRecorder recorder;
  const int domain = topo.value().domains().front().id;
  const std::vector<NumaBinding> bindings = {
      NumaBinding{.execution_domain = domain, .memory_domain = domain},
      NumaBinding{},  // OS-managed
  };
  {
    PinnedThreadGroup group(topo.value(), "alt", 4, bindings,
                            [](const PinnedThreadGroup::WorkerContext& ctx) {
                              EXPECT_TRUE(ctx.binding_status.is_ok());
                            },
                            &recorder);
  }
  ASSERT_EQ(recorder.size(), 4U);
  int pinned = 0;
  for (const auto& record : recorder.snapshot()) {
    pinned += record.applied_cpus.empty() ? 0 : 1;
  }
  EXPECT_EQ(pinned, 2);  // workers 0 and 2 got the pinned binding
}

TEST(PinnedThreadGroupTest, JoinIsIdempotent) {
  auto topo = discover_topology();
  ASSERT_TRUE(topo.ok());
  PinnedThreadGroup group(topo.value(), "j", 2, {NumaBinding{}},
                          [](const PinnedThreadGroup::WorkerContext&) {});
  group.join();
  group.join();
  SUCCEED();
}

}  // namespace
}  // namespace numastream
