// Anti-entropy scrubbing tests (DESIGN.md §14): the SCRUB wire frame, the
// `scrub` config directive, the budgeted journal scrubber with sticky
// quarantine counters, per-range digests, digest-compare-and-repair in both
// directions with epoch fencing and receiving-side verification, the
// parent-directory fsync on journal creation, seeded rot/stale fault
// injection on both journal media, the mid-flush divergence that anti-
// entropy converges, a scrub thread racing live appends (TSan coverage),
// and the simulated cluster's seeded rot-repair-failover arc with its
// bit-identical scrub-ledger fingerprint.
//
// Everything here is deterministic: rot placement, scrub cadence, kills and
// digest rounds are driven by fixed seeds and virtual time, so a failing
// run replays bit-identically.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/antientropy.h"
#include "cluster/replication.h"
#include "cluster/ring.h"
#include "codec/xxhash.h"
#include "common/assert.h"
#include "core/config.h"
#include "core/config_generator.h"
#include "core/journal.h"
#include "core/scrub.h"
#include "metrics/scrub_counters.h"
#include "msg/message.h"
#include "simrt/driver.h"
#include "topo/discover.h"
#include "topo/topology.h"

namespace numastream {
namespace {

using cluster::AntiEntropyScrubber;
using cluster::InprocReplicationLink;
using cluster::InprocScrubLink;
using cluster::PrimaryReplicator;
using cluster::ReplicatedJournalMedia;
using cluster::ScrubServer;
using cluster::ScrubTransport;
using cluster::StandbySession;
using cluster::journal_range_digests;

constexpr std::uint64_t kSession = 77;

JournalRecord sent_record(std::uint32_t stream, std::uint64_t sequence) {
  JournalRecord record;
  record.type = JournalRecordType::kSent;
  record.stream_id = stream;
  record.sequence = sequence;
  record.offset = sequence * 4096;
  record.body_hash = static_cast<std::uint32_t>(sequence * 2654435761U + 3);
  record.body_size = 4096;
  return record;
}

/// `count` valid records for stream 1, sequences [first, first + count).
Bytes journal_image(std::uint64_t count, std::uint64_t first = 0) {
  Bytes image;
  for (std::uint64_t i = 0; i < count; ++i) {
    const Bytes encoded = encode_journal_record(sent_record(1, first + i));
    image.insert(image.end(), encoded.begin(), encoded.end());
  }
  return image;
}

void fill_media(JournalMedia& media, const Bytes& image) {
  ASSERT_TRUE(media.append(ByteSpan(image.data(), image.size())).is_ok());
  ASSERT_TRUE(media.flush().is_ok());
}

/// Flips one bit of record `index` in `media` (deterministically, without
/// the seeded helper, so tests can target an exact record).
void corrupt_record(MemoryJournalMedia& media, std::uint64_t index) {
  auto data = media.read_all();
  ASSERT_TRUE(data.ok());
  Bytes image = std::move(data).value();
  image[index * kJournalRecordSize + 9] ^= 0x40;  // inside the sequence field
  ASSERT_TRUE(
      media.write_at(0, ByteSpan(image.data(), image.size())).is_ok());
}

// ----------------------------------------------------------- SCRUB frames

TEST(ScrubFrameTest, DigestReplyRoundTripsThroughTheDecoder) {
  ScrubInfo info;
  info.kind = ScrubKind::kDigestReply;
  info.session_id = kSession;
  info.epoch = 5;
  info.range = 2;
  info.range_records = 16;
  info.digests = {{0, 16, 0xDEADBEEF}, {1, 16, 0x12345678}, {2, 4, 0x9}};
  const Message frame = Message::scrub_frame(info, /*scrub_sequence=*/11);
  const Bytes wire = encode_message(frame);

  MessageDecoder decoder;
  decoder.feed(ByteSpan(wire.data(), wire.size()));
  auto decoded = decoder.next();
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_TRUE(decoded.value().scrub);
  EXPECT_FALSE(decoded.value().repl);
  EXPECT_FALSE(decoded.value().credit);
  EXPECT_EQ(decoded.value().sequence, 11U);

  auto parsed = parse_scrub_body(
      ByteSpan(decoded.value().body.data(), decoded.value().body.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().kind, ScrubKind::kDigestReply);
  EXPECT_EQ(parsed.value().session_id, kSession);
  EXPECT_EQ(parsed.value().epoch, 5U);
  EXPECT_EQ(parsed.value().range, 2U);
  EXPECT_EQ(parsed.value().range_records, 16U);
  EXPECT_EQ(parsed.value().digests, info.digests);
  EXPECT_TRUE(parsed.value().records.empty());
}

TEST(ScrubFrameTest, RepairFramesCarryWholeJournalRecords) {
  const Bytes records = journal_image(3);
  for (const ScrubKind kind :
       {ScrubKind::kRepairPush, ScrubKind::kRepairReply}) {
    ScrubInfo info;
    info.kind = kind;
    info.session_id = kSession;
    info.epoch = 1;
    info.range = 7;
    info.range_records = 4;
    info.records = records;
    const Message frame = Message::scrub_frame(info, 3);
    auto parsed =
        parse_scrub_body(ByteSpan(frame.body.data(), frame.body.size()));
    ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
    EXPECT_EQ(parsed.value().kind, kind);
    EXPECT_EQ(parsed.value().records, records);
    EXPECT_TRUE(parsed.value().digests.empty());
  }
  // The request kinds round-trip payload-free.
  for (const ScrubKind kind :
       {ScrubKind::kDigestRequest, ScrubKind::kRepairPull}) {
    ScrubInfo info;
    info.kind = kind;
    info.session_id = kSession;
    info.range_records = 4;
    const Message frame = Message::scrub_frame(info, 4);
    auto parsed =
        parse_scrub_body(ByteSpan(frame.body.data(), frame.body.size()));
    ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
    EXPECT_EQ(parsed.value().kind, kind);
    EXPECT_TRUE(parsed.value().records.empty());
    EXPECT_TRUE(parsed.value().digests.empty());
  }
}

TEST(ScrubFrameTest, MalformedBodiesAreRejected) {
  ScrubInfo info;
  info.kind = ScrubKind::kDigestReply;
  info.session_id = kSession;
  info.range_records = 8;
  info.digests = {{0, 8, 1}, {1, 8, 2}};
  const Message frame = Message::scrub_frame(info, 1);

  // Truncated: the declared digest count no longer fits.
  Bytes truncated = frame.body;
  truncated.pop_back();
  EXPECT_FALSE(
      parse_scrub_body(ByteSpan(truncated.data(), truncated.size())).ok());

  // Unknown kinds on either side of the valid range.
  for (const std::uint8_t kind : {std::uint8_t{0}, std::uint8_t{6}}) {
    Bytes bad_kind = frame.body;
    bad_kind[0] = kind;
    EXPECT_FALSE(
        parse_scrub_body(ByteSpan(bad_kind.data(), bad_kind.size())).ok());
  }

  // Count lies high: declared entries exceed the body.
  Bytes high_count = frame.body;
  high_count[32] = 5;
  EXPECT_FALSE(
      parse_scrub_body(ByteSpan(high_count.data(), high_count.size())).ok());

  // Payload dangling off a request kind.
  ScrubInfo request;
  request.kind = ScrubKind::kDigestRequest;
  request.session_id = kSession;
  request.range_records = 8;
  Bytes padded = Message::scrub_frame(request, 1).body;
  padded.insert(padded.end(), frame.body.begin() + 36, frame.body.end());
  EXPECT_FALSE(parse_scrub_body(ByteSpan(padded.data(), padded.size())).ok());

  // Too short to even carry the prefix.
  Bytes stub(frame.body.begin(), frame.body.begin() + kScrubBodyPrefix / 2);
  EXPECT_FALSE(parse_scrub_body(ByteSpan(stub.data(), stub.size())).ok());
}

TEST(ScrubFrameTest, DecoderRejectsConflictingAndShortFrames) {
  ScrubInfo info;
  info.kind = ScrubKind::kDigestRequest;
  info.session_id = kSession;
  info.range_records = 8;
  Bytes wire = encode_message(Message::scrub_frame(info, 1));

  // SCRUB combined with CREDIT is contradictory; the header carries no
  // checksum, so the decoder must catch it structurally.
  Bytes conflicted = wire;
  conflicted[16] |= 0x02;  // flags u16 LE at offset 16: add kMessageFlagCredit
  MessageDecoder decoder;
  decoder.feed(ByteSpan(conflicted.data(), conflicted.size()));
  EXPECT_EQ(decoder.next().status().code(), StatusCode::kDataLoss);

  // A scrub frame whose body cannot even hold the fixed prefix.
  Bytes short_body(10, 0xAB);
  Bytes stub;
  ByteWriter header(stub);
  header.u32(kMessageMagic);
  header.u32(1);                 // stream id
  header.u64(1);                 // sequence
  header.u16(kMessageFlagScrub);
  header.u16(0);                 // reserved
  header.u64(short_body.size());
  header.u32(xxhash32(ByteSpan(short_body.data(), short_body.size())));
  stub.insert(stub.end(), short_body.begin(), short_body.end());
  MessageDecoder strict;
  strict.feed(ByteSpan(stub.data(), stub.size()));
  EXPECT_EQ(strict.next().status().code(), StatusCode::kDataLoss);
}

// ----------------------------------------------------------- scrub config

NodeConfig scrubbed_receiver_config() {
  NodeConfig config;
  config.node_name = "stest-receiver";
  config.role = NodeRole::kReceiver;
  config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 1},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 1},
  };
  config.recovery.reconnect = true;
  config.resume.session = kSession;
  config.scrub.cadence_ms = 250;
  return config;
}

TEST(ScrubConfigTest, AbsentDirectiveIsByteIdentical) {
  NodeConfig config = scrubbed_receiver_config();
  config.scrub = ScrubConfig{};
  const std::string text = config.serialize();
  EXPECT_EQ(text.find("scrub"), std::string::npos)
      << "default scrub config must not serialize a directive";
  auto parsed = NodeConfig::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_TRUE(parsed.value().scrub.is_default());
  EXPECT_FALSE(parsed.value().scrub.enabled());
  EXPECT_EQ(parsed.value().serialize(), text);
}

TEST(ScrubConfigTest, SerializeParseRoundTrip) {
  NodeConfig config = scrubbed_receiver_config();
  config.scrub.cadence_ms = 500;
  config.scrub.range_records = 32;
  config.scrub.budget_records = 1024;
  config.scrub.repair_concurrency = 2;
  const std::string text = config.serialize();
  EXPECT_NE(text.find("scrub cadence_ms=500"), std::string::npos);
  auto parsed = NodeConfig::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().scrub, config.scrub);
  EXPECT_EQ(parsed.value().serialize(), text);
}

TEST(ScrubConfigTest, DuplicateDirectiveIsAParseError) {
  NodeConfig config = scrubbed_receiver_config();
  std::string text = config.serialize();
  text += "scrub cadence_ms=100\n";
  auto parsed = NodeConfig::parse(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().to_string().find("duplicate 'scrub'"),
            std::string::npos)
      << parsed.status().to_string();
}

TEST(ScrubConfigTest, ValidationBoundaries) {
  auto topo = discover_topology();
  ASSERT_TRUE(topo.ok()) << "scrub config tests need a discoverable host";

  NodeConfig ok = scrubbed_receiver_config();
  EXPECT_TRUE(ok.validate(topo.value()).is_ok())
      << ok.validate(topo.value()).to_string();

  NodeConfig no_ranges = scrubbed_receiver_config();
  no_ranges.scrub.range_records = 0;
  EXPECT_FALSE(no_ranges.validate(topo.value()).is_ok());

  NodeConfig no_budget = scrubbed_receiver_config();
  no_budget.scrub.budget_records = 0;
  EXPECT_FALSE(no_budget.validate(topo.value()).is_ok());

  NodeConfig no_repair = scrubbed_receiver_config();
  no_repair.scrub.repair_concurrency = 0;
  EXPECT_FALSE(no_repair.validate(topo.value()).is_ok());

  // Scrubbing without a resume journal has nothing to re-verify.
  NodeConfig no_resume = scrubbed_receiver_config();
  no_resume.resume = ResumeConfig{};
  EXPECT_FALSE(no_resume.validate(topo.value()).is_ok());
}

// -------------------------------------------------------- journal scrubber

ScrubConfig small_scrub_config() {
  ScrubConfig config;
  config.cadence_ms = 100;
  config.range_records = 8;
  config.budget_records = 16;
  config.repair_concurrency = 4;
  return config;
}

TEST(JournalScrubberTest, CleanJournalScansWithoutQuarantine) {
  MemoryJournalMedia media;
  fill_media(media, journal_image(64));
  ScrubCounters counters;
  JournalScrubber scrubber(media, small_scrub_config(), &counters);
  // 64 records / 16 per tick = 4 ticks to one full pass.
  for (int tick = 0; tick < 4; ++tick) {
    ASSERT_TRUE(scrubber.tick().is_ok());
  }
  const ScrubCountersSnapshot snap = counters.snapshot();
  EXPECT_EQ(snap.records_scanned, 64U);
  EXPECT_EQ(snap.scrub_passes, 1U);
  EXPECT_EQ(snap.corrupt_records_found, 0U);
  EXPECT_TRUE(scrubber.quarantined_ranges().empty());
}

TEST(JournalScrubberTest, RotQuarantinesTheRangeWithoutTruncating) {
  MemoryJournalMedia media;
  fill_media(media, journal_image(64));
  corrupt_record(media, 19);  // range 2 with 8-record ranges
  ScrubCounters counters;
  JournalScrubber scrubber(media, small_scrub_config(), &counters);
  for (int tick = 0; tick < 4; ++tick) {
    ASSERT_TRUE(scrubber.tick().is_ok());
  }
  const ScrubCountersSnapshot snap = counters.snapshot();
  // Mid-journal rot is NOT a torn tail: the scrubber steps over the damage
  // and still verifies all 64 records, unlike the recovery scan's
  // truncate-at-first-failure rule.
  EXPECT_EQ(snap.records_scanned, 64U);
  EXPECT_EQ(snap.corrupt_records_found, 1U);
  EXPECT_EQ(snap.ranges_quarantined, 1U);
  EXPECT_TRUE(scrubber.range_quarantined(2));
  EXPECT_EQ(scrubber.quarantined_ranges(), std::vector<std::uint64_t>{2});
  // Quarantine is sticky counters, never sticky DATA_LOSS: the media still
  // serves reads and appends.
  EXPECT_TRUE(media.read_all().ok());
  const Bytes more = journal_image(1, 64);
  EXPECT_TRUE(media.append(ByteSpan(more.data(), more.size())).is_ok());
  EXPECT_TRUE(media.flush().is_ok());
}

TEST(JournalScrubberTest, ReverifyLiftsQuarantineAfterRepair) {
  const Bytes image = journal_image(64);
  MemoryJournalMedia media;
  fill_media(media, image);
  corrupt_record(media, 19);
  ScrubCounters counters;
  JournalScrubber scrubber(media, small_scrub_config(), &counters);
  for (int tick = 0; tick < 4; ++tick) {
    ASSERT_TRUE(scrubber.tick().is_ok());
  }
  ASSERT_TRUE(scrubber.range_quarantined(2));

  // Reverify without a repair must keep the quarantine.
  EXPECT_FALSE(scrubber.reverify(2));
  EXPECT_TRUE(scrubber.range_quarantined(2));

  // Overwrite the damaged range with clean bytes (what a repair pull does),
  // then reverify: the quarantine lifts and the repair is counted.
  ASSERT_TRUE(media
                  .write_at(2 * 8 * kJournalRecordSize,
                            ByteSpan(image.data() + 2 * 8 * kJournalRecordSize,
                                     8 * kJournalRecordSize))
                  .is_ok());
  EXPECT_TRUE(scrubber.reverify(2));
  EXPECT_FALSE(scrubber.range_quarantined(2));
  EXPECT_EQ(counters.snapshot().ranges_repaired, 1U);
}

TEST(JournalScrubberTest, TornTailIsRecoverysBusinessNotRot) {
  MemoryJournalMedia media;
  Bytes image = journal_image(16);
  image.resize(image.size() + kJournalRecordSize / 2, 0xFF);  // torn tail
  fill_media(media, image);
  ScrubCounters counters;
  JournalScrubber scrubber(media, small_scrub_config(), &counters);
  ASSERT_TRUE(scrubber.tick().is_ok());
  EXPECT_EQ(counters.snapshot().records_scanned, 16U);
  EXPECT_EQ(counters.snapshot().corrupt_records_found, 0U);
  EXPECT_TRUE(scrubber.quarantined_ranges().empty());
}

TEST(JournalScrubberTest, ShrunkenJournalRestartsThePass) {
  MemoryJournalMedia media;
  fill_media(media, journal_image(64));
  ScrubCounters counters;
  JournalScrubber scrubber(media, small_scrub_config(), &counters);
  ASSERT_TRUE(scrubber.tick().is_ok());
  ASSERT_TRUE(scrubber.tick().is_ok());
  EXPECT_EQ(scrubber.cursor_record(), 32U);
  // A stale-replica drop shrinks the journal under the cursor.
  media.drop_durable_tail(40 * kJournalRecordSize);
  ASSERT_TRUE(scrubber.tick().is_ok());
  EXPECT_LE(scrubber.cursor_record(), 24U);
}

// ----------------------------------------------------------- range digests

TEST(RangeDigestTest, RangesCoverTheJournalWithAPartialTail) {
  const Bytes image = journal_image(20);
  const auto digests =
      journal_range_digests(ByteSpan(image.data(), image.size()), 8);
  ASSERT_EQ(digests.size(), 3U);  // 8 + 8 + 4
  EXPECT_EQ(digests[0].records, 8U);
  EXPECT_EQ(digests[1].records, 8U);
  EXPECT_EQ(digests[2].records, 4U);
  for (std::uint64_t range = 0; range < 3; ++range) {
    EXPECT_EQ(digests[range].range, range);
  }
  // Identical images agree digest for digest; one flipped bit disagrees in
  // exactly the enclosing range.
  Bytes rotted = image;
  rotted[12 * kJournalRecordSize + 5] ^= 0x01;  // record 12: range 1
  const auto dirty =
      journal_range_digests(ByteSpan(rotted.data(), rotted.size()), 8);
  EXPECT_EQ(dirty[0].digest, digests[0].digest);
  EXPECT_NE(dirty[1].digest, digests[1].digest);
  EXPECT_EQ(dirty[2].digest, digests[2].digest);
}

TEST(RangeDigestTest, TornTrailingRecordIsExcluded) {
  Bytes image = journal_image(8);
  const auto whole =
      journal_range_digests(ByteSpan(image.data(), image.size()), 4);
  image.resize(image.size() + 10, 0xEE);  // torn partial record
  const auto torn =
      journal_range_digests(ByteSpan(image.data(), image.size()), 4);
  ASSERT_EQ(whole.size(), torn.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(whole[i].digest, torn[i].digest);
  }
}

// ------------------------------------------------------------ anti-entropy

ScrubConfig antientropy_config() {
  ScrubConfig config;
  config.cadence_ms = 100;
  config.range_records = 4;
  config.budget_records = 64;
  config.repair_concurrency = 16;
  return config;
}

TEST(AntiEntropyTest, PushRepairsARottedReplica) {
  const Bytes image = journal_image(32);
  MemoryJournalMedia primary;
  MemoryJournalMedia replica;
  fill_media(primary, image);
  fill_media(replica, image);
  ASSERT_GT(replica.rot(/*seed=*/9, 0, image.size(), /*flips=*/3), 0);

  ScrubCounters primary_counters;
  ScrubCounters replica_counters;
  ScrubServer server(replica, kSession, 4, &replica_counters);
  InprocScrubLink link(server);
  AntiEntropyScrubber scrubber(primary, link, kSession, antientropy_config(),
                               /*epoch=*/1, &primary_counters);
  ASSERT_TRUE(scrubber.run_round().is_ok());

  auto repaired = replica.read_all();
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value(), image) << "replica must match the primary again";
  const ScrubCountersSnapshot snap = primary_counters.snapshot();
  EXPECT_EQ(snap.digest_rounds, 1U);
  EXPECT_EQ(snap.ranges_compared, 8U);
  EXPECT_GT(snap.ranges_diverged, 0U);
  EXPECT_GT(snap.records_pushed, 0U);
  EXPECT_EQ(snap.records_pulled, 0U);
  EXPECT_EQ(snap.ranges_unrepairable, 0U);
}

TEST(AntiEntropyTest, PullRepairsRottedLocalAndLiftsQuarantine) {
  const Bytes image = journal_image(32);
  MemoryJournalMedia primary;
  MemoryJournalMedia replica;
  fill_media(primary, image);
  fill_media(replica, image);
  ASSERT_GT(primary.rot(/*seed=*/11, 0, image.size(), /*flips=*/2), 0);

  const ScrubConfig config = antientropy_config();
  ScrubCounters counters;
  JournalScrubber local_scrubber(primary, config, &counters);
  for (int tick = 0; tick < 1; ++tick) {
    ASSERT_TRUE(local_scrubber.tick().is_ok());  // budget covers all 32
  }
  ASSERT_FALSE(local_scrubber.quarantined_ranges().empty());

  ScrubServer server(replica, kSession, 4);
  InprocScrubLink link(server);
  AntiEntropyScrubber scrubber(primary, link, kSession, config, /*epoch=*/1,
                               &counters, &local_scrubber);
  ASSERT_TRUE(scrubber.run_round().is_ok());

  auto repaired = primary.read_all();
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value(), image) << "primary must match the replica again";
  EXPECT_TRUE(local_scrubber.quarantined_ranges().empty())
      << "the pull repair must lift the quarantine via reverify";
  const ScrubCountersSnapshot snap = counters.snapshot();
  EXPECT_GT(snap.records_pulled, 0U);
  EXPECT_GT(snap.ranges_repaired, 0U);
  EXPECT_EQ(snap.ranges_unrepairable, 0U);
}

TEST(AntiEntropyTest, StaleReplicaTailIsPushedBack) {
  const Bytes image = journal_image(32);
  MemoryJournalMedia primary;
  MemoryJournalMedia replica;
  fill_media(primary, image);
  fill_media(replica, image);
  // The replica never saw the last 10 records (a stale standby).
  replica.drop_durable_tail(10 * kJournalRecordSize);

  ScrubServer server(replica, kSession, 4);
  InprocScrubLink link(server);
  ScrubCounters counters;
  AntiEntropyScrubber scrubber(primary, link, kSession, antientropy_config(),
                               /*epoch=*/1, &counters);
  ASSERT_TRUE(scrubber.run_round().is_ok());
  auto repaired = replica.read_all();
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value(), image)
      << "the missing tail must be pushed back to the replica";
  EXPECT_GT(counters.snapshot().records_pushed, 0U);
}

TEST(AntiEntropyTest, ServerRefusesARottedPush) {
  const Bytes image = journal_image(8);
  MemoryJournalMedia replica;
  fill_media(replica, image);
  auto before = replica.read_all();
  ASSERT_TRUE(before.ok());

  ScrubCounters counters;
  ScrubServer server(replica, kSession, 4, &counters);
  ScrubInfo push;
  push.kind = ScrubKind::kRepairPush;
  push.session_id = kSession;
  push.epoch = 1;
  push.range = 0;
  push.range_records = 4;
  push.records = journal_image(4);
  push.records[10] ^= 0x04;  // rot in flight: the push itself is damaged
  auto reply = server.handle(Message::scrub_frame(push, 1));
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  auto info = parse_scrub_body(
      ByteSpan(reply.value().body.data(), reply.value().body.size()));
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info.value().records.empty()) << "a refusal echoes no records";
  EXPECT_EQ(counters.snapshot().repair_verify_failures, 1U);
  auto after = replica.read_all();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), before.value())
      << "a rotted push must never reach the replica's journal";
}

/// A transport that forwards to the real server but substitutes the records
/// of every repair reply — a wire-level forgery the per-record checksums
/// cannot catch (the substitute records are individually valid).
class ForgingScrubLink final : public ScrubTransport {
 public:
  ForgingScrubLink(ScrubServer& server, Bytes forged)
      : server_(server), forged_(std::move(forged)) {}

  Result<Message> exchange(const Message& frame) override {
    auto reply = server_.handle(frame);
    if (!reply.ok()) {
      return reply;
    }
    auto info = parse_scrub_body(
        ByteSpan(reply.value().body.data(), reply.value().body.size()));
    if (!info.ok() || info.value().kind != ScrubKind::kRepairReply ||
        info.value().records.empty()) {
      return reply;
    }
    ScrubInfo forged = info.value();
    forged.records = forged_;
    return Message::scrub_frame(forged, reply.value().sequence);
  }

 private:
  ScrubServer& server_;
  Bytes forged_;
};

TEST(AntiEntropyTest, ForgedPullRecordsFailTheAdvertisedDigestCheck) {
  const Bytes image = journal_image(8);
  MemoryJournalMedia primary;
  MemoryJournalMedia replica;
  fill_media(primary, image);
  fill_media(replica, image);
  ASSERT_GT(primary.rot(/*seed=*/5, 0, kJournalRecordSize, 1), 0);
  auto rotted = primary.read_all();
  ASSERT_TRUE(rotted.ok());

  // The forgery: individually-valid records for the right range length —
  // but different content than the digest the replica advertised.
  ScrubConfig config = antientropy_config();
  ScrubServer server(replica, kSession, config.range_records);
  ForgingScrubLink link(server, journal_image(4, /*first=*/100));
  ScrubCounters counters;
  AntiEntropyScrubber scrubber(primary, link, kSession, config, /*epoch=*/1,
                               &counters);
  ASSERT_TRUE(scrubber.run_round().is_ok());
  const ScrubCountersSnapshot snap = counters.snapshot();
  EXPECT_GT(snap.repair_verify_failures, 0U)
      << "forged records must fail the advertised-digest comparison";
  EXPECT_EQ(snap.records_pulled, 0U);
  auto after = primary.read_all();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), rotted.value())
      << "forged bytes must never be installed";
}

TEST(AntiEntropyTest, NeitherSideCleanIsUnrepairableNotSilent) {
  const Bytes image = journal_image(8);
  MemoryJournalMedia primary;
  MemoryJournalMedia replica;
  fill_media(primary, image);
  fill_media(replica, image);
  // Same range rots on BOTH sides (different bits, so digests diverge).
  ASSERT_GT(primary.rot(/*seed=*/21, 0, kJournalRecordSize, 1), 0);
  ASSERT_GT(replica.rot(/*seed=*/22, kJournalRecordSize, kJournalRecordSize, 1),
            0);

  ScrubCounters counters;
  ScrubServer server(replica, kSession, 4);
  InprocScrubLink link(server);
  AntiEntropyScrubber scrubber(primary, link, kSession, antientropy_config(),
                               /*epoch=*/1, &counters);
  ASSERT_TRUE(scrubber.run_round().is_ok());
  const ScrubCountersSnapshot snap = counters.snapshot();
  EXPECT_GT(snap.ranges_unrepairable, 0U)
      << "a range with no clean source anywhere must be counted, not dropped";
}

TEST(AntiEntropyTest, PromotionFencesTheStaleScrubber) {
  const Bytes image = journal_image(16);
  MemoryJournalMedia primary;
  MemoryJournalMedia replica;
  fill_media(primary, image);
  fill_media(replica, image);
  ASSERT_GT(replica.rot(/*seed=*/3, 0, image.size(), 1), 0);

  ScrubCounters scrubber_counters;
  ScrubCounters server_counters;
  ScrubServer server(replica, kSession, 4, &server_counters);
  InprocScrubLink link(server);
  AntiEntropyScrubber scrubber(primary, link, kSession, antientropy_config(),
                               /*epoch=*/1, &scrubber_counters);
  // The replica is promoted (its gateway took over): the old primary's
  // scrub traffic must be refused and the scrubber must stop with
  // DATA_LOSS — a fenced primary repairing the new authoritative copy
  // would overwrite it with stale bytes.
  EXPECT_EQ(server.promote(), 1U);
  EXPECT_EQ(server.promote(), 2U);
  const Status fenced = scrubber.run_round();
  ASSERT_FALSE(fenced.is_ok());
  EXPECT_EQ(fenced.code(), StatusCode::kDataLoss);
  EXPECT_EQ(server_counters.snapshot().fenced_scrubs_rejected, 1U);
  EXPECT_EQ(scrubber_counters.snapshot().fenced_scrubs_rejected, 1U);
  // And the rotted replica was NOT touched: no repair crossed the fence.
  EXPECT_EQ(scrubber_counters.snapshot().records_pushed, 0U);
}

TEST(AntiEntropyTest, SessionMismatchIsDataLoss) {
  MemoryJournalMedia replica;
  fill_media(replica, journal_image(8));
  ScrubServer server(replica, kSession, 4);
  ScrubInfo request;
  request.kind = ScrubKind::kDigestRequest;
  request.session_id = kSession + 1;
  request.epoch = 1;
  request.range_records = 4;
  auto reply = server.handle(Message::scrub_frame(request, 1));
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDataLoss);
}

TEST(AntiEntropyTest, RangeSizeDisagreementIsAProtocolViolation) {
  MemoryJournalMedia replica;
  fill_media(replica, journal_image(8));
  ScrubServer server(replica, kSession, 4);
  ScrubInfo request;
  request.kind = ScrubKind::kDigestRequest;
  request.session_id = kSession;
  request.epoch = 1;
  request.range_records = 8;  // peer scrubs in different ranges
  auto reply = server.handle(Message::scrub_frame(request, 1));
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
}

// -------------------------------------------- mid-flush divergence (tee)

TEST(AntiEntropyTest, MidFlushAckLossKeepsDurabilityHonestAndScrubConverges) {
  MemoryJournalMedia local;
  MemoryJournalMedia replica;
  StandbySession standby(replica, kSession);
  InprocReplicationLink repl_link(standby);
  PrimaryReplicator primary(repl_link, kSession);
  ReplicatedJournalMedia tee(local, primary);

  const Bytes batch = journal_image(4);
  ASSERT_TRUE(tee.append(ByteSpan(batch.data(), batch.size())).is_ok());

  // The buddy link dies between the standby's durable apply and the ack:
  // the flush MUST fail — local durability alone is not "replicated", and
  // reporting it as such would break the superset invariant the failover
  // replay rests on.
  repl_link.drop_next_ack();
  const Status flushed = tee.flush();
  ASSERT_FALSE(flushed.is_ok());
  EXPECT_EQ(flushed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(standby.records_applied(), 4U)
      << "the standby applied the batch before the ack was lost";

  // The retry ships the retained batch again: the standby now holds it
  // twice — a correct superset (replay dedup absorbs duplicates), but a
  // divergence the digest rounds must detect and close.
  ASSERT_TRUE(tee.flush().is_ok());
  EXPECT_EQ(standby.records_applied(), 8U);
  auto local_bytes = local.read_all();
  auto replica_bytes = replica.read_all();
  ASSERT_TRUE(local_bytes.ok());
  ASSERT_TRUE(replica_bytes.ok());
  ASSERT_NE(local_bytes.value().size(), replica_bytes.value().size());

  ScrubConfig config = antientropy_config();
  config.range_records = 2;
  ScrubCounters counters;
  ScrubServer server(replica, kSession, config.range_records);
  InprocScrubLink scrub_link(server);
  AntiEntropyScrubber scrubber(local, scrub_link, kSession, config,
                               /*epoch=*/1, &counters);
  for (int round = 0; round < 8; ++round) {
    ASSERT_TRUE(scrubber.run_round().is_ok());
  }
  auto converged_local = local.read_all();
  auto converged_replica = replica.read_all();
  ASSERT_TRUE(converged_local.ok());
  ASSERT_TRUE(converged_replica.ok());
  EXPECT_EQ(converged_local.value(), converged_replica.value())
      << "anti-entropy must converge the duplicated-range divergence";
  EXPECT_GT(counters.snapshot().ranges_diverged, 0U);
  // Both journals replay to the same dedup state: every record is valid
  // and the duplicates are whole-record repeats the ledger suppresses.
  const JournalScan scan = scan_journal(ByteSpan(
      converged_local.value().data(), converged_local.value().size()));
  EXPECT_EQ(scan.torn_records, 0U);
}

// ------------------------------------------ journal dirsync (satellite 1)

TEST(JournalDirsyncTest, ParentDirectoryIsFsyncedOnCreate) {
  char tmpl[] = "/tmp/ns-scrub-test-XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  const std::string path = std::string(dir) + "/journal.bin";

  FileJournalMedia media(path);
  EXPECT_FALSE(media.directory_synced());
  const Bytes record = journal_image(1);
  ASSERT_TRUE(media.append(ByteSpan(record.data(), record.size())).is_ok());
  ASSERT_TRUE(media.flush().is_ok());
  EXPECT_TRUE(media.directory_synced())
      << "creating the journal file must fsync its parent directory";

  ::unlink(path.c_str());
  ::rmdir(dir);
}

TEST(JournalDirsyncTest, DirsyncFailureLatchesDataLossBeforeAnyAck) {
  char tmpl[] = "/tmp/ns-scrub-test-XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  const std::string path = std::string(dir) + "/journal.bin";

  // Crash-before-dirsync simulation: the file's data can reach the platter
  // while the directory entry never does — after a crash the journal
  // "exists" with no name. A failed directory fsync must therefore refuse
  // the append (nothing above it may ack) and latch like any other
  // durability loss.
  FileJournalMedia media(path);
  media.fail_dirsync_for_test();
  const Bytes record = journal_image(1);
  const Status first = media.append(ByteSpan(record.data(), record.size()));
  ASSERT_FALSE(first.is_ok());
  EXPECT_EQ(first.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(media.directory_synced());

  const Status second = media.append(ByteSpan(record.data(), record.size()));
  ASSERT_FALSE(second.is_ok());
  EXPECT_EQ(second.to_string(), first.to_string()) << "latch must be sticky";
  EXPECT_EQ(media.flush().to_string(), first.to_string());

  ::unlink(path.c_str());
  ::rmdir(dir);
}

// ------------------------------------------------ seeded fault injection

TEST(ScrubFaultInjectionTest, MemoryRotIsDeterministicPerSeed) {
  const Bytes image = journal_image(32);
  MemoryJournalMedia a;
  MemoryJournalMedia b;
  MemoryJournalMedia c;
  fill_media(a, image);
  fill_media(b, image);
  fill_media(c, image);
  EXPECT_EQ(a.rot(123, 0, image.size(), 5), 5);
  EXPECT_EQ(b.rot(123, 0, image.size(), 5), 5);
  EXPECT_EQ(c.rot(321, 0, image.size(), 5), 5);
  auto ra = a.read_all();
  auto rb = b.read_all();
  auto rc = c.read_all();
  ASSERT_TRUE(ra.ok() && rb.ok() && rc.ok());
  EXPECT_EQ(ra.value(), rb.value()) << "same seed, same flips";
  EXPECT_NE(ra.value(), image) << "rot must actually damage the image";
  EXPECT_NE(rc.value(), ra.value()) << "different seed, different flips";
}

TEST(ScrubFaultInjectionTest, FileRotAndDropTailMatchTheMemoryModes) {
  char tmpl[] = "/tmp/ns-scrub-test-XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  const std::string path = std::string(dir) + "/journal.bin";
  const Bytes image = journal_image(16);

  FileJournalMedia file(path);
  fill_media(file, image);
  auto flipped = file.rot(77, 0, image.size(), 3);
  ASSERT_TRUE(flipped.ok()) << flipped.status().to_string();
  EXPECT_EQ(flipped.value(), 3);
  MemoryJournalMedia memory;
  fill_media(memory, image);
  EXPECT_EQ(memory.rot(77, 0, image.size(), 3), 3);
  auto from_file = file.read_all();
  auto from_memory = memory.read_all();
  ASSERT_TRUE(from_file.ok() && from_memory.ok());
  EXPECT_EQ(from_file.value(), from_memory.value())
      << "both media rot identically under one seed";
  EXPECT_FALSE(
      find_corrupt_records(
          ByteSpan(from_file.value().data(), from_file.value().size()), 0, 16)
          .empty());

  ASSERT_TRUE(file.drop_tail(4 * kJournalRecordSize).is_ok());
  auto shorter = file.read_all();
  ASSERT_TRUE(shorter.ok());
  EXPECT_EQ(shorter.value().size(), 12 * kJournalRecordSize);

  ::unlink(path.c_str());
  ::rmdir(dir);
}

// ------------------------------------------------- concurrency (TSan run)

TEST(ScrubConcurrencyTest, ScrubberRacesLiveAppendsCleanly) {
  MemoryJournalMedia media;
  fill_media(media, journal_image(32));
  ScrubConfig config = small_scrub_config();
  ScrubCounters counters;
  JournalScrubber scrubber(media, config, &counters);

  std::atomic<bool> stop{false};
  std::thread appender([&] {
    std::uint64_t next = 32;
    while (!stop.load(std::memory_order_acquire)) {
      const Bytes record = journal_image(1, next++);
      ASSERT_TRUE(media.append(ByteSpan(record.data(), record.size())).is_ok());
      ASSERT_TRUE(media.flush().is_ok());
    }
  });
  std::thread ticker([&] {
    for (int tick = 0; tick < 200; ++tick) {
      ASSERT_TRUE(scrubber.tick().is_ok());
    }
    stop.store(true, std::memory_order_release);
  });
  ticker.join();
  appender.join();
  EXPECT_GT(counters.snapshot().records_scanned, 0U);
  EXPECT_EQ(counters.snapshot().corrupt_records_found, 0U)
      << "a scrubber racing whole-record appends must never see rot";
  EXPECT_TRUE(scrubber.quarantined_ranges().empty());
}

TEST(ScrubConcurrencyTest, AntiEntropyRacesPromotionWithoutTearing) {
  const Bytes image = journal_image(64);
  MemoryJournalMedia primary;
  MemoryJournalMedia replica;
  fill_media(primary, image);
  fill_media(replica, image);
  ASSERT_GT(replica.rot(/*seed=*/8, 0, image.size(), 2), 0);

  ScrubCounters counters;
  ScrubServer server(replica, kSession, 4, &counters);
  InprocScrubLink link(server);
  AntiEntropyScrubber scrubber(primary, link, kSession, antientropy_config(),
                               /*epoch=*/1, &counters);
  std::thread promoter([&] { server.promote(); });
  // Whatever interleaving wins, every round either repairs under the old
  // epoch or stops with DATA_LOSS under the fence — never UB, never a
  // half-applied repair.
  for (int round = 0; round < 4; ++round) {
    const Status status = scrubber.run_round();
    if (!status.is_ok()) {
      EXPECT_EQ(status.code(), StatusCode::kDataLoss);
      break;
    }
  }
  promoter.join();
}

// --------------------------------------------------------- simulated arc

using simrt::ExperimentOptions;
using simrt::ExperimentResult;
using simrt::run_plan;

Result<ExperimentResult> run_sim_scrub(const ExperimentOptions& options,
                                       int num_streams = 2) {
  const MachineTopology lynx = lynxdtn_topology();
  const std::vector<MachineTopology> senders(
      static_cast<std::size_t>(num_streams), updraft_topology());
  ConfigGenerator generator(lynx, senders);
  WorkloadSpec workload;
  workload.num_streams = num_streams;
  auto plan = generator.generate(workload, PlacementStrategy::kNumaAware);
  NS_CHECK(plan.ok(), "plan generation must succeed");
  return run_plan(senders, lynx, plan.value(), options);
}

/// The nightly chaos job randomizes this via NUMASTREAM_CHAOS_SEED; unset
/// (the tier-1 default), the arc is fully deterministic.
std::uint64_t rot_seed(std::uint64_t fallback) {
  const char* env = std::getenv("NUMASTREAM_CHAOS_SEED");
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  return std::strtoull(env, nullptr, 10);
}

TEST(SimScrubTest, ScrubRequiresCluster) {
  ExperimentOptions options;
  options.chunks_per_stream = 30;
  options.resume = true;
  options.scrub.cadence_ms = 10;
  EXPECT_FALSE(run_sim_scrub(options).ok());
}

TEST(SimScrubTest, RotRequiresClusterAndAKnownStream) {
  ExperimentOptions options;
  options.chunks_per_stream = 30;
  options.resume = true;
  options.rots = {{.stream = 0, .at_seconds = 0.001}};
  EXPECT_FALSE(run_sim_scrub(options).ok());

  options.cluster.gateways = 2;
  options.cluster.self = 0;
  options.rots = {{.stream = 9, .at_seconds = 0.001}};
  EXPECT_FALSE(run_sim_scrub(options).ok());
  options.rots = {{.stream = 0, .at_seconds = 0.001, .records = 0}};
  EXPECT_FALSE(run_sim_scrub(options).ok());
}

TEST(SimScrubTest, SeededRotIsRepairedBeforeTheKillAndBitIdentical) {
  // Probe to size the heartbeat window relative to the transfer.
  ExperimentOptions options;
  options.chunks_per_stream = 120;
  options.resume = true;
  options.cluster.gateways = 2;
  options.cluster.self = 0;
  options.cluster.miss_windows = 2;
  auto probe = run_sim_scrub(options);
  ASSERT_TRUE(probe.ok()) << probe.status().to_string();
  const double elapsed = probe.value().elapsed_seconds;
  ASSERT_GT(elapsed, 0);
  EXPECT_EQ(probe.value().scrub, ScrubCountersSnapshot{})
      << "without scrub or rot the ledger must stay clean";
  options.cluster.heartbeat_ms = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(elapsed * 1000.0 / 60.0)));
  // Re-probe with the scaled heartbeat: the coarse default window inflates
  // the first probe's elapsed, and the fault schedule must land inside the
  // *real* span (a kill scheduled past the transfer never gets detected).
  auto timed = run_sim_scrub(options);
  ASSERT_TRUE(timed.ok()) << timed.status().to_string();
  const double span = timed.value().elapsed_seconds;

  // Rot stream 0's replica at span/6, kill its serving gateway at span/2.
  const cluster::GatewayRing ring(options.cluster.gateways,
                                  options.cluster.vnodes);
  const std::uint32_t victim = ring.primary(0);
  options.rots = {{.stream = 0,
                   .at_seconds = span / 6,
                   .records = 12,
                   .seed = rot_seed(0xB0075EEDULL)}};
  options.gateway_crashes = {{.gateway = victim,
                              .at_seconds = span / 2,
                              .failover_seconds = span / 10}};

  // Counterfactual: no scrubbing — the rot survives to the takeover and
  // the truncated replay loses every record at/after the first bad one.
  auto lossy = run_sim_scrub(options);
  ASSERT_TRUE(lossy.ok()) << lossy.status().to_string();
  EXPECT_GT(lossy.value().scrub.records_rotted, 0U);
  EXPECT_EQ(lossy.value().scrub.ranges_repaired, 0U);
  EXPECT_EQ(lossy.value().scrub.digest_rounds, 0U);
  EXPECT_GT(lossy.value().scrub.failover_lost_records, 0U);

  // With scrubbing on a two-window cadence, the digest rounds find and
  // repair every rotted record before the kill.
  options.scrub.cadence_ms = 2 * options.cluster.heartbeat_ms;
  options.scrub.range_records = 16;
  options.scrub.budget_records = 512;
  options.scrub.repair_concurrency = 4;
  auto first = run_sim_scrub(options);
  auto second = run_sim_scrub(options);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  ASSERT_TRUE(second.ok()) << second.status().to_string();

  const ScrubCountersSnapshot& scrub = first.value().scrub;
  EXPECT_EQ(scrub.records_rotted, lossy.value().scrub.records_rotted)
      << "the same seed must place the same rot in both scenarios";
  EXPECT_GT(scrub.digest_rounds, 0U);
  EXPECT_GT(scrub.records_scanned, 0U);
  EXPECT_EQ(scrub.corrupt_records_found, scrub.records_rotted)
      << "every rotted record must be found";
  EXPECT_EQ(scrub.ranges_diverged, scrub.ranges_repaired);
  EXPECT_GT(scrub.ranges_repaired, 0U);
  EXPECT_EQ(scrub.failover_lost_records, 0U)
      << "a repaired replica must survive the takeover with zero holes";
  EXPECT_EQ(first.value().federation.failovers, 1U);

  // Exactly-once delivery end to end, despite rot + whole-gateway death.
  ASSERT_EQ(first.value().streams.size(), 2U);
  for (const auto& stream : first.value().streams) {
    EXPECT_EQ(stream.chunks, 120U);
  }

  // The fingerprint: same seed, bit-identical scrub/federation/resume
  // ledgers across reruns.
  EXPECT_TRUE(first.value().scrub == second.value().scrub)
      << first.value().scrub.to_string() << " vs "
      << second.value().scrub.to_string();
  EXPECT_TRUE(first.value().federation == second.value().federation);
  EXPECT_TRUE(first.value().resume == second.value().resume);
}

}  // namespace
}  // namespace numastream
