#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <thread>
#include <utility>

#include "codec/frame.h"
#include "codec/xxhash.h"
#include "common/rng.h"
#include "msg/inproc.h"
#include "msg/message.h"
#include "msg/socket.h"
#include "msg/tcp.h"

namespace numastream {
namespace {

Bytes random_body(std::size_t size, std::uint64_t seed) {
  Bytes body(size);
  Rng rng(seed);
  for (auto& b : body) {
    b = static_cast<std::uint8_t>(rng.next_u64());
  }
  return body;
}

// ---------------------------------------------------------------- framing

TEST(MessageTest, EncodeDecodeRoundTrip) {
  Message original;
  original.stream_id = 3;
  original.sequence = 42;
  original.body = random_body(1000, 1);

  MessageDecoder decoder;
  decoder.feed(encode_message(original));
  auto decoded = decoder.next();
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().stream_id, 3U);
  EXPECT_EQ(decoded.value().sequence, 42U);
  EXPECT_FALSE(decoded.value().end_of_stream);
  EXPECT_EQ(decoded.value().body, original.body);
  // No second message.
  EXPECT_EQ(decoder.next().status().code(), StatusCode::kUnavailable);
}

TEST(MessageTest, EndOfStreamMarker) {
  const Message marker = Message::end_of_stream_marker(7, 99);
  MessageDecoder decoder;
  decoder.feed(encode_message(marker));
  auto decoded = decoder.next();
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().end_of_stream);
  EXPECT_EQ(decoded.value().stream_id, 7U);
  EXPECT_TRUE(decoded.value().body.empty());
}

TEST(MessageTest, EmptyBody) {
  Message m;
  MessageDecoder decoder;
  decoder.feed(encode_message(m));
  ASSERT_TRUE(decoder.next().ok());
}

// Property: any byte-level chunking of a message sequence decodes to the
// same messages.
class MessageChunking : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MessageChunking, ArbitrarySplitsReassemble) {
  const std::size_t chunk_size = GetParam();
  Bytes wire;
  std::vector<Message> sent;
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.stream_id = static_cast<std::uint32_t>(i);
    m.sequence = static_cast<std::uint64_t>(i * 10);
    m.body = random_body(static_cast<std::size_t>(i) * 97, i + 1);
    const Bytes encoded = encode_message(m);
    wire.insert(wire.end(), encoded.begin(), encoded.end());
    sent.push_back(std::move(m));
  }

  MessageDecoder decoder;
  std::vector<Message> received;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::size_t n = std::min(chunk_size, wire.size() - pos);
    decoder.feed(ByteSpan(wire.data() + pos, n));
    pos += n;
    while (true) {
      auto m = decoder.next();
      if (!m.ok()) {
        ASSERT_EQ(m.status().code(), StatusCode::kUnavailable);
        break;
      }
      received.push_back(std::move(m).value());
    }
  }
  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(received[i].stream_id, sent[i].stream_id);
    EXPECT_EQ(received[i].sequence, sent[i].sequence);
    EXPECT_EQ(received[i].body, sent[i].body);
  }
  EXPECT_EQ(decoder.buffered(), 0U);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, MessageChunking,
                         ::testing::Values(1, 7, 31, 32, 33, 100, 1000, 100000));

TEST(MessageDecoderTest, BadMagicIsStickyCorruption) {
  MessageDecoder decoder;
  Bytes wire = encode_message(Message{});
  wire[0] ^= 0xFF;
  decoder.feed(wire);
  EXPECT_EQ(decoder.next().status().code(), StatusCode::kDataLoss);
  // Feeding a good message afterwards does not recover the stream.
  decoder.feed(encode_message(Message{}));
  EXPECT_EQ(decoder.next().status().code(), StatusCode::kDataLoss);
}

TEST(MessageDecoderTest, BodyCorruptionDetected) {
  Message m;
  m.body = random_body(100, 2);
  Bytes wire = encode_message(m);
  wire[kMessageHeaderSize + 50] ^= 1;
  MessageDecoder decoder;
  decoder.feed(wire);
  EXPECT_EQ(decoder.next().status().code(), StatusCode::kDataLoss);
}

TEST(MessageDecoderTest, AbsurdBodySizeRejectedBeforeAllocation) {
  Bytes wire = encode_message(Message{});
  store_le64(wire.data() + 20, 1ULL << 60);  // body size field
  MessageDecoder decoder;
  decoder.feed(wire);
  EXPECT_EQ(decoder.next().status().code(), StatusCode::kDataLoss);
}

TEST(MessageDecoderTest, UnknownFlagsRejected) {
  Bytes wire = encode_message(Message{});
  store_le16(wire.data() + 16, 0x8000);
  MessageDecoder decoder;
  decoder.feed(wire);
  EXPECT_EQ(decoder.next().status().code(), StatusCode::kDataLoss);
}

// --------------------------------------------------------------- handoff

HandoffInfo sample_handoff() {
  return {.phase = HandoffPhase::kJournal,
          .session_id = 0xFEEDFACECAFEULL,
          .epoch = 7,
          .stream_id = 3,
          .source_gateway = 1,
          .target_gateway = 2,
          .watermark = 100161};
}

TEST(HandoffFrameTest, RoundTripPreservesEveryField) {
  const HandoffInfo info = sample_handoff();
  const Message m = Message::handoff_frame(info, /*handoff_sequence=*/42);
  EXPECT_EQ(m.body.size(), kHandoffBodySize);
  MessageDecoder decoder;
  decoder.feed(encode_message(m));
  auto decoded = decoder.next();
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_TRUE(decoded.value().handoff);
  EXPECT_EQ(decoded.value().sequence, 42U);
  auto parsed = parse_handoff_body(
      ByteSpan(decoded.value().body.data(), decoded.value().body.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value(), info);
}

TEST(HandoffFrameTest, EveryPhaseRoundTrips) {
  for (const auto phase : {HandoffPhase::kPrepare, HandoffPhase::kJournal,
                           HandoffPhase::kCommit, HandoffPhase::kAck,
                           HandoffPhase::kAbort}) {
    HandoffInfo info = sample_handoff();
    info.phase = phase;
    const Message m = Message::handoff_frame(info);
    auto parsed = parse_handoff_body(ByteSpan(m.body.data(), m.body.size()));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().phase, phase);
  }
}

TEST(HandoffFrameTest, ForgedPhaseRejected) {
  Message m = Message::handoff_frame(sample_handoff());
  store_le32(m.body.data(), 0);  // phase below the valid range
  EXPECT_EQ(parse_handoff_body(ByteSpan(m.body.data(), m.body.size()))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  store_le32(m.body.data(), 6);  // phase past kAbort
  EXPECT_EQ(parse_handoff_body(ByteSpan(m.body.data(), m.body.size()))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(HandoffFrameTest, WrongBodyLengthRejected) {
  const Message m = Message::handoff_frame(sample_handoff());
  EXPECT_EQ(
      parse_handoff_body(ByteSpan(m.body.data(), m.body.size() - 1)).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(HandoffFrameTest, TruncatedFrameRejectedByDecoder) {
  // A handoff header whose declared body is shorter than kHandoffBodySize is
  // corruption at the decoder layer, before parse_handoff_body ever runs.
  Message m = Message::handoff_frame(sample_handoff());
  m.body.resize(kHandoffBodySize / 2);
  MessageDecoder decoder;
  decoder.feed(encode_message(m));
  EXPECT_EQ(decoder.next().status().code(), StatusCode::kDataLoss);
}

TEST(HandoffFrameTest, ConflictingFlagsRejected) {
  Message m = Message::handoff_frame(sample_handoff());
  m.credit = true;  // HANDOFF cannot also be a credit grant
  MessageDecoder decoder;
  decoder.feed(encode_message(m));
  EXPECT_EQ(decoder.next().status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------- inproc

TEST(InprocTest, BytesFlowBothWays) {
  InprocPair pair = make_inproc_pair();
  const Bytes ping = random_body(100, 3);
  ASSERT_TRUE(pair.first->write_all(ping).is_ok());
  Bytes got(100);
  ASSERT_TRUE(read_exact(*pair.second, got).is_ok());
  EXPECT_EQ(got, ping);

  const Bytes pong = random_body(50, 4);
  ASSERT_TRUE(pair.second->write_all(pong).is_ok());
  Bytes got2(50);
  ASSERT_TRUE(read_exact(*pair.first, got2).is_ok());
  EXPECT_EQ(got2, pong);
}

TEST(InprocTest, ShutdownWriteGivesCleanEof) {
  InprocPair pair = make_inproc_pair();
  ASSERT_TRUE(pair.first->write_all(Bytes{1, 2, 3}).is_ok());
  pair.first->shutdown_write();
  Bytes buf(10);
  auto n = pair.second->read_some(buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 3U);
  n = pair.second->read_some(buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0U);  // EOF
}

TEST(InprocTest, SmallWindowExercisesBackpressure) {
  InprocPair pair = make_inproc_pair(16);  // tiny window
  const Bytes big = random_body(10000, 5);
  std::thread writer([&] { ASSERT_TRUE(pair.first->write_all(big).is_ok()); });
  Bytes got(big.size());
  ASSERT_TRUE(read_exact(*pair.second, got).is_ok());
  writer.join();
  EXPECT_EQ(got, big);
}

TEST(InprocTest, DestroyedPeerFailsWrites) {
  InprocPair pair = make_inproc_pair(16);
  pair.second.reset();
  const Bytes data = random_body(1000, 6);
  EXPECT_EQ(pair.first->write_all(data).code(), StatusCode::kUnavailable);
}

TEST(InprocTest, ReadExactReportsMidMessageEof) {
  InprocPair pair = make_inproc_pair();
  ASSERT_TRUE(pair.first->write_all(Bytes{1, 2}).is_ok());
  pair.first->shutdown_write();
  Bytes buf(10);
  EXPECT_EQ(read_exact(*pair.second, buf).code(), StatusCode::kDataLoss);
}

// The two EOF flavours must stay distinguishable: EOF before the first byte
// is a clean end (UNAVAILABLE), EOF after some bytes is truncation
// (DATA_LOSS). The pipeline's shutdown logic relies on the distinction.
TEST(InprocTest, ReadExactCleanEofBeforeAnyByteIsUnavailable) {
  InprocPair pair = make_inproc_pair();
  pair.first->shutdown_write();  // peer closes without sending anything
  Bytes buf(10);
  EXPECT_EQ(read_exact(*pair.second, buf).code(), StatusCode::kUnavailable);
}

// A peer that dies mid-message-header must surface as DATA_LOSS from the
// socket layer, not hang and not read uninitialized bytes.
TEST(PushPullTest, TruncatedMessageHeaderIsDataLoss) {
  InprocPair pair = make_inproc_pair();
  Message m;
  m.body = random_body(100, 11);
  const Bytes wire = encode_message(m);
  ASSERT_TRUE(
      pair.first->write_all(ByteSpan(wire.data(), kMessageHeaderSize / 2)).is_ok());
  pair.first->shutdown_write();
  PullSocket pull(std::move(pair.second));
  EXPECT_EQ(pull.recv().status().code(), StatusCode::kDataLoss);
}

// Same for a truncated frame inside a complete, checksummed message: the
// frame decoder must reject a header cut short rather than read past it.
TEST(PushPullTest, TruncatedFrameHeaderIsDataLoss) {
  const Bytes frame =
      encode_frame(*codec_by_id(CodecId::kLz4), random_body(1000, 12));
  const ByteSpan truncated(frame.data(), kFrameHeaderSize - 4);
  EXPECT_EQ(decode_frame_content(truncated).status().code(), StatusCode::kDataLoss);
  // And a message whose body is the truncated frame fails at decode, not recv.
  Message m;
  m.body = Bytes(truncated.begin(), truncated.end());
  InprocPair pair = make_inproc_pair();
  PushSocket push(std::move(pair.first));
  ASSERT_TRUE(push.send(m).is_ok());
  ASSERT_TRUE(push.finish(0).is_ok());
  PullSocket pull(std::move(pair.second));
  auto received = pull.recv();
  ASSERT_TRUE(received.ok());  // transport + message layer are intact
  EXPECT_EQ(decode_frame_content(received.value().body).status().code(),
            StatusCode::kDataLoss);
}

TEST(InprocListenerTest, ConnectAcceptPair) {
  InprocListener listener;
  auto client = listener.connect();
  ASSERT_TRUE(client.ok());
  auto server = listener.accept();
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(client.value()->write_all(Bytes{9}).is_ok());
  Bytes got(1);
  ASSERT_TRUE(read_exact(*server.value(), got).is_ok());
  EXPECT_EQ(got[0], 9);
}

TEST(InprocListenerTest, CloseUnblocksAccept) {
  InprocListener listener;
  std::thread acceptor([&] {
    auto stream = listener.accept();
    EXPECT_FALSE(stream.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  listener.close();
  acceptor.join();
  EXPECT_FALSE(listener.connect().ok());
}

// ---------------------------------------------------------------- tcp

TEST(TcpTest, LoopbackRoundTrip) {
  auto listener = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().to_string();
  const std::uint16_t port = listener.value()->port();
  ASSERT_NE(port, 0);

  std::thread server([&] {
    auto stream = listener.value()->accept();
    ASSERT_TRUE(stream.ok());
    Bytes buf(5);
    ASSERT_TRUE(read_exact(*stream.value(), buf).is_ok());
    ASSERT_TRUE(stream.value()->write_all(buf).is_ok());
  });

  auto client = tcp_connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  ASSERT_TRUE(client.value()->write_all(Bytes{'h', 'e', 'l', 'l', 'o'}).is_ok());
  Bytes echo(5);
  ASSERT_TRUE(read_exact(*client.value(), echo).is_ok());
  EXPECT_EQ(echo, (Bytes{'h', 'e', 'l', 'l', 'o'}));
  server.join();
}

TEST(TcpTest, ConnectToClosedPortFails) {
  // Bind + immediately close to find a port that is (very likely) not
  // listening anymore.
  std::uint16_t port = 0;
  {
    auto listener = TcpListener::bind("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    port = listener.value()->port();
  }
  EXPECT_FALSE(tcp_connect("127.0.0.1", port).ok());
}

TEST(TcpTest, BadAddressRejected) {
  EXPECT_EQ(tcp_connect("not-an-ip", 80).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(TcpListener::bind("999.1.1.1", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TcpTest, CloseUnblocksAccept) {
  auto listener = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  std::thread acceptor([&] { EXPECT_FALSE(listener.value()->accept().ok()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  listener.value()->close();
  acceptor.join();
}

// ---------------------------------------------------------------- sockets

TEST(PushPullTest, MessagesOverInproc) {
  InprocPair pair = make_inproc_pair();
  PushSocket push(std::move(pair.first));
  PullSocket pull(std::move(pair.second));

  std::thread producer([&] {
    for (int i = 0; i < 10; ++i) {
      Message m;
      m.stream_id = 1;
      m.sequence = static_cast<std::uint64_t>(i);
      m.body = random_body(5000, i);
      ASSERT_TRUE(push.send(m).is_ok());
    }
    ASSERT_TRUE(push.finish(1).is_ok());
  });

  int received = 0;
  while (true) {
    auto m = pull.recv();
    ASSERT_TRUE(m.ok()) << m.status().to_string();
    if (m.value().end_of_stream) {
      break;
    }
    EXPECT_EQ(m.value().sequence, static_cast<std::uint64_t>(received));
    EXPECT_EQ(m.value().body, random_body(5000, received));
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, 10);
  EXPECT_EQ(pull.bytes_received(), push.bytes_sent());
}

TEST(PushPullTest, MessagesOverTcp) {
  auto listener = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value()->port();

  std::thread producer([&] {
    auto stream = tcp_connect("127.0.0.1", port);
    ASSERT_TRUE(stream.ok());
    PushSocket push(std::move(stream).value());
    Message m;
    m.body = random_body(200000, 9);  // bigger than one socket buffer
    ASSERT_TRUE(push.send(m).is_ok());
    ASSERT_TRUE(push.finish(0).is_ok());
  });

  auto accepted = listener.value()->accept();
  ASSERT_TRUE(accepted.ok());
  PullSocket pull(std::move(accepted).value());
  auto m = pull.recv();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().body, random_body(200000, 9));
  auto eos = pull.recv();
  ASSERT_TRUE(eos.ok());
  EXPECT_TRUE(eos.value().end_of_stream);
  producer.join();
}

TEST(PushPullTest, PeerDisconnectBetweenMessagesIsCleanEnd) {
  InprocPair pair = make_inproc_pair();
  {
    PushSocket push(std::move(pair.first));
    Message m;
    m.body = random_body(10, 1);
    ASSERT_TRUE(push.send(m).is_ok());
    // PushSocket destroyed without finish(): stream closes.
  }
  PullSocket pull(std::move(pair.second));
  ASSERT_TRUE(pull.recv().ok());  // the sent message
  EXPECT_EQ(pull.recv().status().code(), StatusCode::kUnavailable);
}

TEST(PushPullTest, MidMessageDisconnectIsDataLoss) {
  InprocPair pair = make_inproc_pair();
  Message m;
  m.body = random_body(1000, 1);
  Bytes wire = encode_message(m);
  wire.resize(wire.size() / 2);  // cut mid-body
  ASSERT_TRUE(pair.first->write_all(wire).is_ok());
  pair.first->shutdown_write();
  PullSocket pull(std::move(pair.second));
  EXPECT_EQ(pull.recv().status().code(), StatusCode::kDataLoss);
}

// ------------------------------------------------------------------ fuzz

/// The nightly chaos job randomizes this via NUMASTREAM_CHAOS_SEED; unset
/// (the tier-1 default), the sweep is fully deterministic.
std::uint64_t fuzz_seed(std::uint64_t fallback) {
  const char* env = std::getenv("NUMASTREAM_CHAOS_SEED");
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  return std::strtoull(env, nullptr, 10);
}

// Property test for the NSM1 parser: take a valid multi-frame wire image
// (every frame type — resume, REPL, HANDOFF and SCRUB frames included),
// mutate it with seeded
// flips, truncations, splices and garbage insertions, then feed it to the decoder
// in random-sized slices. In every mode, next() must only ever yield a clean
// Status or a message whose body checksum passed — never a crash, hang or UB
// (the sanitizer job runs this same sweep under ASan + UBSan). The header
// has no checksum of its own, so a flipped stream id or sequence can legally
// surface — but every emitted *body* must be byte-identical to an original:
// a mutation that forges body content past the xxhash32 would be a parser
// hole, not luck.
TEST(MessageFuzzTest, MutatedFramesNeverCrashTheDecoder) {
  Rng rng(fuzz_seed(0xF0229EEDULL));
  for (int round = 0; round < 300; ++round) {
    // A valid conversation: data, credit, resume, REPL, HANDOFF, SCRUB and
    // EOS frames.
    std::set<std::uint32_t> original_bodies;  // content hashes
    Bytes wire;
    const std::size_t frame_count = 3 + rng.next_u64() % 6;
    for (std::size_t i = 0; i < frame_count; ++i) {
      Message m;
      switch (rng.next_u64() % 7) {
        case 0:
          m.stream_id = static_cast<std::uint32_t>(rng.next_u64() % 4);
          m.sequence = i;
          m.body = random_body(rng.next_u64() % 600, rng.next_u64());
          break;
        case 1:
          m = Message::credit_grant(1 + rng.next_u64() % 64);
          break;
        case 2:
          m = Message::resume_frame(
              rng.next_u64(),
              {{static_cast<std::uint32_t>(rng.next_u64() % 4), rng.next_u64()}});
          break;
        case 3: {
          // Gateway replication traffic (cluster/replication): append frames
          // carry whole journal records, the other kinds are body-less.
          const auto kind = static_cast<ReplKind>(1 + rng.next_u64() % 4);
          const Bytes records =
              kind == ReplKind::kAppend
                  ? random_body((rng.next_u64() % 4) * kReplRecordSize,
                                rng.next_u64())
                  : Bytes();
          m = Message::repl_frame(kind, rng.next_u64(), 1 + rng.next_u64() % 8,
                                  i, ByteSpan(records.data(), records.size()));
          break;
        }
        case 4:
          // Planned-handoff control traffic (cluster/handoff): fixed-size
          // body, any of the five phases.
          m = Message::handoff_frame(
              {.phase = static_cast<HandoffPhase>(1 + rng.next_u64() % 5),
               .session_id = rng.next_u64(),
               .epoch = rng.next_u64() % 16,
               .stream_id = static_cast<std::uint32_t>(rng.next_u64() % 4),
               .source_gateway = static_cast<std::uint32_t>(rng.next_u64() % 8),
               .target_gateway = static_cast<std::uint32_t>(rng.next_u64() % 8),
               .watermark = rng.next_u64()},
              i);
          break;
        case 5: {
          // Anti-entropy control traffic (cluster/antientropy): digest
          // replies carry range digests, repair push/reply carry whole
          // journal records, the request kinds are payload-free.
          ScrubInfo info;
          info.kind = static_cast<ScrubKind>(1 + rng.next_u64() % 5);
          info.session_id = rng.next_u64();
          info.epoch = rng.next_u64() % 16;
          info.range = rng.next_u64() % 64;
          info.range_records = 1 + static_cast<std::uint32_t>(rng.next_u64() % 64);
          if (info.kind == ScrubKind::kDigestReply) {
            const std::size_t entries = rng.next_u64() % 4;
            for (std::size_t d = 0; d < entries; ++d) {
              info.digests.push_back(
                  {rng.next_u64() % 64,
                   1 + static_cast<std::uint32_t>(rng.next_u64() % 64),
                   static_cast<std::uint32_t>(rng.next_u64())});
            }
          } else if (info.kind == ScrubKind::kRepairPush ||
                     info.kind == ScrubKind::kRepairReply) {
            info.records = random_body((rng.next_u64() % 3) * kScrubRecordSize,
                                       rng.next_u64());
          }
          m = Message::scrub_frame(info, i);
          break;
        }
        default:
          m = Message::end_of_stream_marker(
              static_cast<std::uint32_t>(rng.next_u64() % 4), i);
          break;
      }
      original_bodies.insert(xxhash32(m.body));
      const Bytes encoded = encode_message(m);
      wire.insert(wire.end(), encoded.begin(), encoded.end());
    }

    // Seeded mutations: every round corrupts the image a different way.
    const std::size_t mutations = 1 + rng.next_u64() % 4;
    for (std::size_t m = 0; m < mutations && !wire.empty(); ++m) {
      switch (rng.next_u64() % 4) {
        case 0:  // bit flip anywhere (header, checksum, body)
          wire[rng.next_u64() % wire.size()] ^=
              static_cast<std::uint8_t>(1U << (rng.next_u64() % 8));
          break;
        case 1:  // truncate: a torn send
          wire.resize(wire.size() - rng.next_u64() % std::min<std::size_t>(
                                        wire.size(), kMessageHeaderSize + 7));
          break;
        case 2: {  // splice a random window out of the middle
          const std::size_t at = rng.next_u64() % wire.size();
          const std::size_t len =
              std::min<std::size_t>(wire.size() - at, 1 + rng.next_u64() % 40);
          wire.erase(wire.begin() + static_cast<std::ptrdiff_t>(at),
                     wire.begin() + static_cast<std::ptrdiff_t>(at + len));
          break;
        }
        default: {  // inject garbage that may contain fake magic bytes
          const Bytes garbage = random_body(1 + rng.next_u64() % 50, rng.next_u64());
          const std::size_t at = rng.next_u64() % (wire.size() + 1);
          wire.insert(wire.begin() + static_cast<std::ptrdiff_t>(at),
                      garbage.begin(), garbage.end());
          break;
        }
      }
    }

    for (const auto mode : {MessageDecoder::OnCorruption::kFail,
                            MessageDecoder::OnCorruption::kResync}) {
      MessageDecoder decoder(mode);
      // Feed in random-sized slices so header/body boundaries land anywhere.
      std::size_t offset = 0;
      while (offset < wire.size()) {
        const std::size_t step =
            std::min<std::size_t>(wire.size() - offset, 1 + rng.next_u64() % 97);
        decoder.feed(ByteSpan(wire.data() + offset, step));
        offset += step;
        while (true) {
          auto message = decoder.next();
          if (!message.ok()) {
            ASSERT_TRUE(message.status().code() == StatusCode::kUnavailable ||
                        message.status().code() == StatusCode::kDataLoss)
                << message.status().to_string();
            break;
          }
          ASSERT_TRUE(original_bodies.count(xxhash32(message.value().body)) != 0)
              << "decoder forged body content past the checksum (round "
              << round << ")";
          // Digest-forgery check: any surviving SCRUB body that parses must
          // re-encode byte-identically — the parser can never invent a
          // digest or record that was not on the wire.
          if (message.value().scrub) {
            auto info = parse_scrub_body(ByteSpan(message.value().body.data(),
                                                  message.value().body.size()));
            if (info.ok()) {
              const Message reencoded =
                  Message::scrub_frame(info.value(), message.value().sequence);
              ASSERT_EQ(reencoded.body, message.value().body)
                  << "scrub parse/encode asymmetry forged content (round "
                  << round << ")";
            }
          }
          // Epoch-forgery check: any surviving HANDOFF body that parses
          // must re-encode byte-identically — a mutation can never yield a
          // frame whose parsed phase, epoch or watermark differs from what
          // the encoder would put on the wire for those values, so the
          // fence arithmetic downstream always sees what was sent.
          if (message.value().handoff) {
            auto info = parse_handoff_body(ByteSpan(
                message.value().body.data(), message.value().body.size()));
            if (info.ok()) {
              const Message reencoded = Message::handoff_frame(
                  info.value(), message.value().sequence);
              ASSERT_EQ(reencoded.body, message.value().body)
                  << "handoff parse/encode asymmetry forged content (round "
                  << round << ")";
            }
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace numastream
