// Fast-path subsystem tests (DESIGN.md §15): the NUMA-local chunk pool's
// exactly-once accounting, the fastpath config directive, the StageChannel
// dispatch wrapper, the control-frame size boundary, scatter-gather wire
// equivalence, and the whole pooled pipeline over real sockets.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "codec/frame.h"
#include "core/pipeline.h"
#include "core/stage_channel.h"
#include "data/chunk_pool.h"
#include "metrics/fastpath_counters.h"
#include "msg/inproc.h"
#include "msg/socket.h"
#include "msg/tcp.h"
#include "msg/transport.h"
#include "topo/discover.h"

namespace numastream {
namespace {

// ---------------------------------------------------------------- pool

TEST(ChunkPoolTest, MissThenRecycleThenHit) {
  FastPathCounters counters;
  ChunkPool pool(1, 4, &counters);
  Bytes first = pool.lease(0, 100);
  EXPECT_EQ(first.size(), 100U);
  auto snap = counters.snapshot();
  EXPECT_EQ(snap.pool_leases, 1U);
  EXPECT_EQ(snap.pool_misses, 1U);
  EXPECT_EQ(snap.pool_hits, 0U);

  first.resize(100);
  pool.recycle(0, std::move(first));
  Bytes second = pool.lease(0, 64);
  EXPECT_EQ(second.size(), 64U);
  snap = counters.snapshot();
  EXPECT_EQ(snap.pool_leases, 2U);
  EXPECT_EQ(snap.pool_hits, 1U);
  EXPECT_EQ(snap.pool_recycles, 1U);
}

TEST(ChunkPoolTest, UnknownDomainClampsToShelfZero) {
  FastPathCounters counters;
  ChunkPool pool(2, 4, &counters);
  pool.recycle(-1, Bytes(32, 0x1));  // kOsChoice domain lands on shelf 0
  Bytes leased = pool.lease(-1, 32);
  EXPECT_EQ(counters.snapshot().pool_hits, 1U);
  // Out-of-range domains wrap instead of crashing.
  pool.recycle(7, std::move(leased));
  (void)pool.lease(7, 16);
  EXPECT_EQ(counters.snapshot().pool_hits, 2U);
}

TEST(ChunkPoolTest, FullShelfDiscardsInsteadOfGrowing) {
  FastPathCounters counters;
  ChunkPool pool(1, 2, &counters);
  pool.recycle(0, Bytes(8, 0x1));
  pool.recycle(0, Bytes(8, 0x2));
  pool.recycle(0, Bytes(8, 0x3));  // shelf holds 2; the third is freed
  const auto snap = counters.snapshot();
  EXPECT_EQ(snap.pool_recycles, 2U);
  EXPECT_EQ(snap.pool_discards, 1U);
}

TEST(ChunkPoolTest, EmptyBufferIsDiscardedNotShelved) {
  FastPathCounters counters;
  ChunkPool pool(1, 4, &counters);
  pool.recycle(0, Bytes());
  EXPECT_EQ(counters.snapshot().pool_recycles, 0U);
  EXPECT_EQ(counters.snapshot().pool_hits + counters.snapshot().pool_misses,
            counters.snapshot().pool_leases);
}

TEST(ChunkPoolTest, ExactlyOnceAccountingUnderChaos) {
  // Threads lease and recycle across domains at random-ish interleavings;
  // some buffers are dropped on the floor (the crash/shed path). The
  // ledger must stay exact: every lease is a hit or a miss, and nothing
  // is recycled or discarded that was never leased back.
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  FastPathCounters counters;
  ChunkPool pool(2, 8, &counters);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int domain = (t + i) % 2;
        Bytes buffer = pool.lease(domain, 64 + static_cast<std::size_t>(i % 7));
        ASSERT_EQ(buffer.size(), 64U + static_cast<std::size_t>(i % 7));
        if (i % 5 != 0) {  // every 5th buffer is dropped on the floor
          pool.recycle(domain, std::move(buffer));
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  const auto snap = counters.snapshot();
  EXPECT_EQ(snap.pool_leases,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(snap.pool_hits + snap.pool_misses, snap.pool_leases);
  EXPECT_LE(snap.pool_recycles + snap.pool_discards, snap.pool_leases);
  EXPECT_GT(snap.pool_hits, 0U);  // steady state actually recycled
}

// --------------------------------------------------------------- config

TEST(FastPathConfigTest, DefaultIsOffAndSerializesToNothing) {
  NodeConfig config;
  config.node_name = "n";
  config.role = NodeRole::kSender;
  config.tasks = {TaskGroupConfig{.type = TaskType::kSend, .count = 1}};
  EXPECT_FALSE(config.fastpath.enabled());
  EXPECT_EQ(config.serialize().find("fastpath"), std::string::npos);
}

TEST(FastPathConfigTest, RoundTripsThroughText) {
  NodeConfig config;
  config.node_name = "n";
  config.role = NodeRole::kSender;
  config.tasks = {TaskGroupConfig{.type = TaskType::kSend, .count = 1}};
  config.fastpath.rings = true;
  config.fastpath.pool_buffers = 6;
  const std::string text = config.serialize();
  EXPECT_NE(text.find("fastpath rings=on pool_buffers=6"), std::string::npos);
  auto parsed = NodeConfig::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().fastpath, config.fastpath);
}

TEST(FastPathConfigTest, DuplicateDirectiveRejected) {
  const auto status = NodeConfig::parse(
      "node n\nrole sender\ntask send count=1\n"
      "fastpath rings=on\nfastpath pool_buffers=2\n");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), StatusCode::kInvalidArgument);
}

TEST(FastPathConfigTest, RingsRejectEvictingShedPolicies) {
  // A lock-free ring cannot scan-and-remove interior elements, so rings=on
  // with drop_oldest/priority_evict must fail validation loudly. (Parsing
  // succeeds — cross-policy checks live in validate(), which the pipeline
  // runs before any thread starts.)
  auto topo = discover_topology();
  ASSERT_TRUE(topo.ok());
  for (const char* shed : {"drop_oldest", "priority_evict"}) {
    const auto result = NodeConfig::parse(
        "node n\nrole sender\ntask send count=1\n"
        "overload budget_bytes=0 credit_window=0 shed=" +
        std::string(shed) +
        " high_watermark=4 low_watermark=2\n"
        "fastpath rings=on\n");
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    const Status status = result.value().validate(topo.value());
    ASSERT_FALSE(status.is_ok()) << shed;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.to_string().find("fastpath rings=on is incompatible"),
              std::string::npos);
  }
  // block and drop_newest stay compatible.
  const auto compatible = NodeConfig::parse(
      "node n\nrole sender\ntask send count=1\n"
      "overload budget_bytes=0 credit_window=0 shed=drop_newest "
      "high_watermark=4 low_watermark=2\n"
      "fastpath rings=on pool_buffers=4\n");
  ASSERT_TRUE(compatible.ok());
  EXPECT_TRUE(compatible.value().validate(topo.value()).is_ok());
}

// -------------------------------------------------------- stage channel

TEST(StageChannelTest, MutexModeRoundTrip) {
  StageChannel<int> channel(4, 2, /*rings=*/false);
  EXPECT_FALSE(channel.lock_free());
  ASSERT_TRUE(channel.push(1).is_ok());
  ASSERT_TRUE(channel.push(2).is_ok());
  EXPECT_EQ(channel.pop(0).value(), 1);
  EXPECT_EQ(channel.pop(1).value(), 2);  // any consumer index works
  channel.close();
  EXPECT_FALSE(channel.pop(0).has_value());
}

TEST(StageChannelTest, RingModeRoundTripAndCounters) {
  FastPathCounters counters;
  {
    StageChannel<int> channel(8, 2, /*rings=*/true, &counters);
    EXPECT_TRUE(channel.lock_free());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(channel.push(i).is_ok());
    }
    int drained = 0;
    while (channel.try_pop_any().has_value()) {
      ++drained;
    }
    EXPECT_EQ(drained, 6);
    channel.close();
  }  // destructor flushes parks
  const auto snap = counters.snapshot();
  EXPECT_EQ(snap.ring_pushes, 6U);
}

TEST(StageChannelTest, RingModeCancelViaSignal) {
  FastPathCounters counters;
  CancelSignal cancel;
  StageChannel<int> channel(4, 1, /*rings=*/true, &counters);
  channel.bind_cancel(&cancel);
  std::thread consumer([&] {
    EXPECT_FALSE(channel.pop(0, cancel.flag()).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel.raise();
  consumer.join();
}

// ------------------------------------------------- control-frame bounds

std::vector<ResumePoint> make_points(std::size_t count) {
  std::vector<ResumePoint> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back(ResumePoint{static_cast<std::uint32_t>(i), i});
  }
  return points;
}

TEST(ControlFrameBoundaryTest, LargestFittingResumeFrameIsAccepted) {
  // Resume body = 12 bytes prefix + 12 per point: 340 points = 4092 bytes,
  // the largest whole frame under kMaxControlBody (4096).
  InprocPair pair = make_inproc_pair(1 << 20);
  PushSocket push(std::move(pair.first));
  const Message frame = Message::resume_frame(77, make_points(340));
  ASSERT_LE(frame.body.size(), kMaxControlBody);
  ASSERT_TRUE(pair.second->write_all(encode_message(frame)).is_ok());
  auto received = push.recv_control();
  ASSERT_TRUE(received.ok()) << received.status().to_string();
  EXPECT_TRUE(received.value().resume);
  EXPECT_EQ(received.value().body.size(), frame.body.size());
}

TEST(ControlFrameBoundaryTest, OversizedControlFrameFailsLoudly) {
  // One more point crosses the bound: the socket must fail the stream
  // with DATA_LOSS naming the limit — never truncate or silently accept.
  InprocPair pair = make_inproc_pair(1 << 20);
  PushSocket push(std::move(pair.first));
  const Message frame = Message::resume_frame(77, make_points(341));
  ASSERT_GT(frame.body.size(), kMaxControlBody);
  ASSERT_TRUE(pair.second->write_all(encode_message(frame)).is_ok());
  auto received = push.recv_control();
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(received.status().to_string().find("kMaxControlBody"),
            std::string::npos);
}

// --------------------------------------------- scatter-gather equivalence

TEST(ScatterGatherTest, WireBytesIdenticalToEncodeMessage) {
  // PushSocket::send writes header and payload as separate iovecs; the
  // bytes on the wire must still be exactly encode_message's.
  InprocPair pair = make_inproc_pair(1 << 20);
  PushSocket push(std::move(pair.first));
  Message message;
  message.stream_id = 3;
  message.sequence = 41;
  message.body = Bytes(10000, 0x5a);
  const Bytes expected = encode_message(message);
  ASSERT_TRUE(push.send(message).is_ok());
  Bytes wire(expected.size());
  ASSERT_TRUE(read_exact(*pair.second, wire).is_ok());
  EXPECT_EQ(wire, expected);
}

// ---------------------------------------------------- pooled pipeline

TEST(FastpathPipelineTest, FullPipelineWithRingsAndPool) {
  auto topo_result = discover_topology();
  ASSERT_TRUE(topo_result.ok());
  const MachineTopology topo = std::move(topo_result).value();
  TomoConfig tomo;
  tomo.rows = 64;
  tomo.cols = 100;
  tomo.num_spheres = 4;

  NodeConfig sender_config;
  sender_config.node_name = "fp-sender";
  sender_config.role = NodeRole::kSender;
  sender_config.chunk_bytes = tomo.chunk_bytes();
  sender_config.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = 3},
      TaskGroupConfig{.type = TaskType::kSend, .count = 2},
  };
  sender_config.fastpath.rings = true;
  sender_config.fastpath.pool_buffers = 4;
  NodeConfig receiver_config;
  receiver_config.node_name = "fp-receiver";
  receiver_config.role = NodeRole::kReceiver;
  receiver_config.chunk_bytes = tomo.chunk_bytes();
  receiver_config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 2},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 2},
  };
  receiver_config.fastpath.rings = true;
  receiver_config.fastpath.pool_buffers = 4;

  auto listener = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value()->port();

  const std::uint64_t kChunks = 25;
  TomoChunkSource source(tomo, 1, kChunks);
  CountingSink sink;

  SenderStats sender_stats;
  std::thread sender_thread([&] {
    StreamSender sender(topo, sender_config);
    auto stats =
        sender.run(source, [&] { return tcp_connect("127.0.0.1", port); });
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    sender_stats = stats.value();
  });

  CountingSink receiver_sink;
  StreamReceiver receiver(topo, receiver_config);
  auto stats = receiver.run(*listener.value(), receiver_sink);
  sender_thread.join();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();

  EXPECT_EQ(receiver_sink.chunks(), kChunks);
  EXPECT_EQ(stats.value().raw_bytes, kChunks * tomo.chunk_bytes());
  EXPECT_EQ(stats.value().corrupt_frames, 0U);
  EXPECT_EQ(stats.value().wire_bytes, sender_stats.wire_bytes);

  // The fastpath actually ran: every chunk crossed a ring on both ends,
  // and the sender-side pool reached steady-state recycling.
  EXPECT_EQ(sender_stats.fastpath.ring_pushes, kChunks);
  EXPECT_EQ(stats.value().fastpath.ring_pushes, kChunks);
  EXPECT_EQ(sender_stats.fastpath.pool_leases, kChunks);
  EXPECT_GT(sender_stats.fastpath.pool_hits, 0U);
  EXPECT_GT(stats.value().fastpath.pool_leases, 0U);
}

TEST(FastpathPipelineTest, MutexModeStatsStayZero) {
  // With the directive off (the default) the pipeline must not report any
  // fastpath activity — the counters are the proof the default path is
  // byte-for-byte the pre-fastpath runtime.
  auto topo_result = discover_topology();
  ASSERT_TRUE(topo_result.ok());
  const MachineTopology topo = std::move(topo_result).value();
  TomoConfig tomo;
  tomo.rows = 64;
  tomo.cols = 100;
  tomo.num_spheres = 4;

  NodeConfig sender_config;
  sender_config.node_name = "fp-off-sender";
  sender_config.role = NodeRole::kSender;
  sender_config.chunk_bytes = tomo.chunk_bytes();
  sender_config.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = 1},
      TaskGroupConfig{.type = TaskType::kSend, .count = 1},
  };
  NodeConfig receiver_config;
  receiver_config.node_name = "fp-off-receiver";
  receiver_config.role = NodeRole::kReceiver;
  receiver_config.chunk_bytes = tomo.chunk_bytes();
  receiver_config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 1},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 1},
  };

  auto listener = TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value()->port();

  TomoChunkSource source(tomo, 1, 5);
  SenderStats sender_stats;
  std::thread sender_thread([&] {
    StreamSender sender(topo, sender_config);
    auto stats =
        sender.run(source, [&] { return tcp_connect("127.0.0.1", port); });
    ASSERT_TRUE(stats.ok());
    sender_stats = stats.value();
  });
  CountingSink sink;
  StreamReceiver receiver(topo, receiver_config);
  auto stats = receiver.run(*listener.value(), sink);
  sender_thread.join();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(sender_stats.fastpath.ring_pushes, 0U);
  EXPECT_EQ(sender_stats.fastpath.pool_leases, 0U);
  EXPECT_EQ(stats.value().fastpath.ring_pushes, 0U);
  EXPECT_EQ(stats.value().fastpath.pool_leases, 0U);
}

}  // namespace
}  // namespace numastream
