#include <gtest/gtest.h>

#include "common/units.h"
#include "simhw/machine.h"
#include "simhw/network.h"
#include "simhw/scheduler.h"

namespace numastream::simrt {
namespace {

HostParams test_params() {
  return HostParams{.memory_bandwidth = 50e9,
                    .interconnect_bandwidth = 20e9,
                    .remote_access_cpu_penalty = 0.2,
                    .core_oversubscription_overhead = 0.1,
                    .unpinned_cpu_overhead = 0.25};
}

TEST(SimHostTest, RegistersAllResources) {
  sim::Simulation sim;
  const MachineTopology topo = lynxdtn_topology();
  SimHost host(sim, topo, test_params());
  // 32 cores + 2 MCs + 1 UPI + 2 NICs.
  EXPECT_EQ(sim.resource_count(), 37U);
  EXPECT_DOUBLE_EQ(sim.resource_capacity(host.core_resource(0)), 1.0);
  EXPECT_DOUBLE_EQ(sim.resource_capacity(host.memory_resource(1)), 50e9);
  EXPECT_DOUBLE_EQ(sim.resource_capacity(host.interconnect_resource()), 20e9);
  auto nic = host.nic_resource("mlx5_stream");
  ASSERT_TRUE(nic.ok());
  EXPECT_DOUBLE_EQ(sim.resource_capacity(nic.value()),
                   gbps_to_bytes_per_sec(200.0));
  EXPECT_FALSE(host.nic_resource("eth99").ok());
}

TEST(SimHostTest, DomainOfCore) {
  sim::Simulation sim;
  const MachineTopology topo = lynxdtn_topology();
  SimHost host(sim, topo, test_params());
  EXPECT_EQ(host.domain_of_core(0), 0);
  EXPECT_EQ(host.domain_of_core(31), 1);
}

TEST(SimHostTest, LocalStepHasNoInterconnectDemand) {
  sim::Simulation sim;
  const MachineTopology topo = lynxdtn_topology();
  SimHost host(sim, topo, test_params());
  SimHost::StepSpec step;
  step.core = 20;  // domain 1
  step.work_bytes = 100;
  step.cpu_seconds_per_byte = 1e-9;
  step.accesses = {{.data_domain = 1, .bytes_per_work = 1.0}};
  const sim::JobSpec job = host.step_job(step);
  for (const auto& demand : job.demands.demands) {
    EXPECT_NE(demand.resource, host.interconnect_resource());
  }
  // CPU demand unpenalized: local access.
  EXPECT_DOUBLE_EQ(job.demands.demands[0].units_per_work, 1e-9);
  EXPECT_DOUBLE_EQ(job.demands.weight, 1e9);
}

TEST(SimHostTest, RemoteStepCrossesInterconnect) {
  sim::Simulation sim;
  const MachineTopology topo = lynxdtn_topology();
  SimHost host(sim, topo, test_params());
  SimHost::StepSpec step;
  step.core = 0;  // domain 0
  step.work_bytes = 100;
  step.cpu_seconds_per_byte = 1e-9;
  step.accesses = {{.data_domain = 1, .bytes_per_work = 0.5}};
  const sim::JobSpec job = host.step_job(step);
  bool upi = false;
  for (const auto& demand : job.demands.demands) {
    if (demand.resource == host.interconnect_resource()) {
      upi = true;
      EXPECT_DOUBLE_EQ(demand.units_per_work, 0.5);
    }
  }
  EXPECT_TRUE(upi);
}

TEST(SimHostTest, RemotePenaltyOnlyForLatencySensitiveSteps) {
  sim::Simulation sim;
  const MachineTopology topo = lynxdtn_topology();
  SimHost host(sim, topo, test_params());
  SimHost::StepSpec step;
  step.core = 0;
  step.work_bytes = 100;
  step.cpu_seconds_per_byte = 1e-9;
  step.accesses = {{.data_domain = 1, .bytes_per_work = 1.0}};

  // Streaming compute (prefetch hides remote latency): no penalty.
  const sim::JobSpec compute = host.step_job(step);
  EXPECT_DOUBLE_EQ(compute.demands.demands[0].units_per_work, 1e-9);

  // Packet processing: the paper's ~15% penalty applies.
  step.latency_sensitive = true;
  const sim::JobSpec packet = host.step_job(step);
  EXPECT_DOUBLE_EQ(packet.demands.demands[0].units_per_work, 1e-9 * 1.2);
}

TEST(SimHostTest, UnpinnedStepsPayMigrationOverhead) {
  sim::Simulation sim;
  const MachineTopology topo = lynxdtn_topology();
  SimHost host(sim, topo, test_params());
  SimHost::StepSpec step;
  step.core = 0;
  step.work_bytes = 100;
  step.cpu_seconds_per_byte = 1e-9;
  step.pinned = false;
  const sim::JobSpec job = host.step_job(step);
  EXPECT_DOUBLE_EQ(job.demands.demands[0].units_per_work, 1e-9 * 1.25);
}

TEST(SimHostTest, MetricsAttribution) {
  sim::Simulation sim;
  const MachineTopology topo = lynxdtn_topology();
  SimHost host(sim, topo, test_params());
  // One remote step executed to completion.
  sim.spawn([](sim::Simulation& s, SimHost& h) -> sim::SimProc {
    SimHost::StepSpec step;
    step.core = 0;
    step.work_bytes = 1000;
    step.cpu_seconds_per_byte = 1e-3;
    step.accesses = {{.data_domain = 1, .bytes_per_work = 1.0},
                     {.data_domain = 0, .bytes_per_work = 2.0}};
    sim::JobSpec job = h.step_job(step);
    co_await s.job(std::move(job));
  }(sim, host));
  sim.run();
  host.usage().set_elapsed(sim.now());
  EXPECT_NEAR(host.usage().utilization(0), 1.0, 1e-6);  // fully busy
  EXPECT_EQ(host.remote_access().remote_bytes(0), 1000U);
  EXPECT_EQ(host.remote_access().local_bytes(0), 2000U);
  // Interconnect consumed exactly the remote bytes.
  EXPECT_NEAR(sim.consumed(host.interconnect_resource()), 1000.0, 1e-6);
}

// ---------------------------------------------------------------- link

TEST(SimLinkTest, TransferDemandsCoverEveryHop) {
  sim::Simulation sim;
  const MachineTopology topo = lynxdtn_topology();
  SimHost receiver(sim, topo, test_params());
  SimLink link(sim, "path", LinkParams{.bandwidth_gbps = 200, .efficiency = 0.97});
  const int rx_nic = receiver.nic_resource("mlx5_stream").value();
  const sim::JobSpec job = link.transfer_job(receiver, /*sender_nic=*/rx_nic, rx_nic,
                                             /*nic_domain=*/1, 1000.0);
  ASSERT_EQ(job.demands.demands.size(), 4U);
  // Protocol overhead inflates line-rate hops; DMA hits DRAM at 1:1.
  EXPECT_NEAR(job.demands.demands[0].units_per_work, 1.0 / 0.97, 1e-12);
  EXPECT_DOUBLE_EQ(job.demands.demands[3].units_per_work, 1.0);
  EXPECT_EQ(job.demands.demands[3].resource, receiver.memory_resource(1));
}

TEST(SimLinkTest, PerConnectionCapIsCarried) {
  sim::Simulation sim;
  const MachineTopology topo = lynxdtn_topology();
  SimHost receiver(sim, topo, test_params());
  SimLink link(sim, "path", LinkParams{});
  const int nic = receiver.nic_resource("mlx5_stream").value();
  const sim::JobSpec job = link.transfer_job(receiver, nic, nic, 1, 1000.0, 5e9);
  EXPECT_DOUBLE_EQ(job.demands.rate_cap, 5e9);
}

// ---------------------------------------------------------------- scheduler

TEST(AssignPinnedTest, SingleDomainRoundRobin) {
  const MachineTopology topo = lynxdtn_topology();
  const std::vector<NumaBinding> bindings = {
      NumaBinding{.execution_domain = 1, .memory_domain = 1}};
  const auto cores = assign_pinned(topo, bindings, 20);
  ASSERT_EQ(cores.size(), 20U);
  EXPECT_EQ(cores[0], 16);
  EXPECT_EQ(cores[15], 31);
  EXPECT_EQ(cores[16], 16);  // wraps: oversubscription beyond 16 threads
}

TEST(AssignPinnedTest, SplitAlternatesDomains) {
  const MachineTopology topo = lynxdtn_topology();
  const std::vector<NumaBinding> bindings = {
      NumaBinding{.execution_domain = 0, .memory_domain = 0},
      NumaBinding{.execution_domain = 1, .memory_domain = 1}};
  const auto cores = assign_pinned(topo, bindings, 6);
  EXPECT_EQ(cores, (std::vector<int>{0, 16, 1, 17, 2, 18}));
}

TEST(OsSchedulerTest, LeastLoadedSpreadsEvenly) {
  const MachineTopology topo = lynxdtn_topology();
  OsScheduler os(topo, OsScheduler::Mode::kLeastLoaded, 1);
  const auto cores = os.place_threads(32);
  std::vector<int> counts(32, 0);
  for (const int core : cores) {
    counts[static_cast<std::size_t>(core)]++;
  }
  for (const int count : counts) {
    EXPECT_EQ(count, 1);  // perfectly balanced: one thread per core
  }
}

TEST(OsSchedulerTest, RandomIsDeterministicPerSeed) {
  const MachineTopology topo = lynxdtn_topology();
  OsScheduler a(topo, OsScheduler::Mode::kRandom, 7);
  OsScheduler b(topo, OsScheduler::Mode::kRandom, 7);
  EXPECT_EQ(a.place_threads(16), b.place_threads(16));
  OsScheduler c(topo, OsScheduler::Mode::kRandom, 8);
  EXPECT_NE(a.place_threads(16), c.place_threads(16));
}

TEST(OsSchedulerTest, RandomProducesCollisions) {
  // The property the OS baseline depends on: blind placement of 32 threads
  // on 32 cores leaves some cores doubly loaded and others idle.
  const MachineTopology topo = lynxdtn_topology();
  OsScheduler os(topo, OsScheduler::Mode::kRandom, 3);
  const auto cores = os.place_threads(32);
  std::vector<int> counts(32, 0);
  for (const int core : cores) {
    counts[static_cast<std::size_t>(core)]++;
  }
  int collisions = 0;
  for (const int count : counts) {
    collisions += count > 1 ? 1 : 0;
  }
  EXPECT_GT(collisions, 0);
}

}  // namespace
}  // namespace numastream::simrt
