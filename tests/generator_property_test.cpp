// Property tests for the configuration generator: for every (receiver
// topology, sender mix, stream count, strategy) combination, the generated
// plan must satisfy the invariants the paper's observations demand.
#include <gtest/gtest.h>

#include <map>

#include "core/config_generator.h"
#include "topo/topology.h"

namespace numastream {
namespace {

struct Scenario {
  std::string name;
  MachineTopology receiver;
  int num_streams;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  for (const int streams : {1, 2, 3, 4, 8, 16}) {
    out.push_back({"lynxdtn_" + std::to_string(streams), lynxdtn_topology(), streams});
  }
  for (const int streams : {1, 2, 4}) {
    out.push_back({"polaris_" + std::to_string(streams),
                   polaris_topology("gateway"), streams});
  }
  return out;
}

std::vector<MachineTopology> mixed_senders(int count) {
  std::vector<MachineTopology> senders;
  for (int i = 0; i < count; ++i) {
    senders.push_back(i % 2 == 0 ? updraft_topology("u" + std::to_string(i))
                                 : polaris_topology("p" + std::to_string(i)));
  }
  return senders;
}

class GeneratorProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, PlacementStrategy>> {};

TEST_P(GeneratorProperty, PlanSatisfiesTheObservations) {
  const auto [scenario_index, strategy] = GetParam();
  const Scenario scenario = scenarios()[scenario_index];
  const auto senders = mixed_senders(scenario.num_streams);

  ConfigGenerator generator(scenario.receiver, senders);
  WorkloadSpec spec;
  spec.num_streams = scenario.num_streams;
  auto plan = generator.generate(spec, strategy);
  ASSERT_TRUE(plan.ok()) << scenario.name << ": " << plan.status().to_string();

  // Every emitted config validates against its topology.
  EXPECT_TRUE(plan.value().receiver.validate(scenario.receiver).is_ok());
  ASSERT_EQ(plan.value().senders.size(), senders.size());
  for (std::size_t i = 0; i < senders.size(); ++i) {
    EXPECT_TRUE(plan.value().senders[i].validate(senders[i]).is_ok());
  }

  const auto nic = scenario.receiver.preferred_nic();
  ASSERT_TRUE(nic.has_value());
  const int nic_cores = static_cast<int>(
      scenario.receiver.domain(nic->numa_domain).value().cpus.count());

  int total_receive_threads = 0;
  for (int stream = 0; stream < scenario.num_streams; ++stream) {
    const int receive =
        plan.value().receiver.thread_count(TaskType::kReceive, stream);
    const int send = plan.value()
                         .senders[static_cast<std::size_t>(stream)]
                         .thread_count(TaskType::kSend);
    // Symmetry: x send threads = x receive threads (one TCP stream each).
    EXPECT_EQ(send, receive) << scenario.name << " stream " << stream;
    EXPECT_GE(receive, 1);
    total_receive_threads += receive;

    // Obs. 2: compression never exceeds the sender's core count.
    const auto& sender_topo = senders[static_cast<std::size_t>(stream)];
    EXPECT_LE(plan.value()
                  .senders[static_cast<std::size_t>(stream)]
                  .thread_count(TaskType::kCompress),
              static_cast<int>(sender_topo.cpu_count()));
    EXPECT_GE(plan.value().receiver.thread_count(TaskType::kDecompress, stream), 1);
  }
  // Obs. 1/4: the NIC domain is never oversubscribed by receive threads.
  EXPECT_LE(total_receive_threads, nic_cores) << scenario.name;

  for (const auto& group : plan.value().receiver.tasks) {
    for (const auto& binding : group.bindings) {
      if (strategy == PlacementStrategy::kOsManaged) {
        EXPECT_TRUE(binding.os_managed()) << scenario.name;
      } else {
        ASSERT_FALSE(binding.os_managed()) << scenario.name;
        if (group.type == TaskType::kReceive) {
          // Obs. 1: receive threads live in the NIC domain.
          EXPECT_EQ(binding.execution_domain, nic->numa_domain) << scenario.name;
        } else if (scenario.receiver.domain_count() > 1) {
          // Obs. 3: decompressors keep out of the NIC domain when possible.
          EXPECT_NE(binding.execution_domain, nic->numa_domain) << scenario.name;
        }
      }
    }
  }

  // The two strategies always agree on thread counts: the comparison in
  // Fig. 14 isolates placement, not parallelism.
  const auto other = generator.generate(
      spec, strategy == PlacementStrategy::kNumaAware
                ? PlacementStrategy::kOsManaged
                : PlacementStrategy::kNumaAware);
  ASSERT_TRUE(other.ok());
  for (const TaskType type : {TaskType::kReceive, TaskType::kDecompress}) {
    EXPECT_EQ(plan.value().receiver.thread_count(type),
              other.value().receiver.thread_count(type))
        << scenario.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, GeneratorProperty,
    ::testing::Combine(::testing::Range<std::size_t>(0, 9),
                       ::testing::Values(PlacementStrategy::kNumaAware,
                                         PlacementStrategy::kOsManaged)));

TEST(GeneratorPropertyTest, SerializedPlansReparseIdentically) {
  // The full plan survives a round trip through the text format — the
  // property that makes shipping configs to remote nodes safe.
  ConfigGenerator generator(lynxdtn_topology(), mixed_senders(4));
  WorkloadSpec spec;
  spec.num_streams = 4;
  auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  ASSERT_TRUE(plan.ok());
  for (const NodeConfig* config :
       {&plan.value().receiver, &plan.value().senders[0], &plan.value().senders[3]}) {
    auto reparsed = NodeConfig::parse(config->serialize());
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().to_string();
    EXPECT_EQ(reparsed.value().serialize(), config->serialize());
    EXPECT_EQ(reparsed.value().tasks.size(), config->tasks.size());
  }
}

}  // namespace
}  // namespace numastream

namespace numastream {
namespace {

// ------------------------------------------------------------- multi-NIC

TEST(MultiNicGeneratorTest, StreamsSpreadAcrossBothNics) {
  const MachineTopology gateway = dual_nic_gateway_topology();
  ConfigGenerator generator(gateway, {updraft_topology("s0"), updraft_topology("s1"),
                                      updraft_topology("s2"), updraft_topology("s3")});
  WorkloadSpec spec;
  spec.num_streams = 4;
  spec.use_all_nics = true;
  auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();

  ASSERT_EQ(plan.value().stream_receiver_nics.size(), 4U);
  int on_a = 0;
  int on_b = 0;
  for (const auto& nic : plan.value().stream_receiver_nics) {
    if (nic == "mlx5_a") {
      ++on_a;
    } else if (nic == "mlx5_b") {
      ++on_b;
    }
  }
  EXPECT_EQ(on_a, 2);
  EXPECT_EQ(on_b, 2);

  // Each stream's receive threads sit in its own NIC's domain; its
  // decompression threads in the other domain.
  for (int stream = 0; stream < 4; ++stream) {
    const int nic_domain = plan.value().stream_receiver_nics[
                               static_cast<std::size_t>(stream)] == "mlx5_a"
                               ? 0
                               : 1;
    for (const auto& group : plan.value().receiver.tasks) {
      if (group.stream_id != stream) {
        continue;
      }
      for (const auto& binding : group.bindings) {
        if (group.type == TaskType::kReceive) {
          EXPECT_EQ(binding.execution_domain, nic_domain);
        } else {
          EXPECT_EQ(binding.execution_domain, 1 - nic_domain);
        }
      }
    }
  }
}

TEST(MultiNicGeneratorTest, SharedDomainsAreNeverOvercommitted) {
  const MachineTopology gateway = dual_nic_gateway_topology();
  for (const int streams : {2, 4, 8}) {
    std::vector<MachineTopology> senders(static_cast<std::size_t>(streams),
                                         updraft_topology());
    ConfigGenerator generator(gateway, senders);
    WorkloadSpec spec;
    spec.num_streams = streams;
    spec.use_all_nics = true;
    auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
    ASSERT_TRUE(plan.ok()) << streams << ": " << plan.status().to_string();

    // Threads pinned per domain never exceed its core count (receive +
    // decompression share each domain on a dual-NIC gateway).
    std::map<int, int> threads_per_domain;
    for (const auto& group : plan.value().receiver.tasks) {
      for (int i = 0; i < group.count; ++i) {
        const auto& binding = group.bindings[static_cast<std::size_t>(i) %
                                             group.bindings.size()];
        threads_per_domain[binding.execution_domain] += 1;
      }
    }
    for (const auto& [domain, threads] : threads_per_domain) {
      EXPECT_LE(threads,
                static_cast<int>(gateway.domain(domain).value().cpus.count()))
          << streams << " streams, domain " << domain;
    }
  }
}

TEST(MultiNicGeneratorTest, SingleNicDefaultIsUnchanged) {
  // use_all_nics=false on lynxdtn keeps the paper's classic partition.
  ConfigGenerator generator(lynxdtn_topology(),
                            {updraft_topology("s0"), updraft_topology("s1"),
                             updraft_topology("s2"), updraft_topology("s3")});
  WorkloadSpec spec;
  spec.num_streams = 4;
  auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  ASSERT_TRUE(plan.ok());
  for (const auto& nic : plan.value().stream_receiver_nics) {
    EXPECT_EQ(nic, "mlx5_stream");
  }
  EXPECT_EQ(plan.value().receiver.thread_count(TaskType::kReceive), 16);
  EXPECT_EQ(plan.value().receiver.thread_count(TaskType::kDecompress), 16);
}

}  // namespace
}  // namespace numastream
