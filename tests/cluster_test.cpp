// Gateway-federation tests (DESIGN.md §12): the consistent-hash ring, the
// REPL wire frame, synchronous journal replication with the standby-first
// durability invariant, epoch fencing under a split-brain partition, the
// `cluster` config directive, heartbeat failure detection, failover
// planning, journal-media fault injection, a real-pipeline whole-gateway
// failover with exactly-once intact across gateways, and the simulated
// cluster's bit-identical federation-counter fingerprint.
//
// Everything here is deterministic: partitions, kills and heartbeat
// starvation are driven by the test (or a seeded schedule), so a failing
// run replays bit-identically.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/failover.h"
#include "cluster/replication.h"
#include "cluster/ring.h"
#include "codec/xxhash.h"
#include "common/rng.h"
#include "core/config.h"
#include "core/config_generator.h"
#include "core/journal.h"
#include "core/pipeline.h"
#include "metrics/fault_counters.h"
#include "metrics/federation_counters.h"
#include "metrics/resume_counters.h"
#include "msg/faulty.h"
#include "msg/inproc.h"
#include "msg/message.h"
#include "simrt/driver.h"
#include "topo/discover.h"
#include "topo/topology.h"

namespace numastream {
namespace {

using cluster::FailoverCoordinator;
using cluster::GatewayRing;
using cluster::InprocReplicationLink;
using cluster::PeerFailureDetector;
using cluster::PrimaryReplicator;
using cluster::ReplicatedJournalMedia;
using cluster::StandbySession;
using cluster::StreamReplicationTransport;
using cluster::serve_standby;

constexpr std::uint64_t kSession = 42;
constexpr std::uint64_t kChunks = 240;
constexpr std::size_t kChunkBytes = 1024;

MachineTopology host_topology() {
  auto topo = discover_topology();
  NS_CHECK(topo.ok(), "cluster tests need a discoverable host");
  return std::move(topo).value();
}

Bytes pattern_payload(std::uint64_t sequence, std::size_t size) {
  Bytes payload(size);
  Rng rng(sequence * 0x9E3779B97F4A7C15ULL + 1);
  for (auto& b : payload) {
    b = static_cast<std::uint8_t>(rng.next_u64());
  }
  return payload;
}

JournalRecord delivered_record(std::uint32_t stream, std::uint64_t sequence) {
  JournalRecord record;
  record.type = JournalRecordType::kDelivered;
  record.stream_id = stream;
  record.sequence = sequence;
  record.offset = sequence * kChunkBytes;
  record.body_hash = static_cast<std::uint32_t>(sequence * 2654435761U + 7);
  record.body_size = kChunkBytes;
  return record;
}

Bytes encode_records(const std::vector<JournalRecord>& records) {
  Bytes wire;
  for (const JournalRecord& record : records) {
    const Bytes encoded = encode_journal_record(record);
    wire.insert(wire.end(), encoded.begin(), encoded.end());
  }
  return wire;
}

// ----------------------------------------------------------------- ring

TEST(RingTest, PlacementIsDeterministicAcrossInstances) {
  const GatewayRing a(4, 16);
  const GatewayRing b(4, 16);
  for (std::uint32_t stream = 0; stream < 256; ++stream) {
    EXPECT_EQ(a.primary(stream), b.primary(stream));
    EXPECT_EQ(a.buddy(stream), b.buddy(stream));
    EXPECT_EQ(a.preference(stream), b.preference(stream));
  }
}

TEST(RingTest, PreferenceCoversEveryGatewayExactlyOnce) {
  for (const std::uint32_t gateways : {2U, 3U, 5U}) {
    const GatewayRing ring(gateways, 16);
    for (std::uint32_t stream = 0; stream < 64; ++stream) {
      const std::vector<std::uint32_t> pref = ring.preference(stream);
      ASSERT_EQ(pref.size(), gateways);
      EXPECT_EQ(pref.front(), ring.primary(stream));
      EXPECT_EQ(pref[1], ring.buddy(stream));
      EXPECT_NE(ring.primary(stream), ring.buddy(stream));
      std::vector<std::uint32_t> sorted = pref;
      std::sort(sorted.begin(), sorted.end());
      for (std::uint32_t g = 0; g < gateways; ++g) {
        EXPECT_EQ(sorted[g], g) << "gateway " << g << " missing or repeated";
      }
    }
  }
}

TEST(RingTest, VnodesSpreadStreamsAcrossAllGateways) {
  const GatewayRing ring(4, 16);
  std::vector<std::uint32_t> owned(4, 0);
  for (std::uint32_t stream = 0; stream < 4096; ++stream) {
    ++owned[ring.primary(stream)];
  }
  for (std::uint32_t g = 0; g < 4; ++g) {
    EXPECT_GT(owned[g], 0U) << "gateway " << g << " owns nothing";
  }
}

TEST(RingTest, ResolveWalksPastDeadGateways) {
  const GatewayRing ring(3, 16);
  for (std::uint32_t stream = 0; stream < 32; ++stream) {
    const std::vector<std::uint32_t> pref = ring.preference(stream);
    std::vector<bool> live(3, true);
    auto all_up = ring.resolve(stream, live);
    ASSERT_TRUE(all_up.ok());
    EXPECT_EQ(all_up.value(), pref[0]);

    live[pref[0]] = false;  // primary dies: the buddy serves
    auto buddy_up = ring.resolve(stream, live);
    ASSERT_TRUE(buddy_up.ok());
    EXPECT_EQ(buddy_up.value(), pref[1]);

    live[pref[1]] = false;  // buddy too: third in line
    auto third_up = ring.resolve(stream, live);
    ASSERT_TRUE(third_up.ok());
    EXPECT_EQ(third_up.value(), pref[2]);

    live[pref[2]] = false;  // whole ring dead
    EXPECT_FALSE(ring.resolve(stream, live).ok());
  }
}

// ----------------------------------------------------------- REPL frames

TEST(ReplFrameTest, RoundTripsThroughTheDecoderForEveryKind) {
  const Bytes records = encode_records({delivered_record(1, 0),
                                        delivered_record(1, 1),
                                        delivered_record(2, 9)});
  for (const ReplKind kind : {ReplKind::kHello, ReplKind::kAppend,
                              ReplKind::kAck, ReplKind::kHeartbeat}) {
    const bool append = kind == ReplKind::kAppend;
    const ByteSpan payload =
        append ? ByteSpan(records.data(), records.size()) : ByteSpan();
    const Message frame = Message::repl_frame(
        kind, /*session_id=*/kSession, /*epoch=*/7, /*repl_sequence=*/3,
        payload);
    const Bytes wire = encode_message(frame);

    MessageDecoder decoder;
    decoder.feed(ByteSpan(wire.data(), wire.size()));
    auto decoded = decoder.next();
    ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
    EXPECT_TRUE(decoded.value().repl);
    EXPECT_FALSE(decoded.value().credit);
    EXPECT_FALSE(decoded.value().resume);
    EXPECT_EQ(decoded.value().sequence, 3U);

    auto info = parse_repl_body(ByteSpan(decoded.value().body.data(),
                                         decoded.value().body.size()));
    ASSERT_TRUE(info.ok()) << info.status().to_string();
    EXPECT_EQ(info.value().kind, kind);
    EXPECT_EQ(info.value().session_id, kSession);
    EXPECT_EQ(info.value().epoch, 7U);
    if (append) {
      EXPECT_EQ(info.value().records, records);
      const JournalScan scan = scan_journal(ByteSpan(
          info.value().records.data(), info.value().records.size()));
      EXPECT_EQ(scan.records.size(), 3U);
      EXPECT_EQ(scan.torn_records, 0U);
    } else {
      EXPECT_TRUE(info.value().records.empty());
    }
  }
}

TEST(ReplFrameTest, MalformedBodiesAreRejected) {
  const Bytes records = encode_records({delivered_record(1, 0),
                                        delivered_record(1, 1)});
  const Message frame = Message::repl_frame(
      ReplKind::kAppend, kSession, 1, 1, ByteSpan(records.data(), records.size()));

  // Truncated body: the declared record count no longer fits.
  Bytes truncated = frame.body;
  truncated.pop_back();
  EXPECT_FALSE(parse_repl_body(ByteSpan(truncated.data(), truncated.size())).ok());

  // Unknown kinds on either side of the valid range.
  for (const std::uint8_t kind : {std::uint8_t{0}, std::uint8_t{5}}) {
    Bytes bad_kind = frame.body;
    bad_kind[0] = kind;
    EXPECT_FALSE(parse_repl_body(ByteSpan(bad_kind.data(), bad_kind.size())).ok());
  }

  // Record count lies high: declared records exceed the body.
  Bytes high_count = frame.body;
  high_count[20] = 3;
  EXPECT_FALSE(
      parse_repl_body(ByteSpan(high_count.data(), high_count.size())).ok());

  // Records dangling off a body-less kind.
  Bytes hello = Message::repl_frame(ReplKind::kHello, kSession, 1, 1).body;
  hello.insert(hello.end(), records.begin(), records.begin() + kReplRecordSize);
  EXPECT_FALSE(parse_repl_body(ByteSpan(hello.data(), hello.size())).ok());

  // Too short to even carry the prefix.
  Bytes stub(frame.body.begin(), frame.body.begin() + kReplBodyPrefix / 2);
  EXPECT_FALSE(parse_repl_body(ByteSpan(stub.data(), stub.size())).ok());
}

// ------------------------------------------------------- cluster config

NodeConfig federated_receiver_config() {
  NodeConfig config;
  config.node_name = "ctest-receiver";
  config.role = NodeRole::kReceiver;
  config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 1},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 1},
  };
  config.recovery.reconnect = true;
  config.resume.session = kSession;
  config.cluster.gateways = 2;
  config.cluster.self = 0;
  return config;
}

TEST(ClusterConfigTest, AbsentDirectiveIsByteIdentical) {
  NodeConfig config = federated_receiver_config();
  config.cluster = ClusterConfig{};
  const std::string text = config.serialize();
  EXPECT_EQ(text.find("cluster"), std::string::npos)
      << "default cluster config must not serialize a directive";
  auto parsed = NodeConfig::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_TRUE(parsed.value().cluster.is_default());
  EXPECT_FALSE(parsed.value().cluster.enabled());
  EXPECT_EQ(parsed.value().serialize(), text);
}

TEST(ClusterConfigTest, SerializeParseRoundTrip) {
  NodeConfig config = federated_receiver_config();
  config.cluster.gateways = 3;
  config.cluster.self = 1;
  config.cluster.vnodes = 8;
  config.cluster.heartbeat_ms = 50;
  config.cluster.miss_windows = 2;
  const std::string text = config.serialize();
  EXPECT_NE(text.find("cluster gateways=3"), std::string::npos);
  auto parsed = NodeConfig::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().cluster, config.cluster);
  EXPECT_EQ(parsed.value().serialize(), text);
}

TEST(ClusterConfigTest, DuplicateDirectiveIsAParseError) {
  NodeConfig config = federated_receiver_config();
  std::string text = config.serialize();
  text += "cluster gateways=4 self=1\n";
  auto parsed = NodeConfig::parse(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().to_string().find("duplicate 'cluster'"),
            std::string::npos)
      << parsed.status().to_string();
}

TEST(ClusterConfigTest, ValidationBoundaries) {
  const MachineTopology topo = host_topology();

  // The smallest legal ring: two gateways, self in range.
  NodeConfig ok = federated_receiver_config();
  EXPECT_TRUE(ok.validate(topo).is_ok()) << ok.validate(topo).to_string();
  ok.cluster.self = 1;  // the other slot is equally legal
  EXPECT_TRUE(ok.validate(topo).is_ok());

  // A one-gateway "ring" has no buddy: rejected at the boundary.
  NodeConfig solo = federated_receiver_config();
  solo.cluster.gateways = 1;
  EXPECT_FALSE(solo.validate(topo).is_ok());

  NodeConfig out_of_range = federated_receiver_config();
  out_of_range.cluster.self = 2;  // == gateways
  EXPECT_FALSE(out_of_range.validate(topo).is_ok());

  NodeConfig no_vnodes = federated_receiver_config();
  no_vnodes.cluster.vnodes = 0;
  EXPECT_FALSE(no_vnodes.validate(topo).is_ok());

  NodeConfig no_heartbeat = federated_receiver_config();
  no_heartbeat.cluster.heartbeat_ms = 0;
  EXPECT_FALSE(no_heartbeat.validate(topo).is_ok());

  NodeConfig no_hysteresis = federated_receiver_config();
  no_hysteresis.cluster.miss_windows = 0;
  EXPECT_FALSE(no_hysteresis.validate(topo).is_ok());

  // Federation without the resume journal has nothing to replicate.
  NodeConfig no_resume = federated_receiver_config();
  no_resume.resume = ResumeConfig{};
  EXPECT_FALSE(no_resume.validate(topo).is_ok());
}

// ----------------------------------------------------------- replication

TEST(ReplicationTest, StandbyAppliesDurablyBeforeAcking) {
  MemoryJournalMedia replica;
  FederationCounters fed;
  StandbySession standby(replica, kSession, &fed);
  InprocReplicationLink link(standby);
  PrimaryReplicator primary(link, kSession, /*epoch=*/1, &fed);

  ASSERT_TRUE(primary.hello().is_ok());
  const Bytes batch = encode_records({delivered_record(1, 0),
                                      delivered_record(1, 1)});
  ASSERT_TRUE(primary.ship(ByteSpan(batch.data(), batch.size())).is_ok());

  // The ack means durable: the records are in the replica's *durable* set,
  // not some pending tail a standby crash would eat.
  EXPECT_EQ(standby.records_applied(), 2U);
  EXPECT_EQ(replica.durable_size(), batch.size());
  auto mirrored = replica.read_all();
  ASSERT_TRUE(mirrored.ok());
  EXPECT_EQ(mirrored.value(), batch);

  const FederationCountersSnapshot snapshot = fed.snapshot();
  EXPECT_EQ(snapshot.repl_records_shipped, 2U);
  EXPECT_EQ(snapshot.repl_appends_acked, 1U);
  EXPECT_GE(snapshot.repl_lag_records_max, 2U);
  EXPECT_EQ(snapshot.fenced_appends_rejected, 0U);
}

TEST(ReplicationTest, SessionMismatchRefusesToApply) {
  MemoryJournalMedia replica;
  StandbySession standby(replica, /*session_id=*/7);
  InprocReplicationLink link(standby);
  PrimaryReplicator primary(link, /*session_id=*/8);

  EXPECT_FALSE(primary.hello().is_ok());
  const Bytes batch = encode_records({delivered_record(1, 0)});
  const Status shipped = primary.ship(ByteSpan(batch.data(), batch.size()));
  EXPECT_FALSE(shipped.is_ok());
  EXPECT_EQ(standby.records_applied(), 0U);
  EXPECT_EQ(replica.durable_size(), 0U);
}

// The tee that makes replication transparent to the journals: everything a
// ReceiverJournal writes through ReplicatedJournalMedia must land in the
// buddy's replica by the time the write is acknowledged — and a journal
// recovered from the *replica* must know everything the primary knew.
TEST(ReplicationTest, ReceiverJournalThroughTeeRecoversFromReplica) {
  MemoryJournalMedia local;
  MemoryJournalMedia replica;
  FederationCounters fed;
  StandbySession standby(replica, kSession, &fed);
  InprocReplicationLink link(standby);
  PrimaryReplicator primary(link, kSession, 1, &fed);
  ReplicatedJournalMedia tee(local, primary);

  ReceiverJournal journal(tee, kSession);
  ASSERT_TRUE(journal.recover().is_ok());  // kSession record replicates too
  for (std::uint64_t seq = 0; seq < 10; ++seq) {
    ASSERT_TRUE(journal.record_delivered(1, seq).is_ok());
  }

  // The ordering invariant: the standby's durable journal is never behind.
  EXPECT_GE(replica.durable_size(), local.durable_size());
  auto local_bytes = local.read_all();
  auto replica_bytes = replica.read_all();
  ASSERT_TRUE(local_bytes.ok());
  ASSERT_TRUE(replica_bytes.ok());
  const JournalScan local_scan = scan_journal(
      ByteSpan(local_bytes.value().data(), local_bytes.value().size()));
  const JournalScan replica_scan = scan_journal(
      ByteSpan(replica_bytes.value().data(), replica_bytes.value().size()));
  EXPECT_EQ(local_scan.records, replica_scan.records);

  // Machine death: the primary's media is gone; recover from the replica.
  ReceiverJournal recovered(replica, kSession);
  ASSERT_TRUE(recovered.recover().is_ok());
  EXPECT_EQ(recovered.watermark(1), 10U);
  for (std::uint64_t seq = 0; seq < 10; ++seq) {
    EXPECT_TRUE(recovered.seen(1, seq));
  }
  EXPECT_FALSE(recovered.seen(1, 10));
}

TEST(ReplicationTest, SenderJournalThroughTeeRecoversFromReplica) {
  MemoryJournalMedia local;
  MemoryJournalMedia replica;
  StandbySession standby(replica, kSession);
  InprocReplicationLink link(standby);
  PrimaryReplicator primary(link, kSession);
  ReplicatedJournalMedia tee(local, primary);

  SenderJournal journal(tee, kSession);
  ASSERT_TRUE(journal.recover().is_ok());
  for (std::uint64_t seq = 0; seq < 6; ++seq) {
    ASSERT_TRUE(journal
                    .record_sent(1, seq, seq * kChunkBytes,
                                 static_cast<std::uint32_t>(seq + 1),
                                 kChunkBytes)
                    .is_ok());
  }
  ASSERT_TRUE(journal.record_acked(1, 4).is_ok());

  SenderJournal recovered(replica, kSession);
  ASSERT_TRUE(recovered.recover().is_ok());
  EXPECT_EQ(recovered.acked_watermark(1), 4U);
  EXPECT_FALSE(recovered.sent_unacked(1, 3));  // below the watermark
  EXPECT_TRUE(recovered.sent_unacked(1, 4));
  EXPECT_TRUE(recovered.sent_unacked(1, 5));
  EXPECT_EQ(recovered.unacked_count(), 2U);
}

// The byte-stream transport and the standby service loop: same protocol,
// framed over a ByteStream instead of a direct call — what the federated
// TCP deployment runs.
TEST(ReplicationTest, StreamTransportServesAppendsAndShutsDownCleanly) {
  MemoryJournalMedia replica;
  StandbySession standby(replica, kSession);
  InprocPair pair = make_inproc_pair();
  ByteStream* standby_end = pair.second.get();

  Status serve_status = Status::ok();
  std::thread server([&, stream = std::move(pair.second)]() mutable {
    serve_status = serve_standby(*stream, standby);
  });

  {
    ByteStream* primary_end = pair.first.get();
    StreamReplicationTransport transport(std::move(pair.first));
    PrimaryReplicator primary(transport, kSession);
    EXPECT_TRUE(primary.hello().is_ok());
    const Bytes batch = encode_records({delivered_record(1, 0),
                                        delivered_record(1, 1),
                                        delivered_record(1, 2)});
    EXPECT_TRUE(primary.ship(ByteSpan(batch.data(), batch.size())).is_ok());
    EXPECT_TRUE(primary.heartbeat().is_ok());
    EXPECT_EQ(standby.records_applied(), 3U);
    primary_end->shutdown_write();  // clean goodbye, not a cut link
  }

  server.join();
  EXPECT_TRUE(serve_status.is_ok()) << serve_status.to_string();
  EXPECT_EQ(replica.durable_size(), 3 * kJournalRecordSize);
  (void)standby_end;
}

// ---------------------------------------------------------- epoch fence

// The split-brain guard, end to end: a partition isolates the primary, the
// standby is promoted, the partition heals — and the stale primary must NOT
// be able to commit anything ever again. At most one side makes progress.
TEST(EpochFenceTest, StalePrimaryCannotCommitAfterTakeover) {
  MemoryJournalMedia replica;
  FederationCounters fed;
  StandbySession standby(replica, kSession, &fed);
  InprocReplicationLink link(standby);
  PrimaryReplicator stale(link, kSession, /*epoch=*/1, &fed);

  ASSERT_TRUE(stale.hello().is_ok());
  const Bytes batch = encode_records({delivered_record(1, 0)});
  ASSERT_TRUE(stale.ship(ByteSpan(batch.data(), batch.size())).is_ok());
  const std::uint64_t applied_before = standby.records_applied();

  // Partition: the primary is cut off (transient, retryable — not fenced).
  link.set_partitioned(true);
  const Status cut = stale.ship(ByteSpan(batch.data(), batch.size()));
  ASSERT_FALSE(cut.is_ok());
  EXPECT_EQ(cut.code(), StatusCode::kUnavailable);

  // Takeover on the other side of the partition.
  EXPECT_EQ(standby.promote(), 2U);
  EXPECT_EQ(standby.epoch(), 2U);

  // Heal. The stale primary retries — and hits the fence: DATA_LOSS, not a
  // retryable error, because acking this write would fork history.
  link.set_partitioned(false);
  const Status fenced = stale.ship(ByteSpan(batch.data(), batch.size()));
  ASSERT_FALSE(fenced.is_ok());
  EXPECT_EQ(fenced.code(), StatusCode::kDataLoss);
  EXPECT_NE(fenced.to_string().find("fenced"), std::string::npos)
      << fenced.to_string();
  EXPECT_EQ(standby.records_applied(), applied_before)
      << "a fenced append must not touch the replica";

  // Heartbeats report the fence too, so a stale gateway learns it is dead
  // even when idle.
  const Status probe = stale.heartbeat();
  ASSERT_FALSE(probe.is_ok());
  EXPECT_EQ(probe.code(), StatusCode::kDataLoss);

  // The rightful successor — a replicator born at the promoted epoch —
  // commits normally.
  PrimaryReplicator successor(link, kSession, standby.epoch(), &fed);
  ASSERT_TRUE(successor.hello().is_ok());
  EXPECT_TRUE(successor.ship(ByteSpan(batch.data(), batch.size())).is_ok());
  EXPECT_EQ(standby.records_applied(), applied_before + 1);

  const FederationCountersSnapshot snapshot = fed.snapshot();
  EXPECT_GE(snapshot.fenced_appends_rejected, 1U);
  EXPECT_EQ(snapshot.epoch, 2U);
}

// A promotion while the link is healthy fences in-flight traffic the same
// way: the very next exchange reports it.
TEST(EpochFenceTest, PromotionFencesWithoutAPartition) {
  MemoryJournalMedia replica;
  StandbySession standby(replica, kSession);
  InprocReplicationLink link(standby);
  PrimaryReplicator primary(link, kSession);

  ASSERT_TRUE(primary.hello().is_ok());
  standby.promote();
  const Bytes batch = encode_records({delivered_record(1, 0)});
  const Status fenced = primary.ship(ByteSpan(batch.data(), batch.size()));
  ASSERT_FALSE(fenced.is_ok());
  EXPECT_EQ(fenced.code(), StatusCode::kDataLoss);
}

// ------------------------------------------------- journal media faults

// Write failure (ENOSPC via /dev/full) surfaces as DATA_LOSS and latches:
// every later append/flush reports the same loss without touching the file,
// because a post-failure retry can falsely succeed over a hole.
TEST(JournalMediaFaultTest, WriteFailureLatchesDataLoss) {
  if (::access("/dev/full", W_OK) != 0) {
    GTEST_SKIP() << "/dev/full not available";
  }
  FileJournalMedia media("/dev/full");
  const Bytes record = encode_journal_record(delivered_record(1, 0));

  const Status first = media.append(ByteSpan(record.data(), record.size()));
  ASSERT_FALSE(first.is_ok());
  EXPECT_EQ(first.code(), StatusCode::kDataLoss);

  const Status second = media.append(ByteSpan(record.data(), record.size()));
  ASSERT_FALSE(second.is_ok());
  EXPECT_EQ(second.to_string(), first.to_string()) << "latch must be sticky";
  const Status flushed = media.flush();
  ASSERT_FALSE(flushed.is_ok());
  EXPECT_EQ(flushed.to_string(), first.to_string());
}

// Open failure is transient (UNAVAILABLE), not a latch: once the path
// becomes writable the same media object carries on.
TEST(JournalMediaFaultTest, OpenFailureIsTransientNotSticky) {
  char tmpl[] = "/tmp/ns-cluster-test-XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  const std::string missing_dir = std::string(dir) + "/sub";
  const std::string path = missing_dir + "/journal.bin";

  FileJournalMedia media(path);
  const Bytes record = encode_journal_record(delivered_record(1, 0));
  const Status blocked = media.append(ByteSpan(record.data(), record.size()));
  ASSERT_FALSE(blocked.is_ok());
  EXPECT_EQ(blocked.code(), StatusCode::kUnavailable);

  ASSERT_EQ(::mkdir(missing_dir.c_str(), 0755), 0);
  EXPECT_TRUE(media.append(ByteSpan(record.data(), record.size())).is_ok());
  EXPECT_TRUE(media.flush().is_ok());
  auto bytes = media.read_all();
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), record);

  ::unlink(path.c_str());
  ::rmdir(missing_dir.c_str());
  ::rmdir(dir);
}

// And the tee propagates a replica-side refusal into the journal write
// path: when the buddy cannot make the record durable, the primary's
// record_* call fails instead of acking a write only one copy holds.
TEST(JournalMediaFaultTest, TeePropagatesReplicaRefusalToTheJournal) {
  MemoryJournalMedia local;
  MemoryJournalMedia replica;
  StandbySession standby(replica, kSession);
  InprocReplicationLink link(standby);
  PrimaryReplicator primary(link, kSession);
  ReplicatedJournalMedia tee(local, primary);

  ReceiverJournal journal(tee, kSession);
  ASSERT_TRUE(journal.recover().is_ok());
  link.set_partitioned(true);
  EXPECT_FALSE(journal.record_delivered(1, 0).is_ok());
  link.set_partitioned(false);
  EXPECT_TRUE(journal.record_delivered(1, 1).is_ok());
}

// ------------------------------------------------------ failure detector

TEST(PeerFailureDetectorTest, DeadOnlyAfterMissWindowsStarvedWindows) {
  ClusterConfig config;
  config.gateways = 2;
  config.self = 0;
  config.heartbeat_ms = 10;
  config.miss_windows = 3;
  FederationCounters fed;
  PeerFailureDetector detector(config, &fed);
  const int peer = detector.track("gateway1");

  // Healthy windows seed the baseline and keep the verdict alive.
  for (int window = 0; window < 4; ++window) {
    EXPECT_FALSE(detector.observe(peer, 1.0));
  }
  // One missed window is hysteresis territory, not a death sentence.
  EXPECT_FALSE(detector.observe(peer, 0.0));
  EXPECT_FALSE(detector.observe(peer, 0.0));
  EXPECT_FALSE(detector.dead(peer));
  // The third consecutive starved window crosses miss_windows: dead.
  EXPECT_TRUE(detector.observe(peer, 0.0));
  EXPECT_TRUE(detector.dead(peer));
  EXPECT_EQ(fed.snapshot().peer_failures_detected, 1U);

  // Staying dead is not re-detected: the counter latches per death.
  EXPECT_TRUE(detector.observe(peer, 0.0));
  EXPECT_EQ(fed.snapshot().peer_failures_detected, 1U);
}

TEST(PeerFailureDetectorTest, OneDelayedProbeDoesNotTriggerTakeover) {
  ClusterConfig config;
  config.gateways = 2;
  config.self = 0;
  config.miss_windows = 2;
  PeerFailureDetector detector(config);
  const int peer = detector.track("gateway1");

  EXPECT_FALSE(detector.observe(peer, 1.0));
  EXPECT_FALSE(detector.observe(peer, 0.0));  // one blip
  EXPECT_FALSE(detector.observe(peer, 1.0));  // recovered before the breach
  EXPECT_FALSE(detector.observe(peer, 0.0));  // another lone blip
  EXPECT_FALSE(detector.dead(peer));
}

// --------------------------------------------------- failover coordinator

TEST(FailoverCoordinatorTest, TakeoverAdoptsExactlyTheVictimsStreams) {
  const GatewayRing ring(2, 16);
  FederationCounters fed;
  FailoverCoordinator coordinator(ring, /*self=*/1, &fed);
  EXPECT_EQ(coordinator.epoch(), 1U);

  std::vector<std::uint32_t> streams;
  std::vector<std::uint32_t> victims;  // streams whose primary is gateway 0
  for (std::uint32_t stream = 0; stream < 16; ++stream) {
    streams.push_back(stream);
    if (ring.primary(stream) == 0) {
      victims.push_back(stream);
    }
  }
  ASSERT_FALSE(victims.empty()) << "pathological ring: gateway 0 owns nothing";

  const std::vector<std::uint32_t> adopted =
      coordinator.plan_takeover(/*victim=*/0, streams);
  EXPECT_EQ(adopted, victims);
  EXPECT_FALSE(coordinator.live(0));
  EXPECT_TRUE(coordinator.live(1));
  EXPECT_EQ(coordinator.epoch(), 2U);
  for (const std::uint32_t stream : streams) {
    auto where = coordinator.resolve(stream);
    ASSERT_TRUE(where.ok());
    EXPECT_EQ(where.value(), 1U) << "two-gateway ring with one death";
  }

  const FederationCountersSnapshot snapshot = fed.snapshot();
  EXPECT_EQ(snapshot.failovers, 1U);
  EXPECT_EQ(snapshot.streams_reresolved, victims.size());
  EXPECT_EQ(snapshot.epoch, 2U);
}

TEST(FailoverCoordinatorTest, SelfIsNeverAVictim) {
  const GatewayRing ring(2, 16);
  FederationCounters fed;
  FailoverCoordinator coordinator(ring, /*self=*/0, &fed);
  const std::vector<std::uint32_t> adopted =
      coordinator.plan_takeover(/*victim=*/0, {0, 1, 2, 3});
  EXPECT_TRUE(adopted.empty());
  EXPECT_TRUE(coordinator.live(0));
  EXPECT_EQ(coordinator.epoch(), 1U);
  EXPECT_EQ(fed.snapshot().failovers, 0U);
}

TEST(FailoverCoordinatorTest, ThreeGatewayRingFailsOverToThePreferenceOrder) {
  const GatewayRing ring(3, 16);
  FederationCounters fed;
  // Find a stream owned by gateway 0 and its buddy; the buddy's coordinator
  // must adopt it, the third gateway's must not.
  std::optional<std::uint32_t> stream;
  for (std::uint32_t candidate = 0; candidate < 64 && !stream; ++candidate) {
    if (ring.primary(candidate) == 0) {
      stream = candidate;
    }
  }
  ASSERT_TRUE(stream.has_value());
  const std::uint32_t buddy = ring.buddy(*stream);
  const std::uint32_t other = 3 - buddy;  // the remaining non-zero gateway

  FailoverCoordinator on_buddy(ring, buddy, &fed);
  FailoverCoordinator on_other(ring, other, &fed);
  EXPECT_EQ(on_buddy.plan_takeover(0, {*stream}),
            std::vector<std::uint32_t>{*stream});
  EXPECT_TRUE(on_other.plan_takeover(0, {*stream}).empty());
}

// -------------------------------------------- whole-gateway failover, e2e

/// Records a content hash per (stream, sequence) and counts re-deliveries.
class VerifySink final : public ChunkSink {
 public:
  void deliver(Chunk chunk) override {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto [it, fresh] = hashes_.emplace(
        std::make_pair(chunk.stream_id, chunk.sequence), xxhash32(chunk.payload));
    (void)it;
    if (!fresh) {
      ++duplicates_;
    }
  }

  [[nodiscard]] std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t>
  hashes() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return hashes_;
  }

  [[nodiscard]] std::size_t count() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return hashes_.size();
  }

  [[nodiscard]] std::uint64_t duplicates() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return duplicates_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t> hashes_;
  std::uint64_t duplicates_ = 0;
};

/// Serves `count` deterministic chunks whose contents depend only on the
/// sequence number.
class PatternSource final : public ChunkSource {
 public:
  PatternSource(std::uint32_t stream_id, std::uint64_t count, std::size_t size)
      : stream_id_(stream_id), count_(count), size_(size) {}

  std::optional<Chunk> next() override {
    const std::uint64_t index = issued_.fetch_add(1, std::memory_order_relaxed);
    if (index >= count_) {
      return std::nullopt;
    }
    Chunk chunk;
    chunk.stream_id = stream_id_;
    chunk.sequence = index;
    chunk.payload = pattern_payload(index, size_);
    return chunk;
  }

 private:
  std::uint32_t stream_id_;
  std::uint64_t count_;
  std::size_t size_;
  std::atomic<std::uint64_t> issued_{0};
};

NodeConfig federated_sender() {
  NodeConfig config;
  config.node_name = "ctest-sender";
  config.role = NodeRole::kSender;
  config.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = 2},
      TaskGroupConfig{.type = TaskType::kSend, .count = 1},
  };
  config.recovery.reconnect = true;
  config.recovery.retry.max_attempts = 10000;
  config.recovery.retry.initial_backoff_us = 200;
  config.recovery.retry.max_backoff_us = 2000;
  config.resume.session = kSession;
  config.resume.ack_interval = 8;
  config.overload.credit_window = 8;
  return config;
}

NodeConfig federated_receiver(int watchdog_ms = 0) {
  NodeConfig config;
  config.node_name = "ctest-receiver";
  config.role = NodeRole::kReceiver;
  config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 1},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 1},
  };
  config.recovery.reconnect = true;
  config.recovery.retry.max_attempts = 10000;
  config.recovery.retry.initial_backoff_us = 200;
  config.recovery.retry.max_backoff_us = 2000;
  config.recovery.watchdog_ms = watchdog_ms;
  config.resume.session = kSession;
  config.resume.ack_interval = 8;
  config.overload.credit_window = 8;
  return config;
}

// Kills a whole gateway mid-transfer — receiver process AND its local
// journal media die together, the machine-death case PR 5 could not
// survive — and requires the ring buddy to take over: promote the standby,
// recover the *replicated* journal, and finish the stream. Every chunk
// must land exactly once across the two gateways, and the fenced old
// primary must be unable to commit anything after the takeover.
TEST(GatewayFailoverTest, BuddyResumesFromReplicaExactlyOnce) {
  const MachineTopology topo = host_topology();
  const GatewayRing ring(2, 16);
  const std::uint32_t victim = ring.primary(1);  // stream id 1's gateway
  const std::uint32_t buddy = ring.buddy(1);
  ASSERT_NE(victim, buddy);

  MemoryJournalMedia sender_media;
  MemoryJournalMedia victim_media;  // the doomed gateway's local journal
  MemoryJournalMedia replica;       // the buddy's mirror of it
  ResumeCounters counters;
  FederationCounters fed;
  FaultCounters faults;

  StandbySession standby(replica, kSession, &fed);
  InprocReplicationLink link(standby);
  PrimaryReplicator replicator(link, kSession, /*epoch=*/1, &fed);
  ASSERT_TRUE(replicator.hello().is_ok());
  ReplicatedJournalMedia victim_journal_media(victim_media, replicator);

  // Phase 1: the victim gateway listens. Phase 0: blackout (detection +
  // takeover window). Phase 2: the buddy gateway.
  std::atomic<int> phase{1};
  InprocListener victim_listener;
  InprocListener buddy_listener;

  FaultPlan plan;  // no stochastic faults; the gateway kill is the only event
  FaultInjector injector(plan, &faults);
  // Machine death: the victim's local journal dies with it. The replica —
  // on the buddy's hardware — is untouched.
  injector.set_crash_hook([&] { victim_media.crash(); });
  const DialFn dial = faulty_dialer(
      [&]() -> Result<std::unique_ptr<ByteStream>> {
        switch (phase.load(std::memory_order_acquire)) {
          case 1:
            return victim_listener.connect();
          case 2:
            return buddy_listener.connect();
          default:
            return unavailable_error("gateway is down");
        }
      },
      injector);

  PatternSource source(1, kChunks, kChunkBytes);
  VerifySink victim_sink;
  VerifySink buddy_sink;

  SenderJournal sender_journal(sender_media, kSession, &counters);
  ASSERT_TRUE(sender_journal.recover().is_ok());
  Status sender_status = Status::ok();
  std::thread sender_thread([&] {
    StreamSender sender(topo, federated_sender());
    auto stats = sender.run(source, dial, nullptr, &faults, {}, {}, {},
                            ResumeHooks{.sender_journal = &sender_journal,
                                        .counters = &counters});
    sender_status = stats.ok() ? Status::ok() : stats.status();
  });

  // The victim gateway's receiver journals through the replicating tee, so
  // every committed delivery is on the buddy before it is acked.
  Status victim_status = Status::ok();
  std::thread victim_thread([&] {
    ReceiverJournal journal(victim_journal_media, kSession, &counters);
    const Status recovered = journal.recover();
    NS_CHECK(recovered.is_ok(), "fresh ledger must recover");
    StreamReceiver receiver(topo, federated_receiver(/*watchdog_ms=*/300));
    auto stats = receiver.run(victim_listener, victim_sink, nullptr, &faults,
                              {}, {}, {},
                              ResumeHooks{.receiver_journal = &journal,
                                          .counters = &counters});
    victim_status = stats.ok() ? Status::ok() : stats.status();
  });

  // Kill the gateway once roughly a third of the stream has committed.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (victim_sink.count() < kChunks / 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(victim_sink.count(), kChunks / 3) << "transfer never got going";
  phase.store(0, std::memory_order_release);
  injector.trigger_crash(/*restart_delay_micros=*/100000);
  counters.crashes_observed.fetch_add(1, std::memory_order_relaxed);
  victim_thread.join();  // the watchdog reaps the dead incarnation

  // The buddy's coordinator plans the takeover: stream 1 re-resolves here.
  FailoverCoordinator coordinator(ring, buddy, &fed);
  const std::vector<std::uint32_t> adopted =
      coordinator.plan_takeover(victim, {1});
  ASSERT_EQ(adopted, std::vector<std::uint32_t>{1});
  const std::uint64_t epoch = standby.promote();
  EXPECT_EQ(epoch, 2U);
  EXPECT_EQ(coordinator.epoch(), 2U);

  // Split-brain probe: were the "dead" gateway merely partitioned and still
  // trying, its appends now bounce off the fence instead of forking history.
  const Bytes straggler = encode_records({delivered_record(1, kChunks + 1)});
  const Status fenced =
      replicator.ship(ByteSpan(straggler.data(), straggler.size()));
  ASSERT_FALSE(fenced.is_ok());
  EXPECT_EQ(fenced.code(), StatusCode::kDataLoss);

  // The buddy recovers the stream's journal from the replica — the victim's
  // own media is gone — and its RESUME handshake resumes the sender.
  ReceiverJournal buddy_journal(replica, kSession, &counters);
  ASSERT_TRUE(buddy_journal.recover().is_ok());
  EXPECT_GT(buddy_journal.watermark(1), 0U)
      << "the replica must know the committed prefix";
  Status buddy_status = Status::ok();
  std::thread buddy_thread([&] {
    StreamReceiver receiver(topo, federated_receiver());
    auto stats = receiver.run(buddy_listener, buddy_sink, nullptr, &faults,
                              {}, {}, {},
                              ResumeHooks{.receiver_journal = &buddy_journal,
                                          .counters = &counters});
    buddy_status = stats.ok() ? Status::ok() : stats.status();
  });
  phase.store(2, std::memory_order_release);

  sender_thread.join();
  buddy_thread.join();
  EXPECT_TRUE(sender_status.is_ok()) << sender_status.to_string();
  EXPECT_TRUE(buddy_status.is_ok()) << buddy_status.to_string();

  // Exactly once across the two gateways: the union covers every chunk,
  // bit-exact, and no sequence was committed on both.
  auto delivered = victim_sink.hashes();
  for (const auto& [key, hash] : buddy_sink.hashes()) {
    const auto [it, fresh] = delivered.emplace(key, hash);
    (void)it;
    EXPECT_TRUE(fresh) << "chunk " << key.second
                       << " delivered by both gateways";
  }
  ASSERT_EQ(delivered.size(), kChunks);
  for (std::uint64_t seq = 0; seq < kChunks; ++seq) {
    const auto it = delivered.find({1, seq});
    ASSERT_NE(it, delivered.end()) << "chunk " << seq << " lost";
    EXPECT_EQ(it->second, xxhash32(pattern_payload(seq, kChunkBytes)))
        << "chunk " << seq << " corrupted";
  }
  EXPECT_EQ(victim_sink.duplicates(), 0U);
  EXPECT_EQ(buddy_sink.duplicates(), 0U);

  const ResumeCountersSnapshot resume = counters.snapshot();
  EXPECT_GE(resume.resume_handshakes, 2U);  // initial + post-takeover
  EXPECT_LT(resume.replayed_chunks, kChunks);

  const FederationCountersSnapshot snapshot = fed.snapshot();
  EXPECT_GT(snapshot.repl_records_shipped, 0U);
  EXPECT_GT(snapshot.repl_appends_acked, 0U);
  EXPECT_EQ(snapshot.failovers, 1U);
  EXPECT_EQ(snapshot.streams_reresolved, 1U);
  EXPECT_GE(snapshot.fenced_appends_rejected, 1U);
  EXPECT_EQ(snapshot.epoch, 2U);
}

// ------------------------------------------------------------- simulation

using simrt::ExperimentOptions;
using simrt::ExperimentResult;
using simrt::run_plan;

Result<ExperimentResult> run_sim_federation(const ExperimentOptions& options,
                                            int num_streams = 2) {
  const MachineTopology lynx = lynxdtn_topology();
  const std::vector<MachineTopology> senders(
      static_cast<std::size_t>(num_streams), updraft_topology());
  ConfigGenerator generator(lynx, senders);
  WorkloadSpec workload;
  workload.num_streams = num_streams;
  auto plan = generator.generate(workload, PlacementStrategy::kNumaAware);
  NS_CHECK(plan.ok(), "plan generation must succeed");
  return run_plan(senders, lynx, plan.value(), options);
}

TEST(SimFederationTest, ClusterRequiresResume) {
  ExperimentOptions options;
  options.chunks_per_stream = 30;
  options.cluster.gateways = 2;
  options.cluster.self = 0;
  EXPECT_FALSE(run_sim_federation(options).ok());
}

TEST(SimFederationTest, GatewayCrashRequiresCluster) {
  ExperimentOptions options;
  options.chunks_per_stream = 30;
  options.resume = true;
  options.gateway_crashes = {{.gateway = 0, .at_seconds = 0.001}};
  EXPECT_FALSE(run_sim_federation(options).ok());
}

TEST(SimFederationTest, GatewayCrashVictimMustBeARingMember) {
  ExperimentOptions options;
  options.chunks_per_stream = 30;
  options.resume = true;
  options.cluster.gateways = 2;
  options.cluster.self = 0;
  options.gateway_crashes = {{.gateway = 5, .at_seconds = 0.001}};
  EXPECT_FALSE(run_sim_federation(options).ok());
}

TEST(SimFederationTest, SeededGatewayKillIsBitIdenticalAndExactlyOnce) {
  // Probe the failure-free clustered run: sharding and replication on, no
  // kills — the federation layer must cost nothing but heartbeats.
  ExperimentOptions options;
  options.chunks_per_stream = 120;
  options.resume = true;
  options.cluster.gateways = 2;
  options.cluster.self = 0;
  options.cluster.miss_windows = 2;
  auto probe = run_sim_federation(options);
  ASSERT_TRUE(probe.ok()) << probe.status().to_string();
  const double elapsed = probe.value().elapsed_seconds;
  ASSERT_GT(elapsed, 0);
  EXPECT_EQ(probe.value().federation.failovers, 0U);
  EXPECT_EQ(probe.value().federation.peer_failures_detected, 0U);
  EXPECT_EQ(probe.value().federation.epoch, 1U);
  for (const auto& stream : probe.value().streams) {
    EXPECT_EQ(stream.chunks, 120U);
  }
  // Sharding is the ring's, not ad hoc: the driver's placement must match
  // an independently constructed ring.
  const GatewayRing ring(options.cluster.gateways, options.cluster.vnodes);
  ASSERT_EQ(probe.value().stream_gateways.size(), 2U);
  for (std::uint32_t stream = 0; stream < 2; ++stream) {
    EXPECT_EQ(probe.value().stream_gateways[stream], ring.primary(stream));
  }

  // Re-probe with the heartbeat window scaled to the run so detection lands
  // well inside the transfer, then kill the gateway serving stream 0.
  options.cluster.heartbeat_ms = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(elapsed * 1000.0 / 60.0)));
  auto timed = run_sim_federation(options);
  ASSERT_TRUE(timed.ok()) << timed.status().to_string();
  EXPECT_GT(timed.value().federation.heartbeats_sent, 0U);
  EXPECT_GT(timed.value().federation.repl_records_shipped, 0U);
  const double span = timed.value().elapsed_seconds;

  const std::uint32_t victim = ring.primary(0);
  std::uint64_t on_victim = 0;
  for (std::uint32_t stream = 0; stream < 2; ++stream) {
    if (ring.primary(stream) == victim) {
      ++on_victim;
    }
  }
  options.gateway_crashes = {{.gateway = victim,
                              .at_seconds = span / 3,
                              .failover_seconds = span / 10}};
  auto first = run_sim_federation(options);
  auto second = run_sim_federation(options);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  ASSERT_TRUE(second.ok()) << second.status().to_string();

  // The fingerprint: two same-schedule failover runs agree bit for bit.
  EXPECT_TRUE(first.value().federation == second.value().federation)
      << first.value().federation.to_string() << " vs "
      << second.value().federation.to_string();
  EXPECT_TRUE(first.value().resume == second.value().resume)
      << first.value().resume.to_string() << " vs "
      << second.value().resume.to_string();
  EXPECT_EQ(first.value().stream_gateways, second.value().stream_gateways);

  const FederationCountersSnapshot& fed = first.value().federation;
  EXPECT_EQ(fed.failovers, 1U);
  EXPECT_EQ(fed.peer_failures_detected, 1U);
  EXPECT_EQ(fed.streams_reresolved, on_victim);
  EXPECT_GE(fed.epoch, 2U);
  EXPECT_GT(fed.heartbeats_sent, 0U);
  EXPECT_GT(fed.repl_records_shipped, 0U);
  EXPECT_GT(fed.failover_wall_ms, 0U);

  // Zero loss despite the whole-gateway kill, and the victim's streams now
  // live on the survivor.
  ASSERT_EQ(first.value().streams.size(), 2U);
  for (std::uint32_t stream = 0; stream < 2; ++stream) {
    EXPECT_EQ(first.value().streams[stream].chunks, 120U);
    if (ring.primary(stream) == victim) {
      EXPECT_NE(first.value().stream_gateways[stream], victim);
    } else {
      EXPECT_EQ(first.value().stream_gateways[stream], ring.primary(stream));
    }
  }

  // Failover re-work is bounded by the replicated journal's unacked window,
  // strictly under what restarting the victim's streams from zero would
  // have re-sent.
  const ResumeCountersSnapshot& resume = first.value().resume;
  EXPECT_GT(resume.journal_records_replayed, 0U);
  EXPECT_GT(first.value().rework_restart_from_zero_bytes, 0.0);
  EXPECT_LT(static_cast<double>(resume.rework_bytes),
            first.value().rework_restart_from_zero_bytes);
}

}  // namespace
}  // namespace numastream
