// Observability subsystem tests (DESIGN.md §10): latency histograms, span
// rings and trace export, the MetricsRegistry, the `observe` config
// directive, the real pipeline's instrumentation, and — the property the
// whole design leans on — byte-identical traces from same-seed simulations.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/config_generator.h"
#include "core/pipeline.h"
#include "metrics/fault_counters.h"
#include "metrics/table.h"
#include "msg/tcp.h"
#include "obs/histogram.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "simrt/driver.h"
#include "topo/discover.h"

namespace numastream {
namespace {

using obs::LatencyHistogram;
using obs::LatencySnapshot;
using obs::MetricsRegistry;
using obs::Span;
using obs::SpanRing;
using obs::Stage;
using obs::StageLatencies;
using obs::Tracer;

// ---------------------------------------------------------------- histogram

TEST(LatencyHistogramTest, BucketIndexIsLog2WithZeroBucket) {
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(1), 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(2), 2);
  EXPECT_EQ(LatencyHistogram::bucket_index(3), 2);
  EXPECT_EQ(LatencyHistogram::bucket_index(4), 3);
  EXPECT_EQ(LatencyHistogram::bucket_index(1023), 10);
  EXPECT_EQ(LatencyHistogram::bucket_upper_ns(0), 0U);
  EXPECT_EQ(LatencyHistogram::bucket_upper_ns(1), 1U);
  EXPECT_EQ(LatencyHistogram::bucket_upper_ns(2), 3U);
  EXPECT_EQ(LatencyHistogram::bucket_upper_ns(10), 1023U);
}

TEST(LatencyHistogramTest, PercentilesReportBucketUpperBounds) {
  LatencyHistogram histogram;
  for (int i = 0; i < 50; ++i) {
    histogram.record(1);
  }
  for (int i = 0; i < 50; ++i) {
    histogram.record(1000);  // bucket 10, upper bound 1023
  }
  EXPECT_EQ(histogram.count(), 100U);
  EXPECT_EQ(histogram.percentile_ns(0.50), 1U);
  EXPECT_EQ(histogram.percentile_ns(0.99), 1023U);
  const LatencySnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 100U);
  EXPECT_EQ(snap.p50_ns, 1U);
  EXPECT_EQ(snap.p99_ns, 1023U);
  EXPECT_EQ(snap.p999_ns, 1023U);
  EXPECT_EQ(snap.max_ns, 1023U);
}

TEST(LatencyHistogramTest, EmptySnapshotIsAllZero) {
  const LatencyHistogram histogram;
  EXPECT_EQ(histogram.snapshot(), LatencySnapshot{});
}

TEST(StageLatenciesTest, SplitsByStageAndDomain) {
  StageLatencies latencies(2);
  latencies.record(Stage::kCompress, 0, 100);
  latencies.record(Stage::kCompress, 1, 200);
  latencies.record(Stage::kCompress, -1, 300);  // OS-managed worker
  latencies.record(Stage::kSend, 0, 400);
  EXPECT_EQ(latencies.stage_snapshot(Stage::kCompress).count, 3U);
  EXPECT_EQ(latencies.stage_snapshot(Stage::kSend).count, 1U);
  EXPECT_EQ(latencies.stage_snapshot(Stage::kReceive).count, 0U);
  EXPECT_EQ(latencies.domain_snapshot(Stage::kCompress, 0).count, 1U);
  EXPECT_EQ(latencies.domain_snapshot(Stage::kCompress, 1).count, 1U);
  EXPECT_EQ(latencies.domain_snapshot(Stage::kCompress, -1).count, 1U);
}

TEST(StageLatenciesTest, OutOfRangeDomainFoldsIntoOverallOnly) {
  StageLatencies latencies(2);
  latencies.record(Stage::kReceive, 7, 50);
  EXPECT_EQ(latencies.stage_snapshot(Stage::kReceive).count, 1U);
  EXPECT_EQ(latencies.domain_snapshot(Stage::kReceive, 7).count, 0U);
}

TEST(StageLatenciesTest, TablesListOnlyStagesWithTraffic) {
  StageLatencies latencies(2);
  latencies.record(Stage::kDecompress, 1, 5000);
  EXPECT_EQ(latencies.table().row_count(), 1U);
  EXPECT_EQ(latencies.domain_table().row_count(), 1U);
  EXPECT_NE(latencies.table().render().find("decompress"), std::string::npos);
}

// ---------------------------------------------------------------- tracing

Span make_span(std::uint64_t sequence, std::uint32_t worker,
               std::uint64_t start_ns) {
  Span span;
  span.stream_id = 1;
  span.sequence = sequence;
  span.stage = Stage::kCompress;
  span.worker = worker;
  span.domain = 0;
  span.start_ns = start_ns;
  span.end_ns = start_ns + 10;
  return span;
}

TEST(SpanRingTest, DropsOldestAndCountsTheLoss) {
  SpanRing ring(4);
  const std::uint64_t kTotal = 100;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    ring.record(make_span(i, 0, i));
  }
  const auto spans = ring.drain();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(ring.dropped(), kTotal - spans.size());
  // Drop-oldest: what survives is the newest suffix, in record order.
  EXPECT_EQ(spans.back().sequence, kTotal - 1);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].sequence, spans[i - 1].sequence + 1);
  }
}

TEST(TracerTest, RejectsOutOfRangeWorkerIdsAsDropped) {
  Tracer tracer(2, 16);
  tracer.record(make_span(0, 5, 0));  // no worker 5
  EXPECT_EQ(tracer.dropped_spans(), 1U);
  EXPECT_TRUE(tracer.drain_sorted().empty());
}

TEST(TracerTest, DrainSortedOrdersByStartTime) {
  Tracer tracer(3, 16);
  tracer.record(make_span(0, 2, 300));
  tracer.record(make_span(1, 0, 100));
  tracer.record(make_span(2, 1, 200));
  const auto spans = tracer.drain_sorted();
  ASSERT_EQ(spans.size(), 3U);
  EXPECT_EQ(spans[0].start_ns, 100U);
  EXPECT_EQ(spans[1].start_ns, 200U);
  EXPECT_EQ(spans[2].start_ns, 300U);
  EXPECT_EQ(tracer.dropped_spans(), 0U);
}

TEST(TraceExportTest, JsonlIsExactIntegerBytes) {
  Span span;
  span.stream_id = 2;
  span.sequence = 7;
  span.stage = Stage::kReceive;
  span.worker = 3;
  span.domain = 1;
  span.start_ns = 1000;
  span.end_ns = 2500;
  EXPECT_EQ(obs::spans_to_jsonl({span}),
            "{\"stream\":2,\"seq\":7,\"stage\":\"receive\",\"worker\":3,"
            "\"domain\":1,\"start_ns\":1000,\"end_ns\":2500}\n");
}

TEST(TraceExportTest, ChromeJsonUsesIntegerMicroseconds) {
  Span span;
  span.stream_id = 0;
  span.sequence = 1;
  span.stage = Stage::kSend;
  span.worker = 4;
  span.domain = -1;  // unbound worker -> pid 0
  span.start_ns = 1234567;
  span.end_ns = 1234567 + 2005;
  const std::string json = obs::spans_to_chrome_json({span});
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":4"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1234.567"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.005"), std::string::npos);
}

// ---------------------------------------------------------------- registry

TEST(MetricsRegistryTest, SnapshotReadsSortedByName) {
  MetricsRegistry registry;
  std::atomic<std::uint64_t> counter{42};
  ASSERT_TRUE(registry.register_counter("z.count", &counter).is_ok());
  ASSERT_TRUE(registry.register_gauge("a.depth", [] { return 3.5; }).is_ok());
  const auto snap = registry.snapshot(1.5);
  EXPECT_DOUBLE_EQ(snap.time_seconds, 1.5);
  ASSERT_EQ(snap.samples.size(), 2U);
  EXPECT_EQ(snap.samples[0].name, "a.depth");
  EXPECT_DOUBLE_EQ(snap.samples[0].value, 3.5);
  EXPECT_EQ(snap.samples[1].name, "z.count");
  EXPECT_DOUBLE_EQ(snap.samples[1].value, 42.0);
  EXPECT_TRUE(snap.has("z.count"));
  EXPECT_FALSE(snap.has("missing"));
  EXPECT_DOUBLE_EQ(snap.value("missing"), 0.0);
}

TEST(MetricsRegistryTest, RejectsDuplicatesEmptyNamesAndNullCounters) {
  MetricsRegistry registry;
  std::atomic<std::uint64_t> counter{0};
  ASSERT_TRUE(registry.register_counter("x", &counter).is_ok());
  EXPECT_EQ(registry.register_counter("x", &counter).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.register_counter("", &counter).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.register_counter("y", nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.size(), 1U);
}

TEST(MetricsRegistryTest, UnregisterIsIdempotent) {
  MetricsRegistry registry;
  std::atomic<std::uint64_t> counter{0};
  ASSERT_TRUE(registry.register_counter("x", &counter).is_ok());
  registry.unregister("x");
  registry.unregister("x");  // unknown name: no-op
  EXPECT_EQ(registry.size(), 0U);
  // The name is free again after unregistration.
  EXPECT_TRUE(registry.register_counter("x", &counter).is_ok());
}

TEST(MetricsRegistryTest, LedgerRegistrationIsPrefixedAndAtomic) {
  MetricsRegistry registry;
  FaultCounters faults;
  faults.reconnects.fetch_add(3);
  ASSERT_TRUE(registry.register_fault_counters("fault", faults).is_ok());
  const auto snap = registry.snapshot(0);
  EXPECT_DOUBLE_EQ(snap.value("fault.reconnects"), 3.0);
  EXPECT_TRUE(snap.has("fault.corrupt_frames"));

  // All-or-nothing: a colliding name rolls the whole batch back.
  MetricsRegistry clashing;
  std::atomic<std::uint64_t> squatter{0};
  ASSERT_TRUE(clashing.register_counter("fault.reconnects", &squatter).is_ok());
  EXPECT_FALSE(clashing.register_fault_counters("fault", faults).is_ok());
  EXPECT_EQ(clashing.size(), 1U);  // only the squatter remains
}

TEST(MetricsRegistryTest, RegistrationGuardUnregistersOnDestruction) {
  MetricsRegistry registry;
  std::atomic<std::uint64_t> counter{0};
  {
    ASSERT_TRUE(registry.register_counter("guarded", &counter).is_ok());
    obs::RegistrationGuard guard(&registry, {"guarded"});
    EXPECT_EQ(registry.size(), 1U);
  }
  EXPECT_EQ(registry.size(), 0U);
}

TEST(SnapshotSeriesTest, ExportsCsvAndJsonl) {
  MetricsRegistry registry;
  std::atomic<std::uint64_t> counter{5};
  ASSERT_TRUE(registry.register_counter("queue,depth", &counter).is_ok());
  obs::SnapshotSeries series;
  series.append(registry.snapshot(0.5));
  counter.store(9);
  series.append(registry.snapshot(1.0));

  const auto rows = parse_csv(series.to_csv());
  ASSERT_EQ(rows.size(), 3U);
  EXPECT_EQ(rows[0],
            (std::vector<std::string>{"time_seconds", "metric", "value"}));
  EXPECT_EQ(rows[1][1], "queue,depth");  // hostile name survives round-trip
  EXPECT_EQ(rows[2][2].substr(0, 1), "9");

  const std::string jsonl = series.to_jsonl();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
  EXPECT_NE(jsonl.find("\"time_s\":"), std::string::npos);

  const TextTable table = series.latest_table();
  EXPECT_EQ(table.row_count(), 1U);
}

TEST(SnapshotSamplerTest, SamplesUntilStopped) {
  MetricsRegistry registry;
  std::atomic<std::uint64_t> counter{1};
  ASSERT_TRUE(registry.register_counter("c", &counter).is_ok());
  obs::SnapshotSampler sampler(&registry, 5);
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.stop();
  // stop() takes a final snapshot, so even slow machines see at least one.
  ASSERT_GE(sampler.series().snapshots().size(), 1U);
  EXPECT_DOUBLE_EQ(sampler.series().snapshots().back().value("c"), 1.0);
}

// ---------------------------------------------------------------- config

TEST(ObserveConfigTest, DefaultConfigSerializesWithoutTheDirective) {
  NodeConfig config;
  config.node_name = "n";
  config.tasks = {TaskGroupConfig{.type = TaskType::kCompress, .count = 1},
                  TaskGroupConfig{.type = TaskType::kSend, .count = 1}};
  const std::string text = config.serialize();
  EXPECT_EQ(text.find("observe"), std::string::npos);
  // Byte-identical round-trip: configs that never mention observe must
  // serialize exactly as they did before the directive existed.
  auto parsed = NodeConfig::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().serialize(), text);
  EXPECT_TRUE(parsed.value().observe.is_default());
  EXPECT_FALSE(parsed.value().observe.enabled());
}

TEST(ObserveConfigTest, DirectiveRoundTrips) {
  NodeConfig config;
  config.node_name = "n";
  config.observe.trace = true;
  config.observe.ring_capacity = 4096;
  config.observe.latency = true;
  config.observe.sample_ms = 50;
  config.tasks = {TaskGroupConfig{.type = TaskType::kCompress, .count = 1},
                  TaskGroupConfig{.type = TaskType::kSend, .count = 1}};
  const std::string text = config.serialize();
  EXPECT_NE(
      text.find("observe trace=on ring_capacity=4096 latency=on sample_ms=50"),
      std::string::npos);
  auto parsed = NodeConfig::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().observe, config.observe);
  EXPECT_TRUE(parsed.value().observe.enabled());
  EXPECT_EQ(parsed.value().serialize(), text);
}

TEST(ObserveConfigTest, DuplicateDirectiveIsAParseError) {
  const std::string text =
      "node n\nrole sender\nobserve trace=on\nobserve latency=on\n"
      "task compress count=1 exec=os mem=os\ntask send count=1 exec=os mem=os\n";
  auto parsed = NodeConfig::parse(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("duplicate"), std::string::npos);
}

TEST(ObserveConfigTest, BadAttributeValuesAreParseErrors) {
  const std::string prefix =
      "node n\nrole sender\n";
  const std::string suffix =
      "\ntask compress count=1 exec=os mem=os\ntask send count=1 exec=os mem=os\n";
  EXPECT_FALSE(NodeConfig::parse(prefix + "observe trace=maybe" + suffix).ok());
  EXPECT_FALSE(NodeConfig::parse(prefix + "observe latency=1" + suffix).ok());
  EXPECT_FALSE(NodeConfig::parse(prefix + "observe ring_capacity=huge" + suffix).ok());
  EXPECT_FALSE(NodeConfig::parse(prefix + "observe wat=1" + suffix).ok());
  EXPECT_FALSE(NodeConfig::parse(prefix + "observe trace" + suffix).ok());
}

TEST(ObserveConfigTest, ZeroRingCapacityFailsValidation) {
  auto topo = discover_topology();
  ASSERT_TRUE(topo.ok());
  NodeConfig config;
  config.node_name = "n";
  config.tasks = {TaskGroupConfig{.type = TaskType::kCompress, .count = 1},
                  TaskGroupConfig{.type = TaskType::kSend, .count = 1}};
  config.observe.ring_capacity = 0;
  EXPECT_FALSE(config.validate(topo.value()).is_ok());
  config.observe.ring_capacity = 1024;
  EXPECT_TRUE(config.validate(topo.value()).is_ok());
}

}  // namespace
}  // namespace numastream

// ------------------------------------------------------- real pipeline

namespace numastream {
namespace {

TomoConfig obs_tomo() {
  TomoConfig config;
  config.rows = 64;
  config.cols = 100;
  config.num_spheres = 4;
  return config;
}

struct PipelineRun {
  SenderStats sender;
  ReceiverStats receiver;
  std::uint64_t delivered = 0;
};

/// Runs the real TCP-loopback pipeline with the given observe policy and
/// obs hooks on both ends (2 compress, 2 send / 2 receive, 2 decompress).
PipelineRun run_observed_pipeline(const ObserveConfig& observe,
                                  ObsHooks sender_hooks, ObsHooks receiver_hooks,
                                  std::uint64_t chunks) {
  auto topo = discover_topology();
  NS_CHECK(topo.ok(), "tests need a discoverable host");
  const TomoConfig tomo = obs_tomo();

  NodeConfig sender_config;
  sender_config.node_name = "obs-sender";
  sender_config.role = NodeRole::kSender;
  sender_config.chunk_bytes = tomo.chunk_bytes();
  sender_config.observe = observe;
  sender_config.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = 2},
      TaskGroupConfig{.type = TaskType::kSend, .count = 2},
  };
  NodeConfig receiver_config;
  receiver_config.node_name = "obs-receiver";
  receiver_config.role = NodeRole::kReceiver;
  receiver_config.chunk_bytes = tomo.chunk_bytes();
  receiver_config.observe = observe;
  receiver_config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = 2},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = 2},
  };

  auto listener = TcpListener::bind("127.0.0.1", 0);
  NS_CHECK(listener.ok(), "bind failed");
  const std::uint16_t port = listener.value()->port();

  TomoChunkSource source(tomo, 1, chunks);
  CountingSink sink;
  PipelineRun run;

  std::thread sender_thread([&] {
    StreamSender sender(topo.value(), sender_config);
    auto stats = sender.run(
        source, [&] { return tcp_connect("127.0.0.1", port); }, nullptr,
        nullptr, {}, {}, sender_hooks);
    NS_CHECK(stats.ok(), "sender failed");
    run.sender = stats.value();
  });
  StreamReceiver receiver(topo.value(), receiver_config);
  auto stats = receiver.run(*listener.value(), sink, nullptr, nullptr, {}, {},
                            receiver_hooks);
  sender_thread.join();
  NS_CHECK(stats.ok(), "receiver failed");
  run.receiver = stats.value();
  run.delivered = sink.chunks();
  return run;
}

TEST(PipelineObservabilityTest, DefaultConfigRecordsNothingEvenWithHooks) {
  Tracer tracer(4, 64);
  StageLatencies latencies(2);
  MetricsRegistry registry;
  const ObsHooks hooks{.tracer = &tracer,
                       .latencies = &latencies,
                       .registry = &registry};
  const PipelineRun run =
      run_observed_pipeline(ObserveConfig{}, hooks, hooks, 10);
  EXPECT_EQ(run.delivered, 10U);
  // Observability defaults off: hooks alone must not enable anything.
  EXPECT_TRUE(tracer.drain_sorted().empty());
  EXPECT_EQ(tracer.dropped_spans(), 0U);
  EXPECT_EQ(latencies.stage_snapshot(Stage::kCompress).count, 0U);
  EXPECT_EQ(registry.size(), 0U);
}

TEST(PipelineObservabilityTest, TracingCoversTheChunkLifecycle) {
  ObserveConfig observe;
  observe.trace = true;
  observe.latency = true;
  observe.ring_capacity = 1024;
  // Worker-id layouts: sender compress [0,2) + send [2,4); receiver
  // receive [0,2) + decompress [2,4).
  Tracer sender_tracer(4, observe.ring_capacity);
  Tracer receiver_tracer(4, observe.ring_capacity);
  StageLatencies latencies(4);
  MetricsRegistry registry;
  const std::uint64_t kChunks = 20;
  const PipelineRun run = run_observed_pipeline(
      observe,
      ObsHooks{.tracer = &sender_tracer,
               .latencies = &latencies,
               .registry = &registry},
      ObsHooks{.tracer = &receiver_tracer,
               .latencies = &latencies,
               .registry = &registry},
      kChunks);
  EXPECT_EQ(run.delivered, kChunks);

  std::array<std::uint64_t, obs::kStageCount> by_stage{};
  for (const Span& span : sender_tracer.drain_sorted()) {
    ASSERT_LE(span.start_ns, span.end_ns);
    ++by_stage[static_cast<int>(span.stage)];
  }
  for (const Span& span : receiver_tracer.drain_sorted()) {
    ASSERT_LE(span.start_ns, span.end_ns);
    ++by_stage[static_cast<int>(span.stage)];
  }
  // Every chunk passes every stage exactly once (no drops in this run).
  EXPECT_EQ(by_stage[static_cast<int>(Stage::kGenerate)], kChunks);
  EXPECT_EQ(by_stage[static_cast<int>(Stage::kCompress)], kChunks);
  EXPECT_EQ(by_stage[static_cast<int>(Stage::kSend)], kChunks);
  EXPECT_EQ(by_stage[static_cast<int>(Stage::kReceive)], kChunks);
  EXPECT_EQ(by_stage[static_cast<int>(Stage::kDecompress)], kChunks);
  EXPECT_EQ(by_stage[static_cast<int>(Stage::kSink)], kChunks);
  // Enqueue spans come from both the compress and the receive side.
  EXPECT_EQ(by_stage[static_cast<int>(Stage::kEnqueue)], 2 * kChunks);

  EXPECT_EQ(latencies.stage_snapshot(Stage::kCompress).count, kChunks);
  EXPECT_EQ(latencies.stage_snapshot(Stage::kDecompress).count, kChunks);
  // Gauges were unregistered when the runs ended.
  EXPECT_EQ(registry.size(), 0U);
}

TEST(PipelineObservabilityTest, LatencySnapshotsFlowIntoTheObservation) {
  ObserveConfig observe;
  observe.latency = true;
  StageLatencies latencies(4);
  const ObsHooks hooks{.latencies = &latencies};
  const PipelineRun run = run_observed_pipeline(observe, hooks, hooks, 15);
  const PipelineObservation observation =
      make_observation(run.sender, run.receiver, nullptr, &latencies);
  EXPECT_TRUE(observation.latency.any());
  EXPECT_EQ(observation.latency.compress.count, 15U);
  EXPECT_EQ(observation.latency.receive.count, 15U);
  EXPECT_GT(observation.latency.compress.p99_ns, 0U);
}

}  // namespace
}  // namespace numastream

// ------------------------------------------------------- sim determinism

namespace numastream::simrt {
namespace {

ExperimentOptions observed_options() {
  ExperimentOptions options;
  options.chunks_per_stream = 40;
  options.link.bandwidth_gbps = 200;
  options.observe.trace = true;
  options.observe.latency = true;
  return options;
}

Result<ExperimentResult> run_observed_plan(const ExperimentOptions& options) {
  const MachineTopology lynx = lynxdtn_topology();
  const std::vector<MachineTopology> senders = {updraft_topology("updraft1"),
                                                updraft_topology("updraft2")};
  ConfigGenerator generator(lynx, senders);
  WorkloadSpec workload;
  workload.num_streams = 2;
  workload.compression_threads = 8;
  workload.transfer_threads = 2;
  workload.decompression_threads = 2;
  auto plan = generator.generate(workload, PlacementStrategy::kNumaAware);
  NS_CHECK(plan.ok(), "plan generation failed");
  return run_plan(senders, lynx, plan.value(), options);
}

TEST(TraceDeterminismTest, SameSeedRunsEmitByteIdenticalTraces) {
  auto first = run_observed_plan(observed_options());
  auto second = run_observed_plan(observed_options());
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  ASSERT_TRUE(second.ok()) << second.status().to_string();
  ASSERT_FALSE(first.value().spans.empty());
  EXPECT_EQ(first.value().dropped_spans, 0U);

  const std::string jsonl1 = obs::spans_to_jsonl(first.value().spans);
  const std::string jsonl2 = obs::spans_to_jsonl(second.value().spans);
  EXPECT_FALSE(jsonl1.empty());
  EXPECT_EQ(jsonl1, jsonl2);  // byte-identical, the tentpole guarantee
  EXPECT_EQ(obs::spans_to_chrome_json(first.value().spans),
            obs::spans_to_chrome_json(second.value().spans));
  EXPECT_EQ(first.value().observation.latency.receive,
            second.value().observation.latency.receive);
}

TEST(TraceDeterminismTest, SimSpansCoverEveryStage) {
  auto result = run_observed_plan(observed_options());
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  std::array<std::uint64_t, obs::kStageCount> by_stage{};
  for (const obs::Span& span : result.value().spans) {
    ASSERT_LE(span.start_ns, span.end_ns);
    ++by_stage[static_cast<int>(span.stage)];
  }
  for (std::uint64_t count : by_stage) {
    EXPECT_GT(count, 0U);
  }
  // Both streams delivered every chunk, so sink spans count them all.
  EXPECT_EQ(by_stage[static_cast<int>(obs::Stage::kSink)], 2U * 40U);
  EXPECT_TRUE(result.value().observation.latency.any());
}

TEST(TraceDeterminismTest, ObservationOffLeavesResultEmpty) {
  ExperimentOptions options = observed_options();
  options.observe = ObserveConfig{};
  auto result = run_observed_plan(options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().spans.empty());
  EXPECT_EQ(result.value().dropped_spans, 0U);
  EXPECT_FALSE(result.value().observation.latency.any());
}

}  // namespace
}  // namespace numastream::simrt
