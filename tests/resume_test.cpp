// Crash-resumption tests (DESIGN.md §11): the journal record format and its
// torn-write truncation, the media crash semantics, sender/receiver journal
// recovery across restarts, the RESUME wire frame, the `resume` config
// directive, the hardened pipeline surviving a seeded kill of either
// endpoint mid-transfer with exactly-once delivery, and the simulated
// crash schedule's bit-identical resume-counter fingerprint.
//
// Everything here is deterministic: crash points are driven by the test (or
// a seeded schedule), so a failing run replays bit-identically.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "codec/xxhash.h"
#include "common/rng.h"
#include "core/budget.h"
#include "core/config_generator.h"
#include "core/drain.h"
#include "core/journal.h"
#include "core/pipeline.h"
#include "metrics/fault_counters.h"
#include "metrics/overload_counters.h"
#include "metrics/resume_counters.h"
#include "msg/faulty.h"
#include "msg/inproc.h"
#include "msg/message.h"
#include "simrt/driver.h"
#include "topo/discover.h"

namespace numastream {
namespace {

MachineTopology host_topology() {
  auto topo = discover_topology();
  NS_CHECK(topo.ok(), "resume tests need a discoverable host");
  return std::move(topo).value();
}

Bytes pattern_payload(std::uint64_t sequence, std::size_t size) {
  Bytes payload(size);
  Rng rng(sequence * 0x9E3779B97F4A7C15ULL + 1);
  for (auto& b : payload) {
    b = static_cast<std::uint8_t>(rng.next_u64());
  }
  return payload;
}

/// Serves `count` deterministic chunks whose contents depend only on the
/// sequence number, so a restarted sender regenerates the exact dataset.
class PatternSource final : public ChunkSource {
 public:
  PatternSource(std::uint32_t stream_id, std::uint64_t count, std::size_t size)
      : stream_id_(stream_id), count_(count), size_(size) {}

  std::optional<Chunk> next() override {
    const std::uint64_t index = issued_.fetch_add(1, std::memory_order_relaxed);
    if (index >= count_) {
      return std::nullopt;
    }
    Chunk chunk;
    chunk.stream_id = stream_id_;
    chunk.sequence = index;
    chunk.payload = pattern_payload(index, size_);
    return chunk;
  }

 private:
  std::uint32_t stream_id_;
  std::uint64_t count_;
  std::size_t size_;
  std::atomic<std::uint64_t> issued_{0};
};

/// PatternSource with a one-shot gate: yields `gate_at` chunks, then blocks
/// inside next() until release(). Lets a test park the pipeline at an exact
/// ingest point (compressors waiting mid-iteration) while it stages the
/// next fault deterministically instead of racing the chunk flow.
class GatedPatternSource final : public ChunkSource {
 public:
  GatedPatternSource(std::uint32_t stream_id, std::uint64_t count,
                     std::size_t size, std::uint64_t gate_at)
      : inner_(stream_id, count, size), gate_at_(gate_at) {}

  std::optional<Chunk> next() override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return issued_ < gate_at_ || released_; });
      ++issued_;
    }
    return inner_.next();
  }

  void release() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  PatternSource inner_;
  const std::uint64_t gate_at_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t issued_ = 0;
  bool released_ = false;
};

/// Records a content hash per (stream, sequence) and counts re-deliveries.
class VerifySink final : public ChunkSink {
 public:
  void deliver(Chunk chunk) override {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto [it, fresh] = hashes_.emplace(
        std::make_pair(chunk.stream_id, chunk.sequence), xxhash32(chunk.payload));
    (void)it;
    if (!fresh) {
      ++duplicates_;
    }
  }

  [[nodiscard]] std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t>
  hashes() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return hashes_;
  }

  [[nodiscard]] std::size_t count() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return hashes_.size();
  }

  [[nodiscard]] std::uint64_t duplicates() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return duplicates_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t> hashes_;
  std::uint64_t duplicates_ = 0;
};

NodeConfig sender_config(int compress, int send) {
  NodeConfig config;
  config.node_name = "rtest-sender";
  config.role = NodeRole::kSender;
  config.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = compress},
      TaskGroupConfig{.type = TaskType::kSend, .count = send},
  };
  return config;
}

NodeConfig receiver_config(int receive, int decompress) {
  NodeConfig config;
  config.node_name = "rtest-receiver";
  config.role = NodeRole::kReceiver;
  config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = receive},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = decompress},
  };
  return config;
}

JournalRecord sent_record(std::uint32_t stream, std::uint64_t sequence) {
  JournalRecord record;
  record.type = JournalRecordType::kSent;
  record.stream_id = stream;
  record.sequence = sequence;
  record.offset = sequence * 512;
  record.body_hash = static_cast<std::uint32_t>(sequence * 2654435761U + 7);
  record.body_size = 512;
  return record;
}

// ---------------------------------------------------------- record format

TEST(JournalRecordTest, EncodeScanRoundTrip) {
  std::vector<JournalRecord> records;
  JournalRecord session;
  session.type = JournalRecordType::kSession;
  session.sequence = 42;
  records.push_back(session);
  records.push_back(sent_record(1, 0));
  records.push_back(sent_record(1, 1));
  JournalRecord acked;
  acked.type = JournalRecordType::kAcked;
  acked.stream_id = 1;
  acked.sequence = 1;
  records.push_back(acked);

  Bytes wire;
  for (const JournalRecord& record : records) {
    const Bytes encoded = encode_journal_record(record);
    ASSERT_EQ(encoded.size(), kJournalRecordSize);
    wire.insert(wire.end(), encoded.begin(), encoded.end());
  }
  const JournalScan scan = scan_journal(ByteSpan(wire.data(), wire.size()));
  EXPECT_EQ(scan.records, records);
  EXPECT_EQ(scan.torn_records, 0U);
  EXPECT_EQ(scan.trusted_bytes, wire.size());
}

TEST(JournalRecordTest, ScanTruncatesAtFirstCorruptRecord) {
  Bytes wire;
  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    const Bytes encoded = encode_journal_record(sent_record(1, seq));
    wire.insert(wire.end(), encoded.begin(), encoded.end());
  }
  // Flip one byte inside record 2: it and everything after must be dropped —
  // a record past a tear cannot be trusted to be aligned.
  wire[2 * kJournalRecordSize + 9] ^= 0x01;
  const JournalScan scan = scan_journal(ByteSpan(wire.data(), wire.size()));
  ASSERT_EQ(scan.records.size(), 2U);
  EXPECT_EQ(scan.records[1].sequence, 1U);
  EXPECT_GE(scan.torn_records, 1U);
  EXPECT_EQ(scan.trusted_bytes, 2 * kJournalRecordSize);
}

TEST(JournalRecordTest, ShortTailIsTorn) {
  Bytes wire = encode_journal_record(sent_record(1, 0));
  const Bytes next = encode_journal_record(sent_record(1, 1));
  wire.insert(wire.end(), next.begin(), next.begin() + 10);  // torn append
  const JournalScan scan = scan_journal(ByteSpan(wire.data(), wire.size()));
  ASSERT_EQ(scan.records.size(), 1U);
  EXPECT_EQ(scan.torn_records, 1U);
  EXPECT_EQ(scan.trusted_bytes, kJournalRecordSize);
}

TEST(JournalRecordTest, EmptyJournalScansClean) {
  const JournalScan scan = scan_journal(ByteSpan());
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.torn_records, 0U);
}

// ------------------------------------------------------------ media crash

TEST(MemoryJournalMediaTest, FlushDrawsTheDurabilityLine) {
  MemoryJournalMedia media;
  const Bytes record = encode_journal_record(sent_record(1, 0));
  ASSERT_TRUE(media.append(ByteSpan(record.data(), record.size())).is_ok());
  EXPECT_EQ(media.durable_size(), 0U);  // pending only
  ASSERT_TRUE(media.flush().is_ok());
  EXPECT_EQ(media.durable_size(), record.size());
  auto read = media.read_all();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), record);
}

TEST(MemoryJournalMediaTest, CrashDropsPendingOnly) {
  MemoryJournalMedia media;
  const Bytes first = encode_journal_record(sent_record(1, 0));
  ASSERT_TRUE(media.append(ByteSpan(first.data(), first.size())).is_ok());
  ASSERT_TRUE(media.flush().is_ok());
  const Bytes second = encode_journal_record(sent_record(1, 1));
  ASSERT_TRUE(media.append(ByteSpan(second.data(), second.size())).is_ok());
  media.crash();  // kill -9 eats the page cache
  EXPECT_EQ(media.durable_size(), first.size());
  const JournalScan scan = scan_journal(
      ByteSpan(media.read_all().value().data(), media.durable_size()));
  ASSERT_EQ(scan.records.size(), 1U);
  EXPECT_EQ(scan.records[0].sequence, 0U);
}

TEST(MemoryJournalMediaTest, TornCrashLeavesPartialRecord) {
  MemoryJournalMedia media;
  const Bytes record = encode_journal_record(sent_record(1, 0));
  ASSERT_TRUE(media.append(ByteSpan(record.data(), record.size())).is_ok());
  media.crash_torn(11);  // crash landed mid-write
  EXPECT_EQ(media.durable_size(), 11U);
  const JournalScan scan = scan_journal(
      ByteSpan(media.read_all().value().data(), media.durable_size()));
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.torn_records, 1U);
}

// -------------------------------------------------------- sender journal

TEST(SenderJournalTest, RecoverWritesSessionAndRejectsMismatch) {
  MemoryJournalMedia media;
  SenderJournal first(media, 42);
  ASSERT_TRUE(first.recover().is_ok());
  EXPECT_EQ(media.durable_size(), kJournalRecordSize);  // the session record

  SenderJournal again(media, 42);
  EXPECT_TRUE(again.recover().is_ok());

  SenderJournal stranger(media, 43);
  EXPECT_EQ(stranger.recover().code(), StatusCode::kDataLoss);
}

TEST(SenderJournalTest, WatermarksAreMonotoneAndBoundRework) {
  MemoryJournalMedia media;
  SenderJournal journal(media, 7);
  ASSERT_TRUE(journal.recover().is_ok());
  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    ASSERT_TRUE(journal.record_sent(1, seq, seq * 512, 0xABU, 512).is_ok());
  }
  EXPECT_EQ(journal.unacked_count(), 5U);
  EXPECT_EQ(journal.unacked_bytes(), 5 * 512U);
  EXPECT_TRUE(journal.sent_unacked(1, 4));

  ASSERT_TRUE(journal.record_acked(1, 3).is_ok());
  EXPECT_EQ(journal.acked_watermark(1), 3U);
  EXPECT_EQ(journal.unacked_count(), 2U);
  EXPECT_FALSE(journal.sent_unacked(1, 2));  // acked: re-send is suppressed

  // A stale handshake never regresses the watermark.
  ASSERT_TRUE(journal.record_acked(1, 1).is_ok());
  EXPECT_EQ(journal.acked_watermark(1), 3U);
  EXPECT_EQ(journal.acked_watermark(9), 0U);  // unknown streams start at 0
}

TEST(SenderJournalTest, RestartRebuildsTheUnackedSet) {
  MemoryJournalMedia media;
  {
    SenderJournal journal(media, 7);
    ASSERT_TRUE(journal.recover().is_ok());
    for (std::uint64_t seq = 0; seq < 6; ++seq) {
      ASSERT_TRUE(journal.record_sent(1, seq, 0, 0, 256).is_ok());
    }
    ASSERT_TRUE(journal.record_acked(1, 4).is_ok());
  }
  // Process death: every record was flushed, so recovery sees them all.
  SenderJournal restarted(media, 7);
  ASSERT_TRUE(restarted.recover().is_ok());
  EXPECT_EQ(restarted.acked_watermark(1), 4U);
  EXPECT_EQ(restarted.unacked_count(), 2U);  // sequences 4 and 5
  EXPECT_TRUE(restarted.sent_unacked(1, 5));
  EXPECT_FALSE(restarted.sent_unacked(1, 3));
}

TEST(SenderJournalTest, TornTailIsTruncatedAndCounted) {
  MemoryJournalMedia media;
  ResumeCounters counters;
  {
    SenderJournal journal(media, 7, &counters);
    ASSERT_TRUE(journal.recover().is_ok());
    ASSERT_TRUE(journal.record_sent(1, 0, 0, 0, 128).is_ok());
  }
  // A torn append: half a record survives past the durable prefix.
  const Bytes torn = encode_journal_record(sent_record(1, 1));
  ASSERT_TRUE(media.append(ByteSpan(torn.data(), torn.size())).is_ok());
  media.crash_torn(20);

  SenderJournal restarted(media, 7, &counters);
  ASSERT_TRUE(restarted.recover().is_ok());
  EXPECT_EQ(restarted.unacked_count(), 1U);  // only the intact record
  EXPECT_GE(counters.snapshot().torn_records_truncated, 1U);
}

// ------------------------------------------------------ receiver journal

TEST(ReceiverJournalTest, WatermarkAdvancesThroughGaps) {
  MemoryJournalMedia media;
  ReceiverJournal journal(media, 9);
  ASSERT_TRUE(journal.recover().is_ok());
  ASSERT_TRUE(journal.record_delivered(1, 0).is_ok());
  ASSERT_TRUE(journal.record_delivered(1, 1).is_ok());
  ASSERT_TRUE(journal.record_delivered(1, 3).is_ok());  // out of order
  EXPECT_EQ(journal.watermark(1), 2U);
  EXPECT_TRUE(journal.seen(1, 3));
  EXPECT_FALSE(journal.seen(1, 2));
  ASSERT_TRUE(journal.record_delivered(1, 2).is_ok());
  EXPECT_EQ(journal.watermark(1), 4U);  // the gap closed, 3 was absorbed
}

TEST(ReceiverJournalTest, RestartPreservesTheLedger) {
  MemoryJournalMedia media;
  {
    ReceiverJournal journal(media, 9);
    ASSERT_TRUE(journal.recover().is_ok());
    for (std::uint64_t seq = 0; seq < 4; ++seq) {
      ASSERT_TRUE(journal.record_delivered(2, seq).is_ok());
    }
    ASSERT_TRUE(journal.record_delivered(2, 7).is_ok());
  }
  ReceiverJournal restarted(media, 9);
  ASSERT_TRUE(restarted.recover().is_ok());
  EXPECT_EQ(restarted.watermark(2), 4U);
  EXPECT_TRUE(restarted.seen(2, 7));   // out-of-order commits survive too
  EXPECT_FALSE(restarted.seen(2, 5));
  const auto points = restarted.watermarks();
  ASSERT_EQ(points.size(), 1U);
  EXPECT_EQ(points[0], std::make_pair(std::uint32_t{2}, std::uint64_t{4}));

  ReceiverJournal stranger(media, 10);
  EXPECT_EQ(stranger.recover().code(), StatusCode::kDataLoss);
}

// ------------------------------------------------------------ wire format

TEST(ResumeFrameTest, RoundTripsThroughTheDecoder) {
  const std::vector<ResumePoint> points = {{1, 17}, {2, 0}, {9, 1000}};
  const Message frame = Message::resume_frame(42, points);
  EXPECT_TRUE(frame.resume);

  MessageDecoder decoder;
  decoder.feed(encode_message(frame));
  auto decoded = decoder.next();
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_TRUE(decoded.value().resume);
  auto info = parse_resume_body(
      ByteSpan(decoded.value().body.data(), decoded.value().body.size()));
  ASSERT_TRUE(info.ok()) << info.status().to_string();
  EXPECT_EQ(info.value().session_id, 42U);
  EXPECT_EQ(info.value().points, points);
}

TEST(ResumeFrameTest, EmptyPointListIsValid) {
  const Message frame = Message::resume_frame(7, {});
  auto info = parse_resume_body(ByteSpan(frame.body.data(), frame.body.size()));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().session_id, 7U);
  EXPECT_TRUE(info.value().points.empty());
}

TEST(ResumeFrameTest, ShortBodyRejected) {
  const Message frame = Message::resume_frame(42, {{1, 5}});
  // Shorter than the fixed prefix.
  EXPECT_FALSE(parse_resume_body(ByteSpan(frame.body.data(), 8)).ok());
  // Prefix intact but the claimed point count overruns the body.
  EXPECT_FALSE(
      parse_resume_body(ByteSpan(frame.body.data(), kResumeBodyPrefix + 4)).ok());
}

// ---------------------------------------------------------- config plumbing

TEST(ResumeConfigTest, AbsentDirectiveIsByteIdentical) {
  NodeConfig config = sender_config(2, 1);
  const std::string serialized = config.serialize();
  EXPECT_EQ(serialized.find("resume"), std::string::npos);
  auto parsed = NodeConfig::parse(serialized);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().resume.is_default());
  EXPECT_EQ(parsed.value().serialize(), serialized);
}

TEST(ResumeConfigTest, SerializeParseRoundTrip) {
  NodeConfig config = receiver_config(1, 1);
  config.recovery.reconnect = true;
  config.resume.session = 42;
  config.resume.ack_interval = 16;
  auto parsed = NodeConfig::parse(config.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().resume, config.resume);
  EXPECT_EQ(parsed.value().serialize(), config.serialize());
}

TEST(ResumeConfigTest, ValidateRequiresSessionAndReconnect) {
  const MachineTopology topo = host_topology();
  NodeConfig config = sender_config(1, 1);
  config.resume.session = 1;  // resume without reconnect: the resume point
  EXPECT_FALSE(config.validate(topo).is_ok());  // could never be reached
  config.recovery.reconnect = true;
  EXPECT_TRUE(config.validate(topo).is_ok());
  config.resume.session = 0;
  config.resume.ack_interval = 8;  // enabled without a session id
  EXPECT_FALSE(config.validate(topo).is_ok());
}

// -------------------------------------------------------------- end to end

constexpr std::uint64_t kSession = 42;
constexpr std::uint64_t kChunks = 240;
constexpr std::size_t kChunkBytes = 1024;

NodeConfig resumable_sender(int watchdog_ms = 0) {
  NodeConfig config = sender_config(2, 1);
  config.recovery.reconnect = true;
  config.recovery.retry.max_attempts = 10000;
  config.recovery.retry.initial_backoff_us = 200;
  config.recovery.retry.max_backoff_us = 2000;
  config.recovery.watchdog_ms = watchdog_ms;
  config.resume.session = kSession;
  config.resume.ack_interval = 8;
  config.overload.credit_window = 8;  // pace the sender near the receiver
  return config;
}

NodeConfig resumable_receiver(int watchdog_ms = 0) {
  NodeConfig config = receiver_config(1, 1);
  config.recovery.reconnect = true;
  config.recovery.retry.max_attempts = 10000;
  config.recovery.retry.initial_backoff_us = 200;
  config.recovery.retry.max_backoff_us = 2000;
  config.recovery.watchdog_ms = watchdog_ms;
  config.resume.session = kSession;
  config.resume.ack_interval = 8;
  config.overload.credit_window = 8;
  return config;
}

void expect_exactly_once(
    const std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t>&
        delivered) {
  ASSERT_EQ(delivered.size(), kChunks);
  for (std::uint64_t seq = 0; seq < kChunks; ++seq) {
    const auto it = delivered.find({1, seq});
    ASSERT_NE(it, delivered.end()) << "chunk " << seq << " lost";
    EXPECT_EQ(it->second, xxhash32(pattern_payload(seq, kChunkBytes)))
        << "chunk " << seq << " corrupted";
  }
}

// Kills the receiver mid-transfer (its process state — queued chunks and
// unflushed journal tail — is gone), restarts it over the recovered ledger,
// and requires the sender's retained-window replay to close the gap: every
// chunk delivered exactly once across both receiver incarnations.
TEST(ResumePipelineTest, ReceiverCrashRecoversExactlyOnce) {
  const MachineTopology topo = host_topology();
  MemoryJournalMedia sender_media;
  MemoryJournalMedia receiver_media;
  ResumeCounters counters;
  FaultCounters faults;

  // Phase 1: receiver #1 listens. Phase 0: blackout. Phase 2: receiver #2.
  std::atomic<int> phase{1};
  InprocListener listener1;
  InprocListener listener2;

  // The dial-side injector models the peer death: trigger_crash() fails the
  // sender's established connections and its crash hook drops the receiver
  // journal's unflushed tail at the same instant.
  FaultPlan plan;  // no stochastic faults; the crash is the only event
  FaultInjector injector(plan, &faults);
  injector.set_crash_hook([&] { receiver_media.crash(); });
  const DialFn dial = faulty_dialer(
      [&]() -> Result<std::unique_ptr<ByteStream>> {
        switch (phase.load(std::memory_order_acquire)) {
          case 1:
            return listener1.connect();
          case 2:
            return listener2.connect();
          default:
            return unavailable_error("receiver is down");
        }
      },
      injector);

  PatternSource source(1, kChunks, kChunkBytes);
  VerifySink sink1;
  VerifySink sink2;

  SenderJournal sender_journal(sender_media, kSession, &counters);
  ASSERT_TRUE(sender_journal.recover().is_ok());

  Status sender_status = Status::ok();
  std::thread sender_thread([&] {
    StreamSender sender(topo, resumable_sender());
    auto stats = sender.run(source, dial, nullptr, &faults, {}, {}, {},
                            ResumeHooks{.sender_journal = &sender_journal,
                                        .counters = &counters});
    sender_status = stats.ok() ? Status::ok() : stats.status();
  });

  // Receiver #1: a short watchdog converts the post-crash silence into a
  // clean exit, standing in for the process death.
  Status receiver1_status = Status::ok();
  std::thread receiver1_thread([&] {
    ReceiverJournal journal(receiver_media, kSession, &counters);
    const Status recovered = journal.recover();
    NS_CHECK(recovered.is_ok(), "fresh ledger must recover");
    StreamReceiver receiver(topo, resumable_receiver(/*watchdog_ms=*/300));
    auto stats = receiver.run(listener1, sink1, nullptr, &faults, {}, {}, {},
                              ResumeHooks{.receiver_journal = &journal,
                                          .counters = &counters});
    receiver1_status = stats.ok() ? Status::ok() : stats.status();
  });

  // Kill the receiver once roughly a third of the stream has committed.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (sink1.count() < kChunks / 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(sink1.count(), kChunks / 3) << "transfer never got going";
  phase.store(0, std::memory_order_release);
  injector.trigger_crash(/*restart_delay_micros=*/100000);
  counters.crashes_observed.fetch_add(1, std::memory_order_relaxed);
  receiver1_thread.join();  // the watchdog reaps the dead incarnation

  // Receiver #2: same ledger media, recovered — its RESUME handshake tells
  // the sender where to resume, and seen() dedups anything already sunk.
  ReceiverJournal journal2(receiver_media, kSession, &counters);
  ASSERT_TRUE(journal2.recover().is_ok());
  Status receiver2_status = Status::ok();
  std::thread receiver2_thread([&] {
    StreamReceiver receiver(topo, resumable_receiver());
    auto stats = receiver.run(listener2, sink2, nullptr, &faults, {}, {}, {},
                              ResumeHooks{.receiver_journal = &journal2,
                                          .counters = &counters});
    receiver2_status = stats.ok() ? Status::ok() : stats.status();
  });
  phase.store(2, std::memory_order_release);

  sender_thread.join();
  receiver2_thread.join();
  EXPECT_TRUE(sender_status.is_ok()) << sender_status.to_string();
  EXPECT_TRUE(receiver2_status.is_ok()) << receiver2_status.to_string();

  // Exactly once across both incarnations: the union covers every chunk,
  // bit-exact, and neither sink ever saw a sequence twice.
  auto delivered = sink1.hashes();
  for (const auto& [key, hash] : sink2.hashes()) {
    const auto [it, fresh] = delivered.emplace(key, hash);
    (void)it;
    EXPECT_TRUE(fresh) << "chunk " << key.second
                       << " delivered by both receiver incarnations";
  }
  expect_exactly_once(delivered);
  EXPECT_EQ(sink1.duplicates(), 0U);
  EXPECT_EQ(sink2.duplicates(), 0U);

  const ResumeCountersSnapshot snapshot = counters.snapshot();
  EXPECT_GE(snapshot.resume_handshakes, 2U);  // initial + post-restart
  EXPECT_GT(snapshot.journal_records_written, 0U);
  // Re-work is bounded by the unacked window, never the whole stream.
  EXPECT_LT(snapshot.replayed_chunks, kChunks);
}

// Kills the sender mid-transfer and restarts it from a regenerating source
// over the recovered write-ahead journal: the receiver's RESUME watermark
// suppresses everything already committed, so the restart re-sends only the
// unacked window and the sink still sees every chunk exactly once.
TEST(ResumePipelineTest, SenderCrashRecoversExactlyOnce) {
  const MachineTopology topo = host_topology();
  MemoryJournalMedia sender_media;
  MemoryJournalMedia receiver_media;
  ResumeCounters counters;
  FaultCounters faults;

  InprocListener listener;
  VerifySink sink;

  // Receiver stays up the whole time: its worker returns to accept() when
  // incarnation #1's connection dies, and finishes on incarnation #2's EOS.
  ReceiverJournal receiver_journal(receiver_media, kSession, &counters);
  ASSERT_TRUE(receiver_journal.recover().is_ok());
  Status receiver_status = Status::ok();
  std::thread receiver_thread([&] {
    StreamReceiver receiver(topo, resumable_receiver());
    auto stats = receiver.run(listener, sink, nullptr, &faults, {}, {}, {},
                              ResumeHooks{.receiver_journal = &receiver_journal,
                                          .counters = &counters});
    receiver_status = stats.ok() ? Status::ok() : stats.status();
  });

  // Sender incarnation #1: dies (journal pending lost, connections cut,
  // redials refused) once a third of the stream has committed.
  FaultPlan plan;
  FaultInjector injector(plan, &faults);
  injector.set_crash_hook([&] { sender_media.crash(); });
  const DialFn dying_dial =
      faulty_dialer([&] { return listener.connect(); }, injector);

  Status sender1_status = Status::ok();
  std::thread sender1_thread([&] {
    SenderJournal journal(sender_media, kSession, &counters);
    const Status recovered = journal.recover();
    NS_CHECK(recovered.is_ok(), "fresh journal must recover");
    PatternSource source(1, kChunks, kChunkBytes);
    NodeConfig config = resumable_sender();
    config.recovery.retry.max_attempts = 3;  // die fast once crashed
    StreamSender sender(topo, std::move(config));
    auto stats = sender.run(source, dying_dial, nullptr, &faults, {}, {}, {},
                            ResumeHooks{.sender_journal = &journal,
                                        .counters = &counters});
    sender1_status = stats.ok() ? Status::ok() : stats.status();
  });

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (sink.count() < kChunks / 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(sink.count(), kChunks / 3) << "transfer never got going";
  injector.trigger_crash(/*restart_delay_micros=*/3600000000ULL);  // no return
  counters.crashes_observed.fetch_add(1, std::memory_order_relaxed);
  sender1_thread.join();
  EXPECT_FALSE(sender1_status.is_ok());  // it died mid-stream, no EOS

  // Sender incarnation #2: a fresh process recovers the journal and replays
  // the dataset from sequence zero — the watermark makes that cheap.
  SenderJournal journal2(sender_media, kSession, &counters);
  ASSERT_TRUE(journal2.recover().is_ok());
  PatternSource source2(1, kChunks, kChunkBytes);
  StreamSender sender2(topo, resumable_sender());
  auto stats2 = sender2.run(
      source2, [&] { return listener.connect(); }, nullptr, &faults, {}, {}, {},
      ResumeHooks{.sender_journal = &journal2, .counters = &counters});
  EXPECT_TRUE(stats2.ok()) << stats2.status().to_string();

  receiver_thread.join();
  EXPECT_TRUE(receiver_status.is_ok()) << receiver_status.to_string();

  expect_exactly_once(sink.hashes());
  EXPECT_EQ(sink.duplicates(), 0U);

  const ResumeCountersSnapshot snapshot = counters.snapshot();
  EXPECT_GE(snapshot.resume_handshakes, 2U);
  // The restart regenerated all kChunks but the watermark suppressed the
  // committed prefix — the whole point of resuming over restarting.
  EXPECT_GT(snapshot.duplicates_suppressed, 0U);
  EXPECT_LT(snapshot.replayed_chunks, kChunks);
}

// Chaos composition: crash-restart x credit flow control x memory budget x
// graceful drain, all in one run. The operator requests a drain and the
// sender crashes mid-flush; the restarted incarnation (same journal, same
// shared budget, no drain) completes the stream. The invariants that must
// survive the composition: the shared budget ledger settles to zero after
// each incarnation (every charge released exactly once, even for frames
// abandoned by the crash), the budget cap is never pierced, and the sink
// still sees every chunk exactly once.
TEST(ChaosResumeTest, MidDrainSenderCrashSettlesBudgetExactlyOnce) {
  const MachineTopology topo = host_topology();
  MemoryJournalMedia sender_media;
  MemoryJournalMedia receiver_media;
  ResumeCounters counters;
  FaultCounters faults;
  OverloadCounters ocounters;
  MemoryBudget budget(16 * 1024);  // shared across both sender incarnations
  DrainController drain;           // latched mid-transfer, before the crash

  InprocListener listener;
  VerifySink sink;

  ReceiverJournal receiver_journal(receiver_media, kSession, &counters);
  ASSERT_TRUE(receiver_journal.recover().is_ok());
  Status receiver_status = Status::ok();
  std::thread receiver_thread([&] {
    StreamReceiver receiver(topo, resumable_receiver());
    auto stats = receiver.run(listener, sink, nullptr, &faults,
                              OverloadHooks{.counters = &ocounters}, {}, {},
                              ResumeHooks{.receiver_journal = &receiver_journal,
                                          .counters = &counters});
    receiver_status = stats.ok() ? Status::ok() : stats.status();
  });

  FaultPlan plan;
  FaultInjector injector(plan, &faults);
  injector.set_crash_hook([&] { sender_media.crash(); });
  const DialFn dying_dial =
      faulty_dialer([&] { return listener.connect(); }, injector);

  // Incarnation #1: budget-gated admission, credit-paced sends, and a
  // bounded drain deadline so the forced teardown cannot hang the test.
  // The gated source parks ingest halfway so the drain/crash pair below
  // lands at a deterministic point instead of racing the chunk flow.
  GatedPatternSource source(1, kChunks, kChunkBytes, /*gate_at=*/kChunks / 2);
  Status sender1_status = Status::ok();
  std::thread sender1_thread([&] {
    SenderJournal journal(sender_media, kSession, &counters);
    const Status recovered = journal.recover();
    NS_CHECK(recovered.is_ok(), "fresh journal must recover");
    NodeConfig config = resumable_sender();
    config.recovery.retry.max_attempts = 3;  // die fast once crashed
    config.chunk_bytes = kChunkBytes;  // admission sanity check vs the cap
    config.overload.budget_bytes = budget.cap();
    config.overload.drain_deadline_ms = 200;
    StreamSender sender(topo, std::move(config));
    auto stats = sender.run(
        source, dying_dial, nullptr, &faults,
        OverloadHooks{.budget = &budget, .counters = &ocounters,
                      .drain = &drain},
        {}, {},
        ResumeHooks{.sender_journal = &journal, .counters = &counters});
    sender1_status = stats.ok() ? Status::ok() : stats.status();
  });

  // Let the gated half of the stream flush completely: once the sink holds
  // every chunk the gate released, the compressors are parked inside
  // next() and nothing is racing the fault staging below.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (sink.count() < kChunks / 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(sink.count(), kChunks / 2) << "transfer never got going";
  // Mid-drain crash, made deterministic: latch the drain and cut the wire
  // *before* reopening the source. Each woken compressor finishes at most
  // one more ingest iteration, observes the latch at the top of the next
  // (counted once via note_drain_request), and the flush of whatever it
  // queued dies on the crashed connection — ingest stopped, flush started,
  // process dead while frames are still in flight.
  drain.request();
  injector.trigger_crash(/*restart_delay_micros=*/3600000000ULL);  // no return
  counters.crashes_observed.fetch_add(1, std::memory_order_relaxed);
  source.release();
  sender1_thread.join();
  EXPECT_FALSE(sender1_status.is_ok());  // drain cut short by the crash

  // Exactly-once budget settle, first checkpoint: the dead incarnation's
  // abandoned frames were released on teardown, not leaked.
  EXPECT_EQ(budget.used(), 0U);

  // Incarnation #2: same journal, same shared ledger, no drain latch — it
  // finishes the stream under the receiver's committed-prefix suppression.
  SenderJournal journal2(sender_media, kSession, &counters);
  ASSERT_TRUE(journal2.recover().is_ok());
  PatternSource source2(1, kChunks, kChunkBytes);
  NodeConfig config2 = resumable_sender();
  config2.chunk_bytes = kChunkBytes;
  config2.overload.budget_bytes = budget.cap();
  StreamSender sender2(topo, std::move(config2));
  auto stats2 = sender2.run(
      source2, [&] { return listener.connect(); }, nullptr, &faults,
      OverloadHooks{.budget = &budget, .counters = &ocounters}, {}, {},
      ResumeHooks{.sender_journal = &journal2, .counters = &counters});
  EXPECT_TRUE(stats2.ok()) << stats2.status().to_string();

  receiver_thread.join();
  EXPECT_TRUE(receiver_status.is_ok()) << receiver_status.to_string();

  // The composed invariants: exactly-once delivery, a settled ledger, and
  // a cap that held through crash, replay, and drain.
  expect_exactly_once(sink.hashes());
  EXPECT_EQ(sink.duplicates(), 0U);
  EXPECT_EQ(budget.used(), 0U);
  EXPECT_GT(budget.peak(), 0U);
  EXPECT_LE(budget.peak(), budget.cap());

  const OverloadCountersSnapshot overload = ocounters.snapshot();
  EXPECT_GE(overload.drain_requests, 1U);
  const ResumeCountersSnapshot snapshot = counters.snapshot();
  EXPECT_GE(snapshot.resume_handshakes, 2U);
  EXPECT_LT(snapshot.replayed_chunks, kChunks);
}

// ------------------------------------------------------------- simulation

using simrt::ExperimentOptions;
using simrt::ExperimentResult;
using simrt::run_plan;

Result<ExperimentResult> run_sim_crash(const ExperimentOptions& options) {
  const MachineTopology lynx = lynxdtn_topology();
  const std::vector<MachineTopology> senders = {updraft_topology()};
  ConfigGenerator generator(lynx, senders);
  WorkloadSpec workload;
  workload.num_streams = 1;
  auto plan = generator.generate(workload, PlacementStrategy::kNumaAware);
  NS_CHECK(plan.ok(), "plan generation must succeed");
  return run_plan(senders, lynx, plan.value(), options);
}

TEST(SimResumeTest, CrashScheduleRequiresResume) {
  ExperimentOptions options;
  options.chunks_per_stream = 30;
  options.crashes = {{.stream = 0, .sender = false, .at_seconds = 0.001}};
  EXPECT_FALSE(run_sim_crash(options).ok());  // crashes without the journal
}

TEST(SimResumeTest, SeededCrashesAreBitIdenticalAndReworkBounded) {
  // Probe the crash-free duration so the schedule lands mid-transfer.
  ExperimentOptions options;
  options.chunks_per_stream = 120;
  options.resume = true;
  auto probe = run_sim_crash(options);
  ASSERT_TRUE(probe.ok()) << probe.status().to_string();
  const double elapsed = probe.value().elapsed_seconds;
  ASSERT_GT(elapsed, 0);
  // Resume on, no crashes: the journal mirror runs but costs nothing.
  EXPECT_EQ(probe.value().resume.crashes_observed, 0U);
  EXPECT_GT(probe.value().resume.journal_records_written, 0U);
  EXPECT_EQ(probe.value().streams[0].chunks, 120U);

  options.crashes = {
      {.stream = 0, .sender = false, .at_seconds = elapsed / 3,
       .restart_seconds = elapsed / 10},
      {.stream = 0, .sender = true, .at_seconds = 2 * elapsed / 3,
       .restart_seconds = elapsed / 20},
  };
  auto first = run_sim_crash(options);
  auto second = run_sim_crash(options);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  ASSERT_TRUE(second.ok()) << second.status().to_string();

  // The fingerprint: two same-schedule recovery runs agree bit for bit.
  EXPECT_TRUE(first.value().resume == second.value().resume)
      << first.value().resume.to_string() << " vs "
      << second.value().resume.to_string();
  EXPECT_EQ(first.value().rework_restart_from_zero_bytes,
            second.value().rework_restart_from_zero_bytes);

  const ResumeCountersSnapshot& resume = first.value().resume;
  EXPECT_EQ(resume.crashes_observed, 2U);
  EXPECT_EQ(resume.resume_handshakes, 2U);
  EXPECT_GT(resume.recovery_wall_ms, 0U);
  // Zero loss despite two mid-transfer kills.
  EXPECT_EQ(first.value().streams[0].chunks, 120U);
  // The journal's whole value: re-work stays bounded by the unacked window,
  // strictly under what restart-from-zero would have re-sent.
  EXPECT_LT(static_cast<double>(resume.rework_bytes),
            first.value().rework_restart_from_zero_bytes);
  // The observation mirror carries the same ledger for the advisor.
  EXPECT_EQ(first.value().observation.resume.replayed_chunks,
            resume.replayed_chunks);
}

}  // namespace
}  // namespace numastream
