#include <gtest/gtest.h>

#include <thread>

#include "core/advisor.h"
#include "core/config.h"
#include "core/config_generator.h"
#include "core/placement.h"
#include "core/pipeline.h"
#include "msg/inproc.h"
#include "topo/discover.h"
#include "topo/topology.h"

namespace numastream {
namespace {

// ---------------------------------------------------------------- tables

TEST(PlacementTest, Table1HasEightConfigsInOrder) {
  const auto& configs = table1_configs();
  ASSERT_EQ(configs.size(), 8U);
  EXPECT_EQ(configs[0].label, 'A');
  EXPECT_EQ(configs[7].label, 'H');
  // Spot-check the paper's rows: B = data in 0, exec in 1.
  EXPECT_EQ(configs[1].memory_domain, 0);
  EXPECT_EQ(configs[1].execution, ExecutionDomainPolicy::kDomain1);
  // E/F split, G/H OS-managed.
  EXPECT_EQ(configs[4].execution, ExecutionDomainPolicy::kSplit);
  EXPECT_EQ(configs[6].execution, ExecutionDomainPolicy::kOsManaged);
}

TEST(PlacementTest, Table2HasFiveConfigs) {
  const auto& configs = table2_configs();
  ASSERT_EQ(configs.size(), 5U);
  // B and D put receivers on NUMA 1 (the NIC domain).
  EXPECT_EQ(configs[1].receiver, ExecutionDomainPolicy::kDomain1);
  EXPECT_EQ(configs[3].receiver, ExecutionDomainPolicy::kDomain1);
  EXPECT_EQ(configs[4].sender, ExecutionDomainPolicy::kOsManaged);
}

TEST(PlacementTest, Table3MatchesThePaper) {
  const auto& configs = table3_configs();
  ASSERT_EQ(configs.size(), 7U);
  EXPECT_EQ(configs[0].compression_threads, 8);
  EXPECT_EQ(configs[0].decompression_threads, 4);
  EXPECT_EQ(configs[6].compression_threads, 32);
  EXPECT_EQ(configs[6].decompression_threads, 16);
}

TEST(PlacementTest, BindingsForPolicy) {
  auto split = bindings_for_policy(ExecutionDomainPolicy::kSplit, 1);
  ASSERT_EQ(split.size(), 2U);
  EXPECT_EQ(split[0].execution_domain, 0);
  EXPECT_EQ(split[1].execution_domain, 1);
  EXPECT_EQ(split[0].memory_domain, 1);

  auto os = bindings_for_policy(ExecutionDomainPolicy::kOsManaged, 0);
  ASSERT_EQ(os.size(), 1U);
  EXPECT_TRUE(os[0].os_managed());
}

// ---------------------------------------------------------------- config

NodeConfig sample_receiver_config() {
  NodeConfig config;
  config.node_name = "lynxdtn";
  config.role = NodeRole::kReceiver;
  config.codec_name = "lz4";
  config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive,
                      .count = 4,
                      .bindings = {NumaBinding{.execution_domain = 1, .memory_domain = 1}},
                      .stream_id = 0},
      TaskGroupConfig{.type = TaskType::kDecompress,
                      .count = 4,
                      .bindings = {NumaBinding{.execution_domain = 0, .memory_domain = 0}},
                      .stream_id = 0},
  };
  return config;
}

TEST(ConfigTest, SerializeParseRoundTrip) {
  const NodeConfig original = sample_receiver_config();
  const std::string text = original.serialize();
  auto parsed = NodeConfig::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().node_name, "lynxdtn");
  EXPECT_EQ(parsed.value().role, NodeRole::kReceiver);
  EXPECT_EQ(parsed.value().codec_name, "lz4");
  ASSERT_EQ(parsed.value().tasks.size(), 2U);
  EXPECT_EQ(parsed.value().tasks[0].type, TaskType::kReceive);
  EXPECT_EQ(parsed.value().tasks[0].count, 4);
  EXPECT_EQ(parsed.value().tasks[0].bindings[0].execution_domain, 1);
  EXPECT_EQ(parsed.value().tasks[0].stream_id, 0);
  // Round-trip is a fixed point.
  EXPECT_EQ(parsed.value().serialize(), text);
}

TEST(ConfigTest, ParseHandlesCommentsAndSplitExec) {
  const std::string text = R"(# the receiver side
node lynxdtn
role receiver
codec lz4
task receive count=2 exec=1 mem=1   # pinned to the NIC domain
task decompress count=8 exec=0,1 mem=os
)";
  auto parsed = NodeConfig::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().tasks.size(), 2U);
  ASSERT_EQ(parsed.value().tasks[1].bindings.size(), 2U);
  EXPECT_EQ(parsed.value().tasks[1].bindings[1].execution_domain, 1);
  EXPECT_TRUE(parsed.value().tasks[1].bindings[0].memory_domain ==
              NumaBinding::kOsChoice);
}

TEST(ConfigTest, ParseErrorsCarryLineNumbers) {
  const auto status = NodeConfig::parse("node x\ntask frobnicate count=1\n").status();
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST(ConfigTest, ParseRejectsMalformed) {
  EXPECT_FALSE(NodeConfig::parse("").ok());                       // no node
  EXPECT_FALSE(NodeConfig::parse("node x\nrole pirate\n").ok());  // bad role
  EXPECT_FALSE(NodeConfig::parse("node x\ntask send\n").ok());    // no count
  EXPECT_FALSE(NodeConfig::parse("node x\ntask send count=x\n").ok());
  EXPECT_FALSE(NodeConfig::parse("node x\ntask send count=1 exec=9x\n").ok());
  EXPECT_FALSE(NodeConfig::parse("node x\nbogus y\n").ok());
}

TEST(ConfigTest, ValidateAgainstTopology) {
  const MachineTopology topo = lynxdtn_topology();
  EXPECT_TRUE(sample_receiver_config().validate(topo).is_ok());

  NodeConfig bad = sample_receiver_config();
  bad.tasks[0].bindings[0].execution_domain = 7;
  EXPECT_FALSE(bad.validate(topo).is_ok());

  NodeConfig wrong_role = sample_receiver_config();
  wrong_role.tasks[0].type = TaskType::kSend;  // send task on a receiver
  EXPECT_FALSE(wrong_role.validate(topo).is_ok());

  NodeConfig bad_codec = sample_receiver_config();
  bad_codec.codec_name = "gzip";
  EXPECT_FALSE(bad_codec.validate(topo).is_ok());

  NodeConfig no_tasks = sample_receiver_config();
  no_tasks.tasks.clear();
  EXPECT_FALSE(no_tasks.validate(topo).is_ok());
}

TEST(ConfigTest, ThreadCount) {
  const NodeConfig config = sample_receiver_config();
  EXPECT_EQ(config.thread_count(TaskType::kReceive), 4);
  EXPECT_EQ(config.thread_count(TaskType::kDecompress), 4);
  EXPECT_EQ(config.thread_count(TaskType::kSend), 0);
}

// ---------------------------------------------------------------- generator

TEST(ConfigGeneratorTest, PaperScenarioFourStreams) {
  // The Fig. 13/14 setup: updraft1, updraft2, polaris1, polaris2 -> lynxdtn.
  ConfigGenerator generator(
      lynxdtn_topology(),
      {updraft_topology("updraft1"), updraft_topology("updraft2"),
       polaris_topology("polaris1"), polaris_topology("polaris2")});
  WorkloadSpec spec;
  spec.num_streams = 4;
  auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();

  // Paper: 16 NIC-domain cores / 4 streams = 4 receive threads per stream,
  // all on NUMA 1; 4 decompression threads per stream on NUMA 0; senders use
  // all 32 cores for compression.
  const NodeConfig& receiver = plan.value().receiver;
  EXPECT_EQ(receiver.thread_count(TaskType::kReceive, 0), 4);
  EXPECT_EQ(receiver.thread_count(TaskType::kReceive), 16);
  EXPECT_EQ(receiver.thread_count(TaskType::kDecompress, 2), 4);
  for (const auto& group : receiver.tasks) {
    if (group.type == TaskType::kReceive) {
      ASSERT_EQ(group.bindings.size(), 1U);
      EXPECT_EQ(group.bindings[0].execution_domain, 1);
    } else {
      for (const auto& binding : group.bindings) {
        EXPECT_EQ(binding.execution_domain, 0);
      }
    }
  }
  ASSERT_EQ(plan.value().senders.size(), 4U);
  for (const auto& sender : plan.value().senders) {
    EXPECT_EQ(sender.thread_count(TaskType::kCompress), 32);
    EXPECT_EQ(sender.thread_count(TaskType::kSend), 4);
  }
  EXPECT_NE(plan.value().rationale.find("NUMA 1"), std::string::npos);
}

TEST(ConfigGeneratorTest, OsStrategyLeavesPlacementToTheOs) {
  ConfigGenerator generator(lynxdtn_topology(), {updraft_topology()});
  WorkloadSpec spec;
  spec.num_streams = 1;
  auto plan = generator.generate(spec, PlacementStrategy::kOsManaged);
  ASSERT_TRUE(plan.ok());
  for (const auto& group : plan.value().receiver.tasks) {
    for (const auto& binding : group.bindings) {
      EXPECT_TRUE(binding.os_managed());
    }
  }
  // Same thread counts as the NUMA-aware plan (the comparison is fair).
  auto aware = generator.generate(spec, PlacementStrategy::kNumaAware);
  ASSERT_TRUE(aware.ok());
  EXPECT_EQ(plan.value().receiver.thread_count(TaskType::kReceive),
            aware.value().receiver.thread_count(TaskType::kReceive));
}

TEST(ConfigGeneratorTest, ExplicitThreadCountsAreHonored) {
  ConfigGenerator generator(lynxdtn_topology(), {updraft_topology()});
  WorkloadSpec spec;
  spec.num_streams = 1;
  spec.compression_threads = 8;
  spec.transfer_threads = 2;
  spec.decompression_threads = 6;
  auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().senders[0].thread_count(TaskType::kCompress), 8);
  EXPECT_EQ(plan.value().senders[0].thread_count(TaskType::kSend), 2);
  EXPECT_EQ(plan.value().receiver.thread_count(TaskType::kReceive), 2);
  EXPECT_EQ(plan.value().receiver.thread_count(TaskType::kDecompress), 6);
}

TEST(ConfigGeneratorTest, CompressionNeverExceedsCores) {
  ConfigGenerator generator(lynxdtn_topology(), {updraft_topology()});
  WorkloadSpec spec;
  spec.num_streams = 1;
  spec.compression_threads = 500;  // absurd request (Obs. 2 caps it)
  auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().senders[0].thread_count(TaskType::kCompress), 32);
}

TEST(ConfigGeneratorTest, TooManyStreamsRejected) {
  ConfigGenerator generator(lynxdtn_topology(),
                            std::vector<MachineTopology>(32, updraft_topology()));
  WorkloadSpec spec;
  spec.num_streams = 32;  // 16 NIC cores cannot serve 32 x >=1 thread... they
                          // can at exactly 1 thread each; 33 would fail.
  auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  ASSERT_FALSE(plan.ok());  // 32 streams x 1 thread = 32 > 16 cores
}

TEST(ConfigGeneratorTest, MismatchedSenderCountRejected) {
  ConfigGenerator generator(lynxdtn_topology(), {updraft_topology()});
  WorkloadSpec spec;
  spec.num_streams = 2;
  EXPECT_FALSE(generator.generate(spec, PlacementStrategy::kNumaAware).ok());
}

TEST(ConfigGeneratorTest, NoNicNoDecision) {
  std::vector<NumaDomain> domains = {
      {.id = 0, .cpus = CpuSet::range(0, 3), .memory_bytes = 0}};
  const MachineTopology no_nic("headless", std::move(domains), {});
  ConfigGenerator generator(no_nic, {updraft_topology()});
  WorkloadSpec spec;
  spec.num_streams = 1;
  EXPECT_FALSE(generator.generate(spec, PlacementStrategy::kNumaAware).ok());
}

TEST(ConfigGeneratorTest, SingleSocketReceiverStillWorks) {
  // Decompressors fall back to the NIC domain when there is no other socket.
  ConfigGenerator generator(polaris_topology("gateway"), {updraft_topology()});
  WorkloadSpec spec;
  spec.num_streams = 1;
  auto plan = generator.generate(spec, PlacementStrategy::kNumaAware);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  EXPECT_GT(plan.value().receiver.thread_count(TaskType::kDecompress), 0);
}

// ---------------------------------------------------------------- pipeline

// Runs a full sender->receiver pipeline over in-process transport on the
// host topology and verifies delivery end to end.
struct PipelineResult {
  SenderStats sender;
  ReceiverStats receiver;
  std::uint64_t delivered_chunks = 0;
  std::uint64_t delivered_bytes = 0;
};

PipelineResult run_pipeline(const std::string& codec, int compress_threads,
                            int send_threads, int recv_threads, int decomp_threads,
                            std::uint64_t chunk_count, std::uint32_t chunk_rows = 64,
                            std::uint32_t chunk_cols = 100) {
  auto topo = discover_topology();
  EXPECT_TRUE(topo.ok());

  TomoConfig tomo;
  tomo.rows = chunk_rows;
  tomo.cols = chunk_cols;
  tomo.num_spheres = 4;

  NodeConfig sender_config;
  sender_config.node_name = "sender";
  sender_config.role = NodeRole::kSender;
  sender_config.codec_name = codec;
  sender_config.chunk_bytes = tomo.chunk_bytes();
  sender_config.tasks = {
      TaskGroupConfig{.type = TaskType::kCompress, .count = compress_threads},
      TaskGroupConfig{.type = TaskType::kSend, .count = send_threads},
  };

  NodeConfig receiver_config;
  receiver_config.node_name = "receiver";
  receiver_config.role = NodeRole::kReceiver;
  receiver_config.codec_name = codec;
  receiver_config.chunk_bytes = tomo.chunk_bytes();
  receiver_config.tasks = {
      TaskGroupConfig{.type = TaskType::kReceive, .count = recv_threads},
      TaskGroupConfig{.type = TaskType::kDecompress, .count = decomp_threads},
  };

  InprocListener listener;
  TomoChunkSource source(tomo, /*stream_id=*/1, chunk_count);
  CountingSink sink;

  PipelineResult result;
  std::thread sender_thread([&] {
    StreamSender sender(topo.value(), sender_config);
    auto stats = sender.run(source, [&] { return listener.connect(); });
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    result.sender = stats.value();
  });

  StreamReceiver receiver(topo.value(), receiver_config);
  auto stats = receiver.run(listener, sink);
  sender_thread.join();
  EXPECT_TRUE(stats.ok()) << stats.status().to_string();
  if (stats.ok()) {
    result.receiver = stats.value();
  }
  result.delivered_chunks = sink.chunks();
  result.delivered_bytes = sink.bytes();
  return result;
}

class PipelineShapes
    : public ::testing::TestWithParam<std::tuple<std::string, int, int, int, int>> {};

TEST_P(PipelineShapes, DeliversEveryChunkIntact) {
  const auto [codec, c, s, r, d] = GetParam();
  const std::uint64_t kChunks = 12;
  const PipelineResult result = run_pipeline(codec, c, s, r, d, kChunks);
  EXPECT_EQ(result.sender.chunks, kChunks);
  EXPECT_EQ(result.delivered_chunks, kChunks);
  EXPECT_EQ(result.receiver.corrupt_frames, 0U);
  EXPECT_EQ(result.delivered_bytes, result.sender.raw_bytes);
  EXPECT_EQ(result.receiver.raw_bytes, result.sender.raw_bytes);
  // Wire accounting matches on both sides.
  EXPECT_EQ(result.receiver.wire_bytes, result.sender.wire_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineShapes,
    ::testing::Values(std::make_tuple("lz4", 1, 1, 1, 1),
                      std::make_tuple("lz4", 4, 2, 2, 4),
                      std::make_tuple("lz4", 2, 4, 4, 2),
                      std::make_tuple("null", 3, 3, 3, 3),
                      std::make_tuple("delta_rle", 2, 2, 2, 2)));

TEST(PipelineTest, CompressionReducesWireBytes) {
  const PipelineResult result = run_pipeline("lz4", 2, 2, 2, 2, 8);
  EXPECT_LT(result.sender.wire_bytes, result.sender.raw_bytes);
  EXPECT_GT(result.sender.compression_ratio(), 1.2);
}

TEST(PipelineTest, NullCodecWireBytesExceedRaw) {
  const PipelineResult result = run_pipeline("null", 1, 1, 1, 1, 4);
  // Raw plus framing overhead.
  EXPECT_GT(result.sender.wire_bytes, result.sender.raw_bytes);
}

TEST(PipelineTest, ZeroChunksCompletesCleanly) {
  const PipelineResult result = run_pipeline("lz4", 2, 2, 2, 2, 0);
  EXPECT_EQ(result.sender.chunks, 0U);
  EXPECT_EQ(result.delivered_chunks, 0U);
}

TEST(PipelineTest, SenderConfigRejectedOnReceiver) {
  auto topo = discover_topology();
  ASSERT_TRUE(topo.ok());
  NodeConfig config;
  config.node_name = "x";
  config.role = NodeRole::kSender;
  config.tasks = {TaskGroupConfig{.type = TaskType::kCompress, .count = 1},
                  TaskGroupConfig{.type = TaskType::kSend, .count = 1}};
  StreamSender sender(topo.value(), config);
  // Break the config after construction: unknown codec.
  NodeConfig bad = config;
  bad.codec_name = "bogus";
  StreamSender bad_sender(topo.value(), bad);
  TomoConfig tomo;
  tomo.rows = 8;
  tomo.cols = 8;
  TomoChunkSource source(tomo, 0, 1);
  InprocListener listener;
  auto stats = bad_sender.run(source, [&] { return listener.connect(); });
  EXPECT_FALSE(stats.ok());
}

TEST(PipelineTest, TomoChunkSourceIsExactlyCountedAndThreadSafe) {
  TomoConfig tomo;
  tomo.rows = 16;
  tomo.cols = 16;
  TomoChunkSource source(tomo, 5, 20);
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (source.next()) {
        total.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(total.load(), 20);
}

}  // namespace
}  // namespace numastream

namespace numastream {
namespace {


TEST(ObservationTest, RealPipelineProducesAdvisorObservation) {
  // Compression-heavy run: one compression thread on a multi-chunk stream
  // must read as the busiest stage.
  const PipelineResult result = run_pipeline("lz4", 1, 1, 1, 1, 10, 128, 200);
  const PipelineObservation observation =
      make_observation(result.sender, result.receiver);
  EXPECT_EQ(observation.compress.threads, 1);
  EXPECT_EQ(observation.send.threads, 1);
  EXPECT_EQ(observation.receive.threads, 1);
  EXPECT_EQ(observation.decompress.threads, 1);
  for (const StageObservation* stage :
       {&observation.compress, &observation.send, &observation.receive,
        &observation.decompress}) {
    EXPECT_GE(stage->utilization, 0.0);
    EXPECT_LE(stage->utilization, 1.0);
  }
  EXPECT_NEAR(observation.raw_throughput, result.receiver.raw_rate(), 1.0);
  // Compression dominates the CPU budget of this pipeline.
  EXPECT_GE(observation.compress.utilization, observation.send.utilization);
}

TEST(ObservationTest, AdvisorConsumesRealObservation) {
  const PipelineResult result = run_pipeline("lz4", 1, 1, 1, 1, 10, 128, 200);
  const PipelineObservation observation =
      make_observation(result.sender, result.receiver);
  const BottleneckAdvisor advisor;
  const AdvisorReport report = advisor.analyze(observation);
  // Whatever the verdict, it must be well-formed.
  if (report.bottleneck != StageKind::kNone) {
    EXPECT_GT(report.recommended_threads, 0);
    EXPECT_GT(report.bottleneck_per_thread, 0);
  }
  EXPECT_FALSE(report.rationale.empty());
}

}  // namespace
}  // namespace numastream
