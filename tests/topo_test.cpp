#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "common/units.h"
#include "topo/cpuset.h"
#include "topo/discover.h"
#include "topo/topology.h"

namespace numastream {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- CpuSet

TEST(CpuSetTest, EmptyByDefault) {
  CpuSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0U);
  EXPECT_EQ(s.first(), -1);
  EXPECT_EQ(s.to_cpulist(), "");
}

TEST(CpuSetTest, AddRemoveContains) {
  CpuSet s;
  s.add(0);
  s.add(65);  // crosses the word boundary
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(65));
  EXPECT_FALSE(s.contains(1));
  EXPECT_EQ(s.count(), 2U);
  s.remove(0);
  EXPECT_FALSE(s.contains(0));
  EXPECT_EQ(s.first(), 65);
}

TEST(CpuSetTest, RangeFactory) {
  const CpuSet s = CpuSet::range(4, 7);
  EXPECT_EQ(s.count(), 4U);
  EXPECT_EQ(s.to_vector(), (std::vector<int>{4, 5, 6, 7}));
}

TEST(CpuSetTest, SetAlgebra) {
  const CpuSet a = CpuSet::range(0, 5);
  const CpuSet b = CpuSet::range(4, 9);
  EXPECT_EQ(a.union_with(b), CpuSet::range(0, 9));
  EXPECT_EQ(a.intersect(b), CpuSet::range(4, 5));
  EXPECT_EQ(a.subtract(b), CpuSet::range(0, 3));
  // Operands untouched.
  EXPECT_EQ(a, CpuSet::range(0, 5));
}

TEST(CpuSetTest, EqualityIgnoresTrailingZeroWords) {
  CpuSet a;
  a.add(100);
  a.remove(100);
  EXPECT_EQ(a, CpuSet());
}

TEST(CpuSetTest, ParseSimpleList) {
  auto r = CpuSet::parse_cpulist("0,2,4");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().to_vector(), (std::vector<int>{0, 2, 4}));
}

TEST(CpuSetTest, ParseRangesAndWhitespace) {
  auto r = CpuSet::parse_cpulist(" 0-3,8,12-13\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().to_cpulist(), "0-3,8,12-13");
}

TEST(CpuSetTest, ParseEmptyIsEmptySet) {
  auto r = CpuSet::parse_cpulist("\n");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

TEST(CpuSetTest, ParseRejectsGarbage) {
  EXPECT_FALSE(CpuSet::parse_cpulist("abc").ok());
  EXPECT_FALSE(CpuSet::parse_cpulist("3-1").ok());
  EXPECT_FALSE(CpuSet::parse_cpulist("1,,2").ok());
  EXPECT_FALSE(CpuSet::parse_cpulist("1;2").ok());
  EXPECT_FALSE(CpuSet::parse_cpulist("-3").ok());
}

// Property: to_cpulist() and parse_cpulist() are inverses on random sets.
class CpuSetRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpuSetRoundTrip, FormatParseIdentity) {
  Rng rng(GetParam());
  CpuSet original;
  const int n = static_cast<int>(rng.next_below(64));
  for (int i = 0; i < n; ++i) {
    original.add(static_cast<int>(rng.next_below(256)));
  }
  auto parsed = CpuSet::parse_cpulist(original.to_cpulist());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), original);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuSetRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 25));

// ---------------------------------------------------------------- presets

TEST(TopologyTest, LynxdtnMatchesThePaper) {
  const MachineTopology topo = lynxdtn_topology();
  EXPECT_TRUE(topo.validate().is_ok());
  EXPECT_EQ(topo.domain_count(), 2U);
  EXPECT_EQ(topo.cpu_count(), 32U);
  // The streaming NIC is the 200 Gbps one on NUMA 1 (Observation 1 depends
  // on this attachment).
  const auto nic = topo.preferred_nic();
  ASSERT_TRUE(nic.has_value());
  EXPECT_EQ(nic->numa_domain, 1);
  EXPECT_DOUBLE_EQ(nic->line_rate_gbps, 200.0);
}

TEST(TopologyTest, UpdraftHasHundredGigNic) {
  const MachineTopology topo = updraft_topology("updraft2");
  EXPECT_TRUE(topo.validate().is_ok());
  EXPECT_EQ(topo.hostname(), "updraft2");
  EXPECT_EQ(topo.cpu_count(), 32U);
  ASSERT_TRUE(topo.preferred_nic().has_value());
  EXPECT_DOUBLE_EQ(topo.preferred_nic()->line_rate_gbps, 100.0);
}

TEST(TopologyTest, PolarisIsSingleSocket) {
  const MachineTopology topo = polaris_topology();
  EXPECT_EQ(topo.domain_count(), 1U);
  EXPECT_EQ(topo.cpu_count(), 32U);
}

TEST(TopologyTest, DomainLookup) {
  const MachineTopology topo = lynxdtn_topology();
  auto d1 = topo.domain(1);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(d1.value().cpus.first(), 16);
  EXPECT_FALSE(topo.domain(5).ok());
}

TEST(TopologyTest, DomainOfCpu) {
  const MachineTopology topo = lynxdtn_topology();
  EXPECT_EQ(topo.domain_of_cpu(3).value(), 0);
  EXPECT_EQ(topo.domain_of_cpu(20).value(), 1);
  EXPECT_FALSE(topo.domain_of_cpu(99).ok());
}

TEST(TopologyTest, ValidateRejectsOverlap) {
  std::vector<NumaDomain> domains = {
      {.id = 0, .cpus = CpuSet::range(0, 3), .memory_bytes = 0},
      {.id = 1, .cpus = CpuSet::range(3, 7), .memory_bytes = 0},
  };
  const MachineTopology topo("bad", std::move(domains), {});
  EXPECT_FALSE(topo.validate().is_ok());
}

TEST(TopologyTest, ValidateRejectsNicOnUnknownDomain) {
  std::vector<NumaDomain> domains = {
      {.id = 0, .cpus = CpuSet::range(0, 3), .memory_bytes = 0},
  };
  std::vector<NicInfo> nics = {{.name = "x", .numa_domain = 7, .line_rate_gbps = 10}};
  const MachineTopology topo("bad", std::move(domains), std::move(nics));
  EXPECT_FALSE(topo.validate().is_ok());
}

TEST(TopologyTest, DescribeMentionsEveryPart) {
  const std::string text = lynxdtn_topology().describe();
  EXPECT_NE(text.find("lynxdtn"), std::string::npos);
  EXPECT_NE(text.find("node 0"), std::string::npos);
  EXPECT_NE(text.find("node 1"), std::string::npos);
  EXPECT_NE(text.find("mlx5_stream"), std::string::npos);
}

// ---------------------------------------------------------------- discover

class DiscoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("ns_discover_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void write_file(const fs::path& rel, const std::string& content) {
    const fs::path full = root_ / rel;
    fs::create_directories(full.parent_path());
    std::ofstream(full) << content;
  }

  fs::path root_;
};

TEST_F(DiscoverTest, ParsesTwoNodeMachine) {
  write_file("devices/system/node/node0/cpulist", "0-15\n");
  write_file("devices/system/node/node0/meminfo", "Node 0 MemTotal: 536870912 kB\n");
  write_file("devices/system/node/node1/cpulist", "16-31\n");
  write_file("devices/system/node/node1/meminfo", "Node 1 MemTotal: 536870912 kB\n");
  write_file("class/net/eth1/device/numa_node", "1\n");
  write_file("class/net/eth1/speed", "200000\n");
  write_file("class/net/lo/speed", "0\n");

  auto topo = discover_topology({.sysfs_root = root_.string(), .hostname = "testhost"});
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.value().hostname(), "testhost");
  EXPECT_EQ(topo.value().domain_count(), 2U);
  EXPECT_EQ(topo.value().domain(0).value().cpus.count(), 16U);
  EXPECT_EQ(topo.value().domain(1).value().memory_bytes, 512ULL * kGiB);
  const auto nic = topo.value().find_nic("eth1");
  ASSERT_TRUE(nic.has_value());
  EXPECT_EQ(nic->numa_domain, 1);
  EXPECT_DOUBLE_EQ(nic->line_rate_gbps, 200.0);
  // "lo" is excluded.
  EXPECT_FALSE(topo.value().find_nic("lo").has_value());
}

TEST_F(DiscoverTest, FallsBackToSingleDomain) {
  write_file("devices/system/cpu/online", "0-7\n");
  auto topo = discover_topology({.sysfs_root = root_.string(), .hostname = "nonuma"});
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.value().domain_count(), 1U);
  EXPECT_EQ(topo.value().cpu_count(), 8U);
}

TEST_F(DiscoverTest, SkipsMemoryOnlyNodes) {
  write_file("devices/system/node/node0/cpulist", "0-3\n");
  write_file("devices/system/node/node0/meminfo", "Node 0 MemTotal: 1024 kB\n");
  write_file("devices/system/node/node1/cpulist", "\n");  // CXL-style, no CPUs
  write_file("devices/system/node/node1/meminfo", "Node 1 MemTotal: 1024 kB\n");
  auto topo = discover_topology({.sysfs_root = root_.string(), .hostname = "cxl"});
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.value().domain_count(), 1U);
}

TEST_F(DiscoverTest, NicWithUnknownNumaNodeKeepsMinusOne) {
  write_file("devices/system/node/node0/cpulist", "0-3\n");
  write_file("class/net/eth0/device/numa_node", "-1\n");
  write_file("class/net/eth0/speed", "10000\n");
  auto topo = discover_topology({.sysfs_root = root_.string(), .hostname = "vm"});
  ASSERT_TRUE(topo.ok());
  const auto nic = topo.value().find_nic("eth0");
  ASSERT_TRUE(nic.has_value());
  EXPECT_EQ(nic->numa_domain, -1);
  // A NIC with unknown attachment is never "preferred": the runtime cannot
  // make a NUMA decision about it.
  EXPECT_FALSE(topo.value().preferred_nic().has_value());
}

TEST_F(DiscoverTest, RealHostDiscoveryWorks) {
  // Smoke test against the live /sys of whatever machine runs the suite.
  auto topo = discover_topology();
  ASSERT_TRUE(topo.ok());
  EXPECT_GE(topo.value().domain_count(), 1U);
  EXPECT_GE(topo.value().cpu_count(), 1U);
  EXPECT_TRUE(topo.value().validate().is_ok());
}

}  // namespace
}  // namespace numastream
