#include <gtest/gtest.h>

#include "core/advisor.h"

namespace numastream {
namespace {

PipelineObservation base_observation() {
  PipelineObservation obs;
  obs.raw_throughput = 5e9;  // 40 Gbps raw
  obs.compress = {.threads = 8, .utilization = 0.5};
  obs.send = {.threads = 4, .utilization = 0.2};
  obs.receive = {.threads = 4, .utilization = 0.3};
  obs.decompress = {.threads = 4, .utilization = 0.4};
  return obs;
}

TEST(AdvisorTest, NoSaturationMeansExternallyLimited) {
  const BottleneckAdvisor advisor;
  const AdvisorReport report = advisor.analyze(base_observation());
  EXPECT_EQ(report.bottleneck, StageKind::kNone);
  EXPECT_NE(report.rationale.find("externally limited"), std::string::npos);
}

TEST(AdvisorTest, SaturatedCompressIsTheBottleneck) {
  PipelineObservation obs = base_observation();
  obs.compress.utilization = 0.95;
  const BottleneckAdvisor advisor;
  const AdvisorReport report = advisor.analyze(obs);
  EXPECT_EQ(report.bottleneck, StageKind::kCompress);
  // per-thread = 5e9 / (8 * 0.95)
  EXPECT_NEAR(report.bottleneck_per_thread, 5e9 / (8 * 0.95), 1e3);
  EXPECT_GT(report.recommended_threads, 8);
}

TEST(AdvisorTest, MostSaturatedStageWins) {
  PipelineObservation obs = base_observation();
  obs.compress.utilization = 0.9;
  obs.decompress.utilization = 0.97;
  const BottleneckAdvisor advisor;
  EXPECT_EQ(advisor.analyze(obs).bottleneck, StageKind::kDecompress);
}

TEST(AdvisorTest, RecommendationAlwaysMakesProgress) {
  // Even when the arithmetic says "you already have enough threads", the
  // advisor must recommend at least one more (otherwise the loop stalls on
  // a saturated stage).
  PipelineObservation obs = base_observation();
  obs.compress.utilization = 0.99;  // 8 threads, almost perfectly efficient
  const BottleneckAdvisor advisor(AdvisorOptions{.headroom = 1.0});
  const AdvisorReport report = advisor.analyze(obs);
  EXPECT_GE(report.recommended_threads, 9);
}

TEST(AdvisorTest, RecommendationIsCappedBySafetyRail) {
  PipelineObservation obs = base_observation();
  obs.compress = {.threads = 60, .utilization = 0.99};
  const BottleneckAdvisor advisor(AdvisorOptions{.max_threads_per_stage = 64});
  EXPECT_EQ(advisor.analyze(obs).recommended_threads, 64);
}

TEST(AdvisorTest, ZeroThreadStagesAreIgnored) {
  PipelineObservation obs = base_observation();
  obs.decompress = {.threads = 0, .utilization = 0.99};  // no codec stage
  const BottleneckAdvisor advisor;
  EXPECT_EQ(advisor.analyze(obs).bottleneck, StageKind::kNone);
}

TEST(AdvisorTest, RefineTouchesOnlyTheBottleneckStage) {
  const BottleneckAdvisor advisor;
  WorkloadSpec spec;
  spec.compression_threads = 8;
  spec.transfer_threads = 4;
  spec.decompression_threads = 4;

  AdvisorReport report;
  report.bottleneck = StageKind::kDecompress;
  report.recommended_threads = 6;
  const WorkloadSpec refined = advisor.refine(spec, report);
  EXPECT_EQ(refined.decompression_threads, 6);
  EXPECT_EQ(refined.compression_threads, 8);
  EXPECT_EQ(refined.transfer_threads, 4);
}

TEST(AdvisorTest, TransferStagesGrowSymmetrically) {
  const BottleneckAdvisor advisor;
  WorkloadSpec spec;
  spec.transfer_threads = 2;
  for (const StageKind side : {StageKind::kSend, StageKind::kReceive}) {
    AdvisorReport report;
    report.bottleneck = side;
    report.recommended_threads = 5;
    EXPECT_EQ(advisor.refine(spec, report).transfer_threads, 5)
        << to_string(side);
  }
}

TEST(AdvisorTest, RefineWithNoneIsIdentity) {
  const BottleneckAdvisor advisor;
  WorkloadSpec spec;
  spec.compression_threads = 3;
  const WorkloadSpec refined = advisor.refine(spec, AdvisorReport{});
  EXPECT_EQ(refined.compression_threads, 3);
}

TEST(AdvisorTest, StageKindNames) {
  EXPECT_EQ(to_string(StageKind::kCompress), "compress");
  EXPECT_EQ(to_string(StageKind::kSend), "send");
  EXPECT_EQ(to_string(StageKind::kReceive), "receive");
  EXPECT_EQ(to_string(StageKind::kDecompress), "decompress");
  EXPECT_EQ(to_string(StageKind::kNone), "none");
}

// Property: for any saturated observation, applying the recommendation and
// assuming ideal scaling yields a configuration the advisor no longer flags
// as the same bottleneck at the same throughput.
class AdvisorConvergence : public ::testing::TestWithParam<int> {};

TEST_P(AdvisorConvergence, RecommendationRelievesTheStage) {
  const int threads = GetParam();
  PipelineObservation obs = base_observation();
  obs.compress = {.threads = threads, .utilization = 0.95};
  const BottleneckAdvisor advisor;
  const AdvisorReport report = advisor.analyze(obs);
  ASSERT_EQ(report.bottleneck, StageKind::kCompress);

  // With the recommended threads at the same per-thread capacity, the stage
  // would run below the saturation threshold at the same throughput.
  const double new_utilization =
      obs.raw_throughput /
      (report.bottleneck_per_thread * report.recommended_threads);
  EXPECT_LT(new_utilization, 0.81);
}

INSTANTIATE_TEST_SUITE_P(Threads, AdvisorConvergence, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace numastream
