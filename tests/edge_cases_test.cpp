// Edge cases and adversarial inputs across modules — a grab bag of the
// boundary conditions the per-module suites do not already pin down.
#include <gtest/gtest.h>

#include <filesystem>

#include "codec/frame.h"
#include "codec/lz4.h"
#include "common/rng.h"
#include "core/config.h"
#include "data/sdf.h"
#include "msg/message.h"
#include "sim/engine.h"
#include "sim/queue.h"
#include "topo/cpuset.h"

namespace numastream {
namespace {

// ---------------------------------------------------------------- cpuset

TEST(CpuSetEdgeTest, SetAlgebraLaws) {
  Rng rng(404);
  for (int iter = 0; iter < 30; ++iter) {
    CpuSet a;
    CpuSet b;
    for (int i = 0; i < 24; ++i) {
      if (rng.next_below(2) != 0) {
        a.add(static_cast<int>(rng.next_below(128)));
      }
      if (rng.next_below(2) != 0) {
        b.add(static_cast<int>(rng.next_below(128)));
      }
    }
    // |A ∪ B| + |A ∩ B| = |A| + |B|
    EXPECT_EQ(a.union_with(b).count() + a.intersect(b).count(),
              a.count() + b.count());
    // (A \ B) ∩ B = ∅ and (A \ B) ∪ (A ∩ B) = A
    EXPECT_TRUE(a.subtract(b).intersect(b).empty());
    EXPECT_EQ(a.subtract(b).union_with(a.intersect(b)), a);
    // Commutativity.
    EXPECT_EQ(a.union_with(b), b.union_with(a));
    EXPECT_EQ(a.intersect(b), b.intersect(a));
  }
}

TEST(CpuSetEdgeTest, VeryHighCpuIds) {
  CpuSet set;
  set.add(1023);
  EXPECT_TRUE(set.contains(1023));
  EXPECT_EQ(set.count(), 1U);
  EXPECT_EQ(set.to_cpulist(), "1023");
  auto parsed = CpuSet::parse_cpulist("1000-1023");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().count(), 24U);
}

// ---------------------------------------------------------------- lz4

TEST(Lz4EdgeTest, LongMatchNeedsMultipleExtensionBytes) {
  // A run of >= 4 + 15 + 255 + 255 identical bytes forces at least two
  // 0xFF extension bytes in the match length encoding.
  const Bytes original(4 + 15 + 255 + 255 + 100, 'z');
  const Bytes compressed = lz4_compress(original);
  EXPECT_LT(compressed.size(), 32U);  // virtually everything is one match
  auto decoded = lz4_decompress(compressed, original.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), original);
}

TEST(Lz4EdgeTest, LongLiteralRunNeedsExtensionBytes) {
  // Incompressible data longer than 15+255 bytes forces literal-length
  // extension bytes.
  Bytes original(15 + 255 + 300, 0);
  Rng rng(7);
  for (auto& b : original) {
    b = static_cast<std::uint8_t>(rng.next_u64());
  }
  const Bytes compressed = lz4_compress(original);
  auto decoded = lz4_decompress(compressed, original.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), original);
}

TEST(Lz4EdgeTest, DecodeLengthOverflowGuard) {
  // Token demanding a gigantic extended literal length via many 0xFF bytes
  // must be rejected, not wrap or allocate unboundedly.
  Bytes evil = {0xF0};
  evil.insert(evil.end(), 64, 0xFF);
  evil.push_back(0x00);
  Bytes out(1024);
  auto produced = lz4_decompress_block(evil, out);
  EXPECT_FALSE(produced.ok());
}

TEST(Lz4EdgeTest, HcAndFastAgreeOnEmptyAndTiny) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{12}}) {
    const Bytes original(n, 'q');
    EXPECT_EQ(lz4_compress(original).size(), lz4hc_compress(original).size());
  }
}

// ---------------------------------------------------------------- frame

TEST(FrameEdgeTest, RawSizeFieldLyingLargeIsCaught) {
  // A frame whose header claims a huge raw size but whose payload decodes
  // short must fail cleanly (not allocate unboundedly is the caller's
  // responsibility via kMaxMessageBody; here the decode must just fail).
  Bytes frame = encode_frame(*codec_by_id(CodecId::kLz4), Bytes(1000, 'x'));
  store_le64(frame.data() + 8, 2000);  // claim 2000 raw bytes
  // Payload checksum still matches (we only changed the header), so parsing
  // succeeds; the decompression stage must then detect the mismatch.
  EXPECT_FALSE(decode_frame_content(frame).ok());
}

TEST(FrameEdgeTest, ContentHashTamperIsCaught) {
  Bytes frame = encode_frame(*codec_by_id(CodecId::kNull), Bytes(64, 'x'));
  frame[28] ^= 1;  // content hash field
  EXPECT_FALSE(decode_frame_content(frame).ok());
}

// ---------------------------------------------------------------- message

TEST(MessageEdgeTest, BodySizeAtLimitIsAcceptedAboveRejected) {
  // Craft a header claiming exactly the limit: decoder should wait for more
  // bytes (UNAVAILABLE), not reject. One byte over: DATA_LOSS.
  Message m;
  Bytes wire = encode_message(m);
  store_le64(wire.data() + 20, kMaxMessageBody);
  {
    MessageDecoder decoder;
    decoder.feed(wire);
    EXPECT_EQ(decoder.next().status().code(), StatusCode::kUnavailable);
  }
  store_le64(wire.data() + 20, kMaxMessageBody + 1);
  {
    MessageDecoder decoder;
    decoder.feed(wire);
    EXPECT_EQ(decoder.next().status().code(), StatusCode::kDataLoss);
  }
}

// ---------------------------------------------------------------- sdf

TEST(SdfEdgeTest, EmptyDatasetRoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ns_edge_empty.sdf").string();
  {
    auto writer = SdfWriter::create(path, SdfHeader{.chunk_bytes = 8});
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().close().is_ok());
  }
  auto reader = SdfReader::open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().header().chunk_count, 0U);
  EXPECT_FALSE(reader.value().read_chunk(0).ok());
  std::filesystem::remove(path);
}

TEST(SdfEdgeTest, TruncatedFileDetectedOnRead) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ns_edge_trunc.sdf").string();
  {
    auto writer = SdfWriter::create(path, SdfHeader{.chunk_bytes = 64});
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().append(Bytes(64, 1)).is_ok());
    ASSERT_TRUE(writer.value().close().is_ok());
  }
  std::filesystem::resize_file(path, kSdfHeaderSize + 20);  // cut mid-chunk
  auto reader = SdfReader::open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().read_chunk(0).status().code(), StatusCode::kDataLoss);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------- config

TEST(ConfigEdgeTest, DuplicateDirectivesAreParseErrors) {
  // Last-one-wins silently masked merge mistakes; every directive now
  // rejects a second appearance, naming the offender.
  auto dup_node = NodeConfig::parse(
      "node first\nnode second\nrole sender\ncodec lz4\n"
      "task compress count=1\ntask send count=1\n");
  ASSERT_FALSE(dup_node.ok());
  EXPECT_EQ(dup_node.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dup_node.status().message().find("duplicate 'node'"),
            std::string::npos)
      << dup_node.status().to_string();

  auto dup_codec = NodeConfig::parse(
      "node first\nrole sender\ncodec null\ncodec lz4\n"
      "task compress count=1\ntask send count=1\n");
  ASSERT_FALSE(dup_codec.ok());
  EXPECT_EQ(dup_codec.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dup_codec.status().message().find("duplicate 'codec'"),
            std::string::npos)
      << dup_codec.status().to_string();
}

TEST(ConfigEdgeTest, WhitespaceAndBlankLinesTolerated) {
  auto parsed = NodeConfig::parse(
      "\n\n   \nnode x\n\nrole receiver\n\n"
      "task receive count=1\n\ntask decompress count=1\n\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().tasks.size(), 2U);
}

// ---------------------------------------------------------------- engine

TEST(EngineEdgeTest, CoroutineSpawnsAnotherCoroutine) {
  sim::Simulation sim;
  int order = 0;
  int parent_done_at = -1;
  int child_done_at = -1;
  struct Spawner {
    static sim::SimProc child(sim::Simulation& s, int& order, int& done) {
      co_await s.delay(1.0);
      done = order++;
    }
    static sim::SimProc parent(sim::Simulation& s, int& order, int& parent_done,
                               int& child_done) {
      s.spawn(child(s, order, child_done));
      co_await s.delay(2.0);
      parent_done = order++;
    }
  };
  sim.spawn(Spawner::parent(sim, order, parent_done_at, child_done_at));
  sim.run();
  EXPECT_EQ(child_done_at, 0);   // child's shorter delay finishes first
  EXPECT_EQ(parent_done_at, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(EngineEdgeTest, SameInstantEventsFireInScheduleOrder) {
  sim::Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.spawn([](sim::Simulation& s, std::vector<int>& out, int id) -> sim::SimProc {
      co_await s.delay(1.0);
      out.push_back(id);
    }(sim, order, i));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineEdgeTest, RunLimitInsideQueueWaitLeavesConsistentState) {
  sim::Simulation sim;
  sim::SimQueue<int> queue(sim, 1);
  bool popped = false;
  sim.spawn([](sim::Simulation&, sim::SimQueue<int>& q, bool& out) -> sim::SimProc {
    const auto item = co_await q.pop();  // waits forever (nothing pushes)
    out = item.has_value();
  }(sim, queue, popped));
  sim.run(/*limit=*/5.0);
  EXPECT_FALSE(popped);
  EXPECT_EQ(queue.waiting_poppers(), 1U);
  // Closing afterwards and running again releases the popper cleanly.
  queue.close();
  sim.run();
  EXPECT_FALSE(popped);  // end-of-stream delivers nullopt
}

}  // namespace
}  // namespace numastream
