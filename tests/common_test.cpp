#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"

namespace numastream {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = data_loss_error("bad frame");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "bad frame");
  EXPECT_EQ(s.to_string(), "DATA_LOSS: bad frame");
}

TEST(StatusTest, AllConstructorsMapToTheirCode) {
  EXPECT_EQ(invalid_argument_error("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out_of_range_error("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(data_loss_error("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(unavailable_error("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(resource_exhausted_error("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(internal_error("x").code(), StatusCode::kInternal);
  EXPECT_EQ(unimplemented_error("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(unavailable_error("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.value_or(-1), -1);
}

Status fail_then_return() {
  NS_RETURN_IF_ERROR(internal_error("boom"));
  return Status::ok();
}

TEST(ResultTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(fail_then_return().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversSmallRangeUniformly) {
  Rng rng(4242);
  std::vector<int> counts(8, 0);
  const int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.next_below(8)]++;
  }
  // Expected 10000 each; a deterministic seed keeps this stable. 5% slack.
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 8, kDraws / 8 / 20);
  }
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7U);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(77);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsLookNormal) {
  Rng rng(31337);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

// ---------------------------------------------------------------- units

TEST(UnitsTest, GbpsRoundTrip) {
  EXPECT_DOUBLE_EQ(gbps_to_bytes_per_sec(8.0), 1e9);
  EXPECT_DOUBLE_EQ(bytes_per_sec_to_gbps(gbps_to_bytes_per_sec(123.4)), 123.4);
}

TEST(UnitsTest, ProjectionChunkIsElevenPointZeroFiveNineTwoMegabytes) {
  // The paper's unit of streaming: 11.0592 MB (decimal).
  EXPECT_EQ(kProjectionChunkBytes, 11059200ULL);
  EXPECT_EQ(kProjectionChunkBytes, 2048ULL * 2700ULL * 2ULL);
}

TEST(UnitsTest, FormatBytesPicksUnits) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2 * kKiB), "2.00 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3.00 MiB");
  EXPECT_EQ(format_bytes(5 * kGiB), "5.00 GiB");
}

TEST(UnitsTest, FormatGbps) {
  EXPECT_EQ(format_gbps(gbps_to_bytes_per_sec(97.0)), "97.00 Gbps");
}

// ---------------------------------------------------------------- bytes

TEST(BytesTest, StoreLoadRoundTrip) {
  std::uint8_t buf[8];
  store_le16(buf, 0xBEEF);
  EXPECT_EQ(load_le16(buf), 0xBEEF);
  store_le32(buf, 0xDEADBEEFU);
  EXPECT_EQ(load_le32(buf), 0xDEADBEEFU);
  store_le64(buf, 0x0123456789ABCDEFULL);
  EXPECT_EQ(load_le64(buf), 0x0123456789ABCDEFULL);
}

TEST(BytesTest, LittleEndianLayout) {
  std::uint8_t buf[4];
  store_le32(buf, 0x04030201U);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[1], 2);
  EXPECT_EQ(buf[2], 3);
  EXPECT_EQ(buf[3], 4);
}

TEST(BytesTest, WriterReaderRoundTrip) {
  Bytes out;
  ByteWriter w(out);
  w.u8(7);
  w.u16(1000);
  w.u32(70000);
  w.u64(1ULL << 40);
  const Bytes blob = {1, 2, 3};
  w.raw(blob);

  ByteReader r(out);
  std::uint8_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t c = 0;
  std::uint64_t d = 0;
  ByteSpan raw;
  ASSERT_TRUE(r.u8(a).is_ok());
  ASSERT_TRUE(r.u16(b).is_ok());
  ASSERT_TRUE(r.u32(c).is_ok());
  ASSERT_TRUE(r.u64(d).is_ok());
  ASSERT_TRUE(r.raw(3, raw).is_ok());
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, 1000);
  EXPECT_EQ(c, 70000U);
  EXPECT_EQ(d, 1ULL << 40);
  EXPECT_EQ(raw[2], 3);
  EXPECT_EQ(r.remaining(), 0U);
}

TEST(BytesTest, ReaderReportsTruncation) {
  const Bytes data = {1, 2, 3};
  ByteReader r(data);
  std::uint32_t v = 0;
  EXPECT_EQ(r.u32(v).code(), StatusCode::kDataLoss);
  // A failed read leaves the position untouched, so smaller reads still work.
  std::uint16_t small = 0;
  EXPECT_TRUE(r.u16(small).is_ok());
}

TEST(BytesTest, ReaderSkip) {
  const Bytes data = {1, 2, 3, 4};
  ByteReader r(data);
  ASSERT_TRUE(r.skip(3).is_ok());
  std::uint8_t v = 0;
  ASSERT_TRUE(r.u8(v).is_ok());
  EXPECT_EQ(v, 4);
  EXPECT_FALSE(r.skip(1).is_ok());
}

TEST(BytesTest, HexPreviewTruncates) {
  const Bytes data(32, 0xAB);
  const std::string preview = hex_preview(data, 4);
  EXPECT_EQ(preview, "ab ab ab ab ...");
}

}  // namespace
}  // namespace numastream
