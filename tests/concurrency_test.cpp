#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "concurrency/bounded_queue.h"
#include "concurrency/cancel.h"
#include "concurrency/fanin_queue.h"
#include "concurrency/mpsc_ring.h"
#include "concurrency/spsc_ring.h"

namespace numastream {
namespace {

// ---------------------------------------------------------------- queue

TEST(BoundedQueueTest, FifoSingleThread) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1).is_ok());
  ASSERT_TRUE(q.push(2).is_ok());
  ASSERT_TRUE(q.push(3).is_ok());
  EXPECT_EQ(q.size(), 3U);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BoundedQueueTest, TryPushFullAndTryPopEmpty) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.try_push(1).is_ok());
  ASSERT_TRUE(q.try_push(2).is_ok());
  EXPECT_EQ(q.try_push(3).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEndOfStream) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(7).is_ok());
  q.close();
  EXPECT_TRUE(q.closed());
  // Items pushed before close are still delivered.
  EXPECT_EQ(q.pop().value(), 7);
  // Then end-of-stream.
  EXPECT_FALSE(q.pop().has_value());
  // Pushing after close fails.
  EXPECT_EQ(q.push(8).code(), StatusCode::kUnavailable);
  EXPECT_EQ(q.try_push(8).code(), StatusCode::kUnavailable);
}

TEST(BoundedQueueTest, CloseIsIdempotent) {
  BoundedQueue<int> q(1);
  q.close();
  q.close();
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  // Give the consumer time to block.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1).is_ok());
  std::thread producer([&] { EXPECT_EQ(q.push(2).code(), StatusCode::kUnavailable); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
}

TEST(BoundedQueueTest, BackpressureBlocksProducerUntilPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1).is_ok());
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2).is_ok());
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still blocked on the full queue
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

// ---- cancel / deadline variants (used by the overload drain paths) ----

TEST(BoundedQueueTest, CancelFlagAbortsBlockedPush) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1).is_ok());
  std::atomic<bool> cancel{false};
  std::thread producer([&] {
    EXPECT_EQ(q.push(2, &cancel).code(), StatusCode::kUnavailable);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel = true;
  producer.join();
  // The cancelled item was dropped, not enqueued.
  EXPECT_EQ(q.size(), 1U);
}

TEST(BoundedQueueTest, CancelFlagAbortsBlockedPop) {
  BoundedQueue<int> q(1);
  std::atomic<bool> cancel{false};
  std::thread consumer([&] { EXPECT_FALSE(q.pop(&cancel).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel = true;
  consumer.join();
}

TEST(BoundedQueueTest, PreRaisedCancelStillDeliversAvailableItems) {
  // A raised flag aborts *waits*; ready items and free slots are still used,
  // which is what lets the drain path flush whatever is already queued.
  BoundedQueue<int> q(2);
  std::atomic<bool> cancel{true};
  ASSERT_TRUE(q.push(1, &cancel).is_ok());
  EXPECT_EQ(q.pop(&cancel).value(), 1);
  EXPECT_FALSE(q.pop(&cancel).has_value());
}

TEST(BoundedQueueTest, PushUntilTimesOutOnFullQueue) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1).is_ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  EXPECT_EQ(q.push_until(2, deadline).code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
  EXPECT_EQ(q.size(), 1U);
}

TEST(BoundedQueueTest, PopUntilTimesOutOnEmptyQueue) {
  BoundedQueue<int> q(1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  EXPECT_FALSE(q.pop_until(deadline).has_value());
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
  EXPECT_FALSE(q.closed());  // timeout, not end-of-stream
}

TEST(BoundedQueueTest, PushUntilSucceedsWhenSpaceOpensBeforeDeadline) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1).is_ok());
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(q.pop().value(), 1);
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  EXPECT_TRUE(q.push_until(2, deadline).is_ok());
  consumer.join();
  EXPECT_EQ(q.pop().value(), 2);
}

// ---- eviction primitives (the shed-policy hooks) ----

TEST(BoundedQueueTest, TryEvictWorstRemovesLowestRanked) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(3).is_ok());
  ASSERT_TRUE(q.push(9).is_ok());
  ASSERT_TRUE(q.push(5).is_ok());
  // better(a, b): smaller outranks larger -> 9 is the worst.
  auto evicted = q.try_evict_worst([](int a, int b) { return a < b; });
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 9);
  // FIFO order of the survivors is preserved.
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_EQ(q.pop().value(), 5);
}

TEST(BoundedQueueTest, TryEvictWorstOnEmptyReturnsNullopt) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_evict_worst([](int a, int b) { return a < b; }).has_value());
}

TEST(BoundedQueueTest, TryEvictIfWorseOnlyEvictsWhenIncomingOutranks) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(3).is_ok());
  ASSERT_TRUE(q.push(7).is_ok());
  const auto better = [](int a, int b) { return a < b; };
  // Incoming 9 ranks below everything queued: no eviction, caller sheds it.
  EXPECT_FALSE(q.try_evict_if_worse(9, better).has_value());
  EXPECT_EQ(q.size(), 2U);
  // Incoming 5 outranks the queued 7: 7 is evicted to make room.
  auto evicted = q.try_evict_if_worse(5, better);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 7);
  EXPECT_EQ(q.size(), 1U);
}

TEST(BoundedQueueTest, EvictionWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1).is_ok());
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2).is_ok());
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  auto evicted = q.try_evict_worst([](int a, int b) { return a < b; });
  ASSERT_TRUE(evicted.has_value());
  producer.join();
  EXPECT_TRUE(pushed.load());
}

// Property: with multiple producers and consumers, every pushed item is
// popped exactly once, and items from one producer arrive in that producer's
// order (FIFO-per-producer).
class BoundedQueueMpmc : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BoundedQueueMpmc, ExactlyOnceAndPerProducerFifo) {
  const int n_producers = std::get<0>(GetParam());
  const int n_consumers = std::get<1>(GetParam());
  const int items_per_producer = 500;
  BoundedQueue<std::pair<int, int>> q(8);  // (producer, sequence)

  std::vector<std::thread> producers;
  producers.reserve(n_producers);
  for (int p = 0; p < n_producers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < items_per_producer; ++i) {
        ASSERT_TRUE(q.push({p, i}).is_ok());
      }
    });
  }

  std::mutex mu;
  std::vector<std::vector<int>> received(n_producers);
  std::vector<std::thread> consumers;
  consumers.reserve(n_consumers);
  for (int c = 0; c < n_consumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.pop()) {
        const std::lock_guard<std::mutex> lock(mu);
        received[item->first].push_back(item->second);
      }
    });
  }

  for (auto& t : producers) {
    t.join();
  }
  q.close();
  for (auto& t : consumers) {
    t.join();
  }

  for (int p = 0; p < n_producers; ++p) {
    ASSERT_EQ(received[p].size(), static_cast<std::size_t>(items_per_producer));
    if (n_consumers == 1) {
      // With a single consumer, per-producer order is preserved end-to-end.
      for (int i = 0; i < items_per_producer; ++i) {
        EXPECT_EQ(received[p][i], i);
      }
    } else {
      // With several consumers, delivery interleaves; exactly-once still holds.
      std::vector<int> sorted = received[p];
      std::sort(sorted.begin(), sorted.end());
      for (int i = 0; i < items_per_producer; ++i) {
        EXPECT_EQ(sorted[i], i);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BoundedQueueMpmc,
                         ::testing::Values(std::make_tuple(1, 1), std::make_tuple(4, 1),
                                           std::make_tuple(1, 4), std::make_tuple(4, 4),
                                           std::make_tuple(8, 2)));

TEST(BoundedQueueTest, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.push(std::make_unique<int>(5)).is_ok());
  auto item = q.pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 5);
}

// ---------------------------------------------------------------- spsc

TEST(SpscRingTest, CapacityRoundsUp) {
  SpscRing<int> ring(5);
  EXPECT_GE(ring.capacity(), 5U);
}

TEST(SpscRingTest, PushPopSingleThread) {
  SpscRing<int> ring(4);
  for (int round = 0; round < 3; ++round) {  // exercise wrap-around
    for (int i = 0; i < 4; ++i) {
      int v = i;
      ASSERT_TRUE(ring.try_push(v));
    }
    for (int i = 0; i < 4; ++i) {
      auto v = ring.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(ring.try_pop().has_value());
  }
}

TEST(SpscRingTest, FullRejectsAndKeepsItem) {
  SpscRing<int> ring(2);
  int a = 1;
  int b = 2;
  while (true) {
    int v = 9;
    if (!ring.try_push(v)) {
      break;
    }
  }
  int rejected = 42;
  EXPECT_FALSE(ring.try_push(rejected));
  EXPECT_EQ(rejected, 42);  // untouched
  (void)a;
  (void)b;
}

TEST(SpscRingTest, TwoThreadStressPreservesOrder) {
  SpscRing<int> ring(64);
  const int kItems = 200000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      int v = i;
      while (!ring.try_push(v)) {
        std::this_thread::yield();
      }
    }
  });
  int expected = 0;
  while (expected < kItems) {
    if (auto v = ring.try_pop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRingTest, SizeApprox) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.size_approx(), 0U);
  int v = 1;
  ASSERT_TRUE(ring.try_push(v));
  v = 2;
  ASSERT_TRUE(ring.try_push(v));
  EXPECT_EQ(ring.size_approx(), 2U);
  ring.try_pop();
  EXPECT_EQ(ring.size_approx(), 1U);
}

// ---------------------------------------------------------------- mpsc

TEST(MpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2U);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4U);
  EXPECT_EQ(MpscRing<int>(8).capacity(), 8U);
  EXPECT_EQ(MpscRing<int>(11).capacity(), 16U);
}

TEST(MpscRingTest, PushPopFifoSingleThread) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_push(i));
  }
  int overflow = 99;
  EXPECT_FALSE(ring.try_push(overflow));
  for (int i = 0; i < 4; ++i) {
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(MpscRingTest, WraparoundAtTinyCapacities) {
  // Many laps around capacity-2 and capacity-4 rings: the per-slot lap
  // sequence must keep push/pop paired through thousands of wraparounds.
  for (const std::size_t cap : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    MpscRing<int> ring(cap);
    for (int lap = 0; lap < 5000; ++lap) {
      ASSERT_TRUE(ring.try_push(lap)) << "cap=" << cap << " lap=" << lap;
      auto v = ring.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, lap);
    }
  }
}

TEST(MpscRingTest, FullRejectKeepsValueIntact) {
  MpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(1)));
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(2)));
  auto keep = std::make_unique<int>(3);
  ASSERT_FALSE(ring.try_push(keep));
  ASSERT_NE(keep, nullptr);  // a failed push must not consume the value
  EXPECT_EQ(*keep, 3);
}

TEST(MpscRingTest, MultiProducerExactlyOnce) {
  // 4 producers race try_push into a small ring while one consumer drains:
  // every pushed value arrives exactly once, and values from any single
  // producer stay in that producer's order.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 3000;
  MpscRing<int> ring(8);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = p * kPerProducer + i;
        while (!ring.try_push(value)) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<int> next_expected(kProducers, 0);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    if (auto v = ring.try_pop()) {
      const int producer = *v / kPerProducer;
      const int index = *v % kPerProducer;
      ASSERT_EQ(index, next_expected[producer]);  // per-producer FIFO
      ++next_expected[producer];
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

// ---------------------------------------------------------------- fan-in

TEST(FanInQueueTest, FifoSingleConsumer) {
  FanInQueue<int> queue(8, 1);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.push(i).is_ok());
  }
  for (int i = 0; i < 5; ++i) {
    auto v = queue.pop(0);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(FanInQueueTest, TryPushFullAndTryPopEmpty) {
  FanInQueue<int> queue(2, 1);
  ASSERT_TRUE(queue.try_push(1).is_ok());
  ASSERT_TRUE(queue.try_push(2).is_ok());
  EXPECT_EQ(queue.try_push(3).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(queue.try_pop(0).has_value());
  EXPECT_TRUE(queue.try_pop(0).has_value());
  EXPECT_FALSE(queue.try_pop(0).has_value());
}

TEST(FanInQueueTest, CloseDrainsThenSignalsEndOfStream) {
  FanInQueue<int> queue(8, 1);
  ASSERT_TRUE(queue.push(7).is_ok());
  queue.close();
  EXPECT_EQ(queue.push(8).code(), StatusCode::kUnavailable);
  auto v = queue.pop(0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(queue.pop(0).has_value());  // drained + closed = EOS
}

TEST(FanInQueueTest, CloseWakesBlockedConsumer) {
  FanInQueue<int> queue(2, 2);
  std::thread consumer([&] {
    EXPECT_FALSE(queue.pop(1).has_value());  // blocks until close = EOS
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  consumer.join();
}

TEST(FanInQueueTest, CloseWakesBlockedProducer) {
  FanInQueue<int> queue(2, 1);
  while (queue.try_push(1).is_ok()) {  // fill; nobody is popping
  }
  std::thread producer([&] {
    EXPECT_EQ(queue.push(2).code(), StatusCode::kUnavailable);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
}

TEST(FanInQueueTest, CancelSignalAbortsBlockedPop) {
  // Signal declared before the queue: the queue's destructor unbinds its
  // waker, so the signal must outlive it (cancel.h lifetime contract).
  CancelSignal cancel;
  FanInQueue<int> queue(4, 1);
  queue.bind_cancel(&cancel);
  std::thread consumer([&] {
    EXPECT_FALSE(queue.pop(0, cancel.flag()).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel.raise();
  consumer.join();
}

TEST(FanInQueueTest, CancelSignalAbortsBlockedPush) {
  CancelSignal cancel;
  FanInQueue<int> queue(2, 1);
  queue.bind_cancel(&cancel);
  while (queue.try_push(1).is_ok()) {
  }
  std::thread producer([&] {
    EXPECT_EQ(queue.push(2, cancel.flag()).code(), StatusCode::kUnavailable);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel.raise();
  producer.join();
}

TEST(FanInQueueTest, PopUntilTimesOutOnEmptyQueue) {
  FanInQueue<int> queue(4, 1);
  const auto t0 = std::chrono::steady_clock::now();
  auto v = queue.pop_until(
      0, std::chrono::steady_clock::now() + std::chrono::milliseconds(30));
  EXPECT_FALSE(v.has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(25));
}

TEST(FanInQueueTest, PushUntilTimesOutOnFullQueue) {
  FanInQueue<int> queue(2, 1);
  while (queue.try_push(1).is_ok()) {
  }
  const auto status = queue.push_until(
      2, std::chrono::steady_clock::now() + std::chrono::milliseconds(30));
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(FanInQueueTest, TryPopAnyDrainsAllRings) {
  FanInQueue<int> queue(8, 4);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.push(i).is_ok());
  }
  int drained = 0;
  while (queue.try_pop_any().has_value()) {
    ++drained;
  }
  EXPECT_EQ(drained, 8);
  EXPECT_EQ(queue.size(), 0U);
}

TEST(FanInQueueTest, MultiProducerMultiConsumerExactlyOnce) {
  // The pipeline shape under chaos: producers fan in, each consumer pops
  // only its own index, close() lands mid-stream for the late consumers.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 2000;
  CancelSignal cancel;
  FanInQueue<int> queue(16, kConsumers);
  queue.bind_cancel(&cancel);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(p * kPerProducer + i).is_ok());
      }
    });
  }
  std::mutex seen_mutex;
  std::vector<bool> seen(kProducers * kPerProducer, false);
  std::atomic<int> received{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      while (auto v = queue.pop(static_cast<std::size_t>(c), cancel.flag())) {
        const std::lock_guard<std::mutex> lock(seen_mutex);
        ASSERT_FALSE(seen[static_cast<std::size_t>(*v)]);  // exactly once
        seen[static_cast<std::size_t>(*v)] = true;
        received.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  queue.close();
  for (auto& t : consumers) {
    t.join();
  }
  EXPECT_EQ(received.load(), kProducers * kPerProducer);
}

TEST(FanInQueueTest, RacingCloseCancelAndDeadlineWaiters) {
  // Stress the teardown races: waiters blocked with deadlines and a cancel
  // flag while another thread closes and raises. Nothing may deadlock and
  // every waiter must return.
  for (int round = 0; round < 25; ++round) {
    CancelSignal cancel;
    FanInQueue<int> queue(2, 2);
    queue.bind_cancel(&cancel);
    std::vector<std::thread> waiters;
    for (int c = 0; c < 2; ++c) {
      waiters.emplace_back([&queue, &cancel, c] {
        (void)queue.pop_until(
            static_cast<std::size_t>(c),
            std::chrono::steady_clock::now() + std::chrono::milliseconds(200),
            cancel.flag());
      });
    }
    waiters.emplace_back([&queue, &cancel] {
      while (queue.try_push(1).is_ok()) {
      }
      (void)queue.push_until(
          2, std::chrono::steady_clock::now() + std::chrono::milliseconds(200),
          cancel.flag());
    });
    std::thread closer([&queue, &cancel, round] {
      if (round % 2 == 0) {
        cancel.raise();
      } else {
        queue.close();
      }
    });
    for (auto& t : waiters) {
      t.join();
    }
    closer.join();
  }
}

// ---------------------------------------------------------------- cancel

TEST(CancelSignalTest, RaisePublishesFlagAndRunsWakers) {
  CancelSignal cancel;
  EXPECT_FALSE(cancel.raised());
  std::atomic<int> woken{0};
  const auto token = cancel.add_waker([&] { woken.fetch_add(1); });
  cancel.raise();
  EXPECT_TRUE(cancel.raised());
  EXPECT_TRUE(cancel.flag()->load());
  EXPECT_EQ(woken.load(), 1);
  cancel.remove_waker(token);
  cancel.raise();  // idempotent; removed waker must not run again
  EXPECT_EQ(woken.load(), 1);
}

TEST(CancelSignalTest, AddWakerAfterRaiseRunsImmediately) {
  CancelSignal cancel;
  cancel.raise();
  std::atomic<bool> woken{false};
  (void)cancel.add_waker([&] { woken.store(true); });
  EXPECT_TRUE(woken.load());
}

TEST(CancelSignalTest, RemoveWakerSerializesWithRaise) {
  // remove_waker must block out a raise() in flight, so after it returns
  // the waker never runs again — racing the two many times under TSan is
  // the point of this test.
  for (int round = 0; round < 200; ++round) {
    CancelSignal cancel;
    std::atomic<bool> removed{false};
    const auto token = cancel.add_waker([&] {
      EXPECT_FALSE(removed.load());  // never after remove_waker returned
    });
    std::thread raiser([&] { cancel.raise(); });
    cancel.remove_waker(token);
    removed.store(true);
    raiser.join();
  }
}

// ------------------------------------------------- busy-poll regression

TEST(BoundedQueueTest, BoundCancelWaitDoesNotBusyPoll) {
  // The bug this guards against: cancellable waits used to poll in 1 ms
  // slices, so a 300 ms block meant ~300 wakeups per waiter. With the
  // queue bound to a CancelSignal the wait must park on the CV and wake
  // only for the raise — a handful of wakeups at most.
  CancelSignal cancel;
  BoundedQueue<int> queue(4);
  queue.bind_cancel(&cancel);
  std::thread consumer([&] {
    EXPECT_FALSE(queue.pop(cancel.flag()).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::uint64_t wakeups_before_raise = queue.cv_wakeups();
  cancel.raise();
  consumer.join();
  // A 1 ms poll loop would have burned ~300 wakeups while we slept; the
  // parked wait takes none (the consumer's single block predates the
  // counter read). Allow a generous handful for spurious CV wakeups.
  EXPECT_LE(queue.cv_wakeups() - wakeups_before_raise, 5U);
  EXPECT_LE(wakeups_before_raise, 5U);
}

TEST(BoundedQueueTest, ForeignAtomicStillCancelsViaBackstop) {
  // Legacy callers pass an atomic the queue has never seen; those waits
  // must still notice a raise, just on the slower poll path.
  BoundedQueue<int> queue(4);
  std::atomic<bool> cancel{false};
  std::thread consumer([&] { EXPECT_FALSE(queue.pop(&cancel).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel.store(true);
  consumer.join();
}

TEST(FanInQueueTest, BoundCancelWaitDoesNotBusyPoll) {
  // Same regression for the ring path: parks() counts eventcount parks; a
  // 1 ms poll would show hundreds over a 300 ms block.
  CancelSignal cancel;
  FanInQueue<int> queue(4, 1);
  queue.bind_cancel(&cancel);
  std::thread consumer([&] {
    EXPECT_FALSE(queue.pop(0, cancel.flag()).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::uint64_t parks_before_raise = queue.parks();
  cancel.raise();
  consumer.join();
  EXPECT_LE(parks_before_raise, 6U);  // one park + 100 ms backstop slices
}

}  // namespace
}  // namespace numastream
