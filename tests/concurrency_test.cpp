#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "concurrency/bounded_queue.h"
#include "concurrency/spsc_ring.h"

namespace numastream {
namespace {

// ---------------------------------------------------------------- queue

TEST(BoundedQueueTest, FifoSingleThread) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1).is_ok());
  ASSERT_TRUE(q.push(2).is_ok());
  ASSERT_TRUE(q.push(3).is_ok());
  EXPECT_EQ(q.size(), 3U);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BoundedQueueTest, TryPushFullAndTryPopEmpty) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.try_push(1).is_ok());
  ASSERT_TRUE(q.try_push(2).is_ok());
  EXPECT_EQ(q.try_push(3).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEndOfStream) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(7).is_ok());
  q.close();
  EXPECT_TRUE(q.closed());
  // Items pushed before close are still delivered.
  EXPECT_EQ(q.pop().value(), 7);
  // Then end-of-stream.
  EXPECT_FALSE(q.pop().has_value());
  // Pushing after close fails.
  EXPECT_EQ(q.push(8).code(), StatusCode::kUnavailable);
  EXPECT_EQ(q.try_push(8).code(), StatusCode::kUnavailable);
}

TEST(BoundedQueueTest, CloseIsIdempotent) {
  BoundedQueue<int> q(1);
  q.close();
  q.close();
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  // Give the consumer time to block.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1).is_ok());
  std::thread producer([&] { EXPECT_EQ(q.push(2).code(), StatusCode::kUnavailable); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
}

TEST(BoundedQueueTest, BackpressureBlocksProducerUntilPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1).is_ok());
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2).is_ok());
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still blocked on the full queue
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

// ---- cancel / deadline variants (used by the overload drain paths) ----

TEST(BoundedQueueTest, CancelFlagAbortsBlockedPush) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1).is_ok());
  std::atomic<bool> cancel{false};
  std::thread producer([&] {
    EXPECT_EQ(q.push(2, &cancel).code(), StatusCode::kUnavailable);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel = true;
  producer.join();
  // The cancelled item was dropped, not enqueued.
  EXPECT_EQ(q.size(), 1U);
}

TEST(BoundedQueueTest, CancelFlagAbortsBlockedPop) {
  BoundedQueue<int> q(1);
  std::atomic<bool> cancel{false};
  std::thread consumer([&] { EXPECT_FALSE(q.pop(&cancel).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel = true;
  consumer.join();
}

TEST(BoundedQueueTest, PreRaisedCancelStillDeliversAvailableItems) {
  // A raised flag aborts *waits*; ready items and free slots are still used,
  // which is what lets the drain path flush whatever is already queued.
  BoundedQueue<int> q(2);
  std::atomic<bool> cancel{true};
  ASSERT_TRUE(q.push(1, &cancel).is_ok());
  EXPECT_EQ(q.pop(&cancel).value(), 1);
  EXPECT_FALSE(q.pop(&cancel).has_value());
}

TEST(BoundedQueueTest, PushUntilTimesOutOnFullQueue) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1).is_ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  EXPECT_EQ(q.push_until(2, deadline).code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
  EXPECT_EQ(q.size(), 1U);
}

TEST(BoundedQueueTest, PopUntilTimesOutOnEmptyQueue) {
  BoundedQueue<int> q(1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  EXPECT_FALSE(q.pop_until(deadline).has_value());
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
  EXPECT_FALSE(q.closed());  // timeout, not end-of-stream
}

TEST(BoundedQueueTest, PushUntilSucceedsWhenSpaceOpensBeforeDeadline) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1).is_ok());
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(q.pop().value(), 1);
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  EXPECT_TRUE(q.push_until(2, deadline).is_ok());
  consumer.join();
  EXPECT_EQ(q.pop().value(), 2);
}

// ---- eviction primitives (the shed-policy hooks) ----

TEST(BoundedQueueTest, TryEvictWorstRemovesLowestRanked) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(3).is_ok());
  ASSERT_TRUE(q.push(9).is_ok());
  ASSERT_TRUE(q.push(5).is_ok());
  // better(a, b): smaller outranks larger -> 9 is the worst.
  auto evicted = q.try_evict_worst([](int a, int b) { return a < b; });
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 9);
  // FIFO order of the survivors is preserved.
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_EQ(q.pop().value(), 5);
}

TEST(BoundedQueueTest, TryEvictWorstOnEmptyReturnsNullopt) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_evict_worst([](int a, int b) { return a < b; }).has_value());
}

TEST(BoundedQueueTest, TryEvictIfWorseOnlyEvictsWhenIncomingOutranks) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(3).is_ok());
  ASSERT_TRUE(q.push(7).is_ok());
  const auto better = [](int a, int b) { return a < b; };
  // Incoming 9 ranks below everything queued: no eviction, caller sheds it.
  EXPECT_FALSE(q.try_evict_if_worse(9, better).has_value());
  EXPECT_EQ(q.size(), 2U);
  // Incoming 5 outranks the queued 7: 7 is evicted to make room.
  auto evicted = q.try_evict_if_worse(5, better);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 7);
  EXPECT_EQ(q.size(), 1U);
}

TEST(BoundedQueueTest, EvictionWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1).is_ok());
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2).is_ok());
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  auto evicted = q.try_evict_worst([](int a, int b) { return a < b; });
  ASSERT_TRUE(evicted.has_value());
  producer.join();
  EXPECT_TRUE(pushed.load());
}

// Property: with multiple producers and consumers, every pushed item is
// popped exactly once, and items from one producer arrive in that producer's
// order (FIFO-per-producer).
class BoundedQueueMpmc : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BoundedQueueMpmc, ExactlyOnceAndPerProducerFifo) {
  const int n_producers = std::get<0>(GetParam());
  const int n_consumers = std::get<1>(GetParam());
  const int items_per_producer = 500;
  BoundedQueue<std::pair<int, int>> q(8);  // (producer, sequence)

  std::vector<std::thread> producers;
  producers.reserve(n_producers);
  for (int p = 0; p < n_producers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < items_per_producer; ++i) {
        ASSERT_TRUE(q.push({p, i}).is_ok());
      }
    });
  }

  std::mutex mu;
  std::vector<std::vector<int>> received(n_producers);
  std::vector<std::thread> consumers;
  consumers.reserve(n_consumers);
  for (int c = 0; c < n_consumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.pop()) {
        const std::lock_guard<std::mutex> lock(mu);
        received[item->first].push_back(item->second);
      }
    });
  }

  for (auto& t : producers) {
    t.join();
  }
  q.close();
  for (auto& t : consumers) {
    t.join();
  }

  for (int p = 0; p < n_producers; ++p) {
    ASSERT_EQ(received[p].size(), static_cast<std::size_t>(items_per_producer));
    if (n_consumers == 1) {
      // With a single consumer, per-producer order is preserved end-to-end.
      for (int i = 0; i < items_per_producer; ++i) {
        EXPECT_EQ(received[p][i], i);
      }
    } else {
      // With several consumers, delivery interleaves; exactly-once still holds.
      std::vector<int> sorted = received[p];
      std::sort(sorted.begin(), sorted.end());
      for (int i = 0; i < items_per_producer; ++i) {
        EXPECT_EQ(sorted[i], i);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BoundedQueueMpmc,
                         ::testing::Values(std::make_tuple(1, 1), std::make_tuple(4, 1),
                                           std::make_tuple(1, 4), std::make_tuple(4, 4),
                                           std::make_tuple(8, 2)));

TEST(BoundedQueueTest, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.push(std::make_unique<int>(5)).is_ok());
  auto item = q.pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 5);
}

// ---------------------------------------------------------------- spsc

TEST(SpscRingTest, CapacityRoundsUp) {
  SpscRing<int> ring(5);
  EXPECT_GE(ring.capacity(), 5U);
}

TEST(SpscRingTest, PushPopSingleThread) {
  SpscRing<int> ring(4);
  for (int round = 0; round < 3; ++round) {  // exercise wrap-around
    for (int i = 0; i < 4; ++i) {
      int v = i;
      ASSERT_TRUE(ring.try_push(v));
    }
    for (int i = 0; i < 4; ++i) {
      auto v = ring.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(ring.try_pop().has_value());
  }
}

TEST(SpscRingTest, FullRejectsAndKeepsItem) {
  SpscRing<int> ring(2);
  int a = 1;
  int b = 2;
  while (true) {
    int v = 9;
    if (!ring.try_push(v)) {
      break;
    }
  }
  int rejected = 42;
  EXPECT_FALSE(ring.try_push(rejected));
  EXPECT_EQ(rejected, 42);  // untouched
  (void)a;
  (void)b;
}

TEST(SpscRingTest, TwoThreadStressPreservesOrder) {
  SpscRing<int> ring(64);
  const int kItems = 200000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      int v = i;
      while (!ring.try_push(v)) {
        std::this_thread::yield();
      }
    }
  });
  int expected = 0;
  while (expected < kItems) {
    if (auto v = ring.try_pop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRingTest, SizeApprox) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.size_approx(), 0U);
  int v = 1;
  ASSERT_TRUE(ring.try_push(v));
  v = 2;
  ASSERT_TRUE(ring.try_push(v));
  EXPECT_EQ(ring.size_approx(), 2U);
  ring.try_pop();
  EXPECT_EQ(ring.size_approx(), 1U);
}

}  // namespace
}  // namespace numastream
