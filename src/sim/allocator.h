// Max-min fair rate allocation with heterogeneous demands — the analytical
// heart of the simulator.
//
// The simulated machine is a set of capacitated resources (core cycles,
// memory-controller bandwidth, inter-socket link bandwidth, NIC line rate).
// Each active job j processes "work units" (bytes) at some rate x_j and
// consumes d_{j,r} units of resource r per work unit (e.g. a decompression
// job consumes CPU-seconds and memory-controller bytes per output byte).
// Feasibility requires for every resource r:
//
//     sum_j d_{j,r} * x_j  <=  C_r
//
// The allocator computes the (unique) max-min fair rate vector by progressive
// filling (water-filling): raise every unfrozen job's rate uniformly until
// some resource saturates, freeze the jobs using that resource, subtract
// their consumption, repeat. This is the standard fluid model for steady-
// state throughput of contended systems; it reproduces processor sharing on
// cores, fair bandwidth sharing on links, and bottleneck shifting between
// stages — exactly the phenomena the paper's figures measure.
#pragma once

#include <cstddef>
#include <vector>

namespace numastream::sim {

/// One job's per-work-unit demand on one resource.
struct Demand {
  int resource = 0;
  double units_per_work = 0;  ///< must be > 0 to constrain the job
};

/// A job's full demand vector. A job with no positive demand would be
/// unbounded; the allocator clamps such jobs to `rate_cap`.
///
/// `weight` sets the fairness currency: rates are allocated as
/// x_j = weight_j * level with a common water level. With equal weights this
/// is plain max-min (TCP-style equal byte rates on a shared link). For CPU
/// co-location the right share is equal *time*, not equal bytes — a
/// lightweight I/O thread must not halve a co-located compute thread — so
/// compute jobs use weight = their solo throughput (1 / cpu_seconds_per_byte),
/// which makes the water level a CPU-time share.
struct JobDemands {
  std::vector<Demand> demands;
  double rate_cap = 1e18;  ///< optional per-job ceiling (work units / sec)
  double weight = 1.0;     ///< must be > 0
};

/// Computes max-min fair rates. `capacities[r]` is resource r's capacity in
/// units/sec. Returns one rate per job (same order). All capacities must be
/// > 0; demands must be >= 0.
std::vector<double> max_min_fair_rates(const std::vector<double>& capacities,
                                       const std::vector<JobDemands>& jobs);

}  // namespace numastream::sim
