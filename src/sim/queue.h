// SimQueue<T>: the simulated counterpart of concurrency/bounded_queue.h.
//
// Same contract as the real pipeline queue — bounded, closeable, FIFO,
// blocking push when full and pop when empty — but "blocking" suspends the
// calling coroutine until a partner or close() wakes it through the engine's
// event list. The simulated pipeline stages therefore exhibit the same
// backpressure coupling as the real ones: a slow stage stalls its upstream.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>

#include "common/assert.h"
#include "sim/engine.h"

namespace numastream::sim {

template <typename T>
class SimQueue {
 public:
  SimQueue(Simulation& sim, std::size_t capacity) : sim_(sim), capacity_(capacity) {
    NS_CHECK(capacity > 0, "SimQueue capacity must be positive");
  }

  SimQueue(const SimQueue&) = delete;
  SimQueue& operator=(const SimQueue&) = delete;

  // ---- push -------------------------------------------------------------

  struct PushAwaiter {
    SimQueue& queue;
    T item;
    bool accepted = false;

    bool await_ready() {
      if (queue.closed_) {
        accepted = false;
        return true;
      }
      if (queue.try_deliver_or_store(item)) {
        accepted = true;
        return true;
      }
      return false;  // full: suspend
    }
    void await_suspend(std::coroutine_handle<> handle) {
      queue.push_waiters_.push_back(PushWaiter{handle, this});
    }
    /// true if the item entered the queue; false if the queue closed first.
    bool await_resume() const noexcept { return accepted; }
  };

  /// co_await queue.push(item) -> bool (false when closed).
  PushAwaiter push(T item) { return PushAwaiter{*this, std::move(item)}; }

  // ---- pop --------------------------------------------------------------

  struct PopAwaiter {
    SimQueue& queue;
    std::optional<T> item;

    bool await_ready() {
      if (!queue.items_.empty()) {
        item = std::move(queue.items_.front());
        queue.items_.pop_front();
        queue.admit_waiting_pusher();
        return true;
      }
      if (queue.closed_) {
        return true;  // drained + closed: end of stream (item stays empty)
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> handle) {
      queue.pop_waiters_.push_back(PopWaiter{handle, this});
    }
    /// The item, or nullopt at end of stream.
    std::optional<T> await_resume() noexcept { return std::move(item); }
  };

  /// co_await queue.pop() -> std::optional<T> (nullopt = closed and drained).
  PopAwaiter pop() { return PopAwaiter{*this}; }

  // ---- control ----------------------------------------------------------

  /// Ends the stream: waiting pushers fail, waiting poppers drain then see
  /// end-of-stream. Idempotent.
  void close() {
    if (closed_) {
      return;
    }
    closed_ = true;
    for (auto& waiter : push_waiters_) {
      waiter.awaiter->accepted = false;
      // Strip the undelivered item now so the awaiter owns nothing at
      // destruction (defence against GCC 12's double-destruction of
      // co_await temporaries; see sim/engine.h).
      T discarded = std::move(waiter.awaiter->item);
      (void)discarded;
      sim_.schedule(sim_.now(), waiter.handle);
    }
    push_waiters_.clear();
    // Poppers can only be waiting when the buffer is empty.
    for (auto& waiter : pop_waiters_) {
      sim_.schedule(sim_.now(), waiter.handle);
    }
    pop_waiters_.clear();
  }

  [[nodiscard]] bool closed() const noexcept { return closed_; }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t waiting_poppers() const noexcept {
    return pop_waiters_.size();
  }
  [[nodiscard]] std::size_t waiting_pushers() const noexcept {
    return push_waiters_.size();
  }

 private:
  struct PushWaiter {
    std::coroutine_handle<> handle;
    PushAwaiter* awaiter;
  };
  struct PopWaiter {
    std::coroutine_handle<> handle;
    PopAwaiter* awaiter;
  };

  /// Hands `item` to a waiting popper or stores it. False when full.
  bool try_deliver_or_store(T& item) {
    if (!pop_waiters_.empty()) {
      NS_DCHECK(items_.empty(), "poppers cannot wait while items are buffered");
      PopWaiter waiter = pop_waiters_.front();
      pop_waiters_.pop_front();
      waiter.awaiter->item = std::move(item);
      sim_.schedule(sim_.now(), waiter.handle);
      return true;
    }
    if (items_.size() < capacity_) {
      items_.push_back(std::move(item));
      return true;
    }
    return false;
  }

  /// After a pop freed a slot, admit the oldest waiting pusher.
  void admit_waiting_pusher() {
    if (push_waiters_.empty() || items_.size() >= capacity_) {
      return;
    }
    PushWaiter waiter = push_waiters_.front();
    push_waiters_.pop_front();
    items_.push_back(std::move(waiter.awaiter->item));
    waiter.awaiter->accepted = true;
    sim_.schedule(sim_.now(), waiter.handle);
  }

  Simulation& sim_;
  const std::size_t capacity_;
  std::deque<T> items_;
  std::deque<PushWaiter> push_waiters_;
  std::deque<PopWaiter> pop_waiters_;
  bool closed_ = false;
};

}  // namespace numastream::sim
