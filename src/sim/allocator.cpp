#include "sim/allocator.h"

#include <algorithm>
#include <limits>

#include "common/assert.h"

namespace numastream::sim {

std::vector<double> max_min_fair_rates(const std::vector<double>& capacities,
                                       const std::vector<JobDemands>& jobs) {
  const std::size_t n_resources = capacities.size();
  const std::size_t n_jobs = jobs.size();
  for (const double c : capacities) {
    NS_CHECK(c > 0, "resource capacities must be positive");
  }

  std::vector<double> rates(n_jobs, 0.0);
  if (n_jobs == 0) {
    return rates;
  }

  std::vector<double> remaining = capacities;
  std::vector<bool> frozen(n_jobs, false);
  std::size_t unfrozen_count = n_jobs;

  // Weighted aggregate demand per resource (units consumed per unit of water
  // level), maintained incrementally. The entry count is tracked as an
  // integer so a resource whose users have all frozen reads as exactly
  // unconstrained — floating subtraction alone can leave dust in demand_sum
  // that would make the resource look saturated with no job left to freeze.
  std::vector<double> demand_sum(n_resources, 0.0);
  std::vector<int> demand_entries(n_resources, 0);
  for (const auto& job : jobs) {
    NS_CHECK(job.weight > 0, "job weights must be positive");
    for (const auto& d : job.demands) {
      NS_CHECK(d.resource >= 0 && static_cast<std::size_t>(d.resource) < n_resources,
               "demand references unknown resource");
      NS_CHECK(d.units_per_work >= 0, "demands must be non-negative");
      demand_sum[static_cast<std::size_t>(d.resource)] += job.weight * d.units_per_work;
      demand_entries[static_cast<std::size_t>(d.resource)] += 1;
    }
  }

  // `level` is the current common water level; job j's rate is weight_j*level.
  double level = 0.0;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  while (unfrozen_count > 0) {
    // How much further can the water level rise before a resource saturates?
    double next_level = kInf;
    for (std::size_t r = 0; r < n_resources; ++r) {
      if (demand_entries[r] > 0 && demand_sum[r] > 0) {
        next_level = std::min(next_level, level + remaining[r] / demand_sum[r]);
      }
    }
    // Per-job caps bind at level = cap / weight.
    for (std::size_t j = 0; j < n_jobs; ++j) {
      if (!frozen[j]) {
        next_level = std::min(next_level, jobs[j].rate_cap / jobs[j].weight);
      }
    }
    if (next_level == kInf) {
      // No unfrozen job touches any resource and none has a finite cap.
      for (std::size_t j = 0; j < n_jobs; ++j) {
        if (!frozen[j]) {
          rates[j] = jobs[j].rate_cap;
        }
      }
      return rates;
    }

    // Drain capacity consumed by the rise.
    const double rise = next_level - level;
    for (std::size_t r = 0; r < n_resources; ++r) {
      remaining[r] -= demand_sum[r] * rise;
      if (remaining[r] < 0) {
        remaining[r] = 0;  // numerical dust
      }
    }
    level = next_level;

    // Freeze: jobs whose cap binds, and jobs touching a saturated resource.
    // Relative tolerances so chained saturations freeze together.
    bool froze_any = false;
    for (std::size_t j = 0; j < n_jobs; ++j) {
      if (frozen[j]) {
        continue;
      }
      bool freeze = jobs[j].rate_cap / jobs[j].weight <= level * (1 + 1e-12);
      if (!freeze) {
        for (const auto& d : jobs[j].demands) {
          const auto r = static_cast<std::size_t>(d.resource);
          if (d.units_per_work > 1e-15 && remaining[r] <= 1e-12 * capacities[r]) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        frozen[j] = true;
        rates[j] = std::min(jobs[j].weight * level, jobs[j].rate_cap);
        --unfrozen_count;
        froze_any = true;
        for (const auto& d : jobs[j].demands) {
          const auto r = static_cast<std::size_t>(d.resource);
          demand_sum[r] -= jobs[j].weight * d.units_per_work;
          demand_entries[r] -= 1;
          if (demand_entries[r] == 0 || demand_sum[r] < 0) {
            demand_sum[r] = 0;
          }
        }
      }
    }
    NS_CHECK(froze_any, "progressive filling must freeze at least one job per round");
  }
  return rates;
}

}  // namespace numastream::sim
