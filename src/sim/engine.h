// Discrete-event simulation engine.
//
// Simulated activities are C++20 coroutines (SimProc). A process co_awaits:
//   * sim.delay(seconds)  - virtual time passes,
//   * sim.job(spec)       - a piece of work that consumes capacitated
//                           resources; its duration emerges from max-min
//                           fair sharing with every other in-flight job,
//   * SimQueue push/pop   - bounded pipeline queues (sim/queue.h).
//
// The engine interleaves two sources of progress: scheduled events (delays,
// queue wakeups) and job completions. Whenever the set of in-flight jobs
// changes, all rates are recomputed with the progressive-filling allocator;
// between changes every job progresses linearly, so the next completion time
// is exact. Virtual time is in seconds; work units are bytes throughout the
// streaming models.
//
// Determinism: the engine is single-threaded and breaks ties by insertion
// order, so a given scenario always produces bit-identical results.
//
// TOOLCHAIN NOTE (GCC 12): temporaries materialized inside a `co_await`
// operand expression can be destroyed twice by GCC 12's coroutine frame
// promotion (fixed in GCC 13). The engine is hardened against this:
// JobAwaiter is trivially destructible (the JobSpec moves into the engine
// inside job(), before any await machinery runs), and the queue awaiters
// never own live payloads at destruction time. Call sites must still follow
// one rule: build a JobSpec as a NAMED local and `co_await sim.job(
// std::move(spec))` — never construct nested non-trivial temporaries inline
// in the co_await expression.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "sim/allocator.h"

namespace numastream::sim {

class Simulation;

/// Owning handle for a simulated process coroutine. Spawn it on a Simulation
/// to run it; an unspawned SimProc cleans up after itself.
class SimProc {
 public:
  struct promise_type {
    SimProc get_return_object() {
      return SimProc(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  SimProc(SimProc&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  SimProc& operator=(SimProc&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  SimProc(const SimProc&) = delete;
  SimProc& operator=(const SimProc&) = delete;
  ~SimProc() { destroy(); }

 private:
  friend class Simulation;
  explicit SimProc(Handle handle) : handle_(handle) {}
  Handle release() noexcept { return std::exchange(handle_, {}); }
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

/// One unit of simulated work.
struct JobSpec {
  double work = 0;  ///< work units (bytes); 0 completes instantly
  JobDemands demands;
  /// Optional per-advance hook: (work_done, dt) since the last advance.
  /// Used by the machine model to attribute busy time and byte counters.
  std::function<void(double work_done, double dt)> on_progress;
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation();

  /// Registers a resource. `contention_overhead` models per-sharer loss
  /// (context switching, cache thrash): with k concurrent jobs the resource
  /// delivers capacity / (1 + overhead * (k - 1)).
  int add_resource(std::string name, double capacity, double contention_overhead = 0.0);

  [[nodiscard]] std::size_t resource_count() const noexcept { return resources_.size(); }
  [[nodiscard]] const std::string& resource_name(int id) const;
  [[nodiscard]] double resource_capacity(int id) const;

  /// Changes a resource's capacity mid-run (hardware degradation / recovery).
  /// Takes effect at the current virtual time: in-flight jobs keep the work
  /// already done and progress at the new fair-share rate from `now()` on.
  /// Capacity must stay positive — model an outage as a droop to a tiny
  /// fraction so in-flight work still completes (slowly) instead of hanging.
  void set_resource_capacity(int id, double capacity);

  /// Cumulative units consumed from a resource since the start.
  [[nodiscard]] double consumed(int id) const;

  [[nodiscard]] double now() const noexcept { return now_; }

  /// Starts a process; it first runs when the engine reaches the current
  /// virtual time (i.e. within run()).
  void spawn(SimProc proc);

  /// Runs until no event or job remains, or virtual time passes `limit`.
  void run(double limit = 1e30);

  /// Number of jobs currently in flight (for tests / debugging).
  [[nodiscard]] std::size_t active_jobs() const noexcept { return jobs_.size(); }

  // ---- awaitables -------------------------------------------------------

  struct DelayAwaiter {
    Simulation& sim;
    double seconds;
    [[nodiscard]] bool await_ready() const noexcept { return seconds <= 0; }
    void await_suspend(std::coroutine_handle<> handle) {
      sim.schedule(sim.now_ + seconds, handle);
    }
    void await_resume() const noexcept {}
  };

  /// co_await sim.delay(s): resume after s simulated seconds.
  DelayAwaiter delay(double seconds) { return DelayAwaiter{*this, seconds}; }

  /// Trivially destructible on purpose (see the GCC 12 note above): the
  /// spec already lives inside the engine when this awaiter is created.
  struct JobAwaiter {
    Simulation* sim;
    bool ready;
    [[nodiscard]] bool await_ready() const noexcept { return ready; }
    void await_suspend(std::coroutine_handle<> handle) {
      sim->attach_pending_job(handle);
    }
    void await_resume() const noexcept {}
  };

  /// co_await sim.job(std::move(spec)): resume when the work completes.
  /// The spec must be a named local moved in (never an inline temporary
  /// with nested non-trivial subobjects; see the GCC 12 note).
  JobAwaiter job(JobSpec spec);

  /// Schedules a bare wakeup (used by SimQueue). Delta time 0 = "later this
  /// same instant", preserving FIFO order among same-time events.
  void schedule(double time, std::coroutine_handle<> handle);

 private:
  struct Resource {
    std::string name;
    double capacity;
    double contention_overhead;
    double consumed = 0;
    int active_jobs = 0;
  };

  struct ActiveJob {
    JobSpec spec;
    double remaining;
    double rate = 0;
    std::coroutine_handle<> waiter;
  };

  struct Event {
    double time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const Event& other) const noexcept {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  void attach_pending_job(std::coroutine_handle<> waiter);
  void recompute_rates();
  void advance_to(double t);

  double now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<Resource> resources_;
  std::vector<std::unique_ptr<ActiveJob>> jobs_;
  bool rates_dirty_ = false;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<SimProc::Handle> owned_;
  /// Job created by job() whose awaiting coroutine has not suspended yet.
  ActiveJob* pending_job_ = nullptr;
};

}  // namespace numastream::sim
