#include "sim/engine.h"

#include <limits>

namespace numastream::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Simulation::~Simulation() {
  for (auto& handle : owned_) {
    if (handle) {
      handle.destroy();
    }
  }
}

int Simulation::add_resource(std::string name, double capacity,
                             double contention_overhead) {
  NS_CHECK(capacity > 0, "resource capacity must be positive");
  NS_CHECK(contention_overhead >= 0, "contention overhead cannot be negative");
  resources_.push_back(Resource{.name = std::move(name),
                                .capacity = capacity,
                                .contention_overhead = contention_overhead});
  return static_cast<int>(resources_.size()) - 1;
}

const std::string& Simulation::resource_name(int id) const {
  NS_CHECK(id >= 0 && static_cast<std::size_t>(id) < resources_.size(),
           "unknown resource");
  return resources_[static_cast<std::size_t>(id)].name;
}

double Simulation::resource_capacity(int id) const {
  NS_CHECK(id >= 0 && static_cast<std::size_t>(id) < resources_.size(),
           "unknown resource");
  return resources_[static_cast<std::size_t>(id)].capacity;
}

void Simulation::set_resource_capacity(int id, double capacity) {
  NS_CHECK(id >= 0 && static_cast<std::size_t>(id) < resources_.size(),
           "unknown resource");
  NS_CHECK(capacity > 0, "resource capacity must be positive");
  resources_[static_cast<std::size_t>(id)].capacity = capacity;
  rates_dirty_ = true;
}

double Simulation::consumed(int id) const {
  NS_CHECK(id >= 0 && static_cast<std::size_t>(id) < resources_.size(),
           "unknown resource");
  return resources_[static_cast<std::size_t>(id)].consumed;
}

void Simulation::spawn(SimProc proc) {
  SimProc::Handle handle = proc.release();
  NS_CHECK(static_cast<bool>(handle), "cannot spawn an empty process");
  owned_.push_back(handle);
  schedule(now_, handle);
}

void Simulation::schedule(double time, std::coroutine_handle<> handle) {
  NS_CHECK(time >= now_, "cannot schedule into the past");
  events_.push(Event{.time = time, .seq = next_seq_++, .handle = handle});
}

Simulation::JobAwaiter Simulation::job(JobSpec spec) {
  if (spec.work <= 0) {
    return JobAwaiter{this, /*ready=*/true};
  }
  NS_CHECK(pending_job_ == nullptr, "previous job() result was never awaited");
  auto job = std::make_unique<ActiveJob>();
  job->remaining = spec.work;
  job->spec = std::move(spec);
  for (const auto& demand : job->spec.demands.demands) {
    NS_CHECK(demand.resource >= 0 &&
                 static_cast<std::size_t>(demand.resource) < resources_.size(),
             "job demands unknown resource");
    resources_[static_cast<std::size_t>(demand.resource)].active_jobs += 1;
  }
  pending_job_ = job.get();
  jobs_.push_back(std::move(job));
  rates_dirty_ = true;
  return JobAwaiter{this, /*ready=*/false};
}

void Simulation::attach_pending_job(std::coroutine_handle<> waiter) {
  NS_CHECK(pending_job_ != nullptr, "no job is pending attachment");
  pending_job_->waiter = waiter;
  pending_job_ = nullptr;
}

void Simulation::recompute_rates() {
  // Effective capacity shrinks with sharer count (context-switch model).
  std::vector<double> capacities(resources_.size());
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    const Resource& res = resources_[r];
    const int extra = std::max(0, res.active_jobs - 1);
    capacities[r] = res.capacity / (1.0 + res.contention_overhead * extra);
  }
  std::vector<JobDemands> demands;
  demands.reserve(jobs_.size());
  for (const auto& job : jobs_) {
    demands.push_back(job->spec.demands);
  }
  const std::vector<double> rates = max_min_fair_rates(capacities, demands);
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    jobs_[j]->rate = rates[j];
  }
  rates_dirty_ = false;
}

void Simulation::advance_to(double t) {
  const double dt = t - now_;
  if (dt > 0) {
    for (const auto& job : jobs_) {
      const double done = std::min(job->rate * dt, job->remaining);
      if (done > 0) {
        job->remaining -= done;
        for (const auto& demand : job->spec.demands.demands) {
          resources_[static_cast<std::size_t>(demand.resource)].consumed +=
              demand.units_per_work * done;
        }
      }
      if (job->spec.on_progress) {
        job->spec.on_progress(done, dt);
      }
    }
  }
  now_ = t;
}

void Simulation::run(double limit) {
  while (true) {
    if (rates_dirty_) {
      recompute_rates();
    }

    // Earliest job completion.
    double t_job = kInf;
    for (const auto& job : jobs_) {
      if (job->rate > 0) {
        t_job = std::min(t_job, now_ + job->remaining / job->rate);
      }
    }
    // All in-flight jobs starved (rate 0) with no event to change that is a
    // modelling bug; surface it instead of spinning.
    if (!jobs_.empty() && t_job == kInf && events_.empty()) {
      NS_UNREACHABLE("all simulated jobs are starved and no event is pending");
    }

    const double t_event = events_.empty() ? kInf : events_.top().time;
    const double t_next = std::min(t_job, t_event);
    if (t_next == kInf) {
      break;  // nothing left to do
    }
    if (t_next > limit) {
      advance_to(limit);
      break;
    }

    advance_to(t_next);

    // Complete finished jobs first (a completion may unblock a queue that an
    // event at the same instant would also touch; completions win ties to
    // keep pipelines draining).
    std::vector<std::coroutine_handle<>> to_resume;
    for (std::size_t j = 0; j < jobs_.size();) {
      // Relative tolerance: rounding in rate * dt can leave dust behind.
      if (jobs_[j]->remaining <= 1e-9 * (1.0 + jobs_[j]->spec.work)) {
        NS_CHECK(static_cast<bool>(jobs_[j]->waiter),
                 "completed job was never awaited");
        for (const auto& demand : jobs_[j]->spec.demands.demands) {
          resources_[static_cast<std::size_t>(demand.resource)].active_jobs -= 1;
        }
        to_resume.push_back(jobs_[j]->waiter);
        jobs_[j] = std::move(jobs_.back());
        jobs_.pop_back();
        rates_dirty_ = true;
      } else {
        ++j;
      }
    }
    for (const auto handle : to_resume) {
      handle.resume();
    }

    // Then all events scheduled for this instant.
    while (!events_.empty() && events_.top().time <= now_) {
      const Event event = events_.top();
      events_.pop();
      event.handle.resume();
    }
  }
}

}  // namespace numastream::sim
