#include "codec/xxhash.h"

#include <cstring>

namespace numastream {
namespace {

// Specification constants.
constexpr std::uint32_t kP32_1 = 2654435761U;
constexpr std::uint32_t kP32_2 = 2246822519U;
constexpr std::uint32_t kP32_3 = 3266489917U;
constexpr std::uint32_t kP32_4 = 668265263U;
constexpr std::uint32_t kP32_5 = 374761393U;

constexpr std::uint64_t kP64_1 = 11400714785074694791ULL;
constexpr std::uint64_t kP64_2 = 14029467366897019727ULL;
constexpr std::uint64_t kP64_3 = 1609587929392839161ULL;
constexpr std::uint64_t kP64_4 = 9650029242287828579ULL;
constexpr std::uint64_t kP64_5 = 2870177450012600261ULL;

constexpr std::uint32_t rotl32(std::uint32_t x, int r) noexcept {
  return (x << r) | (x >> (32 - r));
}
constexpr std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

constexpr std::uint32_t round32(std::uint32_t acc, std::uint32_t lane) noexcept {
  return rotl32(acc + lane * kP32_2, 13) * kP32_1;
}

constexpr std::uint64_t round64(std::uint64_t acc, std::uint64_t lane) noexcept {
  return rotl64(acc + lane * kP64_2, 31) * kP64_1;
}

constexpr std::uint64_t merge_round64(std::uint64_t h, std::uint64_t acc) noexcept {
  return (h ^ round64(0, acc)) * kP64_1 + kP64_4;
}

std::uint32_t avalanche32(std::uint32_t h) noexcept {
  h ^= h >> 15;
  h *= kP32_2;
  h ^= h >> 13;
  h *= kP32_3;
  h ^= h >> 16;
  return h;
}

// Tail of xxHash32: mixes the final <16 remaining bytes into h.
std::uint32_t finalize32(std::uint32_t h, const std::uint8_t* p,
                         std::size_t len) noexcept {
  while (len >= 4) {
    h = rotl32(h + load_le32(p) * kP32_3, 17) * kP32_4;
    p += 4;
    len -= 4;
  }
  while (len > 0) {
    h = rotl32(h + std::uint32_t{*p} * kP32_5, 11) * kP32_1;
    ++p;
    --len;
  }
  return avalanche32(h);
}

}  // namespace

std::uint32_t xxhash32(ByteSpan data, std::uint32_t seed) noexcept {
  const std::uint8_t* p = data.data();
  std::size_t len = data.size();
  std::uint32_t h;
  if (len >= 16) {
    std::uint32_t a1 = seed + kP32_1 + kP32_2;
    std::uint32_t a2 = seed + kP32_2;
    std::uint32_t a3 = seed;
    std::uint32_t a4 = seed - kP32_1;
    const std::uint8_t* const limit = p + len - 16;
    do {
      a1 = round32(a1, load_le32(p));
      a2 = round32(a2, load_le32(p + 4));
      a3 = round32(a3, load_le32(p + 8));
      a4 = round32(a4, load_le32(p + 12));
      p += 16;
    } while (p <= limit);
    h = rotl32(a1, 1) + rotl32(a2, 7) + rotl32(a3, 12) + rotl32(a4, 18);
  } else {
    h = seed + kP32_5;
  }
  h += static_cast<std::uint32_t>(data.size());
  return finalize32(h, p, data.size() - static_cast<std::size_t>(p - data.data()));
}

std::uint64_t xxhash64(ByteSpan data, std::uint64_t seed) noexcept {
  const std::uint8_t* p = data.data();
  std::size_t len = data.size();
  std::uint64_t h;
  if (len >= 32) {
    std::uint64_t a1 = seed + kP64_1 + kP64_2;
    std::uint64_t a2 = seed + kP64_2;
    std::uint64_t a3 = seed;
    std::uint64_t a4 = seed - kP64_1;
    const std::uint8_t* const limit = p + len - 32;
    do {
      a1 = round64(a1, load_le64(p));
      a2 = round64(a2, load_le64(p + 8));
      a3 = round64(a3, load_le64(p + 16));
      a4 = round64(a4, load_le64(p + 24));
      p += 32;
    } while (p <= limit);
    h = rotl64(a1, 1) + rotl64(a2, 7) + rotl64(a3, 12) + rotl64(a4, 18);
    h = merge_round64(h, a1);
    h = merge_round64(h, a2);
    h = merge_round64(h, a3);
    h = merge_round64(h, a4);
  } else {
    h = seed + kP64_5;
  }
  h += data.size();
  len = data.size() - static_cast<std::size_t>(p - data.data());
  while (len >= 8) {
    h ^= round64(0, load_le64(p));
    h = rotl64(h, 27) * kP64_1 + kP64_4;
    p += 8;
    len -= 8;
  }
  if (len >= 4) {
    h ^= std::uint64_t{load_le32(p)} * kP64_1;
    h = rotl64(h, 23) * kP64_2 + kP64_3;
    p += 4;
    len -= 4;
  }
  while (len > 0) {
    h ^= std::uint64_t{*p} * kP64_5;
    h = rotl64(h, 11) * kP64_1;
    ++p;
    --len;
  }
  h ^= h >> 33;
  h *= kP64_2;
  h ^= h >> 29;
  h *= kP64_3;
  h ^= h >> 32;
  return h;
}

XxHash32::XxHash32(std::uint32_t seed) noexcept : seed_(seed) {
  acc_[0] = seed + kP32_1 + kP32_2;
  acc_[1] = seed + kP32_2;
  acc_[2] = seed;
  acc_[3] = seed - kP32_1;
}

void XxHash32::update(ByteSpan data) noexcept {
  total_len_ += data.size();
  const std::uint8_t* p = data.data();
  std::size_t len = data.size();

  // Top up a partial 16-byte stripe first.
  if (buffered_ > 0) {
    const std::size_t need = 16 - buffered_;
    const std::size_t take = std::min(need, len);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += static_cast<std::uint32_t>(take);
    p += take;
    len -= take;
    if (buffered_ < 16) {
      return;
    }
    acc_[0] = round32(acc_[0], load_le32(buffer_));
    acc_[1] = round32(acc_[1], load_le32(buffer_ + 4));
    acc_[2] = round32(acc_[2], load_le32(buffer_ + 8));
    acc_[3] = round32(acc_[3], load_le32(buffer_ + 12));
    buffered_ = 0;
  }

  while (len >= 16) {
    acc_[0] = round32(acc_[0], load_le32(p));
    acc_[1] = round32(acc_[1], load_le32(p + 4));
    acc_[2] = round32(acc_[2], load_le32(p + 8));
    acc_[3] = round32(acc_[3], load_le32(p + 12));
    p += 16;
    len -= 16;
  }

  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffered_ = static_cast<std::uint32_t>(len);
  }
}

std::uint32_t XxHash32::digest() const noexcept {
  std::uint32_t h;
  if (total_len_ >= 16) {
    h = rotl32(acc_[0], 1) + rotl32(acc_[1], 7) + rotl32(acc_[2], 12) +
        rotl32(acc_[3], 18);
  } else {
    h = seed_ + kP32_5;
  }
  h += static_cast<std::uint32_t>(total_len_);
  return finalize32(h, buffer_, buffered_);
}

}  // namespace numastream
