// xxHash32 / xxHash64, implemented from the published specification.
//
// The paper's runtime moves multi-megabyte chunks across a network; the frame
// format protects each chunk payload and its decompressed content with an
// xxHash32 so corruption (a bug, a flaky link, a bad codec round-trip) is
// detected at the consumer rather than silently fed to analysis. xxHash was
// chosen because it is the checksum family LZ4's own frame format uses and it
// runs far faster than the data arrives.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace numastream {

/// One-shot xxHash32 of `data` with the given seed.
std::uint32_t xxhash32(ByteSpan data, std::uint32_t seed = 0) noexcept;

/// One-shot xxHash64 of `data` with the given seed.
std::uint64_t xxhash64(ByteSpan data, std::uint64_t seed = 0) noexcept;

/// Streaming xxHash32 for incremental framing paths: feed any number of
/// update() calls, then digest(). Matches the one-shot function exactly.
class XxHash32 {
 public:
  explicit XxHash32(std::uint32_t seed = 0) noexcept;

  void update(ByteSpan data) noexcept;
  [[nodiscard]] std::uint32_t digest() const noexcept;

 private:
  std::uint32_t acc_[4];
  std::uint8_t buffer_[16];
  std::uint32_t buffered_ = 0;
  std::uint64_t total_len_ = 0;
  std::uint32_t seed_ = 0;
};

}  // namespace numastream
