// The codec abstraction the streaming pipeline is written against.
//
// A Codec is stateless and thread-safe: the paper runs up to 64 concurrent
// compression threads over one algorithm, so all per-call state lives on the
// caller's stack/buffers. Codecs are identified by a stable one-byte id that
// is carried in every frame header, so sender and receiver negotiate nothing:
// the receiver instantiates whatever each frame declares.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace numastream {

/// Stable wire ids. Never renumber: they appear in frames and sdf files.
enum class CodecId : std::uint8_t {
  kNull = 0,      ///< memcpy; the "no compression" baseline configuration
  kLz4 = 1,       ///< LZ4 block format (codec/lz4.h)
  kDeltaRle = 2,  ///< delta+zigzag+varint+RLE for uint16 detector data
  kLz4Hc = 3,     ///< LZ4 block format, high-compression chain matcher
};

class Codec {
 public:
  virtual ~Codec() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual CodecId id() const noexcept = 0;

  /// Worst-case output size for `raw_size` input bytes; size destination
  /// buffers with this before calling compress().
  [[nodiscard]] virtual std::size_t max_compressed_size(
      std::size_t raw_size) const noexcept = 0;

  /// Compresses src into dst; returns bytes written.
  virtual Result<std::size_t> compress(ByteSpan src, MutableByteSpan dst) const = 0;

  /// Decompresses src into dst (sized to the known raw size); returns bytes
  /// produced. Malformed input must yield DATA_LOSS, never UB.
  virtual Result<std::size_t> decompress(ByteSpan src, MutableByteSpan dst) const = 0;
};

/// Codec lookup by wire id; nullptr for unknown ids (the caller turns that
/// into a DATA_LOSS on the frame). The returned object is a process-lifetime
/// singleton; do not delete.
const Codec* codec_by_id(CodecId id) noexcept;

/// Codec lookup by name ("null", "lz4", "delta_rle"); nullptr when unknown.
const Codec* codec_by_name(std::string_view name) noexcept;

/// All registered codecs, for enumeration in tools/tests.
std::vector<const Codec*> all_codecs();

}  // namespace numastream
