#include "codec/frame.h"

#include <cstring>

#include "codec/xxhash.h"
#include "common/assert.h"

namespace numastream {

Bytes encode_frame(const Codec& codec, ByteSpan raw) {
  Bytes frame;
  encode_frame_into(codec, raw, frame);
  return frame;
}

void encode_frame_into(const Codec& codec, ByteSpan raw, Bytes& out) {
  // Compress straight into the frame's payload region, sized by the codec's
  // bound; no scratch buffer.
  out.resize(kFrameHeaderSize + codec.max_compressed_size(raw.size()));
  auto written = codec.compress(
      raw, MutableByteSpan(out.data() + kFrameHeaderSize,
                           out.size() - kFrameHeaderSize));
  NS_CHECK(written.ok(), "compress into a bound-sized buffer must succeed");

  // Store-uncompressed fallback when the codec did not help.
  const Codec* effective = &codec;
  std::size_t payload_size = written.value();
  if (payload_size >= raw.size() && codec.id() != CodecId::kNull) {
    effective = codec_by_id(CodecId::kNull);
    payload_size = raw.size();
    if (!raw.empty()) {
      std::memcpy(out.data() + kFrameHeaderSize, raw.data(), raw.size());
    }
  }
  out.resize(kFrameHeaderSize + payload_size);

  std::uint8_t* p = out.data();
  store_le32(p, kFrameMagic);
  p[4] = static_cast<std::uint8_t>(effective->id());
  p[5] = 0;             // flags
  store_le16(p + 6, 0); // reserved
  store_le64(p + 8, raw.size());
  store_le64(p + 16, payload_size);
  store_le32(p + 24, xxhash32(ByteSpan(p + kFrameHeaderSize, payload_size)));
  store_le32(p + 28, xxhash32(raw));
}

Result<FrameView> decode_frame(ByteSpan frame) {
  ByteReader reader(frame);
  std::uint32_t magic = 0;
  std::uint8_t codec_id = 0;
  std::uint8_t flags = 0;
  std::uint16_t reserved = 0;
  std::uint64_t raw_size = 0;
  std::uint64_t payload_size = 0;
  std::uint32_t payload_hash = 0;
  std::uint32_t content_hash = 0;

  NS_RETURN_IF_ERROR(reader.u32(magic));
  if (magic != kFrameMagic) {
    return data_loss_error("frame: bad magic (got " + hex_preview(frame) + ")");
  }
  NS_RETURN_IF_ERROR(reader.u8(codec_id));
  NS_RETURN_IF_ERROR(reader.u8(flags));
  NS_RETURN_IF_ERROR(reader.u16(reserved));
  if (flags != 0 || reserved != 0) {
    return data_loss_error("frame: nonzero reserved fields (future format?)");
  }
  NS_RETURN_IF_ERROR(reader.u64(raw_size));
  NS_RETURN_IF_ERROR(reader.u64(payload_size));
  NS_RETURN_IF_ERROR(reader.u32(payload_hash));
  NS_RETURN_IF_ERROR(reader.u32(content_hash));

  if (codec_by_id(static_cast<CodecId>(codec_id)) == nullptr) {
    return data_loss_error("frame: unknown codec id " + std::to_string(codec_id));
  }
  if (payload_size != reader.remaining()) {
    return data_loss_error("frame: payload size " + std::to_string(payload_size) +
                           " does not match remaining " +
                           std::to_string(reader.remaining()) + " bytes");
  }
  ByteSpan payload;
  NS_RETURN_IF_ERROR(reader.raw(payload_size, payload));
  if (xxhash32(payload) != payload_hash) {
    return data_loss_error("frame: payload checksum mismatch");
  }

  FrameView view;
  view.codec = static_cast<CodecId>(codec_id);
  view.raw_size = raw_size;
  view.content_hash = content_hash;
  view.payload = payload;
  return view;
}

Result<Bytes> decode_frame_content(ByteSpan frame) {
  auto view = decode_frame(frame);
  if (!view.ok()) {
    return view.status();
  }
  const Codec* codec = codec_by_id(view.value().codec);
  NS_CHECK(codec != nullptr, "decode_frame validated the codec id");

  Bytes raw(view.value().raw_size);
  auto produced = codec->decompress(view.value().payload, raw);
  if (!produced.ok()) {
    return produced.status();
  }
  if (produced.value() != raw.size()) {
    return data_loss_error("frame: decoded size mismatch");
  }
  if (xxhash32(raw) != view.value().content_hash) {
    return data_loss_error("frame: content checksum mismatch after decompression");
  }
  return raw;
}

std::optional<std::size_t> find_frame_magic(ByteSpan data, std::size_t from) {
  std::uint8_t magic[4];
  store_le32(magic, kFrameMagic);
  for (std::size_t pos = from; pos + 4 <= data.size(); ++pos) {
    if (std::memcmp(data.data() + pos, magic, 4) == 0) {
      return pos;
    }
  }
  return std::nullopt;
}

Result<Bytes> decode_frame_content_resync(ByteSpan frame, bool* resynced) {
  if (resynced != nullptr) {
    *resynced = false;
  }
  auto first = decode_frame_content(frame);
  if (first.ok()) {
    return first;
  }
  // The frame at offset 0 is bad; a later magic may still head a valid frame
  // (the checksums make a false positive decoding successfully vanishingly
  // unlikely, so the first decodable candidate is the recovered frame).
  std::size_t search_from = 1;
  while (auto pos = find_frame_magic(frame, search_from)) {
    auto recovered = decode_frame_content(frame.subspan(*pos));
    if (recovered.ok()) {
      if (resynced != nullptr) {
        *resynced = true;
      }
      return recovered;
    }
    search_from = *pos + 1;
  }
  return first.status();
}

}  // namespace numastream
