#include "codec/lz4.h"

#include <cstring>

namespace numastream {
namespace {

// Format constants from the LZ4 block specification.
constexpr std::size_t kMinMatch = 4;          // shortest encodable match
constexpr std::size_t kMfLimit = 12;          // last match starts >= 12 bytes from end
constexpr std::size_t kLastLiterals = 5;      // final 5 bytes are always literals
constexpr std::size_t kMaxOffset = 65535;     // 16-bit match offset
constexpr unsigned kTokenMax = 15;            // nibble saturation value

constexpr int kHashLog = 16;
constexpr std::uint32_t kHashMultiplier = 2654435761U;  // Knuth multiplicative

inline std::uint32_t hash4(std::uint32_t value) noexcept {
  return (value * kHashMultiplier) >> (32 - kHashLog);
}

// Emits an LZ4 length using the 15 + 255* + remainder scheme.
// Returns false if dst space ran out.
inline bool emit_length(std::size_t value, std::uint8_t*& op,
                        const std::uint8_t* const oend) noexcept {
  while (value >= 255) {
    if (op >= oend) {
      return false;
    }
    *op++ = 255;
    value -= 255;
  }
  if (op >= oend) {
    return false;
  }
  *op++ = static_cast<std::uint8_t>(value);
  return true;
}

}  // namespace

Result<std::size_t> lz4_compress_block(ByteSpan src, MutableByteSpan dst) {
  const std::uint8_t* const base = src.data();
  const std::size_t src_size = src.size();
  std::uint8_t* op = dst.data();
  const std::uint8_t* const oend = dst.data() + dst.size();

  const auto overflow = [] {
    return resource_exhausted_error("lz4: destination buffer too small");
  };

  if (src_size == 0) {
    return std::size_t{0};
  }

  // Emits the literal run [anchor, lit_end) as a (possibly final) sequence,
  // with match fields appended by the caller when not final.
  const auto emit_literals = [&](const std::uint8_t* anchor, const std::uint8_t* lit_end,
                                 std::uint8_t*& token_out) -> bool {
    const std::size_t lit_len = static_cast<std::size_t>(lit_end - anchor);
    if (op >= oend) {
      return false;
    }
    token_out = op++;
    if (lit_len >= kTokenMax) {
      *token_out = static_cast<std::uint8_t>(kTokenMax << 4);
      if (!emit_length(lit_len - kTokenMax, op, oend)) {
        return false;
      }
    } else {
      *token_out = static_cast<std::uint8_t>(lit_len << 4);
    }
    if (static_cast<std::size_t>(oend - op) < lit_len) {
      return false;
    }
    std::memcpy(op, anchor, lit_len);
    op += lit_len;
    return true;
  };

  // Inputs too small to ever contain a legal match are a single literal run.
  if (src_size >= kMfLimit + 1) {
    // Position table: value is an absolute offset into src. Entry 0 is
    // ambiguous with "empty", which is resolved by requiring candidate < ip
    // and re-verifying the 4 candidate bytes before use.
    std::vector<std::uint32_t> table(std::size_t{1} << kHashLog, 0);

    const std::uint8_t* ip = base;
    const std::uint8_t* anchor = base;
    const std::uint8_t* const mflimit = base + src_size - kMfLimit;
    const std::uint8_t* const matchlimit = base + src_size - kLastLiterals;

    // Skip acceleration (LZ4's fast-mode heuristic): after every 64 failed
    // probes the scan step grows by one, so incompressible regions are
    // crossed in O(n/step) probes instead of stalling the compressor at one
    // hash lookup per byte. Any match resets the step to 1.
    constexpr unsigned kSkipTrigger = 6;
    unsigned search_count = 1U << kSkipTrigger;

    while (ip < mflimit) {
      const std::uint32_t sequence = load_le32(ip);
      const std::uint32_t h = hash4(sequence);
      const std::uint8_t* candidate = base + table[h];
      table[h] = static_cast<std::uint32_t>(ip - base);

      const bool usable = candidate < ip &&
                          static_cast<std::size_t>(ip - candidate) <= kMaxOffset &&
                          load_le32(candidate) == sequence;
      if (!usable) {
        ip += search_count++ >> kSkipTrigger;
        continue;
      }
      search_count = 1U << kSkipTrigger;

      // Extend the match backward over pending literals.
      const std::uint8_t* match = candidate;
      while (ip > anchor && match > base && ip[-1] == match[-1]) {
        --ip;
        --match;
      }

      // Extend forward (first 4 bytes already verified when not backed up;
      // after backing up the verified region only grew).
      const std::uint8_t* mp = match + kMinMatch;
      const std::uint8_t* fp = ip + kMinMatch;
      while (fp < matchlimit && *fp == *mp) {
        ++fp;
        ++mp;
      }
      const std::size_t match_len = static_cast<std::size_t>(fp - ip);

      std::uint8_t* token = nullptr;
      if (!emit_literals(anchor, ip, token)) {
        return overflow();
      }

      // Offset.
      if (oend - op < 2) {
        return overflow();
      }
      store_le16(op, static_cast<std::uint16_t>(ip - match));
      op += 2;

      // Match length (stored as length - kMinMatch).
      const std::size_t stored = match_len - kMinMatch;
      if (stored >= kTokenMax) {
        *token |= static_cast<std::uint8_t>(kTokenMax);
        if (!emit_length(stored - kTokenMax, op, oend)) {
          return overflow();
        }
      } else {
        *token |= static_cast<std::uint8_t>(stored);
      }

      ip = fp;
      anchor = ip;

      // Seed the table near the match end so the next search can chain into
      // data we just skipped over.
      if (ip - 2 > base && ip < mflimit) {
        table[hash4(load_le32(ip - 2))] = static_cast<std::uint32_t>((ip - 2) - base);
      }
    }

    // Final literal run.
    std::uint8_t* token = nullptr;
    if (!emit_literals(anchor, base + src_size, token)) {
      return overflow();
    }
  } else {
    std::uint8_t* token = nullptr;
    if (!emit_literals(base, base + src_size, token)) {
      return overflow();
    }
  }

  return static_cast<std::size_t>(op - dst.data());
}

Result<std::size_t> lz4_decompress_block(ByteSpan src, MutableByteSpan dst) {
  const std::uint8_t* ip = src.data();
  const std::uint8_t* const iend = ip + src.size();
  std::uint8_t* op = dst.data();
  std::uint8_t* const oend = op + dst.size();

  const auto corrupt = [](const char* what) {
    return data_loss_error(std::string("lz4: malformed block: ") + what);
  };

  if (src.empty()) {
    return std::size_t{0};
  }

  // Reads an extended length; fails on truncation or absurd accumulation.
  const auto read_length = [&](std::size_t base_len, std::size_t& out) -> bool {
    std::size_t len = base_len;
    if (base_len == kTokenMax) {
      std::uint8_t byte = 0;
      do {
        if (ip >= iend) {
          return false;
        }
        byte = *ip++;
        len += byte;
        if (len > dst.size() + src.size()) {
          return false;  // cannot be a valid length for these buffers
        }
      } while (byte == 255);
    }
    out = len;
    return true;
  };

  while (ip < iend) {
    const std::uint8_t token = *ip++;

    // Literals.
    std::size_t lit_len = 0;
    if (!read_length(token >> 4, lit_len)) {
      return corrupt("bad literal length");
    }
    if (static_cast<std::size_t>(iend - ip) < lit_len) {
      return corrupt("literal run past end of input");
    }
    if (static_cast<std::size_t>(oend - op) < lit_len) {
      return corrupt("literal run past end of output");
    }
    std::memcpy(op, ip, lit_len);
    ip += lit_len;
    op += lit_len;

    if (ip == iend) {
      break;  // last sequence carries no match
    }

    // Match offset.
    if (iend - ip < 2) {
      return corrupt("truncated offset");
    }
    const std::uint16_t offset = load_le16(ip);
    ip += 2;
    if (offset == 0) {
      return corrupt("zero offset");
    }
    if (static_cast<std::size_t>(op - dst.data()) < offset) {
      return corrupt("offset reaches before output start");
    }

    // Match length.
    std::size_t match_len = 0;
    if (!read_length(token & 0x0F, match_len)) {
      return corrupt("bad match length");
    }
    match_len += kMinMatch;
    if (static_cast<std::size_t>(oend - op) < match_len) {
      return corrupt("match past end of output");
    }

    const std::uint8_t* match = op - offset;
    if (offset >= 8) {
      // Non-overlapping enough for block copies.
      std::size_t remaining = match_len;
      while (remaining >= 8) {
        std::memcpy(op, match, 8);
        op += 8;
        match += 8;
        remaining -= 8;
      }
      std::memcpy(op, match, remaining);
      op += remaining;
    } else {
      // Overlapping copy replicates the pattern byte-by-byte, which is the
      // defined semantics (e.g. offset 1 produces a run).
      for (std::size_t i = 0; i < match_len; ++i) {
        *op = *match;
        ++op;
        ++match;
      }
    }
  }

  return static_cast<std::size_t>(op - dst.data());
}

Result<std::size_t> lz4hc_compress_block(ByteSpan src, MutableByteSpan dst,
                                         int max_chain) {
  NS_CHECK(max_chain > 0, "lz4hc needs a positive chain depth");
  const std::uint8_t* const base = src.data();
  const std::size_t src_size = src.size();
  std::uint8_t* op = dst.data();
  const std::uint8_t* const oend = dst.data() + dst.size();

  const auto overflow = [] {
    return resource_exhausted_error("lz4hc: destination buffer too small");
  };

  if (src_size == 0) {
    return std::size_t{0};
  }

  const auto emit_literals = [&](const std::uint8_t* anchor, const std::uint8_t* lit_end,
                                 std::uint8_t*& token_out) -> bool {
    const std::size_t lit_len = static_cast<std::size_t>(lit_end - anchor);
    if (op >= oend) {
      return false;
    }
    token_out = op++;
    if (lit_len >= kTokenMax) {
      *token_out = static_cast<std::uint8_t>(kTokenMax << 4);
      if (!emit_length(lit_len - kTokenMax, op, oend)) {
        return false;
      }
    } else {
      *token_out = static_cast<std::uint8_t>(lit_len << 4);
    }
    if (static_cast<std::size_t>(oend - op) < lit_len) {
      return false;
    }
    std::memcpy(op, anchor, lit_len);
    op += lit_len;
    return true;
  };

  if (src_size >= kMfLimit + 1) {
    // Hash heads + a window-sized chain: chain[p & 0xFFFF] links position p
    // to the previous position with the same hash. Positions further back
    // than the 64 KiB offset limit are unreachable anyway, so the masked
    // chain loses nothing.
    constexpr std::uint32_t kNoPos = 0xFFFFFFFFU;
    std::vector<std::uint32_t> head(std::size_t{1} << kHashLog, kNoPos);
    std::vector<std::uint32_t> chain(kMaxOffset + 1, kNoPos);

    const auto insert_position = [&](std::size_t pos) {
      const std::uint32_t h = hash4(load_le32(base + pos));
      chain[pos & kMaxOffset] = head[h];
      head[h] = static_cast<std::uint32_t>(pos);
    };

    const std::uint8_t* ip = base;
    const std::uint8_t* anchor = base;
    const std::uint8_t* const mflimit = base + src_size - kMfLimit;
    const std::uint8_t* const matchlimit = base + src_size - kLastLiterals;

    while (ip < mflimit) {
      const std::size_t pos = static_cast<std::size_t>(ip - base);
      const std::uint32_t sequence = load_le32(ip);

      // Walk the chain for the longest reachable match.
      const std::uint8_t* best_match = nullptr;
      std::size_t best_len = kMinMatch - 1;
      std::uint32_t candidate = head[hash4(sequence)];
      for (int depth = 0; depth < max_chain && candidate != kNoPos; ++depth) {
        if (pos - candidate > kMaxOffset) {
          break;  // chain has left the window
        }
        const std::uint8_t* cand_ptr = base + candidate;
        if (load_le32(cand_ptr) == sequence) {
          const std::uint8_t* mp = cand_ptr + kMinMatch;
          const std::uint8_t* fp = ip + kMinMatch;
          while (fp < matchlimit && *fp == *mp) {
            ++fp;
            ++mp;
          }
          const std::size_t len = static_cast<std::size_t>(fp - ip);
          if (len > best_len) {
            best_len = len;
            best_match = cand_ptr;
          }
        }
        candidate = chain[candidate & kMaxOffset];
      }
      insert_position(pos);

      if (best_match == nullptr) {
        ++ip;
        continue;
      }

      // Extend backward over pending literals.
      const std::uint8_t* match = best_match;
      while (ip > anchor && match > base && ip[-1] == match[-1]) {
        --ip;
        --match;
        ++best_len;
      }

      std::uint8_t* token = nullptr;
      if (!emit_literals(anchor, ip, token)) {
        return overflow();
      }
      if (oend - op < 2) {
        return overflow();
      }
      store_le16(op, static_cast<std::uint16_t>(ip - match));
      op += 2;
      const std::size_t stored = best_len - kMinMatch;
      if (stored >= kTokenMax) {
        *token |= static_cast<std::uint8_t>(kTokenMax);
        if (!emit_length(stored - kTokenMax, op, oend)) {
          return overflow();
        }
      } else {
        *token |= static_cast<std::uint8_t>(stored);
      }

      // Index every covered position so later matches can chain into it.
      const std::uint8_t* const match_end = ip + best_len;
      for (const std::uint8_t* p = ip + 1; p < match_end && p < mflimit; ++p) {
        insert_position(static_cast<std::size_t>(p - base));
      }
      ip = match_end;
      anchor = ip;
    }

    std::uint8_t* token = nullptr;
    if (!emit_literals(anchor, base + src_size, token)) {
      return overflow();
    }
  } else {
    std::uint8_t* token = nullptr;
    if (!emit_literals(base, base + src_size, token)) {
      return overflow();
    }
  }

  return static_cast<std::size_t>(op - dst.data());
}

Bytes lz4hc_compress(ByteSpan src, int max_chain) {
  Bytes out(lz4_compress_bound(src.size()));
  auto written = lz4hc_compress_block(src, out, max_chain);
  NS_CHECK(written.ok(), "lz4hc_compress with a bound-sized buffer cannot fail");
  out.resize(written.value());
  return out;
}

Bytes lz4_compress(ByteSpan src) {
  Bytes out(lz4_compress_bound(src.size()));
  auto written = lz4_compress_block(src, out);
  NS_CHECK(written.ok(), "lz4_compress with a bound-sized buffer cannot fail");
  out.resize(written.value());
  return out;
}

Result<Bytes> lz4_decompress(ByteSpan src, std::size_t raw_size) {
  Bytes out(raw_size);
  auto produced = lz4_decompress_block(src, out);
  if (!produced.ok()) {
    return produced.status();
  }
  if (produced.value() != raw_size) {
    return data_loss_error("lz4: block decoded to " + std::to_string(produced.value()) +
                           " bytes, expected " + std::to_string(raw_size));
  }
  return out;
}

}  // namespace numastream
