#include "codec/codec.h"

#include <cstring>

#include "codec/delta_rle.h"
#include "codec/lz4.h"

namespace numastream {
namespace {

class NullCodec final : public Codec {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "null"; }
  [[nodiscard]] CodecId id() const noexcept override { return CodecId::kNull; }
  [[nodiscard]] std::size_t max_compressed_size(
      std::size_t raw_size) const noexcept override {
    return raw_size;
  }

  Result<std::size_t> compress(ByteSpan src, MutableByteSpan dst) const override {
    if (dst.size() < src.size()) {
      return resource_exhausted_error("null codec: destination too small");
    }
    if (!src.empty()) {  // empty spans may carry null pointers
      std::memcpy(dst.data(), src.data(), src.size());
    }
    return src.size();
  }

  Result<std::size_t> decompress(ByteSpan src, MutableByteSpan dst) const override {
    if (dst.size() != src.size()) {
      return data_loss_error("null codec: payload size does not match raw size");
    }
    if (!src.empty()) {
      std::memcpy(dst.data(), src.data(), src.size());
    }
    return src.size();
  }
};

class Lz4Codec final : public Codec {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "lz4"; }
  [[nodiscard]] CodecId id() const noexcept override { return CodecId::kLz4; }
  [[nodiscard]] std::size_t max_compressed_size(
      std::size_t raw_size) const noexcept override {
    return lz4_compress_bound(raw_size);
  }

  Result<std::size_t> compress(ByteSpan src, MutableByteSpan dst) const override {
    return lz4_compress_block(src, dst);
  }

  Result<std::size_t> decompress(ByteSpan src, MutableByteSpan dst) const override {
    auto produced = lz4_decompress_block(src, dst);
    if (produced.ok() && produced.value() != dst.size()) {
      return data_loss_error("lz4 codec: short decode");
    }
    return produced;
  }
};

class DeltaRleCodec final : public Codec {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "delta_rle"; }
  [[nodiscard]] CodecId id() const noexcept override { return CodecId::kDeltaRle; }
  [[nodiscard]] std::size_t max_compressed_size(
      std::size_t raw_size) const noexcept override {
    return delta_rle_compress_bound(raw_size);
  }

  Result<std::size_t> compress(ByteSpan src, MutableByteSpan dst) const override {
    return delta_rle_compress(src, dst);
  }

  Result<std::size_t> decompress(ByteSpan src, MutableByteSpan dst) const override {
    return delta_rle_decompress(src, dst);
  }
};

class Lz4HcCodec final : public Codec {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "lz4hc"; }
  [[nodiscard]] CodecId id() const noexcept override { return CodecId::kLz4Hc; }
  [[nodiscard]] std::size_t max_compressed_size(
      std::size_t raw_size) const noexcept override {
    return lz4_compress_bound(raw_size);
  }

  Result<std::size_t> compress(ByteSpan src, MutableByteSpan dst) const override {
    return lz4hc_compress_block(src, dst);
  }

  // The HC variant emits the standard block format; decoding is shared.
  Result<std::size_t> decompress(ByteSpan src, MutableByteSpan dst) const override {
    auto produced = lz4_decompress_block(src, dst);
    if (produced.ok() && produced.value() != dst.size()) {
      return data_loss_error("lz4hc codec: short decode");
    }
    return produced;
  }
};

const NullCodec kNullCodec;
const Lz4Codec kLz4Codec;
const DeltaRleCodec kDeltaRleCodec;
const Lz4HcCodec kLz4HcCodec;

}  // namespace

const Codec* codec_by_id(CodecId id) noexcept {
  switch (id) {
    case CodecId::kNull:
      return &kNullCodec;
    case CodecId::kLz4:
      return &kLz4Codec;
    case CodecId::kDeltaRle:
      return &kDeltaRleCodec;
    case CodecId::kLz4Hc:
      return &kLz4HcCodec;
  }
  return nullptr;
}

const Codec* codec_by_name(std::string_view name) noexcept {
  for (const Codec* codec : {static_cast<const Codec*>(&kNullCodec),
                             static_cast<const Codec*>(&kLz4Codec),
                             static_cast<const Codec*>(&kDeltaRleCodec),
                             static_cast<const Codec*>(&kLz4HcCodec)}) {
    if (codec->name() == name) {
      return codec;
    }
  }
  return nullptr;
}

std::vector<const Codec*> all_codecs() {
  return {&kNullCodec, &kLz4Codec, &kDeltaRleCodec, &kLz4HcCodec};
}

}  // namespace numastream
