// Delta + RLE codec specialised for uint16 scientific detector data.
//
// Tomographic projections are smooth fields sampled as little-endian uint16
// pixels: neighbouring samples differ by small values. This codec exploits
// that directly:
//
//   stage 1  delta      d[i] = s[i] - s[i-1]  (mod 2^16) over uint16 samples
//   stage 2  zigzag     small signed deltas -> small unsigned values
//   stage 3  varint     1 byte for |delta| < 64, at most 3 bytes ever
//   stage 4  byte RLE   runs of >= 4 identical bytes (flat image regions)
//
// It typically beats LZ4 on ratio for detector frames while staying fully
// streamable, and it exists in the library both as a useful alternative codec
// and as the second data point for the codec-choice ablation bench.
//
// A trailing odd byte (inputs are not required to be an even number of bytes)
// is carried verbatim after the encoded stream.
#pragma once

#include "common/bytes.h"
#include "common/status.h"

namespace numastream {

/// Worst case: every delta needs 3 varint bytes and RLE adds one token byte
/// per 127 literals, plus small constant headroom.
constexpr std::size_t delta_rle_compress_bound(std::size_t raw_size) noexcept {
  const std::size_t varint_worst = (raw_size / 2) * 3 + 1;
  return varint_worst + varint_worst / 127 + 16;
}

/// Compresses `src`; returns bytes written into `dst` (size it with
/// delta_rle_compress_bound).
Result<std::size_t> delta_rle_compress(ByteSpan src, MutableByteSpan dst);

/// Decompresses into `dst`, which must be exactly the original size
/// (known from the frame header). Malformed input yields DATA_LOSS.
Result<std::size_t> delta_rle_decompress(ByteSpan src, MutableByteSpan dst);

}  // namespace numastream
