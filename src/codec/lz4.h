// LZ4 block compression, implemented from scratch against the published LZ4
// block format specification (token / literals / 2-byte offset / extended
// lengths). The paper streams 11.0592 MB projection chunks through LZ4 at a
// ~2:1 ratio; this is that codec, self-contained so the library has no
// external compression dependency.
//
// The compressor is the greedy single-pass variant with a 64 Ki-entry
// hash table over 4-byte windows — the same design point as LZ4's default
// "fast" mode: favours throughput over ratio, exactly what a streaming
// pipeline that must outrun a 100 Gbps NIC wants.
//
// The decompressor is fully bounds-checked and returns DATA_LOSS on any
// malformed input instead of reading or writing out of bounds, because frames
// arrive from a network.
#pragma once

#include <cstddef>

#include "common/bytes.h"
#include "common/status.h"

namespace numastream {

/// Worst-case compressed size for `raw_size` input bytes (incompressible data
/// expands by 1 byte per 255 plus constant framing).
constexpr std::size_t lz4_compress_bound(std::size_t raw_size) noexcept {
  return raw_size + raw_size / 255 + 16;
}

/// Compresses `src` into `dst`. Returns the number of bytes written.
/// Fails with RESOURCE_EXHAUSTED if `dst` is smaller than the compressed
/// output would need (size `dst` with lz4_compress_bound to be safe).
Result<std::size_t> lz4_compress_block(ByteSpan src, MutableByteSpan dst);

/// Decompresses `src` into `dst`. Returns the number of bytes produced.
/// `dst` must be at least the original raw size (callers know it from the
/// frame header). Any malformed sequence yields DATA_LOSS.
Result<std::size_t> lz4_decompress_block(ByteSpan src, MutableByteSpan dst);

/// High-compression variant: hash-chain match search that examines up to
/// `max_chain` candidates per position and picks the longest match, instead
/// of the fast mode's single-probe greedy scan. Produces the same block
/// format (decompress with lz4_decompress_block), trades ~5-10x compression
/// speed for a better ratio — the right end of the spectrum when the wire,
/// not the sender's cores, is the bottleneck.
Result<std::size_t> lz4hc_compress_block(ByteSpan src, MutableByteSpan dst,
                                         int max_chain = 64);

/// Convenience: compress into a fresh buffer sized by lz4_compress_bound.
Bytes lz4_compress(ByteSpan src);

/// Convenience: high-compression variant of lz4_compress.
Bytes lz4hc_compress(ByteSpan src, int max_chain = 64);

/// Convenience: decompress a block whose raw size is known.
Result<Bytes> lz4_decompress(ByteSpan src, std::size_t raw_size);

}  // namespace numastream
