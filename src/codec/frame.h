// Compressed-chunk frame format.
//
// Every data chunk that leaves a compression thread is wrapped in this frame
// before it is handed to a sending thread (Fig. 2 of the paper). The frame is
// self-describing — codec id, raw size, payload checksum, content checksum —
// so the receiving side can route any frame to the right decompressor and
// verify both the bytes it received and the bytes it reconstructed.
//
// Layout (all little-endian):
//   offset size  field
//   0      4     magic "NSF1"
//   4      1     codec id (CodecId)
//   5      1     flags (reserved, must be 0)
//   6      2     reserved (must be 0)
//   8      8     raw (uncompressed) size
//   16     8     payload (compressed) size
//   24     4     xxhash32 of the payload bytes
//   28     4     xxhash32 of the raw content
//   32     ...   payload
#pragma once

#include <optional>

#include "codec/codec.h"
#include "common/bytes.h"
#include "common/status.h"

namespace numastream {

inline constexpr std::size_t kFrameHeaderSize = 32;
inline constexpr std::uint32_t kFrameMagic = 0x3146534EU;  // "NSF1" little-endian

/// Parsed header plus a view of the payload (borrowing the input buffer).
struct FrameView {
  CodecId codec = CodecId::kNull;
  std::uint64_t raw_size = 0;
  std::uint32_t content_hash = 0;
  ByteSpan payload;
};

/// Compresses `raw` with `codec` and wraps it in a frame.
/// If compression would expand the data (incompressible input), the frame is
/// transparently stored with the null codec instead — the receiver handles
/// both cases identically.
Bytes encode_frame(const Codec& codec, ByteSpan raw);

/// encode_frame, but building the frame inside `out` — the codec compresses
/// directly into `out`'s tail (no scratch buffer, no join copy), and `out`'s
/// existing capacity is reused when it suffices. This is the pooled-buffer
/// path: a compressor leases a recycled chunk buffer, encodes into it, and
/// the same allocation rides the queue, the socket, and the pool again.
/// Byte-identical output to encode_frame.
void encode_frame_into(const Codec& codec, ByteSpan raw, Bytes& out);

/// Parses and validates a frame header + payload checksum. The returned view
/// borrows `frame`; it is valid while `frame` lives.
Result<FrameView> decode_frame(ByteSpan frame);

/// Fully decodes a frame: parse, decompress, verify the content checksum.
Result<Bytes> decode_frame_content(ByteSpan frame);

/// Offset of the next "NSF1" magic at or after `from`, or nullopt. Receiver
/// hardening uses this to resync inside a corrupted message body: a frame
/// that fails to decode may still carry a valid frame after garbage (e.g. a
/// corrupted prefix), and scanning for the magic recovers it instead of
/// dropping the whole chunk.
std::optional<std::size_t> find_frame_magic(ByteSpan data, std::size_t from);

/// decode_frame_content with resync: tries the frame at offset 0 and, on
/// failure, at every subsequent magic position. `resynced`, when supplied, is
/// set to true if the successful decode required skipping garbage. Fails with
/// the original offset-0 error when no embedded frame decodes.
Result<Bytes> decode_frame_content_resync(ByteSpan frame, bool* resynced = nullptr);

}  // namespace numastream
