#include "codec/delta_rle.h"

#include <cstring>

namespace numastream {
namespace {

// RLE tokens over the varint stream:
//   0x01..0x7F      : that many literal bytes follow
//   0x80 | k        : the next byte repeats (k + kMinRun) times
constexpr std::size_t kMinRun = 4;
constexpr std::size_t kMaxRun = kMinRun + 127;
constexpr std::size_t kMaxLiteralRun = 127;

std::uint16_t zigzag16(std::int16_t v) noexcept {
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(v) << 1) ^
                                    static_cast<std::uint16_t>(v >> 15));
}

std::int16_t unzigzag16(std::uint16_t z) noexcept {
  return static_cast<std::int16_t>((z >> 1) ^ static_cast<std::uint16_t>(-(z & 1)));
}

void append_varint(Bytes& out, std::uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// RLE-encodes `in` into `op`, respecting `oend`. Returns false on overflow.
bool rle_encode(ByteSpan in, std::uint8_t*& op, const std::uint8_t* oend) {
  std::size_t i = 0;
  std::size_t literal_start = 0;

  const auto flush_literals = [&](std::size_t end) -> bool {
    std::size_t pos = literal_start;
    while (pos < end) {
      const std::size_t n = std::min(end - pos, kMaxLiteralRun);
      if (static_cast<std::size_t>(oend - op) < n + 1) {
        return false;
      }
      *op++ = static_cast<std::uint8_t>(n);
      std::memcpy(op, in.data() + pos, n);
      op += n;
      pos += n;
    }
    return true;
  };

  while (i < in.size()) {
    std::size_t run = 1;
    while (i + run < in.size() && in[i + run] == in[i] && run < kMaxRun) {
      ++run;
    }
    if (run >= kMinRun) {
      if (!flush_literals(i)) {
        return false;
      }
      if (oend - op < 2) {
        return false;
      }
      *op++ = static_cast<std::uint8_t>(0x80 | (run - kMinRun));
      *op++ = in[i];
      i += run;
      literal_start = i;
    } else {
      i += run;
    }
  }
  return flush_literals(in.size());
}

}  // namespace

Result<std::size_t> delta_rle_compress(ByteSpan src, MutableByteSpan dst) {
  const std::size_t n_samples = src.size() / 2;
  const bool odd = (src.size() % 2) != 0;

  // Stage 1-3: delta -> zigzag -> varint.
  Bytes varints;
  varints.reserve(n_samples + n_samples / 4);
  std::uint16_t prev = 0;
  for (std::size_t i = 0; i < n_samples; ++i) {
    const std::uint16_t sample = load_le16(src.data() + 2 * i);
    const auto delta = static_cast<std::int16_t>(
        static_cast<std::uint16_t>(sample - prev));
    prev = sample;
    append_varint(varints, zigzag16(delta));
  }

  std::uint8_t* op = dst.data();
  const std::uint8_t* const oend = dst.data() + dst.size();
  const auto overflow = [] {
    return resource_exhausted_error("delta_rle: destination buffer too small");
  };

  // Header: length of the varint stream, so the decoder knows where RLE ends.
  if (oend - op < 4) {
    return overflow();
  }
  store_le32(op, static_cast<std::uint32_t>(varints.size()));
  op += 4;

  // Stage 4: RLE.
  if (!rle_encode(varints, op, oend)) {
    return overflow();
  }

  if (odd) {
    if (op >= oend) {
      return overflow();
    }
    *op++ = src.back();
  }
  return static_cast<std::size_t>(op - dst.data());
}

Result<std::size_t> delta_rle_decompress(ByteSpan src, MutableByteSpan dst) {
  const std::size_t n_samples = dst.size() / 2;
  const bool odd = (dst.size() % 2) != 0;
  const auto corrupt = [](const char* what) {
    return data_loss_error(std::string("delta_rle: malformed stream: ") + what);
  };

  ByteReader reader(src);
  std::uint32_t varint_len = 0;
  if (!reader.u32(varint_len).is_ok()) {
    return corrupt("truncated header");
  }

  // Undo RLE into the varint stream.
  Bytes varints;
  varints.reserve(varint_len);
  while (varints.size() < varint_len) {
    std::uint8_t token = 0;
    if (!reader.u8(token).is_ok()) {
      return corrupt("truncated token");
    }
    if (token == 0) {
      return corrupt("zero token");
    }
    if ((token & 0x80) != 0) {
      const std::size_t run = (token & 0x7F) + kMinRun;
      std::uint8_t value = 0;
      if (!reader.u8(value).is_ok()) {
        return corrupt("truncated run value");
      }
      if (varints.size() + run > varint_len) {
        return corrupt("run overflows declared length");
      }
      varints.insert(varints.end(), run, value);
    } else {
      ByteSpan literals;
      if (!reader.raw(token, literals).is_ok()) {
        return corrupt("truncated literal run");
      }
      if (varints.size() + literals.size() > varint_len) {
        return corrupt("literals overflow declared length");
      }
      varints.insert(varints.end(), literals.begin(), literals.end());
    }
  }

  // Undo varint + zigzag + delta.
  std::size_t vpos = 0;
  std::uint16_t prev = 0;
  for (std::size_t i = 0; i < n_samples; ++i) {
    std::uint32_t z = 0;
    int shift = 0;
    while (true) {
      if (vpos >= varints.size()) {
        return corrupt("varint stream exhausted early");
      }
      const std::uint8_t byte = varints[vpos++];
      z |= static_cast<std::uint32_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        break;
      }
      shift += 7;
      if (shift > 21) {
        return corrupt("varint too long");
      }
    }
    if (z > 0xFFFF) {
      return corrupt("varint exceeds 16-bit range");
    }
    const std::int16_t delta = unzigzag16(static_cast<std::uint16_t>(z));
    prev = static_cast<std::uint16_t>(prev + static_cast<std::uint16_t>(delta));
    store_le16(dst.data() + 2 * i, prev);
  }
  if (vpos != varints.size()) {
    return corrupt("trailing varint bytes");
  }

  if (odd) {
    std::uint8_t last = 0;
    if (!reader.u8(last).is_ok()) {
      return corrupt("missing trailing odd byte");
    }
    dst[dst.size() - 1] = last;
  }
  if (reader.remaining() != 0) {
    return corrupt("trailing garbage");
  }
  return dst.size();
}

}  // namespace numastream
