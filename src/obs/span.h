// Chunk-lifecycle spans: the unit of record of the tracing subsystem.
//
// A Span is one stage's handling of one chunk — generate, compress, enqueue,
// send, receive, decompress, sink — with integer-nanosecond start/end times.
// The real pipeline stamps spans with wall-clock nanoseconds relative to the
// run's start; the simulated runtime stamps them with *virtual* time, so two
// same-seed simulation runs produce byte-identical traces. Everything in a
// Span is an integer on purpose: exporters never format floating point, so
// trace bytes are reproducible across compilers and libm versions.
#pragma once

#include <cstdint>
#include <string_view>

namespace numastream::obs {

/// The chunk lifecycle of Fig. 2, end to end. kEnqueue is the hand-off wait
/// into the compress->send (or receive->decompress) queue: its duration is
/// pure backpressure, which is exactly what a placement-induced stall looks
/// like on a timeline.
enum class Stage : std::uint8_t {
  kGenerate = 0,
  kCompress,
  kEnqueue,
  kSend,
  kReceive,
  kDecompress,
  kSink,
};

inline constexpr int kStageCount = 7;

std::string_view to_string(Stage stage) noexcept;

/// One stage's handling of one chunk. POD; 40 bytes; trivially copyable so
/// the SPSC rings move it without touching the heap.
struct Span {
  std::uint32_t stream_id = 0;
  std::uint64_t sequence = 0;
  Stage stage = Stage::kGenerate;
  std::uint32_t worker = 0;   ///< global worker id (see Tracer)
  std::int32_t domain = -1;   ///< NUMA domain of the worker; -1 = OS-managed
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;

  [[nodiscard]] std::uint64_t duration_ns() const noexcept {
    return end_ns >= start_ns ? end_ns - start_ns : 0;
  }

  friend bool operator==(const Span&, const Span&) = default;
};

}  // namespace numastream::obs
