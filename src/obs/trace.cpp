#include "obs/trace.h"

#include <algorithm>

namespace numastream::obs {

std::string_view to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::kGenerate:
      return "generate";
    case Stage::kCompress:
      return "compress";
    case Stage::kEnqueue:
      return "enqueue";
    case Stage::kSend:
      return "send";
    case Stage::kReceive:
      return "receive";
    case Stage::kDecompress:
      return "decompress";
    case Stage::kSink:
      return "sink";
  }
  return "unknown";
}

Tracer::Tracer(std::size_t workers, std::size_t ring_capacity) {
  rings_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    rings_.push_back(std::make_unique<SpanRing>(ring_capacity));
  }
}

void Tracer::record(const Span& span) noexcept {
  if (span.worker >= rings_.size()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  rings_[span.worker]->record(span);
}

std::vector<Span> Tracer::drain_sorted() {
  std::vector<Span> all;
  for (auto& ring : rings_) {
    auto spans = ring->drain();
    all.insert(all.end(), spans.begin(), spans.end());
  }
  std::sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    if (a.worker != b.worker) return a.worker < b.worker;
    if (a.stage != b.stage) return a.stage < b.stage;
    if (a.stream_id != b.stream_id) return a.stream_id < b.stream_id;
    return a.sequence < b.sequence;
  });
  return all;
}

std::uint64_t Tracer::dropped_spans() const noexcept {
  std::uint64_t total = rejected_.load(std::memory_order_relaxed);
  for (const auto& ring : rings_) {
    total += ring->dropped();
  }
  return total;
}

namespace {

/// Chrome-trace ts/dur are microseconds; emit "<us>.<ns-remainder>" with
/// pure integer arithmetic so no float formatting can vary by platform.
void append_us(std::string& out, std::uint64_t ns) {
  out += std::to_string(ns / 1000);
  out += '.';
  const std::uint64_t rem = ns % 1000;
  if (rem < 100) out += '0';
  if (rem < 10) out += '0';
  out += std::to_string(rem);
}

}  // namespace

std::string spans_to_jsonl(const std::vector<Span>& spans) {
  std::string out;
  out.reserve(spans.size() * 96);
  for (const Span& s : spans) {
    out += "{\"stream\":";
    out += std::to_string(s.stream_id);
    out += ",\"seq\":";
    out += std::to_string(s.sequence);
    out += ",\"stage\":\"";
    out += to_string(s.stage);
    out += "\",\"worker\":";
    out += std::to_string(s.worker);
    out += ",\"domain\":";
    out += std::to_string(s.domain);
    out += ",\"start_ns\":";
    out += std::to_string(s.start_ns);
    out += ",\"end_ns\":";
    out += std::to_string(s.end_ns);
    out += "}\n";
  }
  return out;
}

std::string spans_to_chrome_json(const std::vector<Span>& spans) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "\n{\"name\":\"";
    out += to_string(s.stage);
    out += "\",\"cat\":\"chunk\",\"ph\":\"X\",\"pid\":";
    // pid buckets the timeline by NUMA domain; -1 (unbound) maps to pid 0,
    // domain d to pid d+1, so Perfetto groups rows the way Fig. 2 does.
    out += std::to_string(s.domain + 1);
    out += ",\"tid\":";
    out += std::to_string(s.worker);
    out += ",\"ts\":";
    append_us(out, s.start_ns);
    out += ",\"dur\":";
    append_us(out, s.duration_ns());
    out += ",\"args\":{\"stream\":";
    out += std::to_string(s.stream_id);
    out += ",\"seq\":";
    out += std::to_string(s.sequence);
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace numastream::obs
