// Fixed-bucket log2 latency histograms.
//
// The throughput tables say *how much* moved; the paper's placement argument
// is really about *tail latency* — a cross-domain hop shows up first at p99,
// not in the mean. These histograms make that visible cheaply: recording is
// one bit_width() and one relaxed atomic increment into one of 64 buckets,
// so every chunk of every stage can be measured without a perceptible tax.
//
// Bucketing: bucket 0 holds exactly 0 ns; bucket b >= 1 holds durations in
// [2^(b-1), 2^b - 1] ns. Percentiles report the bucket's inclusive upper
// bound, so quantiles are conservative (never under-reported) and integral,
// which keeps every downstream export deterministic.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.h"

namespace numastream {
class TextTable;
}  // namespace numastream

namespace numastream::obs {

/// Plain comparable view of one histogram; what exporters and tests consume.
struct LatencySnapshot {
  std::uint64_t count = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
  std::uint64_t max_ns = 0;  ///< upper bound of the highest occupied bucket

  friend bool operator==(const LatencySnapshot&, const LatencySnapshot&) = default;
};

/// 64 log2 buckets of relaxed atomics; safe to record from any thread.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t duration_ns) noexcept {
    buckets_[bucket_index(duration_ns)].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept;

  /// Inclusive upper bound of the bucket holding quantile `q` in (0, 1];
  /// 0 when the histogram is empty.
  [[nodiscard]] std::uint64_t percentile_ns(double q) const noexcept;

  [[nodiscard]] LatencySnapshot snapshot() const noexcept;

  /// log2 bucket for a duration: 0 -> 0, else bit_width(ns).
  static int bucket_index(std::uint64_t duration_ns) noexcept;

  /// Inclusive upper bound of bucket `index` (0 for bucket 0, else 2^i - 1).
  static std::uint64_t bucket_upper_ns(int index) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Per-stage latency, split by the NUMA domain of the recording worker.
/// Sized once before the run (histograms hold atomics and cannot move);
/// domain -1 (OS-managed placement) gets its own row.
class StageLatencies {
 public:
  /// Tracks domains [-1, domain_count); records outside that range fold
  /// into the stage's overall histogram only.
  explicit StageLatencies(int domain_count);

  void record(Stage stage, int domain, std::uint64_t duration_ns) noexcept;

  [[nodiscard]] int domain_count() const noexcept { return domain_count_; }
  [[nodiscard]] LatencySnapshot stage_snapshot(Stage stage) const noexcept;
  [[nodiscard]] LatencySnapshot domain_snapshot(Stage stage, int domain) const noexcept;

  /// One row per stage that saw traffic: count, p50, p99, p999, max (µs).
  [[nodiscard]] TextTable table() const;

  /// Stage rows expanded per NUMA domain that saw traffic.
  [[nodiscard]] TextTable domain_table() const;

 private:
  [[nodiscard]] const LatencyHistogram* domain_histogram(Stage stage, int domain) const noexcept;

  int domain_count_;
  std::array<LatencyHistogram, kStageCount> overall_{};
  // [stage * (domain_count_ + 1) + (domain + 1)]; flat so nothing reallocates.
  std::vector<LatencyHistogram> per_domain_;
};

}  // namespace numastream::obs
