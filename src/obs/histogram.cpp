#include "obs/histogram.h"

#include <bit>
#include <cmath>

#include "metrics/table.h"

namespace numastream::obs {

int LatencyHistogram::bucket_index(std::uint64_t duration_ns) noexcept {
  return duration_ns == 0 ? 0 : std::bit_width(duration_ns);
}

std::uint64_t LatencyHistogram::bucket_upper_ns(int index) noexcept {
  if (index <= 0) {
    return 0;
  }
  if (index >= kBuckets) {
    return ~std::uint64_t{0};
  }
  return (std::uint64_t{1} << index) - 1;
}

std::uint64_t LatencyHistogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t LatencyHistogram::percentile_ns(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) {
    return 0;
  }
  // Rank of the quantile sample, 1-based; q=1 is the max.
  const auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      return bucket_upper_ns(i);
    }
  }
  return bucket_upper_ns(kBuckets - 1);
}

LatencySnapshot LatencyHistogram::snapshot() const noexcept {
  LatencySnapshot snap;
  snap.count = count();
  if (snap.count == 0) {
    return snap;
  }
  snap.p50_ns = percentile_ns(0.50);
  snap.p99_ns = percentile_ns(0.99);
  snap.p999_ns = percentile_ns(0.999);
  for (int i = kBuckets - 1; i >= 0; --i) {
    if (buckets_[i].load(std::memory_order_relaxed) > 0) {
      snap.max_ns = bucket_upper_ns(i);
      break;
    }
  }
  return snap;
}

StageLatencies::StageLatencies(int domain_count)
    : domain_count_(domain_count < 0 ? 0 : domain_count),
      per_domain_(static_cast<std::size_t>(kStageCount) *
                  static_cast<std::size_t>(domain_count_ + 1)) {}

void StageLatencies::record(Stage stage, int domain, std::uint64_t duration_ns) noexcept {
  const auto s = static_cast<std::size_t>(stage);
  if (s >= static_cast<std::size_t>(kStageCount)) {
    return;
  }
  overall_[s].record(duration_ns);
  if (domain >= -1 && domain < domain_count_) {
    per_domain_[s * static_cast<std::size_t>(domain_count_ + 1) +
                static_cast<std::size_t>(domain + 1)]
        .record(duration_ns);
  }
}

const LatencyHistogram* StageLatencies::domain_histogram(Stage stage, int domain) const noexcept {
  const auto s = static_cast<std::size_t>(stage);
  if (s >= static_cast<std::size_t>(kStageCount) || domain < -1 || domain >= domain_count_) {
    return nullptr;
  }
  return &per_domain_[s * static_cast<std::size_t>(domain_count_ + 1) +
                      static_cast<std::size_t>(domain + 1)];
}

LatencySnapshot StageLatencies::stage_snapshot(Stage stage) const noexcept {
  const auto s = static_cast<std::size_t>(stage);
  return s < static_cast<std::size_t>(kStageCount) ? overall_[s].snapshot() : LatencySnapshot{};
}

LatencySnapshot StageLatencies::domain_snapshot(Stage stage, int domain) const noexcept {
  const LatencyHistogram* hist = domain_histogram(stage, domain);
  return hist != nullptr ? hist->snapshot() : LatencySnapshot{};
}

namespace {

double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

void add_snapshot_row(TextTable& table, const std::string& label,
                      const LatencySnapshot& snap) {
  table.add_row({label, std::to_string(snap.count), fmt_double(to_us(snap.p50_ns), 1),
                 fmt_double(to_us(snap.p99_ns), 1), fmt_double(to_us(snap.p999_ns), 1),
                 fmt_double(to_us(snap.max_ns), 1)});
}

}  // namespace

TextTable StageLatencies::table() const {
  TextTable table({"stage", "count", "p50_us", "p99_us", "p999_us", "max_us"});
  for (int s = 0; s < kStageCount; ++s) {
    const auto stage = static_cast<Stage>(s);
    const LatencySnapshot snap = stage_snapshot(stage);
    if (snap.count == 0) {
      continue;
    }
    add_snapshot_row(table, std::string(to_string(stage)), snap);
  }
  return table;
}

TextTable StageLatencies::domain_table() const {
  TextTable table({"stage", "domain", "count", "p50_us", "p99_us", "p999_us", "max_us"});
  for (int s = 0; s < kStageCount; ++s) {
    const auto stage = static_cast<Stage>(s);
    for (int d = -1; d < domain_count_; ++d) {
      const LatencySnapshot snap = domain_snapshot(stage, d);
      if (snap.count == 0) {
        continue;
      }
      table.add_row({std::string(to_string(stage)), std::to_string(d),
                     std::to_string(snap.count), fmt_double(to_us(snap.p50_ns), 1),
                     fmt_double(to_us(snap.p99_ns), 1), fmt_double(to_us(snap.p999_ns), 1),
                     fmt_double(to_us(snap.max_ns), 1)});
    }
  }
  return table;
}

}  // namespace numastream::obs
