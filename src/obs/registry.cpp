#include "obs/registry.h"

#include <algorithm>

#include "metrics/fault_counters.h"
#include "metrics/health_counters.h"
#include "metrics/overload_counters.h"
#include "metrics/resume_counters.h"
#include "metrics/table.h"

namespace numastream::obs {

double MetricsSnapshot::value(const std::string& name) const noexcept {
  for (const auto& sample : samples) {
    if (sample.name == name) {
      return sample.value;
    }
  }
  return 0;
}

bool MetricsSnapshot::has(const std::string& name) const noexcept {
  return std::any_of(samples.begin(), samples.end(),
                     [&](const MetricSample& s) { return s.name == name; });
}

Status MetricsRegistry::register_locked(std::string name, std::function<double()> read) {
  if (name.empty()) {
    return invalid_argument_error("registry: metric name must not be empty");
  }
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const Entry& e, const std::string& n) { return e.name < n; });
  if (pos != entries_.end() && pos->name == name) {
    return invalid_argument_error("registry: metric '" + name + "' already registered");
  }
  entries_.insert(pos, Entry{std::move(name), std::move(read)});
  return Status::ok();
}

Status MetricsRegistry::register_counter(const std::string& name,
                                         const std::atomic<std::uint64_t>* counter) {
  if (counter == nullptr) {
    return invalid_argument_error("registry: counter '" + name + "' is null");
  }
  std::lock_guard lock(mutex_);
  return register_locked(name, [counter] {
    return static_cast<double>(counter->load(std::memory_order_relaxed));
  });
}

Status MetricsRegistry::register_gauge(const std::string& name,
                                       std::function<double()> gauge) {
  if (!gauge) {
    return invalid_argument_error("registry: gauge '" + name + "' has no reader");
  }
  std::lock_guard lock(mutex_);
  return register_locked(name, std::move(gauge));
}

void MetricsRegistry::unregister(const std::string& name) {
  std::lock_guard lock(mutex_);
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const Entry& e, const std::string& n) { return e.name < n; });
  if (pos != entries_.end() && pos->name == name) {
    entries_.erase(pos);
  }
}

namespace {

struct NamedCounter {
  const char* name;
  const std::atomic<std::uint64_t>* counter;
};

}  // namespace

// The three ledger helpers share one shape: build the (name, counter) list,
// register all-or-nothing so a half-registered ledger can't linger.
#define NS_REGISTER_LEDGER(pairs)                                        \
  do {                                                                   \
    std::vector<std::string> registered;                                 \
    for (const NamedCounter& nc : (pairs)) {                             \
      Status status = register_counter(prefix + "." + nc.name, nc.counter); \
      if (!status.is_ok()) {                                             \
        for (const auto& name : registered) {                            \
          unregister(name);                                              \
        }                                                                \
        return status;                                                   \
      }                                                                  \
      registered.push_back(prefix + "." + nc.name);                      \
    }                                                                    \
    return Status::ok();                                                 \
  } while (false)

Status MetricsRegistry::register_fault_counters(const std::string& prefix,
                                                const FaultCounters& counters) {
  const NamedCounter pairs[] = {
      {"injected_disconnects", &counters.injected_disconnects},
      {"injected_torn_writes", &counters.injected_torn_writes},
      {"injected_bitflips", &counters.injected_bitflips},
      {"injected_short_writes", &counters.injected_short_writes},
      {"injected_stalls", &counters.injected_stalls},
      {"injected_throttles", &counters.injected_throttles},
      {"injected_crashes", &counters.injected_crashes},
      {"injected_accept_failures", &counters.injected_accept_failures},
      {"reconnects", &counters.reconnects},
      {"dial_retries", &counters.dial_retries},
      {"connections_recycled", &counters.connections_recycled},
      {"message_resyncs", &counters.message_resyncs},
      {"frame_resyncs", &counters.frame_resyncs},
      {"corrupt_frames", &counters.corrupt_frames},
      {"dropped_frames", &counters.dropped_frames},
      {"duplicate_frames", &counters.duplicate_frames},
      {"degraded_chunks", &counters.degraded_chunks},
      {"watchdog_trips", &counters.watchdog_trips},
  };
  NS_REGISTER_LEDGER(pairs);
}

Status MetricsRegistry::register_overload_counters(const std::string& prefix,
                                                   const OverloadCounters& counters) {
  const NamedCounter pairs[] = {
      {"shed_newest", &counters.shed_newest},
      {"shed_oldest", &counters.shed_oldest},
      {"priority_evictions", &counters.priority_evictions},
      {"credit_stalls", &counters.credit_stalls},
      {"credit_grants", &counters.credit_grants},
      {"budget_stalls", &counters.budget_stalls},
      {"budget_rejections", &counters.budget_rejections},
      {"slow_streams_evicted", &counters.slow_streams_evicted},
      {"evicted_chunks", &counters.evicted_chunks},
      {"drain_requests", &counters.drain_requests},
      {"drain_timeouts", &counters.drain_timeouts},
      {"peak_bytes_in_flight", &counters.peak_bytes_in_flight},
  };
  NS_REGISTER_LEDGER(pairs);
}

Status MetricsRegistry::register_health_counters(const std::string& prefix,
                                                 const HealthCounters& counters) {
  const NamedCounter pairs[] = {
      {"degraded_detections", &counters.degraded_detections},
      {"failure_detections", &counters.failure_detections},
      {"recoveries", &counters.recoveries},
      {"replans", &counters.replans},
      {"migrations", &counters.migrations},
      {"time_in_degraded_ms", &counters.time_in_degraded_ms},
  };
  NS_REGISTER_LEDGER(pairs);
}

Status MetricsRegistry::register_resume_counters(const std::string& prefix,
                                                 const ResumeCounters& counters) {
  const NamedCounter pairs[] = {
      {"crashes_observed", &counters.crashes_observed},
      {"resume_handshakes", &counters.resume_handshakes},
      {"journal_records_written", &counters.journal_records_written},
      {"journal_records_replayed", &counters.journal_records_replayed},
      {"torn_records_truncated", &counters.torn_records_truncated},
      {"duplicates_suppressed", &counters.duplicates_suppressed},
      {"duplicate_deliveries_suppressed",
       &counters.duplicate_deliveries_suppressed},
      {"replayed_chunks", &counters.replayed_chunks},
      {"rework_bytes", &counters.rework_bytes},
      {"recovery_wall_ms", &counters.recovery_wall_ms},
  };
  NS_REGISTER_LEDGER(pairs);
}

#undef NS_REGISTER_LEDGER

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

MetricsSnapshot MetricsRegistry::snapshot(double time_seconds) const {
  MetricsSnapshot snap;
  snap.time_seconds = time_seconds;
  std::lock_guard lock(mutex_);
  snap.samples.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    snap.samples.push_back({entry.name, entry.read()});
  }
  return snap;
}

void SnapshotSeries::append(MetricsSnapshot snapshot) {
  snapshots_.push_back(std::move(snapshot));
}

std::string SnapshotSeries::to_csv() const {
  std::string out = "time_seconds,metric,value\n";
  for (const auto& snap : snapshots_) {
    const std::string time = fmt_double(snap.time_seconds, 3);
    for (const auto& sample : snap.samples) {
      out += time;
      out += ',';
      out += csv_escape(sample.name);
      out += ',';
      out += fmt_double(sample.value, 3);
      out += '\n';
    }
  }
  return out;
}

std::string SnapshotSeries::to_jsonl() const {
  std::string out;
  for (const auto& snap : snapshots_) {
    out += "{\"time_s\":";
    out += fmt_double(snap.time_seconds, 3);
    out += ",\"metrics\":{";
    bool first = true;
    for (const auto& sample : snap.samples) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"';
      out += sample.name;  // dotted identifiers; nothing to JSON-escape
      out += "\":";
      out += fmt_double(sample.value, 3);
    }
    out += "}}\n";
  }
  return out;
}

TextTable SnapshotSeries::latest_table() const {
  TextTable table({"metric", "value"});
  if (snapshots_.empty()) {
    return table;
  }
  for (const auto& sample : snapshots_.back().samples) {
    table.add_row({sample.name, fmt_double(sample.value, 3)});
  }
  return table;
}

SnapshotSampler::SnapshotSampler(MetricsRegistry* registry, std::uint64_t interval_ms)
    : registry_(registry), interval_ms_(interval_ms == 0 ? 1 : interval_ms) {}

SnapshotSampler::~SnapshotSampler() { stop(); }

void SnapshotSampler::start() {
  if (thread_.joinable()) {
    return;
  }
  stop_.store(false, std::memory_order_relaxed);
  start_time_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { run(); });
}

void SnapshotSampler::stop() {
  if (!thread_.joinable()) {
    return;
  }
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
  series_.append(registry_->snapshot(elapsed_seconds()));
}

double SnapshotSampler::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time_)
      .count();
}

void SnapshotSampler::run() {
  const auto interval = std::chrono::milliseconds(interval_ms_);
  auto next = std::chrono::steady_clock::now() + interval;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (std::chrono::steady_clock::now() >= next) {
      series_.append(registry_->snapshot(elapsed_seconds()));
      next += interval;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace numastream::obs
