// MetricsRegistry: one flat namespace over every number the runtime tracks.
//
// The pipeline already keeps three counter ledgers (fault, overload, health)
// plus ad-hoc gauges scattered through the stages — queue depths, credit
// occupancy, budget bytes in flight. Each is observable on its own, but
// correlating them ("did the queue spike when the credit window closed?")
// required hand-stitching snapshots. The registry unifies them: counters and
// gauges register under dotted names ("fault.reconnects",
// "send.queue_depth"), a snapshot reads every source at one instant, and the
// sampler turns periodic snapshots into a time series exportable as a table,
// CSV, or JSONL.
//
// Registration is not hot-path: it takes a mutex and happens at pipeline
// setup/teardown. Reading a counter is a relaxed atomic load; reading a
// gauge calls its closure, which must stay cheap and thread-safe. The
// registry BORROWS every registered source — callers unregister (or let a
// RegistrationGuard do it) before the source dies.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace numastream {
class TextTable;
class FaultCounters;
class OverloadCounters;
class HealthCounters;
class ResumeCounters;
}  // namespace numastream

namespace numastream::obs {

/// One metric read at one instant.
struct MetricSample {
  std::string name;
  double value = 0;

  friend bool operator==(const MetricSample&, const MetricSample&) = default;
};

/// All registered metrics read back-to-back, stamped with the caller's
/// clock (wall seconds in the real pipeline, virtual seconds in simulation).
struct MetricsSnapshot {
  double time_seconds = 0;
  std::vector<MetricSample> samples;  // sorted by name

  /// Value of `name`, or 0 when absent.
  [[nodiscard]] double value(const std::string& name) const noexcept;
  [[nodiscard]] bool has(const std::string& name) const noexcept;
};

class MetricsRegistry {
 public:
  /// Registers a borrowed counter; read with a relaxed load at snapshot
  /// time. INVALID_ARGUMENT on an empty or taken name or a null pointer.
  Status register_counter(const std::string& name,
                          const std::atomic<std::uint64_t>* counter);

  /// Registers a gauge closure, called at snapshot time. Must be cheap and
  /// safe to call from the sampler thread.
  Status register_gauge(const std::string& name, std::function<double()> gauge);

  /// Removes a metric; unknown names are a no-op (teardown is idempotent).
  void unregister(const std::string& name);

  /// Registers every counter of the ledger under "<prefix>.<counter>".
  /// Fails atomically: either all names register or none do.
  Status register_fault_counters(const std::string& prefix, const FaultCounters& counters);
  Status register_overload_counters(const std::string& prefix,
                                    const OverloadCounters& counters);
  Status register_health_counters(const std::string& prefix, const HealthCounters& counters);
  Status register_resume_counters(const std::string& prefix, const ResumeCounters& counters);

  [[nodiscard]] std::size_t size() const;

  /// Reads every metric, sorted by name for deterministic export.
  [[nodiscard]] MetricsSnapshot snapshot(double time_seconds) const;

 private:
  Status register_locked(std::string name, std::function<double()> read);

  mutable std::mutex mutex_;
  struct Entry {
    std::string name;
    std::function<double()> read;
  };
  std::vector<Entry> entries_;  // kept sorted by name
};

/// Unregisters a batch of names on destruction — the RAII companion for
/// sources whose lifetime ends with a pipeline run.
class RegistrationGuard {
 public:
  RegistrationGuard() = default;
  RegistrationGuard(MetricsRegistry* registry, std::vector<std::string> names)
      : registry_(registry), names_(std::move(names)) {}
  RegistrationGuard(const RegistrationGuard&) = delete;
  RegistrationGuard& operator=(const RegistrationGuard&) = delete;
  RegistrationGuard(RegistrationGuard&& other) noexcept { *this = std::move(other); }
  RegistrationGuard& operator=(RegistrationGuard&& other) noexcept {
    release();
    registry_ = other.registry_;
    names_ = std::move(other.names_);
    other.registry_ = nullptr;
    other.names_.clear();
    return *this;
  }
  ~RegistrationGuard() { release(); }

  void release() {
    if (registry_ != nullptr) {
      for (const auto& name : names_) {
        registry_->unregister(name);
      }
    }
    registry_ = nullptr;
    names_.clear();
  }

 private:
  MetricsRegistry* registry_ = nullptr;
  std::vector<std::string> names_;
};

/// Periodic snapshot series plus its exporters. Feed it snapshots yourself
/// (simulation: one per virtual interval) or run a wall-clock sampler
/// thread over a registry.
class SnapshotSeries {
 public:
  void append(MetricsSnapshot snapshot);
  [[nodiscard]] const std::vector<MetricsSnapshot>& snapshots() const noexcept {
    return snapshots_;
  }

  /// Long-format CSV: time_seconds,metric,value — one row per sample,
  /// RFC-4180-escaped via the shared csv_escape().
  [[nodiscard]] std::string to_csv() const;

  /// One JSON object per snapshot: {"time_s":..,"metrics":{"name":value,..}}.
  [[nodiscard]] std::string to_jsonl() const;

  /// Last snapshot as a "metric", "value" table (empty table when no
  /// snapshots were taken).
  [[nodiscard]] TextTable latest_table() const;

 private:
  std::vector<MetricsSnapshot> snapshots_;
};

/// Wall-clock sampler: a background thread snapshotting `registry` every
/// `interval_ms` into a SnapshotSeries. Times are seconds since start().
/// For the simulated runtime, don't use this — drive SnapshotSeries directly
/// on virtual time.
class SnapshotSampler {
 public:
  /// Borrows `registry`, which must outlive the sampler.
  SnapshotSampler(MetricsRegistry* registry, std::uint64_t interval_ms);
  ~SnapshotSampler();
  SnapshotSampler(const SnapshotSampler&) = delete;
  SnapshotSampler& operator=(const SnapshotSampler&) = delete;

  void start();
  /// Stops the thread and takes one final snapshot, so even sub-interval
  /// runs export at least one row.
  void stop();

  /// Only valid after stop(): the sampler thread appends concurrently.
  [[nodiscard]] const SnapshotSeries& series() const noexcept { return series_; }

 private:
  void run();
  [[nodiscard]] double elapsed_seconds() const;

  MetricsRegistry* registry_;
  std::uint64_t interval_ms_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  SnapshotSeries series_;
  std::chrono::steady_clock::time_point start_time_{};
};

}  // namespace numastream::obs
