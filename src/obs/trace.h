// Tracer: per-worker span rings and deterministic trace export.
//
// Recording must never perturb the pipeline it observes, so each worker owns
// a SpanRing — a drop-oldest wrapper over the wait-free SpscRing — and a
// record() is two index loads and a 40-byte store. When a ring fills, the
// oldest span is discarded and a per-ring counter notes the loss; tracing
// degrades by forgetting history, never by blocking a stage.
//
// Drop-oldest bends the SPSC contract (the recording thread both pushes and
// pops), which is safe only because drains are phase-separated from
// recording: the real pipeline drains after its workers are joined, and the
// simulated runtime is single-threaded to begin with. SpanRing documents and
// relies on that discipline.
//
// Export is deterministic by construction: drain_sorted() orders spans by a
// total key (start_ns, worker, stage, stream, sequence) and the JSONL /
// Chrome-trace writers format integers only, so two same-seed simulation
// runs emit byte-identical traces.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "concurrency/spsc_ring.h"
#include "obs/span.h"

namespace numastream::obs {

/// Bounded drop-oldest span buffer for one worker thread.
class SpanRing {
 public:
  explicit SpanRing(std::size_t min_capacity) : ring_(min_capacity) {}

  /// Records a span, evicting the oldest one when full. Only the owning
  /// worker thread may call this, and never concurrently with drain().
  void record(const Span& span) noexcept {
    Span item = span;
    while (!ring_.try_push(item)) {
      if (ring_.try_pop()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  /// Moves out everything buffered, oldest first. Must not race record().
  std::vector<Span> drain() {
    std::vector<Span> out;
    out.reserve(ring_.size_approx());
    while (auto span = ring_.try_pop()) {
      out.push_back(*span);
    }
    return out;
  }

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  SpscRing<Span> ring_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Owns one SpanRing per worker. Sized once before the run starts; workers
/// record into their own ring by index with no coordination.
class Tracer {
 public:
  /// `workers` rings of `ring_capacity` spans each.
  Tracer(std::size_t workers, std::size_t ring_capacity);

  [[nodiscard]] std::size_t worker_count() const noexcept { return rings_.size(); }

  /// Records `span` into worker `span.worker`'s ring. A worker id beyond the
  /// ring set counts the span as dropped rather than aborting: lifecycle
  /// bookkeeping must never take down the pipeline.
  void record(const Span& span) noexcept;

  /// Drains every ring and returns the spans in the canonical deterministic
  /// order (start_ns, worker, stage, stream_id, sequence).
  [[nodiscard]] std::vector<Span> drain_sorted();

  /// Spans evicted ring-full plus spans rejected for bad worker ids.
  [[nodiscard]] std::uint64_t dropped_spans() const noexcept;

 private:
  std::vector<std::unique_ptr<SpanRing>> rings_;
  std::atomic<std::uint64_t> rejected_{0};
};

/// One JSON object per line:
/// {"stream":0,"seq":3,"stage":"compress","worker":1,"domain":0,"start_ns":10,"end_ns":25}
/// Integer fields only; byte-identical for identical span sequences.
std::string spans_to_jsonl(const std::vector<Span>& spans);

/// Chrome-trace / Perfetto "traceEvents" JSON: one complete ("ph":"X") event
/// per span, microsecond ts/dur as integer nanoseconds scaled by writing
/// ns/1000 and ns%1000 explicitly — no floating point anywhere.
std::string spans_to_chrome_json(const std::vector<Span>& spans);

}  // namespace numastream::obs
