#include "common/units.h"

#include <cstdio>

namespace numastream {

std::string format_gbps(double bytes_per_sec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f Gbps", bytes_per_sec_to_gbps(bytes_per_sec));
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB",
                  static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB",
                  static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace numastream
