// Error handling for numastream.
//
// The library reports recoverable failures through Status / Result<T> rather
// than exceptions: streaming pipelines run on worker threads where an escaping
// exception would terminate the process, and the hot path must be able to
// propagate "queue closed" or "corrupt frame" conditions cheaply.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/assert.h"

namespace numastream {

/// Broad classification of a failure. Mirrors the small set of conditions the
/// runtime actually distinguishes when deciding how to react.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller violated an API precondition that is data-dependent
  kOutOfRange,        ///< index/offset beyond a container or format limit
  kDataLoss,          ///< corrupt or truncated encoded data
  kUnavailable,       ///< transient: peer not yet reachable, queue closed, ...
  kResourceExhausted, ///< buffer/queue capacity exceeded
  kInternal,          ///< invariant violation that was recoverable
  kUnimplemented,     ///< feature not supported on this platform/build
  kDeadlineExceeded,  ///< watchdog/timeout: operation made no progress in time
};

/// Human-readable name of a StatusCode (stable, for logs and tests).
std::string_view status_code_name(StatusCode code) noexcept;

/// A success-or-error value. Cheap to copy in the success case (no allocation).
class Status {
 public:
  /// Success.
  Status() noexcept = default;

  /// Failure with a classification and a human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    NS_DCHECK(code != StatusCode::kOk, "error Status must carry a non-OK code");
  }

  static Status ok() noexcept { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Convenience constructors matching the StatusCode values.
Status invalid_argument_error(std::string message);
Status out_of_range_error(std::string message);
Status data_loss_error(std::string message);
Status unavailable_error(std::string message);
Status resource_exhausted_error(std::string message);
Status internal_error(std::string message);
Status unimplemented_error(std::string message);
Status deadline_exceeded_error(std::string message);

/// A value or an error. `value()` aborts if called on an error Result, so
/// callers must test `ok()` (or use `value_or`).
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {  // NOLINT
    NS_DCHECK(!std::get<Status>(storage_).is_ok(),
              "Result constructed from an OK status carries no value");
  }

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(storage_); }

  [[nodiscard]] const T& value() const& {
    NS_CHECK(ok(), "Result::value() called on an error");
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    NS_CHECK(ok(), "Result::value() called on an error");
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    NS_CHECK(ok(), "Result::value() called on an error");
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

  [[nodiscard]] Status status() const {
    return ok() ? Status::ok() : std::get<Status>(storage_);
  }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace numastream

/// Early-return helper: evaluates `expr` (a Status); returns it on error.
#define NS_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::numastream::Status ns_status_tmp_ = (expr); \
    if (!ns_status_tmp_.is_ok()) {                \
      return ns_status_tmp_;                      \
    }                                             \
  } while (0)
