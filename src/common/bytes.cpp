#include "common/bytes.h"

#include <cstdio>

namespace numastream {

std::string hex_preview(ByteSpan data, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = std::min(data.size(), max_bytes);
  out.reserve(n * 3 + 4);
  char buf[4];
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), "%02x", data[i]);
    if (i != 0) {
      out += ' ';
    }
    out += buf;
  }
  if (data.size() > max_bytes) {
    out += " ...";
  }
  return out;
}

}  // namespace numastream
