// Unit helpers shared by the runtime, the simulator and the benchmarks.
//
// Throughputs in this codebase are carried as double "bytes per second" and
// only converted to Gbps/GiB at presentation boundaries, mirroring how the
// paper reports its results (network figures in Gbps, codec figures in GB/s).
#pragma once

#include <cstdint>
#include <string>

namespace numastream {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// The paper's unit of streaming work: one X-ray projection of
/// 2048 x 2700 uint16 pixels = 11.0592 MB exactly.
inline constexpr std::uint64_t kProjectionChunkBytes = 11'059'200ULL;

/// Decimal gigabit per second expressed in bytes per second.
inline constexpr double kGbpsInBytesPerSec = 1e9 / 8.0;

constexpr double gbps_to_bytes_per_sec(double gbps) noexcept {
  return gbps * kGbpsInBytesPerSec;
}

constexpr double bytes_per_sec_to_gbps(double bytes_per_sec) noexcept {
  return bytes_per_sec / kGbpsInBytesPerSec;
}

constexpr double bytes_per_sec_to_gib_per_sec(double bytes_per_sec) noexcept {
  return bytes_per_sec / static_cast<double>(kGiB);
}

/// "12.34 Gbps" with two decimals; for log lines and bench tables.
std::string format_gbps(double bytes_per_sec);

/// "1.23 GiB" / "45.6 MiB" / "789 B" — picks the largest sensible unit.
std::string format_bytes(std::uint64_t bytes);

}  // namespace numastream
