// Lightweight runtime checking macros used across numastream.
//
// NS_CHECK(cond, msg)    - always-on invariant check; aborts with a message.
// NS_DCHECK(cond, msg)   - debug-only check (compiled out in NDEBUG builds).
// NS_UNREACHABLE(msg)    - marks impossible control flow.
//
// These are deliberately macros (not functions) so that the failure message
// carries the file/line of the call site.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace numastream::detail {

[[noreturn]] inline void check_failed(const char* file, int line, const char* cond,
                                      const char* msg) {
  std::fprintf(stderr, "numastream check failed at %s:%d: (%s) %s\n", file, line, cond,
               msg);
  std::abort();
}

}  // namespace numastream::detail

#define NS_CHECK(cond, msg)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::numastream::detail::check_failed(__FILE__, __LINE__, #cond, msg); \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define NS_DCHECK(cond, msg) \
  do {                       \
  } while (0)
#else
#define NS_DCHECK(cond, msg) NS_CHECK(cond, msg)
#endif

#define NS_UNREACHABLE(msg) \
  ::numastream::detail::check_failed(__FILE__, __LINE__, "unreachable", msg)
