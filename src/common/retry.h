// Retry with exponential backoff and deterministic jitter.
//
// Long-lived streams between facilities survive link flaps and peer restarts
// only if every transient failure is retried with bounded, jittered backoff.
// RetryPolicy describes the schedule; Backoff walks it; with_retry() wraps any
// Result-returning operation. Jitter comes from the repo's deterministic RNG
// (common/rng.h) seeded by the caller, so a fault-injection run replays the
// exact same retry timeline on every execution — the property the
// fault-tolerance tests assert.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <utility>

#include "common/rng.h"
#include "common/status.h"

namespace numastream {

struct RetryPolicy {
  /// Total attempts, including the first (1 = no retries).
  int max_attempts = 5;
  /// Delay before the first retry.
  std::uint64_t initial_backoff_us = 1000;
  /// Ceiling for the exponential growth.
  std::uint64_t max_backoff_us = 250000;
  /// Backoff growth factor between consecutive retries.
  double multiplier = 2.0;
  /// Fraction of each delay that is randomized: the delay is drawn uniformly
  /// from [base*(1-jitter), base]. 0 disables jitter.
  double jitter = 0.5;
  /// Elapsed-time budget across the whole retry loop: once the cumulative
  /// backoff handed out reaches this many microseconds, next_delay() gives
  /// up even with attempts left — a dead peer fails fast instead of burning
  /// the full attempt budget. 0 = no time cap. Counted deterministically
  /// from the delays themselves (not a wall clock), so seeded replays keep
  /// their exact retry timeline.
  std::uint64_t max_elapsed_us = 0;

  [[nodiscard]] Status validate() const;

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

/// Walks a RetryPolicy's schedule. Not thread-safe; one per retry loop.
class Backoff {
 public:
  Backoff(const RetryPolicy& policy, std::uint64_t seed);

  /// Delay to sleep before the next retry, or nullopt once the policy's
  /// attempts — or its elapsed-time budget — are exhausted. Advances the
  /// schedule.
  std::optional<std::chrono::microseconds> next_delay();

  /// Retries handed out so far.
  [[nodiscard]] int retries() const noexcept { return retries_; }

  /// Cumulative backoff handed out so far (the deterministic clock the
  /// elapsed budget is charged against).
  [[nodiscard]] std::uint64_t elapsed_us() const noexcept { return elapsed_us_; }

  /// Restarts the schedule (e.g. after a successful operation, so the next
  /// failure backs off from the beginning again).
  void reset();

 private:
  RetryPolicy policy_;
  Rng rng_;
  int retries_ = 0;
  double base_us_ = 0;
  std::uint64_t elapsed_us_ = 0;
};

/// Interruptible sleep: dozes in short slices so a watchdog-driven `cancel`
/// flag cuts a long backoff short. Returns false when canceled.
bool interruptible_sleep(std::chrono::microseconds delay,
                         const std::atomic<bool>* cancel = nullptr);

/// Whether a failure is worth retrying at all: only transient conditions
/// (peer not reachable yet / connection reset) qualify; corrupt data or
/// caller bugs never do.
[[nodiscard]] inline bool is_retryable(const Status& status) noexcept {
  return status.code() == StatusCode::kUnavailable;
}

/// Runs `fn` (returning Result<T>) until it succeeds, fails with a
/// non-retryable code, the policy's attempts run out, or `cancel` is raised.
/// Returns the last failure when giving up. `retries`, when supplied, is
/// incremented once per retry performed (for FaultCounters accounting).
template <typename Fn>
auto with_retry(const RetryPolicy& policy, std::uint64_t seed, Fn&& fn,
                std::atomic<std::uint64_t>* retries = nullptr,
                const std::atomic<bool>* cancel = nullptr) -> decltype(fn()) {
  Backoff backoff(policy, seed);
  while (true) {
    auto result = fn();
    if (result.ok() || !is_retryable(result.status())) {
      return result;
    }
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return result;
    }
    const auto delay = backoff.next_delay();
    if (!delay.has_value()) {
      return result;
    }
    if (retries != nullptr) {
      retries->fetch_add(1, std::memory_order_relaxed);
    }
    if (!interruptible_sleep(*delay, cancel)) {
      return result;
    }
  }
}

}  // namespace numastream
