#include "common/status.h"

namespace numastream {

std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) {
    return "OK";
  }
  std::string out(status_code_name(code_));
  out += ": ";
  out += message_;
  return out;
}

Status invalid_argument_error(std::string message) {
  return {StatusCode::kInvalidArgument, std::move(message)};
}
Status out_of_range_error(std::string message) {
  return {StatusCode::kOutOfRange, std::move(message)};
}
Status data_loss_error(std::string message) {
  return {StatusCode::kDataLoss, std::move(message)};
}
Status unavailable_error(std::string message) {
  return {StatusCode::kUnavailable, std::move(message)};
}
Status resource_exhausted_error(std::string message) {
  return {StatusCode::kResourceExhausted, std::move(message)};
}
Status internal_error(std::string message) {
  return {StatusCode::kInternal, std::move(message)};
}
Status unimplemented_error(std::string message) {
  return {StatusCode::kUnimplemented, std::move(message)};
}
Status deadline_exceeded_error(std::string message) {
  return {StatusCode::kDeadlineExceeded, std::move(message)};
}

}  // namespace numastream
