// Deterministic pseudo-random number generation.
//
// Everything in numastream that needs randomness (synthetic data generation,
// property tests, simulated OS scheduling jitter) takes an explicit generator
// seeded by the caller, so experiments and tests are reproducible bit-for-bit.
//
// The generator is xoshiro256**, seeded through splitmix64 as its author
// recommends. Both are implemented here from the published reference
// algorithms; no global state is used anywhere.
#pragma once

#include <cstdint>

namespace numastream {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used to expand a single user seed into xoshiro's 256-bit state.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator, so it
/// can drive <random> distributions, but the helpers below avoid <random>'s
/// cross-platform nondeterminism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds deterministically from a single value.
  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  std::uint64_t operator()() noexcept { return next_u64(); }
  std::uint64_t next_u64() noexcept;

  /// Uniform value in [0, bound). `bound` must be nonzero. Uses Lemire's
  /// multiply-shift rejection method for an unbiased result.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Standard normal variate (Marsaglia polar method; deterministic).
  double next_gaussian() noexcept;

 private:
  std::uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace numastream
