#include "common/retry.h"

#include <algorithm>
#include <thread>

namespace numastream {

Status RetryPolicy::validate() const {
  if (max_attempts < 1) {
    return invalid_argument_error("retry: max_attempts must be >= 1");
  }
  if (multiplier < 1.0) {
    return invalid_argument_error("retry: multiplier must be >= 1");
  }
  if (jitter < 0.0 || jitter > 1.0) {
    return invalid_argument_error("retry: jitter must be in [0, 1]");
  }
  if (max_backoff_us < initial_backoff_us) {
    return invalid_argument_error("retry: max_backoff below initial_backoff");
  }
  return Status::ok();
}

Backoff::Backoff(const RetryPolicy& policy, std::uint64_t seed)
    : policy_(policy),
      rng_(seed),
      base_us_(static_cast<double>(policy.initial_backoff_us)) {}

std::optional<std::chrono::microseconds> Backoff::next_delay() {
  if (retries_ + 1 >= policy_.max_attempts) {
    return std::nullopt;
  }
  if (policy_.max_elapsed_us > 0 && elapsed_us_ >= policy_.max_elapsed_us) {
    return std::nullopt;
  }
  ++retries_;
  const double capped =
      std::min(base_us_, static_cast<double>(policy_.max_backoff_us));
  base_us_ = capped * policy_.multiplier;
  // Uniform in [capped * (1 - jitter), capped]: jitter only ever shortens the
  // wait, so the policy's max_backoff stays a hard ceiling.
  const double jittered = capped - capped * policy_.jitter * rng_.next_double();
  auto delay = std::chrono::microseconds(static_cast<std::int64_t>(jittered));
  if (policy_.max_elapsed_us > 0) {
    // Clip the final delay to the budget remainder so the loop never sleeps
    // past its time cap.
    const std::uint64_t remaining = policy_.max_elapsed_us - elapsed_us_;
    delay = std::min(delay, std::chrono::microseconds(
                                static_cast<std::int64_t>(remaining)));
  }
  elapsed_us_ += static_cast<std::uint64_t>(delay.count());
  return delay;
}

void Backoff::reset() {
  retries_ = 0;
  base_us_ = static_cast<double>(policy_.initial_backoff_us);
  elapsed_us_ = 0;
}

bool interruptible_sleep(std::chrono::microseconds delay,
                         const std::atomic<bool>* cancel) {
  constexpr auto kSlice = std::chrono::milliseconds(10);
  auto remaining = delay;
  while (remaining.count() > 0) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return false;
    }
    const auto nap = std::min<std::chrono::microseconds>(remaining, kSlice);
    std::this_thread::sleep_for(nap);
    remaining -= nap;
  }
  return cancel == nullptr || !cancel->load(std::memory_order_relaxed);
}

}  // namespace numastream
