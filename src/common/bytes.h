// Byte-buffer utilities: endian-stable integer packing and a growable byte
// sink used by the codec frame writer and the wire protocol.
//
// All on-disk and on-wire formats in numastream are little-endian regardless
// of host order, written through these helpers so the format is defined in
// exactly one place.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/status.h"

namespace numastream {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

// ---- unchecked little-endian stores/loads (caller guarantees bounds) ----

inline void store_le16(std::uint8_t* dst, std::uint16_t v) noexcept {
  dst[0] = static_cast<std::uint8_t>(v);
  dst[1] = static_cast<std::uint8_t>(v >> 8);
}
inline void store_le32(std::uint8_t* dst, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) {
    dst[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}
inline void store_le64(std::uint8_t* dst, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

inline std::uint16_t load_le16(const std::uint8_t* src) noexcept {
  return static_cast<std::uint16_t>(src[0] | (std::uint16_t{src[1]} << 8));
}
inline std::uint32_t load_le32(const std::uint8_t* src) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::uint32_t{src[i]} << (8 * i);
  }
  return v;
}
inline std::uint64_t load_le64(const std::uint8_t* src) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t{src[i]} << (8 * i);
  }
  return v;
}

/// Appends little-endian encoded values and raw spans to a Bytes vector.
/// Used by every format writer in the codebase.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) noexcept : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    const std::size_t n = out_.size();
    out_.resize(n + 2);
    store_le16(out_.data() + n, v);
  }
  void u32(std::uint32_t v) {
    const std::size_t n = out_.size();
    out_.resize(n + 4);
    store_le32(out_.data() + n, v);
  }
  void u64(std::uint64_t v) {
    const std::size_t n = out_.size();
    out_.resize(n + 8);
    store_le64(out_.data() + n, v);
  }
  void raw(ByteSpan data) { out_.insert(out_.end(), data.begin(), data.end()); }

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

 private:
  Bytes& out_;
};

/// Bounds-checked sequential reader over a byte span. Every read reports
/// truncation through Status instead of invoking undefined behaviour, so
/// format decoders can be driven with corrupt/adversarial input in tests.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  Status u8(std::uint8_t& v) noexcept {
    if (remaining() < 1) return truncated();
    v = data_[pos_++];
    return Status::ok();
  }
  Status u16(std::uint16_t& v) noexcept {
    if (remaining() < 2) return truncated();
    v = load_le16(data_.data() + pos_);
    pos_ += 2;
    return Status::ok();
  }
  Status u32(std::uint32_t& v) noexcept {
    if (remaining() < 4) return truncated();
    v = load_le32(data_.data() + pos_);
    pos_ += 4;
    return Status::ok();
  }
  Status u64(std::uint64_t& v) noexcept {
    if (remaining() < 8) return truncated();
    v = load_le64(data_.data() + pos_);
    pos_ += 8;
    return Status::ok();
  }
  /// Returns a view of the next `n` bytes and advances past them.
  Status raw(std::size_t n, ByteSpan& out) noexcept {
    if (remaining() < n) return truncated();
    out = data_.subspan(pos_, n);
    pos_ += n;
    return Status::ok();
  }
  Status skip(std::size_t n) noexcept {
    if (remaining() < n) return truncated();
    pos_ += n;
    return Status::ok();
  }

 private:
  static Status truncated() {
    return data_loss_error("byte stream truncated");
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
};

/// Constant-size hex rendering of a byte span prefix (for error messages).
std::string hex_preview(ByteSpan data, std::size_t max_bytes = 16);

}  // namespace numastream
