#include "common/rng.h"

#include <cmath>

#include "common/assert.h"

namespace numastream {
namespace {

constexpr std::uint64_t rotl64(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64_next(sm);
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl64(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl64(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  NS_DCHECK(bound != 0, "next_below requires a nonzero bound");
  // Lemire's method: multiply-shift with a rejection zone to remove bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in_range(std::int64_t lo, std::int64_t hi) noexcept {
  NS_DCHECK(lo <= hi, "next_in_range requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range; any value is in range.
  if (span == 0) {
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  // 53 high-quality bits mapped to [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_gaussian() noexcept {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method: draw until inside the unit circle.
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  have_cached_gaussian_ = true;
  return u * factor;
}

}  // namespace numastream
