// FaultCounters: one pipeline's fault-injection and recovery ledger.
//
// Every fault the chaos layer injects (msg/faulty.h) and every recovery
// action the pipeline takes (core/pipeline.cpp) increments exactly one
// counter here, so a fault-tolerance run is fully accountable: chunks are
// either delivered, or their loss shows up in a counter — never silent.
// Counters are plain relaxed atomics (hot paths touch them at chunk
// granularity, ~11 MiB apart); snapshot() yields a comparable plain struct,
// and fault_table() renders one through the shared TextTable formatter.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "metrics/padded_counter.h"
#include "metrics/table.h"

namespace numastream {

/// Plain-value copy of FaultCounters, comparable and printable. Two runs of
/// the same seeded FaultPlan must produce equal snapshots — the determinism
/// property tests/fault_test.cpp asserts.
struct FaultCountersSnapshot {
  // Faults injected by the chaos transport layer.
  std::uint64_t injected_disconnects = 0;   ///< writes failed, nothing delivered
  std::uint64_t injected_torn_writes = 0;   ///< corrupted prefix delivered, then failed
  std::uint64_t injected_bitflips = 0;      ///< silent single-bit payload corruption
  std::uint64_t injected_short_writes = 0;  ///< write delivered in fragments
  std::uint64_t injected_stalls = 0;        ///< write delayed by the injector
  std::uint64_t injected_throttles = 0;     ///< write slow-dripped at a byte rate
  std::uint64_t injected_crashes = 0;       ///< whole-endpoint deaths (kill -9)
  std::uint64_t injected_accept_failures = 0;

  // Recovery actions taken by the pipeline.
  std::uint64_t reconnects = 0;             ///< sender re-dialed a dead connection
  std::uint64_t dial_retries = 0;           ///< backoff retries inside dials
  std::uint64_t connections_recycled = 0;   ///< receiver replaced a dead connection
  std::uint64_t message_resyncs = 0;        ///< decoder re-locked onto NSM1 magic
  std::uint64_t frame_resyncs = 0;          ///< frame recovered at a later NSF1 magic
  std::uint64_t corrupt_frames = 0;         ///< frames failing checksum/decode
  std::uint64_t dropped_frames = 0;         ///< corrupt frames not recovered by resync
  std::uint64_t duplicate_frames = 0;       ///< resent frames deduplicated by sequence
  std::uint64_t degraded_chunks = 0;        ///< chunks sent passthrough under backlog
  std::uint64_t watchdog_trips = 0;         ///< stalled stages forcibly cancelled

  friend bool operator==(const FaultCountersSnapshot&,
                         const FaultCountersSnapshot&) = default;

  /// One-line summary of the nonzero counters ("clean" when all zero).
  [[nodiscard]] std::string to_string() const;
};

/// Thread-safe counter set shared by a pipeline's workers and its fault
/// injectors. All increments are relaxed: counters are statistics, not
/// synchronization.
class FaultCounters {
 public:
  PaddedCounter injected_disconnects;
  PaddedCounter injected_torn_writes;
  PaddedCounter injected_bitflips;
  PaddedCounter injected_short_writes;
  PaddedCounter injected_stalls;
  PaddedCounter injected_throttles;
  PaddedCounter injected_crashes;
  PaddedCounter injected_accept_failures;

  PaddedCounter reconnects;
  PaddedCounter dial_retries;
  PaddedCounter connections_recycled;
  PaddedCounter message_resyncs;
  PaddedCounter frame_resyncs;
  PaddedCounter corrupt_frames;
  PaddedCounter dropped_frames;
  PaddedCounter duplicate_frames;
  PaddedCounter degraded_chunks;
  PaddedCounter watchdog_trips;

  [[nodiscard]] FaultCountersSnapshot snapshot() const;
};

/// Renders a snapshot as a two-column table ("counter", "count"). With
/// `nonzero_only`, clean counters are elided so healthy runs print short.
TextTable fault_table(const FaultCountersSnapshot& snapshot,
                      bool nonzero_only = false);

}  // namespace numastream
