// CoreUsageMatrix: per-core utilization over a run.
//
// Figures 6, 8b and 9b of the paper are heatmaps of "core usage for different
// configurations": cores on one axis, configurations on the other, cell
// intensity = how busy that core was. The simulator records busy time per
// core into this matrix; render() emits the heatmap as aligned text (one
// shade character per 10% utilization) and to_csv() emits the raw numbers
// for plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace numastream {

class CoreUsageMatrix {
 public:
  explicit CoreUsageMatrix(std::size_t num_cores);

  /// Accumulates `busy_seconds` of work attributed to `core`.
  void add_busy_time(int core, double busy_seconds);

  /// Ends the observation window; utilizations are busy/elapsed.
  void set_elapsed(double elapsed_seconds);

  [[nodiscard]] std::size_t num_cores() const noexcept { return busy_.size(); }

  /// Utilization of one core in [0, 1] (clamped: oversubscribed cores that
  /// accumulated more busy-time than wall time read as 1).
  [[nodiscard]] double utilization(int core) const;

  /// All utilizations, index = core id.
  [[nodiscard]] std::vector<double> utilizations() const;

  /// One text column per configuration is built by the caller; this renders
  /// a single column: core 0 at the top (as in the paper's figures), one
  /// character per core: ' ' (idle) through '9'/'#' (saturated).
  [[nodiscard]] std::string render_column() const;

  /// "core,utilization" CSV rows.
  [[nodiscard]] std::string to_csv(const std::string& label) const;

 private:
  std::vector<double> busy_;
  double elapsed_seconds_ = 0;
};

/// Renders several labelled usage columns side by side — the full Fig 6 /
/// 8b / 9b style heatmap as text.
std::string render_usage_heatmap(const std::vector<std::string>& labels,
                                 const std::vector<CoreUsageMatrix>& columns);

}  // namespace numastream
