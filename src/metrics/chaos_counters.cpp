#include "metrics/chaos_counters.h"

namespace numastream {
namespace {

struct NamedCounter {
  const char* name;
  std::uint64_t ChaosCountersSnapshot::*field;
};

// One row per counter, in causal order: the weather the mesh injected,
// then what the explorer learned from running schedules through it.
constexpr NamedCounter kCounters[] = {
    {"partitions_cut", &ChaosCountersSnapshot::partitions_cut},
    {"partitions_healed", &ChaosCountersSnapshot::partitions_healed},
    {"frames_dropped", &ChaosCountersSnapshot::frames_dropped},
    {"frames_delayed", &ChaosCountersSnapshot::frames_delayed},
    {"frames_duplicated", &ChaosCountersSnapshot::frames_duplicated},
    {"frames_reordered", &ChaosCountersSnapshot::frames_reordered},
    {"acks_dropped", &ChaosCountersSnapshot::acks_dropped},
    {"virtual_micros", &ChaosCountersSnapshot::virtual_micros},
    {"episodes_run", &ChaosCountersSnapshot::episodes_run},
    {"events_injected", &ChaosCountersSnapshot::events_injected},
    {"probes_fired", &ChaosCountersSnapshot::probes_fired},
    {"violations_found", &ChaosCountersSnapshot::violations_found},
    {"shrink_steps", &ChaosCountersSnapshot::shrink_steps},
    {"schedules_shrunk", &ChaosCountersSnapshot::schedules_shrunk},
};

}  // namespace

std::string ChaosCountersSnapshot::to_string() const {
  std::string out;
  for (const auto& counter : kCounters) {
    const std::uint64_t value = this->*(counter.field);
    if (value == 0) {
      continue;
    }
    if (!out.empty()) {
      out += " ";
    }
    out += counter.name;
    out += "=";
    out += std::to_string(value);
  }
  return out.empty() ? "clean" : out;
}

ChaosCountersSnapshot ChaosCounters::snapshot() const {
  ChaosCountersSnapshot s;
  s.partitions_cut = partitions_cut.load(std::memory_order_relaxed);
  s.partitions_healed = partitions_healed.load(std::memory_order_relaxed);
  s.frames_dropped = frames_dropped.load(std::memory_order_relaxed);
  s.frames_delayed = frames_delayed.load(std::memory_order_relaxed);
  s.frames_duplicated = frames_duplicated.load(std::memory_order_relaxed);
  s.frames_reordered = frames_reordered.load(std::memory_order_relaxed);
  s.acks_dropped = acks_dropped.load(std::memory_order_relaxed);
  s.virtual_micros = virtual_micros.load(std::memory_order_relaxed);
  s.episodes_run = episodes_run.load(std::memory_order_relaxed);
  s.events_injected = events_injected.load(std::memory_order_relaxed);
  s.probes_fired = probes_fired.load(std::memory_order_relaxed);
  s.violations_found = violations_found.load(std::memory_order_relaxed);
  s.shrink_steps = shrink_steps.load(std::memory_order_relaxed);
  s.schedules_shrunk = schedules_shrunk.load(std::memory_order_relaxed);
  return s;
}

TextTable chaos_table(const ChaosCountersSnapshot& snapshot,
                      bool nonzero_only) {
  TextTable table({"counter", "count"});
  for (const auto& counter : kCounters) {
    const std::uint64_t value = snapshot.*(counter.field);
    if (nonzero_only && value == 0) {
      continue;
    }
    table.add_row({counter.name, std::to_string(value)});
  }
  return table;
}

}  // namespace numastream
