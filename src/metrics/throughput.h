// Throughput measurement.
//
// ThroughputMeter counts bytes from any number of worker threads and converts
// them to a rate over an explicit window — the number every figure in the
// paper's evaluation reports. SummaryStats aggregates repeated runs the way
// the paper does ("each configuration is tested ten times and the average is
// presented").
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace numastream {

class ThroughputMeter {
 public:
  /// Records `n` bytes handled by the calling thread.
  void add_bytes(std::uint64_t n) noexcept {
    bytes_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Total bytes recorded so far.
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Marks the start of the measurement window. Bytes recorded before this
  /// call (connection setup, credit warm-up — the pipeline establishes every
  /// connection *before* starting the clock) are snapshotted as a baseline
  /// and excluded from the window, so they can never inflate the rate.
  void start() noexcept {
    baseline_.store(bytes_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    start_time_ = Clock::now();
  }

  /// Bytes recorded since start() (total minus the start() baseline).
  [[nodiscard]] std::uint64_t window_bytes() const noexcept {
    return total_bytes() - baseline_.load(std::memory_order_relaxed);
  }

  /// Seconds since start().
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_time_).count();
  }

  /// Mean rate in bytes/second since start(); 0 before any time has passed.
  /// Only bytes recorded inside the window count.
  [[nodiscard]] double bytes_per_second() const noexcept {
    const double seconds = elapsed_seconds();
    return seconds > 0 ? static_cast<double>(window_bytes()) / seconds : 0.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> baseline_{0};
  Clock::time_point start_time_ = Clock::now();
};

/// Mean / min / max / stddev over repeated trial values.
struct SummaryStats {
  double mean = 0;
  double min = 0;
  double max = 0;
  double stddev = 0;
  std::size_t count = 0;

  static SummaryStats from(const std::vector<double>& values);
};

}  // namespace numastream
