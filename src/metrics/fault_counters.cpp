#include "metrics/fault_counters.h"

namespace numastream {
namespace {

struct NamedCounter {
  const char* name;
  std::uint64_t FaultCountersSnapshot::*field;
};

// One row per counter, in ledger order: injected faults first, then the
// recovery actions they provoked.
constexpr NamedCounter kCounters[] = {
    {"injected_disconnects", &FaultCountersSnapshot::injected_disconnects},
    {"injected_torn_writes", &FaultCountersSnapshot::injected_torn_writes},
    {"injected_bitflips", &FaultCountersSnapshot::injected_bitflips},
    {"injected_short_writes", &FaultCountersSnapshot::injected_short_writes},
    {"injected_stalls", &FaultCountersSnapshot::injected_stalls},
    {"injected_throttles", &FaultCountersSnapshot::injected_throttles},
    {"injected_crashes", &FaultCountersSnapshot::injected_crashes},
    {"injected_accept_failures", &FaultCountersSnapshot::injected_accept_failures},
    {"reconnects", &FaultCountersSnapshot::reconnects},
    {"dial_retries", &FaultCountersSnapshot::dial_retries},
    {"connections_recycled", &FaultCountersSnapshot::connections_recycled},
    {"message_resyncs", &FaultCountersSnapshot::message_resyncs},
    {"frame_resyncs", &FaultCountersSnapshot::frame_resyncs},
    {"corrupt_frames", &FaultCountersSnapshot::corrupt_frames},
    {"dropped_frames", &FaultCountersSnapshot::dropped_frames},
    {"duplicate_frames", &FaultCountersSnapshot::duplicate_frames},
    {"degraded_chunks", &FaultCountersSnapshot::degraded_chunks},
    {"watchdog_trips", &FaultCountersSnapshot::watchdog_trips},
};

}  // namespace

std::string FaultCountersSnapshot::to_string() const {
  std::string out;
  for (const auto& counter : kCounters) {
    const std::uint64_t value = this->*(counter.field);
    if (value == 0) {
      continue;
    }
    if (!out.empty()) {
      out += " ";
    }
    out += counter.name;
    out += "=";
    out += std::to_string(value);
  }
  return out.empty() ? "clean" : out;
}

FaultCountersSnapshot FaultCounters::snapshot() const {
  FaultCountersSnapshot s;
  s.injected_disconnects = injected_disconnects.load(std::memory_order_relaxed);
  s.injected_torn_writes = injected_torn_writes.load(std::memory_order_relaxed);
  s.injected_bitflips = injected_bitflips.load(std::memory_order_relaxed);
  s.injected_short_writes = injected_short_writes.load(std::memory_order_relaxed);
  s.injected_stalls = injected_stalls.load(std::memory_order_relaxed);
  s.injected_throttles = injected_throttles.load(std::memory_order_relaxed);
  s.injected_crashes = injected_crashes.load(std::memory_order_relaxed);
  s.injected_accept_failures =
      injected_accept_failures.load(std::memory_order_relaxed);
  s.reconnects = reconnects.load(std::memory_order_relaxed);
  s.dial_retries = dial_retries.load(std::memory_order_relaxed);
  s.connections_recycled = connections_recycled.load(std::memory_order_relaxed);
  s.message_resyncs = message_resyncs.load(std::memory_order_relaxed);
  s.frame_resyncs = frame_resyncs.load(std::memory_order_relaxed);
  s.corrupt_frames = corrupt_frames.load(std::memory_order_relaxed);
  s.dropped_frames = dropped_frames.load(std::memory_order_relaxed);
  s.duplicate_frames = duplicate_frames.load(std::memory_order_relaxed);
  s.degraded_chunks = degraded_chunks.load(std::memory_order_relaxed);
  s.watchdog_trips = watchdog_trips.load(std::memory_order_relaxed);
  return s;
}

TextTable fault_table(const FaultCountersSnapshot& snapshot, bool nonzero_only) {
  TextTable table({"counter", "count"});
  for (const auto& counter : kCounters) {
    const std::uint64_t value = snapshot.*(counter.field);
    if (nonzero_only && value == 0) {
      continue;
    }
    table.add_row({counter.name, std::to_string(value)});
  }
  return table;
}

}  // namespace numastream
