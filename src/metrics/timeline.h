// RateTimeline: bucketed byte-rate time series.
//
// The paper reports steady-state averages; a timeline shows *how* a pipeline
// reaches them — ramp-up while queues fill, plateaus at the bottleneck rate,
// drain at end of stream. The simulated driver records one per stream and
// the benches render them as sparklines next to the averages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace numastream {

class RateTimeline {
 public:
  /// Timestamps past this many buckets are rejected instead of allocated:
  /// one bogus 1e12 s sample must not attempt a terabyte resize().
  static constexpr std::size_t kMaxBuckets = 1 << 20;

  /// Slightly-negative times (float rounding of "now - start") are clamped
  /// to 0; anything below -kNegativeSlop seconds is a caller bug.
  static constexpr double kNegativeSlop = 1e-6;

  /// `bucket_seconds` is the aggregation window; all rates are per-bucket
  /// byte totals divided by it.
  explicit RateTimeline(double bucket_seconds);

  /// Records `bytes` delivered at absolute time `time_seconds`. Times in
  /// [-kNegativeSlop, 0) are clamped to 0; non-finite or more negative
  /// times return INVALID_ARGUMENT, and times past kMaxBuckets buckets
  /// return OUT_OF_RANGE — both without touching the series.
  Status record(double time_seconds, double bytes);

  [[nodiscard]] double bucket_seconds() const noexcept { return bucket_seconds_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }

  /// Bytes/second per bucket, index 0 = [0, bucket_seconds).
  [[nodiscard]] std::vector<double> rates() const;

  /// Peak bucket rate (0 when empty).
  [[nodiscard]] double peak_rate() const;

  /// Mean rate over the buckets that carry any traffic (0 when empty).
  [[nodiscard]] double mean_active_rate() const;

  /// Eight-level ASCII sparkline (" .:-=+*#@" ramp), one character per
  /// bucket, scaled to `max_rate` (0 = auto-scale to the peak).
  [[nodiscard]] std::string sparkline(double max_rate = 0) const;

  /// "label,bucket_index,rate_bytes_per_sec" rows.
  [[nodiscard]] std::string to_csv(const std::string& label) const;

 private:
  double bucket_seconds_;
  std::vector<double> buckets_;  // byte totals
};

}  // namespace numastream
