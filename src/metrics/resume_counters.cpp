#include "metrics/resume_counters.h"

namespace numastream {
namespace {

struct NamedCounter {
  const char* name;
  std::uint64_t ResumeCountersSnapshot::*field;
};

// One row per counter, in incident order: the crash, the journal's part in
// recovering from it, the duplicates the ledgers caught, and what it cost.
constexpr NamedCounter kCounters[] = {
    {"crashes_observed", &ResumeCountersSnapshot::crashes_observed},
    {"resume_handshakes", &ResumeCountersSnapshot::resume_handshakes},
    {"journal_records_written", &ResumeCountersSnapshot::journal_records_written},
    {"journal_records_replayed",
     &ResumeCountersSnapshot::journal_records_replayed},
    {"torn_records_truncated", &ResumeCountersSnapshot::torn_records_truncated},
    {"duplicates_suppressed", &ResumeCountersSnapshot::duplicates_suppressed},
    {"duplicate_deliveries_suppressed",
     &ResumeCountersSnapshot::duplicate_deliveries_suppressed},
    {"replayed_chunks", &ResumeCountersSnapshot::replayed_chunks},
    {"rework_bytes", &ResumeCountersSnapshot::rework_bytes},
    {"recovery_wall_ms", &ResumeCountersSnapshot::recovery_wall_ms},
};

}  // namespace

std::string ResumeCountersSnapshot::to_string() const {
  std::string out;
  for (const auto& counter : kCounters) {
    const std::uint64_t value = this->*(counter.field);
    if (value == 0) {
      continue;
    }
    if (!out.empty()) {
      out += " ";
    }
    out += counter.name;
    out += "=";
    out += std::to_string(value);
  }
  return out.empty() ? "clean" : out;
}

ResumeCountersSnapshot ResumeCounters::snapshot() const {
  ResumeCountersSnapshot s;
  s.crashes_observed = crashes_observed.load(std::memory_order_relaxed);
  s.resume_handshakes = resume_handshakes.load(std::memory_order_relaxed);
  s.journal_records_written =
      journal_records_written.load(std::memory_order_relaxed);
  s.journal_records_replayed =
      journal_records_replayed.load(std::memory_order_relaxed);
  s.torn_records_truncated =
      torn_records_truncated.load(std::memory_order_relaxed);
  s.duplicates_suppressed = duplicates_suppressed.load(std::memory_order_relaxed);
  s.duplicate_deliveries_suppressed =
      duplicate_deliveries_suppressed.load(std::memory_order_relaxed);
  s.replayed_chunks = replayed_chunks.load(std::memory_order_relaxed);
  s.rework_bytes = rework_bytes.load(std::memory_order_relaxed);
  s.recovery_wall_ms = recovery_wall_ms.load(std::memory_order_relaxed);
  return s;
}

TextTable resume_table(const ResumeCountersSnapshot& snapshot,
                       bool nonzero_only) {
  TextTable table({"counter", "count"});
  for (const auto& counter : kCounters) {
    const std::uint64_t value = snapshot.*(counter.field);
    if (nonzero_only && value == 0) {
      continue;
    }
    table.add_row({counter.name, std::to_string(value)});
  }
  return table;
}

}  // namespace numastream
