// FastPathCounters: the lock-free chunk path's ledger.
//
// Accounts for what the fastpath subsystem (DESIGN.md §15) did during a
// run: ring handoffs taken instead of mutex-queue handoffs, waiter parkings
// on the fan-in queues' eventcounts (a healthy pipeline parks rarely — the
// rings absorb the jitter), and the NUMA-local chunk pool's lease traffic.
// pool_hits vs pool_misses is the headline: a hit recycles an 11 MiB buffer
// already resident on the worker's home domain, a miss pays a fresh
// allocation plus first-touch faulting. pool_discards counts returns the
// pool turned away because the shelf was full (the buffer frees normally —
// never a leak, the exactly-once test in fastpath_test.cpp pins this down).
//
// Counters are relaxed atomics, each padded to its own cache line
// (PaddedCounter): compressors, senders, receivers and decompressors all
// bump their own members on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "metrics/padded_counter.h"
#include "metrics/table.h"

namespace numastream {

/// Plain-value copy of FastPathCounters, comparable and printable.
struct FastPathCountersSnapshot {
  // Ring handoffs.
  std::uint64_t ring_pushes = 0;      ///< elements through the fan-in rings
  std::uint64_t ring_parks = 0;       ///< waits that actually parked a thread

  // Pool traffic.
  std::uint64_t pool_leases = 0;      ///< buffers handed out
  std::uint64_t pool_hits = 0;        ///< leases served by recycling
  std::uint64_t pool_misses = 0;      ///< leases that had to allocate
  std::uint64_t pool_recycles = 0;    ///< buffers returned and shelved
  std::uint64_t pool_discards = 0;    ///< returns dropped (shelf full)

  friend bool operator==(const FastPathCountersSnapshot&,
                         const FastPathCountersSnapshot&) = default;

  /// One-line summary of the nonzero counters ("clean" when all zero).
  [[nodiscard]] std::string to_string() const;
};

/// Thread-safe counter set shared by the fan-in queues and the chunk pool.
/// All increments are relaxed: counters are statistics, not synchronization.
class FastPathCounters {
 public:
  PaddedCounter ring_pushes;
  PaddedCounter ring_parks;

  PaddedCounter pool_leases;
  PaddedCounter pool_hits;
  PaddedCounter pool_misses;
  PaddedCounter pool_recycles;
  PaddedCounter pool_discards;

  [[nodiscard]] FastPathCountersSnapshot snapshot() const;
};

/// Renders a snapshot as a two-column table ("counter", "count"). With
/// `nonzero_only`, clean counters are elided so fastpath-off runs print
/// nothing.
TextTable fastpath_table(const FastPathCountersSnapshot& snapshot,
                         bool nonzero_only = false);

}  // namespace numastream
