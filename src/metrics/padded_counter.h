// PaddedCounter: a cache-line-isolated atomic counter.
//
// The hot counter blocks in this directory (FederationCounters,
// FaultCounters, OverloadCounters, ScrubCounters) pack a dozen-plus
// adjacent std::atomic<uint64_t> members — 8 counters per 64-byte line.
// Different pipeline threads increment different members, so physically
// independent counters ping-pong the same line between cores: classic
// false sharing, measured at several-x on the counter-increment micro in
// bench/micro_queue (BM_CounterIncrement vs BM_PaddedCounterIncrement).
//
// PaddedCounter is a drop-in member replacement: it IS-A
// std::atomic<uint64_t> (fetch_add / load / store call sites unchanged)
// whose alignment pads it to a full cache line, so each write-hot counter
// owns its line. Use it for counters bumped from several threads on the
// hot path; cold or single-threaded counters can stay packed — padding
// them only costs memory.
#pragma once

#include <atomic>
#include <cstdint>

namespace numastream {

inline constexpr std::size_t kCacheLineBytes = 64;

struct alignas(kCacheLineBytes) PaddedCounter : std::atomic<std::uint64_t> {
  PaddedCounter() noexcept : std::atomic<std::uint64_t>(0) {}
  explicit PaddedCounter(std::uint64_t initial) noexcept
      : std::atomic<std::uint64_t>(initial) {}
  // The implicitly-deleted copy assignment would otherwise hide the base's
  // `operator=(uint64_t)` that call sites like `counters.x = 2` rely on.
  using std::atomic<std::uint64_t>::operator=;
};

static_assert(alignof(PaddedCounter) == kCacheLineBytes);
static_assert(sizeof(PaddedCounter) == kCacheLineBytes);

}  // namespace numastream
