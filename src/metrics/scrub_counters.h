// ScrubCounters: one node's anti-entropy ledger.
//
// The sixth ledger next to FaultCounters, OverloadCounters, HealthCounters,
// ResumeCounters and FederationCounters: this one accounts for what the
// background scrubber and the cross-gateway repair protocol did — durable
// records re-verified, latent corruption found and quarantined, digest
// rounds exchanged with the ring buddy, divergent ranges repaired from
// whichever side verified clean, and the injection/failover audit trail
// (records deliberately rotted by a test, records whose durable evidence a
// failover would have lost). Rot injection is seeded, so in simulation
// these counters double as the bit-identity fingerprint of a scrub run:
// same seed, same snapshot.
//
// Counters are relaxed atomics; snapshot() yields a comparable plain struct
// and scrub_table() renders one through the shared TextTable formatter.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "metrics/padded_counter.h"
#include "metrics/table.h"

namespace numastream {

/// Plain-value copy of ScrubCounters, comparable and printable.
struct ScrubCountersSnapshot {
  // Local scrubber (core/scrub.h).
  std::uint64_t records_scanned = 0;     ///< durable records re-verified
  std::uint64_t scrub_passes = 0;        ///< full journal sweeps completed
  std::uint64_t corrupt_records_found = 0;  ///< checksum failures on re-read
  std::uint64_t ranges_quarantined = 0;  ///< ranges latched as corrupt
  std::uint64_t ranges_repaired = 0;     ///< quarantines lifted after repair
  std::uint64_t ranges_unrepairable = 0; ///< neither side verified clean

  // Anti-entropy protocol (cluster/antientropy.h).
  std::uint64_t digest_rounds = 0;       ///< digest exchanges with the buddy
  std::uint64_t ranges_compared = 0;     ///< ranges digest-checked
  std::uint64_t ranges_diverged = 0;     ///< digest mismatches found
  std::uint64_t records_pulled = 0;      ///< records fetched from the buddy
  std::uint64_t records_pushed = 0;      ///< records installed at the buddy
  std::uint64_t repair_verify_failures = 0;  ///< repairs refused on checksum
  std::uint64_t fenced_scrubs_rejected = 0;  ///< stale-epoch scrubs refused

  // Injection / failover audit (tests, sim, bench).
  std::uint64_t records_rotted = 0;      ///< records deliberately corrupted
  std::uint64_t stale_records_dropped = 0;  ///< replica tail records dropped
  std::uint64_t failover_lost_records = 0;  ///< ledger holes a takeover hit

  friend bool operator==(const ScrubCountersSnapshot&,
                         const ScrubCountersSnapshot&) = default;

  /// One-line summary of the nonzero counters ("clean" when all zero).
  [[nodiscard]] std::string to_string() const;
};

/// Thread-safe counter set shared by the journal scrubber, the anti-entropy
/// exchange, and the fault injectors. All increments are relaxed: counters
/// are statistics, not synchronization.
class ScrubCounters {
 public:
  PaddedCounter records_scanned;
  PaddedCounter scrub_passes;
  PaddedCounter corrupt_records_found;
  PaddedCounter ranges_quarantined;
  PaddedCounter ranges_repaired;
  PaddedCounter ranges_unrepairable;

  PaddedCounter digest_rounds;
  PaddedCounter ranges_compared;
  PaddedCounter ranges_diverged;
  PaddedCounter records_pulled;
  PaddedCounter records_pushed;
  PaddedCounter repair_verify_failures;
  PaddedCounter fenced_scrubs_rejected;

  PaddedCounter records_rotted;
  PaddedCounter stale_records_dropped;
  PaddedCounter failover_lost_records;

  [[nodiscard]] ScrubCountersSnapshot snapshot() const;
};

/// Renders a snapshot as a two-column table ("counter", "count"). With
/// `nonzero_only`, clean counters are elided so rot-free runs print short.
TextTable scrub_table(const ScrubCountersSnapshot& snapshot,
                      bool nonzero_only = false);

}  // namespace numastream
