// ChaosCounters: one ledger for the chaos mesh and the invariant explorer.
//
// The seventh ledger next to FaultCounters, OverloadCounters,
// HealthCounters, ResumeCounters, FederationCounters and ScrubCounters:
// this one accounts for what the deterministic chaos layer *did to* the
// system — partitions cut and healed, frames dropped, delayed, duplicated
// and reordered at NSM1 granularity, replication acks eaten by one-way
// cuts — and what the checker layer *found out about* it: episodes
// explored, invariant probes fired, violations caught, and how many
// delta-debugging steps it took to shrink each failing schedule to its
// minimal reproducer. Everything downstream of one seed, so in a
// deterministic run these counters are the bit-identity fingerprint of a
// chaos campaign: same seed, same snapshot.
//
// Counters are relaxed atomics; snapshot() yields a comparable plain struct
// and chaos_table() renders one through the shared TextTable formatter.
#pragma once

#include <cstdint>
#include <string>

#include "metrics/padded_counter.h"
#include "metrics/table.h"

namespace numastream {

/// Plain-value copy of ChaosCounters, comparable and printable.
struct ChaosCountersSnapshot {
  // Mesh: what the network weather did (msg/chaosnet.h).
  std::uint64_t partitions_cut = 0;      ///< directed links severed
  std::uint64_t partitions_healed = 0;   ///< directed links restored
  std::uint64_t frames_dropped = 0;      ///< frames lost to a cut link
  std::uint64_t frames_delayed = 0;      ///< frames held for a link delay
  std::uint64_t frames_duplicated = 0;   ///< frames delivered twice
  std::uint64_t frames_reordered = 0;    ///< adjacent frames swapped
  std::uint64_t acks_dropped = 0;        ///< replies eaten by a one-way cut
  std::uint64_t virtual_micros = 0;      ///< virtual time the mesh advanced

  // Explorer: what the checker found (check/explorer.h).
  std::uint64_t episodes_run = 0;        ///< schedules executed end to end
  std::uint64_t events_injected = 0;     ///< schedule events applied
  std::uint64_t probes_fired = 0;        ///< invariant checks evaluated
  std::uint64_t violations_found = 0;    ///< probes that caught a violation
  std::uint64_t shrink_steps = 0;        ///< ddmin re-executions spent
  std::uint64_t schedules_shrunk = 0;    ///< failures reduced to minimal form

  friend bool operator==(const ChaosCountersSnapshot&,
                         const ChaosCountersSnapshot&) = default;

  /// One-line summary of the nonzero counters ("clean" when all zero).
  [[nodiscard]] std::string to_string() const;
};

/// Thread-safe counter set shared by the chaos mesh, the invariant monitor
/// and the explorer. All increments are relaxed: counters are statistics,
/// not synchronization.
class ChaosCounters {
 public:
  PaddedCounter partitions_cut;
  PaddedCounter partitions_healed;
  PaddedCounter frames_dropped;
  PaddedCounter frames_delayed;
  PaddedCounter frames_duplicated;
  PaddedCounter frames_reordered;
  PaddedCounter acks_dropped;
  PaddedCounter virtual_micros;

  PaddedCounter episodes_run;
  PaddedCounter events_injected;
  PaddedCounter probes_fired;
  PaddedCounter violations_found;
  PaddedCounter shrink_steps;
  PaddedCounter schedules_shrunk;

  [[nodiscard]] ChaosCountersSnapshot snapshot() const;
};

/// Renders a snapshot as a two-column table ("counter", "count"). With
/// `nonzero_only`, clean counters are elided so quiet campaigns print short.
TextTable chaos_table(const ChaosCountersSnapshot& snapshot,
                      bool nonzero_only = false);

}  // namespace numastream
