#include "metrics/throughput.h"

#include <algorithm>
#include <cmath>

namespace numastream {

SummaryStats SummaryStats::from(const std::vector<double>& values) {
  SummaryStats stats;
  stats.count = values.size();
  if (values.empty()) {
    return stats;
  }
  stats.min = *std::min_element(values.begin(), values.end());
  stats.max = *std::max_element(values.begin(), values.end());
  double sum = 0;
  for (const double v : values) {
    sum += v;
  }
  stats.mean = sum / static_cast<double>(values.size());
  double sq = 0;
  for (const double v : values) {
    sq += (v - stats.mean) * (v - stats.mean);
  }
  stats.stddev = values.size() > 1
                     ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                     : 0.0;
  return stats;
}

}  // namespace numastream
