#include "metrics/core_usage.h"

#include <algorithm>
#include <cstdio>

#include "common/assert.h"

namespace numastream {
namespace {

char shade_char(double utilization) {
  // ' ' for idle, '1'..'9' for 10%..90%, '#' for saturated.
  if (utilization < 0.05) {
    return ' ';
  }
  if (utilization >= 0.95) {
    return '#';
  }
  const int decile = std::clamp(static_cast<int>(utilization * 10.0), 1, 9);
  return static_cast<char>('0' + decile);
}

}  // namespace

CoreUsageMatrix::CoreUsageMatrix(std::size_t num_cores) : busy_(num_cores, 0.0) {}

void CoreUsageMatrix::add_busy_time(int core, double busy_seconds) {
  NS_CHECK(core >= 0 && static_cast<std::size_t>(core) < busy_.size(),
           "core id out of range");
  busy_[static_cast<std::size_t>(core)] += busy_seconds;
}

void CoreUsageMatrix::set_elapsed(double elapsed_seconds) {
  elapsed_seconds_ = elapsed_seconds;
}

double CoreUsageMatrix::utilization(int core) const {
  NS_CHECK(core >= 0 && static_cast<std::size_t>(core) < busy_.size(),
           "core id out of range");
  if (elapsed_seconds_ <= 0) {
    return 0.0;
  }
  return std::min(1.0, busy_[static_cast<std::size_t>(core)] / elapsed_seconds_);
}

std::vector<double> CoreUsageMatrix::utilizations() const {
  std::vector<double> out(busy_.size());
  for (std::size_t core = 0; core < busy_.size(); ++core) {
    out[core] = utilization(static_cast<int>(core));
  }
  return out;
}

std::string CoreUsageMatrix::render_column() const {
  std::string out;
  out.reserve(busy_.size());
  for (std::size_t core = 0; core < busy_.size(); ++core) {
    out.push_back(shade_char(utilization(static_cast<int>(core))));
  }
  return out;
}

std::string CoreUsageMatrix::to_csv(const std::string& label) const {
  std::string out;
  char line[96];
  for (std::size_t core = 0; core < busy_.size(); ++core) {
    std::snprintf(line, sizeof(line), "%s,%zu,%.4f\n", label.c_str(), core,
                  utilization(static_cast<int>(core)));
    out += line;
  }
  return out;
}

std::string render_usage_heatmap(const std::vector<std::string>& labels,
                                 const std::vector<CoreUsageMatrix>& columns) {
  NS_CHECK(labels.size() == columns.size(), "one label per column");
  if (columns.empty()) {
    return "";
  }
  std::size_t cores = 0;
  for (const auto& c : columns) {
    cores = std::max(cores, c.num_cores());
  }
  std::size_t width = 0;
  for (const auto& l : labels) {
    width = std::max(width, l.size());
  }
  width = std::max<std::size_t>(width, 3) + 2;

  std::string out;
  // Core rows, core 0 at the top as in the paper's figures.
  for (std::size_t core = 0; core < cores; ++core) {
    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "core %2zu |", core);
    out += prefix;
    for (const auto& column : columns) {
      const char c = core < column.num_cores()
                         ? column.render_column()[core]
                         : ' ';
      out += std::string(width - 1, ' ');
      out.push_back(c);
    }
    out += '\n';
  }
  // Column labels, vertical alignment under each column.
  out += "        ";
  for (const auto& label : labels) {
    out += std::string(width - label.size(), ' ');
    out += label;
  }
  out += '\n';
  return out;
}

}  // namespace numastream
