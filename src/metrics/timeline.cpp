#include "metrics/timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/assert.h"
#include "metrics/table.h"

namespace numastream {

RateTimeline::RateTimeline(double bucket_seconds) : bucket_seconds_(bucket_seconds) {
  NS_CHECK(bucket_seconds > 0, "timeline bucket must be positive");
}

Status RateTimeline::record(double time_seconds, double bytes) {
  if (!std::isfinite(time_seconds)) {
    return invalid_argument_error("timeline: non-finite timestamp");
  }
  if (time_seconds < 0) {
    if (time_seconds < -kNegativeSlop) {
      return invalid_argument_error("timeline: negative timestamp " +
                                    std::to_string(time_seconds));
    }
    time_seconds = 0;  // float rounding of "now - start" near zero
  }
  const double bucket_f = time_seconds / bucket_seconds_;
  if (bucket_f >= static_cast<double>(kMaxBuckets)) {
    return out_of_range_error("timeline: timestamp " +
                              std::to_string(time_seconds) +
                              " s is beyond the bucket cap");
  }
  const auto bucket = static_cast<std::size_t>(bucket_f);
  if (buckets_.size() <= bucket) {
    buckets_.resize(bucket + 1, 0.0);
  }
  buckets_[bucket] += bytes;
  return Status::ok();
}

std::vector<double> RateTimeline::rates() const {
  std::vector<double> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i] / bucket_seconds_;
  }
  return out;
}

double RateTimeline::peak_rate() const {
  double peak = 0;
  for (const double bytes : buckets_) {
    peak = std::max(peak, bytes / bucket_seconds_);
  }
  return peak;
}

double RateTimeline::mean_active_rate() const {
  double total = 0;
  std::size_t active = 0;
  for (const double bytes : buckets_) {
    if (bytes > 0) {
      total += bytes / bucket_seconds_;
      ++active;
    }
  }
  return active == 0 ? 0.0 : total / static_cast<double>(active);
}

std::string RateTimeline::sparkline(double max_rate) const {
  static const char kRamp[] = " .:-=+*#@";
  constexpr int kLevels = 8;  // indexes 1..8 of kRamp; 0 = empty bucket
  const double scale = max_rate > 0 ? max_rate : peak_rate();
  std::string out;
  out.reserve(buckets_.size());
  for (const double bytes : buckets_) {
    const double rate = bytes / bucket_seconds_;
    if (rate <= 0 || scale <= 0) {
      out.push_back(kRamp[0]);
      continue;
    }
    const int level = std::clamp(
        static_cast<int>(rate / scale * kLevels + 0.5), 1, kLevels);
    out.push_back(kRamp[level]);
  }
  return out;
}

std::string RateTimeline::to_csv(const std::string& label) const {
  const std::string safe_label = csv_escape(label);
  std::string out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out += safe_label;
    out += ',';
    out += std::to_string(i);
    out += ',';
    out += fmt_double(buckets_[i] / bucket_seconds_, 1);
    out += '\n';
  }
  return out;
}

}  // namespace numastream
