#include "metrics/timeline.h"

#include <algorithm>
#include <cstdio>

#include "common/assert.h"

namespace numastream {

RateTimeline::RateTimeline(double bucket_seconds) : bucket_seconds_(bucket_seconds) {
  NS_CHECK(bucket_seconds > 0, "timeline bucket must be positive");
}

void RateTimeline::record(double time_seconds, double bytes) {
  NS_CHECK(time_seconds >= 0, "timeline time cannot be negative");
  const auto bucket = static_cast<std::size_t>(time_seconds / bucket_seconds_);
  if (buckets_.size() <= bucket) {
    buckets_.resize(bucket + 1, 0.0);
  }
  buckets_[bucket] += bytes;
}

std::vector<double> RateTimeline::rates() const {
  std::vector<double> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i] / bucket_seconds_;
  }
  return out;
}

double RateTimeline::peak_rate() const {
  double peak = 0;
  for (const double bytes : buckets_) {
    peak = std::max(peak, bytes / bucket_seconds_);
  }
  return peak;
}

double RateTimeline::mean_active_rate() const {
  double total = 0;
  std::size_t active = 0;
  for (const double bytes : buckets_) {
    if (bytes > 0) {
      total += bytes / bucket_seconds_;
      ++active;
    }
  }
  return active == 0 ? 0.0 : total / static_cast<double>(active);
}

std::string RateTimeline::sparkline(double max_rate) const {
  static const char kRamp[] = " .:-=+*#@";
  constexpr int kLevels = 8;  // indexes 1..8 of kRamp; 0 = empty bucket
  const double scale = max_rate > 0 ? max_rate : peak_rate();
  std::string out;
  out.reserve(buckets_.size());
  for (const double bytes : buckets_) {
    const double rate = bytes / bucket_seconds_;
    if (rate <= 0 || scale <= 0) {
      out.push_back(kRamp[0]);
      continue;
    }
    const int level = std::clamp(
        static_cast<int>(rate / scale * kLevels + 0.5), 1, kLevels);
    out.push_back(kRamp[level]);
  }
  return out;
}

std::string RateTimeline::to_csv(const std::string& label) const {
  std::string out;
  char line[96];
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    std::snprintf(line, sizeof(line), "%s,%zu,%.1f\n", label.c_str(), i,
                  buckets_[i] / bucket_seconds_);
    out += line;
  }
  return out;
}

}  // namespace numastream
