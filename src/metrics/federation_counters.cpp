#include "metrics/federation_counters.h"

namespace numastream {
namespace {

struct NamedCounter {
  const char* name;
  std::uint64_t FederationCountersSnapshot::*field;
};

// One row per counter, in incident order: steady-state replication, the
// heartbeats that notice a death, the takeover itself, and the fence that
// keeps the dead primary from un-deciding it.
constexpr NamedCounter kCounters[] = {
    {"repl_records_shipped",
     &FederationCountersSnapshot::repl_records_shipped},
    {"repl_appends_acked", &FederationCountersSnapshot::repl_appends_acked},
    {"repl_lag_records_max",
     &FederationCountersSnapshot::repl_lag_records_max},
    {"heartbeats_sent", &FederationCountersSnapshot::heartbeats_sent},
    {"peer_failures_detected",
     &FederationCountersSnapshot::peer_failures_detected},
    {"degraded_peers_detected",
     &FederationCountersSnapshot::degraded_peers_detected},
    {"failovers", &FederationCountersSnapshot::failovers},
    {"streams_reresolved", &FederationCountersSnapshot::streams_reresolved},
    {"failover_wall_ms", &FederationCountersSnapshot::failover_wall_ms},
    {"epoch", &FederationCountersSnapshot::epoch},
    {"fenced_appends_rejected",
     &FederationCountersSnapshot::fenced_appends_rejected},
    {"rebalance_triggers", &FederationCountersSnapshot::rebalance_triggers},
    {"handoffs_planned", &FederationCountersSnapshot::handoffs_planned},
    {"handoffs_completed", &FederationCountersSnapshot::handoffs_completed},
    {"handoffs_aborted", &FederationCountersSnapshot::handoffs_aborted},
    {"handoff_streams_moved",
     &FederationCountersSnapshot::handoff_streams_moved},
    {"handoff_wall_ms", &FederationCountersSnapshot::handoff_wall_ms},
};

}  // namespace

std::string FederationCountersSnapshot::to_string() const {
  std::string out;
  for (const auto& counter : kCounters) {
    const std::uint64_t value = this->*(counter.field);
    if (value == 0) {
      continue;
    }
    if (!out.empty()) {
      out += " ";
    }
    out += counter.name;
    out += "=";
    out += std::to_string(value);
  }
  return out.empty() ? "clean" : out;
}

void FederationCounters::note_repl_lag(std::uint64_t lag) {
  std::uint64_t seen = repl_lag_records_max.load(std::memory_order_relaxed);
  while (lag > seen &&
         !repl_lag_records_max.compare_exchange_weak(
             seen, lag, std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

void FederationCounters::note_epoch(std::uint64_t value) {
  std::uint64_t seen = epoch.load(std::memory_order_relaxed);
  while (value > seen &&
         !epoch.compare_exchange_weak(seen, value, std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
  }
}

FederationCountersSnapshot FederationCounters::snapshot() const {
  FederationCountersSnapshot s;
  s.repl_records_shipped = repl_records_shipped.load(std::memory_order_relaxed);
  s.repl_appends_acked = repl_appends_acked.load(std::memory_order_relaxed);
  s.repl_lag_records_max =
      repl_lag_records_max.load(std::memory_order_relaxed);
  s.heartbeats_sent = heartbeats_sent.load(std::memory_order_relaxed);
  s.peer_failures_detected =
      peer_failures_detected.load(std::memory_order_relaxed);
  s.degraded_peers_detected =
      degraded_peers_detected.load(std::memory_order_relaxed);
  s.failovers = failovers.load(std::memory_order_relaxed);
  s.streams_reresolved = streams_reresolved.load(std::memory_order_relaxed);
  s.failover_wall_ms = failover_wall_ms.load(std::memory_order_relaxed);
  s.epoch = epoch.load(std::memory_order_relaxed);
  s.fenced_appends_rejected =
      fenced_appends_rejected.load(std::memory_order_relaxed);
  s.rebalance_triggers = rebalance_triggers.load(std::memory_order_relaxed);
  s.handoffs_planned = handoffs_planned.load(std::memory_order_relaxed);
  s.handoffs_completed = handoffs_completed.load(std::memory_order_relaxed);
  s.handoffs_aborted = handoffs_aborted.load(std::memory_order_relaxed);
  s.handoff_streams_moved =
      handoff_streams_moved.load(std::memory_order_relaxed);
  s.handoff_wall_ms = handoff_wall_ms.load(std::memory_order_relaxed);
  return s;
}

TextTable federation_table(const FederationCountersSnapshot& snapshot,
                           bool nonzero_only) {
  TextTable table({"counter", "count"});
  for (const auto& counter : kCounters) {
    const std::uint64_t value = snapshot.*(counter.field);
    if (nonzero_only && value == 0) {
      continue;
    }
    table.add_row({counter.name, std::to_string(value)});
  }
  return table;
}

}  // namespace numastream
