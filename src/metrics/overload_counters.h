// OverloadCounters: one pipeline's overload-protection ledger.
//
// The complement of FaultCounters: where that ledger accounts for injected
// transport faults and the recovery they provoked, this one accounts for
// *pressure* — admission decisions the budget made, frames the shed policies
// dropped, credit stalls the flow-control window imposed, streams evicted
// for falling behind, and how the graceful drain ended. Same accountability
// rule: a chunk that entered an overloaded pipeline is either delivered or
// shows up in exactly one counter here — never silently gone.
//
// Counters are relaxed atomics (touched at chunk granularity); snapshot()
// yields a comparable plain struct and overload_table() renders one through
// the shared TextTable formatter.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "metrics/padded_counter.h"
#include "metrics/table.h"

namespace numastream {

/// Plain-value copy of OverloadCounters, comparable and printable.
struct OverloadCountersSnapshot {
  // Load shedding (core/pipeline.cpp shed policies).
  std::uint64_t shed_newest = 0;        ///< incoming frames dropped at admission
  std::uint64_t shed_oldest = 0;        ///< queued frames dropped to admit newer ones
  std::uint64_t priority_evictions = 0; ///< queued frames evicted for higher priority

  // Credit-based flow control (msg/socket.h credit frames).
  std::uint64_t credit_stalls = 0;      ///< times a sender ran dry and had to wait
  std::uint64_t credit_grants = 0;      ///< credit frames issued by the receiver

  // Memory budget admission (core/budget.h).
  std::uint64_t budget_stalls = 0;      ///< admissions that had to wait for releases
  std::uint64_t budget_rejections = 0;  ///< admissions denied outright (shed instead)

  // Slow-consumer protection.
  std::uint64_t slow_streams_evicted = 0;  ///< streams cut for missing the floor
  std::uint64_t evicted_chunks = 0;        ///< frames dropped for evicted streams

  // Graceful drain (core/drain.h).
  std::uint64_t drain_requests = 0;     ///< coordinated flushes started
  std::uint64_t drain_timeouts = 0;     ///< flushes that hit the deadline and forced

  // High-water mark of bytes concurrently charged to the memory budget.
  std::uint64_t peak_bytes_in_flight = 0;

  friend bool operator==(const OverloadCountersSnapshot&,
                         const OverloadCountersSnapshot&) = default;

  /// Every frame dropped by a shed policy, whatever the policy was.
  [[nodiscard]] std::uint64_t total_shed() const noexcept {
    return shed_newest + shed_oldest + priority_evictions;
  }

  /// One-line summary of the nonzero counters ("clean" when all zero).
  [[nodiscard]] std::string to_string() const;
};

/// Thread-safe counter set shared by a pipeline's workers. All increments
/// are relaxed: counters are statistics, not synchronization.
class OverloadCounters {
 public:
  PaddedCounter shed_newest;
  PaddedCounter shed_oldest;
  PaddedCounter priority_evictions;

  PaddedCounter credit_stalls;
  PaddedCounter credit_grants;

  PaddedCounter budget_stalls;
  PaddedCounter budget_rejections;

  PaddedCounter slow_streams_evicted;
  PaddedCounter evicted_chunks;

  PaddedCounter drain_requests;
  PaddedCounter drain_timeouts;

  PaddedCounter peak_bytes_in_flight;

  /// Raises peak_bytes_in_flight to at least `bytes` (monotonic gauge).
  void record_peak(std::uint64_t bytes);

  [[nodiscard]] OverloadCountersSnapshot snapshot() const;
};

/// Renders a snapshot as a two-column table ("counter", "count"). With
/// `nonzero_only`, clean counters are elided so unstressed runs print short.
TextTable overload_table(const OverloadCountersSnapshot& snapshot,
                         bool nonzero_only = false);

}  // namespace numastream
