#include "metrics/fastpath_counters.h"

namespace numastream {
namespace {

struct NamedCounter {
  const char* name;
  std::uint64_t FastPathCountersSnapshot::*field;
};

// One row per counter: the ring traffic first, then the pool's lease
// lifecycle in the order a buffer experiences it.
constexpr NamedCounter kCounters[] = {
    {"ring_pushes", &FastPathCountersSnapshot::ring_pushes},
    {"ring_parks", &FastPathCountersSnapshot::ring_parks},
    {"pool_leases", &FastPathCountersSnapshot::pool_leases},
    {"pool_hits", &FastPathCountersSnapshot::pool_hits},
    {"pool_misses", &FastPathCountersSnapshot::pool_misses},
    {"pool_recycles", &FastPathCountersSnapshot::pool_recycles},
    {"pool_discards", &FastPathCountersSnapshot::pool_discards},
};

}  // namespace

std::string FastPathCountersSnapshot::to_string() const {
  std::string out;
  for (const auto& counter : kCounters) {
    const std::uint64_t value = this->*(counter.field);
    if (value == 0) {
      continue;
    }
    if (!out.empty()) {
      out += " ";
    }
    out += counter.name;
    out += "=";
    out += std::to_string(value);
  }
  return out.empty() ? "clean" : out;
}

FastPathCountersSnapshot FastPathCounters::snapshot() const {
  FastPathCountersSnapshot s;
  s.ring_pushes = ring_pushes.load(std::memory_order_relaxed);
  s.ring_parks = ring_parks.load(std::memory_order_relaxed);
  s.pool_leases = pool_leases.load(std::memory_order_relaxed);
  s.pool_hits = pool_hits.load(std::memory_order_relaxed);
  s.pool_misses = pool_misses.load(std::memory_order_relaxed);
  s.pool_recycles = pool_recycles.load(std::memory_order_relaxed);
  s.pool_discards = pool_discards.load(std::memory_order_relaxed);
  return s;
}

TextTable fastpath_table(const FastPathCountersSnapshot& snapshot,
                         bool nonzero_only) {
  TextTable table({"counter", "count"});
  for (const auto& counter : kCounters) {
    const std::uint64_t value = snapshot.*(counter.field);
    if (nonzero_only && value == 0) {
      continue;
    }
    table.add_row({counter.name, std::to_string(value)});
  }
  return table;
}

}  // namespace numastream
