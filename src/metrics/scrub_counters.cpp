#include "metrics/scrub_counters.h"

namespace numastream {
namespace {

struct NamedCounter {
  const char* name;
  std::uint64_t ScrubCountersSnapshot::*field;
};

// One row per counter, in incident order: the local sweep that notices rot,
// the cross-gateway digest exchange that localizes it, the repair that
// closes it, and the injection/failover audit that proves what was at stake.
constexpr NamedCounter kCounters[] = {
    {"records_scanned", &ScrubCountersSnapshot::records_scanned},
    {"scrub_passes", &ScrubCountersSnapshot::scrub_passes},
    {"corrupt_records_found", &ScrubCountersSnapshot::corrupt_records_found},
    {"ranges_quarantined", &ScrubCountersSnapshot::ranges_quarantined},
    {"ranges_repaired", &ScrubCountersSnapshot::ranges_repaired},
    {"ranges_unrepairable", &ScrubCountersSnapshot::ranges_unrepairable},
    {"digest_rounds", &ScrubCountersSnapshot::digest_rounds},
    {"ranges_compared", &ScrubCountersSnapshot::ranges_compared},
    {"ranges_diverged", &ScrubCountersSnapshot::ranges_diverged},
    {"records_pulled", &ScrubCountersSnapshot::records_pulled},
    {"records_pushed", &ScrubCountersSnapshot::records_pushed},
    {"repair_verify_failures",
     &ScrubCountersSnapshot::repair_verify_failures},
    {"fenced_scrubs_rejected",
     &ScrubCountersSnapshot::fenced_scrubs_rejected},
    {"records_rotted", &ScrubCountersSnapshot::records_rotted},
    {"stale_records_dropped", &ScrubCountersSnapshot::stale_records_dropped},
    {"failover_lost_records", &ScrubCountersSnapshot::failover_lost_records},
};

}  // namespace

std::string ScrubCountersSnapshot::to_string() const {
  std::string out;
  for (const auto& counter : kCounters) {
    const std::uint64_t value = this->*(counter.field);
    if (value == 0) {
      continue;
    }
    if (!out.empty()) {
      out += " ";
    }
    out += counter.name;
    out += "=";
    out += std::to_string(value);
  }
  return out.empty() ? "clean" : out;
}

ScrubCountersSnapshot ScrubCounters::snapshot() const {
  ScrubCountersSnapshot s;
  s.records_scanned = records_scanned.load(std::memory_order_relaxed);
  s.scrub_passes = scrub_passes.load(std::memory_order_relaxed);
  s.corrupt_records_found =
      corrupt_records_found.load(std::memory_order_relaxed);
  s.ranges_quarantined = ranges_quarantined.load(std::memory_order_relaxed);
  s.ranges_repaired = ranges_repaired.load(std::memory_order_relaxed);
  s.ranges_unrepairable = ranges_unrepairable.load(std::memory_order_relaxed);
  s.digest_rounds = digest_rounds.load(std::memory_order_relaxed);
  s.ranges_compared = ranges_compared.load(std::memory_order_relaxed);
  s.ranges_diverged = ranges_diverged.load(std::memory_order_relaxed);
  s.records_pulled = records_pulled.load(std::memory_order_relaxed);
  s.records_pushed = records_pushed.load(std::memory_order_relaxed);
  s.repair_verify_failures =
      repair_verify_failures.load(std::memory_order_relaxed);
  s.fenced_scrubs_rejected =
      fenced_scrubs_rejected.load(std::memory_order_relaxed);
  s.records_rotted = records_rotted.load(std::memory_order_relaxed);
  s.stale_records_dropped =
      stale_records_dropped.load(std::memory_order_relaxed);
  s.failover_lost_records =
      failover_lost_records.load(std::memory_order_relaxed);
  return s;
}

TextTable scrub_table(const ScrubCountersSnapshot& snapshot,
                      bool nonzero_only) {
  TextTable table({"counter", "count"});
  for (const auto& counter : kCounters) {
    const std::uint64_t value = snapshot.*(counter.field);
    if (nonzero_only && value == 0) {
      continue;
    }
    table.add_row({counter.name, std::to_string(value)});
  }
  return table;
}

}  // namespace numastream
