// TextTable: aligned console tables for the figure benches.
//
// Every bench binary prints the paper's reported series next to the simulated
// reproduction; this formatter keeps those tables readable and consistent.
// It also emits CSV so results can be re-plotted.
#pragma once

#include <string>
#include <vector>

namespace numastream {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows: formats doubles with `precision` digits.
  void add_row(const std::string& first_cell, const std::vector<double>& values,
               int precision = 2);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Aligned text rendering with a header separator.
  [[nodiscard]] std::string render() const;

  /// Comma-separated rendering (headers first).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (bench helpers).
std::string fmt_double(double value, int precision = 2);

/// RFC-4180 field quoting: cells containing a comma, double quote, CR or LF
/// are wrapped in double quotes with embedded quotes doubled; everything
/// else passes through unchanged. Every CSV emitter in metrics/ uses this,
/// so a label like "2 NICs, pinned" can never shift downstream columns.
std::string csv_escape(const std::string& cell);

/// RFC-4180 parser for the CSV these emitters produce: returns one row per
/// record, honoring quoted fields (embedded commas, doubled quotes, embedded
/// newlines). The round-trip property: parse_csv(to_csv()) == cells.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace numastream
