// ResumeCounters: one pipeline's crash-recovery ledger.
//
// The fourth ledger next to FaultCounters (injected transport faults),
// OverloadCounters (pressure) and HealthCounters (self-healing): this one
// accounts for what the durability layer did across endpoint restarts —
// crashes observed, journal records written and replayed on recovery, torn
// records truncated by the recovery scan, RESUME handshakes exchanged,
// duplicate chunks suppressed on both sides of the wire, and the re-work the
// crash actually cost. Crash points and restart delays are seeded, so in
// simulation these counters double as the bit-identity fingerprint of a
// recovery run: same seed, same snapshot.
//
// Counters are relaxed atomics; snapshot() yields a comparable plain struct
// and resume_table() renders one through the shared TextTable formatter.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "metrics/table.h"

namespace numastream {

/// Plain-value copy of ResumeCounters, comparable and printable.
struct ResumeCountersSnapshot {
  // Crash lifecycle.
  std::uint64_t crashes_observed = 0;   ///< endpoint deaths seen (either side)
  std::uint64_t resume_handshakes = 0;  ///< RESUME frames accepted by a sender

  // Journal activity.
  std::uint64_t journal_records_written = 0;   ///< appended + flushed records
  std::uint64_t journal_records_replayed = 0;  ///< records read back on recovery
  std::uint64_t torn_records_truncated = 0;    ///< corrupt tail records dropped

  // Exactly-once enforcement.
  std::uint64_t duplicates_suppressed = 0;  ///< sender skipped <= watermark
  std::uint64_t duplicate_deliveries_suppressed = 0;  ///< receiver ledger hits

  // What the crash cost.
  std::uint64_t replayed_chunks = 0;    ///< chunks re-sent after a restart
  std::uint64_t rework_bytes = 0;       ///< wire bytes of those replays
  std::uint64_t recovery_wall_ms = 0;   ///< crash-to-first-resumed-send time

  friend bool operator==(const ResumeCountersSnapshot&,
                         const ResumeCountersSnapshot&) = default;

  /// One-line summary of the nonzero counters ("clean" when all zero).
  [[nodiscard]] std::string to_string() const;
};

/// Thread-safe counter set shared by a pipeline's workers and the journal.
/// All increments are relaxed: counters are statistics, not synchronization.
class ResumeCounters {
 public:
  std::atomic<std::uint64_t> crashes_observed{0};
  std::atomic<std::uint64_t> resume_handshakes{0};

  std::atomic<std::uint64_t> journal_records_written{0};
  std::atomic<std::uint64_t> journal_records_replayed{0};
  std::atomic<std::uint64_t> torn_records_truncated{0};

  std::atomic<std::uint64_t> duplicates_suppressed{0};
  std::atomic<std::uint64_t> duplicate_deliveries_suppressed{0};

  std::atomic<std::uint64_t> replayed_chunks{0};
  std::atomic<std::uint64_t> rework_bytes{0};
  std::atomic<std::uint64_t> recovery_wall_ms{0};

  [[nodiscard]] ResumeCountersSnapshot snapshot() const;
};

/// Renders a snapshot as a two-column table ("counter", "count"). With
/// `nonzero_only`, clean counters are elided so crash-free runs print short.
TextTable resume_table(const ResumeCountersSnapshot& snapshot,
                       bool nonzero_only = false);

}  // namespace numastream
