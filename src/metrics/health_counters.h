// HealthCounters: one pipeline's self-healing ledger.
//
// The third ledger next to FaultCounters (injected transport faults) and
// OverloadCounters (pressure): this one accounts for what the health
// monitor saw and what the runtime did about it — degradations detected,
// resources declared failed, recoveries observed, placements recomputed and
// workers live-migrated, plus how long the pipeline spent below its
// baseline. The self-healing path is deterministic in simulation, so these
// counters double as the bit-identity fingerprint of a recovery scenario:
// same seed, same snapshot.
//
// Counters are relaxed atomics; snapshot() yields a comparable plain struct
// and health_table() renders one through the shared TextTable formatter.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "metrics/table.h"

namespace numastream {

/// Plain-value copy of HealthCounters, comparable and printable.
struct HealthCountersSnapshot {
  // State-machine transitions (core/health.h HealthMonitor).
  std::uint64_t degraded_detections = 0;  ///< healthy -> degraded transitions
  std::uint64_t failure_detections = 0;   ///< degraded -> failed transitions
  std::uint64_t recoveries = 0;           ///< returns to healthy after a demotion

  // What the runtime did about it.
  std::uint64_t replans = 0;     ///< placements recomputed against a health mask
  std::uint64_t migrations = 0;  ///< workers re-pinned at a chunk boundary

  // Total virtual/wall milliseconds any tracked resource spent not-healthy.
  std::uint64_t time_in_degraded_ms = 0;

  friend bool operator==(const HealthCountersSnapshot&,
                         const HealthCountersSnapshot&) = default;

  /// One-line summary of the nonzero counters ("clean" when all zero).
  [[nodiscard]] std::string to_string() const;
};

/// Thread-safe counter set shared by a pipeline's workers and its health
/// monitor. All increments are relaxed: counters are statistics, not
/// synchronization.
class HealthCounters {
 public:
  std::atomic<std::uint64_t> degraded_detections{0};
  std::atomic<std::uint64_t> failure_detections{0};
  std::atomic<std::uint64_t> recoveries{0};

  std::atomic<std::uint64_t> replans{0};
  std::atomic<std::uint64_t> migrations{0};

  std::atomic<std::uint64_t> time_in_degraded_ms{0};

  [[nodiscard]] HealthCountersSnapshot snapshot() const;
};

/// Renders a snapshot as a two-column table ("counter", "count"). With
/// `nonzero_only`, clean counters are elided so healthy runs print short.
TextTable health_table(const HealthCountersSnapshot& snapshot,
                       bool nonzero_only = false);

}  // namespace numastream
