#include "metrics/overload_counters.h"

namespace numastream {
namespace {

struct NamedCounter {
  const char* name;
  std::uint64_t OverloadCountersSnapshot::*field;
};

// One row per counter, in pressure order: shedding first, then the flow
// control and admission machinery that prevented worse, then the gauges.
constexpr NamedCounter kCounters[] = {
    {"shed_newest", &OverloadCountersSnapshot::shed_newest},
    {"shed_oldest", &OverloadCountersSnapshot::shed_oldest},
    {"priority_evictions", &OverloadCountersSnapshot::priority_evictions},
    {"credit_stalls", &OverloadCountersSnapshot::credit_stalls},
    {"credit_grants", &OverloadCountersSnapshot::credit_grants},
    {"budget_stalls", &OverloadCountersSnapshot::budget_stalls},
    {"budget_rejections", &OverloadCountersSnapshot::budget_rejections},
    {"slow_streams_evicted", &OverloadCountersSnapshot::slow_streams_evicted},
    {"evicted_chunks", &OverloadCountersSnapshot::evicted_chunks},
    {"drain_requests", &OverloadCountersSnapshot::drain_requests},
    {"drain_timeouts", &OverloadCountersSnapshot::drain_timeouts},
    {"peak_bytes_in_flight", &OverloadCountersSnapshot::peak_bytes_in_flight},
};

}  // namespace

std::string OverloadCountersSnapshot::to_string() const {
  std::string out;
  for (const auto& counter : kCounters) {
    const std::uint64_t value = this->*(counter.field);
    if (value == 0) {
      continue;
    }
    if (!out.empty()) {
      out += " ";
    }
    out += counter.name;
    out += "=";
    out += std::to_string(value);
  }
  return out.empty() ? "clean" : out;
}

void OverloadCounters::record_peak(std::uint64_t bytes) {
  std::uint64_t seen = peak_bytes_in_flight.load(std::memory_order_relaxed);
  while (seen < bytes && !peak_bytes_in_flight.compare_exchange_weak(
                             seen, bytes, std::memory_order_relaxed)) {
  }
}

OverloadCountersSnapshot OverloadCounters::snapshot() const {
  OverloadCountersSnapshot s;
  s.shed_newest = shed_newest.load(std::memory_order_relaxed);
  s.shed_oldest = shed_oldest.load(std::memory_order_relaxed);
  s.priority_evictions = priority_evictions.load(std::memory_order_relaxed);
  s.credit_stalls = credit_stalls.load(std::memory_order_relaxed);
  s.credit_grants = credit_grants.load(std::memory_order_relaxed);
  s.budget_stalls = budget_stalls.load(std::memory_order_relaxed);
  s.budget_rejections = budget_rejections.load(std::memory_order_relaxed);
  s.slow_streams_evicted = slow_streams_evicted.load(std::memory_order_relaxed);
  s.evicted_chunks = evicted_chunks.load(std::memory_order_relaxed);
  s.drain_requests = drain_requests.load(std::memory_order_relaxed);
  s.drain_timeouts = drain_timeouts.load(std::memory_order_relaxed);
  s.peak_bytes_in_flight = peak_bytes_in_flight.load(std::memory_order_relaxed);
  return s;
}

TextTable overload_table(const OverloadCountersSnapshot& snapshot,
                         bool nonzero_only) {
  TextTable table({"counter", "count"});
  for (const auto& counter : kCounters) {
    const std::uint64_t value = snapshot.*(counter.field);
    if (nonzero_only && value == 0) {
      continue;
    }
    table.add_row({counter.name, std::to_string(value)});
  }
  return table;
}

}  // namespace numastream
