#include "metrics/remote_access.h"

#include <algorithm>
#include <cstdio>

#include "common/assert.h"

namespace numastream {

RemoteAccessCounter::RemoteAccessCounter(std::size_t num_cores)
    : local_(num_cores, 0), remote_(num_cores, 0) {}

void RemoteAccessCounter::add_local_bytes(int core, std::uint64_t bytes) {
  NS_CHECK(core >= 0 && static_cast<std::size_t>(core) < local_.size(),
           "core id out of range");
  local_[static_cast<std::size_t>(core)] += bytes;
}

void RemoteAccessCounter::add_remote_bytes(int core, std::uint64_t bytes) {
  NS_CHECK(core >= 0 && static_cast<std::size_t>(core) < remote_.size(),
           "core id out of range");
  remote_[static_cast<std::size_t>(core)] += bytes;
}

std::uint64_t RemoteAccessCounter::local_bytes(int core) const {
  NS_CHECK(core >= 0 && static_cast<std::size_t>(core) < local_.size(),
           "core id out of range");
  return local_[static_cast<std::size_t>(core)];
}

std::uint64_t RemoteAccessCounter::remote_bytes(int core) const {
  NS_CHECK(core >= 0 && static_cast<std::size_t>(core) < remote_.size(),
           "core id out of range");
  return remote_[static_cast<std::size_t>(core)];
}

std::vector<double> RemoteAccessCounter::normalized_remote() const {
  std::vector<double> out(remote_.size(), 0.0);
  const std::uint64_t peak = *std::max_element(remote_.begin(), remote_.end());
  if (peak == 0) {
    return out;
  }
  for (std::size_t core = 0; core < remote_.size(); ++core) {
    out[core] = static_cast<double>(remote_[core]) / static_cast<double>(peak);
  }
  return out;
}

double RemoteAccessCounter::remote_fraction(int core) const {
  const std::uint64_t local = local_bytes(core);
  const std::uint64_t remote = remote_bytes(core);
  const std::uint64_t total = local + remote;
  return total == 0 ? 0.0 : static_cast<double>(remote) / static_cast<double>(total);
}

std::string RemoteAccessCounter::to_csv(const std::string& label) const {
  const std::vector<double> normalized = normalized_remote();
  std::string out;
  char line[128];
  for (std::size_t core = 0; core < local_.size(); ++core) {
    std::snprintf(line, sizeof(line), "%s,%zu,%llu,%llu,%.4f\n", label.c_str(), core,
                  static_cast<unsigned long long>(local_[core]),
                  static_cast<unsigned long long>(remote_[core]), normalized[core]);
    out += line;
  }
  return out;
}

}  // namespace numastream
