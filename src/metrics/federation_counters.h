// FederationCounters: one gateway cluster's replication-and-failover ledger.
//
// The fifth ledger next to FaultCounters, OverloadCounters, HealthCounters
// and ResumeCounters: this one accounts for what the federation layer did —
// journal records shipped to the buddy and acked back, heartbeats exchanged,
// peer failures detected, whole-gateway failovers orchestrated, streams
// re-resolved through the ring, and the epoch fence doing its job (stale
// primaries whose appends were rejected after a takeover). Failure
// detection and kill points are seeded, so in simulation these counters
// double as the bit-identity fingerprint of a failover run: same seed,
// same snapshot.
//
// Counters are relaxed atomics, each padded to its own cache line
// (PaddedCounter): different pipeline threads bump different members, and
// packing them 8-per-line made physically independent increments contend
// (false sharing; see metrics/padded_counter.h and the counter micro in
// bench/micro_queue). snapshot() yields a comparable plain struct and
// federation_table() renders one through the shared TextTable formatter.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "metrics/padded_counter.h"
#include "metrics/table.h"

namespace numastream {

/// Plain-value copy of FederationCounters, comparable and printable.
struct FederationCountersSnapshot {
  // Replication traffic (primary -> standby).
  std::uint64_t repl_records_shipped = 0;  ///< journal records sent to buddy
  std::uint64_t repl_appends_acked = 0;    ///< append frames acked durable
  std::uint64_t repl_lag_records_max = 0;  ///< peak shipped-minus-acked depth

  // Liveness.
  std::uint64_t heartbeats_sent = 0;      ///< probes emitted toward peers
  std::uint64_t peer_failures_detected = 0;  ///< detector breaches latched
  std::uint64_t degraded_peers_detected = 0;  ///< gray-failure episodes latched

  // Failover orchestration.
  std::uint64_t failovers = 0;            ///< whole-gateway takeovers
  std::uint64_t streams_reresolved = 0;   ///< streams re-homed via the ring
  std::uint64_t failover_wall_ms = 0;     ///< death-to-first-resumed-delivery
  std::uint64_t epoch = 0;                ///< highest epoch reached (max, not sum)

  // The fence.
  std::uint64_t fenced_appends_rejected = 0;  ///< stale-epoch writes refused

  // Planned handoffs (load-driven rebalancing, DESIGN.md §13).
  std::uint64_t rebalance_triggers = 0;    ///< controller decided to move load
  std::uint64_t handoffs_planned = 0;      ///< three-phase transfers started
  std::uint64_t handoffs_completed = 0;    ///< transfers committed (fence up)
  std::uint64_t handoffs_aborted = 0;      ///< transfers abandoned mid-flight
  std::uint64_t handoff_streams_moved = 0; ///< streams re-homed by handoff
  std::uint64_t handoff_wall_ms = 0;       ///< freeze-to-resumed-delivery

  friend bool operator==(const FederationCountersSnapshot&,
                         const FederationCountersSnapshot&) = default;

  /// One-line summary of the nonzero counters ("clean" when all zero).
  [[nodiscard]] std::string to_string() const;
};

/// Thread-safe counter set shared by the replication link, the failure
/// detector, and the failover coordinator. All increments are relaxed:
/// counters are statistics, not synchronization.
class FederationCounters {
 public:
  PaddedCounter repl_records_shipped;
  PaddedCounter repl_appends_acked;
  PaddedCounter repl_lag_records_max;

  PaddedCounter heartbeats_sent;
  PaddedCounter peer_failures_detected;
  PaddedCounter degraded_peers_detected;

  PaddedCounter failovers;
  PaddedCounter streams_reresolved;
  PaddedCounter failover_wall_ms;
  PaddedCounter epoch;

  PaddedCounter fenced_appends_rejected;

  PaddedCounter rebalance_triggers;
  PaddedCounter handoffs_planned;
  PaddedCounter handoffs_completed;
  PaddedCounter handoffs_aborted;
  PaddedCounter handoff_streams_moved;
  PaddedCounter handoff_wall_ms;

  /// Raises `repl_lag_records_max` to `lag` if it is higher than the
  /// current peak (monotone max, not a sum).
  void note_repl_lag(std::uint64_t lag);

  /// Raises `epoch` to `value` if it is higher (monotone max).
  void note_epoch(std::uint64_t value);

  [[nodiscard]] FederationCountersSnapshot snapshot() const;
};

/// Renders a snapshot as a two-column table ("counter", "count"). With
/// `nonzero_only`, clean counters are elided so failover-free runs print
/// short.
TextTable federation_table(const FederationCountersSnapshot& snapshot,
                           bool nonzero_only = false);

}  // namespace numastream
