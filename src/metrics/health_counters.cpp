#include "metrics/health_counters.h"

namespace numastream {
namespace {

struct NamedCounter {
  const char* name;
  std::uint64_t HealthCountersSnapshot::*field;
};

// One row per counter, in incident order: what was detected, then what the
// runtime did, then how long the incident lasted.
constexpr NamedCounter kCounters[] = {
    {"degraded_detections", &HealthCountersSnapshot::degraded_detections},
    {"failure_detections", &HealthCountersSnapshot::failure_detections},
    {"recoveries", &HealthCountersSnapshot::recoveries},
    {"replans", &HealthCountersSnapshot::replans},
    {"migrations", &HealthCountersSnapshot::migrations},
    {"time_in_degraded_ms", &HealthCountersSnapshot::time_in_degraded_ms},
};

}  // namespace

std::string HealthCountersSnapshot::to_string() const {
  std::string out;
  for (const auto& counter : kCounters) {
    const std::uint64_t value = this->*(counter.field);
    if (value == 0) {
      continue;
    }
    if (!out.empty()) {
      out += " ";
    }
    out += counter.name;
    out += "=";
    out += std::to_string(value);
  }
  return out.empty() ? "clean" : out;
}

HealthCountersSnapshot HealthCounters::snapshot() const {
  HealthCountersSnapshot s;
  s.degraded_detections = degraded_detections.load(std::memory_order_relaxed);
  s.failure_detections = failure_detections.load(std::memory_order_relaxed);
  s.recoveries = recoveries.load(std::memory_order_relaxed);
  s.replans = replans.load(std::memory_order_relaxed);
  s.migrations = migrations.load(std::memory_order_relaxed);
  s.time_in_degraded_ms = time_in_degraded_ms.load(std::memory_order_relaxed);
  return s;
}

TextTable health_table(const HealthCountersSnapshot& snapshot,
                       bool nonzero_only) {
  TextTable table({"counter", "count"});
  for (const auto& counter : kCounters) {
    const std::uint64_t value = snapshot.*(counter.field);
    if (nonzero_only && value == 0) {
      continue;
    }
    table.add_row({counter.name, std::to_string(value)});
  }
  return table;
}

}  // namespace numastream
