// RemoteAccessCounter: per-core local vs remote memory traffic.
//
// Figure 7 of the paper shows "average normalized remote memory access (NUMA
// access) bandwidth for every CPU core" — the direct evidence that placing
// receiving threads on the wrong socket forces their packet reads across the
// inter-socket interconnect. The simulated machine routes every memory
// transfer through this counter, tagging it local (requesting core's own
// domain) or remote (any other domain).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace numastream {

class RemoteAccessCounter {
 public:
  explicit RemoteAccessCounter(std::size_t num_cores);

  void add_local_bytes(int core, std::uint64_t bytes);
  void add_remote_bytes(int core, std::uint64_t bytes);

  [[nodiscard]] std::size_t num_cores() const noexcept { return local_.size(); }
  [[nodiscard]] std::uint64_t local_bytes(int core) const;
  [[nodiscard]] std::uint64_t remote_bytes(int core) const;

  /// Remote bytes of each core divided by the maximum remote bytes of any
  /// core — the "normalized remote access bandwidth" axis of Fig 7. All
  /// zeros when no remote traffic occurred anywhere.
  [[nodiscard]] std::vector<double> normalized_remote() const;

  /// Fraction of this core's traffic that was remote (0 when idle).
  [[nodiscard]] double remote_fraction(int core) const;

  /// "core,local_bytes,remote_bytes,normalized_remote" CSV rows.
  [[nodiscard]] std::string to_csv(const std::string& label) const;

 private:
  std::vector<std::uint64_t> local_;
  std::vector<std::uint64_t> remote_;
};

}  // namespace numastream
