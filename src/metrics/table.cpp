#include "metrics/table.h"

#include <algorithm>
#include <cstdio>

#include "common/assert.h"

namespace numastream {

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NS_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  NS_CHECK(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& first_cell, const std::vector<double>& values,
                        int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(first_cell);
  for (const double v : values) {
    cells.push_back(fmt_double(v, precision));
  }
  add_row(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += c == 0 ? "" : "  ";
      // Right-align all but the first column (numbers read better that way).
      const std::size_t pad = widths[c] - cells[c].size();
      if (c == 0) {
        line += cells[c];
        line += std::string(pad, ' ');
      } else {
        line += std::string(pad, ' ');
        line += cells[c];
      }
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) {
    total += w + 2;
  }
  out += std::string(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string TextTable::to_csv() const {
  const auto join = [](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) {
        line += ',';
      }
      line += cells[c];
    }
    line += '\n';
    return line;
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) {
    out += join(row);
  }
  return out;
}

}  // namespace numastream
