#include "metrics/table.h"

#include <algorithm>
#include <cstdio>

#include "common/assert.h"

namespace numastream {

std::string fmt_double(double value, int precision) {
  char buf[64];
  const int needed = std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  if (needed < 0) {
    return "";
  }
  if (static_cast<std::size_t>(needed) < sizeof(buf)) {
    return std::string(buf, static_cast<std::size_t>(needed));
  }
  // Large value/precision combinations (e.g. 1e300 at precision 30) need
  // more than the stack buffer; size the result from snprintf's count
  // instead of silently truncating.
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::snprintf(out.data(), out.size() + 1, "%.*f", precision, value);
  return out;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) {
    return cell;
  }
  std::string out;
  out.reserve(cell.size() + 2);
  out += '"';
  for (const char c : cell) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool quoted = false;
  bool cell_started = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;  // doubled quote inside a quoted field
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    if (c == '"' && cell.empty() && !cell_started) {
      quoted = true;
      cell_started = true;
    } else if (c == ',') {
      row.push_back(std::move(cell));
      cell.clear();
      cell_started = false;
    } else if (c == '\n') {
      row.push_back(std::move(cell));
      cell.clear();
      cell_started = false;
      rows.push_back(std::move(row));
      row.clear();
    } else if (c == '\r') {
      // swallow the CR of a CRLF line ending
    } else {
      cell += c;
      cell_started = true;
    }
  }
  if (cell_started || !cell.empty() || !row.empty()) {
    row.push_back(std::move(cell));
    rows.push_back(std::move(row));
  }
  return rows;
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NS_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  NS_CHECK(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& first_cell, const std::vector<double>& values,
                        int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(first_cell);
  for (const double v : values) {
    cells.push_back(fmt_double(v, precision));
  }
  add_row(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += c == 0 ? "" : "  ";
      // Right-align all but the first column (numbers read better that way).
      const std::size_t pad = widths[c] - cells[c].size();
      if (c == 0) {
        line += cells[c];
        line += std::string(pad, ' ');
      } else {
        line += std::string(pad, ' ');
        line += cells[c];
      }
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) {
    total += w + 2;
  }
  out += std::string(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string TextTable::to_csv() const {
  const auto join = [](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) {
        line += ',';
      }
      line += csv_escape(cells[c]);
    }
    line += '\n';
    return line;
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) {
    out += join(row);
  }
  return out;
}

}  // namespace numastream
