// Bounded lock-free multi-producer single-consumer ring.
//
// Extends the spsc_ring.h idiom to many producers using the classic
// per-slot-sequence bounded queue (Vyukov). Each slot carries an atomic
// sequence number that encodes which lap of the ring it belongs to:
//
//   seq == pos          slot free, a producer may claim position `pos`
//   seq == pos + 1      slot full, the consumer may read position `pos`
//   anything else       another thread is mid-claim, or the ring is
//                       full/empty for this position
//
// Producers race a CAS on tail_ to claim a slot, then construct the value
// and publish it by storing seq = pos + 1 (release). The single consumer
// never needs a CAS: it owns head_, checks seq == pos + 1 (acquire), moves
// the value out, and recycles the slot for the next lap by storing
// seq = pos + capacity. Capacity is rounded up to a power of two so lap
// arithmetic is a mask; sequence numbers are 64-bit so wraparound of the
// counter itself is out of reach (2^64 pushes).
//
// head_, tail_ and every slot's sequence live on their own cache line
// (alignas on the ring ends, slot stride padded) so producers hammering
// tail_ don't invalidate the consumer's head_ line — the same false-sharing
// discipline as spsc_ring.h, which stays the cheaper choice when there is
// only one producer.
//
// This is deliberately MPSC, not MPMC: every fan-in handoff in the pipeline
// (compressors -> sender socket, receivers -> decompressor) has exactly one
// consumer per ring, and keeping the consumer side CAS-free keeps pop() at
// one acquire load + one release store. Multi-consumer stages get one ring
// per consumer (see fanin_queue.h) rather than a shared MPMC ring.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace numastream {

template <typename T>
class MpscRing {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit MpscRing(std::size_t min_capacity)
      : capacity_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Attempts to enqueue. Returns false when the ring is full. Safe to call
  /// from any number of producer threads. On success `value` is moved from.
  bool try_push(T& value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; retry with the fresh tail.
      } else if (dif < 0) {
        // Slot still holds last lap's value: the ring is full *for this
        // position*. Re-check tail in case the consumer freed slots and
        // another producer advanced past us while we looked.
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        if (tail == pos) {
          return false;
        }
        pos = tail;
      } else {
        // dif > 0: another producer claimed this position; chase the tail.
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  bool try_push(T&& value) {
    T moved = std::move(value);
    return try_push(moved);
  }

  /// Dequeues the oldest element, or nullopt when the ring is empty (or a
  /// producer has claimed the head slot but not yet published it). Must be
  /// called from a single consumer thread.
  std::optional<T> try_pop() {
    const std::size_t pos = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & mask_];
    const std::size_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq != pos + 1) {
      return std::nullopt;  // empty, or the head producer is mid-publish
    }
    std::optional<T> value(std::move(slot.value));
    slot.value = T{};
    slot.seq.store(pos + capacity_, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return value;
  }

  /// Racy size estimate, for watermarks and gauges only.
  [[nodiscard]] std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct alignas(64) Slot {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  const std::size_t capacity_;
  const std::size_t mask_;
  std::vector<Slot> slots_;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer-owned
  alignas(64) std::atomic<std::size_t> tail_{0};  // producers CAS here
};

}  // namespace numastream
