// CancelSignal: a raise-once cancellation flag with a wake-up channel.
//
// The runtime has always cancelled with a plain std::atomic<bool> (the
// StreamRegistry latch): cheap to test, but invisible to condition
// variables, so every cancellable queue wait had to poll in short slices —
// a teardown under a raised flag burned a core per blocked worker just to
// notice it (the busy-poll bug this type fixes; see bounded_queue.h).
//
// CancelSignal keeps the flag (so interruptible_sleep / with_retry and every
// existing `const std::atomic<bool>*` consumer work unchanged) and adds
// registered wakers: raise() first publishes the flag, then invokes every
// registered waker. A waker is supplied by the waiting structure (a queue, a
// channel) and must take that structure's mutex before notifying its
// condition variables — the lock order guarantees a waiter that tested the
// flag before raise() is either still holding the mutex (the notify waits
// for it to block) or already parked (the notify wakes it): no lost wakeup,
// no polling.
//
// Lifetime: wakers unregister in the owning structure's destructor, so a
// signal may outlive any queue bound to it. raise() is idempotent and
// thread-safe; registration is thread-safe but typically happens during
// pipeline setup.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

namespace numastream {

class CancelSignal {
 public:
  using Waker = std::function<void()>;

  CancelSignal() = default;
  CancelSignal(const CancelSignal&) = delete;
  CancelSignal& operator=(const CancelSignal&) = delete;

  /// The flag, for every legacy `const std::atomic<bool>*` consumer
  /// (BoundedQueue waits, with_retry, interruptible_sleep). A structure
  /// that recognizes this exact pointer as its bound signal may block
  /// indefinitely instead of polling — raise() will wake it.
  [[nodiscard]] const std::atomic<bool>* flag() const noexcept { return &raised_; }

  [[nodiscard]] bool raised() const noexcept {
    return raised_.load(std::memory_order_acquire);
  }

  /// Publishes the flag, then runs every registered waker. Idempotent: a
  /// second raise still re-runs the wakers (harmless — notifying an empty
  /// wait set does nothing) so racing teardown paths need no coordination.
  ///
  /// Wakers run under the signal's lock: remove_waker therefore serializes
  /// with a raise in flight, so once remove_waker returns the waker will
  /// never run again — the owner may safely destruct. (No deadlock: wakers
  /// only take their own structure's mutex and notify; the lock order is
  /// strictly signal -> structure.)
  void raise() {
    raised_.store(true, std::memory_order_release);
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& [token, waker] : wakers_) {
      waker();
    }
  }

  /// Registers a waker; returns a token for remove_waker. If the signal is
  /// already raised the waker runs immediately (the waiter it guards would
  /// otherwise sleep through a raise that predates its registration).
  std::uint64_t add_waker(Waker waker) {
    std::uint64_t token = 0;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      token = next_token_++;
      wakers_.emplace_back(token, waker);
    }
    if (raised()) {
      waker();
    }
    return token;
  }

  void remove_waker(std::uint64_t token) {
    const std::lock_guard<std::mutex> lock(mu_);
    std::erase_if(wakers_, [&](const auto& entry) { return entry.first == token; });
  }

 private:
  std::atomic<bool> raised_{false};
  std::mutex mu_;
  std::vector<std::pair<std::uint64_t, Waker>> wakers_;
  std::uint64_t next_token_ = 1;
};

}  // namespace numastream
