// PinnedThreadGroup: the runtime's worker-thread primitive.
//
// The paper's pipeline does not use a shared task pool: each stage owns a
// fixed set of long-lived worker threads, each bound to a NUMA domain before
// it starts processing. PinnedThreadGroup captures exactly that: spawn N
// threads, apply a NumaBinding to each, run the given loop body, join on
// destruction (RAII — a pipeline can never leak a running thread).
#pragma once

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "affinity/binding.h"
#include "common/status.h"
#include "topo/topology.h"

namespace numastream {

class PinnedThreadGroup {
 public:
  /// Context passed to each worker body.
  struct WorkerContext {
    int worker_index = 0;          ///< 0..count-1 within this group
    NumaBinding binding;           ///< the binding that was applied
    Status binding_status;         ///< outcome of apply_binding (workers may
                                   ///< proceed unpinned if pinning failed)
  };

  using WorkerBody = std::function<void(const WorkerContext&)>;

  /// Spawns `count` workers named "<name>-<i>". Worker i receives
  /// bindings[i % bindings.size()]; pass a single binding to bind the whole
  /// group to one domain, or alternating bindings to split a group across
  /// domains (the paper's configurations E/F).
  PinnedThreadGroup(const MachineTopology& topo, std::string name, std::size_t count,
                    std::vector<NumaBinding> bindings, WorkerBody body,
                    PlacementRecorder* recorder = nullptr);

  PinnedThreadGroup(const PinnedThreadGroup&) = delete;
  PinnedThreadGroup& operator=(const PinnedThreadGroup&) = delete;

  /// Joins all workers (blocks until every body returns).
  ~PinnedThreadGroup();

  /// Explicit join; idempotent.
  void join();

  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace numastream
