#include "concurrency/thread_pool.h"

#include "affinity/affinity.h"
#include "common/assert.h"

namespace numastream {

PinnedThreadGroup::PinnedThreadGroup(const MachineTopology& topo, std::string name,
                                     std::size_t count, std::vector<NumaBinding> bindings,
                                     WorkerBody body, PlacementRecorder* recorder) {
  NS_CHECK(!bindings.empty(), "PinnedThreadGroup needs at least one binding");
  NS_CHECK(body != nullptr, "PinnedThreadGroup needs a worker body");
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NumaBinding binding = bindings[i % bindings.size()];
    std::string worker_name = name + "-" + std::to_string(i);
    threads_.emplace_back([&topo, binding, worker_name = std::move(worker_name),
                           i, body, recorder] {
      set_current_thread_name(worker_name);
      WorkerContext ctx;
      ctx.worker_index = static_cast<int>(i);
      ctx.binding = binding;
      ctx.binding_status = apply_binding(topo, binding, worker_name, recorder);
      body(ctx);
    });
  }
}

PinnedThreadGroup::~PinnedThreadGroup() { join(); }

void PinnedThreadGroup::join() {
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

}  // namespace numastream
