// SpscRing<T>: a wait-free single-producer / single-consumer ring buffer.
//
// Used on per-connection fast paths where exactly one thread produces and one
// consumes (e.g. a receiver thread handing frames to its paired decompressor
// in the 1:1 pipeline layout). Unlike BoundedQueue it never takes a lock and
// never blocks: callers spin or poll, which is the right discipline for the
// latency-sensitive receive path the paper's Observation 1 is about.
//
// Correctness: head_ is written only by the consumer, tail_ only by the
// producer. Each side reads the other's index with acquire ordering and
// publishes its own with release ordering, the standard Lamport ring
// construction. Capacity is rounded up to a power of two so index wrapping is
// a mask, and one slot is kept empty to distinguish full from empty.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/assert.h"

namespace numastream {

template <typename T>
class SpscRing {
 public:
  /// `min_capacity` usable slots (rounded up to 2^k - 1 usable).
  explicit SpscRing(std::size_t min_capacity) {
    NS_CHECK(min_capacity > 0, "SpscRing capacity must be positive");
    const std::size_t size = std::bit_ceil(min_capacity + 1);
    mask_ = size - 1;
    slots_.resize(size);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full (item is untouched — the caller
  /// keeps ownership and retries).
  bool try_push(T& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == head_.load(std::memory_order_acquire)) {
      return false;  // full
    }
    slots_[tail] = std::move(item);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. nullopt when empty.
  std::optional<T> try_pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) {
      return std::nullopt;  // empty
    }
    std::optional<T> item(std::move(slots_[head]));
    head_.store((head + 1) & mask_, std::memory_order_release);
    return item;
  }

  /// Approximate occupancy (exact if called from either endpoint thread).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (tail - head) & mask_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer-owned
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer-owned
};

}  // namespace numastream
