// FanInQueue: a bounded, closeable, cancellable fan-in channel built from
// per-consumer lock-free MPSC rings.
//
// This is the lock-free replacement for BoundedQueue at the pipeline's two
// fan-in handoffs (compressors -> senders, receivers -> decompressors). It
// keeps the full BoundedQueue contract the pipeline depends on:
//
//   * bounded backpressure  — total ring capacity >= requested capacity,
//     push blocks (or deadlines out) when every ring is full;
//   * closeable end-of-stream — close() makes pushes fail and pops drain
//     the remaining elements then return nullopt;
//   * cancel/deadline waits — a raised cancel flag aborts a blocked push
//     with kUnavailable and a blocked pop with nullopt; push_until/pop_until
//     observe absolute deadlines.
//
// Topology: one MpscRing per *consumer*. Producers distribute over rings
// with a relaxed round-robin counter (falling back to scanning all rings
// when the preferred one is full), so the fast path is a handful of atomic
// ops with no mutex and no shared deque. Consumers pop only their own ring,
// which keeps the consumer side CAS-free — the reason this is MPSC-per-ring
// rather than one MPMC ring (see mpsc_ring.h and DESIGN.md §15). The cost
// is that "bounded by N" becomes "bounded by consumers * ceil(N/consumers)
// rounded up to powers of two": capacity is a backpressure watermark here,
// never an exactness guarantee, and BoundedQueue already only promises the
// former.
//
// Parking: waits use an eventcount-style scheme — waiters advertise
// themselves in an atomic counter (seq_cst RMW, so it orders against the
// producer's ring publish), re-check the condition, then park on a mutex +
// condition_variable. The post side (push/pop/close/cancel-raise) only
// touches the mutex when the waiter counter is non-zero, so the
// uncontended fast path never locks. Waits additionally wake on a 100 ms
// backstop slice — pure belt-and-braces liveness, not correctness; the
// regression test in concurrency_test.cpp asserts wakeups stay bounded
// (a 1 ms poll would show hundreds).
//
// Not supported (NS_CHECK-fails): try_evict_worst / try_evict_if_worse.
// A lock-free ring cannot scan-and-remove interior elements; config
// validation rejects `fastpath rings=on` combined with the evicting shed
// policies (drop_oldest / priority_evict) so the pipeline never gets here.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/assert.h"
#include "common/status.h"
#include "concurrency/cancel.h"
#include "concurrency/mpsc_ring.h"

namespace numastream {

template <typename T>
class FanInQueue {
 public:
  using Clock = std::chrono::steady_clock;
  static constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

  /// `capacity` bounds total buffered elements (rounded up, see header
  /// comment); `consumers` is the number of popping threads, each of which
  /// must pass its own stable index in [0, consumers) to pop().
  FanInQueue(std::size_t capacity, std::size_t consumers)
      : consumers_(consumers == 0 ? 1 : consumers) {
    NS_CHECK(capacity > 0, "FanInQueue capacity must be positive");
    const std::size_t per_ring = (capacity + consumers_ - 1) / consumers_;
    rings_.reserve(consumers_);
    for (std::size_t i = 0; i < consumers_; ++i) {
      rings_.push_back(std::make_unique<MpscRing<T>>(per_ring));
    }
  }

  ~FanInQueue() { unbind_cancel(); }

  FanInQueue(const FanInQueue&) = delete;
  FanInQueue& operator=(const FanInQueue&) = delete;

  /// Binds a CancelSignal so that raise() wakes parked waiters immediately.
  /// Waits passed this signal's flag() pointer then block fully between
  /// wakeups; waits passed any *other* atomic (legacy callers) fall back to
  /// the 100 ms backstop slices to notice it.
  void bind_cancel(CancelSignal* signal) {
    unbind_cancel();
    if (signal == nullptr) {
      return;
    }
    bound_signal_ = signal;
    waker_token_ = signal->add_waker([this] { wake_all(); });
  }

  void unbind_cancel() {
    if (bound_signal_ != nullptr) {
      bound_signal_->remove_waker(waker_token_);
      bound_signal_ = nullptr;
    }
  }

  Status push(T value, const std::atomic<bool>* cancel = nullptr) {
    return push_until(std::move(value), kNoDeadline, cancel);
  }

  Status push_until(T value, Clock::time_point deadline,
                    const std::atomic<bool>* cancel = nullptr) {
    for (;;) {
      if (cancelled(cancel)) {
        return unavailable_error("queue wait cancelled");
      }
      if (closed_.load(std::memory_order_acquire)) {
        return unavailable_error("queue is closed");
      }
      if (try_push_rings(value)) {
        notify_consumers();
        return Status::ok();
      }
      if (Clock::now() >= deadline) {
        return deadline_exceeded_error("queue push timed out");
      }
      if (!park(producer_waiters_, not_full_, deadline)) {
        return deadline_exceeded_error("queue push timed out");
      }
    }
  }

  Status try_push(T value) {
    if (closed_.load(std::memory_order_acquire)) {
      return unavailable_error("queue is closed");
    }
    if (!try_push_rings(value)) {
      return resource_exhausted_error("queue is full");
    }
    notify_consumers();
    return Status::ok();
  }

  std::optional<T> pop(std::size_t consumer, const std::atomic<bool>* cancel = nullptr) {
    return pop_until(consumer, kNoDeadline, cancel);
  }

  std::optional<T> pop_until(std::size_t consumer, Clock::time_point deadline,
                             const std::atomic<bool>* cancel = nullptr) {
    NS_CHECK(consumer < consumers_, "FanInQueue consumer index out of range");
    MpscRing<T>& ring = *rings_[consumer];
    for (;;) {
      if (auto value = ring.try_pop()) {
        notify_producers();
        return value;
      }
      if (cancelled(cancel)) {
        return std::nullopt;
      }
      if (closed_.load(std::memory_order_acquire)) {
        // Drain once more after observing closed: a producer may have
        // published between our failed pop and the closed check.
        if (auto value = ring.try_pop()) {
          notify_producers();
          return value;
        }
        return std::nullopt;
      }
      if (Clock::now() >= deadline) {
        return std::nullopt;
      }
      if (!park(consumer_waiters_, not_empty_, deadline)) {
        return std::nullopt;
      }
    }
  }

  /// Non-blocking pop from the consumer's own ring.
  std::optional<T> try_pop(std::size_t consumer) {
    NS_CHECK(consumer < consumers_, "FanInQueue consumer index out of range");
    if (auto value = rings_[consumer]->try_pop()) {
      notify_producers();
      return value;
    }
    return std::nullopt;
  }

  /// Drains any ring regardless of consumer ownership. Teardown only: the
  /// caller must guarantee every consumer thread has exited (this violates
  /// the single-consumer-per-ring rule otherwise). Used by the pipeline's
  /// settle path after joining workers.
  std::optional<T> try_pop_any() {
    for (auto& ring : rings_) {
      if (auto value = ring->try_pop()) {
        return value;
      }
    }
    return std::nullopt;
  }

  void close() {
    closed_.store(true, std::memory_order_release);
    wake_all();
  }

  [[nodiscard]] bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Racy total across rings; watermark/gauge use only.
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& ring : rings_) {
      total += ring->size_approx();
    }
    return total;
  }

  [[nodiscard]] std::size_t capacity() const {
    return rings_[0]->capacity() * consumers_;
  }

  [[nodiscard]] std::size_t consumers() const { return consumers_; }

  /// Times a waiter fully parked on the condition variable. Bounded-wakeup
  /// regression tests compare this against what a poll loop would show.
  [[nodiscard]] std::uint64_t parks() const {
    return parks_.load(std::memory_order_relaxed);
  }

 private:
  bool try_push_rings(T& value) {
    // Single consumer (the common fan-in shape: N compressors -> 1 sender)
    // means one ring and nothing to spread — skip the round-robin RMW,
    // which otherwise costs as much as the ring push itself.
    if (consumers_ == 1) {
      return rings_[0]->try_push(value);
    }
    // Round-robin start point spreads producers across rings; scan the rest
    // so one full ring (a slow consumer) never blocks push while another
    // ring has room.
    const std::size_t start = rr_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = 0; i < consumers_; ++i) {
      if (rings_[(start + i) % consumers_]->try_push(value)) {
        return true;
      }
    }
    return false;
  }

  static bool cancelled(const std::atomic<bool>* cancel) {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  /// Parks on `cv` until notified or the 100 ms backstop elapses. Returns
  /// false only when `deadline` has passed. The seq_cst increment of the
  /// waiter counter orders against the post side's seq_cst read: either the
  /// poster sees our increment (and notifies under the mutex), or we see
  /// the condition its ring-publish/close established when we re-check
  /// after parking.
  bool park(std::atomic<std::size_t>& waiters, std::condition_variable& cv,
            Clock::time_point deadline) {
    waiters.fetch_add(1, std::memory_order_seq_cst);
    parks_.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mu_);
      const auto backstop = Clock::now() + std::chrono::milliseconds(100);
      const auto until = deadline < backstop ? deadline : backstop;
      cv.wait_until(lock, until);
    }
    waiters.fetch_sub(1, std::memory_order_seq_cst);
    return Clock::now() < deadline;
  }

  void notify_consumers() {
    if (consumer_waiters_.load(std::memory_order_seq_cst) > 0) {
      // Taking the mutex before notifying closes the race where a waiter
      // has incremented the counter and re-checked the ring but not yet
      // parked: the lock forces us to wait until it holds the CV's mutex.
      const std::lock_guard<std::mutex> lock(mu_);
      not_empty_.notify_all();
    }
  }

  void notify_producers() {
    if (producer_waiters_.load(std::memory_order_seq_cst) > 0) {
      const std::lock_guard<std::mutex> lock(mu_);
      not_full_.notify_all();
    }
  }

  void wake_all() {
    const std::lock_guard<std::mutex> lock(mu_);
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  const std::size_t consumers_;
  std::vector<std::unique_ptr<MpscRing<T>>> rings_;
  std::atomic<std::size_t> rr_{0};
  std::atomic<bool> closed_{false};

  alignas(64) std::atomic<std::size_t> producer_waiters_{0};
  alignas(64) std::atomic<std::size_t> consumer_waiters_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;

  CancelSignal* bound_signal_ = nullptr;
  std::uint64_t waker_token_ = 0;
};

}  // namespace numastream
