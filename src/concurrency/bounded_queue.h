// BoundedQueue<T>: the thread-safe queue at the heart of the paper's pipeline
// (Fig. 2): compressors push into it, senders pop from it; receivers push,
// decompressors pop.
//
// Semantics chosen for pipeline use:
//  * bounded: a full queue blocks producers, providing backpressure so a slow
//    stage throttles the stages upstream of it instead of buffering unboundedly;
//  * closeable: when a stage finishes it closes the queue; consumers drain the
//    remaining items and then observe kUnavailable, which is the pipeline's
//    end-of-stream signal;
//  * MPMC: any number of producer and consumer threads.
//
// Implementation: mutex + two condition variables. For the chunk sizes this
// runtime moves (11 MiB), queue synchronization is nanoseconds against
// milliseconds of work per item, so a lock-free MPMC queue would add risk for
// no measurable gain. (The lock-free SpscRing exists for the per-connection
// fast paths; see spsc_ring.h.)
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iterator>
#include <mutex>
#include <optional>

#include "common/assert.h"
#include "common/status.h"
#include "concurrency/cancel.h"

namespace numastream {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    NS_CHECK(capacity > 0, "BoundedQueue capacity must be positive");
  }

  ~BoundedQueue() { bind_cancel(nullptr); }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Binds a CancelSignal: raise() then notifies this queue's condition
  /// variables, so waits whose `cancel` pointer is the signal's flag() block
  /// fully instead of polling. This is the fix for the teardown busy-poll —
  /// before, a blocked worker under a raised cancel flag woke every 1 ms
  /// (hundreds of spurious wakeups per parked worker per second of drain).
  /// Waits passed any other atomic keep the legacy poll-slice behaviour.
  /// Pass nullptr to unbind.
  void bind_cancel(CancelSignal* signal) {
    CancelSignal* old = nullptr;
    std::uint64_t old_token = 0;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      old = bound_signal_;
      old_token = waker_token_;
      bound_signal_ = nullptr;
    }
    if (old != nullptr) {
      // Serializes with a raise() in flight; after this the old waker can
      // never run again (see CancelSignal::raise).
      old->remove_waker(old_token);
    }
    if (signal == nullptr) {
      return;
    }
    const std::uint64_t token = signal->add_waker([this] {
      // Lock before notifying: a waiter that tested the flag just before
      // raise() is either still holding mu_ (we wait until it parks) or
      // already parked (notify wakes it). Without the lock that window is a
      // lost wakeup.
      const std::lock_guard<std::mutex> lock(mu_);
      not_full_.notify_all();
      not_empty_.notify_all();
    });
    const std::lock_guard<std::mutex> lock(mu_);
    bound_signal_ = signal;
    waker_token_ = token;
  }

  /// Blocks until space is available or the queue is closed.
  /// Returns kUnavailable if the queue was closed (the item is dropped; the
  /// pipeline is shutting down).
  ///
  /// `cancel`, when supplied, bounds the wait: a raised flag (e.g.
  /// StreamRegistry::cancel_flag() after a watchdog trip or a forced drain)
  /// aborts the push with kUnavailable even if nobody ever closes the queue,
  /// so pipeline teardown can never hang on a full queue. When the flag is
  /// the bound CancelSignal's (see bind_cancel), the wait blocks fully on
  /// the condition variable — raise() notifies it. An unbound flag has no
  /// notification channel, so those waits fall back to 1 ms poll slices.
  Status push(T item, const std::atomic<bool>* cancel = nullptr) {
    return push_until(std::move(item), kNoDeadline, cancel);
  }

  /// push() with a deadline: returns kDeadlineExceeded if neither space nor
  /// closure materialized in time (the item is dropped).
  Status push_until(T item, std::chrono::steady_clock::time_point deadline,
                    const std::atomic<bool>* cancel = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!wait_on(not_full_, lock, deadline, cancel,
                 [&] { return closed_ || items_.size() < capacity_; })) {
      return cancelled(cancel) ? unavailable_error("queue push cancelled")
                               : deadline_exceeded_error("queue push timed out");
    }
    if (closed_) {
      return unavailable_error("queue closed");
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return Status::ok();
  }

  /// Non-blocking push; kResourceExhausted when full, kUnavailable when closed.
  Status try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return unavailable_error("queue closed");
      }
      if (items_.size() >= capacity_) {
        return resource_exhausted_error("queue full");
      }
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return Status::ok();
  }

  /// Blocks until an item is available or the queue is closed AND drained.
  /// nullopt means end-of-stream: no item will ever arrive again.
  ///
  /// A raised `cancel` flag also yields nullopt — for a pipeline worker,
  /// cancellation and end-of-stream demand the same reaction (stop), and the
  /// caller holding the flag can distinguish the cases if it must.
  std::optional<T> pop(const std::atomic<bool>* cancel = nullptr) {
    return pop_until(kNoDeadline, cancel);
  }

  /// pop() with a deadline: nullopt when the deadline passes (or on cancel /
  /// end-of-stream). Callers distinguish a drained queue from a timeout via
  /// closed()/size() — the drain path only cares that it never blocks past
  /// its budget.
  std::optional<T> pop_until(std::chrono::steady_clock::time_point deadline,
                             const std::atomic<bool>* cancel = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!wait_on(not_empty_, lock, deadline, cancel,
                 [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;  // cancelled or timed out
    }
    if (items_.empty()) {
      return std::nullopt;  // closed and drained
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Removes and returns the queued item that ranks lowest under `better`
  /// (better(a, b) == true when `a` outranks `b`), or nullopt when empty.
  /// This is the priority-evict shed primitive: under overload a producer
  /// evicts the least valuable queued item to make room for a more valuable
  /// incoming one (see core/pipeline.cpp).
  template <typename Better>
  std::optional<T> try_evict_worst(Better better) {
    std::optional<T> worst;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) {
        return std::nullopt;
      }
      auto worst_it = items_.begin();
      for (auto it = std::next(items_.begin()); it != items_.end(); ++it) {
        if (better(*worst_it, *it)) {
          worst_it = it;
        }
      }
      worst = std::move(*worst_it);
      items_.erase(worst_it);
    }
    not_full_.notify_one();
    return worst;
  }

  /// try_evict_worst, but only when `incoming` outranks the worst queued
  /// item: the conditional form of priority eviction. Returns the evicted
  /// item, or nullopt when the queue is empty or every queued item ranks at
  /// least as high as `incoming` (the caller then sheds `incoming` itself).
  template <typename Better>
  std::optional<T> try_evict_if_worse(const T& incoming, Better better) {
    std::optional<T> worst;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) {
        return std::nullopt;
      }
      auto worst_it = items_.begin();
      for (auto it = std::next(items_.begin()); it != items_.end(); ++it) {
        if (better(*worst_it, *it)) {
          worst_it = it;
        }
      }
      if (!better(incoming, *worst_it)) {
        return std::nullopt;
      }
      worst = std::move(*worst_it);
      items_.erase(worst_it);
    }
    not_full_.notify_one();
    return worst;
  }

  /// Non-blocking pop; nullopt when currently empty (not necessarily closed).
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) {
        return std::nullopt;
      }
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Ends the stream. Idempotent. Producers' pending pushes fail; consumers
  /// drain remaining items then see end-of-stream.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Number of times a blocked wait woke on its condition variable (all wait
  /// kinds). The busy-poll regression test pins this down: a cancellable
  /// wait bound to a CancelSignal that blocks for N ms must wake O(1) times,
  /// where the old poll loop woke ~N times.
  [[nodiscard]] std::uint64_t cv_wakeups() const {
    return cv_wakeups_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::chrono::steady_clock::time_point kNoDeadline =
      std::chrono::steady_clock::time_point::max();

  static bool cancelled(const std::atomic<bool>* cancel) {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  /// Waits for `ready` on `cv` under `lock`; false when the cancel flag or
  /// deadline cut the wait short. The uncancellable, undeadlined wait and
  /// any wait whose cancel flag belongs to the bound CancelSignal block
  /// fully on the condition variable (raise() notifies us). Only waits
  /// cancellable through a foreign atomic — one with no notification
  /// channel — still poll in 1 ms slices.
  template <typename Ready>
  bool wait_on(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
               std::chrono::steady_clock::time_point deadline,
               const std::atomic<bool>* cancel, Ready ready) {
    const bool cancel_notifies =
        cancel == nullptr ||
        (bound_signal_ != nullptr && cancel == bound_signal_->flag());
    if (cancel_notifies && deadline == kNoDeadline) {
      while (!ready()) {
        if (cancelled(cancel)) {
          return false;
        }
        cv.wait(lock);
        cv_wakeups_.fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    }
    while (!ready()) {
      if (cancelled(cancel)) {
        return false;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        return false;
      }
      if (cancel_notifies) {
        cv.wait_until(lock, deadline);
      } else {
        const auto slice = std::min<std::chrono::steady_clock::duration>(
            std::chrono::milliseconds(1), deadline - now);
        cv.wait_for(lock, slice);
      }
      cv_wakeups_.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  std::atomic<std::uint64_t> cv_wakeups_{0};
  CancelSignal* bound_signal_ = nullptr;
  std::uint64_t waker_token_ = 0;
};

}  // namespace numastream
