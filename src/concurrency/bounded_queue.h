// BoundedQueue<T>: the thread-safe queue at the heart of the paper's pipeline
// (Fig. 2): compressors push into it, senders pop from it; receivers push,
// decompressors pop.
//
// Semantics chosen for pipeline use:
//  * bounded: a full queue blocks producers, providing backpressure so a slow
//    stage throttles the stages upstream of it instead of buffering unboundedly;
//  * closeable: when a stage finishes it closes the queue; consumers drain the
//    remaining items and then observe kUnavailable, which is the pipeline's
//    end-of-stream signal;
//  * MPMC: any number of producer and consumer threads.
//
// Implementation: mutex + two condition variables. For the chunk sizes this
// runtime moves (11 MiB), queue synchronization is nanoseconds against
// milliseconds of work per item, so a lock-free MPMC queue would add risk for
// no measurable gain. (The lock-free SpscRing exists for the per-connection
// fast paths; see spsc_ring.h.)
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/assert.h"
#include "common/status.h"

namespace numastream {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    NS_CHECK(capacity > 0, "BoundedQueue capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available or the queue is closed.
  /// Returns kUnavailable if the queue was closed (the item is dropped; the
  /// pipeline is shutting down).
  Status push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return unavailable_error("queue closed");
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return Status::ok();
  }

  /// Non-blocking push; kResourceExhausted when full, kUnavailable when closed.
  Status try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return unavailable_error("queue closed");
      }
      if (items_.size() >= capacity_) {
        return resource_exhausted_error("queue full");
      }
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return Status::ok();
  }

  /// Blocks until an item is available or the queue is closed AND drained.
  /// nullopt means end-of-stream: no item will ever arrive again.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;  // closed and drained
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when currently empty (not necessarily closed).
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) {
        return std::nullopt;
      }
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Ends the stream. Idempotent. Producers' pending pushes fail; consumers
  /// drain remaining items then see end-of-stream.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace numastream
