// BoundedQueue<T>: the thread-safe queue at the heart of the paper's pipeline
// (Fig. 2): compressors push into it, senders pop from it; receivers push,
// decompressors pop.
//
// Semantics chosen for pipeline use:
//  * bounded: a full queue blocks producers, providing backpressure so a slow
//    stage throttles the stages upstream of it instead of buffering unboundedly;
//  * closeable: when a stage finishes it closes the queue; consumers drain the
//    remaining items and then observe kUnavailable, which is the pipeline's
//    end-of-stream signal;
//  * MPMC: any number of producer and consumer threads.
//
// Implementation: mutex + two condition variables. For the chunk sizes this
// runtime moves (11 MiB), queue synchronization is nanoseconds against
// milliseconds of work per item, so a lock-free MPMC queue would add risk for
// no measurable gain. (The lock-free SpscRing exists for the per-connection
// fast paths; see spsc_ring.h.)
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <iterator>
#include <mutex>
#include <optional>

#include "common/assert.h"
#include "common/status.h"

namespace numastream {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    NS_CHECK(capacity > 0, "BoundedQueue capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available or the queue is closed.
  /// Returns kUnavailable if the queue was closed (the item is dropped; the
  /// pipeline is shutting down).
  ///
  /// `cancel`, when supplied, bounds the wait: a raised flag (e.g.
  /// StreamRegistry::cancel_flag() after a watchdog trip or a forced drain)
  /// aborts the push with kUnavailable even if nobody ever closes the queue,
  /// so pipeline teardown can never hang on a full queue. The flag has no
  /// condition-variable hookup, so cancellable waits poll in short slices.
  Status push(T item, const std::atomic<bool>* cancel = nullptr) {
    return push_until(std::move(item), kNoDeadline, cancel);
  }

  /// push() with a deadline: returns kDeadlineExceeded if neither space nor
  /// closure materialized in time (the item is dropped).
  Status push_until(T item, std::chrono::steady_clock::time_point deadline,
                    const std::atomic<bool>* cancel = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!wait_on(not_full_, lock, deadline, cancel,
                 [&] { return closed_ || items_.size() < capacity_; })) {
      return cancelled(cancel) ? unavailable_error("queue push cancelled")
                               : deadline_exceeded_error("queue push timed out");
    }
    if (closed_) {
      return unavailable_error("queue closed");
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return Status::ok();
  }

  /// Non-blocking push; kResourceExhausted when full, kUnavailable when closed.
  Status try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return unavailable_error("queue closed");
      }
      if (items_.size() >= capacity_) {
        return resource_exhausted_error("queue full");
      }
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return Status::ok();
  }

  /// Blocks until an item is available or the queue is closed AND drained.
  /// nullopt means end-of-stream: no item will ever arrive again.
  ///
  /// A raised `cancel` flag also yields nullopt — for a pipeline worker,
  /// cancellation and end-of-stream demand the same reaction (stop), and the
  /// caller holding the flag can distinguish the cases if it must.
  std::optional<T> pop(const std::atomic<bool>* cancel = nullptr) {
    return pop_until(kNoDeadline, cancel);
  }

  /// pop() with a deadline: nullopt when the deadline passes (or on cancel /
  /// end-of-stream). Callers distinguish a drained queue from a timeout via
  /// closed()/size() — the drain path only cares that it never blocks past
  /// its budget.
  std::optional<T> pop_until(std::chrono::steady_clock::time_point deadline,
                             const std::atomic<bool>* cancel = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!wait_on(not_empty_, lock, deadline, cancel,
                 [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;  // cancelled or timed out
    }
    if (items_.empty()) {
      return std::nullopt;  // closed and drained
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Removes and returns the queued item that ranks lowest under `better`
  /// (better(a, b) == true when `a` outranks `b`), or nullopt when empty.
  /// This is the priority-evict shed primitive: under overload a producer
  /// evicts the least valuable queued item to make room for a more valuable
  /// incoming one (see core/pipeline.cpp).
  template <typename Better>
  std::optional<T> try_evict_worst(Better better) {
    std::optional<T> worst;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) {
        return std::nullopt;
      }
      auto worst_it = items_.begin();
      for (auto it = std::next(items_.begin()); it != items_.end(); ++it) {
        if (better(*worst_it, *it)) {
          worst_it = it;
        }
      }
      worst = std::move(*worst_it);
      items_.erase(worst_it);
    }
    not_full_.notify_one();
    return worst;
  }

  /// try_evict_worst, but only when `incoming` outranks the worst queued
  /// item: the conditional form of priority eviction. Returns the evicted
  /// item, or nullopt when the queue is empty or every queued item ranks at
  /// least as high as `incoming` (the caller then sheds `incoming` itself).
  template <typename Better>
  std::optional<T> try_evict_if_worse(const T& incoming, Better better) {
    std::optional<T> worst;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) {
        return std::nullopt;
      }
      auto worst_it = items_.begin();
      for (auto it = std::next(items_.begin()); it != items_.end(); ++it) {
        if (better(*worst_it, *it)) {
          worst_it = it;
        }
      }
      if (!better(incoming, *worst_it)) {
        return std::nullopt;
      }
      worst = std::move(*worst_it);
      items_.erase(worst_it);
    }
    not_full_.notify_one();
    return worst;
  }

  /// Non-blocking pop; nullopt when currently empty (not necessarily closed).
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) {
        return std::nullopt;
      }
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Ends the stream. Idempotent. Producers' pending pushes fail; consumers
  /// drain remaining items then see end-of-stream.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  static constexpr std::chrono::steady_clock::time_point kNoDeadline =
      std::chrono::steady_clock::time_point::max();

  static bool cancelled(const std::atomic<bool>* cancel) {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  /// Waits for `ready` on `cv` under `lock`; false when the cancel flag or
  /// deadline cut the wait short. The uncancellable, undeadlined wait (the
  /// hot path) blocks on the condition variable exactly as before; only
  /// waits that can be cut short poll in 1 ms slices, because the cancel
  /// flag is a plain atomic with no notification channel.
  template <typename Ready>
  bool wait_on(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
               std::chrono::steady_clock::time_point deadline,
               const std::atomic<bool>* cancel, Ready ready) {
    if (cancel == nullptr && deadline == kNoDeadline) {
      cv.wait(lock, ready);
      return true;
    }
    while (!ready()) {
      if (cancelled(cancel)) {
        return false;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        return false;
      }
      const auto slice = std::min<std::chrono::steady_clock::duration>(
          std::chrono::milliseconds(1), deadline - now);
      cv.wait_for(lock, slice);
    }
    return true;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace numastream
