#include "check/schedule.h"

#include <sstream>

namespace numastream {
namespace check {
namespace {

struct KindName {
  ChaosEventKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {ChaosEventKind::kDeliver, "deliver"},
    {ChaosEventKind::kPartition, "partition"},
    {ChaosEventKind::kPartitionOneWay, "partition_one_way"},
    {ChaosEventKind::kHeal, "heal"},
    {ChaosEventKind::kCrash, "crash"},
    {ChaosEventKind::kFailover, "failover"},
    {ChaosEventKind::kRestart, "restart"},
    {ChaosEventKind::kRot, "rot"},
    {ChaosEventKind::kScrub, "scrub"},
    {ChaosEventKind::kHandoff, "handoff"},
    {ChaosEventKind::kOverload, "overload"},
    {ChaosEventKind::kDrain, "drain"},
};

static_assert(sizeof(kKindNames) / sizeof(kKindNames[0]) == kChaosEventKinds,
              "every event kind needs a canonical name");

}  // namespace

std::string to_string(ChaosEventKind kind) {
  for (const auto& entry : kKindNames) {
    if (entry.kind == kind) {
      return entry.name;
    }
  }
  return "unknown";
}

Result<ChaosEventKind> chaos_event_kind_from_string(const std::string& token) {
  for (const auto& entry : kKindNames) {
    if (token == entry.name) {
      return entry.kind;
    }
  }
  return invalid_argument_error("schedule: unknown event kind '" + token +
                                "'");
}

std::string ChaosEvent::to_string() const {
  return "event " + check::to_string(kind) + " a=" + std::to_string(a) +
         " b=" + std::to_string(b) + " n=" + std::to_string(n);
}

std::string serialize_schedule(const ChaosSchedule& schedule) {
  std::string out;
  for (const ChaosEvent& event : schedule) {
    out += event.to_string();
    out += "\n";
  }
  return out;
}

Result<ChaosSchedule> parse_schedule(const std::string& text) {
  ChaosSchedule schedule;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string word;
    if (!(fields >> word)) {
      continue;  // blank line
    }
    const auto fail = [&](const std::string& why) {
      return invalid_argument_error("schedule line " +
                                    std::to_string(line_no) + ": " + why);
    };
    if (word != "event") {
      return fail("expected 'event', got '" + word + "'");
    }
    std::string kind_token;
    if (!(fields >> kind_token)) {
      return fail("missing event kind");
    }
    auto kind = chaos_event_kind_from_string(kind_token);
    if (!kind.ok()) {
      return fail(kind.status().message());
    }
    ChaosEvent event;
    event.kind = kind.value();
    std::string attr;
    bool saw_a = false;
    bool saw_b = false;
    bool saw_n = false;
    while (fields >> attr) {
      const auto eq = attr.find('=');
      if (eq == std::string::npos) {
        return fail("malformed operand '" + attr + "'");
      }
      const std::string key = attr.substr(0, eq);
      const std::string value = attr.substr(eq + 1);
      try {
        if (key == "a") {
          event.a = static_cast<std::uint32_t>(std::stoul(value));
          saw_a = true;
        } else if (key == "b") {
          event.b = static_cast<std::uint32_t>(std::stoul(value));
          saw_b = true;
        } else if (key == "n") {
          event.n = std::stoull(value);
          saw_n = true;
        } else {
          return fail("unknown operand '" + key + "'");
        }
      } catch (const std::exception&) {
        return fail("bad value for " + key + ": '" + value + "'");
      }
    }
    if (!saw_a || !saw_b || !saw_n) {
      return fail("operands a=, b=, n= are all required (canonical form)");
    }
    schedule.push_back(event);
  }
  return schedule;
}

ChaosSchedule random_schedule(Rng& rng, std::uint32_t events,
                              std::uint32_t streams) {
  ChaosSchedule schedule;
  schedule.reserve(events);
  const std::uint32_t stream_count = streams == 0 ? 1 : streams;
  for (std::uint32_t i = 0; i < events; ++i) {
    ChaosEvent event;
    // Half the walk is traffic: faults only matter while data flows, and
    // a schedule of pure faults would never exercise the delivery ledger.
    if (rng.next_below(2) == 0) {
      event.kind = ChaosEventKind::kDeliver;
      event.a = static_cast<std::uint32_t>(rng.next_below(stream_count));
      event.n = 1 + rng.next_below(4);
    } else {
      event.kind = static_cast<ChaosEventKind>(
          2 + rng.next_below(kChaosEventKinds - 1));
      switch (event.kind) {
        case ChaosEventKind::kPartition:
        case ChaosEventKind::kHeal:
          event.a = 0;
          event.b = 1;
          break;
        case ChaosEventKind::kPartitionOneWay:
          event.a = static_cast<std::uint32_t>(rng.next_below(2));
          event.b = 1 - event.a;
          break;
        case ChaosEventKind::kCrash:
        case ChaosEventKind::kRestart:
          event.a = static_cast<std::uint32_t>(rng.next_below(2));
          break;
        case ChaosEventKind::kRot:
          event.n = 1 + rng.next_below(3);  // bits to flip
          break;
        case ChaosEventKind::kHandoff:
          event.a = static_cast<std::uint32_t>(rng.next_below(stream_count));
          break;
        case ChaosEventKind::kOverload:
          event.a = static_cast<std::uint32_t>(rng.next_below(stream_count));
          event.n = 2 + rng.next_below(6);
          break;
        case ChaosEventKind::kDeliver:
        case ChaosEventKind::kFailover:
        case ChaosEventKind::kScrub:
        case ChaosEventKind::kDrain:
          break;
      }
    }
    schedule.push_back(event);
  }
  return schedule;
}

}  // namespace check
}  // namespace numastream
