#include "check/invariant.h"

#include <utility>

#include "core/journal.h"

namespace numastream {
namespace check {
namespace {

struct ProbeName {
  InvariantProbe probe;
  const char* name;
};

constexpr ProbeName kProbeNames[] = {
    {InvariantProbe::kExactlyOnce, "exactly_once"},
    {InvariantProbe::kEpochMonotone, "epoch_monotone"},
    {InvariantProbe::kSinglePrimary, "single_primary"},
    {InvariantProbe::kStandbySuperset, "standby_superset"},
    {InvariantProbe::kLedgerSettle, "ledger_settle"},
    {InvariantProbe::kNoHoles, "no_holes"},
};

}  // namespace

std::string to_string(InvariantProbe probe) {
  for (const auto& entry : kProbeNames) {
    if (entry.probe == probe) {
      return entry.name;
    }
  }
  return "unknown";
}

Result<InvariantProbe> invariant_probe_from_string(const std::string& token) {
  for (const auto& entry : kProbeNames) {
    if (token == entry.name) {
      return entry.probe;
    }
  }
  return invalid_argument_error("invariant: unknown probe '" + token + "'");
}

std::string InvariantViolation::to_string() const {
  return "violation " + check::to_string(probe) +
         " stream=" + std::to_string(stream_id) +
         " seq=" + std::to_string(sequence);
}

InvariantMonitor::InvariantMonitor(ChaosCounters* counters)
    : counters_(counters) {}

void InvariantMonitor::note_probe() const {
  if (counters_ != nullptr) {
    counters_->probes_fired.fetch_add(1, std::memory_order_relaxed);
  }
}

void InvariantMonitor::record_violation(InvariantViolation violation) {
  // Caller holds mutex_.
  if (counters_ != nullptr) {
    counters_->violations_found.fetch_add(1, std::memory_order_relaxed);
  }
  violations_.push_back(std::move(violation));
}

void InvariantMonitor::on_delivery(std::uint32_t gateway, std::uint64_t epoch,
                                   std::uint32_t stream_id,
                                   std::uint64_t sequence) {
  note_probe();
  std::lock_guard<std::mutex> lock(mutex_);
  ++deliveries_;
  auto& committed = acked_[stream_id];
  if (!committed.insert(sequence).second) {
    record_violation(
        {InvariantProbe::kExactlyOnce, stream_id, sequence,
         "gateway " + std::to_string(gateway) + " re-delivered stream " +
             std::to_string(stream_id) + " seq " + std::to_string(sequence) +
             " (already committed by the federation)"});
  }
  auto [it, inserted] = primary_at_epoch_.emplace(epoch, gateway);
  if (!inserted && it->second != gateway) {
    record_violation(
        {InvariantProbe::kSinglePrimary, stream_id, sequence,
         "gateways " + std::to_string(it->second) + " and " +
             std::to_string(gateway) +
             " both performed primary delivery at epoch " +
             std::to_string(epoch)});
  }
}

void InvariantMonitor::on_epoch(std::uint64_t session, std::uint64_t epoch) {
  note_probe();
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = session_epoch_.emplace(session, epoch);
  if (!inserted) {
    if (epoch < it->second) {
      record_violation(
          {InvariantProbe::kEpochMonotone, 0, epoch,
           "session " + std::to_string(session) + " epoch went backward: " +
               std::to_string(it->second) + " -> " + std::to_string(epoch)});
    } else {
      it->second = epoch;
    }
  }
}

void InvariantMonitor::on_promote(ByteSpan standby_journal) {
  note_probe();
  const JournalScan scan = scan_journal(standby_journal);
  std::set<std::pair<std::uint32_t, std::uint64_t>> replica;
  for (const JournalRecord& record : scan.records) {
    if (record.type == JournalRecordType::kDelivered) {
      replica.emplace(record.stream_id, record.sequence);
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [stream_id, committed] : acked_) {
    std::uint64_t missing = 0;
    std::uint64_t first_missing = 0;
    for (const std::uint64_t sequence : committed) {
      if (replica.find({stream_id, sequence}) == replica.end()) {
        if (missing == 0) {
          first_missing = sequence;
        }
        ++missing;
      }
    }
    if (missing > 0) {
      record_violation(
          {InvariantProbe::kStandbySuperset, stream_id, first_missing,
           "standby promoted while missing " + std::to_string(missing) +
               " acked record(s) on stream " + std::to_string(stream_id) +
               " (first: seq " + std::to_string(first_missing) + ")"});
    }
  }
}

void InvariantMonitor::on_failover_watermark(std::uint32_t stream_id,
                                             std::uint64_t watermark) {
  note_probe();
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t frontier = 0;
  auto it = acked_.find(stream_id);
  if (it != acked_.end() && !it->second.empty()) {
    frontier = *it->second.rbegin() + 1;
  }
  if (watermark < frontier) {
    record_violation(
        {InvariantProbe::kNoHoles, stream_id, watermark,
         "failover successor recovered watermark " +
             std::to_string(watermark) + " on stream " +
             std::to_string(stream_id) + " but the federation acked up to " +
             std::to_string(frontier - 1)});
  }
}

void InvariantMonitor::on_drain(std::uint64_t budget_bytes_held,
                                std::int64_t credits_out) {
  note_probe();
  std::lock_guard<std::mutex> lock(mutex_);
  if (budget_bytes_held != 0) {
    record_violation({InvariantProbe::kLedgerSettle, 0, budget_bytes_held,
                      "memory budget still holds " +
                          std::to_string(budget_bytes_held) +
                          " bytes at drain"});
  }
  if (credits_out != 0) {
    record_violation({InvariantProbe::kLedgerSettle, 0,
                      static_cast<std::uint64_t>(credits_out),
                      "credit ledger did not settle: " +
                          std::to_string(credits_out) + " outstanding"});
  }
}

bool InvariantMonitor::clean() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return violations_.empty();
}

std::vector<InvariantViolation> InvariantMonitor::violations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return violations_;
}

std::uint64_t InvariantMonitor::deliveries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deliveries_;
}

std::uint64_t InvariantMonitor::acked_frontier(std::uint32_t stream_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = acked_.find(stream_id);
  if (it == acked_.end() || it->second.empty()) {
    return 0;
  }
  return *it->second.rbegin() + 1;
}

ProbeSink::ProbeSink(ChunkSink& inner, InvariantMonitor& monitor,
                     std::uint32_t gateway, std::uint64_t epoch)
    : inner_(inner), monitor_(monitor), gateway_(gateway), epoch_(epoch) {}

void ProbeSink::deliver(Chunk chunk) {
  monitor_.on_delivery(gateway_, epoch_.load(std::memory_order_relaxed),
                       chunk.stream_id, chunk.sequence);
  inner_.deliver(std::move(chunk));
}

void ProbeSink::set_epoch(std::uint64_t epoch) {
  epoch_.store(epoch, std::memory_order_relaxed);
}

}  // namespace check
}  // namespace numastream
