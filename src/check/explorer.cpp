#include "check/explorer.h"

#include <sstream>
#include <utility>

#include "common/rng.h"

namespace numastream {
namespace check {
namespace {

/// Derives episode i's seed from the master seed: one splitmix64 step over
/// a golden-ratio-spread state, the same derivation idiom the chaos mesh
/// uses for per-link streams. Episode seeds are never 0 by construction
/// (splitmix64 of a nonzero-spread state), so they stay valid chaos seeds.
std::uint64_t episode_seed(std::uint64_t master, std::uint32_t episode) {
  std::uint64_t state =
      master ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(episode) + 1));
  const std::uint64_t derived = splitmix64_next(state);
  return derived == 0 ? 1 : derived;
}

}  // namespace

std::string serialize_bundle(const ReproBundle& bundle) {
  std::string out = "chaosbundle v1\n";
  out += "seed " + std::to_string(bundle.seed) + "\n";
  out += "episode " + std::to_string(bundle.episode) + "\n";
  out += serialize_options(bundle.options) + "\n";
  out += bundle.violation.to_string() + "\n";
  out += "schedule " + std::to_string(bundle.schedule.size()) + "\n";
  out += serialize_schedule(bundle.schedule);
  return out;
}

Result<ReproBundle> parse_bundle(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  const auto next_line = [&](const char* what) -> Result<std::string> {
    if (!std::getline(in, line)) {
      return invalid_argument_error(std::string("bundle: missing ") + what);
    }
    return line;
  };

  auto header = next_line("header");
  if (!header.ok()) {
    return header.status();
  }
  if (header.value() != "chaosbundle v1") {
    return invalid_argument_error("bundle: bad header '" + header.value() +
                                  "' (want 'chaosbundle v1')");
  }

  ReproBundle bundle;
  const auto parse_u64 = [](const std::string& prefix,
                            const std::string& got) -> Result<std::uint64_t> {
    if (got.rfind(prefix + " ", 0) != 0) {
      return invalid_argument_error("bundle: expected '" + prefix +
                                    " <n>', got '" + got + "'");
    }
    try {
      return std::stoull(got.substr(prefix.size() + 1));
    } catch (const std::exception&) {
      return invalid_argument_error("bundle: bad " + prefix + " value in '" +
                                    got + "'");
    }
  };

  auto seed_line = next_line("seed");
  if (!seed_line.ok()) {
    return seed_line.status();
  }
  auto seed = parse_u64("seed", seed_line.value());
  if (!seed.ok()) {
    return seed.status();
  }
  bundle.seed = seed.value();

  auto episode_line = next_line("episode");
  if (!episode_line.ok()) {
    return episode_line.status();
  }
  auto episode = parse_u64("episode", episode_line.value());
  if (!episode.ok()) {
    return episode.status();
  }
  bundle.episode = static_cast<std::uint32_t>(episode.value());

  auto options_line = next_line("options");
  if (!options_line.ok()) {
    return options_line.status();
  }
  auto options = parse_options(options_line.value());
  if (!options.ok()) {
    return options.status();
  }
  bundle.options = options.value();

  auto violation_line = next_line("violation");
  if (!violation_line.ok()) {
    return violation_line.status();
  }
  {
    std::istringstream fields(violation_line.value());
    std::string word;
    std::string probe_token;
    std::string stream_attr;
    std::string seq_attr;
    if (!(fields >> word >> probe_token >> stream_attr >> seq_attr) ||
        word != "violation" || stream_attr.rfind("stream=", 0) != 0 ||
        seq_attr.rfind("seq=", 0) != 0) {
      return invalid_argument_error("bundle: malformed violation line '" +
                                    violation_line.value() + "'");
    }
    auto probe = invariant_probe_from_string(probe_token);
    if (!probe.ok()) {
      return probe.status();
    }
    bundle.violation.probe = probe.value();
    try {
      bundle.violation.stream_id =
          static_cast<std::uint32_t>(std::stoul(stream_attr.substr(7)));
      bundle.violation.sequence = std::stoull(seq_attr.substr(4));
    } catch (const std::exception&) {
      return invalid_argument_error("bundle: bad violation operands in '" +
                                    violation_line.value() + "'");
    }
  }

  auto count_line = next_line("schedule");
  if (!count_line.ok()) {
    return count_line.status();
  }
  auto count = parse_u64("schedule", count_line.value());
  if (!count.ok()) {
    return count.status();
  }

  std::string schedule_text;
  while (std::getline(in, line)) {
    schedule_text += line;
    schedule_text += "\n";
  }
  auto schedule = parse_schedule(schedule_text);
  if (!schedule.ok()) {
    return schedule.status();
  }
  if (schedule.value().size() != count.value()) {
    return invalid_argument_error(
        "bundle: schedule declares " + std::to_string(count.value()) +
        " event(s) but carries " + std::to_string(schedule.value().size()));
  }
  bundle.schedule = std::move(schedule.value());
  return bundle;
}

ChaosExplorer::ChaosExplorer(const ChaosExplorerOptions& options,
                             ChaosCounters* counters)
    : options_(options), counters_(counters) {}

std::vector<InvariantViolation> ChaosExplorer::run_schedule(
    const ChaosHarnessOptions& options, const ChaosSchedule& schedule,
    ChaosCounters* counters) {
  InvariantMonitor monitor(counters);
  ChaosHarness harness(options, monitor, counters);
  harness.run(schedule);
  // Settlement probes close every episode: the ledgers must be back to
  // zero no matter where the random walk stopped.
  ChaosEvent drain;
  drain.kind = ChaosEventKind::kDrain;
  (void)harness.apply(drain);
  return monitor.violations();
}

Status ChaosExplorer::replay(const ReproBundle& bundle,
                             ChaosCounters* counters) {
  const std::vector<InvariantViolation> violations =
      run_schedule(bundle.options, bundle.schedule, counters);
  for (const InvariantViolation& violation : violations) {
    if (violation.probe == bundle.violation.probe &&
        violation.stream_id == bundle.violation.stream_id &&
        violation.sequence == bundle.violation.sequence) {
      return Status::ok();
    }
  }
  if (violations.empty()) {
    return data_loss_error("replay: bundle did not reproduce (run was clean)");
  }
  return data_loss_error(
      "replay: bundle did not reproduce (got " + violations.front().to_string() +
      ", want " + bundle.violation.to_string() + ")");
}

bool ChaosExplorer::reproduces(const ChaosHarnessOptions& options,
                               const ChaosSchedule& schedule,
                               InvariantProbe probe) {
  if (counters_ != nullptr) {
    counters_->shrink_steps.fetch_add(1, std::memory_order_relaxed);
  }
  for (const InvariantViolation& violation :
       run_schedule(options, schedule, nullptr)) {
    if (violation.probe == probe) {
      return true;
    }
  }
  return false;
}

ChaosSchedule ChaosExplorer::shrink(const ChaosHarnessOptions& options,
                                    ChaosSchedule schedule,
                                    InvariantProbe probe) {
  // ddmin (Zeller's delta debugging, minimizing variant): partition the
  // schedule into n chunks, try removing each chunk; on success restart at
  // the coarsest granularity, otherwise refine until chunks are single
  // events. Termination: every step either shortens the schedule or
  // doubles n, and n is capped at the schedule length.
  std::size_t chunks = 2;
  while (schedule.size() >= 2) {
    const std::size_t size = schedule.size();
    if (chunks > size) {
      chunks = size;
    }
    bool shrunk = false;
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      const std::size_t begin = chunk * size / chunks;
      const std::size_t end = (chunk + 1) * size / chunks;
      if (begin >= end) {
        continue;
      }
      ChaosSchedule candidate;
      candidate.reserve(size - (end - begin));
      candidate.insert(candidate.end(), schedule.begin(),
                       schedule.begin() + static_cast<std::ptrdiff_t>(begin));
      candidate.insert(candidate.end(),
                       schedule.begin() + static_cast<std::ptrdiff_t>(end),
                       schedule.end());
      if (reproduces(options, candidate, probe)) {
        schedule = std::move(candidate);
        chunks = 2;
        shrunk = true;
        break;
      }
    }
    if (!shrunk) {
      if (chunks >= size) {
        break;  // 1-minimal: no single event can be removed
      }
      chunks *= 2;
    }
  }
  if (counters_ != nullptr) {
    counters_->schedules_shrunk.fetch_add(1, std::memory_order_relaxed);
  }
  return schedule;
}

ChaosExplorerReport ChaosExplorer::explore() {
  ChaosExplorerReport report;
  for (std::uint32_t episode = 0; episode < options_.episodes; ++episode) {
    ChaosHarnessOptions harness_options;
    harness_options.seed = episode_seed(options_.seed, episode);
    harness_options.streams = options_.streams;
    harness_options.plant_fencing_bug = options_.plant_fencing_bug;

    // The schedule stream is split from the harness stream so mesh draws
    // inside the episode never perturb the schedule itself.
    Rng schedule_rng(harness_options.seed ^ 0xA5C3ULL);
    const ChaosSchedule schedule =
        random_schedule(schedule_rng, options_.events, options_.streams);

    const std::vector<InvariantViolation> violations =
        run_schedule(harness_options, schedule, counters_);
    ++report.episodes_run;
    if (counters_ != nullptr) {
      counters_->episodes_run.fetch_add(1, std::memory_order_relaxed);
    }
    if (violations.empty()) {
      continue;
    }

    report.found = true;
    report.raw_events = static_cast<std::uint32_t>(schedule.size());
    report.bundle.seed = options_.seed;
    report.bundle.episode = episode;
    report.bundle.options = harness_options;
    report.bundle.schedule =
        shrink(harness_options, schedule, violations.front().probe);
    // The bundle's canonical violation is what the *minimal* schedule
    // produces — stream/sequence may differ from the raw run once the
    // schedule's earlier traffic is gone.
    const std::vector<InvariantViolation> minimal =
        run_schedule(harness_options, report.bundle.schedule, nullptr);
    for (const InvariantViolation& violation : minimal) {
      if (violation.probe == violations.front().probe) {
        report.bundle.violation = violation;
        break;
      }
    }
    return report;
  }
  return report;
}

}  // namespace check
}  // namespace numastream
