// Chaos event schedules: the replayable unit of a chaos campaign
// (DESIGN.md §16).
//
// A chaos run is fully determined by (seed, schedule, options): the seed
// drives every mesh and payload decision, the schedule is the ordered list
// of adversarial events, the options select the system under test. An
// episode that trips an invariant is therefore *reproducible by value* —
// serialize those three and any machine replays the identical violation.
// That is the contract the shrinker and tools/chaos_replay rest on, so the
// text form here must round-trip bit-identically: parse(serialize(s)) == s
// and serialize(parse(t)) == t for every schedule this module emits.
//
// Events are deliberately coarse (partition THIS pair, crash THE primary,
// deliver N chunks) rather than packet-level: the schedule space stays
// small enough for a random walk to cover compositions, and a shrunk
// schedule reads as an incident report a human can replay mentally.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace numastream {
namespace check {

/// One adversarial move. `a`, `b` and `n` are kind-specific operands
/// (gateway ids, stream ids, chunk counts); unused operands stay zero so
/// the text form is canonical.
enum class ChaosEventKind : std::uint8_t {
  kDeliver = 1,         ///< every self-believed owner delivers n chunks on stream a
  kPartition = 2,       ///< cut both directions between gateways a and b
  kPartitionOneWay = 3, ///< cut exactly a -> b; the reverse keeps flowing
  kHeal = 4,            ///< restore both directions between a and b
  kCrash = 5,           ///< gateway a dies; its unflushed journal tail is gone
  kFailover = 6,        ///< standby declares the owner dead and promotes
  kRestart = 7,         ///< gateway a comes back, stale beliefs intact
  kRot = 8,             ///< flip a seeded bit in the owner's durable journal
  kScrub = 9,           ///< one anti-entropy digest round owner -> buddy
  kHandoff = 10,        ///< three-phase planned handoff of stream a
  kOverload = 11,       ///< burst: charge n chunk budgets, deliver, release
  kDrain = 12,          ///< settle: assert budget and credits are back to zero
};

inline constexpr std::uint8_t kChaosEventKinds = 12;

[[nodiscard]] std::string to_string(ChaosEventKind kind);
[[nodiscard]] Result<ChaosEventKind> chaos_event_kind_from_string(
    const std::string& token);

struct ChaosEvent {
  ChaosEventKind kind = ChaosEventKind::kDeliver;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t n = 0;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ChaosEvent&, const ChaosEvent&) = default;
};

using ChaosSchedule = std::vector<ChaosEvent>;

/// One line per event: "event <kind> a=<u32> b=<u32> n=<u64>\n".
/// Canonical (operands always present, fixed order) so equal schedules
/// serialize to equal bytes.
[[nodiscard]] std::string serialize_schedule(const ChaosSchedule& schedule);

/// Inverse of serialize_schedule. INVALID_ARGUMENT on any malformed line;
/// a repro bundle is evidence, and evidence must not be guessed at.
[[nodiscard]] Result<ChaosSchedule> parse_schedule(const std::string& text);

/// Draws a random walk of `events` events over a two-gateway world with
/// `streams` streams. All operands are drawn from `rng`, so one seed pins
/// the whole walk. Deliver events dominate the mix — most of real life is
/// traffic, and invariants only bite when data actually flows between the
/// faults.
[[nodiscard]] ChaosSchedule random_schedule(Rng& rng, std::uint32_t events,
                                            std::uint32_t streams);

}  // namespace check
}  // namespace numastream
