// ChaosExplorer: random-walk fault exploration with shrinking repro
// bundles (DESIGN.md §16).
//
// The explorer is the active half of the chaos subsystem: from one master
// seed it derives N independent episodes, each a fresh ChaosHarness driven
// by a random schedule of deliveries, partitions, crashes, failovers, rot,
// scrubs, handoffs and overload bursts, with the InvariantMonitor watching
// every probe. A clean sweep is the regression signal ("the protocol
// survives N random fault compositions"); the first violating episode
// triggers the part that makes chaos findings actionable — shrinking.
//
// Shrinking is classic ddmin over the event schedule: try dropping chunks
// of events (halves, quarters, ... single events), keep any removal after
// which a fresh harness still reproduces a violation of the same probe,
// and stop at a 1-minimal schedule — removing ANY single remaining event
// makes the violation vanish. Because the harness is deterministic in
// (options, schedule), every candidate run is exact, not statistical: no
// flaky shrinks, no lost reproducers.
//
// The result is a ReproBundle — seed, episode index, harness options, the
// minimal schedule, and the violation it produces — with a canonical text
// serialization that round-trips bit-identically. tools/chaos_replay feeds
// a bundle back through the same harness and must observe the same
// violation; that closed loop (explore -> shrink -> bundle -> replay) is
// the acceptance contract for every bug this subsystem ever reports.
#pragma once

#include <cstdint>
#include <string>

#include "check/harness.h"
#include "check/invariant.h"
#include "check/schedule.h"
#include "metrics/chaos_counters.h"

namespace numastream {
namespace check {

struct ChaosExplorerOptions {
  std::uint64_t seed = 1;       ///< master seed; episodes derive from it
  std::uint32_t episodes = 200; ///< random walks to run
  std::uint32_t events = 12;    ///< events per episode schedule
  std::uint32_t streams = 2;    ///< streams the harness multiplexes
  /// Forwarded to the harness: plant the split-brain fencing bug the
  /// explorer is expected to catch (test/CI self-check only).
  bool plant_fencing_bug = false;

  friend bool operator==(const ChaosExplorerOptions&,
                         const ChaosExplorerOptions&) = default;
};

/// Everything needed to reproduce one violation deterministically.
struct ReproBundle {
  std::uint64_t seed = 0;     ///< master seed the episode derived from
  std::uint32_t episode = 0;  ///< which episode of the walk found it
  ChaosHarnessOptions options;
  ChaosSchedule schedule;     ///< minimal (shrunk) schedule
  InvariantViolation violation;

  friend bool operator==(const ReproBundle&, const ReproBundle&) = default;
};

/// Canonical "chaosbundle v1" text form. serialize(parse(text)) == text for
/// any text serialize() produced — bundles are stable artifacts.
[[nodiscard]] std::string serialize_bundle(const ReproBundle& bundle);
[[nodiscard]] Result<ReproBundle> parse_bundle(const std::string& text);

struct ChaosExplorerReport {
  std::uint32_t episodes_run = 0;
  bool found = false;       ///< a violation was found (bundle is valid)
  std::uint32_t raw_events = 0;  ///< schedule length before shrinking
  ReproBundle bundle;

  friend bool operator==(const ChaosExplorerReport&,
                         const ChaosExplorerReport&) = default;
};

class ChaosExplorer {
 public:
  explicit ChaosExplorer(const ChaosExplorerOptions& options,
                         ChaosCounters* counters = nullptr);

  /// Runs up to `episodes` random walks; stops at the first violating
  /// episode, shrinks its schedule to a 1-minimal reproducer, and returns
  /// the bundle. found == false means a clean sweep.
  [[nodiscard]] ChaosExplorerReport explore();

  /// Runs one (options, schedule) pair on a fresh harness and returns the
  /// violations it produced. Deterministic: same inputs, same output —
  /// this is the function replay and shrinking are built on.
  [[nodiscard]] static std::vector<InvariantViolation> run_schedule(
      const ChaosHarnessOptions& options, const ChaosSchedule& schedule,
      ChaosCounters* counters = nullptr);

  /// Replays a bundle. OK when the bundle's violation (same probe, stream
  /// and sequence) is reproduced; DATA_LOSS when the run stays clean or
  /// produces only different violations.
  [[nodiscard]] static Status replay(const ReproBundle& bundle,
                                     ChaosCounters* counters = nullptr);

  /// ddmin: shrinks `schedule` to a 1-minimal sequence that still violates
  /// `probe` under `options`. Public for tests; explore() calls it.
  [[nodiscard]] ChaosSchedule shrink(const ChaosHarnessOptions& options,
                                     ChaosSchedule schedule,
                                     InvariantProbe probe);

 private:
  [[nodiscard]] bool reproduces(const ChaosHarnessOptions& options,
                                const ChaosSchedule& schedule,
                                InvariantProbe probe);

  const ChaosExplorerOptions options_;
  ChaosCounters* counters_;
};

}  // namespace check
}  // namespace numastream
