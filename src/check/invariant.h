// InvariantMonitor: the protocol safety catalog as executable probes
// (DESIGN.md §16).
//
// Every safety argument the federation stack has accumulated — exactly-once
// delivery (PR 5), epoch-fence split-brain safety (PR 6), the standby
// journal superset (PR 6), credit/budget conservation (PR 2), planned
// handoff atomicity (PR 7) — lives in prose and in one targeted test each.
// This monitor turns the catalog into probes a chaos run feeds
// continuously, so a violation is caught at the *moment* it happens under
// whatever fault composition produced it, not when a downstream assert
// finally trips.
//
// The probes:
//
//   kExactlyOnce      every (stream, sequence) reaches a sink at most once
//                     across the whole federation — two gateways delivering
//                     the same chunk is the split-brain smoking gun.
//   kEpochMonotone    a session's observed epoch never decreases; a
//                     rollback would un-fence a fenced primary.
//   kSinglePrimary    at most one gateway performs primary-role delivery
//                     work at any given epoch.
//   kStandbySuperset  at promote, the standby's valid journal records are
//                     a superset of the acked deliveries — what the buddy
//                     replays covers everything the client was promised.
//                     (Superset, not equality: a one-way ack loss leaves
//                     the standby legitimately AHEAD of the acked set.)
//   kLedgerSettle     at drain, the memory budget and credit ledgers are
//                     back to zero — leaked charges starve future traffic.
//   kNoHoles          after a failover, the successor's recovered watermark
//                     covers every acked delivery — no client-visible gap.
//
// The monitor is passive bookkeeping: callers report facts, the monitor
// records violations and keeps going (a chaos episode should surface ALL
// the damage, not stop at the first count). It is thread-safe so pipeline
// threads can feed it live, and allocation-light so probes stay off the
// measured path: when chaos is off nothing constructs a monitor at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "metrics/chaos_counters.h"

namespace numastream {
namespace check {

enum class InvariantProbe : std::uint8_t {
  kExactlyOnce = 1,
  kEpochMonotone = 2,
  kSinglePrimary = 3,
  kStandbySuperset = 4,
  kLedgerSettle = 5,
  kNoHoles = 6,
};

[[nodiscard]] std::string to_string(InvariantProbe probe);
[[nodiscard]] Result<InvariantProbe> invariant_probe_from_string(
    const std::string& token);

/// One caught violation: which probe, where, and a human-readable account.
/// `detail` is diagnostic only; probe/stream/sequence are the canonical
/// identity a replay must reproduce exactly.
struct InvariantViolation {
  InvariantProbe probe = InvariantProbe::kExactlyOnce;
  std::uint32_t stream_id = 0;
  std::uint64_t sequence = 0;
  std::string detail;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const InvariantViolation&,
                         const InvariantViolation&) = default;
};

class InvariantMonitor {
 public:
  explicit InvariantMonitor(ChaosCounters* counters = nullptr);

  /// kExactlyOnce + kSinglePrimary: `gateway` committed (stream, sequence)
  /// to a client-visible sink while believing itself primary at `epoch`.
  void on_delivery(std::uint32_t gateway, std::uint64_t epoch,
                   std::uint32_t stream_id, std::uint64_t sequence);

  /// kEpochMonotone: some component observed `epoch` for `session`.
  void on_epoch(std::uint64_t session, std::uint64_t epoch);

  /// kStandbySuperset: the standby whose durable journal is
  /// `standby_journal` is being promoted. Valid kDelivered records are
  /// scanned out and compared against the acked-delivery ledger.
  void on_promote(ByteSpan standby_journal);

  /// kNoHoles: a failover completed; `watermark` is the successor's
  /// recovered contiguous watermark for `stream_id`.
  void on_failover_watermark(std::uint32_t stream_id, std::uint64_t watermark);

  /// kLedgerSettle: the system drained; both ledgers must be zero.
  void on_drain(std::uint64_t budget_bytes_held, std::int64_t credits_out);

  [[nodiscard]] bool clean() const;
  [[nodiscard]] std::vector<InvariantViolation> violations() const;
  [[nodiscard]] std::uint64_t deliveries() const;

  /// Highest acked sequence + 1 for `stream_id` (0 when nothing acked):
  /// what a successor must cover.
  [[nodiscard]] std::uint64_t acked_frontier(std::uint32_t stream_id) const;

 private:
  void record_violation(InvariantViolation violation);
  void note_probe() const;

  ChaosCounters* counters_;

  mutable std::mutex mutex_;
  std::uint64_t deliveries_ = 0;
  /// Acked (stream -> committed sequences) across every gateway's sink.
  std::map<std::uint32_t, std::set<std::uint64_t>> acked_;
  /// epoch -> gateway that performed primary work there.
  std::map<std::uint64_t, std::uint32_t> primary_at_epoch_;
  /// session -> highest epoch observed.
  std::map<std::uint64_t, std::uint64_t> session_epoch_;
  std::vector<InvariantViolation> violations_;
};

/// ChunkSink decorator feeding kExactlyOnce from a live pipeline: wraps
/// the real sink, reports each delivery, forwards the chunk untouched.
/// Wiring one up is the only pipeline-side cost of chaos probes — when the
/// chaos directive is off no ProbeSink exists and the hot path is
/// byte-identical to the unprobed build.
class ProbeSink final : public ChunkSink {
 public:
  /// Borrows both; they must outlive the sink. `gateway`/`epoch` stamp the
  /// deliveries this pipeline performs.
  ProbeSink(ChunkSink& inner, InvariantMonitor& monitor, std::uint32_t gateway,
            std::uint64_t epoch = 1);

  void deliver(Chunk chunk) override;

  /// A promotion moved this pipeline to a new epoch.
  void set_epoch(std::uint64_t epoch);

 private:
  ChunkSink& inner_;
  InvariantMonitor& monitor_;
  const std::uint32_t gateway_;
  std::atomic<std::uint64_t> epoch_;
};

}  // namespace check
}  // namespace numastream
